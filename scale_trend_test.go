package spatialanon

import (
	"testing"
	"time"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/core"
	"spatialanon/internal/dataset"
	"spatialanon/internal/mondrian"
	"spatialanon/internal/rplustree"
)

// TestScaleTrend logs (under -v) how the R⁺-tree vs Mondrian gap widens
// with data size — the asymptotic claim behind Figure 7(a).
func TestScaleTrend(t *testing.T) {
	if testing.Short() {
		t.Skip("timing trend, skipped in -short")
	}
	for _, n := range []int{200000, 800000} {
		recs := dataset.GenerateLandsEnd(n, 5)
		rt, err := core.NewRTreeAnonymizer(core.RTreeConfig{
			Schema:   dataset.LandsEndSchema(),
			BaseK:    5,
			BulkLoad: &rplustree.BulkLoadConfig{RecordBytes: 32},
		})
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if err := rt.Load(recs); err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Partitions(10); err != nil {
			t.Fatal(err)
		}
		rtd := time.Since(start)
		start = time.Now()
		if _, err := mondrian.Anonymize(dataset.LandsEndSchema(), recs, mondrian.Options{
			Constraint: anonmodel.KAnonymity{K: 10},
		}); err != nil {
			t.Fatal(err)
		}
		mdd := time.Since(start)
		t.Logf("n=%d rtree=%v mondrian=%v ratio=%.2f", n, rtd, mdd, float64(mdd)/float64(rtd))
	}
}
