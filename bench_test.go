// Package spatialanon's repository-root benchmarks regenerate the
// measured quantity behind every table and figure of the paper's
// evaluation (Section 5). Timing figures (7, 8a, 9) are ordinary
// wall-clock benchmarks; accuracy figures (8b, 10, 11, 12) run the same
// pipeline and surface their headline number as a custom benchmark
// metric so `go test -bench . -benchmem` prints the whole evaluation.
//
// Sizes are scaled for CI (see DESIGN.md's substitution table); raise
// them with -benchtime or by editing the constants to the paper's
// 4.59M/100M records.
package spatialanon

import (
	"fmt"
	"runtime"
	"testing"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/compact"
	"spatialanon/internal/core"
	"spatialanon/internal/dataset"
	"spatialanon/internal/experiments"
	"spatialanon/internal/mondrian"
	"spatialanon/internal/quality"
	"spatialanon/internal/query"
	"spatialanon/internal/rplustree"
	"spatialanon/internal/sfc"
)

const (
	benchRecords = 20000
	benchSeed    = 99
)

var benchKs = []int{5, 10, 25, 100, 1000}

// landsEnd returns a fresh copy of the benchmark data set. Loaders and
// partitioners reorder their input in place, so handing out the cache
// itself would let one benchmark's run perturb the record order the
// next one measures against.
var leCache []attr.Record

func landsEnd(n int) []attr.Record {
	if len(leCache) < n {
		leCache = dataset.GenerateLandsEnd(n, benchSeed)
	}
	out := make([]attr.Record, n)
	copy(out, leCache[:n])
	return out
}

func newRT(b *testing.B, split rplustree.SplitPolicy, bulk bool, workers int) *core.RTreeAnonymizer {
	b.Helper()
	cfg := core.RTreeConfig{Schema: dataset.LandsEndSchema(), BaseK: 5, Split: split, Parallelism: workers}
	if bulk {
		cfg.BulkLoad = &rplustree.BulkLoadConfig{RecordBytes: 32}
	}
	rt, err := core.NewRTreeAnonymizer(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return rt
}

// benchWorkers returns the worker counts the parallel-vs-serial
// benchmarks sweep: serial always, plus all cores when that differs.
// Output is identical across counts, so the delta is pure wall-clock.
func benchWorkers() []int {
	ws := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		ws = append(ws, n)
	}
	return ws
}

// ---------------------------------------------------------------------------
// Table 1 has no measured quantity (system configuration); the
// reproduction's configuration is what `go test -bench` itself prints
// (goos/goarch/cpu lines) plus EXPERIMENTS.md.

// ---------------------------------------------------------------------------
// Figure 7(a): bulk anonymization time across k — R⁺-tree (flat: one
// build at base k, leaf scan per k) vs top-down Mondrian.

func BenchmarkFig7aRTreeBulk(b *testing.B) {
	recs := landsEnd(benchRecords)
	for _, k := range benchKs {
		for _, w := range benchWorkers() {
			b.Run(fmt.Sprintf("k=%d/workers=%d", k, w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rt := newRT(b, nil, true, w)
					if err := rt.Load(recs); err != nil {
						b.Fatal(err)
					}
					ps, err := rt.Partitions(k)
					if err != nil {
						b.Fatal(err)
					}
					if len(ps) == 0 {
						b.Fatal("no partitions")
					}
				}
			})
		}
	}
}

func BenchmarkFig7aTopDown(b *testing.B) {
	recs := landsEnd(benchRecords)
	for _, k := range benchKs {
		for _, w := range benchWorkers() {
			b.Run(fmt.Sprintf("k=%d/workers=%d", k, w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					cp := make([]attr.Record, len(recs))
					copy(cp, recs)
					b.StartTimer()
					ps, err := mondrian.Anonymize(dataset.LandsEndSchema(), cp, mondrian.Options{
						Constraint:  anonmodel.KAnonymity{K: k},
						Parallelism: w,
					})
					if err != nil {
						b.Fatal(err)
					}
					if len(ps) == 0 {
						b.Fatal("no partitions")
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 7(b): incremental anonymization time per batch (k=10): insert
// a fresh batch into a pre-loaded live index and refresh the view.

func BenchmarkFig7bIncrementalBatch(b *testing.B) {
	const batch = 2000
	recs := landsEnd(benchRecords)
	fresh := dataset.GenerateLandsEnd(2*batch, benchSeed+1)[batch:] // distinct tail batch
	rt := newRT(b, nil, true, 0)
	if err := rt.Load(recs); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Re-IDing keeps inserts unique across iterations.
		cp := make([]attr.Record, len(fresh))
		for j, r := range fresh {
			cp[j] = r.Clone()
			cp[j].ID = int64(1_000_000 + i*batch + j)
		}
		if err := rt.Load(cp); err != nil {
			b.Fatal(err)
		}
		if _, err := rt.Partitions(10); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 8(a): buffer-tree scaling over data set size (synthetic data,
// fixed memory budget).

func BenchmarkFig8aScaling(b *testing.B) {
	for _, n := range []int{10000, 30000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiments.Fig8a(experiments.Config{Seed: benchSeed}, []int{n}, 4<<20)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Rows[0].IOs), "IOs")
			}
			b.SetBytes(int64(n) * 36)
		})
	}
}

// ---------------------------------------------------------------------------
// Figure 8(b): explicit I/O count vs memory budget. The measured
// quantity is deterministic; it is surfaced as the "IOs" metric.

func BenchmarkFig8bIOVsMemory(b *testing.B) {
	for _, memMB := range []int{8, 4, 2, 1} {
		b.Run(fmt.Sprintf("mem=%dMB", memMB), func(b *testing.B) {
			var ios int64
			for i := 0; i < b.N; i++ {
				res, err := experiments.Fig8b(experiments.Config{Seed: benchSeed}, 30000, []int{memMB << 20})
				if err != nil {
					b.Fatal(err)
				}
				ios = res.Rows[0].IOs
			}
			b.ReportMetric(float64(ios), "IOs")
		})
	}
}

// ---------------------------------------------------------------------------
// Figure 9: compaction cost relative to anonymization cost. The bench
// times compaction alone; its tininess relative to BenchmarkFig7aTopDown
// is the figure's point.

func BenchmarkFig9Compaction(b *testing.B) {
	recs := landsEnd(benchRecords)
	cp := make([]attr.Record, len(recs))
	copy(cp, recs)
	ps, err := mondrian.Anonymize(dataset.LandsEndSchema(), cp, mondrian.Options{
		Constraint: anonmodel.KAnonymity{K: 10},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := compact.Partitions(ps)
		if len(out) != len(ps) {
			b.Fatal("partition count changed")
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 10(a)-(c): quality across systems at k=10. Each variant's
// headline metrics are reported as custom benchmark metrics.

func BenchmarkFig10Quality(b *testing.B) {
	recs := landsEnd(benchRecords)
	schema := dataset.LandsEndSchema()
	domain := attr.DomainOf(schema.Dims(), recs)
	const k = 10

	systems := []struct {
		name string
		run  func() []anonmodel.Partition
	}{
		{"rtree", func() []anonmodel.Partition {
			rt := newRT(b, nil, true, 0)
			if err := rt.Load(recs); err != nil {
				b.Fatal(err)
			}
			ps, err := rt.Partitions(k)
			if err != nil {
				b.Fatal(err)
			}
			return ps
		}},
		{"mondrian", func() []anonmodel.Partition {
			cp := make([]attr.Record, len(recs))
			copy(cp, recs)
			ps, err := mondrian.Anonymize(schema, cp, mondrian.Options{Constraint: anonmodel.KAnonymity{K: k}})
			if err != nil {
				b.Fatal(err)
			}
			return ps
		}},
		{"mondrian+compact", func() []anonmodel.Partition {
			cp := make([]attr.Record, len(recs))
			copy(cp, recs)
			ps, err := mondrian.Anonymize(schema, cp, mondrian.Options{Constraint: anonmodel.KAnonymity{K: k}})
			if err != nil {
				b.Fatal(err)
			}
			return compact.Partitions(ps)
		}},
	}
	for _, sys := range systems {
		b.Run(sys.name, func(b *testing.B) {
			var rep quality.Report
			for i := 0; i < b.N; i++ {
				rep = quality.Measure(schema, sys.run(), domain)
			}
			b.ReportMetric(rep.Discernibility, "DM")
			b.ReportMetric(rep.Certainty, "CM")
			b.ReportMetric(rep.KLDivergence, "KL")
		})
	}
}

// ---------------------------------------------------------------------------
// Figure 11: incremental vs re-anonymized quality. The bench runs the
// full batch pipeline and reports the final certainty of both sides.

func BenchmarkFig11IncrementalQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(experiments.Config{
			Records: 8000, BatchSize: 2000, Batches: 4, Seed: benchSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.Incremental.Certainty, "incCM")
		b.ReportMetric(last.Reanonymized.Certainty, "reCM")
	}
}

// ---------------------------------------------------------------------------
// Figure 12(a): mean COUNT error across systems (k=10); 12(b) is the
// same pipeline bucketed, timed as one unit.

func BenchmarkFig12aQueryError(b *testing.B) {
	recs := landsEnd(benchRecords)
	queries := query.FullRangeWorkload(recs, 300, benchSeed)
	rt := newRT(b, nil, true, 0)
	if err := rt.Load(recs); err != nil {
		b.Fatal(err)
	}
	ps, err := rt.Partitions(10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var mean float64
	for i := 0; i < b.N; i++ {
		results, err := query.Evaluate(ps, recs, queries)
		if err != nil {
			b.Fatal(err)
		}
		mean = query.MeanError(results)
	}
	b.ReportMetric(mean, "meanErr")
}

func BenchmarkFig12bSelectivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12b(experiments.Config{Records: 6000, Queries: 200, Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 12(c)/(d): biased vs unbiased splitting under the Zipcode
// workload. Errors of both trees are reported as metrics.

func BenchmarkFig12cBiasedSplit(b *testing.B) {
	recs := landsEnd(benchRecords)
	schema := dataset.LandsEndSchema()
	zip := schema.AttrIndex("zipcode")
	domain := attr.DomainOf(schema.Dims(), recs)
	queries := query.SingleAttrWorkload(recs, zip, 300, benchSeed, domain)

	run := func(b *testing.B, split rplustree.SplitPolicy) float64 {
		rt := newRT(b, split, false, 0)
		if err := rt.Load(recs); err != nil {
			b.Fatal(err)
		}
		ps, err := rt.Partitions(10)
		if err != nil {
			b.Fatal(err)
		}
		results, err := query.Evaluate(ps, recs, queries)
		if err != nil {
			b.Fatal(err)
		}
		return query.MeanError(results)
	}
	b.Run("biased", func(b *testing.B) {
		var e float64
		for i := 0; i < b.N; i++ {
			e = run(b, rplustree.BiasedPolicy{Axes: []int{zip}})
		}
		b.ReportMetric(e, "meanErr")
	})
	b.Run("unbiased", func(b *testing.B) {
		var e float64
		for i := 0; i < b.N; i++ {
			e = run(b, nil)
		}
		b.ReportMetric(e, "meanErr")
	})
}

// ---------------------------------------------------------------------------
// Ablations called out in DESIGN.md.

// Split policy ablation: quality impact of the four policies.
func BenchmarkAblationSplitPolicy(b *testing.B) {
	recs := landsEnd(benchRecords)
	schema := dataset.LandsEndSchema()
	domain := attr.DomainOf(schema.Dims(), recs)
	policies := []struct {
		name  string
		split rplustree.SplitPolicy
	}{
		{"min-margin", rplustree.MinMarginPolicy{}},
		{"widest-axis", rplustree.WidestAxisPolicy{}},
		{"biased-zip", rplustree.BiasedPolicy{Axes: []int{0}}},
		{"weighted", rplustree.WeightedPolicy{Weights: []float64{4, 1, 1, 1, 1, 1, 1, 1}}},
	}
	for _, pol := range policies {
		b.Run(pol.name, func(b *testing.B) {
			var cm float64
			for i := 0; i < b.N; i++ {
				rt := newRT(b, pol.split, false, 0)
				if err := rt.Load(recs); err != nil {
					b.Fatal(err)
				}
				ps, err := rt.Partitions(10)
				if err != nil {
					b.Fatal(err)
				}
				cm = quality.Certainty(schema, ps, domain)
			}
			b.ReportMetric(cm, "CM")
		})
	}
}

// Load-path ablation: buffer-tree vs tuple-at-a-time vs SFC sorting.
func BenchmarkAblationLoadPath(b *testing.B) {
	recs := landsEnd(benchRecords)
	b.Run("buffer-tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rt := newRT(b, nil, true, 0)
			if err := rt.Load(recs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tuple", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rt := newRT(b, nil, false, 0)
			if err := rt.Load(recs); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, curve := range []sfc.Curve{sfc.Hilbert, sfc.ZOrder} {
		b.Run("sfc-"+curve.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cp := make([]attr.Record, len(recs))
				copy(cp, recs)
				b.StartTimer()
				if _, err := sfc.Anonymize(cp, curve, anonmodel.KAnonymity{K: 5}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Leaf-factor ablation: the paper's constant c (leaves hold k..ck).
func BenchmarkAblationLeafFactor(b *testing.B) {
	recs := landsEnd(benchRecords)
	schema := dataset.LandsEndSchema()
	domain := attr.DomainOf(schema.Dims(), recs)
	for _, c := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("c=%d", c), func(b *testing.B) {
			var cm float64
			for i := 0; i < b.N; i++ {
				rt, err := core.NewRTreeAnonymizer(core.RTreeConfig{
					Schema: schema, BaseK: 5, LeafFactor: c,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := rt.Load(recs); err != nil {
					b.Fatal(err)
				}
				ps, err := rt.Partitions(10)
				if err != nil {
					b.Fatal(err)
				}
				cm = quality.Certainty(schema, ps, domain)
			}
			b.ReportMetric(cm, "CM")
		})
	}
}

// Index-choice ablation (Section 6 after [16]): R⁺-tree vs PR-quadtree
// vs grid file as the anonymizing index — build+publish time and the
// certainty of the result.
func BenchmarkAblationIndexChoice(b *testing.B) {
	recs := landsEnd(benchRecords)
	schema := dataset.LandsEndSchema()
	domain := attr.DomainOf(schema.Dims(), recs)
	cons := anonmodel.KAnonymity{K: 10}
	systems := []core.Anonymizer{
		&core.QuadAnonymizer{Schema: schema, Constraint: cons},
		&core.GridAnonymizer{Schema: schema, Constraint: cons, Compact: true},
		&core.BPTreeAnonymizer{Schema: schema, Constraint: cons, Key: schema.AttrIndex("zipcode")},
	}
	b.Run("rtree", func(b *testing.B) {
		var cm float64
		for i := 0; i < b.N; i++ {
			rt := newRT(b, nil, false, 0)
			if err := rt.Load(recs); err != nil {
				b.Fatal(err)
			}
			ps, err := rt.Partitions(10)
			if err != nil {
				b.Fatal(err)
			}
			cm = quality.Certainty(schema, ps, domain)
		}
		b.ReportMetric(cm, "CM")
	})
	for _, sys := range systems {
		b.Run(sys.Name(), func(b *testing.B) {
			var cm float64
			for i := 0; i < b.N; i++ {
				cp := make([]attr.Record, len(recs))
				copy(cp, recs)
				ps, err := sys.Anonymize(cp)
				if err != nil {
					b.Fatal(err)
				}
				cm = quality.Certainty(schema, ps, domain)
			}
			b.ReportMetric(cm, "CM")
		})
	}
}

// Uniform-estimate ablation (Section 2.3's alternative query
// semantics): absolute estimation error of the two evaluation modes.
func BenchmarkAblationQuerySemantics(b *testing.B) {
	recs := landsEnd(benchRecords)
	queries := query.FullRangeWorkload(recs, 200, benchSeed+5)
	rt := newRT(b, nil, false, 0)
	if err := rt.Load(recs); err != nil {
		b.Fatal(err)
	}
	ps, err := rt.Partitions(10)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("intersection-count", func(b *testing.B) {
		var mean float64
		for i := 0; i < b.N; i++ {
			results, err := query.Evaluate(ps, recs, queries)
			if err != nil {
				b.Fatal(err)
			}
			mean = query.MeanError(results)
		}
		b.ReportMetric(mean, "meanErr")
	})
	b.Run("uniform-estimate", func(b *testing.B) {
		var mean float64
		for i := 0; i < b.N; i++ {
			var sum float64
			for _, q := range queries {
				orig := query.CountOriginal(recs, q)
				est := query.EstimateUniform(ps, q)
				diff := est - float64(orig)
				if diff < 0 {
					diff = -diff
				}
				sum += diff / float64(orig)
			}
			mean = sum / float64(len(queries))
		}
		b.ReportMetric(mean, "meanAbsErr")
	})
}
