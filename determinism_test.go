package spatialanon

// Parallel execution in this repository promises more than "same
// records, some order": every worker count must produce the identical
// anonymization — the same partitions, in the same order, with the
// same boxes, holding the same records in the same order — and, for
// the buffer-tree loader, the same I/O counters. These tests pin that
// promise for the three pipelines the `-workers` knob reaches: bulk
// load, tuple-at-a-time load + leaf scan, and Mondrian. workers=1 is
// the reference execution; 2 and 8 must match it exactly (8 on a
// single-core runner still exercises the pool scheduling paths).

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/compact"
	"spatialanon/internal/core"
	"spatialanon/internal/dataset"
	"spatialanon/internal/fault"
	"spatialanon/internal/mondrian"
	"spatialanon/internal/quality"
	"spatialanon/internal/query"
	"spatialanon/internal/routing"
	"spatialanon/internal/rplustree"
	"spatialanon/internal/serve"
	"spatialanon/internal/sfc"
	"spatialanon/internal/wal"
)

const detRecords = 20000 // above the parallel-path thresholds (parSplitMin, parRouteMin)

var detWorkerCounts = []int{1, 2, 8}

func detRecsCopy(t *testing.T) []attr.Record {
	t.Helper()
	return dataset.GenerateLandsEnd(detRecords, benchSeed)
}

// mustEqualPartitions asserts got is exactly ref: same length, and per
// partition the same box (bitwise float equality) and the same record
// IDs in the same order.
func mustEqualPartitions(t *testing.T, label string, ref, got []anonmodel.Partition) {
	t.Helper()
	if len(got) != len(ref) {
		t.Fatalf("%s: %d partitions, want %d", label, len(got), len(ref))
	}
	for i := range ref {
		r, g := ref[i], got[i]
		if len(g.Box) != len(r.Box) {
			t.Fatalf("%s: partition %d box dims %d, want %d", label, i, len(g.Box), len(r.Box))
		}
		for d := range r.Box {
			if g.Box[d] != r.Box[d] {
				t.Fatalf("%s: partition %d axis %d box %v, want %v", label, i, d, g.Box[d], r.Box[d])
			}
		}
		if len(g.Records) != len(r.Records) {
			t.Fatalf("%s: partition %d holds %d records, want %d", label, i, len(g.Records), len(r.Records))
		}
		for j := range r.Records {
			if g.Records[j].ID != r.Records[j].ID {
				t.Fatalf("%s: partition %d record %d has ID %d, want %d", label, i, j, g.Records[j].ID, r.Records[j].ID)
			}
		}
	}
}

func buildBulk(t *testing.T, workers int) (*core.RTreeAnonymizer, []anonmodel.Partition, []anonmodel.Partition) {
	t.Helper()
	rt, err := core.NewRTreeAnonymizer(core.RTreeConfig{
		Schema:      dataset.LandsEndSchema(),
		BaseK:       5,
		Parallelism: workers,
		BulkLoad:    &rplustree.BulkLoadConfig{RecordBytes: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Load(detRecsCopy(t)); err != nil {
		t.Fatal(err)
	}
	base, err := rt.Partitions(0)
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := rt.Partitions(25)
	if err != nil {
		t.Fatal(err)
	}
	return rt, base, coarse
}

// TestParallelBulkLoadDeterministic: the buffer-tree load, the split
// cascades it triggers, and the leaf-scan publication must all be
// invariant under the worker count — including the pager's I/O
// counters, which only stay equal because structural mutation and
// storage charging remain on the coordinating goroutine in serial
// order.
func TestParallelBulkLoadDeterministic(t *testing.T) {
	refRT, refBase, refCoarse := buildBulk(t, 1)
	refReads, refWrites := refRT.IOStats()
	for _, w := range detWorkerCounts[1:] {
		rt, base, coarse := buildBulk(t, w)
		mustEqualPartitions(t, "bulk base", refBase, base)
		mustEqualPartitions(t, "bulk k=25", refCoarse, coarse)
		reads, writes := rt.IOStats()
		if reads != refReads || writes != refWrites {
			t.Fatalf("workers=%d: I/O %d reads/%d writes, want %d/%d — parallelism leaked into the storage schedule",
				w, reads, writes, refReads, refWrites)
		}
		if err := rt.Tree().CheckInvariants(); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
	}
}

// TestParallelTupleLoadDeterministic covers the tuple-at-a-time path:
// inserts are serial, but split cascades of oversized leaves and the
// leaf-scan publication go through the parallel layer.
func TestParallelTupleLoadDeterministic(t *testing.T) {
	build := func(w int) []anonmodel.Partition {
		rt, err := core.NewRTreeAnonymizer(core.RTreeConfig{
			Schema:      dataset.LandsEndSchema(),
			BaseK:       5,
			Parallelism: w,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Load(detRecsCopy(t)); err != nil {
			t.Fatal(err)
		}
		ps, err := rt.Partitions(10)
		if err != nil {
			t.Fatal(err)
		}
		return ps
	}
	ref := build(1)
	for _, w := range detWorkerCounts[1:] {
		mustEqualPartitions(t, "tuple k=10", ref, build(w))
	}
}

// TestParallelMondrianDeterministic: the fork-join recursion assembles
// its output left-half-first at every cut, so the partition list is
// the serial one for every worker count, in both strict and relaxed
// mode, with and without compaction.
func TestParallelMondrianDeterministic(t *testing.T) {
	for _, relaxed := range []bool{false, true} {
		run := func(w int) []anonmodel.Partition {
			ps, err := mondrian.Anonymize(dataset.LandsEndSchema(), detRecsCopy(t), mondrian.Options{
				Constraint:  anonmodel.KAnonymity{K: 10},
				Relaxed:     relaxed,
				Parallelism: w,
			})
			if err != nil {
				t.Fatal(err)
			}
			return ps
		}
		ref := run(1)
		refC := compact.PartitionsP(ref, 1)
		for _, w := range detWorkerCounts[1:] {
			got := run(w)
			mustEqualPartitions(t, "mondrian", ref, got)
			mustEqualPartitions(t, "mondrian+compact", refC, compact.PartitionsP(got, w))
		}
	}
}

// servingOps builds a deterministic churn stream: a load of inserts,
// then interleaved deletes and relocations of a fixed subset. The
// stream is pure function of the seed, so every chunking of it must
// drive the store to the identical state.
func servingOps(n int) []wal.Op {
	recs := dataset.GenerateLandsEnd(n, benchSeed)
	ops := make([]wal.Op, 0, n+2*(n/5))
	for _, r := range recs {
		ops = append(ops, wal.Op{Type: wal.TypeInsert, Rec: r})
	}
	for i := 0; i < n; i += 5 {
		r := recs[i]
		if i%2 == 0 {
			ops = append(ops, wal.Op{Type: wal.TypeDelete, ID: r.ID, OldQI: r.QI})
		} else {
			moved := attr.Record{ID: r.ID, QI: append([]float64(nil), r.QI...), Sensitive: r.Sensitive}
			moved.QI[0] += 1
			ops = append(ops, wal.Op{Type: wal.TypeUpdate, ID: r.ID, OldQI: r.QI, Rec: moved})
		}
	}
	return ops
}

// TestServingLayerDeterministic pins the serving layer to the
// byte-equality contract: the same operation stream, group-committed
// in any batch chunking and served at any worker count, must publish
// the identical releases and the identical query answers as the
// chunk=1, workers=1 reference — and as the durable store's own scan.
func TestServingLayerDeterministic(t *testing.T) {
	const nRecs = 4000
	ops := servingOps(nRecs)
	queries := query.FullRangeWorkload(dataset.GenerateLandsEnd(nRecs, benchSeed), 50, benchSeed)

	type outputs struct {
		base, coarse []anonmodel.Partition
		res          []query.Result
	}
	build := func(chunk, workers int) outputs {
		st, err := wal.Create(wal.Options{
			Dir:    t.TempDir(),
			Tree:   rplustree.Config{Schema: dataset.LandsEndSchema(), BaseK: 5, Parallelism: workers},
			NoSync: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		for off := 0; off < len(ops); off += chunk {
			end := off + chunk
			if end > len(ops) {
				end = len(ops)
			}
			if _, err := st.ApplyBatch(ops[off:end]); err != nil {
				t.Fatalf("chunk=%d off=%d: %v", chunk, off, err)
			}
		}
		s, err := serve.New(st, serve.Options{Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		v := s.View()
		base, err := v.Release(0)
		if err != nil {
			t.Fatal(err)
		}
		coarse, err := v.Release(25)
		if err != nil {
			t.Fatal(err)
		}
		res, err := v.Evaluate(queries)
		if err != nil {
			t.Fatal(err)
		}
		// The serving layer's base release must equal the durable
		// store's own scan of the same state.
		direct, err := st.Release(0)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualPartitions(t, "serve vs store release", direct, base)
		return outputs{base: base, coarse: coarse, res: res}
	}

	ref := build(1, 1)
	for _, chunk := range []int{7, 64} {
		for _, w := range detWorkerCounts {
			got := build(chunk, w)
			mustEqualPartitions(t, "serve base", ref.base, got.base)
			mustEqualPartitions(t, "serve k=25", ref.coarse, got.coarse)
			for i := range ref.res {
				if got.res[i].Original != ref.res[i].Original || got.res[i].Anonymized != ref.res[i].Anonymized || got.res[i].Err != ref.res[i].Err {
					t.Fatalf("chunk=%d workers=%d: query %d result %+v, want %+v", chunk, w, i, got.res[i], ref.res[i])
				}
			}
		}
	}
}

// TestServerPathDeterministic drives the same stream through the
// group-commit front end itself (sequential submits, so batches and
// epochs are reproducible) and checks the served release equals the
// ApplyBatch reference.
func TestServerPathDeterministic(t *testing.T) {
	const nRecs = 2000
	ops := servingOps(nRecs)

	runServer := func(maxBatch int) []anonmodel.Partition {
		st, err := wal.Create(wal.Options{
			Dir:    t.TempDir(),
			Tree:   rplustree.Config{Schema: dataset.LandsEndSchema(), BaseK: 5},
			NoSync: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		s, err := serve.New(st, serve.Options{MaxBatch: maxBatch})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		for _, op := range ops {
			switch op.Type {
			case wal.TypeInsert:
				err = s.Insert(op.Rec)
			case wal.TypeDelete:
				_, err = s.Delete(op.ID, op.OldQI)
			case wal.TypeUpdate:
				_, err = s.Update(op.ID, op.OldQI, op.Rec)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		ps, err := s.Release(0)
		if err != nil {
			t.Fatal(err)
		}
		return ps
	}

	refStore, err := wal.Create(wal.Options{
		Dir:    t.TempDir(),
		Tree:   rplustree.Config{Schema: dataset.LandsEndSchema(), BaseK: 5},
		NoSync: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer refStore.Close()
	if _, err := refStore.ApplyBatch(ops); err != nil {
		t.Fatal(err)
	}
	ref, err := refStore.Release(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, mb := range []int{1, 64} {
		mustEqualPartitions(t, "server path", ref, runServer(mb))
	}
}

// TestDegradedReadsDeterministic extends the byte-equality contract
// into the failure path: when a deterministic fault schedule poisons
// the store mid-stream, the degraded-readonly server keeps serving its
// last published epoch — and that epoch, read at any worker count,
// must be identical to the workers=1 reference, down to record order.
// Degradation must not cost determinism.
func TestDegradedReadsDeterministic(t *testing.T) {
	const nRecs = 300
	recs := dataset.GenerateLandsEnd(nRecs, benchSeed)

	build := func(w int) (int, []anonmodel.Partition) {
		st, err := wal.Create(wal.Options{
			Dir:    t.TempDir(),
			Tree:   rplustree.Config{Schema: dataset.LandsEndSchema(), BaseK: 5, Parallelism: w},
			NoSync: true,
			// One permanent device fault at a fixed point of the schedule:
			// sequential submits make the append sequence — and therefore
			// the poisoning ack boundary — a pure function of the seed.
			AppendFault: fault.NewFlaky(1, fault.FlakyConfig{
				PermanentWriteRate: 1,
				After:              2 + 2*120,
				MaxFaults:          1,
			}),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		s, err := serve.New(st, serve.Options{Parallelism: w})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		acked := 0
		var failErr error
		for _, r := range recs {
			if err := s.Insert(r); err != nil {
				failErr = err
				break
			}
			acked++
		}
		if failErr == nil {
			t.Fatal("fault schedule never fired")
		}
		if !errors.Is(failErr, serve.ErrDegraded) || !errors.Is(failErr, wal.ErrPoisoned) {
			t.Fatalf("workers=%d: poisoning surfaced untyped: %v", w, failErr)
		}
		if got := s.State(); got != serve.StateDegraded {
			t.Fatalf("workers=%d: state %v after poisoning", w, got)
		}
		// Writes stay refused with the same typed error...
		if err := s.Insert(recs[acked]); !errors.Is(err, serve.ErrDegraded) {
			t.Fatalf("workers=%d: degraded write rejection: %v", w, err)
		}
		// ...while reads serve the last published epoch.
		ps, err := s.View().Release(0)
		if err != nil {
			t.Fatalf("workers=%d: degraded read: %v", w, err)
		}
		return acked, ps
	}

	refAcked, ref := build(1)
	if refAcked < 5 {
		t.Fatalf("reference acknowledged only %d records before poisoning", refAcked)
	}
	for _, w := range detWorkerCounts[1:] {
		acked, got := build(w)
		if acked != refAcked {
			t.Fatalf("workers=%d acknowledged %d records before poisoning, reference %d", w, acked, refAcked)
		}
		mustEqualPartitions(t, fmt.Sprintf("degraded read workers=%d", w), ref, got)
	}
}

// TestParallelEvaluatorsDeterministic: the metric and query evaluators
// must return the identical values for every worker count — MeasureP
// by its fixed chunked reduction, EvaluateP because queries never
// share accumulators.
func TestParallelEvaluatorsDeterministic(t *testing.T) {
	recs := detRecsCopy(t)
	schema := dataset.LandsEndSchema()
	domain := attr.DomainOf(schema.Dims(), recs)
	ps, err := mondrian.Anonymize(schema, detRecsCopy(t), mondrian.Options{
		Constraint: anonmodel.KAnonymity{K: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	queries := query.FullRangeWorkload(recs, 100, benchSeed)
	refRep := quality.MeasureP(schema, ps, domain, 1)
	refRes, err := query.EvaluateP(ps, recs, queries, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range detWorkerCounts[1:] {
		rep := quality.MeasureP(schema, ps, domain, w)
		// KL is excluded: its map-ordered inner sum varies run to run
		// even serially; DM and CM must match bit for bit.
		if rep.Partitions != refRep.Partitions || rep.Discernibility != refRep.Discernibility || rep.Certainty != refRep.Certainty {
			t.Fatalf("workers=%d: MeasureP %+v, want %+v", w, rep, refRep)
		}
		res, err := query.EvaluateP(ps, recs, queries, w)
		if err != nil {
			t.Fatal(err)
		}
		for i := range refRes {
			if res[i].Original != refRes[i].Original || res[i].Anonymized != refRes[i].Anonymized || res[i].Err != refRes[i].Err {
				t.Fatalf("workers=%d: query %d result %+v, want %+v", w, i, res[i], refRes[i])
			}
		}
	}
}

// TestRoutingAcceleratorDeterministic pins the read accelerator to the
// byte-equality contract: for every curve, block size and serving
// worker count, the accelerated point, range and estimate answers must
// be identical — counts exactly, estimates bit for bit — to the linear
// reference scan over the same release. The accelerator may prune
// differently per configuration; it may never answer differently.
func TestRoutingAcceleratorDeterministic(t *testing.T) {
	const nRecs = 4000
	recs := dataset.GenerateLandsEnd(nRecs, benchSeed)
	points := query.PointWorkload(recs, 100, benchSeed+1)
	ranges := query.FullRangeWorkload(recs, 100, benchSeed+2)

	release := func(workers int) []anonmodel.Partition {
		st, err := wal.Create(wal.Options{
			Dir:    t.TempDir(),
			Tree:   rplustree.Config{Schema: dataset.LandsEndSchema(), BaseK: 5, Parallelism: workers},
			NoSync: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		ops := make([]wal.Op, len(recs))
		for i, r := range recs {
			ops[i] = wal.Op{Type: wal.TypeInsert, Rec: r}
		}
		if _, err := st.ApplyBatch(ops); err != nil {
			t.Fatal(err)
		}
		s, err := serve.New(st, serve.Options{Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		ps, err := s.View().Release(0)
		if err != nil {
			t.Fatal(err)
		}
		return ps
	}

	ref := release(1)
	wantPoint := make([]int, len(points))
	for i, p := range points {
		wantPoint[i] = query.CountAnonymizedPoint(ref, p)
	}
	wantRange := make([]int, len(ranges))
	wantEst := make([]uint64, len(ranges))
	for i, q := range ranges {
		wantRange[i] = query.CountAnonymized(ref, q)
		wantEst[i] = math.Float64bits(query.EstimateUniform(ref, q))
	}

	for _, w := range detWorkerCounts {
		ps := release(w)
		mustEqualPartitions(t, fmt.Sprintf("accel release workers=%d", w), ref, ps)
		for _, curve := range []sfc.Curve{sfc.ZOrder, sfc.Hilbert} {
			for _, block := range []int{1, 16, 256} {
				ix, err := routing.Build(ps, routing.Options{Curve: curve, BlockSize: block})
				if err != nil {
					t.Fatal(err)
				}
				var s routing.Scratch
				label := fmt.Sprintf("workers=%d curve=%v block=%d", w, curve, block)
				for i, p := range points {
					if got := ix.PointCount(p, &s); got != wantPoint[i] {
						t.Fatalf("%s: point %d answered %d, reference %d", label, i, got, wantPoint[i])
					}
				}
				for i, q := range ranges {
					if got := ix.RangeCount(q, &s); got != wantRange[i] {
						t.Fatalf("%s: range %d answered %d, reference %d", label, i, got, wantRange[i])
					}
					if got := math.Float64bits(ix.Estimate(q, &s)); got != wantEst[i] {
						t.Fatalf("%s: estimate %d bits %x, reference %x", label, i, got, wantEst[i])
					}
				}
			}
		}
	}
}
