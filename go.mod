module spatialanon

go 1.22
