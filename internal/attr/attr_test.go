package attr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if Numeric.String() != "numeric" || Categorical.String() != "categorical" {
		t.Fatalf("kind strings wrong: %q %q", Numeric, Categorical)
	}
	if Kind(7).String() != "Kind(7)" {
		t.Fatalf("unknown kind string: %q", Kind(7))
	}
}

func TestSchemaBasics(t *testing.T) {
	s := &Schema{
		Attrs: []Attribute{
			{Name: "age", Kind: Numeric},
			{Name: "sex", Kind: Categorical},
			{Name: "zipcode", Kind: Numeric},
		},
		Sensitive: "ailment",
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	if s.Dims() != 3 {
		t.Fatalf("Dims = %d, want 3", s.Dims())
	}
	if got := s.AttrIndex("zipcode"); got != 2 {
		t.Fatalf("AttrIndex(zipcode) = %d, want 2", got)
	}
	if got := s.AttrIndex("nope"); got != -1 {
		t.Fatalf("AttrIndex(nope) = %d, want -1", got)
	}
	names := s.Names()
	if len(names) != 3 || names[0] != "age" || names[2] != "zipcode" {
		t.Fatalf("Names = %v", names)
	}
}

func TestSchemaValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		s    Schema
	}{
		{"empty", Schema{}},
		{"dup", Schema{Attrs: []Attribute{{Name: "a"}, {Name: "a"}}}},
		{"unnamed", Schema{Attrs: []Attribute{{Name: ""}}}},
		{"numeric-hierarchy", Schema{Attrs: []Attribute{{Name: "a", Kind: Numeric, Hierarchy: MustFlatHierarchy("r", "x")}}}},
		{"negative-weight", Schema{Attrs: []Attribute{{Name: "a", Weight: -1}}}},
	}
	for _, c := range cases {
		if err := c.s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid schema", c.name)
		}
	}
}

func TestEffectiveWeight(t *testing.T) {
	if w := (Attribute{}).EffectiveWeight(); w != 1 {
		t.Fatalf("zero weight should default to 1, got %v", w)
	}
	if w := (Attribute{Weight: 2.5}).EffectiveWeight(); w != 2.5 {
		t.Fatalf("explicit weight lost: %v", w)
	}
}

func TestRecordClone(t *testing.T) {
	r := Record{ID: 7, QI: []float64{1, 2, 3}, Sensitive: "flu"}
	c := r.Clone()
	c.QI[0] = 99
	if r.QI[0] != 1 {
		t.Fatal("Clone shares QI slice")
	}
	if c.ID != 7 || c.Sensitive != "flu" {
		t.Fatalf("Clone lost fields: %+v", c)
	}
}

func TestIntervalBasics(t *testing.T) {
	iv := Interval{Lo: 2, Hi: 5}
	if iv.IsEmpty() || iv.Width() != 3 {
		t.Fatalf("interval basics wrong: %+v", iv)
	}
	if !iv.Contains(2) || !iv.Contains(5) || iv.Contains(5.001) {
		t.Fatal("Contains boundary handling wrong")
	}
	e := EmptyInterval()
	if !e.IsEmpty() || e.Width() != 0 {
		t.Fatal("empty interval misbehaves")
	}
	if e.Contains(0) {
		t.Fatal("empty interval contains a point")
	}
}

func TestIntervalSetOps(t *testing.T) {
	a := Interval{Lo: 0, Hi: 10}
	b := Interval{Lo: 5, Hi: 15}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Fatal("overlapping intervals report disjoint")
	}
	got := a.Intersect(b)
	if got != (Interval{Lo: 5, Hi: 10}) {
		t.Fatalf("Intersect = %v", got)
	}
	u := a.Union(b)
	if u != (Interval{Lo: 0, Hi: 15}) {
		t.Fatalf("Union = %v", u)
	}
	c := Interval{Lo: 20, Hi: 30}
	if a.Intersects(c) {
		t.Fatal("disjoint intervals report overlap")
	}
	if !a.Intersect(c).IsEmpty() {
		t.Fatal("Intersect of disjoint not empty")
	}
	// Touching intervals share the boundary point (closed intervals).
	d := Interval{Lo: 10, Hi: 12}
	if !a.Intersects(d) {
		t.Fatal("touching closed intervals must intersect")
	}
	if a.Union(EmptyInterval()) != a || EmptyInterval().Union(a) != a {
		t.Fatal("union with empty is not identity")
	}
}

func TestIntervalInclude(t *testing.T) {
	iv := EmptyInterval().Include(5)
	if iv != (Interval{Lo: 5, Hi: 5}) {
		t.Fatalf("Include on empty = %v", iv)
	}
	iv = iv.Include(2).Include(9)
	if iv != (Interval{Lo: 2, Hi: 9}) {
		t.Fatalf("Include grew wrong: %v", iv)
	}
}

func TestIntervalContainsInterval(t *testing.T) {
	a := Interval{Lo: 0, Hi: 10}
	if !a.ContainsInterval(Interval{Lo: 3, Hi: 7}) {
		t.Fatal("containment missed")
	}
	if a.ContainsInterval(Interval{Lo: 3, Hi: 11}) {
		t.Fatal("false containment")
	}
	if !a.ContainsInterval(EmptyInterval()) {
		t.Fatal("everything contains the empty interval")
	}
}

func TestIntervalString(t *testing.T) {
	if s := (Interval{Lo: 20, Hi: 30}).String(); s != "[20 - 30]" {
		t.Fatalf("String = %q", s)
	}
	if s := (Interval{Lo: 7, Hi: 7}).String(); s != "7" {
		t.Fatalf("point String = %q", s)
	}
	if s := EmptyInterval().String(); s != "[]" {
		t.Fatalf("empty String = %q", s)
	}
	if s := (Interval{Lo: 1.5, Hi: 2.25}).String(); s != "[1.5 - 2.25]" {
		t.Fatalf("fraction String = %q", s)
	}
}

func TestBoxBasics(t *testing.T) {
	b := NewBox(3)
	if !b.IsEmpty() {
		t.Fatal("NewBox not empty")
	}
	b.Include([]float64{1, 2, 3})
	b.Include([]float64{4, 0, 3})
	if b.IsEmpty() {
		t.Fatal("box still empty after Include")
	}
	if !b.Contains([]float64{2, 1, 3}) {
		t.Fatal("box misses interior point")
	}
	if b.Contains([]float64{2, 1, 4}) {
		t.Fatal("box contains exterior point")
	}
	if b.Contains([]float64{2, 1}) {
		t.Fatal("dimension mismatch should not contain")
	}
	want := Box{{1, 4}, {0, 2}, {3, 3}}
	if !b.Equal(want) {
		t.Fatalf("box = %v, want %v", b, want)
	}
}

func TestBoxAreaMargin(t *testing.T) {
	b := Box{{0, 2}, {0, 3}}
	if b.Area() != 6 {
		t.Fatalf("Area = %v", b.Area())
	}
	if b.Margin() != 5 {
		t.Fatalf("Margin = %v", b.Margin())
	}
	// Degenerate dimension zeroes area but not margin.
	d := Box{{0, 2}, {5, 5}}
	if d.Area() != 0 || d.Margin() != 2 {
		t.Fatalf("degenerate box area/margin = %v/%v", d.Area(), d.Margin())
	}
	if NewBox(2).Area() != 0 || NewBox(2).Margin() != 0 {
		t.Fatal("empty box must have zero area and margin")
	}
}

func TestBoxWeightedMargin(t *testing.T) {
	s := &Schema{Attrs: []Attribute{{Name: "a", Weight: 2}, {Name: "b"}}}
	domain := Box{{0, 10}, {0, 100}}
	b := Box{{0, 5}, {0, 25}}
	got := b.WeightedMargin(s, domain)
	want := 2*0.5 + 1*0.25
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("WeightedMargin = %v, want %v", got, want)
	}
	// A degenerate domain dimension contributes nothing rather than NaN.
	dd := Box{{0, 10}, {5, 5}}
	if v := b.WeightedMargin(s, dd); math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("WeightedMargin with degenerate domain = %v", v)
	}
}

func TestBoxIntersection(t *testing.T) {
	a := Box{{0, 10}, {0, 10}}
	b := Box{{5, 15}, {5, 15}}
	if !a.Intersects(b) {
		t.Fatal("overlapping boxes report disjoint")
	}
	got := a.Intersect(b)
	if !got.Equal(Box{{5, 10}, {5, 10}}) {
		t.Fatalf("Intersect = %v", got)
	}
	c := Box{{11, 12}, {0, 10}}
	if a.Intersects(c) || !a.Disjoint(c) {
		t.Fatal("disjoint in one dim must mean disjoint overall")
	}
	if !a.Intersect(c).IsEmpty() {
		t.Fatal("Intersect of disjoint boxes not empty")
	}
}

func TestBoxUnionContains(t *testing.T) {
	a := Box{{0, 1}, {0, 1}}
	b := Box{{5, 6}, {5, 6}}
	u := a.Union(b)
	if !u.ContainsBox(a) || !u.ContainsBox(b) {
		t.Fatal("union does not contain operands")
	}
	if !u.Equal(Box{{0, 6}, {0, 6}}) {
		t.Fatalf("Union = %v", u)
	}
	if !a.ContainsBox(NewBox(2)) {
		t.Fatal("every box contains the empty box")
	}
	if len(a.Union(Box{})) != 2 || len(Box{}.Union(a)) != 2 {
		t.Fatal("union with zero-dim box should adopt the other box")
	}
}

func TestBoxEnlargement(t *testing.T) {
	b := Box{{0, 10}, {0, 10}}
	if e := b.Enlargement([]float64{5, 5}); e != 0 {
		t.Fatalf("interior point enlargement = %v", e)
	}
	if e := b.Enlargement([]float64{-3, 12}); e != 5 {
		t.Fatalf("exterior enlargement = %v, want 5", e)
	}
}

func TestBoxSplit(t *testing.T) {
	b := Box{{0, 10}, {0, 10}}
	l, r := b.SplitBox(0, 4)
	if !l.Equal(Box{{0, 4}, {0, 10}}) || !r.Equal(Box{{4, 10}, {0, 10}}) {
		t.Fatalf("SplitBox = %v / %v", l, r)
	}
}

func TestBoxCenterCloneString(t *testing.T) {
	b := Box{{0, 10}, {4, 4}}
	c := b.Center()
	if c[0] != 5 || c[1] != 4 {
		t.Fatalf("Center = %v", c)
	}
	cl := b.Clone()
	cl[0] = Interval{Lo: 9, Hi: 9}
	if b[0].Lo != 0 {
		t.Fatal("Clone aliases storage")
	}
	if s := b.String(); s != "([0 - 10], 4)" {
		t.Fatalf("String = %q", s)
	}
}

func TestDomainOf(t *testing.T) {
	recs := []Record{
		{QI: []float64{1, 10}},
		{QI: []float64{5, -3}},
		{QI: []float64{2, 7}},
	}
	d := DomainOf(2, recs)
	if !d.Equal(Box{{1, 5}, {-3, 10}}) {
		t.Fatalf("DomainOf = %v", d)
	}
	if !DomainOf(2, nil).IsEmpty() {
		t.Fatal("DomainOf no records should be empty")
	}
}

func TestPointBox(t *testing.T) {
	p := []float64{3, 4}
	b := PointBox(p)
	if !b.Contains(p) || b.Margin() != 0 {
		t.Fatalf("PointBox wrong: %v", b)
	}
}

// Property: union contains both operands and intersection is contained in
// both, for random boxes.
func TestBoxAlgebraProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randBox := func() Box {
		b := NewBox(3)
		for d := 0; d < 3; d++ {
			a, c := rng.Float64()*100, rng.Float64()*100
			if a > c {
				a, c = c, a
			}
			b[d] = Interval{Lo: a, Hi: c}
		}
		return b
	}
	for i := 0; i < 500; i++ {
		a, b := randBox(), randBox()
		u := a.Union(b)
		if !u.ContainsBox(a) || !u.ContainsBox(b) {
			t.Fatalf("union violates containment: %v %v %v", a, b, u)
		}
		x := a.Intersect(b)
		if !x.IsEmpty() && (!a.ContainsBox(x) || !b.ContainsBox(x)) {
			t.Fatalf("intersection escapes operands: %v %v %v", a, b, x)
		}
		if a.Intersects(b) != !x.IsEmpty() {
			t.Fatalf("Intersects disagrees with Intersect emptiness")
		}
		if a.Intersects(b) != b.Intersects(a) {
			t.Fatal("Intersects not symmetric")
		}
	}
}

// Property (testing/quick): for any point set, DomainOf contains every
// point, and including a point never shrinks any interval.
func TestQuickDomainContainsAll(t *testing.T) {
	f := func(raw [][3]float64) bool {
		recs := make([]Record, len(raw))
		for i, p := range raw {
			recs[i] = Record{QI: []float64{p[0], p[1], p[2]}}
		}
		d := DomainOf(3, recs)
		for _, r := range recs {
			ok := true
			for i := range r.QI {
				if math.IsNaN(r.QI[i]) {
					ok = false
				}
			}
			if ok && !d.Contains(r.QI) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property (testing/quick): interval union is commutative and associative
// up to exact equality on finite inputs.
func TestQuickIntervalUnionLaws(t *testing.T) {
	mk := func(a, b float64) Interval {
		if a > b {
			a, b = b, a
		}
		return Interval{Lo: a, Hi: b}
	}
	f := func(a1, b1, a2, b2, a3, b3 float64) bool {
		if anyNaN(a1, b1, a2, b2, a3, b3) {
			return true
		}
		x, y, z := mk(a1, b1), mk(a2, b2), mk(a3, b3)
		if x.Union(y) != y.Union(x) {
			return false
		}
		return x.Union(y).Union(z) == x.Union(y.Union(z))
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func anyNaN(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) {
			return true
		}
	}
	return false
}
