package attr

import (
	"strings"
	"testing"
)

// testHierarchy builds the running example: a small geography taxonomy.
//
//	World
//	├── USA
//	│   ├── WI: 53706, 53710, 53715
//	│   └── IA: 52100, 52108
//	└── CA
//	    └── ON: M5V
func testHierarchy(t *testing.T) *Hierarchy {
	t.Helper()
	root := Node("World",
		Node("USA",
			Node("WI", Leaf("53706"), Leaf("53710"), Leaf("53715")),
			Node("IA", Leaf("52100"), Leaf("52108")),
		),
		Node("CA",
			Node("ON", Leaf("M5V")),
		),
	)
	h, err := BuildHierarchy(root)
	if err != nil {
		t.Fatalf("BuildHierarchy: %v", err)
	}
	return h
}

func TestHierarchyCodes(t *testing.T) {
	h := testHierarchy(t)
	if h.LeafCount() != 6 {
		t.Fatalf("LeafCount = %d, want 6", h.LeafCount())
	}
	for i, want := range []string{"53706", "53710", "53715", "52100", "52108", "M5V"} {
		c, err := h.Code(want)
		if err != nil || c != i {
			t.Fatalf("Code(%q) = %d,%v want %d", want, c, err, i)
		}
		l, err := h.LabelOf(i)
		if err != nil || l != want {
			t.Fatalf("LabelOf(%d) = %q,%v want %q", i, l, err, want)
		}
	}
	if _, err := h.Code("99999"); err == nil {
		t.Fatal("Code of unknown value should error")
	}
	if _, err := h.LabelOf(6); err == nil {
		t.Fatal("LabelOf out of range should error")
	}
	if _, err := h.LabelOf(-1); err == nil {
		t.Fatal("LabelOf negative should error")
	}
}

func TestHierarchyLCA(t *testing.T) {
	h := testHierarchy(t)
	cases := []struct {
		lo, hi int
		want   string
		leaves int
	}{
		{0, 0, "53706", 1},
		{0, 2, "WI", 3},
		{3, 4, "IA", 2},
		{0, 4, "USA", 5},
		{0, 5, "World", 6},
		{2, 3, "USA", 5}, // spans WI and IA -> USA
		{4, 5, "World", 6},
	}
	for _, c := range cases {
		n, err := h.LCA(c.lo, c.hi)
		if err != nil {
			t.Fatalf("LCA(%d,%d): %v", c.lo, c.hi, err)
		}
		if n.Label != c.want || n.LeafCount() != c.leaves {
			t.Fatalf("LCA(%d,%d) = %q/%d, want %q/%d", c.lo, c.hi, n.Label, n.LeafCount(), c.want, c.leaves)
		}
	}
	if _, err := h.LCA(3, 1); err == nil {
		t.Fatal("LCA with inverted range should error")
	}
	if _, err := h.LCA(-1, 2); err == nil {
		t.Fatal("LCA below range should error")
	}
	if _, err := h.LCA(0, 99); err == nil {
		t.Fatal("LCA above range should error")
	}
}

func TestGeneralizeInterval(t *testing.T) {
	h := testHierarchy(t)
	label, span, err := h.GeneralizeInterval(Interval{Lo: 0, Hi: 2})
	if err != nil || label != "WI" || span != 3 {
		t.Fatalf("GeneralizeInterval = %q/%d/%v", label, span, err)
	}
	label, span, err = h.GeneralizeInterval(Interval{Lo: 1, Hi: 1})
	if err != nil || label != "53710" || span != 1 {
		t.Fatalf("single-leaf generalize = %q/%d/%v", label, span, err)
	}
	if _, _, err := h.GeneralizeInterval(EmptyInterval()); err == nil {
		t.Fatal("generalizing empty interval should error")
	}
}

func TestHierarchyLevelsAndParents(t *testing.T) {
	h := testHierarchy(t)
	levels := h.Levels()
	if len(levels) != 4 {
		t.Fatalf("Levels depth = %d, want 4", len(levels))
	}
	if len(levels[0]) != 1 || levels[0][0].Label != "World" {
		t.Fatalf("root level wrong: %v", levels[0])
	}
	if len(levels[1]) != 2 || len(levels[2]) != 3 || len(levels[3]) != 6 {
		t.Fatalf("level sizes: %d %d %d", len(levels[1]), len(levels[2]), len(levels[3]))
	}
	if h.Root().Parent() != nil || h.Root().Depth() != 0 {
		t.Fatal("root parent/depth wrong")
	}
	wi := levels[2][0]
	if wi.Parent().Label != "USA" || wi.Depth() != 2 || wi.IsLeaf() {
		t.Fatalf("WI node wrong: %+v", wi)
	}
	lo, hi := wi.LeafRange()
	if lo != 0 || hi != 2 {
		t.Fatalf("WI leaf range = [%d,%d]", lo, hi)
	}
}

func TestBuildHierarchyErrors(t *testing.T) {
	if _, err := BuildHierarchy(nil); err == nil {
		t.Fatal("nil root accepted")
	}
	if _, err := BuildHierarchy(Node("r", Leaf("a"), Leaf("a"))); err == nil {
		t.Fatal("duplicate leaf accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuildHierarchy did not panic on bad input")
		}
	}()
	MustBuildHierarchy(nil)
}

func TestFlatHierarchy(t *testing.T) {
	h := MustFlatHierarchy("sex", "M", "F")
	if h.LeafCount() != 2 {
		t.Fatalf("LeafCount = %d", h.LeafCount())
	}
	n, err := h.LCA(0, 1)
	if err != nil || n.Label != "sex" {
		t.Fatalf("LCA = %v/%v", n, err)
	}
	// Generalizing the full domain yields the root — the paper renders
	// this as "*" in Figure 1(b); callers decide the rendering.
	label, span, err := h.GeneralizeInterval(Interval{Lo: 0, Hi: 1})
	if err != nil || label != "sex" || span != 2 {
		t.Fatalf("full-domain generalize = %q/%d/%v", label, span, err)
	}
}

func TestCodesOf(t *testing.T) {
	h := testHierarchy(t)
	codes, err := h.CodesOf([]string{"52108", "53706", "52108"})
	if err != nil {
		t.Fatal(err)
	}
	if len(codes) != 2 || codes[0] != 0 || codes[1] != 4 {
		t.Fatalf("CodesOf = %v", codes)
	}
	if _, err := h.CodesOf([]string{"bogus"}); err == nil {
		t.Fatal("CodesOf unknown label should error")
	}
}

func TestHierarchyLeafOrderingIsDocumentOrder(t *testing.T) {
	h := testHierarchy(t)
	var labels []string
	for i := 0; i < h.LeafCount(); i++ {
		l, _ := h.LabelOf(i)
		labels = append(labels, l)
	}
	got := strings.Join(labels, ",")
	want := "53706,53710,53715,52100,52108,M5V"
	if got != want {
		t.Fatalf("leaf order = %s, want %s", got, want)
	}
}

func TestFlatHierarchyDuplicateValues(t *testing.T) {
	if _, err := FlatHierarchy("sex", "M", "M"); err == nil {
		t.Fatal("duplicate values accepted")
	}
	if h := MustFlatHierarchy("sex", "M", "F"); h.LeafCount() != 2 {
		t.Fatal("MustFlatHierarchy built wrong hierarchy")
	}
}
