// Package attr defines the attribute model shared by every subsystem:
// schemas over numeric and categorical quasi-identifier attributes,
// records, closed intervals, multidimensional boxes (minimum bounding
// rectangles), and generalization hierarchies for categorical attributes.
//
// Following the paper (Section 5), categorical attributes are coded onto
// the integers by "imposing an intuitive ordering" on their values, so all
// values — numeric and categorical alike — travel as float64. A
// categorical attribute may optionally carry a generalization Hierarchy;
// when present, interval generalizations can be lifted to the lowest
// common ancestor of the covered leaves (used by the compaction procedure
// of Section 4 and by the certainty penalty of Section 5.3).
package attr

import (
	"fmt"
	"math"
	"strings"
)

// Kind distinguishes numeric from categorical quasi-identifier attributes.
type Kind int

const (
	// Numeric attributes take ordered numeric values; generalized values
	// are ranges.
	Numeric Kind = iota
	// Categorical attributes take values from a finite coded domain;
	// generalized values are coded ranges, optionally lifted into a
	// generalization hierarchy.
	Categorical
)

// String returns "numeric" or "categorical".
func (k Kind) String() string {
	switch k {
	case Numeric:
		return "numeric"
	case Categorical:
		return "categorical"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Attribute describes one quasi-identifier attribute.
type Attribute struct {
	Name string
	Kind Kind
	// Weight is the importance w_i used by the weighted normalized
	// certainty penalty (Definition 4) and by weighted splitting
	// policies. The zero value is treated as 1.
	Weight float64
	// Hierarchy is an optional generalization hierarchy for a
	// categorical attribute. When nil, categorical generalizations stay
	// as coded ranges, exactly as in the paper's experimental setup.
	Hierarchy *Hierarchy
}

// EffectiveWeight returns the attribute weight, defaulting to 1.
func (a Attribute) EffectiveWeight() float64 {
	if a.Weight == 0 {
		return 1
	}
	return a.Weight
}

// Schema describes the quasi-identifier attributes of a table plus the
// name of the single sensitive attribute carried alongside each record.
type Schema struct {
	Attrs     []Attribute
	Sensitive string
}

// Dims returns the number of quasi-identifier attributes.
func (s *Schema) Dims() int { return len(s.Attrs) }

// AttrIndex returns the index of the named quasi-identifier attribute, or
// -1 if the schema has no such attribute.
func (s *Schema) AttrIndex(name string) int {
	for i, a := range s.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Names returns the quasi-identifier attribute names in schema order.
func (s *Schema) Names() []string {
	names := make([]string, len(s.Attrs))
	for i, a := range s.Attrs {
		names[i] = a.Name
	}
	return names
}

// Validate reports an error if the schema is malformed: no attributes,
// duplicate names, or a hierarchy attached to a numeric attribute.
func (s *Schema) Validate() error {
	if len(s.Attrs) == 0 {
		return fmt.Errorf("attr: schema has no quasi-identifier attributes")
	}
	seen := make(map[string]bool, len(s.Attrs))
	for i, a := range s.Attrs {
		if a.Name == "" {
			return fmt.Errorf("attr: attribute %d has empty name", i)
		}
		if seen[a.Name] {
			return fmt.Errorf("attr: duplicate attribute name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Kind == Numeric && a.Hierarchy != nil {
			return fmt.Errorf("attr: numeric attribute %q has a hierarchy", a.Name)
		}
		if a.Weight < 0 {
			return fmt.Errorf("attr: attribute %q has negative weight %v", a.Name, a.Weight)
		}
	}
	return nil
}

// Record is one row of the private table: an ID, the coded
// quasi-identifier values, and the sensitive value.
type Record struct {
	ID        int64
	QI        []float64
	Sensitive string
}

// Clone returns a deep copy of the record.
func (r Record) Clone() Record {
	qi := make([]float64, len(r.QI))
	copy(qi, r.QI)
	return Record{ID: r.ID, QI: qi, Sensitive: r.Sensitive}
}

// Interval is a closed interval [Lo, Hi] on one attribute. The canonical
// empty interval has Lo > Hi (see EmptyInterval).
type Interval struct {
	Lo, Hi float64
}

// EmptyInterval returns the canonical empty interval, which Include grows
// correctly from.
func EmptyInterval() Interval {
	return Interval{Lo: math.Inf(1), Hi: math.Inf(-1)}
}

// IsEmpty reports whether the interval contains no points.
func (iv Interval) IsEmpty() bool { return iv.Lo > iv.Hi }

// Width returns Hi-Lo, or 0 for an empty interval. A single point has
// width 0.
//
//anonylint:zero-alloc
func (iv Interval) Width() float64 {
	if iv.IsEmpty() {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Contains reports whether v lies in the closed interval.
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// ContainsInterval reports whether o is entirely inside iv. Every interval
// contains the empty interval.
func (iv Interval) ContainsInterval(o Interval) bool {
	if o.IsEmpty() {
		return true
	}
	return o.Lo >= iv.Lo && o.Hi <= iv.Hi
}

// Intersects reports whether the two closed intervals share a point.
func (iv Interval) Intersects(o Interval) bool {
	if iv.IsEmpty() || o.IsEmpty() {
		return false
	}
	return iv.Lo <= o.Hi && o.Lo <= iv.Hi
}

// Intersect returns the overlap of two intervals (possibly empty).
func (iv Interval) Intersect(o Interval) Interval {
	out := Interval{Lo: math.Max(iv.Lo, o.Lo), Hi: math.Min(iv.Hi, o.Hi)}
	if out.IsEmpty() {
		return EmptyInterval()
	}
	return out
}

// Union returns the smallest interval covering both inputs.
func (iv Interval) Union(o Interval) Interval {
	if iv.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return iv
	}
	return Interval{Lo: math.Min(iv.Lo, o.Lo), Hi: math.Max(iv.Hi, o.Hi)}
}

// Include returns the interval grown to cover v.
func (iv Interval) Include(v float64) Interval {
	if iv.IsEmpty() {
		return Interval{Lo: v, Hi: v}
	}
	return Interval{Lo: math.Min(iv.Lo, v), Hi: math.Max(iv.Hi, v)}
}

// String renders the interval like the paper's tables: a single value for
// points, "[lo - hi]" otherwise.
func (iv Interval) String() string {
	if iv.IsEmpty() {
		return "[]"
	}
	if iv.Lo == iv.Hi {
		return trimFloat(iv.Lo)
	}
	return "[" + trimFloat(iv.Lo) + " - " + trimFloat(iv.Hi) + "]"
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.6f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// Box is an axis-aligned multidimensional rectangle: one closed interval
// per quasi-identifier attribute. It is the in-memory form of both an
// R-tree minimum bounding rectangle and a generalized (anonymized)
// record value.
type Box []Interval

// NewBox returns an empty box with the given dimensionality.
func NewBox(dims int) Box {
	b := make(Box, dims)
	for i := range b {
		b[i] = EmptyInterval()
	}
	return b
}

// PointBox returns the degenerate box covering exactly the point p.
func PointBox(p []float64) Box {
	b := make(Box, len(p))
	for i, v := range p {
		b[i] = Interval{Lo: v, Hi: v}
	}
	return b
}

// Clone returns a deep copy of the box.
func (b Box) Clone() Box {
	out := make(Box, len(b))
	copy(out, b)
	return out
}

// IsEmpty reports whether any dimension is empty (so the box contains no
// points). A zero-dimensional box is considered empty.
//
//anonylint:zero-alloc
func (b Box) IsEmpty() bool {
	if len(b) == 0 {
		return true
	}
	for _, iv := range b {
		if iv.IsEmpty() {
			return true
		}
	}
	return false
}

// Contains reports whether the point p lies inside the box.
//
//anonylint:zero-alloc
func (b Box) Contains(p []float64) bool {
	if len(p) != len(b) {
		return false
	}
	for i, iv := range b {
		if !iv.Contains(p[i]) {
			return false
		}
	}
	return true
}

// ContainsBox reports whether o lies entirely inside b.
func (b Box) ContainsBox(o Box) bool {
	if o.IsEmpty() {
		return true
	}
	if len(o) != len(b) {
		return false
	}
	for i, iv := range b {
		if !iv.ContainsInterval(o[i]) {
			return false
		}
	}
	return true
}

// Intersects reports whether the two boxes share a point. A record's
// generalized box "matches" a range query exactly when this is true
// (Section 5.4).
//
//anonylint:zero-alloc
func (b Box) Intersects(o Box) bool {
	if len(b) != len(o) || b.IsEmpty() || o.IsEmpty() {
		return false
	}
	for i, iv := range b {
		if !iv.Intersects(o[i]) {
			return false
		}
	}
	return true
}

// Intersect returns the overlap of the two boxes (possibly empty).
func (b Box) Intersect(o Box) Box {
	out := make(Box, len(b))
	for i, iv := range b {
		out[i] = iv.Intersect(o[i])
	}
	return out
}

// Union returns the smallest box covering both inputs.
func (b Box) Union(o Box) Box {
	if len(b) == 0 {
		return o.Clone()
	}
	if len(o) == 0 {
		return b.Clone()
	}
	out := make(Box, len(b))
	for i, iv := range b {
		out[i] = iv.Union(o[i])
	}
	return out
}

// Include grows the box in place to cover the point p and returns it.
// It is the hottest operation in the index (every insert updates the
// MBRs of the whole root path), so it uses plain comparisons rather
// than math.Min/Max.
func (b Box) Include(p []float64) Box {
	for i := range b {
		v := p[i]
		iv := &b[i]
		if iv.Lo > iv.Hi { // empty interval
			iv.Lo, iv.Hi = v, v
			continue
		}
		if v < iv.Lo {
			iv.Lo = v
		} else if v > iv.Hi {
			iv.Hi = v
		}
	}
	return b
}

// IncludeBox grows the box in place to cover o and returns it.
func (b Box) IncludeBox(o Box) Box {
	for i := range b {
		b[i] = b[i].Union(o[i])
	}
	return b
}

// Area returns the d-dimensional volume of the box. Dimensions of width
// zero (single points) contribute a factor of zero, so Area is often zero
// for real data; split policies should prefer Margin when comparing
// near-degenerate boxes.
func (b Box) Area() float64 {
	if b.IsEmpty() {
		return 0
	}
	area := 1.0
	for _, iv := range b {
		area *= iv.Width()
	}
	return area
}

// Margin returns the sum of the side lengths of the box (proportional to
// its perimeter). The certainty metric rewards partitions with small
// perimeters (Section 4), making Margin the natural split objective.
func (b Box) Margin() float64 {
	if b.IsEmpty() {
		return 0
	}
	m := 0.0
	for _, iv := range b {
		m += iv.Width()
	}
	return m
}

// WeightedMargin returns the sum of per-dimension widths normalized by the
// domain widths and scaled by attribute weights — the NCP of a
// hypothetical tuple generalized to this box (Definition 4). domain gives
// the full table extent per attribute.
func (b Box) WeightedMargin(s *Schema, domain Box) float64 {
	if b.IsEmpty() {
		return 0
	}
	m := 0.0
	for i, iv := range b {
		dw := domain[i].Width()
		if dw <= 0 {
			continue
		}
		m += s.Attrs[i].EffectiveWeight() * iv.Width() / dw
	}
	return m
}

// Enlargement returns how much the box's margin grows to include p.
func (b Box) Enlargement(p []float64) float64 {
	e := 0.0
	for i, iv := range b {
		if iv.IsEmpty() {
			continue
		}
		if p[i] < iv.Lo {
			e += iv.Lo - p[i]
		} else if p[i] > iv.Hi {
			e += p[i] - iv.Hi
		}
	}
	return e
}

// Disjoint reports whether the two boxes share no point. R⁺-tree sibling
// routing regions must be pairwise Disjoint (the paper only generates
// non-overlapping partitions).
func (b Box) Disjoint(o Box) bool { return !b.Intersects(o) }

// Equal reports exact equality of the two boxes.
func (b Box) Equal(o Box) bool {
	if len(b) != len(o) {
		return false
	}
	for i, iv := range b {
		if iv != o[i] {
			return false
		}
	}
	return true
}

// Center returns the midpoint of the box in each dimension.
func (b Box) Center() []float64 {
	c := make([]float64, len(b))
	for i, iv := range b {
		c[i] = (iv.Lo + iv.Hi) / 2
	}
	return c
}

// String renders the box as a comma-separated list of intervals.
func (b Box) String() string {
	parts := make([]string, len(b))
	for i, iv := range b {
		parts[i] = iv.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// DomainOf computes the full extent of a set of records: the MBR of the
// whole table, used to normalize the certainty penalty and to seed
// top-down partitioners.
func DomainOf(dims int, records []Record) Box {
	b := NewBox(dims)
	for _, r := range records {
		b.Include(r.QI)
	}
	return b
}

// SplitBox cuts the box at value v along dimension dim, returning the two
// halves: points with coordinate < v route left, points with coordinate
// >= v route right. Both halves are clipped to b.
func (b Box) SplitBox(dim int, v float64) (left, right Box) {
	left = b.Clone()
	right = b.Clone()
	left[dim] = Interval{Lo: b[dim].Lo, Hi: v}
	right[dim] = Interval{Lo: v, Hi: b[dim].Hi}
	return left, right
}
