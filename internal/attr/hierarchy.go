package attr

import (
	"fmt"
	"sort"
)

// HNode is one node of a generalization hierarchy tree. Leaves are the
// base categorical values; internal nodes are generalized values (e.g.
// "WI" generalizing zipcodes, "USA" generalizing states).
type HNode struct {
	Label    string
	Children []*HNode

	parent *HNode
	// lo and hi are the inclusive range of leaf codes covered by the
	// subtree rooted at this node. Leaf codes are assigned left-to-right
	// during BuildHierarchy, which is the "intuitive ordering" the paper
	// imposes on categorical values.
	lo, hi int
	depth  int
}

// Leaf constructs a leaf hierarchy node.
func Leaf(label string) *HNode { return &HNode{Label: label} }

// Node constructs an internal hierarchy node over the given children.
func Node(label string, children ...*HNode) *HNode {
	return &HNode{Label: label, Children: children}
}

// IsLeaf reports whether the node has no children.
func (n *HNode) IsLeaf() bool { return len(n.Children) == 0 }

// LeafRange returns the inclusive range of leaf codes under this node.
func (n *HNode) LeafRange() (lo, hi int) { return n.lo, n.hi }

// LeafCount returns the number of leaves under this node — the quantity
// |t.A_i| in the categorical case of the certainty penalty
// (Definition 4).
func (n *HNode) LeafCount() int { return n.hi - n.lo + 1 }

// Parent returns the node's parent, or nil at the root.
func (n *HNode) Parent() *HNode { return n.parent }

// Depth returns the node's distance from the root.
func (n *HNode) Depth() int { return n.depth }

// Hierarchy is a generalization hierarchy over a categorical attribute's
// value domain. Leaves are coded 0..LeafCount()-1 in left-to-right order,
// so a coded interval [lo,hi] corresponds to a contiguous run of leaves
// and the compaction procedure's "lowest common ancestor" (Section 4) is
// the lowest node whose leaf range covers [lo,hi].
type Hierarchy struct {
	root   *HNode
	leaves []*HNode
	byCode map[string]int
}

// BuildHierarchy finalizes a hierarchy from its root node: it assigns leaf
// codes left-to-right, parent pointers and depths. It returns an error if
// the tree is empty or a leaf label repeats.
func BuildHierarchy(root *HNode) (*Hierarchy, error) {
	if root == nil {
		return nil, fmt.Errorf("attr: nil hierarchy root")
	}
	h := &Hierarchy{root: root, byCode: make(map[string]int)}
	var walk func(n *HNode, parent *HNode, depth int) error
	walk = func(n *HNode, parent *HNode, depth int) error {
		n.parent = parent
		n.depth = depth
		if n.IsLeaf() {
			if _, dup := h.byCode[n.Label]; dup {
				return fmt.Errorf("attr: duplicate hierarchy leaf %q", n.Label)
			}
			code := len(h.leaves)
			h.byCode[n.Label] = code
			n.lo, n.hi = code, code
			h.leaves = append(h.leaves, n)
			return nil
		}
		n.lo = len(h.leaves)
		for _, c := range n.Children {
			if err := walk(c, n, depth+1); err != nil {
				return err
			}
		}
		n.hi = len(h.leaves) - 1
		return nil
	}
	if err := walk(root, nil, 0); err != nil {
		return nil, err
	}
	return h, nil
}

// MustBuildHierarchy is BuildHierarchy, panicking on error. The panic is
// kept deliberately (the Must* idiom): it is for statically-known
// hierarchies in package variables, examples and tests, where a failure
// is a programmer error, never a data-dependent condition. Anything
// built from runtime input must call BuildHierarchy and handle the
// error.
func MustBuildHierarchy(root *HNode) *Hierarchy {
	h, err := BuildHierarchy(root)
	if err != nil {
		// invariant: Must* is for statically-known hierarchies only; a
		// failure here is a programmer error, never runtime input.
		panic(err)
	}
	return h
}

// FlatHierarchy builds the trivial two-level hierarchy rootLabel -> values
// — the shape used when a categorical attribute has no semantic taxonomy.
// It errors on duplicate values (runtime input such as a schema file can
// carry them); static call sites can use MustFlatHierarchy.
func FlatHierarchy(rootLabel string, values ...string) (*Hierarchy, error) {
	children := make([]*HNode, len(values))
	for i, v := range values {
		children[i] = Leaf(v)
	}
	return BuildHierarchy(Node(rootLabel, children...))
}

// MustFlatHierarchy is FlatHierarchy, panicking on error — for
// statically-known value lists only (see MustBuildHierarchy).
func MustFlatHierarchy(rootLabel string, values ...string) *Hierarchy {
	h, err := FlatHierarchy(rootLabel, values...)
	if err != nil {
		// invariant: Must* is for statically-known value lists only; a
		// failure here is a programmer error, never runtime input.
		panic(err)
	}
	return h
}

// Root returns the hierarchy's root node.
func (h *Hierarchy) Root() *HNode { return h.root }

// LeafCount returns the size of the base domain (|T.A_i| for categorical
// attributes in the certainty penalty).
func (h *Hierarchy) LeafCount() int { return len(h.leaves) }

// Code returns the integer code for a base value, or an error if the
// value is not a leaf of the hierarchy.
func (h *Hierarchy) Code(label string) (int, error) {
	c, ok := h.byCode[label]
	if !ok {
		return 0, fmt.Errorf("attr: value %q not in hierarchy", label)
	}
	return c, nil
}

// LabelOf returns the base value with the given code.
func (h *Hierarchy) LabelOf(code int) (string, error) {
	if code < 0 || code >= len(h.leaves) {
		return "", fmt.Errorf("attr: leaf code %d out of range [0,%d)", code, len(h.leaves))
	}
	return h.leaves[code].Label, nil
}

// LCA returns the lowest node in the hierarchy whose leaf range covers
// the inclusive code range [lo, hi]. This is the generalized value the
// compaction procedure chooses for a partition's categorical values
// (Section 4: "the procedure chooses the lowest common ancestor in the
// hierarchy for all the values in P").
func (h *Hierarchy) LCA(lo, hi int) (*HNode, error) {
	if lo > hi {
		return nil, fmt.Errorf("attr: empty code range [%d,%d]", lo, hi)
	}
	if lo < 0 || hi >= len(h.leaves) {
		return nil, fmt.Errorf("attr: code range [%d,%d] outside [0,%d)", lo, hi, len(h.leaves))
	}
	n := h.leaves[lo]
	for n.lo > lo || n.hi < hi {
		n = n.parent
	}
	return n, nil
}

// GeneralizeInterval maps a coded interval to the most specific hierarchy
// description: the exact value when the interval covers a single leaf,
// otherwise the label of the LCA of the covered leaves. The returned span
// is the LCA's leaf count, i.e. the |t.A_i| term of the certainty
// penalty.
func (h *Hierarchy) GeneralizeInterval(iv Interval) (label string, span int, err error) {
	if iv.IsEmpty() {
		return "", 0, fmt.Errorf("attr: cannot generalize empty interval")
	}
	lo := int(iv.Lo)
	hi := int(iv.Hi)
	n, err := h.LCA(lo, hi)
	if err != nil {
		return "", 0, err
	}
	if lo == hi {
		return h.leaves[lo].Label, 1, nil
	}
	return n.Label, n.LeafCount(), nil
}

// Levels returns, for each depth d, the nodes at depth d in left-to-right
// order. Useful for rendering hierarchies and for hierarchy-aware recoding
// schemes.
func (h *Hierarchy) Levels() [][]*HNode {
	var out [][]*HNode
	var walk func(n *HNode)
	walk = func(n *HNode) {
		for len(out) <= n.depth {
			out = append(out, nil)
		}
		out[n.depth] = append(out[n.depth], n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(h.root)
	return out
}

// CodesOf maps a slice of base labels to their sorted, deduplicated codes.
func (h *Hierarchy) CodesOf(labels []string) ([]int, error) {
	set := make(map[int]bool, len(labels))
	for _, l := range labels {
		c, err := h.Code(l)
		if err != nil {
			return nil, err
		}
		set[c] = true
	}
	out := make([]int, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Ints(out)
	return out, nil
}
