package attr_test

import (
	"fmt"

	"spatialanon/internal/attr"
)

// Generalization hierarchies turn coded categorical ranges into the
// lowest common ancestor label, as the compaction procedure requires.
func ExampleHierarchy_GeneralizeInterval() {
	h := attr.MustBuildHierarchy(attr.Node("USA",
		attr.Node("WI", attr.Leaf("53706"), attr.Leaf("53710"), attr.Leaf("53715")),
		attr.Node("IA", attr.Leaf("52100"), attr.Leaf("52108")),
	))
	for _, iv := range []attr.Interval{
		{Lo: 0, Hi: 0}, // one leaf
		{Lo: 0, Hi: 2}, // all of WI
		{Lo: 1, Hi: 4}, // spans WI and IA
	} {
		label, span, _ := h.GeneralizeInterval(iv)
		fmt.Printf("%s covers %d base values\n", label, span)
	}
	// Output:
	// 53706 covers 1 base values
	// WI covers 3 base values
	// USA covers 5 base values
}

// Boxes render as the paper prints generalized records.
func ExampleBox_String() {
	b := attr.Box{{Lo: 20, Hi: 30}, {Lo: 53706, Hi: 53706}}
	fmt.Println(b)
	// Output:
	// ([20 - 30], 53706)
}
