package serve

import (
	"fmt"
	"sync"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/core"
	"spatialanon/internal/query"
	"spatialanon/internal/routing"
	"spatialanon/internal/verify"
)

// Partition aliases anonmodel.Partition: views speak the same release
// vocabulary as the rest of the repository.
type Partition = anonmodel.Partition

// View is one published epoch: an immutable, consistent snapshot of
// the store's state. The committer builds it by copying the leaf
// summary — leaf boxes and record headers, NOT the tree — so the
// publish cost on the write path is one sequential memcpy; the
// audited base release and every derived granularity are computed
// lazily by the first reader that asks and memoized for the view's
// lifetime. Everything a View returns is owned by the View, so any
// number of readers may use it concurrently with ongoing mutation.
// Returned partition slices are shared between callers and MUST be
// treated as read-only (same contract as rplustree.LeafView).
//
//anonylint:published — stored to Server.cur (atomic.Pointer); immutable after Store
type View struct {
	epoch   uint64
	seq     uint64
	baseK   int
	n       int
	workers int

	// leaves is the snapshotted leaf summary: one born-compacted
	// partition per leaf, in trie order — the input of every
	// derivation below. Unchanged leaves share storage with the
	// previous epoch's View (copy-on-write).
	leaves []Partition

	baseOnce sync.Once
	base     []Partition
	baseErr  error

	mu    sync.Mutex
	cache map[int]*releaseEntry
	accel map[int]*accelEntry
	recs  recordsEntry

	// estPool recycles Count's estimator sessions so the one-shot
	// convenience path stays allocation-light; long-lived readers
	// should hold their own session from Estimator instead.
	estPool sync.Pool
}

// recordsEntry memoizes the view's flattened record list.
//
//anonylint:published — reachable through a published View; writes only under once
type recordsEntry struct {
	once sync.Once
	recs []attr.Record
}

// releaseEntry memoizes one granularity's release. The entry is
// created under v.mu but computed under its own once, so two readers
// asking for a cold k1 share one computation without serializing
// against readers of other granularities.
//
//anonylint:published — reachable through a published View; writes only under once
type releaseEntry struct {
	once sync.Once
	ps   []Partition
	err  error
}

// accelEntry memoizes one granularity's routing accelerator, built
// and audited once per (epoch, k1) alongside the release cache.
//
//anonylint:published — reachable through a published View; writes only under once
type accelEntry struct {
	once sync.Once
	idx  *routing.Index
	err  error
}

// publish builds and installs the next epoch's View from the current
// tree state. Committer-only: it is the one place the live tree is
// read, and it runs serially with mutation. The snapshot is
// copy-on-write at leaf granularity (rplustree.SnapshotLeaves): only
// leaves touched since the previous publish are copied, the rest are
// shared with the previous epoch's View, so the write path pays
// O(leaves + batch), not O(n), per publish.
func (s *Server) publish() {
	t := s.st.Tree()
	snap := t.SnapshotLeaves(s.prevSnap)
	s.prevSnap = snap
	parts := make([]Partition, len(snap))
	for i, l := range snap {
		parts[i] = Partition{Box: l.MBR, Records: l.Records}
	}
	v := &View{
		epoch:   s.epoch + 1,
		seq:     s.st.Seq(),
		baseK:   s.baseK,
		n:       t.Len(),
		workers: s.opts.Parallelism,
		leaves:  parts,
		cache:   make(map[int]*releaseEntry),
		accel:   make(map[int]*accelEntry),
	}
	s.epoch = v.epoch
	s.cur.Store(v)
}

// ensureBase materializes and audits the base release once per view.
// Every release a reader can observe passes the independent auditor —
// k-anonymity of the scan output plus the Lemma-1 k-boundness check —
// before it is returned; the audit runs once per published epoch, on
// first access, and its verdict is memoized with the release.
func (v *View) ensureBase() ([]Partition, error) {
	v.baseOnce.Do(func() {
		if v.n < v.baseK {
			v.baseErr = fmt.Errorf("serve: store holds %d records, below base k %d", v.n, v.baseK)
			return
		}
		base, err := core.LeafScanP(v.leaves, anonmodel.KAnonymity{K: v.baseK}, v.workers)
		if err != nil {
			v.baseErr = fmt.Errorf("serve: epoch %d base release: %w", v.epoch, err)
			return
		}
		if err := verify.Release(base, anonmodel.KAnonymity{K: v.baseK}); err != nil {
			v.baseErr = fmt.Errorf("serve: epoch %d failed release audit: %w", v.epoch, err)
			return
		}
		if err := verify.Releases([][]Partition{base}, v.baseK); err != nil {
			v.baseErr = fmt.Errorf("serve: epoch %d failed k-boundness audit: %w", v.epoch, err)
			return
		}
		v.base = base
	})
	return v.base, v.baseErr
}

// Epoch is the view's publication stamp; it increases by one per
// published view.
func (v *View) Epoch() uint64 { return v.epoch }

// Seq is the committed operation count folded into this view.
func (v *View) Seq() uint64 { return v.seq }

// Len is the number of live records in this view.
func (v *View) Len() int { return v.n }

// BaseK is the base anonymity parameter of the underlying store.
func (v *View) BaseK() int { return v.baseK }

// Base returns the audited base release (granularity k). It errors
// while the store holds fewer than k records — no release exists
// below k.
func (v *View) Base() ([]Partition, error) {
	return v.ensureBase()
}

// Release returns the release at granularity k1 (0 = base k),
// memoized for the view's lifetime: the first caller per granularity
// runs the leaf scan, every later caller gets the cached partitions
// in O(1). Each derived granularity is audited jointly with the base
// release, so every (epoch, k1) pair a reader can observe has passed
// the Lemma-1 k-boundness check. The k1 parameter is a granularity,
// not a fresh anonymity parameter: values below the store's validated
// base k are rejected here; anonylint:k-validated.
func (v *View) Release(k1 int) ([]Partition, error) {
	base, err := v.ensureBase()
	if err != nil {
		return nil, err
	}
	if k1 == 0 || k1 == v.baseK {
		return base, nil
	}
	if k1 < v.baseK {
		return nil, fmt.Errorf("serve: granularity %d below base k %d", k1, v.baseK)
	}
	v.mu.Lock()
	e, ok := v.cache[k1]
	if !ok {
		e = &releaseEntry{}
		v.cache[k1] = e // anonylint:pre-publish — v.mu-guarded install of a fresh entry; readers only ever see it through the same lock
	}
	v.mu.Unlock()
	e.once.Do(func() {
		ps, err := core.LeafScanP(base, anonmodel.KAnonymity{K: k1}, v.workers)
		if err == nil {
			err = verify.Releases([][]Partition{base, ps}, v.baseK)
		}
		e.ps, e.err = ps, err
	})
	return e.ps, e.err
}

// Accel returns the routing accelerator over the release at
// granularity k1 (0 = base k), built lazily once per (epoch, k1)
// alongside the release cache and audited by verify.Routing before
// any reader can observe it. The returned Index is immutable and
// shared; give each reader goroutine its own session (Counter /
// Estimator) or routing.Scratch.
func (v *View) Accel(k1 int) (*routing.Index, error) {
	ps, err := v.Release(k1)
	if err != nil {
		return nil, err
	}
	if k1 == v.baseK {
		k1 = 0
	}
	v.mu.Lock()
	e, ok := v.accel[k1]
	if !ok {
		e = &accelEntry{}
		v.accel[k1] = e // anonylint:pre-publish — v.mu-guarded install of a fresh entry; readers only ever see it through the same lock
	}
	v.mu.Unlock()
	e.once.Do(func() {
		idx, err := routing.Build(ps, routing.Options{})
		if err == nil {
			err = verify.Routing(idx, ps)
		}
		if err != nil {
			e.err = fmt.Errorf("serve: epoch %d accelerator at k1=%d: %w", v.epoch, k1, err)
			return
		}
		e.idx = idx
	})
	return e.idx, e.err
}

// Counter returns a fresh exact-count session (point and range) over
// the accelerated release at granularity k1. The session is owned by
// the caller — one per goroutine — and its warm queries allocate
// nothing.
func (v *View) Counter(k1 int) (*query.Counter, error) {
	ps, err := v.Release(k1)
	if err != nil {
		return nil, err
	}
	idx, err := v.Accel(k1)
	if err != nil {
		return nil, err
	}
	return query.NewCounter(ps, idx), nil
}

// Estimator returns a fresh uniform-assumption estimate session over
// the accelerated release at granularity k1, with the same ownership
// and zero-alloc contract as Counter.
func (v *View) Estimator(k1 int) (*query.Estimator, error) {
	ps, err := v.Release(k1)
	if err != nil {
		return nil, err
	}
	idx, err := v.Accel(k1)
	if err != nil {
		return nil, err
	}
	return query.NewEstimator(ps, idx), nil
}

// Records returns the view's records in trie order (the order the
// leaf summary concatenates them), memoized. Read-only, like every
// View product.
func (v *View) Records() []attr.Record {
	v.recs.once.Do(func() {
		recs := make([]attr.Record, 0, v.n)
		for _, p := range v.leaves {
			recs = append(recs, p.Records...)
		}
		v.recs.recs = recs
	})
	return v.recs.recs
}

// Count estimates the number of records in the query box from the
// anonymized base release under the uniformity assumption — the
// serving-path answer to a range count, computed without touching the
// live tree. It routes through the epoch's block-range accelerator
// (bit-identical to the linear query.EstimateUniform), borrowing a
// pooled session; hot readers should hold their own Estimator.
func (v *View) Count(q attr.Box) (float64, error) {
	est, _ := v.estPool.Get().(*query.Estimator)
	if est == nil {
		var err error
		est, err = v.Estimator(0)
		if err != nil {
			return 0, err
		}
	}
	out := est.Estimate(q)
	v.estPool.Put(est)
	return out, nil
}

// Evaluate runs the query-accuracy evaluator against this view's base
// release: per query, the true count over the view's records and the
// anonymized estimate. Output is identical for every Parallelism
// setting.
func (v *View) Evaluate(queries []attr.Box) ([]query.Result, error) {
	base, err := v.ensureBase()
	if err != nil {
		return nil, err
	}
	return query.EvaluateP(base, v.Records(), queries, v.workers)
}
