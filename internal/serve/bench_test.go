package serve

import (
	"fmt"
	"sync/atomic"
	"testing"

	"spatialanon/internal/attr"
	"spatialanon/internal/dataset"
	"spatialanon/internal/query"
	"spatialanon/internal/rplustree"
	"spatialanon/internal/wal"
)

// benchRecord derives a record deterministically from its ordinal so
// parallel benchmark goroutines need no shared generator.
func benchRecord(id int64) attr.Record {
	dims := dataset.LandsEndSchema().Dims()
	qi := make([]float64, dims)
	for d := range qi {
		qi[d] = float64((id*31 + int64(d)*7) % 1000)
	}
	return attr.Record{ID: id, QI: qi, Sensitive: "b"}
}

// BenchmarkStorePerOpInsert is the baseline the tentpole is measured
// against: one durable store insert per operation, one fsync each.
func BenchmarkStorePerOpInsert(b *testing.B) {
	st, err := wal.Create(wal.Options{
		Dir:  b.TempDir(),
		Tree: rplustree.Config{Schema: dataset.LandsEndSchema(), BaseK: 10},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Insert(benchRecord(int64(i + 1))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeGroupCommit measures concurrent durable inserts
// through the group-commit front end, fsync on. The acceptance claim
// is ≥5× the per-op baseline's ops/sec at batch ≥ 16.
func BenchmarkServeGroupCommit(b *testing.B) {
	for _, batch := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			st, err := wal.Create(wal.Options{
				Dir:  b.TempDir(),
				Tree: rplustree.Config{Schema: dataset.LandsEndSchema(), BaseK: 10},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			s, err := New(st, Options{MaxBatch: batch})
			if err != nil {
				b.Fatal(err)
			}
			var next atomic.Int64
			b.SetParallelism(32) // submitters per core: batches form from concurrency
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if err := s.Insert(benchRecord(next.Add(1))); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}
			stats := s.Stats()
			if stats.Batches > 0 {
				b.ReportMetric(float64(stats.Ops)/float64(stats.Batches), "ops/fsync")
			}
		})
	}
}

// benchServer preloads a store and wraps it in a server for read-path
// benchmarks (NoSync: reads are what is measured).
func benchServer(b *testing.B, n int) (*Server, func()) {
	b.Helper()
	st, err := wal.Create(wal.Options{
		Dir:    b.TempDir(),
		Tree:   rplustree.Config{Schema: dataset.LandsEndSchema(), BaseK: 10},
		NoSync: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	ops := make([]wal.Op, n)
	for i := range ops {
		ops[i] = wal.Op{Type: wal.TypeInsert, Rec: benchRecord(int64(i + 1))}
	}
	if _, err := st.ApplyBatch(ops); err != nil {
		b.Fatal(err)
	}
	s, err := New(st, Options{MaxBatch: 64})
	if err != nil {
		b.Fatal(err)
	}
	return s, func() {
		s.Close()
		st.Close()
	}
}

// BenchmarkServeReleaseCached: repeated releases at one granularity
// within an epoch — the O(1) cache path, scaling with -cpu.
func BenchmarkServeReleaseCached(b *testing.B) {
	s, cleanup := benchServer(b, 20000)
	defer cleanup()
	if _, err := s.Release(50); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := s.Release(50); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkServeReleaseUncached: the same release recomputed per call
// through the store's scan path — what every Release cost before the
// cache.
func BenchmarkServeReleaseUncached(b *testing.B) {
	s, cleanup := benchServer(b, 20000)
	defer cleanup()
	v := s.View()
	base, err := v.Base()
	if err != nil {
		b.Fatal(err)
	}
	_ = base
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh entry per iteration simulates the uncached path: ask
		// a granularity the cache has not seen by cycling a small set
		// beyond it... recomputation is forced by using the store
		// directly, which rescans the tree every call.
		if _, err := s.st.Release(50); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeReadsDuringWrites: readers consume views and range
// counts while a writer churns — the no-reader-writer-lock claim,
// scaling with -cpu.
func BenchmarkServeReadsDuringWrites(b *testing.B) {
	s, cleanup := benchServer(b, 20000)
	defer cleanup()
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	var next atomic.Int64
	next.Store(1 << 30)
	go func() {
		defer close(writerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Insert(benchRecord(next.Add(1))); err != nil {
				return
			}
		}
	}()
	q := attr.Box{{Lo: 0, Hi: 500}, {Lo: 0, Hi: 500}, {Lo: 0, Hi: 999}, {Lo: 0, Hi: 999}, {Lo: 0, Hi: 999}, {Lo: 0, Hi: 999}, {Lo: 0, Hi: 999}, {Lo: 0, Hi: 999}}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			v := s.View()
			if _, err := v.Release(0); err != nil {
				b.Error(err)
				return
			}
			if _, err := v.Count(q); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	close(stop)
	<-writerDone
}

// BenchmarkServePointQuery: exact point counts through a view session,
// accelerated versus the linear reference — the headline read-path
// speedup of the routing accelerator. Warm accel queries must report
// 0 allocs/op (-benchmem; CI pins this).
func BenchmarkServePointQuery(b *testing.B) {
	s, cleanup := benchServer(b, 20000)
	defer cleanup()
	v := s.View()
	ps, err := v.Release(0)
	if err != nil {
		b.Fatal(err)
	}
	points := query.PointWorkload(v.Records(), 512, 99)
	b.Run("linear", func(b *testing.B) {
		c := query.NewCounter(ps, nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Point(points[i%len(points)])
		}
	})
	b.Run("accel", func(b *testing.B) {
		c, err := v.Counter(0)
		if err != nil {
			b.Fatal(err)
		}
		c.Point(points[0])
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Point(points[i%len(points)])
		}
	})
}

// BenchmarkServeRangeQuery: the same comparison for range counts.
func BenchmarkServeRangeQuery(b *testing.B) {
	s, cleanup := benchServer(b, 20000)
	defer cleanup()
	v := s.View()
	ps, err := v.Release(0)
	if err != nil {
		b.Fatal(err)
	}
	ranges := query.FullRangeWorkload(v.Records(), 512, 99)
	b.Run("linear", func(b *testing.B) {
		c := query.NewCounter(ps, nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Range(ranges[i%len(ranges)])
		}
	})
	b.Run("accel", func(b *testing.B) {
		c, err := v.Counter(0)
		if err != nil {
			b.Fatal(err)
		}
		c.Range(ranges[0])
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Range(ranges[i%len(ranges)])
		}
	})
}
