// Package serve is the concurrent serving layer over the durable
// store: the machinery that turns internal/wal's single-goroutine,
// fsync-per-operation Store into a front end that can take writes
// from many goroutines and serve reads to many more, concurrently.
//
// Three coordinated layers (DESIGN.md "Serving & concurrency
// control"):
//
//   - Group commit. All mutations funnel into one committer
//     goroutine, which coalesces whatever has queued — up to
//     MaxBatch — into a single multi-record WAL frame committed with
//     ONE fsync (wal.Store.ApplyBatch). Callers block until their
//     batch's frame is durable, so the durability contract is
//     unchanged: an acknowledged write survives any crash. N
//     concurrent writers pay ~N/batch fsyncs instead of N.
//
//   - Snapshot-isolated reads. After each applied batch the committer
//     publishes an immutable, epoch-stamped View built by
//     copy-on-write of the LEAF SUMMARY — leaf boxes and record
//     headers, not the tree, and only for the leaves the batch
//     touched (rplustree.SnapshotLeaves); unchanged leaves are shared
//     with the previous epoch, so the publish cost is proportional to
//     the batch, not the store.
//     Readers load the current View through one atomic pointer and
//     run releases, range counts and query evaluation against it with
//     no lock shared with the writer; a reader holding an old epoch
//     keeps a consistent picture until it drops it.
//
//   - Release cache. The audited base release and every derived
//     granularity k1 are computed lazily by the first reader that
//     asks and memoized inside the View, so repeated releases at the
//     same granularity are O(1) after the first. The cache key is
//     effectively (epoch, k1) and epoch advance is the invalidation:
//     a new View starts cold, old epochs age out when their readers
//     let go. Every release a reader can observe is audited (verify's
//     k-anonymity and Lemma-1 k-boundness checks) once per epoch,
//     before first use.
//
// The store itself stays single-goroutine: only the committer touches
// it (and, through it, the pager), which is the same coordinator
// confinement discipline the parallel loaders follow.
package serve

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"spatialanon/internal/attr"
	"spatialanon/internal/rplustree"
	"spatialanon/internal/wal"
)

// Options parameterizes a Server.
type Options struct {
	// MaxBatch caps how many queued mutations one group commit
	// coalesces into a single WAL frame. Default 64.
	MaxBatch int
	// PublishEvery publishes a new View every N applied batches
	// (default 1: every batch). Raising it trades read freshness for
	// write throughput when views are expensive (large trees).
	PublishEvery int
	// Parallelism is the worker count for view computations (base
	// release scan, cached granularity scans, query evaluation);
	// 0 = all cores, 1 = serial. Output is identical for every
	// setting (core.LeafScanP's contract).
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.PublishEvery <= 0 {
		o.PublishEvery = 1
	}
	return o
}

// Stats counts what the serving layer has done since New.
type Stats struct {
	// Ops is the number of acknowledged mutations.
	Ops int64
	// Batches is the number of group commits (= WAL frames = fsyncs
	// spent on mutations).
	Batches int64
	// MaxBatch is the largest batch committed so far.
	MaxBatch int64
	// Epoch is the current published epoch.
	Epoch uint64
}

// result is what a blocked submitter receives when its batch commits.
type result struct {
	found bool
	err   error
}

// request is one queued mutation and its completion channel.
type request struct {
	op   wal.Op
	done chan result
}

// Server is the concurrent front end. Create one with New, mutate
// with Insert/Delete/Update from any number of goroutines, read with
// View/Release from any number more, and Close it before closing the
// underlying store.
type Server struct {
	st   *wal.Store
	opts Options
	dims int
	// baseK is the store's base anonymity parameter, copied from the
	// already-validated tree config (rplustree.Config rejects k < 2);
	// anonylint:k-validated.
	baseK int

	reqCh chan *request
	done  chan struct{}

	mu     sync.RWMutex // guards closed (submit send vs Close)
	closed bool

	cur    atomic.Pointer[View]
	failed atomic.Pointer[poison]

	// Committer-owned state (no locks: single goroutine).
	epoch        uint64
	sincePublish int
	opsBuf       []wal.Op
	// prevSnap is the previous publish's leaf snapshot — the
	// copy-on-write baseline the next SnapshotLeaves call diffs
	// against.
	prevSnap []rplustree.LeafView

	ops      atomic.Int64
	batches  atomic.Int64
	maxBatch atomic.Int64
}

// poison boxes the error that stopped the serving layer (an epoch
// audit failure or a dead store).
type poison struct{ err error }

// New wraps an open, audited store. The server immediately publishes
// epoch 1 — the recovered state — so readers always have a View, and
// then starts the committer. The store must not be used directly
// while the server is live: the committer owns it.
func New(st *wal.Store, opts Options) (*Server, error) {
	if st == nil {
		return nil, fmt.Errorf("serve: nil store")
	}
	if err := st.Err(); err != nil {
		return nil, fmt.Errorf("serve: store is poisoned: %w", err)
	}
	opts = opts.withDefaults()
	cfg := st.Tree().Config()
	s := &Server{
		st:    st,
		opts:  opts,
		dims:  cfg.Schema.Dims(),
		baseK: cfg.BaseK,
		reqCh: make(chan *request, opts.MaxBatch),
		done:  make(chan struct{}),
	}
	s.publish()
	go s.commitLoop()
	return s, nil
}

// Insert durably inserts one record. It blocks until the record's
// group commit is on disk.
func (s *Server) Insert(rec attr.Record) error {
	_, err := s.submit(wal.Op{Type: wal.TypeInsert, Rec: rec})
	return err
}

// Delete durably deletes the record with the given id at qi,
// reporting whether it existed.
func (s *Server) Delete(id int64, qi []float64) (bool, error) {
	return s.submit(wal.Op{Type: wal.TypeDelete, ID: id, OldQI: qi})
}

// Update durably relocates a record, reporting whether it existed.
func (s *Server) Update(id int64, oldQI []float64, rec attr.Record) (bool, error) {
	return s.submit(wal.Op{Type: wal.TypeUpdate, ID: id, OldQI: oldQI, Rec: rec})
}

// submit validates on the calling goroutine (a bad op must fail its
// own caller, never the batch it would have shared), enqueues, and
// blocks for the commit result.
func (s *Server) submit(op wal.Op) (bool, error) {
	if err := wal.ValidateOp(s.dims, op); err != nil {
		return false, err
	}
	if p := s.failed.Load(); p != nil {
		return false, p.err
	}
	r := &request{op: op, done: make(chan result, 1)}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return false, fmt.Errorf("serve: server is closed")
	}
	s.reqCh <- r
	s.mu.RUnlock()
	res := <-r.done
	return res.found, res.err
}

// commitLoop is the committer: the one goroutine that touches the
// store. It blocks for the first queued request, drains whatever else
// has queued up to MaxBatch without waiting (group commit needs no
// timer — the batch is "everyone who arrived while the last fsync
// ran"), commits the batch as one frame, publishes, and acknowledges.
func (s *Server) commitLoop() {
	defer close(s.done)
	batch := make([]*request, 0, s.opts.MaxBatch)
	for {
		r, ok := <-s.reqCh
		if !ok {
			break
		}
		batch = append(batch[:0], r)
		chClosed := false
	drain:
		for len(batch) < s.opts.MaxBatch {
			select {
			case r2, ok2 := <-s.reqCh:
				if !ok2 {
					chClosed = true
					break drain
				}
				batch = append(batch, r2)
			default:
				break drain
			}
		}
		s.commit(batch)
		if chClosed {
			break
		}
		// Yield once so the submitters just woken by the acks get to
		// re-enqueue before the next drain: without this, on a loaded
		// machine the committer can win the race back to reqCh every
		// time and batches collapse toward one op per fsync.
		runtime.Gosched()
	}
	// Flush the last epoch so Close leaves the view current.
	if s.sincePublish > 0 && s.failed.Load() == nil {
		s.publish()
	}
}

// commit applies one batch as a single durable frame, publishes the
// next epoch if one is due, then wakes the submitters. Publishing
// before acknowledging gives read-your-writes at PublishEvery=1: by
// the time a caller unblocks, the current View reflects its write.
func (s *Server) commit(batch []*request) {
	s.opsBuf = s.opsBuf[:0]
	for _, r := range batch {
		s.opsBuf = append(s.opsBuf, r.op)
	}
	found, err := s.st.ApplyBatch(s.opsBuf)
	if err == nil {
		s.ops.Add(int64(len(batch)))
		s.batches.Add(1)
		if n := int64(len(batch)); n > s.maxBatch.Load() {
			s.maxBatch.Store(n)
		}
		s.sincePublish++
		if s.sincePublish >= s.opts.PublishEvery {
			s.publish()
			s.sincePublish = 0
		}
	} else {
		s.failed.Store(&poison{err})
	}
	for i, r := range batch {
		res := result{err: err}
		if err == nil {
			res.found = found[i]
		}
		r.done <- res
	}
}

// View returns the current published epoch's immutable view. The
// returned View never changes; load it once per logical read to get
// snapshot isolation, or repeatedly to follow the epoch head.
func (s *Server) View() *View {
	return s.cur.Load()
}

// Release is shorthand for View().Release(k1): the current epoch's
// release at granularity k1 (0 = base k), memoized per epoch.
func (s *Server) Release(k1 int) ([]Partition, error) {
	return s.cur.Load().Release(k1)
}

// Stats reports serving counters; safe from any goroutine.
func (s *Server) Stats() Stats {
	return Stats{
		Ops:      s.ops.Load(),
		Batches:  s.batches.Load(),
		MaxBatch: s.maxBatch.Load(),
		Epoch:    s.cur.Load().Epoch(),
	}
}

// Err reports why the serving layer stopped, or nil while healthy.
func (s *Server) Err() error {
	if p := s.failed.Load(); p != nil {
		return p.err
	}
	return nil
}

// Close stops accepting mutations, commits everything already queued,
// publishes the final epoch and stops the committer. The underlying
// store is NOT closed — the caller owns it (checkpoint it, then close
// it). Close is idempotent and safe to race with submitters: a late
// submitter gets a "server is closed" error instead of a hang.
func (s *Server) Close() error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.reqCh)
	}
	s.mu.Unlock()
	<-s.done
	return s.Err()
}
