// Package serve is the concurrent serving layer over the durable
// store: the machinery that turns internal/wal's single-goroutine,
// fsync-per-operation Store into a front end that can take writes
// from many goroutines and serve reads to many more, concurrently.
//
// Three coordinated layers (DESIGN.md "Serving & concurrency
// control"):
//
//   - Group commit. All mutations funnel into one committer
//     goroutine, which coalesces whatever has queued — up to
//     MaxBatch — into a single multi-record WAL frame committed with
//     ONE fsync (wal.Store.ApplyBatch). Callers block until their
//     batch's frame is durable, so the durability contract is
//     unchanged: an acknowledged write survives any crash. N
//     concurrent writers pay ~N/batch fsyncs instead of N.
//
//   - Snapshot-isolated reads. After each applied batch the committer
//     publishes an immutable, epoch-stamped View built by
//     copy-on-write of the LEAF SUMMARY — leaf boxes and record
//     headers, not the tree, and only for the leaves the batch
//     touched (rplustree.SnapshotLeaves); unchanged leaves are shared
//     with the previous epoch, so the publish cost is proportional to
//     the batch, not the store.
//     Readers load the current View through one atomic pointer and
//     run releases, range counts and query evaluation against it with
//     no lock shared with the writer; a reader holding an old epoch
//     keeps a consistent picture until it drops it.
//
//   - Release cache. The audited base release and every derived
//     granularity k1 are computed lazily by the first reader that
//     asks and memoized inside the View, so repeated releases at the
//     same granularity are O(1) after the first. The cache key is
//     effectively (epoch, k1) and epoch advance is the invalidation:
//     a new View starts cold, old epochs age out when their readers
//     let go. Every release a reader can observe is audited (verify's
//     k-anonymity and Lemma-1 k-boundness checks) once per epoch,
//     before first use.
//
//   - Graceful degradation and self-healing. Admission control bounds
//     the submission queue (ErrOverloaded instead of unbounded
//     blocking) and expires submissions by group-commit ticks
//     (ErrDeadlineExceeded). Transient store faults are absorbed by
//     retrying the whole batch — safe because a failed append rolls
//     the log back and leaves seq untouched. A fault that poisons the
//     store trips a circuit breaker: healthy → degraded-readonly
//     (reads keep serving the last audited epoch; writes get typed
//     errors) → recovering (Server.Recover re-runs the audited
//     committed-prefix recovery on the committer goroutine) → healthy
//     again, all in-process. A background scrubber walks the pager
//     pages between batches, quarantining rot and rewriting the live
//     checkpoint from the audited tree before the rot is ever needed.
//
// The store itself stays single-goroutine: only the committer touches
// it (and, through it, the pager), which is the same coordinator
// confinement discipline the parallel loaders follow.
package serve

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"spatialanon/internal/attr"
	"spatialanon/internal/retry"
	"spatialanon/internal/rplustree"
	"spatialanon/internal/wal"
)

// Options parameterizes a Server.
type Options struct {
	// MaxBatch caps how many queued mutations one group commit
	// coalesces into a single WAL frame. Default 64.
	MaxBatch int
	// PublishEvery publishes a new View every N applied batches
	// (default 1: every batch). Raising it trades read freshness for
	// write throughput when views are expensive (large trees).
	PublishEvery int
	// Parallelism is the worker count for view computations (base
	// release scan, cached granularity scans, query evaluation);
	// 0 = all cores, 1 = serial. Output is identical for every
	// setting (core.LeafScanP's contract).
	Parallelism int
	// QueueDepth bounds the submission queue. A full queue rejects with
	// ErrOverloaded instead of blocking, so a slow fsync can never
	// wedge every caller and queue memory is bounded by construction.
	// Default 4×MaxBatch.
	QueueDepth int
	// DeadlineTicks expires a queued submission that has waited through
	// more than this many group commits, rejecting it with
	// ErrDeadlineExceeded at dequeue. The clock is the commit tick, not
	// wall time, so expiry is deterministic for a given interleaving.
	// 0 disables deadlines.
	DeadlineTicks int
	// Retry bounds committer-side retries of a whole group commit after
	// a transient store fault (the store's own writer retries
	// per-attempt first; this is the outer loop). Only errors that leave
	// the store healthy — seq unadvanced, log rolled back — are retried,
	// so a retry can never double-commit. Zero value means a single try.
	Retry retry.Policy
	// ScrubEvery runs a background scrub of the store's pages every N
	// group commits, on the committer between batches. 0 disables
	// scrubbing.
	ScrubEvery int
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.PublishEvery <= 0 {
		o.PublishEvery = 1
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.MaxBatch
	}
	return o
}

// Stats counts what the serving layer has done since New.
type Stats struct {
	// Ops is the number of acknowledged mutations.
	Ops int64
	// Batches is the number of group commits (= WAL frames = fsyncs
	// spent on mutations).
	Batches int64
	// MaxBatch is the largest batch committed so far.
	MaxBatch int64
	// Epoch is the current published epoch.
	Epoch uint64
	// State is the circuit-breaker state at the time of the call.
	State State
	// Shed counts submissions rejected with ErrOverloaded.
	Shed int64
	// Expired counts submissions rejected with ErrDeadlineExceeded.
	Expired int64
	// Retries counts extra group-commit attempts spent absorbing
	// transient store faults (0 when every batch committed first try).
	Retries int64
	// Recoveries counts successful Server.Recover resurrections.
	Recoveries int64
	// RecoverAttempts counts store recovery attempts, successful or
	// not. Concurrent Recover callers coalesce into one attempt
	// (single-flight), so this stays well below the caller count under
	// a recovery storm.
	RecoverAttempts int64
	// ScrubScans, ScrubCorrupt and ScrubRepaired count background scrub
	// passes, corrupt pages detected, and pages repaired (quarantined or
	// rewritten from the live tree).
	ScrubScans    int64
	ScrubCorrupt  int64
	ScrubRepaired int64
}

// result is what a blocked submitter receives when its batch commits.
type result struct {
	found bool
	err   error
}

// request is one queued mutation and its completion channel. tick is
// the commit tick at enqueue; the committer compares it against the
// current tick at dequeue to expire submissions that waited too long.
type request struct {
	op   wal.Op
	done chan result
	tick uint64
}

// recoverReq asks the committer to run a recovery on its own
// goroutine, preserving the store's single-goroutine confinement.
type recoverReq struct {
	done chan error
}

// Server is the concurrent front end. Create one with New, mutate
// with Insert/Delete/Update from any number of goroutines, read with
// View/Release from any number more, and Close it before closing the
// underlying store.
type Server struct {
	st   *wal.Store
	opts Options
	dims int
	// baseK is the store's base anonymity parameter, copied from the
	// already-validated tree config (rplustree.Config rejects k < 2);
	// anonylint:k-validated.
	baseK int

	reqCh     chan *request
	recoverCh chan *recoverReq
	done      chan struct{}

	mu     sync.RWMutex // guards closed (submit send vs Close)
	closed bool

	cur    atomic.Pointer[View]
	failed atomic.Pointer[poison]
	state  atomic.Int32 // State; the circuit-breaker position
	// tick is the group-commit clock: one increment per committed (or
	// degraded-drained) batch. Deadlines are measured against it, so
	// "too slow" is a deterministic property of the interleaving, never
	// of wall time (detrand-safe).
	tick atomic.Uint64

	// Committer-owned state (no locks: single goroutine).
	epoch        uint64
	sincePublish int
	sinceScrub   int
	opsBuf       []wal.Op
	// prevSnap is the previous publish's leaf snapshot — the
	// copy-on-write baseline the next SnapshotLeaves call diffs
	// against.
	prevSnap []rplustree.LeafView

	ops        atomic.Int64
	batches    atomic.Int64
	maxBatch   atomic.Int64
	shed       atomic.Int64
	expired    atomic.Int64
	retries    atomic.Int64
	recoveries atomic.Int64
	// recoverAttempts counts st.Recover invocations — the single-flight
	// regression signal: N concurrent Recover callers must cost one
	// attempt, not N.
	recoverAttempts atomic.Int64
	scrubScans      atomic.Int64
	scrubCorrupt    atomic.Int64
	scrubRepaired   atomic.Int64
}

// poison boxes the error that stopped the serving layer (an epoch
// audit failure or a dead store).
type poison struct{ err error }

// New wraps an open, audited store. The server immediately publishes
// epoch 1 — the recovered state — so readers always have a View, and
// then starts the committer. The store must not be used directly
// while the server is live: the committer owns it.
func New(st *wal.Store, opts Options) (*Server, error) {
	if st == nil {
		return nil, fmt.Errorf("serve: nil store")
	}
	if err := st.Err(); err != nil {
		return nil, fmt.Errorf("serve: store is poisoned: %w", err)
	}
	opts = opts.withDefaults()
	cfg := st.Tree().Config()
	s := &Server{
		st:        st,
		opts:      opts,
		dims:      cfg.Schema.Dims(),
		baseK:     cfg.BaseK,
		reqCh:     make(chan *request, opts.QueueDepth),
		recoverCh: make(chan *recoverReq),
		done:      make(chan struct{}),
	}
	s.publish()
	go s.commitLoop()
	return s, nil
}

// Insert durably inserts one record. It blocks until the record's
// group commit is on disk.
func (s *Server) Insert(rec attr.Record) error {
	_, err := s.submit(wal.Op{Type: wal.TypeInsert, Rec: rec})
	return err
}

// Delete durably deletes the record with the given id at qi,
// reporting whether it existed.
func (s *Server) Delete(id int64, qi []float64) (bool, error) {
	return s.submit(wal.Op{Type: wal.TypeDelete, ID: id, OldQI: qi})
}

// Update durably relocates a record, reporting whether it existed.
func (s *Server) Update(id int64, oldQI []float64, rec attr.Record) (bool, error) {
	return s.submit(wal.Op{Type: wal.TypeUpdate, ID: id, OldQI: oldQI, Rec: rec})
}

// submit validates on the calling goroutine (a bad op must fail its
// own caller, never the batch it would have shared), applies
// admission control, enqueues WITHOUT blocking, and waits for the
// commit result. The non-blocking enqueue is the load-shedding point:
// a full queue means the committer is behind (a slow fsync, a burst),
// and the honest answer is an immediate typed ErrOverloaded the
// caller can retry, not an unbounded line of parked goroutines.
func (s *Server) submit(op wal.Op) (bool, error) {
	if err := wal.ValidateOp(s.dims, op); err != nil {
		return false, err
	}
	if err := s.admit(); err != nil {
		return false, err
	}
	r := &request{op: op, done: make(chan result, 1), tick: s.tick.Load()}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return false, ErrClosed
	}
	select {
	case s.reqCh <- r:
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		s.shed.Add(1)
		return false, ErrOverloaded
	}
	res := <-r.done
	return res.found, res.err
}

// admit is the write-side circuit breaker: degraded and recovering
// states refuse new mutations up front with their typed errors.
// Reads are never gated — they go through the published View.
func (s *Server) admit() error {
	switch State(s.state.Load()) {
	case StateRecovering:
		return ErrRecovering
	case StateDegraded:
		if p := s.failed.Load(); p != nil {
			return p.err
		}
		return ErrDegraded
	}
	if p := s.failed.Load(); p != nil {
		return p.err
	}
	return nil
}

// commitLoop is the committer: the one goroutine that touches the
// store. It blocks for the first queued request, drains whatever else
// has queued up to MaxBatch without waiting (group commit needs no
// timer — the batch is "everyone who arrived while the last fsync
// ran"), commits the batch as one frame, publishes, and acknowledges.
func (s *Server) commitLoop() {
	defer close(s.done)
	batch := make([]*request, 0, s.opts.MaxBatch)
	for {
		var r *request
		var ok bool
		select {
		case rr := <-s.recoverCh:
			s.doRecover(rr)
			continue
		case r, ok = <-s.reqCh:
		}
		if !ok {
			break
		}
		batch = append(batch[:0], r)
		chClosed := false
	drain:
		for len(batch) < s.opts.MaxBatch {
			select {
			case r2, ok2 := <-s.reqCh:
				if !ok2 {
					chClosed = true
					break drain
				}
				batch = append(batch, r2)
			default:
				break drain
			}
		}
		s.commit(batch)
		s.tick.Add(1)
		if chClosed {
			break
		}
		s.maybeScrub()
		// Yield once so the submitters just woken by the acks get to
		// re-enqueue before the next drain: without this, on a loaded
		// machine the committer can win the race back to reqCh every
		// time and batches collapse toward one op per fsync.
		runtime.Gosched()
	}
	// Flush the last epoch so Close leaves the view current.
	if s.sincePublish > 0 && s.failed.Load() == nil {
		s.publish()
	}
}

// commit applies one batch as a single durable frame, publishes the
// next epoch if one is due, then wakes the submitters. Publishing
// before acknowledging gives read-your-writes at PublishEvery=1: by
// the time a caller unblocks, the current View reflects its write.
//
// Failure handling, in order: a degraded server drains the batch with
// the degraded error without touching the store; expired submissions
// are rejected before the store sees them; a transient store fault —
// which by the store's contract left seq unadvanced and the log
// rolled back — is retried whole under Options.Retry; a fault that
// poisoned the store trips the breaker to degraded-readonly.
func (s *Server) commit(batch []*request) {
	if p := s.failed.Load(); p != nil {
		for _, r := range batch {
			r.done <- result{err: p.err}
		}
		return
	}
	s.opsBuf = s.opsBuf[:0]
	live := batch[:0]
	if s.opts.DeadlineTicks > 0 {
		now := s.tick.Load()
		for _, r := range batch {
			if now-r.tick > uint64(s.opts.DeadlineTicks) {
				s.expired.Add(1)
				r.done <- result{err: ErrDeadlineExceeded}
				continue
			}
			live = append(live, r)
		}
		if len(live) == 0 {
			return
		}
	} else {
		live = batch
	}
	for _, r := range live {
		s.opsBuf = append(s.opsBuf, r.op)
	}
	var found []bool
	attempt := 0
	err := s.opts.Retry.Do(func() error {
		attempt++
		if attempt > 1 {
			if s.st.Err() != nil {
				// Backstop: never re-apply a batch into a store whose
				// state is uncertain (retry.Do won't retry a poisoned
				// error — it is not transient — but the invariant is
				// load-bearing enough to enforce locally too).
				return s.st.Err()
			}
			s.retries.Add(1)
		}
		var aerr error
		found, aerr = s.st.ApplyBatch(s.opsBuf)
		return aerr
	})
	if err == nil {
		s.ops.Add(int64(len(live)))
		s.batches.Add(1)
		if n := int64(len(live)); n > s.maxBatch.Load() {
			s.maxBatch.Store(n)
		}
		s.sincePublish++
		if s.sincePublish >= s.opts.PublishEvery {
			s.publish()
			s.sincePublish = 0
		}
	} else if s.st.Err() != nil {
		// The store is poisoned: trip the breaker. Readers keep the
		// last audited epoch; writers get the typed degraded error
		// until a Recover succeeds.
		s.degrade(err)
		if p := s.failed.Load(); p != nil {
			err = p.err
		}
	}
	// A transient error that exhausted retries while the store stayed
	// healthy falls through here: this batch's callers fail with the
	// transient error (their writes did NOT happen and may be resubmitted),
	// and the server keeps serving.
	for i, r := range live {
		res := result{err: err}
		if err == nil {
			res.found = found[i]
		}
		r.done <- res
	}
}

// degrade trips the circuit breaker: record the cause (wrapping
// ErrDegraded, with the store's ErrPoisoned chain inside) and enter
// degraded-readonly.
func (s *Server) degrade(cause error) {
	s.failed.Store(&poison{fmt.Errorf("%w: %w", ErrDegraded, cause)})
	s.state.Store(int32(StateDegraded))
}

// maybeScrub runs the background scrubber when its budget is due:
// committer-only, between batches, so it shares the store safely with
// the write path. Scrub findings are repaired by the store (rotten
// garbage pages quarantined, live checkpoint rewritten from the
// audited tree); a scrub that poisons the store trips the breaker
// like any other store failure.
func (s *Server) maybeScrub() {
	if s.opts.ScrubEvery <= 0 || s.failed.Load() != nil {
		return
	}
	s.sinceScrub++
	if s.sinceScrub < s.opts.ScrubEvery {
		return
	}
	s.sinceScrub = 0
	rep, err := s.st.Scrub()
	s.scrubScans.Add(1)
	s.scrubCorrupt.Add(int64(len(rep.Corrupt)))
	if err == nil {
		// Every corrupt page found was repaired: freed if garbage,
		// rewritten from the live tree if part of the checkpoint.
		s.scrubRepaired.Add(int64(len(rep.Corrupt)))
		return
	}
	s.scrubRepaired.Add(int64(rep.Freed))
	if s.st.Err() != nil {
		s.degrade(err)
	}
}

// doRecover runs on the committer goroutine: it owns the store, so
// recovery routes through it like every other store access. Queued
// submissions are drained with ErrRecovering — they were admitted
// before the breaker tripped and must not wait on an uncertain
// outcome — then the store is rebuilt and, on success, a fresh epoch
// is published before writes reopen.
//
// Recovery is single-flight: every Recover caller blocked on
// recoverCh — now, or while the store is rebuilding — joins the
// attempt in flight and shares its outcome. Without coalescing, N
// callers racing into a still-failing store would each re-run
// st.Recover and re-drain the queue, turning one failure into N
// sequential recovery storms.
func (s *Server) doRecover(rr *recoverReq) {
	waiters := s.gatherRecoverWaiters([]*recoverReq{rr})
	if s.failed.Load() == nil {
		// Healthy; nothing to recover. Callers queued behind a
		// successful attempt land here and learn it already won.
		for _, w := range waiters {
			w.done <- nil
		}
		return
	}
	s.recoverAttempts.Add(1)
	s.state.Store(int32(StateRecovering))
	s.drainQueued(ErrRecovering)
	err := s.st.Recover()
	// Callers that arrived while the store was rebuilding were blocked
	// on the unbuffered recoverCh; rendezvous with them now so they
	// share this attempt's verdict instead of starting their own.
	waiters = s.gatherRecoverWaiters(waiters)
	if err != nil {
		// Still down: back to degraded-readonly on the last audited
		// epoch. The original poison stays as the cause.
		s.state.Store(int32(StateDegraded))
		for _, w := range waiters {
			w.done <- err
		}
		return
	}
	// The store recovered through the full audited reopen path. The
	// old copy-on-write baseline belongs to the pre-recovery tree, so
	// the next publish must snapshot from scratch.
	s.prevSnap = nil
	s.sincePublish = 0
	s.publish()
	s.failed.Store(nil)
	s.recoveries.Add(1)
	s.state.Store(int32(StateHealthy))
	for _, w := range waiters {
		w.done <- nil
	}
}

// gatherRecoverWaiters collects every Recover caller currently parked
// on the unbuffered recoverCh. Each receive unblocks one sender, so
// the loop drains exactly the callers that were already committed to
// this attempt; it never waits for new ones.
func (s *Server) gatherRecoverWaiters(ws []*recoverReq) []*recoverReq {
	for {
		select {
		case w := <-s.recoverCh:
			ws = append(ws, w)
		default:
			return ws
		}
	}
}

// drainQueued empties the submission queue, failing every queued
// request with err.
func (s *Server) drainQueued(err error) {
	for {
		select {
		case r, ok := <-s.reqCh:
			if !ok {
				return
			}
			r.done <- result{err: err}
		default:
			return
		}
	}
}

// Recover asks the committer to resurrect a degraded server in
// place: re-run the store's committed-prefix recovery and audit, and
// on success republish a fresh epoch and reopen writes. Safe from any
// goroutine; returns nil when the server is healthy afterwards (a
// no-op on an already-healthy server), the recovery failure when the
// store stayed down (the server remains degraded-readonly), or
// ErrClosed.
func (s *Server) Recover() error {
	rr := &recoverReq{done: make(chan error, 1)}
	select {
	case s.recoverCh <- rr:
	case <-s.done:
		return ErrClosed
	}
	select {
	case err := <-rr.done:
		return err
	case <-s.done:
		// The committer exited while we waited; it replies before
		// exiting if it took the request, so prefer a queued verdict.
		select {
		case err := <-rr.done:
			return err
		default:
			return ErrClosed
		}
	}
}

// State reports the circuit-breaker position; safe from any
// goroutine.
func (s *Server) State() State { return State(s.state.Load()) }

// View returns the current published epoch's immutable view. The
// returned View never changes; load it once per logical read to get
// snapshot isolation, or repeatedly to follow the epoch head.
func (s *Server) View() *View {
	return s.cur.Load()
}

// Release is shorthand for View().Release(k1): the current epoch's
// release at granularity k1 (0 = base k), memoized per epoch.
func (s *Server) Release(k1 int) ([]Partition, error) {
	return s.cur.Load().Release(k1)
}

// Stats reports serving counters; safe from any goroutine.
func (s *Server) Stats() Stats {
	return Stats{
		Ops:             s.ops.Load(),
		Batches:         s.batches.Load(),
		MaxBatch:        s.maxBatch.Load(),
		Epoch:           s.cur.Load().Epoch(),
		State:           State(s.state.Load()),
		Shed:            s.shed.Load(),
		Expired:         s.expired.Load(),
		Retries:         s.retries.Load(),
		Recoveries:      s.recoveries.Load(),
		RecoverAttempts: s.recoverAttempts.Load(),
		ScrubScans:      s.scrubScans.Load(),
		ScrubCorrupt:    s.scrubCorrupt.Load(),
		ScrubRepaired:   s.scrubRepaired.Load(),
	}
}

// Err reports why the serving layer stopped, or nil while healthy.
func (s *Server) Err() error {
	if p := s.failed.Load(); p != nil {
		return p.err
	}
	return nil
}

// Close stops accepting mutations, commits everything already queued,
// publishes the final epoch and stops the committer. The underlying
// store is NOT closed — the caller owns it (checkpoint it, then close
// it). Close is idempotent and safe to race with submitters: a late
// submitter gets a "server is closed" error instead of a hang.
func (s *Server) Close() error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.reqCh)
	}
	s.mu.Unlock()
	<-s.done
	return s.Err()
}
