//go:build race

package serve

// raceEnabled gates assertions that the race runtime invalidates —
// sync.Pool drops items randomly under -race, so pooled paths
// legitimately re-allocate there.
const raceEnabled = true
