package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/dataset"
	"spatialanon/internal/detrng"
	"spatialanon/internal/fault"
	"spatialanon/internal/retry"
	"spatialanon/internal/rplustree"
	"spatialanon/internal/verify"
	"spatialanon/internal/wal"
)

// The serve-level chaos matrix, the tentpole's claim made executable:
// under seeded schedules of torn WAL writes, flaky fsyncs, checkpoint
// bit rot and bounded permanent device faults, the server either
// degrades to read-only on its last audited epoch or resurrects to an
// audited k-safe state — and it NEVER acknowledges a write it cannot
// produce on a clean restart, never loses one it acknowledged, and
// never serves an unaudited view. Every rejection a submitter sees
// must match the typed taxonomy; an unclassifiable error fails the
// matrix.

// chaosIDs snapshots the store's record IDs from its live tree.
func chaosIDs(st *wal.Store) map[int64]bool {
	out := make(map[int64]bool)
	for _, l := range st.Tree().Leaves() {
		for _, r := range l.Records {
			out[r.ID] = true
		}
	}
	return out
}

// chaosSubmit pushes one record to acknowledgment through whatever the
// fault schedule throws at it. Degraded states trigger resurrection;
// transient and shed rejections resubmit (both are safe: a failed
// operation is rolled back whole, never half-committed). The fault
// budgets are bounded, so a bounded number of attempts must suffice.
func chaosSubmit(t *testing.T, s *Server, st *wal.Store, rec attr.Record, firstErr error, degraded, transient *int) {
	t.Helper()
	err := firstErr
	for attempt := 0; ; attempt++ {
		if err == nil {
			return
		}
		if attempt >= 20 {
			t.Fatalf("record %d never committed: %v", rec.ID, err)
		}
		switch {
		case errors.Is(err, ErrDegraded):
			*degraded++
			if !errors.Is(err, wal.ErrPoisoned) {
				t.Fatalf("degraded error chain lost the poison cause: %v", err)
			}
			// A groupmate's chaosSubmit may have resurrected the server
			// already; only drive recovery while the circuit is still open.
			if s.State() == StateDegraded {
				// The circuit is open, but reads must keep serving the last
				// audited epoch.
				if v := s.View(); v.Len() >= testK {
					rel, rerr := v.Release(0)
					if rerr != nil {
						t.Fatalf("degraded read refused: %v", rerr)
					}
					if verr := verify.Release(rel, anonmodel.KAnonymity{K: testK}); verr != nil {
						t.Fatalf("degraded view is unaudited: %v", verr)
					}
				}
				// Resurrect. The device fault budget is bounded, so this
				// must converge; each failed attempt burns more budget.
				ok := false
				for a := 0; a < 10; a++ {
					if rerr := s.Recover(); rerr == nil {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("server never resurrected: %v", s.Err())
				}
				if got := s.State(); got != StateHealthy {
					t.Fatalf("state %v after successful Recover", got)
				}
			}
			// The poison may have struck AFTER this op's batch frame
			// committed (a failed post-commit checkpoint): the op's fate
			// is ambiguous and blind resubmission would double-commit.
			// Resolve against the recovered store, as an idempotent
			// client would. Nothing is in flight here, so the committer
			// is not mutating the tree under this scan.
			if chaosIDs(st)[rec.ID] {
				return
			}
		case errors.Is(err, ErrRecovering), errors.Is(err, ErrOverloaded), errors.Is(err, ErrDeadlineExceeded):
			// Typed shed: not committed, resubmit.
		case retry.IsTransient(err):
			*transient++
		default:
			t.Fatalf("record %d: rejection outside the typed taxonomy: %v", rec.ID, err)
		}
		err = s.Insert(rec)
	}
}

func TestChaosServeMatrix(t *testing.T) {
	seeds := 24
	if testing.Short() {
		seeds = 4
	}
	const nOps = 80

	// Matrix-wide coverage: the schedules must actually exercise the
	// degrade→resurrect circuit, transient absorption, and the
	// scrubber — not just thread clean runs through the harness.
	var totalDegraded, totalRecoveries, totalInjected, totalScrubFound atomic.Int64

	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := detrng.New(int64(seed) + 101)

			// WAL-side device: transient write/fsync faults with torn
			// partial frames. Every third seed instead schedules one
			// guaranteed permanent fault mid-workload, so the
			// degraded-readonly → resurrect path is exercised by
			// construction, not by rate luck.
			fcfg := fault.FlakyConfig{
				TransientWriteRate: 0.10 * rng.Float64(),
				TransientSyncRate:  0.06 * rng.Float64(),
				PermanentWriteRate: 0.01 * rng.Float64(),
				After:              2, // Create's own manifest append passes
				MaxFaults:          2 + rng.Intn(4),
			}
			if seed%3 == 0 {
				fcfg = fault.FlakyConfig{
					PermanentWriteRate: 1,
					After:              2 + rng.Intn(2*nOps),
					MaxFaults:          1 + rng.Intn(2),
				}
			}
			flaky := fault.NewFlaky(fault.DeriveSeed(int64(seed), 1), fcfg)

			// Pager-side device under the checkpoints: transient reads and
			// writes, torn page write-backs, bit rot. NO permanent rates:
			// the injector remembers permanent faults per page ID and a
			// resurrected image reuses low IDs, which would make
			// resurrection structurally impossible rather than testing it.
			inj := fault.NewInjector(fault.DeriveSeed(int64(seed), 2), fault.Config{
				TransientReadRate:  0.04 * rng.Float64(),
				TransientWriteRate: 0.06 * rng.Float64(),
				TornWriteRate:      0.10 * rng.Float64(),
				BitRotRate:         0.10 * rng.Float64(),
				After:              4,
				MaxFaults:          1 + rng.Intn(3),
			})

			dir := t.TempDir()
			schema := dataset.LandsEndSchema()
			st, err := wal.Create(wal.Options{
				Dir:             dir,
				Tree:            rplustree.Config{Schema: schema, BaseK: testK},
				CheckpointEvery: 7,
				NoSync:          true,
				Retry:           retry.Policy{Attempts: 3},
				AppendFault:     flaky,
				PagerFault:      inj,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			s, err := New(st, Options{
				MaxBatch:   4,
				QueueDepth: 16,
				Retry:      retry.Policy{Attempts: 2},
				ScrubEvery: 3,
			})
			if err != nil {
				t.Fatal(err)
			}

			// The workload: nOps inserts in small concurrent bursts, so
			// faults land mid-group-commit, not only on singleton batches.
			recs := makeRecords(t, nOps, int64(seed)+7)
			var degraded, transient int
			for i := 0; i < nOps; {
				g := 1 + rng.Intn(3)
				if i+g > nOps {
					g = nOps - i
				}
				group := recs[i : i+g]
				errs := make([]error, g)
				var wg sync.WaitGroup
				for j := range group {
					j := j
					wg.Add(1)
					go func() { defer wg.Done(); errs[j] = s.Insert(group[j]) }()
				}
				wg.Wait()
				for j := range group {
					chaosSubmit(t, s, st, group[j], errs[j], &degraded, &transient)
				}
				i += g
			}

			// Every record was eventually acknowledged; the server must be
			// serving all of them (possibly after one more resurrection, if
			// the very last commit's scrub opened the circuit).
			if s.State() == StateDegraded {
				if err := s.Recover(); err != nil {
					t.Fatalf("final resurrection: %v", err)
				}
			}
			stats := s.Stats()
			if err := s.Close(); err != nil && s.Err() == nil {
				t.Fatalf("close: %v", err)
			}

			// Settle: scrub-and-repair until the durable image is clean.
			// Budgets are spent or bounded, so this converges.
			settled := false
			for a := 0; a < 12 && !settled; a++ {
				if st.Err() != nil {
					if err := st.Recover(); err != nil {
						continue
					}
				}
				rep, err := st.Scrub()
				if err != nil {
					continue
				}
				totalScrubFound.Add(int64(len(rep.Corrupt)))
				settled = len(rep.Corrupt) == 0
			}
			if !settled {
				t.Fatalf("image never settled clean: %v", st.Err())
			}

			// Committed-state contract: exactly the acknowledged records,
			// k-safe and audited.
			want := make(map[int64]bool, nOps)
			for _, r := range recs {
				want[r.ID] = true
			}
			check := func(who string, s2 *wal.Store) {
				t.Helper()
				got := chaosIDs(s2)
				for id := range want {
					if !got[id] {
						t.Fatalf("%s lost acknowledged record %d", who, id)
					}
				}
				if len(got) != len(want) {
					t.Fatalf("%s holds %d records, %d were acknowledged", who, len(got), len(want))
				}
				rel, err := s2.Release(0)
				if err != nil {
					t.Fatalf("%s release: %v", who, err)
				}
				if err := verify.Release(rel, anonmodel.KAnonymity{K: testK}); err != nil {
					t.Fatalf("%s release unaudited: %v", who, err)
				}
			}
			check("settled store", st)

			// The image must survive a real process restart on a clean
			// device — the final word on what was actually made durable.
			if err := st.Close(); err != nil {
				t.Fatalf("close settled store: %v", err)
			}
			st2, err := wal.Open(wal.Options{
				Dir:    dir,
				Tree:   rplustree.Config{Schema: schema, BaseK: testK},
				NoSync: true,
			})
			if err != nil {
				t.Fatalf("clean reopen: %v", err)
			}
			defer st2.Close()
			check("reopened store", st2)

			totalDegraded.Add(int64(degraded))
			totalRecoveries.Add(stats.Recoveries)
			totalInjected.Add(int64(flaky.Injected() + inj.Injected()))
			totalScrubFound.Add(stats.ScrubCorrupt)
		})
	}

	// Cleanup runs after the parallel subtests finish.
	t.Cleanup(func() {
		if testing.Short() {
			return
		}
		if totalInjected.Load() == 0 {
			t.Error("matrix injected no faults at all")
		}
		if totalDegraded.Load() == 0 || totalRecoveries.Load() == 0 {
			t.Errorf("matrix never exercised the degrade→resurrect circuit (degraded=%d recoveries=%d)",
				totalDegraded.Load(), totalRecoveries.Load())
		}
		if totalScrubFound.Load() == 0 {
			t.Error("matrix never exercised the scrubber against real rot")
		}
	})
}
