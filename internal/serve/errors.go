package serve

import "errors"

// The serving layer's typed error taxonomy. Every rejection a
// submitter can see wraps exactly one of these sentinels, so callers
// branch with errors.Is instead of string matching, and load
// generators can bucket shed traffic by class.
var (
	// ErrOverloaded rejects a submission because the bounded queue is
	// full: admission control's answer to a slow fsync, instead of
	// unbounded blocking. The write was NOT accepted; retry later.
	ErrOverloaded = errors.New("serve: overloaded")

	// ErrDeadlineExceeded rejects a submission that waited in the queue
	// longer than its deadline (measured in group-commit ticks, not
	// wall clock, so schedules replay deterministically). The write was
	// NOT committed.
	ErrDeadlineExceeded = errors.New("serve: deadline exceeded")

	// ErrDegraded marks the degraded-readonly circuit state: the store
	// under the server is poisoned, writes are refused, reads keep
	// serving the last audited epoch. Degraded errors wrap both this
	// sentinel and the poisoning cause (which itself wraps
	// wal.ErrPoisoned), so errors.Is matches either layer.
	ErrDegraded = errors.New("serve: degraded to read-only")

	// ErrRecovering rejects work that arrived while Server.Recover was
	// rebuilding the store: in-flight submissions are drained with this
	// error rather than parked on an uncertain outcome.
	ErrRecovering = errors.New("serve: recovering")

	// ErrClosed rejects work submitted after Close.
	ErrClosed = errors.New("serve: server is closed")
)

// State is the serving layer's circuit-breaker state.
type State int32

const (
	// StateHealthy accepts writes and serves reads.
	StateHealthy State = iota
	// StateDegraded refuses writes (the store is poisoned) but keeps
	// serving reads from the last audited published epoch.
	StateDegraded
	// StateRecovering is the transient state while Server.Recover
	// rebuilds the store; writes are refused, reads still serve the
	// last audited epoch.
	StateRecovering
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	case StateRecovering:
		return "recovering"
	}
	return "unknown"
}
