package serve

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"spatialanon/internal/fault"
	"spatialanon/internal/rplustree"
	"spatialanon/internal/wal"

	"spatialanon/internal/dataset"
	"spatialanon/internal/retry"
)

// gate is a test AppendFault that wedges the committer: every write
// attempt after Create's own manifest append blocks until release.
// It models the pathological fsync stall admission control exists for.
type gate struct {
	release chan struct{}
	entered chan struct{}
	calls   int
	once    sync.Once
}

func newGate() *gate {
	return &gate{release: make(chan struct{}), entered: make(chan struct{})}
}

func (g *gate) WriteAttempt(int) (int, error) {
	g.calls++
	if g.calls > 1 { // Create's manifest append passes through
		g.once.Do(func() { close(g.entered) })
		<-g.release
	}
	return 0, nil
}

func (g *gate) SyncAttempt() error { return nil }

// newFaultyStore builds a store whose WAL appends go through af.
func newFaultyStore(t testing.TB, af wal.AppendFault, checkpointEvery int) *wal.Store {
	t.Helper()
	st, err := wal.Create(wal.Options{
		Dir:             t.TempDir(),
		Tree:            rplustree.Config{Schema: dataset.LandsEndSchema(), BaseK: testK},
		NoSync:          true,
		CheckpointEvery: checkpointEvery,
		AppendFault:     af,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestOverloadShedsTyped: with the committer wedged mid-fsync, the
// bounded queue must fill and further submissions must be rejected
// immediately with ErrOverloaded — no unbounded blocking, no
// deadlock — and every shed write must be absent from the store while
// every accepted one commits once the stall clears.
func TestOverloadShedsTyped(t *testing.T) {
	g := newGate()
	st := newFaultyStore(t, g, 0)
	defer st.Close()
	const depth = 4
	s, err := New(st, Options{MaxBatch: 2, QueueDepth: depth})
	if err != nil {
		t.Fatal(err)
	}
	recs := makeRecords(t, depth+8, 31)

	// Wedge the committer on the first write's fsync-analogue.
	var wg sync.WaitGroup
	results := make([]error, len(recs))
	submit := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = s.Insert(recs[i])
		}()
	}
	submit(0)
	<-g.entered

	// Fill the queue exactly (committer is blocked, so nothing drains).
	for i := 1; i <= depth; i++ {
		submit(i)
		for len(s.reqCh) < i {
			time.Sleep(time.Millisecond)
		}
	}

	// The queue is full: this caller must be shed, typed and instantly.
	if err := s.Insert(recs[len(recs)-1]); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("submit against full queue: %v, want ErrOverloaded", err)
	}
	if s.Stats().Shed == 0 {
		t.Fatal("shed counter not incremented")
	}

	close(g.release)
	wg.Wait()
	acked := 0
	for _, err := range results[:depth+1] {
		if err == nil {
			acked++
		} else if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("unexpected submit error: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Len() != acked {
		t.Fatalf("store holds %d records, %d were acknowledged", st.Len(), acked)
	}
}

// TestDeadlineExpiresByTicks: submissions that wait through more
// group commits than their deadline are rejected with
// ErrDeadlineExceeded at dequeue — a queue-position property, not a
// wall-clock one — and expired writes never reach the store.
func TestDeadlineExpiresByTicks(t *testing.T) {
	g := newGate()
	st := newFaultyStore(t, g, 0)
	defer st.Close()
	const n = 6
	s, err := New(st, Options{MaxBatch: 1, QueueDepth: n, DeadlineTicks: 1})
	if err != nil {
		t.Fatal(err)
	}
	recs := makeRecords(t, n+1, 37)

	var wg sync.WaitGroup
	results := make([]error, len(recs))
	wg.Add(1)
	go func() { defer wg.Done(); results[0] = s.Insert(recs[0]) }()
	<-g.entered
	// Queue n more behind the wedged commit, all enqueued at tick 0.
	for i := 1; i <= n; i++ {
		i := i
		wg.Add(1)
		go func() { defer wg.Done(); results[i] = s.Insert(recs[i]) }()
		for len(s.reqCh) < i {
			time.Sleep(time.Millisecond)
		}
	}
	close(g.release)
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	acked, expired := 0, 0
	for i, err := range results {
		switch {
		case err == nil:
			acked++
		case errors.Is(err, ErrDeadlineExceeded):
			expired++
		default:
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	// MaxBatch=1: request k commits at tick k, so everything queued
	// deeper than DeadlineTicks+1 must expire.
	if expired == 0 {
		t.Fatal("no submission expired despite DeadlineTicks=1 and a deep queue")
	}
	if got := s.Stats().Expired; got != int64(expired) {
		t.Fatalf("Expired counter %d, callers saw %d", got, expired)
	}
	if st.Len() != acked {
		t.Fatalf("store holds %d records, %d acked", st.Len(), acked)
	}
}

// TestDegradedReadonlyThenRecover walks the full circuit: a permanent
// device fault poisons the store mid-stream; the server degrades to
// read-only serving the last audited epoch; Recover resurrects it in
// place; writes work again and nothing acknowledged is lost.
func TestDegradedReadonlyThenRecover(t *testing.T) {
	fl := fault.NewFlaky(41, fault.FlakyConfig{PermanentWriteRate: 1, After: 40, MaxFaults: 1})
	st := newFaultyStore(t, fl, 0)
	defer st.Close()
	s, err := New(st, Options{MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	recs := makeRecords(t, 60, 41)
	var acked []int64
	var degradedErr error
	for _, r := range recs {
		if err := s.Insert(r); err != nil {
			degradedErr = err
			break
		}
		acked = append(acked, r.ID)
	}
	if degradedErr == nil {
		t.Fatal("fault schedule never fired")
	}
	if !errors.Is(degradedErr, ErrDegraded) || !errors.Is(degradedErr, wal.ErrPoisoned) {
		t.Fatalf("poisoning submit error %v, want ErrDegraded wrapping wal.ErrPoisoned", degradedErr)
	}
	if s.State() != StateDegraded {
		t.Fatalf("state %v after poison, want degraded", s.State())
	}

	// Degraded-readonly: reads keep serving the last audited epoch.
	v := s.View()
	if v == nil {
		t.Fatal("no view while degraded")
	}
	if int(v.Len()) != len(acked) {
		t.Fatalf("degraded view has %d records, %d were acked", v.Len(), len(acked))
	}
	if _, err := v.Release(0); err != nil {
		t.Fatalf("degraded release: %v", err)
	}
	// Writes are refused with the typed degraded error.
	if err := s.Insert(recs[len(recs)-1]); !errors.Is(err, ErrDegraded) {
		t.Fatalf("write while degraded: %v, want ErrDegraded", err)
	}
	if s.Err() == nil {
		t.Fatal("Err() nil while degraded")
	}

	// Resurrection: the fault budget is spent, so recovery must land.
	if err := s.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if s.State() != StateHealthy {
		t.Fatalf("state %v after recover, want healthy", s.State())
	}
	if s.Err() != nil {
		t.Fatalf("Err() %v after recover", s.Err())
	}
	if got := s.Stats().Recoveries; got != 1 {
		t.Fatalf("Recoveries %d, want 1", got)
	}
	// The republished epoch serves the recovered state, and writes work.
	if int(s.View().Len()) != len(acked) {
		t.Fatalf("recovered view has %d records, want %d", s.View().Len(), len(acked))
	}
	extra := recs[len(recs)-1]
	if err := s.Insert(extra); err != nil {
		t.Fatalf("insert after recover: %v", err)
	}
	if int(s.View().Len()) != len(acked)+1 {
		t.Fatalf("view has %d records after post-recovery insert, want %d", s.View().Len(), len(acked)+1)
	}
	// Recover on a healthy server is a no-op.
	if err := s.Recover(); err != nil {
		t.Fatalf("recover while healthy: %v", err)
	}
}

// TestCloseReapsPoisonedCommitter: Close must terminate the committer
// goroutine even when the store died mid-stream — no goroutine leak,
// no hang — and late submitters get typed errors, not parked forever.
func TestCloseReapsPoisonedCommitter(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		fl := fault.NewFlaky(43, fault.FlakyConfig{PermanentWriteRate: 1, After: 6, MaxFaults: 1})
		st := newFaultyStore(t, fl, 0)
		s, err := New(st, Options{MaxBatch: 2, QueueDepth: 4})
		if err != nil {
			t.Fatal(err)
		}
		recs := makeRecords(t, 16, int64(47+round))
		var wg sync.WaitGroup
		for i := range recs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				s.Insert(recs[i]) // some acked, some typed failures — all must return
			}(i)
		}
		wg.Wait()
		if err := s.Close(); err == nil {
			t.Fatal("Close of a degraded server reported healthy")
		}
		st.Close()
	}
	// Every committer must be gone. Allow the runtime a moment to
	// retire exiting goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTransientBatchFailureDoesNotDegrade: a transient fault that
// exhausts the writer's retries fails only the batch that hit it —
// the callers see the transient error, the server stays healthy, and
// a resubmission lands.
func TestTransientBatchFailureDoesNotDegrade(t *testing.T) {
	fl := fault.NewFlaky(53, fault.FlakyConfig{TransientWriteRate: 1, After: 2, MaxFaults: 1})
	st := newFaultyStore(t, fl, 0)
	defer st.Close()
	// No retry budget anywhere: the transient error surfaces.
	s, err := New(st, Options{MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	recs := makeRecords(t, 3, 53)
	err = s.Insert(recs[0])
	if err == nil {
		t.Fatal("insert succeeded through the injected fault")
	}
	if !retry.IsTransient(err) {
		t.Fatalf("transient marker lost: %v", err)
	}
	if s.State() != StateHealthy {
		t.Fatalf("transient failure tripped the breaker: %v", s.State())
	}
	if err := s.Insert(recs[0]); err != nil {
		t.Fatalf("resubmission: %v", err)
	}
	if st.Len() != 1 {
		t.Fatalf("store holds %d records, want 1", st.Len())
	}
}

// TestCommitRetryAbsorbsTransient: with a committer-side retry
// budget, the same schedule is absorbed invisibly — the caller never
// sees the fault, and the retry counter records the absorption.
func TestCommitRetryAbsorbsTransient(t *testing.T) {
	fl := fault.NewFlaky(53, fault.FlakyConfig{TransientWriteRate: 1, After: 2, MaxFaults: 1})
	st := newFaultyStore(t, fl, 0)
	defer st.Close()
	s, err := New(st, Options{MaxBatch: 1, Retry: retry.Policy{Attempts: 3}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	recs := makeRecords(t, 3, 53)
	for _, r := range recs {
		if err := s.Insert(r); err != nil {
			t.Fatalf("insert under absorbed fault: %v", err)
		}
	}
	if got := s.Stats().Retries; got == 0 {
		t.Fatal("no retry recorded despite an injected transient fault")
	}
	if st.Len() != len(recs) {
		t.Fatalf("store holds %d records, want %d", st.Len(), len(recs))
	}
}

// TestServerScrubRepairs: the background scrubber must detect
// injected bit rot in a live checkpoint page between batches,
// repair it from the live tree, and leave a reopenable image.
func TestServerScrubRepairs(t *testing.T) {
	st := newFaultyStore(t, nil, 8)
	s, err := New(st, Options{MaxBatch: 1, ScrubEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	recs := makeRecords(t, 40, 59)
	for _, r := range recs[:20] {
		if err := s.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	pages := st.SnapshotPages()
	if len(pages) == 0 {
		t.Fatal("no checkpoint pages after 20 inserts with CheckpointEvery=8")
	}
	if err := st.FlipBit(pages[0], 9); err != nil {
		t.Fatal(err)
	}
	// The next commits give the scrubber its turn.
	for _, r := range recs[20:] {
		if err := s.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	stats := s.Stats()
	if stats.ScrubScans == 0 || stats.ScrubCorrupt == 0 || stats.ScrubRepaired == 0 {
		t.Fatalf("scrub counters %+v: rot not detected/repaired", stats)
	}
	if s.State() != StateHealthy {
		t.Fatalf("state %v after scrub repair", s.State())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	before := st.Len()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// The repaired image must recover on a clean reopen.
	st2, err := wal.Open(wal.Options{
		Dir:  st.Options().Dir,
		Tree: rplustree.Config{Schema: dataset.LandsEndSchema(), BaseK: testK},
	})
	if err != nil {
		t.Fatalf("reopen after scrub repair: %v", err)
	}
	defer st2.Close()
	if st2.Len() != before {
		t.Fatalf("reopened store holds %d records, want %d", st2.Len(), before)
	}
}

// TestErrorTaxonomy pins the sentinel identities: every rejection
// class is distinguishable with errors.Is and no sentinel matches
// another.
func TestErrorTaxonomy(t *testing.T) {
	sentinels := []error{ErrOverloaded, ErrDeadlineExceeded, ErrDegraded, ErrRecovering, ErrClosed}
	for i, a := range sentinels {
		for j, b := range sentinels {
			if (i == j) != errors.Is(a, b) {
				t.Fatalf("sentinel identity broken: Is(%v, %v) = %v", a, b, i == j)
			}
		}
	}
	// ErrClosed is what a closed server actually returns.
	st := newFaultyStore(t, nil, 0)
	defer st.Close()
	s, err := New(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(makeRecords(t, 1, 61)[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("insert after close: %v, want ErrClosed", err)
	}
	if err := s.Recover(); !errors.Is(err, ErrClosed) {
		t.Fatalf("recover after close: %v, want ErrClosed", err)
	}
}
