package serve

import (
	"fmt"
	"sync"
	"testing"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/dataset"
	"spatialanon/internal/detrng"
	"spatialanon/internal/rplustree"
	"spatialanon/internal/verify"
	"spatialanon/internal/wal"
)

const testK = 4

func newStore(t testing.TB, dir string) *wal.Store {
	t.Helper()
	st, err := wal.Create(wal.Options{
		Dir:    dir,
		Tree:   rplustree.Config{Schema: dataset.LandsEndSchema(), BaseK: testK},
		NoSync: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func makeRecords(t testing.TB, n int, seed int64) []attr.Record {
	t.Helper()
	rng := detrng.New(seed)
	dims := dataset.LandsEndSchema().Dims()
	recs := make([]attr.Record, n)
	for i := range recs {
		qi := make([]float64, dims)
		for d := range qi {
			qi[d] = rng.Float64() * 100
		}
		recs[i] = attr.Record{ID: int64(i + 1), QI: qi, Sensitive: fmt.Sprintf("s%d", i)}
	}
	return recs
}

// TestGroupCommitCoalesces: many concurrent writers must be served
// with fewer WAL commits than operations, and every write must land.
// This store runs with REAL fsyncs: coalescing emerges from commits
// being slower than arrivals, which NoSync would erase.
func TestGroupCommitCoalesces(t *testing.T) {
	st, err := wal.Create(wal.Options{
		Dir:  t.TempDir(),
		Tree: rplustree.Config{Schema: dataset.LandsEndSchema(), BaseK: testK},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s, err := New(st, Options{MaxBatch: 32})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 25
	recs := makeRecords(t, writers*perWriter, 1)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := s.Insert(recs[w*perWriter+i]); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	stats := s.Stats()
	if stats.Ops != writers*perWriter {
		t.Fatalf("acknowledged %d ops, want %d", stats.Ops, writers*perWriter)
	}
	if stats.Batches >= stats.Ops {
		t.Errorf("%d batches for %d ops: group commit never coalesced", stats.Batches, stats.Ops)
	}
	if st.Len() != writers*perWriter {
		t.Fatalf("store holds %d records, want %d", st.Len(), writers*perWriter)
	}
	// The final view reflects everything.
	v := s.View()
	if v.Len() != writers*perWriter || v.Seq() != uint64(writers*perWriter) {
		t.Fatalf("final view len=%d seq=%d", v.Len(), v.Seq())
	}
}

// TestConcurrentReadersDuringMutation is the race-detector workhorse:
// readers hammer releases, counts and evaluation on whatever epoch is
// current while writers churn the tree. Every view a reader obtains
// must be internally consistent (its own len/seq/release agree) no
// matter what the writers are doing.
func TestConcurrentReadersDuringMutation(t *testing.T) {
	st := newStore(t, t.TempDir())
	defer st.Close()
	s, err := New(st, Options{MaxBatch: 16})
	if err != nil {
		t.Fatal(err)
	}
	seedRecs := makeRecords(t, 200, 2)
	for _, r := range seedRecs[:50] {
		if err := s.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 50 + w; i < len(seedRecs); i += 2 {
				if err := s.Insert(seedRecs[i]); err != nil {
					t.Errorf("writer: %v", err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := s.View()
				base, err := v.Base()
				if err != nil {
					t.Errorf("epoch %d: %v", v.Epoch(), err)
					return
				}
				n := 0
				for _, p := range base {
					n += len(p.Records)
					if len(p.Records) < testK {
						t.Errorf("epoch %d: partition below k", v.Epoch())
						return
					}
				}
				if n != v.Len() {
					t.Errorf("epoch %d: release holds %d records, view says %d", v.Epoch(), n, v.Len())
					return
				}
				if _, err := v.Release(2 * testK); err != nil {
					t.Errorf("epoch %d release(2k): %v", v.Epoch(), err)
					return
				}
				if _, err := v.Count(attr.Box{{Lo: 0, Hi: 50}, {Lo: 0, Hi: 50}, {Lo: 0, Hi: 100}, {Lo: 0, Hi: 100}, {Lo: 0, Hi: 100}, {Lo: 0, Hi: 100}, {Lo: 0, Hi: 100}, {Lo: 0, Hi: 100}}); err != nil {
					t.Errorf("count: %v", err)
					return
				}
			}
		}()
	}
	// Stop readers once writers finish.
	go func() {
		defer close(stop)
		// Writers signal completion through wg; poll the op counter
		// instead of sharing another channel.
		for s.Stats().Ops < int64(len(seedRecs)) {
			if s.Err() != nil {
				return
			}
		}
	}()
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotIsolation: a reader holding an old epoch keeps its
// exact picture while the store moves on.
func TestSnapshotIsolation(t *testing.T) {
	st := newStore(t, t.TempDir())
	defer st.Close()
	s, err := New(st, Options{MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	recs := makeRecords(t, 100, 3)
	for _, r := range recs[:40] {
		if err := s.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	old := s.View()
	oldBase, err := old.Base()
	if err != nil {
		t.Fatal(err)
	}
	oldLen, oldEpoch := old.Len(), old.Epoch()
	oldCount := 0
	for _, p := range oldBase {
		oldCount += len(p.Records)
	}
	for _, r := range recs[40:] {
		if err := s.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	// The held view is frozen...
	if old.Len() != oldLen || old.Epoch() != oldEpoch {
		t.Fatal("held view changed under the reader")
	}
	again, err := old.Base()
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, p := range again {
		n += len(p.Records)
	}
	if n != oldCount {
		t.Fatalf("held view's release changed: %d records, was %d", n, oldCount)
	}
	// ...while the head moved past it.
	cur := s.View()
	if cur.Epoch() <= oldEpoch || cur.Len() != 100 {
		t.Fatalf("head epoch=%d len=%d, want epoch>%d len=100", cur.Epoch(), cur.Len(), oldEpoch)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReadYourWrites: with PublishEvery=1, a view loaded after an
// acknowledged insert reflects it.
func TestReadYourWrites(t *testing.T) {
	st := newStore(t, t.TempDir())
	defer st.Close()
	s, err := New(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs := makeRecords(t, 30, 4)
	for i, r := range recs {
		if err := s.Insert(r); err != nil {
			t.Fatal(err)
		}
		if got := s.View().Seq(); got < uint64(i+1) {
			t.Fatalf("after ack of op %d the view is at seq %d", i+1, got)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReleaseCache: repeated releases at one granularity within an
// epoch are the same memoized slice; an epoch advance invalidates.
func TestReleaseCache(t *testing.T) {
	st := newStore(t, t.TempDir())
	defer st.Close()
	s, err := New(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs := makeRecords(t, 60, 5)
	for _, r := range recs[:40] {
		if err := s.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	v := s.View()
	a, err := v.Release(2 * testK)
	if err != nil {
		t.Fatal(err)
	}
	b, err := v.Release(2 * testK)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || &a[0] != &b[0] {
		t.Fatal("second release at the same granularity was recomputed, not served from cache")
	}
	// Invalid granularity is remembered too, not recomputed into a panic.
	if _, err := v.Release(testK - 1); err == nil {
		t.Fatal("granularity below base k accepted")
	}
	// Epoch advance: a fresh view computes a fresh release over more
	// records.
	for _, r := range recs[40:] {
		if err := s.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	v2 := s.View()
	if v2.Epoch() == v.Epoch() {
		t.Fatal("epoch did not advance")
	}
	c, err := v2.Release(2 * testK)
	if err != nil {
		t.Fatal(err)
	}
	nc := 0
	for _, p := range c {
		nc += len(p.Records)
	}
	if nc != 60 {
		t.Fatalf("fresh epoch's release covers %d records, want 60", nc)
	}
	// The old epoch's cache still answers with the OLD state.
	a2, _ := v.Release(2 * testK)
	if &a2[0] != &a[0] {
		t.Fatal("old epoch's cache was invalidated in place")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCacheInvalidationVsRelease races readers filling release caches
// against the committer publishing new epochs — the -race target for
// the cache path.
func TestCacheInvalidationVsRelease(t *testing.T) {
	st := newStore(t, t.TempDir())
	defer st.Close()
	s, err := New(st, Options{MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	recs := makeRecords(t, 160, 6)
	for _, r := range recs[:40] {
		if err := s.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, r := range recs[40:] {
			if err := s.Insert(r); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			gran := testK * (2 + g%3)
			for i := 0; i < 200; i++ {
				v := s.View()
				ps, err := v.Release(gran)
				if err != nil {
					t.Errorf("release(%d): %v", gran, err)
					return
				}
				if err := verify.Release(ps, anonmodel.KAnonymity{K: gran}); err != nil {
					t.Errorf("epoch %d release(%d) unsafe: %v", v.Epoch(), gran, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSubmitValidationIsPerCaller: a malformed op fails its own
// caller without failing the batch it would have shared or touching
// the store.
func TestSubmitValidationIsPerCaller(t *testing.T) {
	st := newStore(t, t.TempDir())
	defer st.Close()
	s, err := New(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(attr.Record{ID: 1, QI: []float64{1}}); err == nil {
		t.Fatal("wrong-dimensional record accepted")
	}
	if s.Err() != nil {
		t.Fatalf("bad op poisoned the server: %v", s.Err())
	}
	recs := makeRecords(t, testK, 7)
	for _, r := range recs {
		if err := s.Insert(r); err != nil {
			t.Fatalf("good op after bad one: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Len() != testK {
		t.Fatalf("store holds %d records, want %d", st.Len(), testK)
	}
}

// TestDeleteUpdateFound: found flags flow back through group commit.
func TestDeleteUpdateFound(t *testing.T) {
	st := newStore(t, t.TempDir())
	defer st.Close()
	s, err := New(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs := makeRecords(t, 10, 8)
	for _, r := range recs {
		if err := s.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if found, err := s.Delete(recs[0].ID, recs[0].QI); err != nil || !found {
		t.Fatalf("delete existing: found=%v err=%v", found, err)
	}
	if found, err := s.Delete(recs[0].ID, recs[0].QI); err != nil || found {
		t.Fatalf("delete absent: found=%v err=%v", found, err)
	}
	moved := recs[1]
	moved.QI = append([]float64(nil), recs[1].QI...)
	moved.QI[0] += 1
	if found, err := s.Update(recs[1].ID, recs[1].QI, moved); err != nil || !found {
		t.Fatalf("update existing: found=%v err=%v", found, err)
	}
	if found, err := s.Update(999, recs[2].QI, recs[2]); err != nil || found {
		t.Fatalf("update absent: found=%v err=%v", found, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseVsSubmit races Close against submitters: every submitter
// either gets a durable ack or a closed error — never a hang, never a
// panic.
func TestCloseVsSubmit(t *testing.T) {
	st := newStore(t, t.TempDir())
	defer st.Close()
	s, err := New(st, Options{MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	recs := makeRecords(t, 64, 9)
	var wg sync.WaitGroup
	var acked, closed int
	var mu sync.Mutex
	for i := range recs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := s.Insert(recs[i])
			mu.Lock()
			defer mu.Unlock()
			if err == nil {
				acked++
			} else {
				closed++
			}
		}(i)
	}
	s.Close()
	wg.Wait()
	if acked+closed != len(recs) {
		t.Fatalf("acked=%d closed=%d, want total %d", acked, closed, len(recs))
	}
	if int64(acked) != s.Stats().Ops {
		t.Fatalf("%d acks but %d committed ops", acked, s.Stats().Ops)
	}
	if st.Len() != acked {
		t.Fatalf("store holds %d records, %d were acknowledged", st.Len(), acked)
	}
	// Closing twice is fine; submitting after close errors cleanly.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(recs[0]); err == nil {
		t.Fatal("insert accepted after Close")
	}
}

// TestBelowKViews: views below k records refuse to release, with the
// refusal visible on every read path.
func TestBelowKViews(t *testing.T) {
	st := newStore(t, t.TempDir())
	defer st.Close()
	s, err := New(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	recs := makeRecords(t, testK, 10)
	for _, r := range recs[:testK-1] {
		if err := s.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	v := s.View()
	if _, err := v.Base(); err == nil {
		t.Fatal("base release below k")
	}
	if _, err := v.Release(0); err == nil {
		t.Fatal("release below k")
	}
	if _, err := v.Count(attr.Box{}); err == nil {
		t.Fatal("count below k")
	}
	// One more record crosses the threshold.
	if err := s.Insert(recs[testK-1]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.View().Base(); err != nil {
		t.Fatalf("base at k: %v", err)
	}
}
