package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spatialanon/internal/dataset"
	"spatialanon/internal/fault"
	"spatialanon/internal/pager"
	"spatialanon/internal/rplustree"
	"spatialanon/internal/wal"
)

// errBrake is the failure a braked page access reports; every Recover
// caller in the storm must see it through the wrap chain.
var errBrake = errors.New("recovery brake: device unreachable")

// brake is a pager fault policy that, once armed, parks the first page
// access of the recovery reopen until released and then fails it — a
// freeze-frame of a recovery attempt in flight, long enough to pile
// concurrent Recover callers onto the committer.
type brake struct {
	armed   atomic.Bool
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func newBrake() *brake {
	return &brake{entered: make(chan struct{}), release: make(chan struct{})}
}

func (b *brake) gate() error {
	if !b.armed.Load() {
		return nil
	}
	b.once.Do(func() { close(b.entered) })
	<-b.release
	return errBrake
}

func (b *brake) BeforeRead(pager.PageID) error          { return b.gate() }
func (b *brake) BeforeWrite(pager.PageID) error         { return b.gate() }
func (b *brake) CorruptWrite(pager.PageID, []byte) bool { return false }

// TestRecoverSingleFlight: N concurrent Recover callers against a
// still-failing store must coalesce into ONE recovery attempt whose
// verdict they all share — not N sequential recovery storms each
// re-running the store rebuild and re-draining the queue. The brake
// holds the one attempt's reopen mid-page-access while the other
// callers pile up, then fails it; every caller must report the braked
// device error, the attempt counter must show coalescing, and a
// release of the brake must let a single follow-up Recover succeed
// with nothing acknowledged lost.
func TestRecoverSingleFlight(t *testing.T) {
	fl := fault.NewFlaky(53, fault.FlakyConfig{PermanentWriteRate: 1, After: 40, MaxFaults: 1})
	b := newBrake()
	st, err := wal.Create(wal.Options{
		Dir:             t.TempDir(),
		Tree:            rplustree.Config{Schema: dataset.LandsEndSchema(), BaseK: testK},
		NoSync:          true,
		CheckpointEvery: 4, // guarantee checkpoint pages for the reopen to read
		AppendFault:     fl,
		PagerFault:      b,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s, err := New(st, Options{MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Poison the store mid-stream.
	recs := makeRecords(t, 60, 53)
	acked := 0
	var degradedErr error
	for _, r := range recs {
		if err := s.Insert(r); err != nil {
			degradedErr = err
			break
		}
		acked++
	}
	if degradedErr == nil {
		t.Fatal("fault schedule never fired")
	}
	if s.State() != StateDegraded {
		t.Fatalf("state %v after poison, want degraded", s.State())
	}

	// Storm: N callers race into recovery while the one real attempt is
	// frozen inside the reopen.
	b.armed.Store(true)
	const callers = 8
	var wg sync.WaitGroup
	results := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = s.Recover()
		}(i)
	}
	<-b.entered
	// The committer is wedged inside st.Recover; give the straggler
	// callers time to park on the unbuffered recover channel so the
	// attempt in flight adopts them.
	time.Sleep(50 * time.Millisecond)
	close(b.release)
	wg.Wait()

	for i, err := range results {
		if err == nil {
			t.Fatalf("caller %d: recovery reported success with the device braked", i)
		}
		if !errors.Is(err, errBrake) {
			t.Fatalf("caller %d: %v, want the braked device error", i, err)
		}
	}
	// Single-flight is the point: one attempt for the whole storm. A
	// straggler that parked after the verdict may legitimately start a
	// second, but never one attempt per caller.
	if got := s.Stats().RecoverAttempts; got < 1 || got > 2 {
		t.Fatalf("RecoverAttempts %d for %d concurrent callers, want 1 (2 at most)", got, callers)
	}
	if s.State() != StateDegraded {
		t.Fatalf("state %v after failed recovery, want degraded", s.State())
	}
	if got := s.Stats().Recoveries; got != 0 {
		t.Fatalf("Recoveries %d after failed recovery, want 0", got)
	}

	// Brake off: recovery lands, nothing acknowledged is lost.
	b.armed.Store(false)
	if err := s.Recover(); err != nil {
		t.Fatalf("recover after brake release: %v", err)
	}
	if s.State() != StateHealthy {
		t.Fatalf("state %v after recover, want healthy", s.State())
	}
	if got := s.Stats().Recoveries; got != 1 {
		t.Fatalf("Recoveries %d, want 1", got)
	}
	if int(s.View().Len()) != acked {
		t.Fatalf("recovered view has %d records, %d were acked", s.View().Len(), acked)
	}
	if err := s.Insert(recs[len(recs)-1]); err != nil {
		t.Fatalf("insert after recover: %v", err)
	}
}
