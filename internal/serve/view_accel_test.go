package serve

import (
	"math"
	"testing"

	"spatialanon/internal/query"
	"spatialanon/internal/wal"
)

func accelServer(t *testing.T, n int) (*Server, *View) {
	t.Helper()
	st := newStore(t, t.TempDir())
	t.Cleanup(func() { st.Close() })
	recs := makeRecords(t, n, 5)
	ops := make([]wal.Op, len(recs))
	for i, r := range recs {
		ops[i] = wal.Op{Type: wal.TypeInsert, Rec: r}
	}
	if _, err := st.ApplyBatch(ops); err != nil {
		t.Fatal(err)
	}
	s, err := New(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, s.View()
}

// TestViewAccelMatchesLinear: the view's accelerated sessions and the
// pooled Count path answer exactly what the linear scans over the same
// release answer — estimates bit-for-bit.
func TestViewAccelMatchesLinear(t *testing.T) {
	_, v := accelServer(t, 3000)
	ps, err := v.Release(0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := v.Counter(0)
	if err != nil {
		t.Fatal(err)
	}
	e, err := v.Estimator(0)
	if err != nil {
		t.Fatal(err)
	}
	queries := query.FullRangeWorkload(v.Records(), 60, 6)
	points := query.PointWorkload(v.Records(), 60, 7)
	for _, p := range points {
		if got, want := c.Point(p), query.CountAnonymizedPoint(ps, p); got != want {
			t.Fatalf("Point(%v) = %d, want %d", p, got, want)
		}
	}
	for _, q := range queries {
		if got, want := c.Range(q), query.CountAnonymized(ps, q); got != want {
			t.Fatalf("Range = %d, want %d", got, want)
		}
		want := query.EstimateUniform(ps, q)
		if got := e.Estimate(q); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("Estimate = %v, want %v", got, want)
		}
		got, err := v.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("Count = %v, want %v", got, want)
		}
	}
}

// TestAccelMemoization: one accelerator per (epoch, granularity) —
// repeated asks share the build, and the base granularity is one entry
// whether asked for as 0 or as the store's base k.
func TestAccelMemoization(t *testing.T) {
	_, v := accelServer(t, 500)
	a1, err := v.Accel(0)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := v.Accel(0)
	if err != nil {
		t.Fatal(err)
	}
	a3, err := v.Accel(v.BaseK())
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 || a1 != a3 {
		t.Fatal("Accel must memoize one index per (epoch, granularity)")
	}
	coarse, err := v.Accel(v.BaseK() * 4)
	if err != nil {
		t.Fatal(err)
	}
	if coarse == a1 {
		t.Fatal("coarser granularity must get its own index")
	}
	if coarse.Len() > a1.Len() {
		t.Fatalf("coarse release has %d partitions, base %d", coarse.Len(), a1.Len())
	}
	if _, err := v.Accel(v.BaseK() - 1); err == nil {
		t.Fatal("granularity below base k must be rejected")
	}
}

// TestViewSessionZeroAlloc pins the serving read path's warm
// zero-alloc contract end to end: sessions minted by a View allocate
// nothing per query once warm.
func TestViewSessionZeroAlloc(t *testing.T) {
	_, v := accelServer(t, 3000)
	c, err := v.Counter(0)
	if err != nil {
		t.Fatal(err)
	}
	e, err := v.Estimator(0)
	if err != nil {
		t.Fatal(err)
	}
	queries := query.FullRangeWorkload(v.Records(), 32, 8)
	point := v.Records()[0].QI
	c.Point(point)
	c.Range(queries[0])
	e.Estimate(queries[0])
	i := 0
	if a := testing.AllocsPerRun(200, func() { c.Point(point) }); a != 0 {
		t.Errorf("View Counter.Point: %v allocs/op, want 0", a)
	}
	if a := testing.AllocsPerRun(200, func() { c.Range(queries[i%len(queries)]); i++ }); a != 0 {
		t.Errorf("View Counter.Range: %v allocs/op, want 0", a)
	}
	if a := testing.AllocsPerRun(200, func() { e.Estimate(queries[i%len(queries)]); i++ }); a != 0 {
		t.Errorf("View Estimator.Estimate: %v allocs/op, want 0", a)
	}
	// The pooled convenience path should also settle to zero steady-state
	// allocations once the pool is warm. Not assertable under -race:
	// the race runtime drops pooled items at random, forcing re-creation.
	if !raceEnabled {
		q := queries[0]
		if _, err := v.Count(q); err != nil {
			t.Fatal(err)
		}
		if a := testing.AllocsPerRun(200, func() { v.Count(queries[i%len(queries)]); i++ }); a > 1 {
			t.Errorf("View.Count: %v allocs/op, want <= 1 (pool bookkeeping)", a)
		}
	}
}
