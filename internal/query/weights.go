package query

import (
	"spatialanon/internal/attr"
)

// WeightsFromWorkload derives per-attribute importance weights from an
// anticipated query workload, operationalizing Section 2.4's
// suggestion: "taking a cue from [33] that proposes a weighted
// certainty penalty metric, a spatial index can also incorporate query
// workloads into its splitting policies by assigning higher weights to
// the 'more important' quasi-identifier attributes".
//
// An attribute matters to a query exactly to the degree the query
// constrains it: a predicate covering a small fraction of the
// attribute's domain is highly selective on that attribute, a predicate
// spanning the whole domain says nothing. Each query therefore
// contributes (1 - coveredFraction) to each attribute's raw weight.
// Results are normalized so the weights average 1, making them drop-in
// values for rplustree.WeightedPolicy or attr.Attribute.Weight without
// rescaling the certainty metric.
//
// An empty workload (or a degenerate domain) yields all-ones.
func WeightsFromWorkload(queries []attr.Box, domain attr.Box) []float64 {
	dims := len(domain)
	weights := make([]float64, dims)
	for i := range weights {
		weights[i] = 1
	}
	if len(queries) == 0 || dims == 0 {
		return weights
	}
	raw := make([]float64, dims)
	for _, q := range queries {
		if len(q) != dims {
			continue
		}
		for d := 0; d < dims; d++ {
			dw := domain[d].Width()
			if dw <= 0 {
				continue
			}
			covered := q[d].Intersect(domain[d]).Width() / dw
			if covered < 0 {
				covered = 0
			}
			if covered > 1 {
				covered = 1
			}
			raw[d] += 1 - covered
		}
	}
	total := 0.0
	for _, r := range raw {
		total += r
	}
	if total == 0 {
		return weights // workload constrains nothing
	}
	mean := total / float64(dims)
	for d := range weights {
		weights[d] = raw[d] / mean
	}
	return weights
}
