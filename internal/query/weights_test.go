package query

import (
	"math"
	"testing"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/core"
	"spatialanon/internal/dataset"
	"spatialanon/internal/rplustree"
)

func TestWeightsFromWorkloadBasics(t *testing.T) {
	domain := attr.Box{{Lo: 0, Hi: 100}, {Lo: 0, Hi: 100}}
	// Queries tightly constrain attribute 0, ignore attribute 1.
	queries := []attr.Box{
		{{Lo: 10, Hi: 12}, {Lo: 0, Hi: 100}},
		{{Lo: 40, Hi: 45}, {Lo: 0, Hi: 100}},
	}
	w := WeightsFromWorkload(queries, domain)
	if len(w) != 2 {
		t.Fatalf("weights %v", w)
	}
	if w[0] <= w[1] {
		t.Fatalf("constrained attribute not heavier: %v", w)
	}
	if w[1] != 0 {
		t.Fatalf("unconstrained attribute weight = %v, want 0", w[1])
	}
	// Normalization: mean 1.
	if math.Abs((w[0]+w[1])/2-1) > 1e-12 {
		t.Fatalf("weights not mean-1: %v", w)
	}
}

func TestWeightsFromWorkloadDegenerate(t *testing.T) {
	domain := attr.Box{{Lo: 0, Hi: 100}}
	w := WeightsFromWorkload(nil, domain)
	if len(w) != 1 || w[0] != 1 {
		t.Fatalf("empty workload weights = %v", w)
	}
	// Whole-domain queries constrain nothing: all ones.
	w = WeightsFromWorkload([]attr.Box{domain.Clone()}, domain)
	if w[0] != 1 {
		t.Fatalf("unconstraining workload weights = %v", w)
	}
	// Degenerate domain axis contributes nothing (and no NaNs).
	d2 := attr.Box{{Lo: 0, Hi: 100}, {Lo: 5, Hi: 5}}
	w = WeightsFromWorkload([]attr.Box{{{Lo: 0, Hi: 1}, {Lo: 5, Hi: 5}}}, d2)
	for _, v := range w {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("degenerate domain weights = %v", w)
		}
	}
	// Mismatched query dimensionality is skipped, not fatal.
	w = WeightsFromWorkload([]attr.Box{{{Lo: 0, Hi: 1}}}, d2)
	if len(w) != 2 {
		t.Fatalf("weights %v", w)
	}
}

func TestDerivedWeightsImproveWorkloadAccuracy(t *testing.T) {
	// End-to-end Section 2.4: derive weights from a zipcode-heavy
	// workload, feed them to the weighted split policy, and verify the
	// resulting anonymization answers that workload more accurately
	// than the unweighted tree.
	schema := dataset.LandsEndSchema()
	zip := schema.AttrIndex("zipcode")
	recs := dataset.GenerateLandsEnd(4000, 88)
	domain := attr.DomainOf(schema.Dims(), recs)
	workload := SingleAttrWorkload(recs, zip, 200, 9, domain)

	weights := WeightsFromWorkload(workload, domain)
	if weights[zip] <= 1 {
		t.Fatalf("zipcode weight %v not elevated: %v", weights[zip], weights)
	}

	run := func(split rplustree.SplitPolicy) float64 {
		rt, err := core.NewRTreeAnonymizer(core.RTreeConfig{
			Schema: schema, BaseK: 10, Split: split,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Load(recs); err != nil {
			t.Fatal(err)
		}
		ps, err := rt.Partitions(0)
		if err != nil {
			t.Fatal(err)
		}
		if err := anonmodel.CheckAnonymity(ps, anonmodel.KAnonymity{K: 10}); err != nil {
			t.Fatal(err)
		}
		results, err := Evaluate(ps, recs, workload)
		if err != nil {
			t.Fatal(err)
		}
		return MeanError(results)
	}
	weighted := run(rplustree.WeightedPolicy{Weights: weights})
	unweighted := run(nil)
	if weighted >= unweighted {
		t.Fatalf("derived weights did not help: weighted %v vs unweighted %v", weighted, unweighted)
	}
}
