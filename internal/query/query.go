// Package query implements the query-accuracy experiments of Sections
// 2.3 and 5.4: random multidimensional COUNT range workloads, their
// evaluation against original and anonymized tables, the paper's
// normalized error measure, and selectivity bucketing.
//
// Matching semantics follow the paper exactly: on the original table a
// record matches when its point lies in the query region; on an
// anonymized table a record matches when its generalized box has a
// non-null intersection with the query region on every attribute. The
// uniform-assumption estimator of Section 2.3 is also provided.
package query

import (
	"fmt"
	"math"
	"sort"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/detrng"
	"spatialanon/internal/par"
)

// FullRangeWorkload generates n queries of the Section 5.4 form: for
// each query two records are drawn at random and each attribute's range
// runs from the smaller to the larger of their values. Such a query
// always contains both seed records, so its original count is >= 1.
func FullRangeWorkload(recs []attr.Record, n int, seed int64) []attr.Box {
	rng := detrng.New(seed)
	out := make([]attr.Box, n)
	if n == 0 || len(recs) == 0 {
		return out
	}
	// One flat interval arena for the whole workload instead of one
	// box allocation per query: generation cost is two allocations
	// regardless of n, and the boxes pack contiguously.
	dims := len(recs[0].QI)
	arena := make([]attr.Interval, n*dims)
	for i := range out {
		r1 := recs[rng.Intn(len(recs))]
		r2 := recs[rng.Intn(len(recs))]
		q := attr.Box(arena[i*dims : (i+1)*dims : (i+1)*dims])
		for d, v := range r1.QI {
			q[d] = attr.Interval{Lo: v, Hi: v}
		}
		q.Include(r2.QI)
		out[i] = q
	}
	return out
}

// PointWorkload draws n point queries from the records themselves (so
// every point has at least one true match), for the read-path load
// profiles. The returned points alias the records' QI slices — they
// are read-only query inputs, not copies.
func PointWorkload(recs []attr.Record, n int, seed int64) [][]float64 {
	rng := detrng.New(seed)
	out := make([][]float64, n)
	if len(recs) == 0 {
		return out[:0]
	}
	for i := range out {
		out[i] = recs[rng.Intn(len(recs))].QI
	}
	return out
}

// SingleAttrWorkload generates n queries bounding only the given
// attribute (the Zipcode workload of Figure 12(c)): the bounded range
// comes from two random records, every other attribute spans the whole
// domain.
func SingleAttrWorkload(recs []attr.Record, axis int, n int, seed int64, domain attr.Box) []attr.Box {
	rng := detrng.New(seed)
	out := make([]attr.Box, n)
	if n == 0 || len(recs) == 0 {
		return out
	}
	dims := len(domain)
	arena := make([]attr.Interval, n*dims)
	for i := range out {
		v1 := recs[rng.Intn(len(recs))].QI[axis]
		v2 := recs[rng.Intn(len(recs))].QI[axis]
		if v1 > v2 {
			v1, v2 = v2, v1
		}
		q := attr.Box(arena[i*dims : (i+1)*dims : (i+1)*dims])
		copy(q, domain)
		q[axis] = attr.Interval{Lo: v1, Hi: v2}
		out[i] = q
	}
	return out
}

// CountOriginal evaluates a COUNT query on the original table.
func CountOriginal(recs []attr.Record, q attr.Box) int {
	n := 0
	for _, r := range recs {
		if q.Contains(r.QI) {
			n++
		}
	}
	return n
}

// CountAnonymized evaluates a COUNT query on an anonymized table: every
// record of every partition whose box intersects the query matches
// (the paper's Section 5.4 semantics — "a COUNT query on a partition
// returns the cardinality of that partition if the query region
// intersects with the partition").
func CountAnonymized(ps []anonmodel.Partition, q attr.Box) int {
	n := 0
	for _, p := range ps {
		if p.Box.Intersects(q) {
			n += p.Size()
		}
	}
	return n
}

// EstimateUniform evaluates a COUNT query under the Section 2.3
// uniform-distribution assumption: each intersecting partition
// contributes |P| x cells(P∩Q)/cells(P), computed on the integer cell
// lattice (consistent with the KL-divergence metric). The
// intersection is folded per axis instead of materialized, so the
// linear fallback allocates nothing — same float rounding sequence as
// the boxed form (and as routing.Index.Estimate, which is pinned
// bit-identical to this function).
func EstimateUniform(ps []anonmodel.Partition, q attr.Box) float64 {
	est := 0.0
	for _, p := range ps {
		if len(p.Box) == 0 {
			// A zero-dimensional box is empty (Box.IsEmpty), so its
			// intersection contributes nothing.
			continue
		}
		interCells := 1.0
		empty := false
		for a := range p.Box {
			ilo := math.Max(p.Box[a].Lo, q[a].Lo)
			ihi := math.Min(p.Box[a].Hi, q[a].Hi)
			if ilo > ihi {
				empty = true
				break
			}
			w := math.Round(ihi - ilo)
			if w < 0 {
				w = 0
			}
			interCells *= w + 1
		}
		if empty {
			continue
		}
		est += float64(p.Size()) * interCells / cells(p.Box)
	}
	return est
}

func cells(b attr.Box) float64 {
	c := 1.0
	for _, iv := range b {
		w := math.Round(iv.Hi - iv.Lo)
		if w < 0 {
			w = 0
		}
		c *= w + 1
	}
	return c
}

// Result is one query's evaluation.
type Result struct {
	Query      attr.Box
	Original   int
	Anonymized int
	// Err is the paper's normalized error
	// (count(anonymized)-count(original))/count(original).
	Err float64
}

// Evaluate runs every query against both tables. Queries with zero
// original count (impossible for the generators in this package, which
// seed queries from real records) are rejected to keep the normalized
// error well-defined.
func Evaluate(ps []anonmodel.Partition, recs []attr.Record, queries []attr.Box) ([]Result, error) {
	return EvaluateP(ps, recs, queries, 1)
}

// EvaluateP is Evaluate with a parallelism knob (0 = all cores, 1 =
// serial). Queries evaluate independently — each writes only its own
// result slot and the per-query arithmetic involves no cross-query
// accumulation — so results are identical for every worker count, and
// on failure the reported error is the lowest-indexed failing query,
// matching the serial scan.
func EvaluateP(ps []anonmodel.Partition, recs []attr.Record, queries []attr.Box, workers int) ([]Result, error) {
	out := make([]Result, len(queries))
	err := par.FirstErr(workers, len(queries), func(i int) error {
		q := queries[i]
		orig := CountOriginal(recs, q)
		if orig == 0 {
			return fmt.Errorf("query: query %d has zero original count; normalized error undefined", i)
		}
		anon := CountAnonymized(ps, q)
		out[i] = Result{
			Query:      q,
			Original:   orig,
			Anonymized: anon,
			Err:        float64(anon-orig) / float64(orig),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MeanError averages the normalized errors — the quantity on the y-axis
// of Figure 12.
func MeanError(results []Result) float64 {
	if len(results) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range results {
		sum += r.Err
	}
	return sum / float64(len(results))
}

// SelectivityBucket is the mean error of all queries whose original
// result cardinality falls in [Lo, Hi).
type SelectivityBucket struct {
	Lo, Hi  float64 // selectivity bounds as a fraction of the table
	Queries int
	Mean    float64
}

// BySelectivity groups results into buckets over selectivity =
// original/total, with the given ascending boundary fractions (e.g.
// 0.001, 0.01, 0.1 produces buckets [0,0.001), [0.001,0.01),
// [0.01,0.1), [0.1,1]). Empty buckets are retained with Queries == 0 so
// series line up across anonymizers — the Figure 12(b)/(d) x-axis.
// With total <= 0 no selectivity is defined, so every bucket comes
// back empty instead of dividing by zero.
func BySelectivity(results []Result, total int, bounds []float64) []SelectivityBucket {
	edges := append([]float64{0}, bounds...)
	edges = append(edges, 1.0000001) // inclusive top edge
	sort.Float64s(edges)
	out := make([]SelectivityBucket, len(edges)-1)
	sums := make([]float64, len(out))
	for i := range out {
		out[i] = SelectivityBucket{Lo: edges[i], Hi: edges[i+1]}
	}
	if total <= 0 {
		return out
	}
	for _, r := range results {
		sel := float64(r.Original) / float64(total)
		for i := range out {
			if sel >= out[i].Lo && sel < out[i].Hi {
				out[i].Queries++
				sums[i] += r.Err
				break
			}
		}
	}
	for i := range out {
		if out[i].Queries > 0 {
			out[i].Mean = sums[i] / float64(out[i].Queries)
		}
	}
	return out
}
