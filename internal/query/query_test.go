package query

import (
	"math"
	"testing"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/compact"
	"spatialanon/internal/dataset"
	"spatialanon/internal/mondrian"
)

func TestFullRangeWorkloadContainsSeeds(t *testing.T) {
	recs := dataset.GeneratePatients(200, 80)
	qs := FullRangeWorkload(recs, 100, 1)
	if len(qs) != 100 {
		t.Fatalf("%d queries", len(qs))
	}
	for i, q := range qs {
		if CountOriginal(recs, q) < 1 {
			t.Fatalf("query %d has empty original result", i)
		}
		if len(q) != 3 {
			t.Fatalf("query %d has %d dims", i, len(q))
		}
	}
	// Deterministic under seed.
	qs2 := FullRangeWorkload(recs, 100, 1)
	for i := range qs {
		if !qs[i].Equal(qs2[i]) {
			t.Fatal("workload not deterministic")
		}
	}
}

func TestSingleAttrWorkload(t *testing.T) {
	recs := dataset.GeneratePatients(200, 81)
	domain := attr.DomainOf(3, recs)
	qs := SingleAttrWorkload(recs, 2, 50, 2, domain)
	for _, q := range qs {
		if q[0] != domain[0] || q[1] != domain[1] {
			t.Fatal("unbounded attributes must span the domain")
		}
		if !domain[2].ContainsInterval(q[2]) {
			t.Fatal("bounded attribute escapes domain")
		}
		if CountOriginal(recs, q) < 1 {
			t.Fatal("empty original result")
		}
	}
}

func TestCountSemantics(t *testing.T) {
	// Anonymized counting follows the paper's example: a record
	// ([40-50],[53710-53720]) matches ((45<=age<=55) and
	// (53700<=zip<=53715)); ([30-35],[53700-53715]) does not.
	q := attr.Box{{Lo: 45, Hi: 55}, {Lo: 53700, Hi: 53715}}
	match := anonmodel.Partition{
		Box:     attr.Box{{Lo: 40, Hi: 50}, {Lo: 53710, Hi: 53720}},
		Records: make([]attr.Record, 3),
	}
	miss := anonmodel.Partition{
		Box:     attr.Box{{Lo: 30, Hi: 35}, {Lo: 53700, Hi: 53715}},
		Records: make([]attr.Record, 2),
	}
	if got := CountAnonymized([]anonmodel.Partition{match, miss}, q); got != 3 {
		t.Fatalf("CountAnonymized = %d, want 3", got)
	}
}

func TestEstimateUniform(t *testing.T) {
	// Section 2.3's worked example: partition of 10 tuples with age
	// [30-40], query [25-35] -> overlap [30-35]: 10 x 6/11 cells. (The
	// paper's 10 x 5/10 uses continuous widths; the cell version is the
	// discrete analogue.)
	p := anonmodel.Partition{
		Box:     attr.Box{{Lo: 30, Hi: 40}},
		Records: make([]attr.Record, 10),
	}
	q := attr.Box{{Lo: 25, Hi: 35}}
	got := EstimateUniform([]anonmodel.Partition{p}, q)
	want := 10.0 * 6.0 / 11.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("EstimateUniform = %v, want %v", got, want)
	}
	// Disjoint query contributes nothing.
	if EstimateUniform([]anonmodel.Partition{p}, attr.Box{{Lo: 50, Hi: 60}}) != 0 {
		t.Fatal("disjoint partition contributed")
	}
}

func TestEvaluateAndError(t *testing.T) {
	recs := dataset.GeneratePatients(600, 82)
	s := dataset.PatientsSchema()
	ps, err := mondrian.Anonymize(s, recs, mondrian.Options{Constraint: anonmodel.KAnonymity{K: 10}})
	if err != nil {
		t.Fatal(err)
	}
	qs := FullRangeWorkload(recs, 200, 3)
	results, err := Evaluate(ps, recs, qs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		// The anonymized count can never undercount: every original
		// match's partition intersects the query.
		if r.Anonymized < r.Original {
			t.Fatalf("anonymized count %d below original %d", r.Anonymized, r.Original)
		}
		if r.Err < 0 {
			t.Fatalf("negative error %v", r.Err)
		}
	}
	mean := MeanError(results)
	if mean < 0 {
		t.Fatalf("mean error %v", mean)
	}
	// Compaction must not increase the mean error (Figure 12(a)).
	cres, err := Evaluate(compact.Partitions(ps), recs, qs)
	if err != nil {
		t.Fatal(err)
	}
	if MeanError(cres) > mean+1e-9 {
		t.Fatalf("compaction increased error: %v -> %v", mean, MeanError(cres))
	}
	if MeanError(nil) != 0 {
		t.Fatal("MeanError of empty must be 0")
	}
}

func TestEvaluateRejectsEmptyOriginal(t *testing.T) {
	recs := dataset.GeneratePatients(50, 83)
	q := attr.Box{{Lo: -10, Hi: -5}, {Lo: 0, Hi: 1}, {Lo: 0, Hi: 1}}
	if _, err := Evaluate(nil, recs, []attr.Box{q}); err == nil {
		t.Fatal("zero-count query accepted")
	}
}

func TestBySelectivity(t *testing.T) {
	results := []Result{
		{Original: 1, Err: 1.0},   // sel 0.001
		{Original: 50, Err: 0.5},  // sel 0.05
		{Original: 900, Err: 0.1}, // sel 0.9
	}
	buckets := BySelectivity(results, 1000, []float64{0.01, 0.1})
	if len(buckets) != 3 {
		t.Fatalf("%d buckets", len(buckets))
	}
	if buckets[0].Queries != 1 || buckets[0].Mean != 1.0 {
		t.Fatalf("bucket 0: %+v", buckets[0])
	}
	if buckets[1].Queries != 1 || buckets[1].Mean != 0.5 {
		t.Fatalf("bucket 1: %+v", buckets[1])
	}
	if buckets[2].Queries != 1 || buckets[2].Mean != 0.1 {
		t.Fatalf("bucket 2: %+v", buckets[2])
	}
	// Selectivity exactly 1.0 lands in the last bucket.
	full := []Result{{Original: 1000, Err: 0.2}}
	b2 := BySelectivity(full, 1000, []float64{0.5})
	if b2[1].Queries != 1 {
		t.Fatalf("full-table query lost: %+v", b2)
	}
	// Empty buckets retained.
	b3 := BySelectivity(nil, 1000, []float64{0.5})
	if len(b3) != 2 || b3[0].Queries != 0 {
		t.Fatalf("empty buckets: %+v", b3)
	}
}

func TestErrorShrinksWithSelectivity(t *testing.T) {
	// Figure 12(b): larger query results -> smaller normalized error.
	recs := dataset.GeneratePatients(2000, 84)
	s := dataset.PatientsSchema()
	ps, err := mondrian.Anonymize(s, recs, mondrian.Options{Constraint: anonmodel.KAnonymity{K: 20}})
	if err != nil {
		t.Fatal(err)
	}
	qs := FullRangeWorkload(recs, 400, 5)
	results, err := Evaluate(compact.Partitions(ps), recs, qs)
	if err != nil {
		t.Fatal(err)
	}
	buckets := BySelectivity(results, len(recs), []float64{0.05, 0.25})
	lowSel, highSel := buckets[0], buckets[2]
	if lowSel.Queries == 0 || highSel.Queries == 0 {
		t.Skipf("degenerate workload spread: %+v", buckets)
	}
	if highSel.Mean > lowSel.Mean {
		t.Fatalf("error grew with selectivity: low %v high %v", lowSel.Mean, highSel.Mean)
	}
}

// TestBySelectivityGuards: the division-by-zero edges stay finite —
// total <= 0 returns the empty bucket skeleton, empty buckets report a
// zero mean, and an empty result set still yields the full skeleton so
// series line up across anonymizers.
func TestBySelectivityGuards(t *testing.T) {
	some := []Result{{Original: 10, Err: 0.5}, {Original: 900, Err: 0.1}}
	cases := []struct {
		name    string
		results []Result
		total   int
		bounds  []float64
	}{
		{"zero total", some, 0, []float64{0.1}},
		{"negative total", some, -7, []float64{0.1}},
		{"empty results", nil, 1000, []float64{0.01, 0.1}},
		{"no bounds", some, 1000, nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			buckets := BySelectivity(c.results, c.total, c.bounds)
			if want := len(c.bounds) + 1; len(buckets) != want {
				t.Fatalf("%d buckets, want %d", len(buckets), want)
			}
			counted := 0
			for _, b := range buckets {
				if math.IsNaN(b.Mean) || math.IsInf(b.Mean, 0) {
					t.Fatalf("bucket [%v,%v) mean %v not finite", b.Lo, b.Hi, b.Mean)
				}
				if b.Queries == 0 && b.Mean != 0 {
					t.Fatalf("empty bucket [%v,%v) has mean %v", b.Lo, b.Hi, b.Mean)
				}
				counted += b.Queries
			}
			if c.total <= 0 && counted != 0 {
				t.Fatalf("total=%d assigned %d queries, want 0", c.total, counted)
			}
		})
	}
}

// TestPointWorkload: points are drawn from real records (so point
// queries always have hits on the original table) and the draw is
// replayable from the seed.
func TestPointWorkload(t *testing.T) {
	recs := dataset.GeneratePatients(200, 80)
	pts := PointWorkload(recs, 50, 81)
	if len(pts) != 50 {
		t.Fatalf("%d points, want 50", len(pts))
	}
	byID := make(map[float64]bool)
	for _, r := range recs {
		byID[r.QI[0]*1e6+r.QI[1]*1e3+r.QI[2]] = true
	}
	for _, p := range pts {
		if len(p) != 3 {
			t.Fatalf("point dims %d", len(p))
		}
		if !byID[p[0]*1e6+p[1]*1e3+p[2]] {
			t.Fatalf("point %v is not a record", p)
		}
	}
	again := PointWorkload(recs, 50, 81)
	for i := range pts {
		for d := range pts[i] {
			if pts[i][d] != again[i][d] {
				t.Fatal("PointWorkload not replayable from seed")
			}
		}
	}
}
