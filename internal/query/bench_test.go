package query_test

import (
	"testing"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/dataset"
	"spatialanon/internal/query"
	"spatialanon/internal/routing"
	"spatialanon/internal/sfc"
)

const benchSeed = 99

func benchRelease(b *testing.B, n int) ([]anonmodel.Partition, *routing.Index, [][]float64, []attr.Box) {
	b.Helper()
	recs := dataset.GenerateLandsEnd(n, benchSeed)
	ps, err := sfc.Anonymize(recs, sfc.Hilbert, anonmodel.KAnonymity{K: 10})
	if err != nil {
		b.Fatal(err)
	}
	ix, err := routing.Build(ps, routing.Options{})
	if err != nil {
		b.Fatal(err)
	}
	points := query.PointWorkload(recs, 512, benchSeed+1)
	ranges := query.FullRangeWorkload(recs, 512, benchSeed+2)
	return ps, ix, points, ranges
}

// BenchmarkReadPoint compares the linear reference scan with the
// accelerated session on point COUNT queries — the headline read-path
// speedup (BENCH_PR7.json).
func BenchmarkReadPoint(b *testing.B) {
	ps, ix, points, _ := benchRelease(b, 20000)
	b.Run("linear", func(b *testing.B) {
		c := query.NewCounter(ps, nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Point(points[i%len(points)])
		}
	})
	b.Run("accel", func(b *testing.B) {
		c := query.NewCounter(ps, ix)
		c.Point(points[0]) // warm scratch
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Point(points[i%len(points)])
		}
	})
}

// BenchmarkReadRange compares the same two paths on range COUNT
// queries seeded from record pairs.
func BenchmarkReadRange(b *testing.B) {
	ps, ix, _, ranges := benchRelease(b, 20000)
	b.Run("linear", func(b *testing.B) {
		c := query.NewCounter(ps, nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Range(ranges[i%len(ranges)])
		}
	})
	b.Run("accel", func(b *testing.B) {
		c := query.NewCounter(ps, ix)
		c.Range(ranges[0])
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Range(ranges[i%len(ranges)])
		}
	})
}

// BenchmarkReadEstimate covers the uniform-assumption estimate, whose
// accelerated path must also reproduce the linear float rounding.
func BenchmarkReadEstimate(b *testing.B) {
	ps, ix, _, ranges := benchRelease(b, 20000)
	b.Run("linear", func(b *testing.B) {
		e := query.NewEstimator(ps, nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.Estimate(ranges[i%len(ranges)])
		}
	})
	b.Run("accel", func(b *testing.B) {
		e := query.NewEstimator(ps, ix)
		e.Estimate(ranges[0])
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Estimate(ranges[i%len(ranges)])
		}
	})
}

// BenchmarkRoutingBuild prices the once-per-epoch accelerator
// construction the serving layer amortizes.
func BenchmarkRoutingBuild(b *testing.B) {
	recs := dataset.GenerateLandsEnd(20000, benchSeed)
	ps, err := sfc.Anonymize(recs, sfc.Hilbert, anonmodel.KAnonymity{K: 10})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := routing.Build(ps, routing.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
