// Session objects for the serving read path: Counter and Estimator
// wrap one published release plus (optionally) its routing accelerator
// and own the reusable scratch a lookup needs, so point and range
// queries on a warm session run at zero allocations per operation —
// the same -benchmem-pinned contract as wal.Writer.Append.
//
// Sessions are cheap to create (a struct around shared slices) but
// NOT safe for concurrent use: each reader goroutine takes its own
// session against the shared, immutable release and Index.

package query

import (
	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/routing"
)

// CountAnonymizedPoint evaluates a point COUNT on an anonymized
// table: every record of every partition whose box contains the point
// matches — the point specialization of the Section 5.4 range
// semantics, and the linear reference the routing accelerator is
// pinned byte-identical to.
func CountAnonymizedPoint(ps []anonmodel.Partition, p []float64) int {
	n := 0
	for _, part := range ps {
		if part.Box.Contains(p) {
			n += part.Size()
		}
	}
	return n
}

// Counter answers exact point and range COUNT queries against one
// release. With an accelerator it routes through the block-range
// index; without one (idx == nil) it falls back to the linear scans.
// Either path returns identical answers; only the work differs.
type Counter struct {
	ps  []anonmodel.Partition
	idx *routing.Index
	s   routing.Scratch
}

// NewCounter builds a counting session over a release and its
// accelerator (nil for the linear fallback).
func NewCounter(ps []anonmodel.Partition, idx *routing.Index) *Counter {
	return &Counter{ps: ps, idx: idx}
}

// Point counts the records whose partition box contains p.
//
//anonylint:zero-alloc
func (c *Counter) Point(p []float64) int {
	if c.idx != nil {
		return c.idx.PointCount(p, &c.s)
	}
	return CountAnonymizedPoint(c.ps, p)
}

// Range counts the records whose partition box intersects q —
// CountAnonymized through the session's scratch.
//
//anonylint:zero-alloc
func (c *Counter) Range(q attr.Box) int {
	if c.idx != nil {
		return c.idx.RangeCount(q, &c.s)
	}
	return CountAnonymized(c.ps, q)
}

// Estimator answers uniform-assumption COUNT estimates (Section 2.3)
// against one release, accelerated when an Index is supplied. Queries
// must match the release's dimensionality.
type Estimator struct {
	ps  []anonmodel.Partition
	idx *routing.Index
	s   routing.Scratch
}

// NewEstimator builds an estimating session over a release and its
// accelerator (nil for the linear fallback).
func NewEstimator(ps []anonmodel.Partition, idx *routing.Index) *Estimator {
	return &Estimator{ps: ps, idx: idx}
}

// Estimate returns the uniform-assumption estimate for q,
// bit-identical to EstimateUniform on the same release.
//
//anonylint:zero-alloc
func (e *Estimator) Estimate(q attr.Box) float64 {
	if e.idx != nil {
		return e.idx.Estimate(q, &e.s)
	}
	return EstimateUniform(e.ps, q)
}
