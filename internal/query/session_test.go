package query_test

import (
	"math"
	"testing"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/dataset"
	"spatialanon/internal/query"
	"spatialanon/internal/routing"
	"spatialanon/internal/sfc"
)

func sessionRelease(t testing.TB) ([]anonmodel.Partition, *routing.Index, []query.Result) {
	t.Helper()
	recs := dataset.GeneratePatients(2000, 21)
	ps, err := sfc.Anonymize(recs, sfc.Hilbert, anonmodel.KAnonymity{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := routing.Build(ps, routing.Options{})
	if err != nil {
		t.Fatal(err)
	}
	queries := query.FullRangeWorkload(recs, 100, 22)
	results, err := query.Evaluate(ps, recs, queries)
	if err != nil {
		t.Fatal(err)
	}
	return ps, ix, results
}

// TestSessionsMatchLinear: accelerated and fallback sessions agree
// with the package-level linear scans, estimates bit-for-bit.
func TestSessionsMatchLinear(t *testing.T) {
	ps, ix, results := sessionRelease(t)
	for _, idx := range []*routing.Index{ix, nil} {
		c := query.NewCounter(ps, idx)
		e := query.NewEstimator(ps, idx)
		for _, r := range results {
			if got, want := c.Range(r.Query), query.CountAnonymized(ps, r.Query); got != want {
				t.Fatalf("idx=%v Range: got %d, want %d", idx != nil, got, want)
			}
			p := []float64{r.Query[0].Lo, r.Query[1].Lo, r.Query[2].Lo}
			if got, want := c.Point(p), query.CountAnonymizedPoint(ps, p); got != want {
				t.Fatalf("idx=%v Point: got %d, want %d", idx != nil, got, want)
			}
			got, want := e.Estimate(r.Query), query.EstimateUniform(ps, r.Query)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("idx=%v Estimate: got %v, want %v", idx != nil, got, want)
			}
		}
	}
}

// TestSessionZeroAlloc pins the warm-session zero-allocation contract
// for accelerated point, range and estimate calls — the read-path
// budget CI enforces.
func TestSessionZeroAlloc(t *testing.T) {
	ps, ix, results := sessionRelease(t)
	c := query.NewCounter(ps, ix)
	e := query.NewEstimator(ps, ix)
	point := []float64{results[0].Query[0].Lo, results[0].Query[1].Lo, results[0].Query[2].Lo}
	// Warm the session scratch.
	c.Point(point)
	c.Range(results[0].Query)
	e.Estimate(results[0].Query)
	i := 0
	if a := testing.AllocsPerRun(200, func() { c.Point(point) }); a != 0 {
		t.Errorf("Counter.Point: %v allocs/op, want 0", a)
	}
	if a := testing.AllocsPerRun(200, func() { c.Range(results[i%len(results)].Query); i++ }); a != 0 {
		t.Errorf("Counter.Range: %v allocs/op, want 0", a)
	}
	if a := testing.AllocsPerRun(200, func() { e.Estimate(results[i%len(results)].Query); i++ }); a != 0 {
		t.Errorf("Estimator.Estimate: %v allocs/op, want 0", a)
	}
}
