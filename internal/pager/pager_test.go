package pager

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

func TestAllocReadRoundTrip(t *testing.T) {
	p := New(64, 4)
	id, data, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 64 {
		t.Fatalf("page size %d", len(data))
	}
	copy(data, []byte("hello"))
	if err := p.MarkDirty(id); err != nil {
		t.Fatal(err)
	}
	if err := p.Unpin(id); err != nil {
		t.Fatal(err)
	}
	got, err := p.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:5]) != "hello" {
		t.Fatalf("page contents %q", got[:5])
	}
	if err := p.Unpin(id); err != nil {
		t.Fatal(err)
	}
	// Still resident: no disk reads should have happened.
	if s := p.Stats(); s.Reads != 0 || s.Allocs != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestEvictionWritesBackAndReloads(t *testing.T) {
	p := New(16, 2)
	var ids []PageID
	for i := 0; i < 5; i++ {
		id, data, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint64(data, uint64(i+100))
		if err := p.Unpin(id); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Pool holds 2 pages; 3 allocations must have evicted dirty pages.
	if w := p.Stats().Writes; w < 3 {
		t.Fatalf("expected >=3 write-backs, got %d", w)
	}
	for i, id := range ids {
		data, err := p.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		if got := binary.LittleEndian.Uint64(data); got != uint64(i+100) {
			t.Fatalf("page %d contents %d, want %d", id, got, i+100)
		}
		if err := p.Unpin(id); err != nil {
			t.Fatal(err)
		}
	}
	if r := p.Stats().Reads; r < 3 {
		t.Fatalf("expected re-reads after eviction, got %d", r)
	}
}

func TestPinPreventsEviction(t *testing.T) {
	p := New(16, 2)
	id1, _, _ := p.Alloc() // stays pinned
	id2, _, _ := p.Alloc() // stays pinned
	if _, _, err := p.Alloc(); err == nil {
		t.Fatal("third alloc should fail: pool exhausted by pins")
	}
	p.Unpin(id2)
	id3, _, err := p.Alloc()
	if err != nil {
		t.Fatalf("alloc after unpin: %v", err)
	}
	if !p.Resident(id1) {
		t.Fatal("pinned page was evicted")
	}
	if p.Resident(id2) {
		t.Fatal("unpinned page survived eviction pressure")
	}
	p.Unpin(id1)
	p.Unpin(id3)
}

func TestUnpinErrors(t *testing.T) {
	p := New(16, 2)
	id, _, _ := p.Alloc()
	p.Unpin(id)
	if err := p.Unpin(id); err == nil {
		t.Fatal("double Unpin accepted")
	}
	if err := p.Unpin(PageID(999)); err == nil {
		t.Fatal("Unpin of unknown page accepted")
	}
	if err := p.MarkDirty(PageID(999)); err == nil {
		t.Fatal("MarkDirty of non-resident page accepted")
	}
}

func TestReadUnknownPage(t *testing.T) {
	p := New(16, 2)
	if _, err := p.Read(PageID(42)); err == nil {
		t.Fatal("read of unallocated page accepted")
	}
}

func TestFree(t *testing.T) {
	p := New(16, 2)
	id, _, _ := p.Alloc()
	if err := p.Free(id); err == nil {
		t.Fatal("free of pinned page accepted")
	}
	p.Unpin(id)
	if err := p.Free(id); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Read(id); err == nil {
		t.Fatal("read of freed page accepted")
	}
	if p.Stats().Frees != 1 {
		t.Fatalf("frees = %d", p.Stats().Frees)
	}
}

func TestFlush(t *testing.T) {
	p := New(16, 4)
	id, data, _ := p.Alloc()
	copy(data, []byte("x"))
	p.Unpin(id)
	before := p.Stats().Writes
	p.Flush()
	if p.Stats().Writes != before+1 {
		t.Fatalf("flush wrote %d pages", p.Stats().Writes-before)
	}
	// Second flush: nothing dirty.
	before = p.Stats().Writes
	p.Flush()
	if p.Stats().Writes != before {
		t.Fatal("flush of clean pool performed writes")
	}
}

func TestResetStats(t *testing.T) {
	p := New(16, 2)
	id, _, _ := p.Alloc()
	p.Unpin(id)
	p.Flush()
	p.ResetStats()
	if s := p.Stats(); s != (Stats{}) {
		t.Fatalf("stats after reset: %+v", s)
	}
	// Contents survive a stats reset.
	if _, err := p.Read(id); err != nil {
		t.Fatal(err)
	}
	p.Unpin(id)
}

func TestStatsIO(t *testing.T) {
	s := Stats{Reads: 3, Writes: 4}
	if s.IO() != 7 {
		t.Fatalf("IO = %d", s.IO())
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 1) },
		func() { New(16, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad config accepted")
				}
			}()
			f()
		}()
	}
}

// Property: under random workloads, data written is always data read
// back, and I/O never exceeds one read plus one write per access.
func TestRandomizedWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := New(32, 3)
	contents := map[PageID]byte{}
	var ids []PageID
	accesses := int64(0)
	for i := 0; i < 2000; i++ {
		switch op := rng.Intn(10); {
		case op < 3 || len(ids) == 0:
			id, data, err := p.Alloc()
			if err != nil {
				t.Fatal(err)
			}
			b := byte(rng.Intn(256))
			data[0] = b
			p.MarkDirty(id)
			p.Unpin(id)
			contents[id] = b
			ids = append(ids, id)
			accesses++
		case op < 8: // read and verify
			id := ids[rng.Intn(len(ids))]
			data, err := p.Read(id)
			if err != nil {
				t.Fatal(err)
			}
			if data[0] != contents[id] {
				t.Fatalf("page %d holds %d, want %d", id, data[0], contents[id])
			}
			p.Unpin(id)
			accesses++
		default: // overwrite
			id := ids[rng.Intn(len(ids))]
			data, err := p.Read(id)
			if err != nil {
				t.Fatal(err)
			}
			b := byte(rng.Intn(256))
			data[0] = b
			p.MarkDirty(id)
			p.Unpin(id)
			contents[id] = b
			accesses++
		}
	}
	if got := p.Stats().IO(); got > 2*accesses {
		t.Fatalf("I/O %d exceeds 2 per access (%d accesses)", got, accesses)
	}
}

// Property: a larger pool never performs more I/O on the same trace —
// the monotonicity Figure 8(b) depends on (LRU has no Belady anomaly).
func TestPoolSizeMonotonicity(t *testing.T) {
	trace := func(pool int) int64 {
		rng := rand.New(rand.NewSource(9))
		p := New(32, pool)
		var ids []PageID
		for i := 0; i < 50; i++ {
			id, _, _ := p.Alloc()
			p.Unpin(id)
			ids = append(ids, id)
		}
		for i := 0; i < 3000; i++ {
			// Skewed access pattern with locality.
			idx := rng.Intn(len(ids))
			if rng.Float64() < 0.7 {
				idx = rng.Intn(10)
			}
			data, err := p.Read(ids[idx])
			if err != nil {
				t.Fatal(err)
			}
			if rng.Float64() < 0.3 {
				data[0]++
				p.MarkDirty(ids[idx])
			}
			p.Unpin(ids[idx])
		}
		p.Flush()
		return p.Stats().IO()
	}
	prev := trace(2)
	for _, pool := range []int{4, 8, 16, 32, 64} {
		cur := trace(pool)
		if cur > prev {
			t.Fatalf("pool %d did more I/O (%d) than smaller pool (%d)", pool, cur, prev)
		}
		prev = cur
	}
}
