package pager

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
)

func mustNew(t *testing.T, pageSize, poolPages int) *Pager {
	t.Helper()
	p, err := New(pageSize, poolPages)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAllocReadRoundTrip(t *testing.T) {
	p := mustNew(t, 64, 4)
	id, data, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 64 {
		t.Fatalf("page size %d", len(data))
	}
	copy(data, []byte("hello"))
	if err := p.MarkDirty(id); err != nil {
		t.Fatal(err)
	}
	if err := p.Unpin(id); err != nil {
		t.Fatal(err)
	}
	got, err := p.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:5]) != "hello" {
		t.Fatalf("page contents %q", got[:5])
	}
	if err := p.Unpin(id); err != nil {
		t.Fatal(err)
	}
	// Still resident: no disk reads should have happened.
	if s := p.Stats(); s.Reads != 0 || s.Allocs != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestEvictionWritesBackAndReloads(t *testing.T) {
	p := mustNew(t, 16, 2)
	var ids []PageID
	for i := 0; i < 5; i++ {
		id, data, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint64(data, uint64(i+100))
		if err := p.Unpin(id); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Pool holds 2 pages; 3 allocations must have evicted dirty pages.
	if w := p.Stats().Writes; w < 3 {
		t.Fatalf("expected >=3 write-backs, got %d", w)
	}
	for i, id := range ids {
		data, err := p.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		if got := binary.LittleEndian.Uint64(data); got != uint64(i+100) {
			t.Fatalf("page %d contents %d, want %d", id, got, i+100)
		}
		if err := p.Unpin(id); err != nil {
			t.Fatal(err)
		}
	}
	if r := p.Stats().Reads; r < 3 {
		t.Fatalf("expected re-reads after eviction, got %d", r)
	}
}

func TestPinPreventsEviction(t *testing.T) {
	p := mustNew(t, 16, 2)
	id1, _, _ := p.Alloc() // stays pinned
	id2, _, _ := p.Alloc() // stays pinned
	if _, _, err := p.Alloc(); err == nil {
		t.Fatal("third alloc should fail: pool exhausted by pins")
	}
	p.Unpin(id2)
	id3, _, err := p.Alloc()
	if err != nil {
		t.Fatalf("alloc after unpin: %v", err)
	}
	if !p.Resident(id1) {
		t.Fatal("pinned page was evicted")
	}
	if p.Resident(id2) {
		t.Fatal("unpinned page survived eviction pressure")
	}
	p.Unpin(id1)
	p.Unpin(id3)
}

func TestUnpinErrors(t *testing.T) {
	p := mustNew(t, 16, 2)
	id, _, _ := p.Alloc()
	p.Unpin(id)
	if err := p.Unpin(id); err == nil {
		t.Fatal("double Unpin accepted")
	}
	if err := p.Unpin(PageID(999)); err == nil {
		t.Fatal("Unpin of unknown page accepted")
	}
	if err := p.MarkDirty(PageID(999)); err == nil {
		t.Fatal("MarkDirty of non-resident page accepted")
	}
}

func TestReadUnknownPage(t *testing.T) {
	p := mustNew(t, 16, 2)
	if _, err := p.Read(PageID(42)); err == nil {
		t.Fatal("read of unallocated page accepted")
	}
}

func TestFree(t *testing.T) {
	p := mustNew(t, 16, 2)
	id, _, _ := p.Alloc()
	if err := p.Free(id); err == nil {
		t.Fatal("free of pinned page accepted")
	}
	p.Unpin(id)
	if err := p.Free(id); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Read(id); err == nil {
		t.Fatal("read of freed page accepted")
	}
	if p.Stats().Frees != 1 {
		t.Fatalf("frees = %d", p.Stats().Frees)
	}
}

func TestFlush(t *testing.T) {
	p := mustNew(t, 16, 4)
	id, data, _ := p.Alloc()
	copy(data, []byte("x"))
	p.Unpin(id)
	before := p.Stats().Writes
	p.Flush()
	if p.Stats().Writes != before+1 {
		t.Fatalf("flush wrote %d pages", p.Stats().Writes-before)
	}
	// Second flush: nothing dirty.
	before = p.Stats().Writes
	p.Flush()
	if p.Stats().Writes != before {
		t.Fatal("flush of clean pool performed writes")
	}
}

func TestResetStats(t *testing.T) {
	p := mustNew(t, 16, 2)
	id, _, _ := p.Alloc()
	p.Unpin(id)
	p.Flush()
	p.ResetStats()
	if s := p.Stats(); s != (Stats{}) {
		t.Fatalf("stats after reset: %+v", s)
	}
	// Contents survive a stats reset.
	if _, err := p.Read(id); err != nil {
		t.Fatal(err)
	}
	p.Unpin(id)
}

func TestStatsIO(t *testing.T) {
	s := Stats{Reads: 3, Writes: 4}
	if s.IO() != 7 {
		t.Fatalf("IO = %d", s.IO())
	}
}

func TestBadConfigErrors(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Fatal("zero page size accepted")
	}
	if _, err := New(-8, 1); err == nil {
		t.Fatal("negative page size accepted")
	}
	if _, err := New(16, 0); err == nil {
		t.Fatal("empty pool accepted")
	}
}

// Property: under random workloads, data written is always data read
// back, and I/O never exceeds one read plus one write per access.
func TestRandomizedWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := mustNew(t, 32, 3)
	contents := map[PageID]byte{}
	var ids []PageID
	accesses := int64(0)
	for i := 0; i < 2000; i++ {
		switch op := rng.Intn(10); {
		case op < 3 || len(ids) == 0:
			id, data, err := p.Alloc()
			if err != nil {
				t.Fatal(err)
			}
			b := byte(rng.Intn(256))
			data[0] = b
			p.MarkDirty(id)
			p.Unpin(id)
			contents[id] = b
			ids = append(ids, id)
			accesses++
		case op < 8: // read and verify
			id := ids[rng.Intn(len(ids))]
			data, err := p.Read(id)
			if err != nil {
				t.Fatal(err)
			}
			if data[0] != contents[id] {
				t.Fatalf("page %d holds %d, want %d", id, data[0], contents[id])
			}
			p.Unpin(id)
			accesses++
		default: // overwrite
			id := ids[rng.Intn(len(ids))]
			data, err := p.Read(id)
			if err != nil {
				t.Fatal(err)
			}
			b := byte(rng.Intn(256))
			data[0] = b
			p.MarkDirty(id)
			p.Unpin(id)
			contents[id] = b
			accesses++
		}
	}
	if got := p.Stats().IO(); got > 2*accesses {
		t.Fatalf("I/O %d exceeds 2 per access (%d accesses)", got, accesses)
	}
}

// Property: a larger pool never performs more I/O on the same trace —
// the monotonicity Figure 8(b) depends on (LRU has no Belady anomaly).
func TestPoolSizeMonotonicity(t *testing.T) {
	trace := func(pool int) int64 {
		rng := rand.New(rand.NewSource(9))
		p := mustNew(t, 32, pool)
		var ids []PageID
		for i := 0; i < 50; i++ {
			id, _, _ := p.Alloc()
			p.Unpin(id)
			ids = append(ids, id)
		}
		for i := 0; i < 3000; i++ {
			// Skewed access pattern with locality.
			idx := rng.Intn(len(ids))
			if rng.Float64() < 0.7 {
				idx = rng.Intn(10)
			}
			data, err := p.Read(ids[idx])
			if err != nil {
				t.Fatal(err)
			}
			if rng.Float64() < 0.3 {
				data[0]++
				p.MarkDirty(ids[idx])
			}
			p.Unpin(ids[idx])
		}
		p.Flush()
		return p.Stats().IO()
	}
	prev := trace(2)
	for _, pool := range []int{4, 8, 16, 32, 64} {
		cur := trace(pool)
		if cur > prev {
			t.Fatalf("pool %d did more I/O (%d) than smaller pool (%d)", pool, cur, prev)
		}
		prev = cur
	}
}

// evictAll forces every unpinned page out of the pool so the next Read
// goes to disk (and through checksum verification).
func evictAll(t *testing.T, p *Pager) {
	t.Helper()
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	// Fill the pool with throwaway pinned-then-unpinned pages until the
	// originals are gone.
	for i := 0; i < 2*p.PoolPages(); i++ {
		id, _, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Unpin(id); err != nil {
			t.Fatal(err)
		}
	}
}

// The acceptance check of the robustness issue: a flipped bit in any
// page is detected on the next read and reported as a typed corruption
// error.
func TestFlippedBitDetectedOnRead(t *testing.T) {
	p := mustNew(t, 32, 2)
	id, data, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	copy(data, []byte("payload"))
	p.MarkDirty(id)
	p.Unpin(id)
	evictAll(t, p)

	for bit := 0; bit < 32*8; bit += 37 { // a spread of bit positions
		if err := p.FlipBit(id, bit); err != nil {
			t.Fatal(err)
		}
		_, err := p.Read(id)
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("bit %d: read returned %v, want *CorruptError", bit, err)
		}
		if ce.Page != id || ce.Want == ce.Got {
			t.Fatalf("bit %d: bad corruption report %+v", bit, ce)
		}
		// Flip it back: the page must verify again.
		if err := p.FlipBit(id, bit); err != nil {
			t.Fatal(err)
		}
		got, err := p.Read(id)
		if err != nil {
			t.Fatalf("bit %d: repaired page unreadable: %v", bit, err)
		}
		if string(got[:7]) != "payload" {
			t.Fatalf("bit %d: contents %q", bit, got[:7])
		}
		p.Unpin(id)
		evictAll(t, p)
	}
}

func TestFlipBitErrors(t *testing.T) {
	p := mustNew(t, 16, 2)
	if err := p.FlipBit(PageID(9), 0); err == nil {
		t.Fatal("FlipBit of unknown page accepted")
	}
	id, _, _ := p.Alloc()
	p.Unpin(id)
	if err := p.FlipBit(id, 0); err == nil {
		t.Fatal("FlipBit of never-written page accepted")
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := p.FlipBit(id, 16*8); err == nil {
		t.Fatal("out-of-range bit accepted")
	}
	if err := p.FlipBit(id, -1); err == nil {
		t.Fatal("negative bit accepted")
	}
}

func TestScrubRepairsCorruptPages(t *testing.T) {
	p := mustNew(t, 16, 2)
	var ids []PageID
	for i := 0; i < 3; i++ {
		id, data, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		data[0] = byte(i + 1)
		p.MarkDirty(id)
		p.Unpin(id)
		ids = append(ids, id)
	}
	evictAll(t, p)
	p.FlipBit(ids[0], 3)
	p.FlipBit(ids[2], 40)
	repaired, err := p.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(repaired) != 2 || repaired[0] != ids[0] || repaired[1] != ids[2] {
		t.Fatalf("scrub repaired %v", repaired)
	}
	if again, err := p.Scrub(); err != nil || len(again) != 0 {
		t.Fatalf("second scrub repaired %v (err %v)", again, err)
	}
	for _, id := range ids {
		if _, err := p.Read(id); err != nil {
			t.Fatalf("page %d unreadable after scrub: %v", id, err)
		}
		p.Unpin(id)
	}
}

// scriptedFaults is a hand-rolled FaultPolicy for unit tests: it fails
// specific operation ordinals and can corrupt every write.
type scriptedFaults struct {
	op         int
	failReads  map[int]error
	failWrites map[int]error
	corrupt    bool
}

func (s *scriptedFaults) BeforeRead(id PageID) error {
	s.op++
	return s.failReads[s.op]
}

func (s *scriptedFaults) BeforeWrite(id PageID) error {
	s.op++
	return s.failWrites[s.op]
}

func (s *scriptedFaults) CorruptWrite(id PageID, data []byte) bool {
	if s.corrupt && len(data) > 0 {
		data[0] ^= 0xFF
		return true
	}
	return false
}

func TestFaultPolicyFailsOperations(t *testing.T) {
	errBoom := errors.New("boom")
	p := mustNew(t, 16, 2)
	id, _, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(id)
	p.SetFaultPolicy(&scriptedFaults{failWrites: map[int]error{1: errBoom}})
	if err := p.Flush(); !errors.Is(err, errBoom) {
		t.Fatalf("flush error %v, want boom", err)
	}
	// Fault removed: the flush succeeds and the page is readable.
	p.SetFaultPolicy(nil)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	evictAll(t, p)
	p.SetFaultPolicy(&scriptedFaults{failReads: map[int]error{1: errBoom}})
	if _, err := p.Read(id); !errors.Is(err, errBoom) {
		t.Fatalf("read error %v, want boom", err)
	}
	p.SetFaultPolicy(nil)
	if _, err := p.Read(id); err != nil {
		t.Fatal(err)
	}
	p.Unpin(id)
}

func TestCorruptWriteDetectedByChecksum(t *testing.T) {
	p := mustNew(t, 16, 2)
	id, data, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	copy(data, []byte("abc"))
	p.MarkDirty(id)
	p.Unpin(id)
	p.SetFaultPolicy(&scriptedFaults{corrupt: true})
	if err := p.Flush(); err != nil {
		t.Fatal(err) // the torn write itself succeeds silently
	}
	p.SetFaultPolicy(nil)
	evictAll(t, p)
	_, err = p.Read(id)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("read of torn page returned %v, want *CorruptError", err)
	}
}
