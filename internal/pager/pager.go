// Package pager is a simulated paged storage manager: a byte-addressable
// "disk" of fixed-size pages fronted by an LRU buffer pool with a hard
// memory budget, pin/unpin semantics, dirty-page write-back, and explicit
// I/O statistics.
//
// The paper's scalability experiments (Figure 8) report *counts of
// explicit I/O system calls* while varying the memory allotted to the
// anonymization process. A counting pager reproduces exactly that
// quantity — deterministically, independent of the host machine — which
// is why the buffer-tree bulk loader (internal/buffertree) stores its
// node pages and buffer-spill pages here rather than in plain Go heap
// memory.
package pager

import (
	"container/list"
	"fmt"
)

// PageID names one page of the simulated disk. Zero is never a valid ID.
type PageID int64

// Stats counts the explicit I/O operations the pager has performed.
// Reads and Writes are page transfers between the buffer pool and the
// simulated disk; Allocs counts pages ever allocated; Hits counts buffer
// pool hits that avoided a read.
type Stats struct {
	Reads  int64
	Writes int64
	Allocs int64
	Frees  int64
	Hits   int64
}

// IO returns total page transfers (reads + writes) — the y-axis of
// Figure 8(b).
func (s Stats) IO() int64 { return s.Reads + s.Writes }

type frame struct {
	id    PageID
	data  []byte
	dirty bool
	pins  int
	elem  *list.Element
}

// Pager is the storage manager. It is not safe for concurrent use; the
// anonymization pipeline is single-threaded, as was the paper's.
type Pager struct {
	pageSize  int
	poolPages int

	disk   map[PageID][]byte
	frames map[PageID]*frame
	lru    *list.List // front = most recently used; holds *frame
	nextID PageID
	stats  Stats
}

// New returns a pager with the given page size in bytes and a buffer
// pool of poolPages pages. poolPages must be at least 1.
func New(pageSize, poolPages int) *Pager {
	if pageSize <= 0 {
		panic(fmt.Sprintf("pager: page size %d", pageSize))
	}
	if poolPages < 1 {
		panic(fmt.Sprintf("pager: pool of %d pages", poolPages))
	}
	return &Pager{
		pageSize:  pageSize,
		poolPages: poolPages,
		disk:      make(map[PageID][]byte),
		frames:    make(map[PageID]*frame),
		lru:       list.New(),
	}
}

// PageSize returns the page size in bytes.
func (p *Pager) PageSize() int { return p.pageSize }

// PoolPages returns the buffer pool capacity in pages.
func (p *Pager) PoolPages() int { return p.poolPages }

// Stats returns a snapshot of the I/O counters.
func (p *Pager) Stats() Stats { return p.stats }

// ResetStats zeroes the I/O counters (page contents are untouched). The
// experiment harness calls this between measurement phases.
func (p *Pager) ResetStats() { p.stats = Stats{} }

// Alloc creates a new zeroed page, resident in the pool and pinned once.
// The caller must Unpin it when done mutating.
func (p *Pager) Alloc() (PageID, []byte, error) {
	p.nextID++
	id := p.nextID
	p.stats.Allocs++
	f, err := p.install(id, make([]byte, p.pageSize))
	if err != nil {
		return 0, nil, err
	}
	f.dirty = true // a fresh page must reach "disk" eventually
	f.pins++
	return id, f.data, nil
}

// Read pins the page into the pool and returns its contents. Mutations of
// the returned slice are only persisted if the caller also calls
// MarkDirty before Unpin.
func (p *Pager) Read(id PageID) ([]byte, error) {
	f, err := p.fetch(id)
	if err != nil {
		return nil, err
	}
	f.pins++
	return f.data, nil
}

// MarkDirty records that the page's pooled contents differ from disk.
func (p *Pager) MarkDirty(id PageID) error {
	f, ok := p.frames[id]
	if !ok {
		return fmt.Errorf("pager: MarkDirty of non-resident page %d", id)
	}
	f.dirty = true
	return nil
}

// Unpin releases one pin on the page, making it evictable when the count
// reaches zero.
func (p *Pager) Unpin(id PageID) error {
	f, ok := p.frames[id]
	if !ok {
		return fmt.Errorf("pager: Unpin of non-resident page %d", id)
	}
	if f.pins == 0 {
		return fmt.Errorf("pager: Unpin of unpinned page %d", id)
	}
	f.pins--
	return nil
}

// Free releases a page entirely: it is dropped from the pool (without
// write-back) and from the disk. Freeing a pinned page is an error.
func (p *Pager) Free(id PageID) error {
	if f, ok := p.frames[id]; ok {
		if f.pins > 0 {
			return fmt.Errorf("pager: Free of pinned page %d", id)
		}
		p.lru.Remove(f.elem)
		delete(p.frames, id)
	}
	if _, ok := p.disk[id]; ok {
		delete(p.disk, id)
		p.stats.Frees++
		return nil
	}
	// Page may be resident-only (never written back) — that is still a
	// legitimate free as long as it was allocated.
	p.stats.Frees++
	return nil
}

// Flush writes every dirty pooled page back to disk.
func (p *Pager) Flush() {
	for _, f := range p.frames {
		if f.dirty {
			p.writeBack(f)
		}
	}
}

// Resident reports whether the page is currently in the buffer pool.
func (p *Pager) Resident(id PageID) bool {
	_, ok := p.frames[id]
	return ok
}

// fetch returns the frame for id, reading it from disk if necessary and
// evicting an unpinned page if the pool is full.
func (p *Pager) fetch(id PageID) (*frame, error) {
	if f, ok := p.frames[id]; ok {
		p.stats.Hits++
		p.lru.MoveToFront(f.elem)
		return f, nil
	}
	data, ok := p.disk[id]
	if !ok {
		return nil, fmt.Errorf("pager: read of unknown page %d", id)
	}
	p.stats.Reads++
	buf := make([]byte, p.pageSize)
	copy(buf, data)
	return p.install(id, buf)
}

// install places data in the pool under id, evicting if needed.
func (p *Pager) install(id PageID, data []byte) (*frame, error) {
	for len(p.frames) >= p.poolPages {
		if err := p.evictOne(); err != nil {
			return nil, err
		}
	}
	f := &frame{id: id, data: data}
	f.elem = p.lru.PushFront(f)
	p.frames[id] = f
	return f, nil
}

// evictOne removes the least recently used unpinned page, writing it back
// if dirty.
func (p *Pager) evictOne() error {
	for e := p.lru.Back(); e != nil; e = e.Prev() {
		f := e.Value.(*frame)
		if f.pins > 0 {
			continue
		}
		if f.dirty {
			p.writeBack(f)
		}
		p.lru.Remove(f.elem)
		delete(p.frames, f.id)
		return nil
	}
	return fmt.Errorf("pager: buffer pool of %d pages exhausted by pinned pages", p.poolPages)
}

func (p *Pager) writeBack(f *frame) {
	p.stats.Writes++
	buf := make([]byte, p.pageSize)
	copy(buf, f.data)
	p.disk[f.id] = buf
	f.dirty = false
}
