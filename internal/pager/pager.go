// Package pager is a paged storage manager: a byte-addressable "disk"
// of fixed-size pages fronted by an LRU buffer pool with a hard memory
// budget, pin/unpin semantics, dirty-page write-back, explicit I/O
// statistics, per-page CRC32 checksums and an injectable fault policy.
//
// The paper's scalability experiments (Figure 8) report *counts of
// explicit I/O system calls* while varying the memory allotted to the
// anonymization process. A counting pager reproduces exactly that
// quantity — deterministically, independent of the host machine — which
// is why the buffer-tree bulk loader (internal/rplustree) stores its
// node pages and buffer-spill pages here rather than in plain Go heap
// memory.
//
// Backends. The pager's disk is pluggable (the Disk interface): New
// installs the default in-memory simulation, which is all the I/O
// *counting* experiments need, while NewWithDisk accepts any backend —
// in particular DiskFile (diskfile.go), which persists sealed pages to
// a real file so the durability subsystem (internal/wal) can survive
// process death. Checksums, fault injection and the buffer pool behave
// identically over either backend.
//
// Failure semantics. Every page carries a CRC32-Castagnoli checksum,
// sealed when the page is written back to the disk and verified when it
// is next read from disk. A mismatch is reported as a typed
// *CorruptError — the pager never silently returns rotted bytes. A
// FaultPolicy installed with SetFaultPolicy can fail reads and
// write-backs (internal/fault provides a deterministic, seed-driven
// implementation) and corrupt outgoing pages after the checksum is
// sealed, which is exactly how torn writes and bit rot escape a real
// storage stack until the page is next read. Scrub is the recovery
// hook: it re-seals the checksum of every corrupt page, modeling a
// restore from replica once corruption has been detected.
package pager

import (
	"container/list"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
)

// PageID names one page of the disk. Zero is never a valid ID.
type PageID int64

// Stats counts the explicit I/O operations the pager has performed.
// Reads and Writes are page transfers between the buffer pool and the
// disk; Allocs counts pages ever allocated; Hits counts buffer pool
// hits that avoided a read.
type Stats struct {
	Reads  int64
	Writes int64
	Allocs int64
	Frees  int64
	Hits   int64
}

// IO returns total page transfers (reads + writes) — the y-axis of
// Figure 8(b).
func (s Stats) IO() int64 { return s.Reads + s.Writes }

// FaultPolicy lets a fault injector intercept the pager's disk-facing
// operations. All methods are called on the single goroutine driving
// the pager.
type FaultPolicy interface {
	// BeforeRead may return an error to fail the disk read of page id.
	BeforeRead(id PageID) error
	// BeforeWrite may return an error to fail the write-back of page id.
	BeforeWrite(id PageID) error
	// CorruptWrite may mutate data — the bytes about to reach disk — to
	// model torn writes and bit rot. It runs after the page checksum has
	// been sealed, so any mutation is detected on the next disk read. It
	// reports whether it corrupted the page.
	CorruptWrite(id PageID, data []byte) bool
}

// CorruptError reports that a page read from disk failed its checksum:
// the bytes on disk are not the bytes that were written. It is never
// transient — retrying the read returns the same rotten page; recovery
// requires Scrub (restore from replica) or Free.
type CorruptError struct {
	Page PageID
	Want uint32 // checksum sealed at write-back
	Got  uint32 // checksum of the bytes actually on disk
}

// Error implements error.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("pager: page %d corrupt: checksum %08x, stored %08x", e.Page, e.Got, e.Want)
}

// ErrUnknownPage reports a read of a page the disk has never stored.
var ErrUnknownPage = errors.New("pager: read of unknown page")

// crcTable is the Castagnoli polynomial, the same choice as iSCSI and
// ext4 metadata checksums (hardware-accelerated on amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Checksum seals a page payload with the pager's CRC32-C. Exported so
// backends and recovery tooling agree on the polynomial.
func Checksum(data []byte) uint32 { return crc32.Checksum(data, crcTable) }

// Disk is the storage behind the buffer pool: sealed pages at rest.
// Implementations store the payload together with the checksum sealed
// at write-back; the pager verifies the seal on read, so a backend
// never needs to interpret page contents. Implementations are driven
// from the pager's single goroutine.
type Disk interface {
	// ReadPage returns the stored payload and its sealed checksum.
	// Unknown pages report an error wrapping ErrUnknownPage. The
	// returned slice may alias backend storage; the pager copies it.
	ReadPage(id PageID) (data []byte, sum uint32, err error)
	// WritePage stores the payload under the (already sealed) checksum,
	// overwriting any previous version of the page.
	WritePage(id PageID, data []byte, sum uint32) error
	// FreePage drops the page. It reports whether the page was stored.
	FreePage(id PageID) (bool, error)
	// IDs returns every stored page in ascending order.
	IDs() ([]PageID, error)
	// MaxID returns the highest page ID ever stored (0 when empty), so
	// a reopened pager resumes allocation past persisted pages.
	MaxID() (PageID, error)
	// Sync forces stored pages to stable media (no-op for memory).
	Sync() error
	// Close releases backend resources.
	Close() error
}

// memDisk is the default backend: the in-memory simulation used by the
// I/O-counting experiments.
type memDisk struct {
	pages map[PageID]memPage
}

type memPage struct {
	data []byte
	sum  uint32
}

// NewMemDisk returns the in-memory Disk backend New installs by
// default.
func NewMemDisk() Disk { return &memDisk{pages: make(map[PageID]memPage)} }

func (d *memDisk) ReadPage(id PageID) ([]byte, uint32, error) {
	p, ok := d.pages[id]
	if !ok {
		return nil, 0, fmt.Errorf("%w: page %d", ErrUnknownPage, id)
	}
	return p.data, p.sum, nil
}

func (d *memDisk) WritePage(id PageID, data []byte, sum uint32) error {
	d.pages[id] = memPage{data: data, sum: sum}
	return nil
}

func (d *memDisk) FreePage(id PageID) (bool, error) {
	_, ok := d.pages[id]
	delete(d.pages, id)
	return ok, nil
}

func (d *memDisk) IDs() ([]PageID, error) {
	ids := make([]PageID, 0, len(d.pages))
	for id := range d.pages {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

func (d *memDisk) MaxID() (PageID, error) {
	var max PageID
	for id := range d.pages {
		if id > max {
			max = id
		}
	}
	return max, nil
}

func (d *memDisk) Sync() error  { return nil }
func (d *memDisk) Close() error { return nil }

type frame struct {
	id    PageID
	data  []byte
	dirty bool
	pins  int
	elem  *list.Element
}

// Pager is the storage manager. It is not safe for concurrent use; the
// anonymization pipeline is single-threaded, as was the paper's.
type Pager struct {
	pageSize  int
	poolPages int

	disk   Disk
	frames map[PageID]*frame
	lru    *list.List // front = most recently used; holds *frame
	nextID PageID
	stats  Stats
	fault  FaultPolicy
}

// New returns a pager over the in-memory disk with the given page size
// in bytes and a buffer pool of poolPages pages. It returns an error
// when pageSize is not positive or poolPages is below 1 — both
// reachable from user-supplied memory budgets, so they are errors
// rather than panics.
func New(pageSize, poolPages int) (*Pager, error) {
	return NewWithDisk(pageSize, poolPages, NewMemDisk())
}

// NewWithDisk returns a pager over the given backend. Pages the backend
// already stores stay readable, and allocation resumes past the highest
// stored ID — this is how a reopened DiskFile recovers its pages.
func NewWithDisk(pageSize, poolPages int, d Disk) (*Pager, error) {
	if pageSize <= 0 {
		return nil, fmt.Errorf("pager: page size %d must be positive", pageSize)
	}
	if poolPages < 1 {
		return nil, fmt.Errorf("pager: buffer pool of %d pages must hold at least 1", poolPages)
	}
	if d == nil {
		return nil, fmt.Errorf("pager: nil disk")
	}
	max, err := d.MaxID()
	if err != nil {
		return nil, fmt.Errorf("pager: scanning disk: %w", err)
	}
	return &Pager{
		pageSize:  pageSize,
		poolPages: poolPages,
		disk:      d,
		frames:    make(map[PageID]*frame),
		lru:       list.New(),
		nextID:    max,
	}, nil
}

// SetFaultPolicy installs (or, with nil, removes) the fault injection
// hook. Pages already resident or on disk are unaffected.
func (p *Pager) SetFaultPolicy(fp FaultPolicy) { p.fault = fp }

// PageSize returns the page size in bytes.
func (p *Pager) PageSize() int { return p.pageSize }

// PoolPages returns the buffer pool capacity in pages.
func (p *Pager) PoolPages() int { return p.poolPages }

// Stats returns a snapshot of the I/O counters.
func (p *Pager) Stats() Stats { return p.stats }

// ResetStats zeroes the I/O counters (page contents are untouched). The
// experiment harness calls this between measurement phases.
func (p *Pager) ResetStats() { p.stats = Stats{} }

// Alloc creates a new zeroed page, resident in the pool and pinned once.
// The caller must Unpin it when done mutating.
func (p *Pager) Alloc() (PageID, []byte, error) {
	p.nextID++
	id := p.nextID
	p.stats.Allocs++
	f, err := p.install(id, make([]byte, p.pageSize))
	if err != nil {
		return 0, nil, err
	}
	f.dirty = true // a fresh page must reach "disk" eventually
	f.pins++
	return id, f.data, nil
}

// Read pins the page into the pool and returns its contents. Mutations of
// the returned slice are only persisted if the caller also calls
// MarkDirty before Unpin. A checksum mismatch on the disk read is
// reported as a *CorruptError.
func (p *Pager) Read(id PageID) ([]byte, error) {
	f, err := p.fetch(id)
	if err != nil {
		return nil, err
	}
	f.pins++
	return f.data, nil
}

// MarkDirty records that the page's pooled contents differ from disk.
func (p *Pager) MarkDirty(id PageID) error {
	f, ok := p.frames[id]
	if !ok {
		return fmt.Errorf("pager: MarkDirty of non-resident page %d", id)
	}
	f.dirty = true
	return nil
}

// Unpin releases one pin on the page, making it evictable when the count
// reaches zero.
func (p *Pager) Unpin(id PageID) error {
	f, ok := p.frames[id]
	if !ok {
		return fmt.Errorf("pager: Unpin of non-resident page %d", id)
	}
	if f.pins == 0 {
		return fmt.Errorf("pager: Unpin of unpinned page %d", id)
	}
	f.pins--
	return nil
}

// Free releases a page entirely: it is dropped from the pool (without
// write-back) and from the disk. Freeing a pinned page is an error.
func (p *Pager) Free(id PageID) error {
	if f, ok := p.frames[id]; ok {
		if f.pins > 0 {
			return fmt.Errorf("pager: Free of pinned page %d", id)
		}
		p.lru.Remove(f.elem)
		delete(p.frames, id)
	}
	if _, err := p.disk.FreePage(id); err != nil {
		return err
	}
	// Page may be resident-only (never written back) — that is still a
	// legitimate free as long as it was allocated.
	p.stats.Frees++
	return nil
}

// Flush writes every dirty pooled page back to disk, in PageID order so
// fault schedules replay deterministically. Every dirty page is
// attempted even after one fails, so a partial flush leaves the
// smallest possible set of unsynced pages; the errors are joined, each
// naming its page, which is how checkpointing reports exactly what is
// not yet durable.
func (p *Pager) Flush() error {
	ids := make([]PageID, 0, len(p.frames))
	for id, f := range p.frames {
		if f.dirty {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var errs []error
	for _, id := range ids {
		if err := p.writeBack(p.frames[id]); err != nil {
			errs = append(errs, fmt.Errorf("pager: flush of page %d: %w", id, err))
		}
	}
	return errors.Join(errs...)
}

// Sync forces the backend to persist written pages to stable media
// (a no-op for the in-memory disk). It does not write back dirty pool
// pages — call Flush first.
func (p *Pager) Sync() error { return p.disk.Sync() }

// Close flushes dirty pages and releases the backend. The pager must
// not be used afterwards.
func (p *Pager) Close() error {
	ferr := p.Flush()
	cerr := p.disk.Close()
	return errors.Join(ferr, cerr)
}

// CloseNoFlush releases the backend without writing back dirty pool
// pages — the "process died" close used after a simulated crash:
// whatever reached disk before the crash stays exactly as it is.
func (p *Pager) CloseNoFlush() error { return p.disk.Close() }

// Resident reports whether the page is currently in the buffer pool.
func (p *Pager) Resident(id PageID) bool {
	_, ok := p.frames[id]
	return ok
}

// DiskPages returns every page currently stored by the backend, in
// ascending order. Recovery uses it to find (and free) checkpoint pages
// a crash left unreferenced.
func (p *Pager) DiskPages() ([]PageID, error) { return p.disk.IDs() }

// FlipBit flips one bit of the on-disk copy of a page without updating
// its checksum — the bit-rot hook for tests and fault drills. The next
// disk read of the page fails with a *CorruptError.
func (p *Pager) FlipBit(id PageID, bit int) error {
	data, sum, err := p.disk.ReadPage(id)
	if err != nil {
		return fmt.Errorf("pager: FlipBit of page %d not on disk", id)
	}
	if bit < 0 || bit >= 8*len(data) {
		return fmt.Errorf("pager: bit %d outside page of %d bytes", bit, len(data))
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	buf[bit/8] ^= 1 << (bit % 8)
	return p.disk.WritePage(id, buf, sum)
}

// Scrub re-seals the checksum of every on-disk page whose stored
// checksum no longer matches its bytes and returns the repaired IDs in
// ascending order. It models the recovery step a deployment performs
// once corruption is detected, fsck-style: the page's current bytes
// are accepted as truth and re-sealed. No original bytes come back —
// safe for the I/O-cost-proxy pages of the bulk loader, and surfaced
// (never hidden) for checkpoint pages, whose recovery path re-verifies
// a whole-snapshot checksum after reassembly. The chaos harness calls
// it to prove the system resumes cleanly after torn writes and bit rot.
func (p *Pager) Scrub() ([]PageID, error) {
	ids, err := p.disk.IDs()
	if err != nil {
		return nil, err
	}
	var repaired []PageID
	for _, id := range ids {
		data, sum, err := p.disk.ReadPage(id)
		if err != nil {
			return repaired, err
		}
		if got := crc32.Checksum(data, crcTable); got != sum {
			buf := make([]byte, len(data))
			copy(buf, data)
			if err := p.disk.WritePage(id, buf, got); err != nil {
				return repaired, err
			}
			repaired = append(repaired, id)
		}
	}
	return repaired, nil
}

// VerifyPages checks every at-rest page against its sealed checksum
// without repairing anything, returning the IDs that fail in ascending
// order alongside the number of pages scanned. Unlike Scrub it never
// rewrites bytes: a caller that owns redundancy for its pages (a
// checkpoint manifest plus a WAL, a replica) detects rot here and
// repairs from the authoritative copy instead of accepting the rotted
// bytes as truth. The scan reads the disk directly — buffer-pool
// residency and the fault policy are bypassed, like FlipBit and Scrub —
// so it sees exactly what a reopening process would.
func (p *Pager) VerifyPages() (scanned int, corrupt []PageID, err error) {
	ids, err := p.disk.IDs()
	if err != nil {
		return 0, nil, err
	}
	for _, id := range ids {
		data, sum, err := p.disk.ReadPage(id)
		if err != nil {
			return scanned, corrupt, err
		}
		scanned++
		if got := crc32.Checksum(data, crcTable); got != sum {
			corrupt = append(corrupt, id)
		}
	}
	return scanned, corrupt, nil
}

// fetch returns the frame for id, reading it from disk if necessary and
// evicting an unpinned page if the pool is full.
func (p *Pager) fetch(id PageID) (*frame, error) {
	if f, ok := p.frames[id]; ok {
		p.stats.Hits++
		p.lru.MoveToFront(f.elem)
		return f, nil
	}
	if p.fault != nil {
		if err := p.fault.BeforeRead(id); err != nil {
			return nil, err
		}
	}
	data, sum, err := p.disk.ReadPage(id)
	if err != nil {
		return nil, err
	}
	p.stats.Reads++
	if got := crc32.Checksum(data, crcTable); got != sum {
		return nil, &CorruptError{Page: id, Want: sum, Got: got}
	}
	buf := make([]byte, p.pageSize)
	copy(buf, data)
	return p.install(id, buf)
}

// install places data in the pool under id, evicting if needed.
func (p *Pager) install(id PageID, data []byte) (*frame, error) {
	for len(p.frames) >= p.poolPages {
		if err := p.evictOne(); err != nil {
			return nil, err
		}
	}
	f := &frame{id: id, data: data}
	f.elem = p.lru.PushFront(f)
	p.frames[id] = f
	return f, nil
}

// evictOne removes the least recently used unpinned page, writing it back
// if dirty.
func (p *Pager) evictOne() error {
	for e := p.lru.Back(); e != nil; e = e.Prev() {
		f := e.Value.(*frame)
		if f.pins > 0 {
			continue
		}
		if f.dirty {
			if err := p.writeBack(f); err != nil {
				return err
			}
		}
		p.lru.Remove(f.elem)
		delete(p.frames, f.id)
		return nil
	}
	return fmt.Errorf("pager: buffer pool of %d pages exhausted by pinned pages", p.poolPages)
}

// writeBack persists a frame to the disk. The checksum is sealed over
// the intended bytes before the fault policy gets a chance to corrupt
// them — a torn or rotted write therefore lands under a stale checksum
// and is detected on the next read, never silently returned.
func (p *Pager) writeBack(f *frame) error {
	if p.fault != nil {
		if err := p.fault.BeforeWrite(f.id); err != nil {
			return err
		}
	}
	buf := make([]byte, p.pageSize)
	copy(buf, f.data)
	sum := crc32.Checksum(buf, crcTable)
	if p.fault != nil {
		p.fault.CorruptWrite(f.id, buf)
	}
	if err := p.disk.WritePage(f.id, buf, sum); err != nil {
		return err
	}
	p.stats.Writes++
	f.dirty = false
	return nil
}
