package pager

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func newFilePager(t *testing.T, pageSize, pool int) (*Pager, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "pages.db")
	d, err := CreateDiskFile(path, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewWithDisk(pageSize, pool, d)
	if err != nil {
		t.Fatal(err)
	}
	return p, path
}

func TestDiskFilePersistsAcrossReopen(t *testing.T) {
	p, path := newFilePager(t, 32, 4)
	var ids []PageID
	for i := 0; i < 6; i++ {
		id, data, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		data[0] = byte('A' + i)
		p.Unpin(id)
		ids = append(ids, id)
	}
	// Free one page so the reopen sees a hole.
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(ids[2]); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	d, err := OpenDiskFile(path, 32)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewWithDisk(32, 4, d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p2.DiskPages()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("reopened disk has %d pages, want 5: %v", len(got), got)
	}
	for i, id := range ids {
		if i == 2 {
			if _, err := p2.Read(id); !errors.Is(err, ErrUnknownPage) {
				t.Fatalf("freed page %d: err = %v, want ErrUnknownPage", id, err)
			}
			continue
		}
		data, err := p2.Read(id)
		if err != nil {
			t.Fatalf("page %d: %v", id, err)
		}
		if data[0] != byte('A'+i) {
			t.Fatalf("page %d payload = %q, want %q", id, data[0], byte('A'+i))
		}
		p2.Unpin(id)
	}
	// Allocation resumes past the persisted IDs.
	id, _, err := p2.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if id <= ids[len(ids)-1] {
		t.Fatalf("new page %d not past persisted max %d", id, ids[len(ids)-1])
	}
	p2.Unpin(id)
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDiskFileDetectsOnDiskDamage(t *testing.T) {
	p, path := newFilePager(t, 32, 2)
	id, data, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	copy(data, []byte("hello"))
	p.Unpin(id)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte directly in the file, behind the pager's back.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	d, err := OpenDiskFile(path, 0) // page size from header
	if err != nil {
		t.Fatal(err)
	}
	if d.PageSize() != 32 {
		t.Fatalf("header page size = %d", d.PageSize())
	}
	p2, err := NewWithDisk(32, 2, d)
	if err != nil {
		t.Fatal(err)
	}
	var ce *CorruptError
	if _, err := p2.Read(id); !errors.As(err, &ce) {
		t.Fatalf("read of damaged page: %v, want CorruptError", err)
	}
	// Scrub accepts the bytes as truth; the page reads again.
	repaired, err := p2.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(repaired) != 1 || repaired[0] != id {
		t.Fatalf("scrub repaired %v", repaired)
	}
	if _, err := p2.Read(id); err != nil {
		t.Fatal(err)
	}
	p2.Unpin(id)
	p2.Close()
}

func TestDiskFileTruncatedSlotSurfacesAsCorrupt(t *testing.T) {
	p, path := newFilePager(t, 64, 2)
	id, data, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		data[i] = 0xAB
	}
	p.Unpin(id)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the slot: keep the state byte and checksum but cut the
	// payload tail, as a crash mid-write would.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-20], 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDiskFile(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewWithDisk(64, 2, d)
	if err != nil {
		t.Fatal(err)
	}
	var ce *CorruptError
	if _, err := p2.Read(id); !errors.As(err, &ce) {
		t.Fatalf("read of torn page: %v, want CorruptError", err)
	}
	p2.Close()
}

func TestOpenDiskFileRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "not-a-pagefile")
	if err := os.WriteFile(path, []byte("hello world, definitely not pages"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDiskFile(path, 0); err == nil {
		t.Fatal("garbage file accepted as page file")
	}
	if _, err := OpenDiskFile(filepath.Join(dir, "missing"), 0); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestFlushAttemptsEveryPage asserts the joined-error contract: a
// failing write-back does not stop the flush, every dirty page is
// attempted, and the error names each failed page.
func TestFlushAttemptsEveryPage(t *testing.T) {
	errBoom := errors.New("boom")
	p := mustNew(t, 16, 8)
	var ids []PageID
	for i := 0; i < 4; i++ {
		id, _, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		p.Unpin(id)
		ids = append(ids, id)
	}
	// Fail write-backs 1 and 3 (PageID order): pages 1 and 3 stay dirty,
	// pages 2 and 4 reach disk.
	p.SetFaultPolicy(&scriptedFaults{failWrites: map[int]error{1: errBoom, 3: errBoom}})
	err := p.Flush()
	if err == nil {
		t.Fatal("flush with two failing pages returned nil")
	}
	if !errors.Is(err, errBoom) {
		t.Fatalf("joined error loses cause: %v", err)
	}
	for _, id := range []PageID{ids[0], ids[2]} {
		if want := "page " + string('0'+byte(id)); !containsStr(err.Error(), want) {
			t.Errorf("error %q does not name %s", err, want)
		}
	}
	// The two pages that did write are clean: a retry flush (faults
	// cleared) writes exactly the two that failed.
	p.SetFaultPolicy(nil)
	before := p.Stats().Writes
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().Writes - before; got != 2 {
		t.Fatalf("retry flush wrote %d pages, want 2", got)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
