package pager

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
)

// DiskFile is a file-backed Disk: sealed pages persisted to one flat
// file so they survive process death. It is the backend under the
// durability subsystem's checkpoints (internal/wal); the in-memory
// simulation remains the default everywhere else.
//
// Layout: a 16-byte header (magic, format version, page size), then
// fixed-width slots, one per PageID starting at 1. Each slot is
//
//	[state byte: 0 free, 1 used][checksum uint32 LE][payload pageSize bytes]
//
// The checksum stored in the slot is the seal the pager computed at
// write-back; DiskFile never re-checksums, so damage to the file —
// torn slot writes, bit rot, truncation inside a payload — surfaces on
// the next ReadPage exactly like the in-memory backend's injected
// faults: as a *CorruptError from the pager. A slot whose state byte
// never reached disk reads as free, i.e. an unknown page, which the
// recovery path treats as an incomplete checkpoint.
type DiskFile struct {
	f        *os.File
	pageSize int
	used     map[PageID]bool
	maxID    PageID
}

const (
	diskFileMagic   = "SPGD"
	diskFileVersion = 1
	diskHeaderSize  = 16
)

// CreateDiskFile creates (truncating) a page file for the given page
// size.
func CreateDiskFile(path string, pageSize int) (*DiskFile, error) {
	if pageSize <= 0 {
		return nil, fmt.Errorf("pager: page size %d must be positive", pageSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	var hdr [diskHeaderSize]byte
	copy(hdr[:4], diskFileMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], diskFileVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(pageSize))
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, err
	}
	return &DiskFile{f: f, pageSize: pageSize, used: make(map[PageID]bool)}, nil
}

// OpenDiskFile opens an existing page file, validating its header and
// scanning the slots to rebuild the set of stored pages. The page size
// is read from the header; wantPageSize, when nonzero, must match it.
func OpenDiskFile(path string, wantPageSize int) (*DiskFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	var hdr [diskHeaderSize]byte
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, diskHeaderSize), hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("pager: %s: short header: %w", path, err)
	}
	if string(hdr[:4]) != diskFileMagic {
		f.Close()
		return nil, fmt.Errorf("pager: %s is not a page file", path)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != diskFileVersion {
		f.Close()
		return nil, fmt.Errorf("pager: %s: unsupported page file version %d", path, v)
	}
	pageSize := int(binary.LittleEndian.Uint32(hdr[8:12]))
	if pageSize <= 0 {
		f.Close()
		return nil, fmt.Errorf("pager: %s: invalid page size %d", path, pageSize)
	}
	if wantPageSize != 0 && wantPageSize != pageSize {
		f.Close()
		return nil, fmt.Errorf("pager: %s: page size %d, want %d", path, pageSize, wantPageSize)
	}
	d := &DiskFile{f: f, pageSize: pageSize, used: make(map[PageID]bool)}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, err
	}
	state := make([]byte, 1)
	for id := PageID(1); d.slotOffset(id) < size; id++ {
		if _, err := f.ReadAt(state, d.slotOffset(id)); err != nil {
			f.Close()
			return nil, fmt.Errorf("pager: %s: scanning slot %d: %w", path, id, err)
		}
		// A slot that exists in the file but holds a truncated payload
		// still scans as used; the truncated tail reads as zero bytes
		// under the sealed checksum and fails verification on ReadPage.
		if state[0] == 1 {
			d.used[id] = true
		}
		if id > d.maxID {
			d.maxID = id
		}
	}
	return d, nil
}

// slotSize is the on-disk footprint of one page slot.
func (d *DiskFile) slotSize() int64 { return int64(1 + 4 + d.pageSize) }

// slotOffset is the file offset of the slot for id.
func (d *DiskFile) slotOffset(id PageID) int64 {
	return diskHeaderSize + int64(id-1)*d.slotSize()
}

// PageSize returns the page size recorded in the file header.
func (d *DiskFile) PageSize() int { return d.pageSize }

// ReadPage implements Disk.
func (d *DiskFile) ReadPage(id PageID) ([]byte, uint32, error) {
	if id < 1 || !d.used[id] {
		return nil, 0, fmt.Errorf("%w: page %d", ErrUnknownPage, id)
	}
	buf := make([]byte, d.slotSize())
	n, err := d.f.ReadAt(buf, d.slotOffset(id))
	if err != nil && err != io.EOF {
		return nil, 0, fmt.Errorf("pager: reading page %d: %w", id, err)
	}
	// A short read (file truncated inside the slot) leaves the payload
	// tail zeroed; the sealed checksum then fails upstream, which is the
	// correct surfacing of a torn page — never an invented success.
	for i := n; i < len(buf); i++ {
		buf[i] = 0
	}
	sum := binary.LittleEndian.Uint32(buf[1:5])
	return buf[5:], sum, nil
}

// WritePage implements Disk.
func (d *DiskFile) WritePage(id PageID, data []byte, sum uint32) error {
	if id < 1 {
		return fmt.Errorf("pager: write of invalid page %d", id)
	}
	if len(data) != d.pageSize {
		return fmt.Errorf("pager: write of %d bytes to page %d, page size %d", len(data), id, d.pageSize)
	}
	buf := make([]byte, d.slotSize())
	buf[0] = 1
	binary.LittleEndian.PutUint32(buf[1:5], sum)
	copy(buf[5:], data)
	if _, err := d.f.WriteAt(buf, d.slotOffset(id)); err != nil {
		return fmt.Errorf("pager: writing page %d: %w", id, err)
	}
	d.used[id] = true
	if id > d.maxID {
		d.maxID = id
	}
	return nil
}

// FreePage implements Disk. The slot's state byte is cleared in place;
// the payload bytes are left behind, exactly like a real filesystem's
// freed blocks.
func (d *DiskFile) FreePage(id PageID) (bool, error) {
	if id < 1 || !d.used[id] {
		return false, nil
	}
	if _, err := d.f.WriteAt([]byte{0}, d.slotOffset(id)); err != nil {
		return false, fmt.Errorf("pager: freeing page %d: %w", id, err)
	}
	delete(d.used, id)
	return true, nil
}

// IDs implements Disk.
func (d *DiskFile) IDs() ([]PageID, error) {
	ids := make([]PageID, 0, len(d.used))
	for id := range d.used {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// MaxID implements Disk.
func (d *DiskFile) MaxID() (PageID, error) { return d.maxID, nil }

// Sync implements Disk: fsync the page file.
func (d *DiskFile) Sync() error { return d.f.Sync() }

// Close implements Disk.
func (d *DiskFile) Close() error { return d.f.Close() }
