// Package kparam enforces the domain's most basic precondition: an
// anonymity parameter below 2 is not anonymity. k = 1 puts every record
// in its own equivalence class — the "anonymized" release is the
// original table — and nothing in the type system stops a caller from
// asking for it. Every place a k enters the system must therefore have
// a validation path that rejects k < 2.
package kparam

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"spatialanon/internal/lint/analysis"
)

// Analyzer flags anonymity parameters without a k < 2 rejection path.
//
// Two trigger shapes:
//
//  1. A struct type declaring an integer field named K or BaseK that
//     the package reads (a write-only field is a descriptive output —
//     experiment result rows record the k they ran under — and cannot
//     direct anonymization). The declaring package must either give
//     the struct a *Validate* method or compare that field against
//     the literal 2 somewhere in non-test code. Structs whose field
//     merely echoes an already-validated parameter (result rows that
//     are read back when rendering tables) may carry the
//     "anonylint:k-validated" directive on the type declaration,
//     naming where the real check happens.
//
//  2. A function with an integer parameter named k that feeds it into
//     a composite literal's K/BaseK field (constructing a constraint
//     or config). The function body must compare k against the
//     literal 2, unless its doc comment carries the directive
//     "anonylint:k-validated" naming where the check happens.
var Analyzer = &analysis.Analyzer{
	Name: "kparam",
	Doc: "flag anonymity parameters accepted without a k < 2 rejection path\n\n" +
		"k-anonymity with k < 2 is the identity function wearing a\n" +
		"privacy label. Constructors and config structs that accept a\n" +
		"k must validate it; this analyzer proves the validation exists\n" +
		"rather than trusting every caller to remember.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	checkStructs(pass)
	checkFuncs(pass)
	return nil
}

// kFieldNames are the field spellings treated as anonymity parameters.
var kFieldNames = map[string]bool{"K": true, "BaseK": true}

// checkStructs applies trigger shape 1.
func checkStructs(pass *analysis.Pass) {
	type kField struct {
		structName string
		fieldName  string
		pos        token.Pos
	}
	var fields []kField
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				// The doc comment attaches to the TypeSpec in a grouped
				// declaration, but to the GenDecl for the common
				// single-spec `type Name struct { ... }` form.
				if analysis.DeclDirective(ts.Doc, "anonylint:k-validated") ||
					(len(gd.Specs) == 1 && analysis.DeclDirective(gd.Doc, "anonylint:k-validated")) {
					continue
				}
				for _, field := range st.Fields.List {
					if !isIntType(pass.TypesInfo.TypeOf(field.Type)) {
						continue
					}
					for _, name := range field.Names {
						if kFieldNames[name.Name] {
							fields = append(fields, kField{ts.Name.Name, name.Name, name.Pos()})
						}
					}
				}
			}
		}
	}
	if len(fields) == 0 {
		return
	}
	validatedStructs := structsWithValidateMethod(pass)
	for _, kf := range fields {
		if !fieldIsRead(pass, kf.structName, kf.fieldName) {
			continue
		}
		if validatedStructs[kf.structName] {
			continue
		}
		if fieldComparedToTwo(pass, kf.structName, kf.fieldName) {
			continue
		}
		pass.Reportf(kf.pos,
			"kparam: struct %s carries anonymity parameter %s but the package has no validation path rejecting %s < 2 (add a Validate method, an explicit comparison, or mark the type anonylint:k-validated)",
			kf.structName, kf.fieldName, kf.fieldName)
	}
}

// structsWithValidateMethod returns the names of struct types that have
// a method whose name contains "Validate" or "validate".
func structsWithValidateMethod(pass *analysis.Pass) map[string]bool {
	out := make(map[string]bool)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			lower := strings.ToLower(fd.Name.Name)
			if !strings.Contains(lower, "validate") {
				continue
			}
			if name := receiverTypeName(fd.Recv.List[0].Type); name != "" {
				out[name] = true
			}
		}
	}
	return out
}

func receiverTypeName(expr ast.Expr) string {
	switch t := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return receiverTypeName(t.X)
	case *ast.IndexExpr: // generic receiver
		return receiverTypeName(t.X)
	}
	return ""
}

// fieldComparedToTwo reports whether any non-test code in the package
// compares a selector .<fieldName> on type structName against the
// constant 2.
func fieldComparedToTwo(pass *analysis.Pass, structName, fieldName string) bool {
	found := false
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || !isComparison(be.Op) {
				return true
			}
			if (selectsField(pass, be.X, structName, fieldName) && isConstTwo(pass, be.Y)) ||
				(selectsField(pass, be.Y, structName, fieldName) && isConstTwo(pass, be.X)) {
				found = true
			}
			return !found
		})
		if found {
			break
		}
	}
	return found
}

// fieldIsRead reports whether the package reads the field anywhere: a
// matching selector that is not purely the target of a plain
// assignment. Op-assignments read before writing and count as reads.
func fieldIsRead(pass *analysis.Pass, structName, fieldName string) bool {
	writes := make(map[*ast.SelectorExpr]bool)
	read := false
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.ASSIGN {
				for _, lhs := range as.Lhs {
					if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
						writes[sel] = true
					}
				}
			}
			return true
		})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || writes[sel] {
				return true
			}
			if selectsField(pass, sel, structName, fieldName) {
				read = true
			}
			return !read
		})
		if read {
			break
		}
	}
	return read
}

func isComparison(op token.Token) bool {
	switch op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		return true
	}
	return false
}

func selectsField(pass *analysis.Pass, expr ast.Expr, structName, fieldName string) bool {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != fieldName {
		return false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == structName
}

func isConstTwo(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(expr)]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return false
	}
	v, ok := constant.Int64Val(tv.Value)
	return ok && v == 2
}

// checkFuncs applies trigger shape 2.
func checkFuncs(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if analysis.DeclDirective(fd.Doc, "anonylint:k-validated") {
				continue
			}
			for _, param := range fd.Type.Params.List {
				if !isIntType(pass.TypesInfo.TypeOf(param.Type)) {
					continue
				}
				for _, name := range param.Names {
					if name.Name != "k" && name.Name != "K" {
						continue
					}
					obj := pass.TypesInfo.Defs[name]
					if obj == nil {
						continue
					}
					if !feedsKField(pass, fd.Body, obj) {
						continue
					}
					if !comparedToTwo(pass, fd.Body, obj) {
						pass.Reportf(name.Pos(),
							"kparam: parameter %s flows into an anonymity field but %s is never compared against 2 in this function; reject %s < 2 or mark the decl anonylint:k-validated",
							name.Name, name.Name, name.Name)
					}
				}
			}
		}
	}
}

// feedsKField reports whether obj is used as the value of a K/BaseK
// field in any composite literal within body.
func feedsKField(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		kv, ok := n.(*ast.KeyValueExpr)
		if !ok {
			return true
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || !kFieldNames[key.Name] {
			return true
		}
		ast.Inspect(kv.Value, func(v ast.Node) bool {
			if id, ok := v.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				found = true
			}
			return !found
		})
		return !found
	})
	return found
}

// comparedToTwo reports whether body compares obj against constant 2.
func comparedToTwo(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	usesObj := func(expr ast.Expr) bool {
		id, ok := ast.Unparen(expr).(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == obj
	}
	ast.Inspect(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || !isComparison(be.Op) {
			return true
		}
		if (usesObj(be.X) && isConstTwo(pass, be.Y)) || (usesObj(be.Y) && isConstTwo(pass, be.X)) {
			found = true
		}
		return !found
	})
	return found
}

func isIntType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
