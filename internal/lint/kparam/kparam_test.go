package kparam_test

import (
	"testing"

	"spatialanon/internal/lint/analysistest"
	"spatialanon/internal/lint/kparam"
)

func TestKParam(t *testing.T) {
	analysistest.Run(t, kparam.Analyzer, "kparam")
}
