// Package fixture exercises the kparam analyzer: anonymity parameters
// (K/BaseK fields, k parameters feeding them) must have a validation
// path rejecting k < 2 — a Validate method, an explicit comparison, or
// a reviewable anonylint:k-validated directive.
package fixture

import "errors"

// BadConfig reads its K but the package never validates it.
type BadConfig struct {
	K int // want `kparam: struct BadConfig carries anonymity parameter K`
}

func useBad(c BadConfig) int { return c.K * 3 }

// GoodConfig carries a Validate method.
type GoodConfig struct {
	K int
}

// Validate rejects k below 2.
func (c GoodConfig) Validate() error {
	if c.K < 2 {
		return errors.New("k provides no anonymity")
	}
	return nil
}

// ComparedConfig is validated by an explicit comparison elsewhere in
// the package.
type ComparedConfig struct {
	BaseK int
}

func checkCompared(c ComparedConfig) error {
	if c.BaseK < 2 {
		return errors.New("base k provides no anonymity")
	}
	return nil
}

// ResultRow only records the k a run used — the field is write-only in
// this package, so it cannot direct anonymization.
type ResultRow struct {
	K int
}

func fill(k int) ResultRow {
	var r ResultRow
	r.K = k
	return r
}

// RenderedRow echoes an already validated parameter for rendering;
// anonylint:k-validated (GoodConfig.Validate rejects k < 2 upstream).
type RenderedRow struct {
	K int
}

func render(r RenderedRow) int { return r.K }

// newUnchecked feeds k straight into a config without rejecting k < 2.
func newUnchecked(k int) GoodConfig { // want `kparam: parameter k flows into an anonymity field`
	return GoodConfig{K: k}
}

// newChecked validates before constructing.
func newChecked(k int) (GoodConfig, error) {
	if k < 2 {
		return GoodConfig{}, errors.New("k provides no anonymity")
	}
	return GoodConfig{K: k}, nil
}

// newTrusted is called only with granularities a validated config
// produced; anonylint:k-validated (newChecked rejects k < 2).
func newTrusted(k int) GoodConfig {
	return GoodConfig{K: k}
}

// scale takes an int named k that never reaches an anonymity field.
func scale(k int) int { return k * 10 }
