package panicpolicy_test

import (
	"testing"

	"spatialanon/internal/lint/analysistest"
	"spatialanon/internal/lint/panicpolicy"
)

func TestPanicPolicy(t *testing.T) {
	analysistest.Run(t, panicpolicy.Analyzer, "panicpolicy")
}
