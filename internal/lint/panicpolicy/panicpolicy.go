// Package panicpolicy enforces the repository's failure-semantics
// contract (PR 1, DESIGN.md "Failure semantics"): library code returns
// errors; it does not panic and it does not call log.Fatal. The only
// admitted panics are provable programmer errors — and those must say
// so, with an "invariant:" comment at the call site, so the claim is
// reviewable rather than implicit.
package panicpolicy

import (
	"go/ast"
	"go/types"

	"spatialanon/internal/lint/analysis"
)

// Analyzer flags panic and log.Fatal* / log.Panic* calls that carry no
// "invariant:" justification comment on the call line or within the
// two lines above it. The multichecker applies it to internal/ library
// packages; commands remain free to log.Fatal on startup errors.
var Analyzer = &analysis.Analyzer{
	Name: "panicpolicy",
	Doc: "flag unjustified panics in library packages\n\n" +
		"Library code must return errors (PR 1's failure-semantics\n" +
		"contract): faults are injectable, data is hostile, and a panic\n" +
		"in a library turns a recoverable I/O error into a crashed\n" +
		"process. panic is allowed only for provable programmer errors,\n" +
		"and each such site must carry an 'invariant:' comment stating\n" +
		"the proof obligation. log.Fatal and friends are never allowed\n" +
		"in libraries: they hide an os.Exit behind a log line.",
	Run: run,
}

// fatalFuncs are the "log" package functions that terminate or panic.
var fatalFuncs = map[string]bool{
	"Fatal": true, "Fatalf": true, "Fatalln": true,
	"Panic": true, "Panicf": true, "Panicln": true,
}

// justifyWindow is how many lines above a call an "invariant:" comment
// may sit and still justify it: the line itself plus two above, which
// admits the idiomatic short block comment directly over the call.
const justifyWindow = 2

func run(pass *analysis.Pass) error {
	marked := pass.CommentLines("invariant:")
	for _, f := range pass.Files {
		lines := marked[f]
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var what string
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok && b.Name() == "panic" {
					what = "panic"
				}
			case *ast.SelectorExpr:
				if fatalFuncs[fun.Sel.Name] && pass.IsPkgName(fun.X, "log") {
					what = "log." + fun.Sel.Name
				}
			}
			if what == "" {
				return true
			}
			line := pass.Fset.Position(call.Pos()).Line
			for l := line - justifyWindow; l <= line; l++ {
				if lines[l] {
					return true
				}
			}
			pass.Reportf(call.Pos(),
				"panicpolicy: %s in library code without an invariant: justification comment; return an error, or state the provable programmer error", what)
			return true
		})
	}
	return nil
}
