// Package fixture exercises the panicpolicy analyzer: library panics
// and log.Fatal* calls are flagged unless an invariant: comment states
// the provable programmer error.
package fixture

import (
	"errors"
	"log"
)

func bad(x int) int {
	if x < 0 {
		panic("negative") // want `panicpolicy: panic in library code without an .* justification comment`
	}
	return x
}

func badLog(err error) {
	if err != nil {
		log.Fatalf("fatal: %v", err) // want `panicpolicy: log\.Fatalf in library code`
	}
}

func badLogPanic(err error) {
	if err != nil {
		log.Panicln(err) // want `panicpolicy: log\.Panicln in library code`
	}
}

func good(x int) (int, error) {
	if x < 0 {
		return 0, errors.New("negative input")
	}
	return x, nil
}

func justified(x int) int {
	if x < 0 {
		// invariant: every caller derives x from len(), so a negative
		// value is a provable programmer error, never runtime input.
		panic("negative")
	}
	return x
}

func justifiedSameLine(x int) int {
	if x < 0 {
		panic("negative") // invariant: x is a slice length by construction
	}
	return x
}

func logging(err error) {
	if err != nil {
		log.Printf("warn: %v", err) // Printf does not terminate the process
	}
}
