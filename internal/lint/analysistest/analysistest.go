// Package analysistest runs an analyzer over fixture packages and
// checks its findings against expectations written in the fixture
// source — the same golden-comment convention as
// golang.org/x/tools/go/analysis/analysistest, reimplemented on the
// project's self-contained analysis framework.
//
// A fixture line states its expected findings with a trailing comment:
//
//	rng := rand.Intn(10) // want `detrand: global math/rand`
//
// Each back-quoted or double-quoted string after "want" is a regular
// expression that must match the message of exactly one finding
// reported on that line. Lines without a want comment must produce no
// findings. Fixtures live in testdata/src/<name> under the analyzer's
// package directory, are full compilable packages, and may import real
// project packages — the loader resolves module-local imports as long
// as the test runs inside the module, which `go test` guarantees.
package analysistest

import (
	"fmt"
	"go/scanner"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"spatialanon/internal/lint/analysis"
	"spatialanon/internal/lint/load"
)

// Run applies a to the fixture package testdata/src/<fixture> and
// reports mismatches between expected and actual findings through t.
func Run(t *testing.T, a *analysis.Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	pkg, err := load.NewLoader().Dir(dir, "spatialanon/lintfixture/"+fixture)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	if pkg == nil {
		t.Fatalf("fixture %s has no Go files", fixture)
	}
	diags, err := analysis.Run(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, fixture, err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pats, err := parseWant(c.Text)
				if err != nil {
					t.Fatalf("%s: %v", pkg.Fset.Position(c.Pos()), err)
				}
				if len(pats) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{filepath.Base(pos.Filename), pos.Line}
				wants[k] = append(wants[k], pats...)
			}
		}
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := key{filepath.Base(pos.Filename), pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re != nil && re.MatchString(d.Message) {
				wants[k][i] = nil // consume
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected finding: %s: %s", pos, d.Analyzer, d.Message)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			if re != nil {
				t.Errorf("%s:%d: expected finding matching %q, got none", k.file, k.line, re)
			}
		}
	}
}

// parseWant extracts the expectation regexps from one comment's text,
// returning nil when the comment is not a want comment.
func parseWant(text string) ([]*regexp.Regexp, error) {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	rest, ok := strings.CutPrefix(text, "want ")
	if !ok {
		return nil, nil
	}
	var out []*regexp.Regexp
	var sc scanner.Scanner
	fset := token.NewFileSet()
	file := fset.AddFile("want", -1, len(rest))
	sc.Init(file, []byte(rest), nil, 0)
	for {
		_, tok, lit := sc.Scan()
		if tok == token.EOF || tok == token.SEMICOLON {
			break
		}
		if tok != token.STRING {
			return nil, fmt.Errorf("want comment: expected string literal, got %s %q", tok, lit)
		}
		s, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("want comment: bad string %s: %w", lit, err)
		}
		re, err := regexp.Compile(s)
		if err != nil {
			return nil, fmt.Errorf("want comment: bad regexp %q: %w", s, err)
		}
		out = append(out, re)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want comment carries no expectations")
	}
	return out, nil
}
