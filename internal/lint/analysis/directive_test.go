package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"spatialanon/internal/lint/analysis"
)

// mustParse parses src with comments, as the fixture loader does.
func mustParse(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing test source: %v", err)
	}
	return fset, f
}

// TestDirectiveLines pins the line-directive scanning rules every
// analyzer shares: which lines a marker covers, that a marker on the
// wrong line stays on the wrong line, that trailing justification text
// and duplicates are fine, and that directive-style comments —
// stripped by ast.CommentGroup.Text — are still seen.
func TestDirectiveLines(t *testing.T) {
	const src = `package fixture

func a() {
	x := 1 // anonylint:marked ordinary trailing comment form
	_ = x
}

func b() {
	// anonylint:marked — trailing justification text after the marker
	y := 2
	_ = y
}

func c() {
	//anonylint:marked directive form: Text() strips this line entirely
	z := 3
	_ = z
}

func d() {
	// anonylint:marked anonylint:marked duplicated on one line
	w := 4
	_ = w
}

func e() {
	// a marker on the wrong line must not bleed onto neighbors
	// anonylint:marked
	v := 5
	_ = v
}

/*
anonylint:marked
block comments cover every line they span
*/
func f() {}
`
	fset, file := mustParse(t, src)
	got := analysis.DirectiveLines(fset, file, "anonylint:marked")

	// Expected marked lines, by construction of src above:
	//   4: trailing comment on the statement line
	//   9: own-line comment with trailing text
	//  15: directive-style comment (raw-text match)
	//  21: duplicated marker, still just its own line
	//  27-28: e's comment group spans both lines — but NOT 29 (v := 5)
	//  33-36: the block comment's span
	want := map[int]bool{
		4: true, 9: true, 15: true, 21: true,
		27: true, 28: true,
		33: true, 34: true, 35: true, 36: true,
	}
	for l := range want {
		if !got[l] {
			t.Errorf("line %d: expected marked, got unmarked", l)
		}
	}
	for l := range got {
		if !want[l] {
			t.Errorf("line %d: marked unexpectedly", l)
		}
	}
	// The wrong-line case, stated explicitly: the statement line below
	// e's comment group is unmarked — a directive on the line above a
	// statement suppresses only what analyzers look up on ITS lines.
	if got[29] {
		t.Errorf("line 29: marker bled onto the statement below the comment group")
	}
	if n := len(analysis.DirectiveLines(fset, file, "anonylint:absent")); n != 0 {
		t.Errorf("absent marker matched %d lines, want 0", n)
	}
}

// declDoc returns the doc comment of the named type or function
// declaration in f.
func declDoc(t *testing.T, f *ast.File, name string) *ast.CommentGroup {
	t.Helper()
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *ast.FuncDecl:
			if d.Name.Name == name {
				return d.Doc
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != name {
					continue
				}
				if ts.Doc != nil {
					return ts.Doc
				}
				return d.Doc
			}
		}
	}
	t.Fatalf("declaration %s not found in test source", name)
	return nil
}

// TestDeclDirective pins the declaration-directive rules: directives in
// doc comments are found in raw-directive and prose form, trailing text
// and duplicates are fine, nil docs are false, and a directive inside a
// function body (the wrong place) does not mark the declaration.
func TestDeclDirective(t *testing.T) {
	const src = `package fixture

//anonylint:published
type Raw struct{}

// Prose carries the anonylint:published marker inline with text.
type Prose struct{}

//anonylint:published trailing justification text is the claim
//anonylint:published duplicated across lines
type Dup struct{}

type Unmarked struct{}

// wrongPlace has the directive in the body, not the doc.
func wrongPlace() {
	//anonylint:published
}
`
	_, f := mustParse(t, src)
	cases := []struct {
		name string
		want bool
	}{
		{"Raw", true},
		{"Prose", true},
		{"Dup", true},
		{"Unmarked", false},
		{"wrongPlace", false}, // directive inside the body, not the doc
	}
	for _, tc := range cases {
		if got := analysis.DeclDirective(declDoc(t, f, tc.name), "anonylint:published"); got != tc.want {
			t.Errorf("%s: DeclDirective = %v, want %v", tc.name, got, tc.want)
		}
	}
	if analysis.DeclDirective(nil, "anonylint:published") {
		t.Error("nil doc comment: DeclDirective = true, want false")
	}
}

// TestDirectiveInsideFixtureSource pins the interplay every analyzer
// fixture relies on: a fixture line may carry BOTH a suppression
// directive and analysistest want-expectations elsewhere, and the
// directive scanner must match its own marker only — a "// want"
// comment is not a directive, and a directive is not a want comment.
func TestDirectiveInsideFixtureSource(t *testing.T) {
	const src = `package fixture

func g(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // anonylint:map-ordered — the sum is exact
		total += v
	}
	return total
}

func h(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want ` + "`detrand: floating-point accumulation`" + `
	}
	return total
}
`
	fset, f := mustParse(t, src)
	ordered := analysis.DirectiveLines(fset, f, "anonylint:map-ordered")
	if !ordered[5] {
		t.Error("line 5: suppression directive inside fixture source not seen")
	}
	if len(ordered) != 1 {
		t.Errorf("map-ordered marked %d lines, want 1", len(ordered))
	}
	if wants := analysis.DirectiveLines(fset, f, "anonylint:"); wants[14] {
		t.Error("line 14: a want comment matched an anonylint: directive scan")
	}
}
