// Directive scanning shared by every anonylint analyzer.
//
// Analyzers take reviewable claims from source comments in two shapes:
//
//   - line directives, which suppress or qualify the statement on the
//     lines a comment group spans ("anonylint:map-ordered",
//     "anonylint:pre-publish", "anonylint:alloc-ok", "invariant: ...");
//   - declaration directives, which mark a whole function, method or
//     type ("anonylint:coordinator-only", "anonylint:zero-alloc",
//     "anonylint:published", "anonylint:k-validated").
//
// Both must be matched against the RAW comment text: Go's
// ast.CommentGroup.Text helpfully strips "//word:rest" directive-style
// lines, which is exactly the form every anonylint marker takes. Each
// analyzer used to carry its own copy of this subtlety; it now lives
// here once, with its edge cases (wrong line, trailing justification
// text, duplicate markers, markers inside fixture sources) pinned by
// table tests.
package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// DirectiveLines returns the set of source lines of f on which a
// comment containing marker appears. Every line spanned by a matching
// comment group is included — a block comment directly above a
// statement covers both its own lines and nothing else, so a directive
// on the wrong line does not suppress its neighbor. Trailing text
// after the marker ("anonylint:map-ordered — keys are sorted below")
// is allowed and encouraged: the justification is the reviewable part.
// Duplicate markers on one line are idempotent.
func DirectiveLines(fset *token.FileSet, f *ast.File, marker string) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range f.Comments {
		if !commentGroupContains(cg, marker) {
			continue
		}
		start := fset.Position(cg.Pos()).Line
		end := fset.Position(cg.End()).Line
		for l := start; l <= end; l++ {
			lines[l] = true
		}
	}
	return lines
}

// commentGroupContains reports whether any comment of the group
// carries marker, checking both the rendered text and the raw source
// form: cg.Text() strips comment markers and drops directive-style
// lines ("//anonylint:..." vanishes from Text entirely), so directives
// must be matched against each comment's raw text.
func commentGroupContains(cg *ast.CommentGroup, marker string) bool {
	if strings.Contains(cg.Text(), marker) {
		return true
	}
	for _, c := range cg.List {
		if strings.Contains(c.Text, marker) {
			return true
		}
	}
	return false
}

// DeclDirective reports whether a declaration's doc comment carries the
// given directive (for example "anonylint:coordinator-only"). Directive
// comments are matched on the raw text because ast.CommentGroup.Text
// strips "//word:rest" directive lines.
func DeclDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	return commentGroupContains(doc, directive)
}
