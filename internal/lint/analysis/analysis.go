// Package analysis is a self-contained miniature of
// golang.org/x/tools/go/analysis: the Analyzer / Pass / Diagnostic
// vocabulary the project's static checkers are written against.
//
// The real x/tools module is deliberately not a dependency — this
// repository builds with the standard library alone — so the subset
// needed by the anonylint suite is reimplemented here with the same
// shape. If the project ever grows a vendored x/tools, the analyzers
// in the sibling packages port mechanically: an Analyzer declares a
// name, a doc string and a Run function over a type-checked package,
// and Run reports findings through the Pass.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. By
	// convention it is a single lower-case word.
	Name string
	// Doc is the analyzer's documentation: first line summary, then the
	// precise rule, its exceptions and the invariant it protects.
	Doc string
	// Run applies the analyzer to one package, reporting findings via
	// pass.Reportf. The returned error is an analyzer malfunction
	// (could not complete), not a finding.
	Run func(*Pass) error
}

// Pass carries one analyzed package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed source files, with comments.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo carries the type-checker's results for Files.
	TypesInfo *types.Info

	diagnostics []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the findings reported so far, sorted by position
// so output order is independent of AST walk order.
func (p *Pass) Diagnostics() []Diagnostic {
	out := make([]Diagnostic, len(p.diagnostics))
	copy(out, p.diagnostics)
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// Run applies analyzer a to the package described by (fset, files, pkg,
// info) and returns its sorted findings.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	return pass.Diagnostics(), nil
}

// ---- shared AST/type helpers used by the concrete analyzers ----

// PkgFunc reports whether call is a direct call of the package-level
// function pkgPath.name (for example "time".Now), resolving the
// qualified identifier through the type-checker so import renames are
// handled.
func (p *Pass) PkgFunc(call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	return p.IsPkgName(sel.X, pkgPath)
}

// IsPkgName reports whether expr is an identifier naming the import of
// pkgPath.
func (p *Pass) IsPkgName(expr ast.Expr, pkgPath string) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

// ReceiverNamed returns the *types.Named of a method call's receiver
// type (pointers dereferenced), or nil when call is not a method call
// on a named type.
func (p *Pass) ReceiverNamed(call *ast.CallExpr) *types.Named {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	selection, ok := p.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return nil
	}
	t := selection.Recv()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// NamedPath returns "pkgpath.TypeName" for a named type.
func NamedPath(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// FuncDecls maps each package-level function and method object to its
// declaration, letting analyzers chase static same-package calls.
func (p *Pass) FuncDecls() map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj, ok := p.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				out[obj] = fd
			}
		}
	}
	return out
}

// StaticCallee resolves a call expression to the package-level function
// or method object it statically invokes, or nil for calls through
// interfaces, function values, builtins and conversions.
func (p *Pass) StaticCallee(call *ast.CallExpr) *types.Func {
	return p.StaticFunc(call.Fun)
}

// StaticFunc resolves a function-valued expression (a call's Fun, or a
// function reference passed as an argument) to the function or method
// object it statically names, or nil.
func (p *Pass) StaticFunc(fun ast.Expr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(fun).(type) {
	case *ast.Ident:
		obj = p.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := p.TypesInfo.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = p.TypesInfo.Uses[fun.Sel] // package-qualified call
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// CommentLines returns, per file, the set of lines on which a comment
// containing marker appears (any line spanned by the comment group).
// Analyzers use it to honor justification markers such as
// "invariant:". The scanning itself lives in directive.go
// (DirectiveLines), shared by every analyzer and table-tested on its
// own.
func (p *Pass) CommentLines(marker string) map[*ast.File]map[int]bool {
	out := make(map[*ast.File]map[int]bool)
	for _, f := range p.Files {
		out[f] = DirectiveLines(p.Fset, f, marker)
	}
	return out
}

// EnclosingFile returns the file containing pos.
func (p *Pass) EnclosingFile(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}
