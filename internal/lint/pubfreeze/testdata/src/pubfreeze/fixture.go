// Package fixture exercises the pubfreeze analyzer: writes through a
// published type after construction are flagged — field stores,
// element and map writes, deletes, copies and increments — while the
// three sound shapes pass: fresh locals on the constructor path,
// once-guarded memoization, and anonylint:pre-publish annotations.
// The transitive pass catches post-publish methods that reach
// constructor-phase code through helper calls.
package fixture

import (
	"sync"
	"sync/atomic"
)

// Box is one published epoch of this fixture's tiny store: readers
// load it from the epoch pointer with no synchronization, so after
// cur.Store it must never be written again.
//
//anonylint:published
type Box struct {
	n     int
	items []int
	tags  map[string]int

	once sync.Once
	memo []int
}

// plain is an unmarked type: writes to it are ordinary Go.
type plain struct {
	n int
}

var cur atomic.Pointer[Box]

// Publish constructs and publishes a fresh Box. Writes to the fresh
// local are construction, not mutation — the value has no readers
// until Store.
func Publish(items []int) {
	b := &Box{tags: make(map[string]int)}
	b.items = items
	b.n = len(items)
	fill(b)
	cur.Store(b)
}

// fill is constructor-phase code: it writes to a Box that Publish has
// not stored yet.
//
//anonylint:pre-publish — called from Publish only, before cur.Store
func fill(b *Box) {
	b.tags["fresh"] = 1
}

// Reset mutates the published Box through every write shape the
// analyzer recognizes.
func Reset() {
	b := cur.Load()
	b.n = 0                // want `pubfreeze: write to field n of published Box`
	b.items[0] = 0         // want `pubfreeze: write to field items of published Box`
	b.tags["x"] = 1        // want `pubfreeze: write to field tags of published Box`
	delete(b.tags, "x")    // want `pubfreeze: delete from field tags of published Box`
	copy(b.items, b.memo)  // want `pubfreeze: copy into field items of published Box`
	*b = Box{}             // want `pubfreeze: write to pointee of published Box`
	touch(b)
}

// touch writes through a parameter: the caller may hand it a
// published value, so the write is flagged at its site.
func touch(b *Box) {
	b.n++ // want `pubfreeze: write to field n of published Box`
}

// Memo is the sanctioned lazy path: the once provides the
// happens-before edge, so the write inside its closure is the
// memoization pattern the serving layer is built on.
func (b *Box) Memo() []int {
	b.once.Do(func() {
		b.memo = make([]int, b.n)
	})
	return b.memo
}

// Install is the lock-guarded fresh-entry install pattern: the claim
// that no reader can observe the map mid-write is carried by the
// annotated line, not by the analyzer.
func (b *Box) Install(k string) {
	b.tags[k] = 1 // anonylint:pre-publish — guarded install of a fresh entry, mirror of the serve release cache
}

// Refill runs after publication but reaches constructor-phase code
// two calls down: the pre-publish claim on fill is void here.
func (b *Box) Refill() {
	rebuild(b) // want `pubfreeze: rebuild → pre-publish fill reachable from \(Box\)\.Refill`
}

// rebuild only forwards — the chase must look through it.
func rebuild(b *Box) {
	fill(b)
}

// Grow rebinds a local pointer: assigning the variable itself is not
// a write through the published value.
func Grow() *Box {
	b := cur.Load()
	if b == nil {
		b = &Box{}
		b.n = 1 // fresh local: constructor path
	}
	return b
}

// scratch mutates an unmarked type: no findings.
func scratch(p *plain) {
	p.n++
	q := plain{}
	q.n = 2
	_ = q
}
