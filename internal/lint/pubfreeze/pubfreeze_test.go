package pubfreeze_test

import (
	"testing"

	"spatialanon/internal/lint/analysistest"
	"spatialanon/internal/lint/pubfreeze"
)

func TestPubfreeze(t *testing.T) {
	analysistest.Run(t, pubfreeze.Analyzer, "pubfreeze")
}
