// Package pubfreeze machine-checks PR 5's publication rule: a view
// published through the atomic epoch pointer is immutable from that
// moment on. Snapshot isolation in the serving layer is not a lock —
// it is the absence of writes: readers hold a *View (or a routing
// *Index hanging off one) with no synchronization at all, which is
// only sound because nothing ever mutates a published value. The
// compiler cannot see this rule, and the race detector only sees it
// when a schedule happens to expose a racing reader. This analyzer
// sees it statically.
package pubfreeze

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"spatialanon/internal/lint/analysis"
)

// Directive marks a type as published: values of the type escape to
// concurrent readers via atomic.Pointer.Store (or an equivalent
// release store) and must never be written again afterwards. Put it
// in the type's doc comment.
const Directive = "anonylint:published"

// PrePublish marks constructor-phase code: a function or method that
// writes to a published type but provably runs before the value is
// stored to the epoch pointer, or a single line performing a
// lock-guarded install of a fresh entry (the release-cache pattern).
// The annotation is the reviewable claim; follow it with the
// justification.
const PrePublish = "anonylint:pre-publish"

// SeedTypes are the serving-layer types known to be published even
// when the analyzed package cannot see their doc comments (imported
// types carry no AST). In-package analysis picks the same types up
// from their anonylint:published directives; the seed list keeps
// cross-package writes honest.
var SeedTypes = map[string]bool{
	"spatialanon/internal/serve.View":         true,
	"spatialanon/internal/serve.releaseEntry": true,
	"spatialanon/internal/serve.accelEntry":   true,
	"spatialanon/internal/serve.recordsEntry": true,
	"spatialanon/internal/routing.Index":      true,
}

// Analyzer flags writes that reach a published type after
// construction: field assignments, element and map writes, deletes
// and copy targets whose access path passes through a value of a
// published type. Three shapes are recognized as sound and exempt:
//
//   - writes through a local freshly constructed in the same function
//     (&T{}, T{}, new(T)) — the constructor has not published yet;
//   - writes inside a closure passed to (*sync.Once).Do — the
//     sanctioned lazy-memoization pattern (base release, per-k1
//     release cache, accelerator and record entries);
//   - functions or lines annotated anonylint:pre-publish, the
//     reviewable escape for constructor helpers and lock-guarded
//     fresh-entry installs.
//
// A second, pagerconfine-style transitive pass chases static
// same-package calls from methods of published types into functions
// marked anonylint:pre-publish: constructor-phase code reachable from
// a post-publish method voids the pre-publish claim, and is reported
// with its call chain. Writes through aliases (a field copied into a
// local first) and calls through interfaces or function values are
// outside the static analysis and remain a code-review obligation.
var Analyzer = &analysis.Analyzer{
	Name: "pubfreeze",
	Doc: "flag writes to published view types after construction\n\n" +
		"Snapshot isolation (DESIGN.md) rests on the convention that a\n" +
		"View stored to the atomic epoch pointer — and everything\n" +
		"hanging off it: release-cache entries, routing accelerators,\n" +
		"record lists — is never written again. This analyzer flags\n" +
		"every write whose access path passes through a published type\n" +
		"(directive anonylint:published), excepting fresh locals,\n" +
		"sync.Once.Do bodies and anonylint:pre-publish annotations, and\n" +
		"chases calls from post-publish methods into pre-publish code.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:      pass,
		decls:     pass.FuncDecls(),
		published: make(map[*types.TypeName]bool),
		prePub:    make(map[*types.Func]bool),
		chains:    make(map[*types.Func][]string),
		suppress:  pass.CommentLines(PrePublish),
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts := spec.(*ast.TypeSpec)
				if analysis.DeclDirective(ts.Doc, Directive) || analysis.DeclDirective(gd.Doc, Directive) {
					if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
						c.published[tn] = true
					}
				}
			}
		}
	}
	for fn, decl := range c.decls {
		if analysis.DeclDirective(decl.Doc, PrePublish) {
			c.prePub[fn] = true
		}
	}
	for fn, decl := range c.decls {
		if c.prePub[fn] {
			continue // constructor-phase by annotation
		}
		c.checkWrites(decl)
		if named := receiverNamed(pass, decl); named != nil && c.publishedNamed(named) {
			c.checkReachesPrePublish(fn, decl, named)
		}
	}
	return nil
}

type checker struct {
	pass      *analysis.Pass
	decls     map[*types.Func]*ast.FuncDecl
	published map[*types.TypeName]bool
	prePub    map[*types.Func]bool
	// chains memoizes, per function, the call chain to a pre-publish
	// sink ([] = proven clean, nil+absent = not yet computed).
	chains     map[*types.Func][]string
	inProgress map[*types.Func]bool
	suppress   map[*ast.File]map[int]bool
}

// publishedNamed reports whether a named type is published, by seed
// list or by in-package directive.
func (c *checker) publishedNamed(n *types.Named) bool {
	return SeedTypes[analysis.NamedPath(n)] || c.published[n.Obj()]
}

// publishedType reports whether t (pointers dereferenced) is a
// published named type.
func (c *checker) publishedType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && c.publishedNamed(named)
}

// receiverNamed returns the declared receiver's named type (pointers
// dereferenced), or nil for plain functions.
func receiverNamed(pass *analysis.Pass, decl *ast.FuncDecl) *types.Named {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return nil
	}
	t := pass.TypesInfo.TypeOf(decl.Recv.List[0].Type)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// checkWrites reports every write in decl whose access path passes
// through a published type and no exemption applies.
func (c *checker) checkWrites(decl *ast.FuncDecl) {
	if decl.Body == nil {
		return
	}
	fresh := c.freshLocals(decl.Body)
	onceBodies := onceClosureRanges(c.pass, decl.Body)
	check := func(target ast.Expr, verb string) {
		named, sel := c.publishedPath(target)
		if named == nil {
			return
		}
		pos := target.Pos()
		if obj := c.rootObject(target); obj != nil && fresh[obj] {
			return // constructing, not mutating
		}
		for _, r := range onceBodies {
			if r[0] <= pos && pos < r[1] {
				return // sanctioned once-guarded memoization
			}
		}
		if c.suppressed(pos) {
			return
		}
		c.pass.Reportf(pos,
			"pubfreeze: %s %s of published %s after construction; published views are immutable — move this to the constructor or annotate the proof with %s",
			verb, sel, named.Obj().Name(), PrePublish)
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range s.Lhs {
				check(lhs, "write to")
			}
		case *ast.IncDecStmt:
			check(s.X, "write to")
		case *ast.CallExpr:
			if id, ok := ast.Unparen(s.Fun).(*ast.Ident); ok && len(s.Args) > 0 {
				if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					switch id.Name {
					case "delete":
						check(s.Args[0], "delete from")
					case "copy":
						check(s.Args[0], "copy into")
					}
				}
			}
		}
		return true
	})
}

// publishedPath walks a write target's access path and returns the
// published named type it passes through (plus a printable name for
// the field or element written), or nil. A bare identifier is a
// rebinding, not a write through the value, and never matches.
func (c *checker) publishedPath(expr ast.Expr) (*types.Named, string) {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr:
			if t := c.pass.TypesInfo.TypeOf(e.X); t != nil {
				u := t
				if ptr, ok := u.(*types.Pointer); ok {
					u = ptr.Elem()
				}
				if named, ok := u.(*types.Named); ok && c.publishedNamed(named) {
					return named, "field " + e.Sel.Name
				}
			}
			expr = e.X
		case *ast.IndexExpr:
			if named, name := c.publishedPath(e.X); named != nil {
				return named, name
			}
			expr = e.X
		case *ast.StarExpr:
			if t := c.pass.TypesInfo.TypeOf(e.X); c.publishedType(t) {
				return derefNamed(c.pass.TypesInfo.TypeOf(e.X)), "pointee"
			}
			expr = e.X
		default:
			return nil, ""
		}
	}
}

func derefNamed(t types.Type) *types.Named {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// rootObject returns the object of the innermost identifier of an
// access path (v in v.cache[k1]), for the fresh-local exemption.
func (c *checker) rootObject(expr ast.Expr) types.Object {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.Ident:
			if obj := c.pass.TypesInfo.Uses[e]; obj != nil {
				return obj
			}
			return c.pass.TypesInfo.Defs[e]
		default:
			return nil
		}
	}
}

// freshLocals collects local variables assigned from a fresh
// construction of a published type (&T{…}, T{…}, new(T)) anywhere in
// body: writes through them are the constructor filling in its own
// value, which has not been published yet.
func (c *checker) freshLocals(body *ast.BlockStmt) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !c.isFreshConstruction(rhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := c.rootObject(id); obj != nil {
					fresh[obj] = true
				}
			}
		}
		return true
	})
	return fresh
}

func (c *checker) isFreshConstruction(expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok && c.publishedType(c.pass.TypesInfo.TypeOf(e.X))
		}
	case *ast.CompositeLit:
		return c.publishedType(c.pass.TypesInfo.TypeOf(e))
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "new" {
			if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				return c.publishedType(c.pass.TypesInfo.TypeOf(e))
			}
		}
	}
	return false
}

// onceClosureRanges returns the position ranges of function literals
// passed to (*sync.Once).Do in body: writes inside them are the
// sanctioned lazy-memoization pattern (the once itself provides the
// happens-before edge readers rely on).
func onceClosureRanges(pass *analysis.Pass, body *ast.BlockStmt) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		named := pass.ReceiverNamed(call)
		if named == nil || analysis.NamedPath(named) != "sync.Once" {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); !ok || sel.Sel.Name != "Do" {
			return true
		}
		if lit, ok := ast.Unparen(call.Args[0]).(*ast.FuncLit); ok {
			out = append(out, [2]token.Pos{lit.Body.Pos(), lit.Body.End()})
		}
		return true
	})
	return out
}

func (c *checker) suppressed(pos token.Pos) bool {
	f := c.pass.EnclosingFile(pos)
	if f == nil {
		return false
	}
	return c.suppress[f][c.pass.Fset.Position(pos).Line]
}

// checkReachesPrePublish chases static same-package calls from a
// post-publish method of a published type and reports any chain that
// reaches anonylint:pre-publish code: constructor-phase functions must
// not run once readers can hold the value.
func (c *checker) checkReachesPrePublish(fn *types.Func, decl *ast.FuncDecl, recv *types.Named) {
	if decl.Body == nil {
		return
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := c.pass.StaticCallee(call)
		if callee == nil {
			return true
		}
		var chain []string
		if c.prePub[callee] {
			chain = []string{"pre-publish " + callee.Name()}
		} else {
			chain = c.chaseChain(callee)
		}
		if chain != nil && !c.suppressed(call.Pos()) {
			c.pass.Reportf(call.Pos(),
				"pubfreeze: %s reachable from (%s).%s, which runs after publication; pre-publish code must stay on the constructor path",
				strings.Join(chain, " → "), recv.Obj().Name(), fn.Name())
		}
		return true
	})
}

// chaseChain returns the call chain from fn to a pre-publish sink, or
// nil when fn is proven clean. Only same-package functions with known
// bodies are traversed.
func (c *checker) chaseChain(fn *types.Func) []string {
	if chain, ok := c.chains[fn]; ok {
		return chain
	}
	if c.inProgress == nil {
		c.inProgress = make(map[*types.Func]bool)
	}
	if c.inProgress[fn] {
		return nil // cycle: resolved by the outer visit
	}
	decl, ok := c.decls[fn]
	if !ok || decl.Body == nil {
		c.chains[fn] = nil
		return nil
	}
	c.inProgress[fn] = true
	defer delete(c.inProgress, fn)
	var result []string
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if result != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := c.pass.StaticCallee(call)
		if callee == nil || callee == fn {
			return true
		}
		if c.prePub[callee] {
			result = []string{fn.Name(), "pre-publish " + callee.Name()}
			return false
		}
		if sub := c.chaseChain(callee); sub != nil {
			result = append([]string{fn.Name()}, sub...)
			return false
		}
		return true
	})
	c.chains[fn] = result
	return result
}
