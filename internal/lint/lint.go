// Package lint assembles the anonylint suite: the project's four
// static analyzers plus the package-scoping rules that decide where
// each one applies. cmd/anonylint and the lint tests both consume this
// registry, so the CLI and the test suite can never disagree about
// what is checked where.
package lint

import (
	"strings"

	"spatialanon/internal/lint/analysis"
	"spatialanon/internal/lint/detrand"
	"spatialanon/internal/lint/kparam"
	"spatialanon/internal/lint/pagerconfine"
	"spatialanon/internal/lint/panicpolicy"
)

// ScopedAnalyzer pairs an analyzer with the predicate selecting the
// packages it runs on.
type ScopedAnalyzer struct {
	*analysis.Analyzer
	// Applies reports whether the analyzer runs on the package with
	// the given import path.
	Applies func(pkgPath string) bool
}

// Suite returns the anonylint analyzers with their package scopes:
//
//   - pagerconfine and kparam run everywhere: worker confinement and
//     k validation are whole-repository invariants.
//   - detrand runs on the deterministic packages only — commands and
//     the experiment harness are allowed to read clocks.
//   - panicpolicy runs on internal/ library packages, excluding the
//     lint tooling itself (an analyzer crashing on a malformed AST is
//     a programmer error by construction); commands may log.Fatal.
func Suite() []ScopedAnalyzer {
	return []ScopedAnalyzer{
		{pagerconfine.Analyzer, func(string) bool { return true }},
		{kparam.Analyzer, func(string) bool { return true }},
		{detrand.Analyzer, func(path string) bool { return detrand.Deterministic[path] }},
		{panicpolicy.Analyzer, func(path string) bool {
			return strings.Contains(path, "/internal/") &&
				!strings.Contains(path, "/internal/lint")
		}},
	}
}
