// Package lint assembles the anonylint suite: the project's seven
// static analyzers plus the package-scoping rules that decide where
// each one applies. cmd/anonylint and the lint tests both consume this
// registry, so the CLI and the test suite can never disagree about
// what is checked where.
package lint

import (
	"strings"

	"spatialanon/internal/lint/analysis"
	"spatialanon/internal/lint/detrand"
	"spatialanon/internal/lint/errwrap"
	"spatialanon/internal/lint/kparam"
	"spatialanon/internal/lint/noalloc"
	"spatialanon/internal/lint/pagerconfine"
	"spatialanon/internal/lint/panicpolicy"
	"spatialanon/internal/lint/pubfreeze"
)

// ScopedAnalyzer pairs an analyzer with the predicate selecting the
// packages it runs on.
type ScopedAnalyzer struct {
	*analysis.Analyzer
	// Applies reports whether the analyzer runs on the package with
	// the given import path.
	Applies func(pkgPath string) bool
}

// Suite returns the anonylint analyzers with their package scopes:
//
//   - pagerconfine, kparam, pubfreeze, noalloc and errwrap run
//     everywhere: worker confinement, k validation, post-publish
//     immutability, the zero-alloc contract and the error taxonomy
//     are whole-repository invariants (the latter three only bite
//     where their directives or seed types appear);
//   - detrand runs on the deterministic packages plus the commands —
//     commands drive the deterministic harnesses, so their
//     randomness must be seeded too; their latency measurements
//     carry anonylint:wall-clock justifications;
//   - panicpolicy runs on internal/ library packages and the
//     commands, excluding the lint tooling itself (an analyzer
//     crashing on a malformed AST is a programmer error by
//     construction). Commands exit through run() + os.Exit, which
//     panicpolicy permits — log.Fatal and bare panics are banned
//     there like everywhere else.
func Suite() []ScopedAnalyzer {
	everywhere := func(string) bool { return true }
	isCmd := func(path string) bool { return strings.HasPrefix(path, "spatialanon/cmd/") }
	return []ScopedAnalyzer{
		{pagerconfine.Analyzer, everywhere},
		{kparam.Analyzer, everywhere},
		{pubfreeze.Analyzer, everywhere},
		{noalloc.Analyzer, everywhere},
		{errwrap.Analyzer, everywhere},
		{detrand.Analyzer, func(path string) bool {
			return detrand.Deterministic[path] || isCmd(path)
		}},
		{panicpolicy.Analyzer, func(path string) bool {
			return isCmd(path) ||
				(strings.Contains(path, "/internal/") &&
					!strings.Contains(path, "/internal/lint"))
		}},
	}
}
