// Package fixture exercises the noalloc analyzer: allocation-inducing
// operations inside anonylint:zero-alloc functions are flagged — make
// and new, growing appends, map writes, string conversions, boxing,
// closures, variadic and fmt calls — directly and through
// same-package call chains, while the sanctioned shapes pass:
// self-appends, vetted cross-package calls, alloc-ok lines, and
// anything in unmarked functions.
package fixture

import (
	"fmt"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
)

// Sum is a clean warm path: loops and arithmetic only.
//
//anonylint:zero-alloc
func Sum(xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total
}

// Ops hits every direct allocation shape.
//
//anonylint:zero-alloc
func Ops(dst []byte, s string, m map[string]int, xs []int) []byte {
	buf := make([]byte, 8)           // want `noalloc: make in Ops`
	p := new(int)                    // want `noalloc: new in Ops`
	dst = append(dst, s...)          // self-append: reuses dst capacity
	buf = append(dst, 'x')           // want `noalloc: append outside the x = append\(x, …\) capacity-reuse form`
	m["k"] = *p                      // want `noalloc: map write`
	m["k"]++                         // want `noalloc: map write`
	_ = string(dst)                  // want `noalloc: string↔slice conversion`
	_ = []byte(s)                    // want `noalloc: string↔slice conversion`
	f := func() int { return len(xs) } // want `noalloc: function literal`
	_ = f
	return buf
}

// session mirrors the routing.Scratch pattern: a reusable buffer that
// grows once on the cold path.
type session struct {
	scratch []float64
}

// Warm is the Scratch warm-up pattern: the one-time growth is
// annotated, the steady state reuses capacity.
//
//anonylint:zero-alloc
func (s *session) Warm(n int) {
	if cap(s.scratch) < n {
		s.scratch = make([]float64, n) // anonylint:alloc-ok — one-time scratch growth on the cold path
	}
	s.scratch = s.scratch[:n]
	s.scratch = append(s.scratch[:0], 1)
}

// sink takes an interface; passing it a non-pointer boxes.
func sink(v any) { _ = v }

// join is variadic; calling it with unspread arguments allocates the
// argument slice.
func join(xs ...int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// Calls hits the boxing, variadic, fmt and dynamic-call shapes.
//
//anonylint:zero-alloc
func Calls(n int, p *int, cb func() int) string {
	sink(n) // want `noalloc: interface boxing of int argument`
	sink(p) // pointer-shaped: fits the interface word
	_ = join(1, 2)          // want `noalloc: non-empty variadic call`
	_ = fmt.Sprint(n)       // want `noalloc: call to fmt\.Sprint`
	_ = cb()                // want `noalloc: call through a function value`
	return ""
}

// grow is an unmarked helper that allocates — legal on its own, but
// poison for any zero-alloc caller.
func grow(xs []int) []int {
	out := make([]int, 0, len(xs))
	return out
}

// forward only relays; the chase must look through it.
func forward(xs []int) []int {
	return grow(xs)
}

// Chain reaches grow's make two calls down.
//
//anonylint:zero-alloc
func Chain(xs []int) []int {
	return forward(xs) // want `noalloc: forward → grow → make`
}

// CrossPkg calls one vetted and one unvetted project function.
//
//anonylint:zero-alloc
func CrossPkg(p anonmodel.Partition, q attr.Box) float64 {
	if !p.Box.Intersects(q) { // vetted: on the KnownZeroAlloc list
		return 0
	}
	inter := p.Box.Intersect(q) // want `noalloc: call to attr\.Box\.Intersect, not vetted zero-alloc`
	_ = inter
	return float64(p.Size()) // vetted: Partition.Size
}

// Unmarked allocates freely: no contract, no findings.
func Unmarked(n int) []int {
	out := make([]int, n)
	out = append(out, n)
	return out
}
