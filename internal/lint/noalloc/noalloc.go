// Package noalloc machine-checks the read path's zero-allocation
// contract: functions the serving layer pins at 0 allocs/op with
// testing.AllocsPerRun (make zeroalloc) must not contain
// allocation-inducing operations on any path. The dynamic gate only
// sees the inputs the benchmark happens to drive — a cold branch, a
// fallback path or a helper that starts allocating passes it silently
// until a production workload hits the branch. This analyzer is the
// static complement: it walks every marked function, flags every
// allocation-inducing operation, and chases same-package helpers
// transitively so a regression is caught at every zero-alloc caller.
package noalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"spatialanon/internal/lint/analysis"
)

// Directive marks a function or method as zero-alloc: its warm path
// must allocate nothing. Every function make zeroalloc pins
// dynamically carries this directive, so the static and dynamic
// checks cover the same set.
const Directive = "anonylint:zero-alloc"

// AllocOK marks a line whose allocation is deliberate: one-time
// scratch growth on a cold path (the Scratch warm-up pattern), or
// setup outside the pinned warm loop. The justification after the
// marker is the reviewable claim.
const AllocOK = "anonylint:alloc-ok"

// KnownZeroAlloc lists the cross-package functions zero-alloc code may
// call: each is itself marked anonylint:zero-alloc in its home package
// (where this analyzer checks its body), so the registry is the
// cross-package edge of the same closed set. A call to any other
// project function from a zero-alloc body is flagged as unvetted.
var KnownZeroAlloc = map[string]bool{
	"spatialanon/internal/sfc.Quantizer.Key":        true,
	"spatialanon/internal/sfc.Quantizer.KeyInto":    true,
	"spatialanon/internal/sfc.Quantizer.AppendCell": true,
	"spatialanon/internal/sfc.ZOrderKey":            true,
	"spatialanon/internal/routing.Index.PointCount": true,
	"spatialanon/internal/routing.Index.RangeCount": true,
	"spatialanon/internal/routing.Index.Estimate":   true,
	"spatialanon/internal/attr.Box.Contains":        true,
	"spatialanon/internal/attr.Box.Intersects":      true,
	"spatialanon/internal/attr.Box.IsEmpty":         true,
	"spatialanon/internal/attr.Interval.Width":      true,
	"spatialanon/internal/anonmodel.Partition.Size": true,
}

// Analyzer flags allocation-inducing operations reachable from
// functions marked anonylint:zero-alloc: make and new, append outside
// the x = append(x, …) capacity-reuse form, map writes, string↔[]byte
// and string↔[]rune conversions, interface boxing of non-pointer
// values, function literals, non-empty variadic calls, and any fmt
// call. Same-package callees are chased transitively and reported
// with their call chain; cross-package project callees must appear in
// KnownZeroAlloc; standard-library callees other than fmt are trusted
// (the dynamic make zeroalloc gate is the backstop there). Calls
// through function values and interface methods cannot be vetted
// statically and are flagged. Deliberate cold-path allocations carry
// anonylint:alloc-ok with a justification.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc: "flag allocation-inducing ops in anonylint:zero-alloc functions\n\n" +
		"The serving read path (DESIGN.md) promises 0 allocs/op on warm\n" +
		"sessions; make zeroalloc pins it dynamically for the inputs the\n" +
		"benchmarks drive. This analyzer pins it statically for every\n" +
		"path: allocation-inducing operations in a marked function — or\n" +
		"in any same-package helper it reaches — are flagged with their\n" +
		"call chain, and cross-package calls must be on the vetted\n" +
		"KnownZeroAlloc list.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:     pass,
		decls:    pass.FuncDecls(),
		chains:   make(map[*types.Func][]string),
		suppress: pass.CommentLines(AllocOK),
	}
	for fn, decl := range c.decls {
		if !analysis.DeclDirective(decl.Doc, Directive) || decl.Body == nil {
			continue
		}
		c.walkBody(decl.Body, func(pos token.Pos, desc string) {
			c.pass.Reportf(pos,
				"noalloc: %s in %s, which is marked %s (justify deliberate cold-path allocations with %s)",
				desc, fn.Name(), Directive, AllocOK)
		})
	}
	return nil
}

type checker struct {
	pass  *analysis.Pass
	decls map[*types.Func]*ast.FuncDecl
	// chains memoizes, per same-package helper, the call chain to its
	// first allocation-inducing operation ([] = proven clean,
	// nil+absent = not yet computed).
	chains     map[*types.Func][]string
	inProgress map[*types.Func]bool
	suppress   map[*ast.File]map[int]bool
}

// walkBody scans one body that must not allocate, invoking report for
// every unsuppressed allocation-inducing operation.
func (c *checker) walkBody(body *ast.BlockStmt, report func(pos token.Pos, desc string)) {
	selfAppends := c.collectSelfAppends(body)
	emit := func(pos token.Pos, desc string) {
		if !c.suppressed(pos) {
			report(pos, desc)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			emit(s.Pos(), "function literal (closures allocate)")
			return false
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if c.isMapIndex(lhs) {
					emit(lhs.Pos(), "map write (inserts allocate)")
				}
			}
		case *ast.IncDecStmt:
			if c.isMapIndex(s.X) {
				emit(s.X.Pos(), "map write (inserts allocate)")
			}
		case *ast.CallExpr:
			c.checkCall(s, selfAppends, emit)
		}
		return true
	})
}

// checkCall classifies one call in a zero-alloc body, reporting at
// most one finding for it.
func (c *checker) checkCall(call *ast.CallExpr, selfAppends map[*ast.CallExpr]bool, emit func(token.Pos, string)) {
	// Conversions: only the string↔byte/rune-slice pairs copy.
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && allocatingConversion(tv.Type, c.typeOf(call.Args[0])) {
			emit(call.Pos(), "string↔slice conversion (copies its operand)")
		}
		return
	}
	// Builtins: make and new always allocate; append is allowed only
	// in the self-append form that reuses the destination's capacity.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				emit(call.Pos(), "make")
			case "new":
				emit(call.Pos(), "new")
			case "append":
				if !selfAppends[call] {
					emit(call.Pos(), "append outside the x = append(x, …) capacity-reuse form")
				}
			}
			return
		}
	}
	// fmt formats through interfaces and allocates on every call.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && c.pass.IsPkgName(sel.X, "fmt") {
		emit(call.Pos(), "call to fmt."+sel.Sel.Name)
		return
	}
	callee := c.pass.StaticCallee(call)
	// Dynamic dispatch — function values and interface methods —
	// cannot be vetted statically.
	if callee == nil {
		emit(call.Pos(), "call through a function value (cannot be vetted statically)")
		return
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if s, ok := c.pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.MethodVal && types.IsInterface(s.Recv()) {
			emit(call.Pos(), "interface method call (dynamic dispatch cannot be vetted statically)")
			return
		}
	}
	// Boxing: a non-pointer-shaped value passed where an interface is
	// expected escapes to the heap.
	sig, _ := c.typeOf(call.Fun).Underlying().(*types.Signature)
	if sig != nil {
		fixed := sig.Params().Len()
		if sig.Variadic() {
			fixed--
		}
		for i := 0; i < fixed && i < len(call.Args); i++ {
			if !types.IsInterface(sig.Params().At(i).Type()) {
				continue
			}
			at := c.typeOf(call.Args[i])
			if at == nil || types.IsInterface(at) || pointerShaped(at) {
				continue
			}
			emit(call.Args[i].Pos(), fmt.Sprintf("interface boxing of %s argument", at))
			return
		}
		if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= sig.Params().Len() {
			emit(call.Pos(), "non-empty variadic call (argument slice allocates)")
			return
		}
	}
	pkg := callee.Pkg()
	if pkg == nil {
		return // error.Error and friends have no package; dynamic cases handled above
	}
	if pkg == c.pass.Pkg {
		if chain := c.chainOf(callee); chain != nil {
			emit(call.Pos(), strings.Join(chain, " → "))
		}
		return
	}
	if strings.HasPrefix(pkg.Path(), "spatialanon/") && !KnownZeroAlloc[funcKey(callee)] {
		emit(call.Pos(), "call to "+displayName(callee)+", not vetted zero-alloc (noalloc.KnownZeroAlloc)")
	}
	// Standard-library calls other than fmt are trusted; the dynamic
	// make zeroalloc gate is the backstop.
}

// chainOf returns the call chain from a same-package helper to its
// first allocation-inducing operation, or nil when the helper is
// proven clean. Line suppressions inside the helper apply during the
// chase.
func (c *checker) chainOf(fn *types.Func) []string {
	if chain, ok := c.chains[fn]; ok {
		return chain
	}
	if c.inProgress == nil {
		c.inProgress = make(map[*types.Func]bool)
	}
	if c.inProgress[fn] {
		return nil // cycle: resolved by the outer visit
	}
	decl, ok := c.decls[fn]
	if !ok || decl.Body == nil {
		c.chains[fn] = nil
		return nil
	}
	c.inProgress[fn] = true
	defer delete(c.inProgress, fn)
	var result []string
	c.walkBody(decl.Body, func(pos token.Pos, desc string) {
		if result == nil {
			result = []string{fn.Name(), desc}
		}
	})
	c.chains[fn] = result
	return result
}

// collectSelfAppends returns the append calls in the sanctioned
// x = append(x, …) form (including x = append(x[:0], …)), whose
// destination reuses x's capacity on the warm path.
func (c *checker) collectSelfAppends(body *ast.BlockStmt) map[*ast.CallExpr]bool {
	out := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				continue
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "append" {
				continue
			}
			if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
				continue
			}
			if c.sameStorage(as.Lhs[i], call.Args[0]) {
				out[call] = true
			}
		}
		return true
	})
	return out
}

// sameStorage reports whether dst and src statically name the same
// variable or field (src may reslice it, as in append(x[:0], …)).
func (c *checker) sameStorage(dst, src ast.Expr) bool {
	dst, src = ast.Unparen(dst), ast.Unparen(src)
	if se, ok := src.(*ast.SliceExpr); ok {
		return c.sameStorage(dst, se.X)
	}
	switch d := dst.(type) {
	case *ast.Ident:
		s, ok := src.(*ast.Ident)
		return ok && c.objectOf(d) != nil && c.objectOf(d) == c.objectOf(s)
	case *ast.SelectorExpr:
		s, ok := src.(*ast.SelectorExpr)
		return ok &&
			c.pass.TypesInfo.Uses[d.Sel] != nil &&
			c.pass.TypesInfo.Uses[d.Sel] == c.pass.TypesInfo.Uses[s.Sel] &&
			c.sameStorage(d.X, s.X)
	}
	return false
}

func (c *checker) objectOf(id *ast.Ident) types.Object {
	if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return c.pass.TypesInfo.Defs[id]
}

func (c *checker) typeOf(e ast.Expr) types.Type {
	return c.pass.TypesInfo.TypeOf(e)
}

func (c *checker) isMapIndex(e ast.Expr) bool {
	ix, ok := ast.Unparen(e).(*ast.IndexExpr)
	if !ok {
		return false
	}
	t := c.typeOf(ix.X)
	if t == nil {
		return false
	}
	_, isMap := t.Underlying().(*types.Map)
	return isMap
}

func (c *checker) suppressed(pos token.Pos) bool {
	f := c.pass.EnclosingFile(pos)
	if f == nil {
		return false
	}
	return c.suppress[f][c.pass.Fset.Position(pos).Line]
}

// allocatingConversion reports whether converting from src to dst
// copies: the string↔[]byte and string↔[]rune pairs.
func allocatingConversion(dst, src types.Type) bool {
	if src == nil {
		return false
	}
	return (isString(dst) && isByteOrRuneSlice(src)) ||
		(isByteOrRuneSlice(dst) && isString(src))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// pointerShaped reports whether a value of type t fits the interface
// data word without heap allocation.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer || u.Kind() == types.UntypedNil
	}
	return false
}

// funcKey is the registry key of a function: pkgpath.Func, or
// pkgpath.Type.Method with the pointer stripped.
func funcKey(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return analysis.NamedPath(named) + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.Name()
}

// displayName is funcKey without the module-internal prefix, for
// readable diagnostics.
func displayName(fn *types.Func) string {
	return strings.TrimPrefix(funcKey(fn), "spatialanon/internal/")
}
