package noalloc_test

import (
	"testing"

	"spatialanon/internal/lint/analysistest"
	"spatialanon/internal/lint/noalloc"
)

func TestNoalloc(t *testing.T) {
	analysistest.Run(t, noalloc.Analyzer, "noalloc")
}
