// Package load turns package patterns into parsed, type-checked
// packages for the anonylint analyzers.
//
// It is the self-contained counterpart of golang.org/x/tools/go/packages
// for the narrow needs of this repository: packages are discovered by
// walking the module tree (no GOPATH assumptions, no network), files
// are parsed with comments, and types are resolved with the standard
// library's source importer, which handles both the standard library
// and module-local import paths when the process runs inside the
// module. Test files are excluded: the invariants anonylint enforces
// are about library and binary code.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the directory holding its sources.
	Dir string
	// Fset positions every file of every package of one Load call.
	Fset *token.FileSet
	// Files are the parsed non-test sources, in file-name order.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info holds the type-checker's facts for Files.
	Info *types.Info
}

// Loader loads packages sharing one file set and one importer, so a
// multi-package run type-checks each dependency once.
type Loader struct {
	Fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a loader whose importer resolves imports from
// source. The process must run with its working directory inside the
// module for module-local import paths to resolve.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{Fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// Patterns expands go-style package patterns relative to dir and loads
// every matched package. Supported forms: "./..." (the whole module
// below dir), "./x/..." (a subtree), and plain relative directories
// ("./internal/query"). Directories named testdata, vendor or starting
// with "." or "_" are never matched by "..." patterns, mirroring the
// go tool.
func (l *Loader) Patterns(dir string, patterns []string) ([]*Package, error) {
	modRoot, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		if abs, err := filepath.Abs(d); err == nil {
			d = abs
		}
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "all":
			pat = "./..."
			fallthrough
		case strings.HasSuffix(pat, "..."):
			root := filepath.Join(dir, strings.TrimSuffix(pat, "..."))
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if ok, err := hasGoFiles(path); err != nil {
					return err
				} else if ok {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		default:
			add(filepath.Join(dir, pat))
		}
	}
	var out []*Package
	for _, d := range dirs {
		rel, err := filepath.Rel(modRoot, d)
		if err != nil {
			return nil, err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.Dir(d, importPath)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// Dir loads the single package in directory dir under the given import
// path. A directory with no buildable non-test Go files yields (nil,
// nil). Mixed-package directories (a package plus its external test
// package) keep only the non-test package.
func (l *Loader) Dir(dir, importPath string) (*Package, error) {
	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, nil
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []string
	conf := types.Config{
		Importer: l.imp,
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	tpkg, _ := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("load %s: type errors:\n\t%s", importPath, strings.Join(typeErrs, "\n\t"))
	}
	return &Package{Path: importPath, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// goFileNames lists dir's buildable non-test Go files in name order,
// honoring build constraints for the host platform.
func goFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		match, err := build.Default.MatchFile(dir, name)
		if err != nil {
			return nil, err
		}
		if match {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true, nil
		}
	}
	return false, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("load: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("load: no go.mod above %s", dir)
		}
		d = parent
	}
}
