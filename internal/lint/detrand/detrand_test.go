package detrand_test

import (
	"testing"

	"spatialanon/internal/lint/analysistest"
	"spatialanon/internal/lint/detrand"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, detrand.Analyzer, "detrand")
}
