// Package detrand guards the byte-equality determinism contract of the
// repository's computational core (PR 2, determinism_test.go): the same
// input must produce the identical output — bit for bit — for every
// worker count and every run. Three sources of silent nondeterminism
// are banned in the deterministic packages:
//
//  1. wall-clock reads (time.Now, time.Since, time.Until);
//  2. the process-global math/rand generators, whose streams are not
//     replayable from a caller-owned seed (constructors such as
//     rand.New and rand.NewSource remain allowed — they are how seeded
//     sources are built);
//  3. map iteration whose order can leak into a function's results:
//     a range over a map whose body returns a value derived from the
//     iteration, accumulates floating-point values (float addition is
//     not associative, so the low bits depend on visit order), or
//     appends to a returned slice that is never sorted afterwards.
//
// A range statement may be suppressed with an "anonylint:map-ordered"
// comment on its line when order-independence holds for a reason the
// analyzer cannot see; the comment is the reviewable claim. Likewise a
// wall-clock read may carry "anonylint:wall-clock" when the time
// feeds measurement only (latency histograms, progress logs) and never
// an output the determinism contract covers.
package detrand

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"spatialanon/internal/lint/analysis"
)

// Deterministic is the set of packages under the byte-equality
// contract — the anonymization algorithms, their indexes, the
// evaluation metrics, the data generators and the seeded-randomness
// provider itself. The multichecker scopes the analyzer with it.
var Deterministic = map[string]bool{
	"spatialanon/internal/core":      true,
	"spatialanon/internal/rplustree": true,
	"spatialanon/internal/mondrian":  true,
	"spatialanon/internal/compact":   true,
	"spatialanon/internal/quality":   true,
	"spatialanon/internal/query":     true,
	"spatialanon/internal/sfc":       true,
	"spatialanon/internal/routing":   true,
	"spatialanon/internal/bptree":    true,
	"spatialanon/internal/quadtree":  true,
	"spatialanon/internal/gridfile":  true,
	"spatialanon/internal/dataset":   true,
	"spatialanon/internal/detrng":    true,
	"spatialanon/internal/retry":     true,
	"spatialanon/internal/wal":       true,
	"spatialanon/internal/serve":     true,
	"spatialanon/internal/shard":     true,
	"spatialanon/internal/fault":     true,
	"spatialanon/internal/pager":     true,
}

// Analyzer flags the three nondeterminism sources. It carries no
// package filter itself — fixtures and the multichecker decide where
// it applies.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "flag wall-clock reads, global math/rand use and order-leaking map iteration\n\n" +
		"The deterministic packages promise byte-identical outputs for\n" +
		"every worker count and every run (determinism_test.go). This\n" +
		"analyzer bans the three ways that promise silently breaks:\n" +
		"time.Now and friends, the global math/rand functions, and map\n" +
		"ranges whose iteration order can reach returned values.",
	Run: run,
}

// clockFuncs are the "time" package functions that read the wall clock.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// WallClockOK marks a line whose wall-clock read feeds measurement
// only — latency recording, progress reporting — and never a value
// under the byte-equality contract. The justification after the
// marker is the reviewable claim.
const WallClockOK = "anonylint:wall-clock"

func run(pass *analysis.Pass) error {
	suppressed := pass.CommentLines("anonylint:map-ordered")
	clockOK := pass.CommentLines(WallClockOK)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCalls(pass, fd.Body, clockOK[f])
			checkMapRanges(pass, fd, suppressed[f])
		}
	}
	return nil
}

// checkCalls flags wall-clock and global-rand calls.
func checkCalls(pass *analysis.Pass, body *ast.BlockStmt, clockOK map[int]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		switch {
		case clockFuncs[name] && pass.IsPkgName(sel.X, "time"):
			if clockOK[pass.Fset.Position(call.Pos()).Line] {
				break
			}
			pass.Reportf(call.Pos(),
				"detrand: time.%s reads the wall clock in a deterministic package; thread timings through the caller", name)
		case (pass.IsPkgName(sel.X, "math/rand") || pass.IsPkgName(sel.X, "math/rand/v2")) &&
			!strings.HasPrefix(name, "New"):
			pass.Reportf(call.Pos(),
				"detrand: global math/rand function rand.%s is not replayable from a seed; inject a seeded *rand.Rand (detrng.New)", name)
		}
		return true
	})
}

// checkMapRanges flags map iteration whose order can reach the
// enclosing function's results.
func checkMapRanges(pass *analysis.Pass, fd *ast.FuncDecl, suppressed map[int]bool) {
	// Objects of named results and of identifiers appearing in return
	// statements: the function's "output variables".
	outputs := make(map[types.Object]bool)
	var returns []*ast.ReturnStmt
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					outputs[obj] = true
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			returns = append(returns, ret)
			for _, res := range ret.Results {
				if id, ok := ast.Unparen(res).(*ast.Ident); ok {
					if obj := pass.TypesInfo.Uses[id]; obj != nil {
						outputs[obj] = true
					}
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if suppressed[pass.Fset.Position(rng.Pos()).Line] {
			return true
		}
		rangeVars := rangeVarObjects(pass, rng)
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			switch s := m.(type) {
			case *ast.ReturnStmt:
				if returnUsesLoopState(pass, s, rangeVars) {
					pass.Reportf(s.Pos(),
						"detrand: return inside map iteration depends on visit order; iterate sorted keys so the reported value is deterministic")
				}
			case *ast.AssignStmt:
				checkAccumulation(pass, fd, rng, s, outputs)
			}
			return true
		})
		return true
	})
}

// rangeVarObjects returns the objects bound by the range clause.
func rangeVarObjects(pass *analysis.Pass, rng *ast.RangeStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				out[obj] = true
			} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// returnUsesLoopState reports whether a return statement's results
// mention a range variable — the signature of an order-dependent
// "first match wins" report. Returns of constants (existence checks)
// are order-independent and pass.
func returnUsesLoopState(pass *analysis.Pass, ret *ast.ReturnStmt, rangeVars map[types.Object]bool) bool {
	uses := false
	for _, res := range ret.Results {
		ast.Inspect(res, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil && rangeVars[obj] {
					uses = true
				}
			}
			return !uses
		})
	}
	return uses
}

// checkAccumulation flags float op-assignment and unsorted appends to
// output slices inside the map range body.
func checkAccumulation(pass *analysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, s *ast.AssignStmt, outputs map[types.Object]bool) {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(s.Lhs) == 1 && isFloat(pass.TypesInfo.TypeOf(s.Lhs[0])) {
			pass.Reportf(s.Pos(),
				"detrand: floating-point accumulation in map iteration order; float addition is not associative — iterate sorted keys")
		}
	case token.ASSIGN, token.DEFINE:
		for i, lhs := range s.Lhs {
			if i >= len(s.Rhs) {
				break
			}
			call, ok := ast.Unparen(s.Rhs[i]).(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass, call) {
				continue
			}
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				obj = pass.TypesInfo.Defs[id]
			}
			if obj == nil || !outputs[obj] {
				continue
			}
			if !sortedAfter(pass, fd, rng, obj) {
				pass.Reportf(s.Pos(),
					"detrand: append to returned slice %s in map iteration order with no sort before return; sort it or iterate sorted keys", id.Name)
			}
		}
	}
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// sortedAfter reports whether, after the range statement, the function
// passes obj to any function of package sort or slices — the idiom
// that restores a deterministic order before the slice escapes.
func sortedAfter(pass *analysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !(pass.IsPkgName(sel.X, "sort") || pass.IsPkgName(sel.X, "slices")) {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
