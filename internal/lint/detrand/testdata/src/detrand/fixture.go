// Package fixture exercises the detrand analyzer: wall-clock reads,
// global math/rand functions and order-leaking map iteration are
// flagged; seeded sources, constant-result existence checks and
// collect-then-sort all pass.
package fixture

import (
	"math/rand"
	"sort"
	"time"
)

func clock() time.Time {
	return time.Now() // want `detrand: time\.Now reads the wall clock`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `detrand: time\.Since reads the wall clock`
}

func measured() time.Duration {
	start := time.Now() // anonylint:wall-clock — latency measurement only; never reaches a contract output
	return time.Since(start) // anonylint:wall-clock — ditto
}

func globalRand() int {
	return rand.Intn(10) // want `detrand: global math/rand function rand\.Intn`
}

func seededRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // constructors build caller-owned streams
}

func firstLarge(m map[string]int) (string, bool) {
	for k, v := range m {
		if v > 10 {
			return k, true // want `detrand: return inside map iteration depends on visit order`
		}
	}
	return "", false
}

func anyLarge(m map[string]int) bool {
	for _, v := range m {
		if v > 10 {
			return true // constant result: order-independent
		}
	}
	return false
}

func sum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want `detrand: floating-point accumulation in map iteration order`
	}
	return total
}

func sumSuppressed(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // anonylint:map-ordered — values are small integers stored as floats; the sum is exact
		total += v
	}
	return total
}

func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `detrand: append to returned slice out in map iteration order`
	}
	return out
}

func keysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func count(m map[string]int) int {
	total := 0
	for range m {
		total++ // integer counting is order-independent
	}
	return total
}
