package errwrap_test

import (
	"testing"

	"spatialanon/internal/lint/analysistest"
	"spatialanon/internal/lint/errwrap"
)

func TestErrwrap(t *testing.T) {
	analysistest.Run(t, errwrap.Analyzer, "errwrap")
}
