// Package errwrap machine-checks the error-taxonomy discipline of the
// wal/serve/pager stack: graceful degradation branches on wrapped
// sentinels (wal.ErrPoisoned, serve.ErrDegraded, …) and on error
// kinds recovered through the %w chain (IsCrash, retry.IsTransient),
// so one ==-comparison or one %v that flattens a chain silently turns
// a typed rejection into an unmatchable string. The compiler cannot
// see the difference between %v and %w; this analyzer can.
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"spatialanon/internal/lint/analysis"
)

// Exempt marks a line whose sentinel handling is deliberately outside
// the taxonomy rules — for example an identity check against a
// sentinel that is never wrapped by construction. Follow the marker
// with the justification.
const Exempt = "anonylint:err-exempt"

// Analyzer enforces the three wrapping rules the taxonomy rests on:
//
//  1. sentinel comparisons use errors.Is — an ==/!= against a
//     package-level `Err*` error variable misses every wrapped layer;
//  2. fmt.Errorf formats chained errors with %w — %v/%s/%q flatten
//     the chain, so errors.Is, IsCrash and IsTransient stop matching;
//  3. a foreign package's sentinel is not returned bare — returning
//     wal.ErrPoisoned (or os.ErrNotExist) unwrapped across the
//     package boundary discards the local context the caller needs,
//     so it must travel inside fmt.Errorf("…: %w", …).
//
// Sentinels are recognized by the standard naming convention
// (package-level error variables named Err…); io.EOF is outside it by
// name, preserving the io.Reader contract of returning EOF untouched.
// Deliberate exceptions carry anonylint:err-exempt.
var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc: "enforce errors.Is / %w discipline around taxonomy sentinels\n\n" +
		"The serving layer's degradation logic (DESIGN.md) branches on\n" +
		"sentinels recovered through wrapped chains. This analyzer flags\n" +
		"==/!= comparisons against Err* sentinels, fmt.Errorf verbs that\n" +
		"flatten an error argument (%v, %s, %q instead of %w), and bare\n" +
		"returns of another package's sentinel.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, suppress: pass.CommentLines(Exempt)}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.BinaryExpr:
				c.checkComparison(s)
			case *ast.CallExpr:
				c.checkErrorf(s)
			case *ast.ReturnStmt:
				c.checkReturn(s)
			}
			return true
		})
	}
	return nil
}

type checker struct {
	pass     *analysis.Pass
	suppress map[*ast.File]map[int]bool
}

// checkComparison flags ==/!= against a sentinel: wrapped layers make
// identity comparison silently false.
func (c *checker) checkComparison(be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	for _, operand := range []ast.Expr{be.X, be.Y} {
		if v := c.sentinel(operand); v != nil && !c.suppressed(be.Pos()) {
			c.pass.Reportf(be.Pos(),
				"errwrap: %s compared with %s; wrapped errors never match identity — use errors.Is(err, %s)",
				v.Name(), be.Op, v.Name())
			return
		}
	}
}

// checkErrorf flags fmt.Errorf verbs that format an error argument
// with %v, %s or %q: the chain flattens to a string and errors.Is
// stops matching.
func (c *checker) checkErrorf(call *ast.CallExpr) {
	if !c.pass.PkgFunc(call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	verbs, ok := parseVerbs(format)
	if !ok {
		return // indexed arguments: out of scope
	}
	args := call.Args[1:]
	for _, v := range verbs {
		if v.arg >= len(args) {
			return // vet territory: argument count mismatch
		}
		if v.verb != 'v' && v.verb != 's' && v.verb != 'q' {
			continue
		}
		arg := args[v.arg]
		if !c.isError(arg) || c.suppressed(arg.Pos()) {
			continue
		}
		c.pass.Reportf(arg.Pos(),
			"errwrap: %%%c flattens this error to a string; use %%w so errors.Is and the wal/serve kind checks still see the chain",
			v.verb)
	}
}

// checkReturn flags a foreign package's sentinel returned bare: the
// boundary crossing is where local context must be added with %w.
func (c *checker) checkReturn(ret *ast.ReturnStmt) {
	for _, res := range ret.Results {
		sel, ok := ast.Unparen(res).(*ast.SelectorExpr)
		if !ok || !c.isForeignPkgSelector(sel) {
			continue
		}
		v := c.sentinel(res)
		if v == nil || c.suppressed(res.Pos()) {
			continue
		}
		c.pass.Reportf(res.Pos(),
			"errwrap: %s.%s returned bare across the package boundary; wrap it with local context: fmt.Errorf(\"…: %%w\", %s.%s)",
			v.Pkg().Name(), v.Name(), v.Pkg().Name(), v.Name())
	}
}

// sentinel resolves expr to a package-level error variable following
// the Err* naming convention, or nil. io.EOF and other legacy names
// fall outside the convention and are never matched.
func (c *checker) sentinel(expr ast.Expr) *types.Var {
	var obj types.Object
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj = c.pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		obj = c.pass.TypesInfo.Uses[e.Sel]
	default:
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !strings.HasPrefix(v.Name(), "Err") {
		return nil
	}
	if !implementsError(v.Type()) {
		return nil
	}
	return v
}

// isForeignPkgSelector reports whether sel is pkg.Name for an
// imported package (not a field or method selection).
func (c *checker) isForeignPkgSelector(sel *ast.SelectorExpr) bool {
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	_, isPkg := c.pass.TypesInfo.Uses[id].(*types.PkgName)
	return isPkg
}

func (c *checker) isError(expr ast.Expr) bool {
	t := c.pass.TypesInfo.TypeOf(expr)
	return t != nil && implementsError(t)
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func implementsError(t types.Type) bool {
	return types.Implements(t, errorIface)
}

func (c *checker) suppressed(pos token.Pos) bool {
	f := c.pass.EnclosingFile(pos)
	if f == nil {
		return false
	}
	return c.suppress[f][c.pass.Fset.Position(pos).Line]
}

// verb is one conversion in a format string: its verb character and
// the index of the argument it consumes.
type verb struct {
	verb byte
	arg  int
}

// parseVerbs extracts the conversions of a fmt format string, mapping
// each to its argument index ('*' width/precision stars consume an
// argument each). It reports ok=false on explicit argument indexes
// ("%[1]v"), which this analyzer does not model.
func parseVerbs(format string) ([]verb, bool) {
	var out []verb
	arg := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		// Flags, width, precision; '*' consumes an argument.
		for i < len(format) {
			ch := format[i]
			if ch == '[' {
				return nil, false
			}
			if ch == '*' {
				arg++
				i++
				continue
			}
			if strings.IndexByte("+-# 0.", ch) >= 0 || (ch >= '0' && ch <= '9') {
				i++
				continue
			}
			break
		}
		if i >= len(format) {
			break
		}
		out = append(out, verb{verb: format[i], arg: arg})
		arg++
	}
	return out, true
}
