// Package fixture exercises the errwrap analyzer: identity
// comparisons against Err* sentinels, chain-flattening fmt.Errorf
// verbs and bare cross-package sentinel returns are flagged, while
// errors.Is, %w wrapping, own-package sentinels, io.EOF and
// err-exempt lines all pass.
package fixture

import (
	"errors"
	"fmt"
	"io"
	"os"
)

// ErrLocal is this package's own taxonomy sentinel.
var ErrLocal = errors.New("fixture: local sentinel")

func compare(err error) bool {
	if err == os.ErrNotExist { // want `errwrap: ErrNotExist compared with ==`
		return true
	}
	if err != ErrLocal { // want `errwrap: ErrLocal compared with !=`
		return false
	}
	return errors.Is(err, os.ErrNotExist)
}

func compareEOF(err error) bool {
	return err == io.EOF // EOF is outside the Err* convention (io.Reader contract)
}

func compareExempt(err error) bool {
	return err == ErrLocal // anonylint:err-exempt — ErrLocal is handed out by this package unwrapped, identity is exact
}

func wrapV(err error, n int) error {
	return fmt.Errorf("fixture: %d bytes: %v", n, err) // want `errwrap: %v flattens this error`
}

func wrapS(err error) error {
	return fmt.Errorf("fixture: %s", err) // want `errwrap: %s flattens this error`
}

func wrapStar(err error, w, n int) error {
	return fmt.Errorf("fixture: %*d: %q", w, n, err) // want `errwrap: %q flattens this error`
}

func wrapGood(err error) error {
	return fmt.Errorf("fixture: %w", err)
}

func wrapNonError(name string) error {
	return fmt.Errorf("fixture: %v missing", name) // %v on a non-error is ordinary formatting
}

func passThrough() error {
	return os.ErrNotExist // want `errwrap: os\.ErrNotExist returned bare`
}

func passLocal() error {
	return ErrLocal // own sentinel: the bare return IS the taxonomy
}

func passEOF() (int, error) {
	return 0, io.EOF // io.Reader contract: EOF travels unwrapped
}

func passWrapped() error {
	return fmt.Errorf("fixture: open: %w", os.ErrNotExist)
}
