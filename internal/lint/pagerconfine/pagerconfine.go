// Package pagerconfine machine-checks PR 2's ownership rule: the pager
// is confined to the coordinating goroutine. Worker goroutines run
// pure computations over disjoint data; every pager charge and every
// piece of tree wiring happens on the goroutine driving the load, in
// serial order — that is what makes the output AND the Figure 8 I/O
// counters byte-identical for every worker count. The compiler cannot
// see this rule; a race detector only sees it when a schedule happens
// to expose it. This analyzer sees it statically.
package pagerconfine

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"spatialanon/internal/lint/analysis"
)

// pagerType is the confined type: every method call on it is a
// mutation from the analyzer's point of view, because even reads move
// LRU state and I/O counters (and the type documents itself as not
// safe for concurrent use).
const pagerType = "spatialanon/internal/pager.Pager"

// Directive marks a function or method as coordinator-only: calls to
// it must never be reachable from a worker context. Use it for tree
// wiring and buffer plumbing that mutates shared structures without
// touching the pager directly.
const Directive = "anonylint:coordinator-only"

// Analyzer flags pager method calls — and calls to functions marked
// anonylint:coordinator-only — reachable from a worker context: a
// closure passed to (*par.Pool).Fork, par.Do or par.FirstErr, or the
// function of a go statement. Reachability is traced through static
// same-package calls; calls through interfaces and function values are
// outside the analysis and remain a code-review obligation (split
// policies and guards are documented as pure).
var Analyzer = &analysis.Analyzer{
	Name: "pagerconfine",
	Doc: "flag pager use reachable from worker goroutines\n\n" +
		"The plan-then-wire concurrency model (DESIGN.md) confines the\n" +
		"pager and all tree wiring to the coordinating goroutine so\n" +
		"that structure and I/O counters are identical for every worker\n" +
		"count. This analyzer walks every par.Pool/par.Do/par.FirstErr\n" +
		"closure and every go statement, chases static same-package\n" +
		"calls, and reports any path that reaches a (*pager.Pager)\n" +
		"method or an anonylint:coordinator-only function.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:        pass,
		decls:       pass.FuncDecls(),
		coordinator: make(map[*types.Func]bool),
		chains:      make(map[*types.Func][]string),
	}
	for fn, decl := range c.decls {
		if analysis.DeclDirective(decl.Doc, Directive) {
			c.coordinator[fn] = true
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.GoStmt:
				c.checkWorker(workerRootOf(pass, s.Call.Fun), "go statement")
			case *ast.CallExpr:
				if arg, ctx := workerArg(pass, s); arg != nil {
					c.checkWorker(workerRootOf(pass, arg), ctx)
				}
			}
			return true
		})
	}
	return nil
}

// workerArg returns the worker function expression of a par fan-out
// call, along with a description of the context, or nil.
func workerArg(pass *analysis.Pass, call *ast.CallExpr) (ast.Expr, string) {
	if named := pass.ReceiverNamed(call); named != nil {
		if analysis.NamedPath(named) == "spatialanon/internal/par.Pool" {
			if sel := call.Fun.(*ast.SelectorExpr); sel.Sel.Name == "Fork" && len(call.Args) == 1 {
				return call.Args[0], "par.Pool worker closure"
			}
		}
		return nil, ""
	}
	for _, name := range []string{"Do", "FirstErr"} {
		if pass.PkgFunc(call, "spatialanon/internal/par", name) && len(call.Args) > 0 {
			return call.Args[len(call.Args)-1], "par." + name + " worker function"
		}
	}
	return nil, ""
}

// workerRoot is one launch of worker code: either an inline closure
// body or a reference to a same-package function.
type workerRoot struct {
	body *ast.BlockStmt // non-nil for closures
	fn   *types.Func    // non-nil for named functions
}

func workerRootOf(pass *analysis.Pass, fun ast.Expr) workerRoot {
	if lit, ok := ast.Unparen(fun).(*ast.FuncLit); ok {
		return workerRoot{body: lit.Body}
	}
	return workerRoot{fn: pass.StaticFunc(fun)}
}

type checker struct {
	pass        *analysis.Pass
	decls       map[*types.Func]*ast.FuncDecl
	coordinator map[*types.Func]bool
	// chains memoizes, per function, the call chain to a sink ([] =
	// proven clean, nil+absent = not yet computed). The in-progress
	// marker breaks recursion cycles.
	chains     map[*types.Func][]string
	inProgress map[*types.Func]bool
}

// checkWorker walks one worker root and reports every sink reachable
// from it.
func (c *checker) checkWorker(root workerRoot, ctx string) {
	switch {
	case root.body != nil:
		c.walkBody(root.body, ctx, nil)
	case root.fn != nil:
		if decl, ok := c.decls[root.fn]; ok && decl.Body != nil {
			c.walkBody(decl.Body, ctx, []string{root.fn.Name()})
		}
	}
}

// walkBody scans a body that executes in a worker context. prefix is
// the call chain that led here (nil for the closure itself).
func (c *checker) walkBody(body *ast.BlockStmt, ctx string, prefix []string) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if desc := c.sink(call); desc != "" {
			c.report(call, ctx, prefix, desc)
			return true
		}
		callee := c.pass.StaticCallee(call)
		if callee == nil {
			return true
		}
		if chain := c.chaseChain(callee); chain != nil {
			c.report(call, ctx, prefix, strings.Join(chain, " → "))
		}
		return true
	})
}

// sink classifies a call that must stay on the coordinator, returning
// a description or "".
func (c *checker) sink(call *ast.CallExpr) string {
	if named := c.pass.ReceiverNamed(call); named != nil && analysis.NamedPath(named) == pagerType {
		return fmt.Sprintf("(*pager.Pager).%s", call.Fun.(*ast.SelectorExpr).Sel.Name)
	}
	if callee := c.pass.StaticCallee(call); callee != nil && c.coordinator[callee] {
		return "coordinator-only " + callee.Name()
	}
	return ""
}

// chaseChain returns the call chain from fn to a sink, or nil when fn
// is proven sink-free. Only same-package functions with known bodies
// are traversed.
func (c *checker) chaseChain(fn *types.Func) []string {
	if chain, ok := c.chains[fn]; ok {
		return chain
	}
	if c.inProgress == nil {
		c.inProgress = make(map[*types.Func]bool)
	}
	if c.inProgress[fn] {
		return nil // cycle: resolved by the outer visit
	}
	decl, ok := c.decls[fn]
	if !ok || decl.Body == nil {
		c.chains[fn] = nil
		return nil
	}
	c.inProgress[fn] = true
	defer delete(c.inProgress, fn)
	var result []string
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if result != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if desc := c.sink(call); desc != "" {
			result = []string{fn.Name(), desc}
			return false
		}
		if callee := c.pass.StaticCallee(call); callee != nil && callee != fn {
			if sub := c.chaseChain(callee); sub != nil {
				result = append([]string{fn.Name()}, sub...)
				return false
			}
		}
		return true
	})
	c.chains[fn] = result
	return result
}

func (c *checker) report(call *ast.CallExpr, ctx string, prefix []string, desc string) {
	if len(prefix) > 0 {
		desc = strings.Join(prefix, " → ") + " → " + desc
	}
	c.pass.Reportf(call.Pos(),
		"pagerconfine: %s reachable from %s; pager mutations and tree wiring must stay on the coordinating goroutine (plan-then-wire)", desc, ctx)
}
