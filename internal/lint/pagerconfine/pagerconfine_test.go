package pagerconfine_test

import (
	"testing"

	"spatialanon/internal/lint/analysistest"
	"spatialanon/internal/lint/pagerconfine"
)

func TestPagerConfine(t *testing.T) {
	analysistest.Run(t, pagerconfine.Analyzer, "pagerconfine")
}
