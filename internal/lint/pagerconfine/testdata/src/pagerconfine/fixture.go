// Package fixture exercises the pagerconfine analyzer: pager method
// calls and coordinator-only functions must not be reachable from
// worker contexts (go statements, par.Pool.Fork closures, par.Do /
// par.FirstErr worker functions).
package fixture

import (
	"spatialanon/internal/pager"
	"spatialanon/internal/par"
)

type loader struct {
	pg   *pager.Pager
	pool *par.Pool
}

// coordinatorRead runs on the calling goroutine: allowed.
func (l *loader) coordinatorRead(id pager.PageID) ([]byte, error) {
	return l.pg.Read(id)
}

func (l *loader) badGo(id pager.PageID) {
	go func() {
		_, _ = l.pg.Read(id) // want `pagerconfine: \(\*pager\.Pager\)\.Read reachable from go statement`
	}()
}

func (l *loader) badFork(id pager.PageID) {
	join := l.pool.Fork(func() {
		_ = l.pg.MarkDirty(id) // want `pagerconfine: \(\*pager\.Pager\)\.MarkDirty reachable from par\.Pool worker closure`
	})
	join()
}

// touch pins a page: transitively a pager mutation.
func (l *loader) touch(id pager.PageID) {
	_ = l.pg.MarkDirty(id)
}

func (l *loader) badDo(n int) {
	par.Do(2, n, func(i int) {
		l.touch(pager.PageID(i)) // want `pagerconfine: touch → \(\*pager\.Pager\)\.MarkDirty reachable from par\.Do worker function`
	})
}

func (l *loader) pump() {
	_ = l.pg.Flush() // want `pagerconfine: pump → \(\*pager\.Pager\)\.Flush reachable from go statement`
}

func (l *loader) badNamedGo() {
	go l.pump()
}

// wire attaches planned nodes to the tree; tree wiring stays on the
// coordinator even though it never touches the pager directly.
// anonylint:coordinator-only
func (l *loader) wire() {}

func (l *loader) badWire() {
	join := l.pool.Fork(func() {
		l.wire() // want `pagerconfine: coordinator-only wire reachable from par\.Pool worker closure`
	})
	join()
}

// plan is pure computation over worker-owned data: allowed anywhere.
func plan(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

func (l *loader) goodFork(xs []int) int {
	var total int
	join := l.pool.Fork(func() { total = plan(xs) })
	join()
	return total
}

func goodFirstErr(n int) error {
	return par.FirstErr(2, n, func(int) error { return nil })
}
