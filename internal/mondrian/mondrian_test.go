package mondrian

import (
	"testing"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/dataset"
)

func anonymizePatients(t *testing.T, n, k int, relaxed bool) []anonmodel.Partition {
	t.Helper()
	recs := dataset.GeneratePatients(n, 31)
	ps, err := Anonymize(dataset.PatientsSchema(), recs, Options{
		Constraint: anonmodel.KAnonymity{K: k},
		Relaxed:    relaxed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

func TestAnonymizeBasics(t *testing.T) {
	for _, relaxed := range []bool{false, true} {
		ps := anonymizePatients(t, 500, 5, relaxed)
		if err := anonmodel.CheckAnonymity(ps, anonmodel.KAnonymity{K: 5}); err != nil {
			t.Fatalf("relaxed=%v: %v", relaxed, err)
		}
		if anonmodel.TotalRecords(ps) != 500 {
			t.Fatalf("relaxed=%v: lost records: %d", relaxed, anonmodel.TotalRecords(ps))
		}
		if len(ps) < 500/(5*4) {
			t.Fatalf("relaxed=%v: suspiciously few partitions: %d", relaxed, len(ps))
		}
		// No record appears twice.
		seen := map[int64]bool{}
		for _, p := range ps {
			for _, r := range p.Records {
				if seen[r.ID] {
					t.Fatalf("record %d in two partitions", r.ID)
				}
				seen[r.ID] = true
			}
		}
	}
}

func TestRelaxedPartitionsAreSmaller(t *testing.T) {
	// Relaxed Mondrian can always cut a partition of >= 2k records (ties
	// never block it), so every relaxed partition lands in [k, 2k+1);
	// strict can be forced to keep larger groups. Partition counts land
	// close to each other, but axis-order interactions mean neither
	// strictly dominates, so only approximate parity is asserted.
	strict := anonymizePatients(t, 1000, 10, false)
	relaxed := anonymizePatients(t, 1000, 10, true)
	if len(relaxed) < len(strict)*8/10 {
		t.Fatalf("relaxed made %d partitions, strict %d", len(relaxed), len(strict))
	}
	// Relaxed with k=10: every partition in [10, 2*10+1).
	for _, p := range relaxed {
		if p.Size() < 10 || p.Size() > 21 {
			t.Fatalf("relaxed partition of size %d", p.Size())
		}
	}
}

func TestUncuttableInput(t *testing.T) {
	// Fewer than 2k records: single partition covering everything.
	recs := dataset.GeneratePatients(7, 32)
	ps, err := Anonymize(dataset.PatientsSchema(), recs, Options{Constraint: anonmodel.KAnonymity{K: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 1 || ps[0].Size() != 7 {
		t.Fatalf("got %d partitions", len(ps))
	}
}

func TestInfeasibleInput(t *testing.T) {
	recs := dataset.GeneratePatients(3, 33)
	if _, err := Anonymize(dataset.PatientsSchema(), recs, Options{Constraint: anonmodel.KAnonymity{K: 5}}); err == nil {
		t.Fatal("3 records satisfied k=5")
	}
}

func TestValidation(t *testing.T) {
	recs := dataset.GeneratePatients(10, 34)
	if _, err := Anonymize(dataset.PatientsSchema(), recs, Options{}); err == nil {
		t.Fatal("nil constraint accepted")
	}
	if _, err := Anonymize(dataset.PatientsSchema(), recs, Options{Constraint: anonmodel.KAnonymity{K: 1}}); err == nil {
		t.Fatal("k=1 accepted")
	}
	bad := []attr.Record{{QI: []float64{1}}}
	if _, err := Anonymize(dataset.PatientsSchema(), bad, Options{Constraint: anonmodel.KAnonymity{K: 2}}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	ps, err := Anonymize(dataset.PatientsSchema(), nil, Options{Constraint: anonmodel.KAnonymity{K: 2}})
	if err != nil || ps != nil {
		t.Fatalf("empty input: %v %v", ps, err)
	}
}

func TestDuplicateHeavyData(t *testing.T) {
	// All records identical: no axis can be cut, strict or relaxed; a
	// single partition results.
	recs := make([]attr.Record, 20)
	for i := range recs {
		recs[i] = attr.Record{ID: int64(i), QI: []float64{30, 1, 53706}}
	}
	for _, relaxed := range []bool{false, true} {
		ps, err := Anonymize(dataset.PatientsSchema(), recs, Options{
			Constraint: anonmodel.KAnonymity{K: 5}, Relaxed: relaxed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(ps) != 1 || ps[0].Size() != 20 {
			t.Fatalf("relaxed=%v: got %d partitions", relaxed, len(ps))
		}
	}
}

func TestStrictKeepsValueClassesTogether(t *testing.T) {
	// 10 records with age 30 and 10 with age 40, identical otherwise:
	// strict Mondrian must cut between the classes, never inside one.
	var recs []attr.Record
	for i := 0; i < 10; i++ {
		recs = append(recs, attr.Record{ID: int64(i), QI: []float64{30, 0, 53706}})
	}
	for i := 10; i < 20; i++ {
		recs = append(recs, attr.Record{ID: int64(i), QI: []float64{40, 0, 53706}})
	}
	ps, err := Anonymize(dataset.PatientsSchema(), recs, Options{Constraint: anonmodel.KAnonymity{K: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("got %d partitions, want 2", len(ps))
	}
	for _, p := range ps {
		first := p.Records[0].QI[0]
		for _, r := range p.Records {
			if r.QI[0] != first {
				t.Fatal("strict cut divided a value class")
			}
		}
	}
}

func TestPartitionRegionsTileDomain(t *testing.T) {
	recs := dataset.GeneratePatients(400, 35)
	ps, err := Anonymize(dataset.PatientsSchema(), recs, Options{Constraint: anonmodel.KAnonymity{K: 8}})
	if err != nil {
		t.Fatal(err)
	}
	domain := attr.DomainOf(3, recs)
	for _, p := range ps {
		if !domain.ContainsBox(p.Box) {
			t.Fatalf("partition region %v escapes domain %v", p.Box, domain)
		}
	}
	// Every original point lies in exactly one partition's record set
	// (region boxes share boundaries, so box containment may be
	// ambiguous, but record assignment must not be).
	counts := map[int64]int{}
	for _, p := range ps {
		for _, r := range p.Records {
			counts[r.ID]++
		}
	}
	for id, c := range counts {
		if c != 1 {
			t.Fatalf("record %d assigned %d times", id, c)
		}
	}
	if len(counts) != 400 {
		t.Fatalf("assigned %d of 400 records", len(counts))
	}
}

func TestWithLDiversity(t *testing.T) {
	recs := dataset.GeneratePatients(600, 36)
	cons := anonmodel.LDiversity{K: 5, L: 3}
	ps, err := Anonymize(dataset.PatientsSchema(), recs, Options{Constraint: cons})
	if err != nil {
		t.Fatal(err)
	}
	if err := anonmodel.CheckAnonymity(ps, cons); err != nil {
		t.Fatal(err)
	}
}

func TestMedianWalkBack(t *testing.T) {
	// Values: 1,2,2,2,2,9 — median index 3 holds 2; strict must walk
	// back to cut at value 2 (lhs={1}) rather than divide the 2s.
	recs := []attr.Record{
		{ID: 0, QI: []float64{1, 0, 0}},
		{ID: 1, QI: []float64{2, 0, 0}},
		{ID: 2, QI: []float64{2, 0, 0}},
		{ID: 3, QI: []float64{2, 0, 0}},
		{ID: 4, QI: []float64{2, 0, 0}},
		{ID: 5, QI: []float64{9, 0, 0}},
	}
	m := &state{schema: dataset.PatientsSchema(), domain: attr.DomainOf(3, recs)}
	lhs, rhs, cut, ok := m.cut(recs, 0)
	if !ok {
		t.Fatal("cut failed")
	}
	if cut != 2 || len(lhs) != 1 || len(rhs) != 5 {
		t.Fatalf("cut=%v lhs=%d rhs=%d", cut, len(lhs), len(rhs))
	}
	for _, r := range rhs {
		if r.QI[0] < 2 {
			t.Fatal("rhs holds sub-median value")
		}
	}
}
