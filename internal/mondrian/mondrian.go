// Package mondrian is a clean-room Go implementation of the Mondrian
// multidimensional k-anonymization algorithm of LeFevre, DeWitt and
// Ramakrishnan [19] — the top-down baseline the paper compares its
// index-based bottom-up approach against throughout Section 5.
//
// The algorithm greedily partitions the quasi-identifier space: at each
// step it picks the attribute with the widest normalized range of
// values in the current partition, cuts at the median, and recurses,
// stopping when no cut leaves both halves allowable (at least k records,
// or whatever Constraint is installed). The published generalization of
// a partition is its recursion region — the whole slab of domain it
// occupies — which is precisely what leaves Mondrian "uncompacted":
// Section 4's compaction procedure shrinks those slabs to MBRs.
package mondrian

import (
	"fmt"
	"sort"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
)

// Options configures an anonymization run.
type Options struct {
	// Constraint decides which partitions are allowable. Required.
	Constraint anonmodel.Constraint
	// Relaxed selects the relaxed variant: the median cut may divide
	// records sharing the median value, guaranteeing balanced halves.
	// The strict variant (default) keeps equal values together, as in
	// the paper the authors of [19] provided to the authors.
	Relaxed bool
}

// Anonymize partitions recs under the given options. The input slice is
// reordered in place (callers needing original order should pass a
// copy). Partition boxes are recursion regions clipped to the data
// domain; adjacent partitions share cut boundaries, matching the
// paper's rendering of ranges like [20-30][30-40].
func Anonymize(schema *attr.Schema, recs []attr.Record, opt Options) ([]anonmodel.Partition, error) {
	if opt.Constraint == nil {
		return nil, fmt.Errorf("mondrian: nil constraint")
	}
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	for i, r := range recs {
		if len(r.QI) != schema.Dims() {
			return nil, fmt.Errorf("mondrian: record %d has %d attributes, schema has %d", i, len(r.QI), schema.Dims())
		}
	}
	if len(recs) == 0 {
		return nil, nil
	}
	if !opt.Constraint.Satisfied(recs) {
		return nil, fmt.Errorf("mondrian: input of %d records cannot satisfy %v", len(recs), opt.Constraint)
	}
	m := &state{schema: schema, opt: opt, domain: attr.DomainOf(schema.Dims(), recs)}
	m.recurse(recs, m.domain.Clone())
	return m.out, nil
}

type state struct {
	schema *attr.Schema
	opt    Options
	domain attr.Box
	out    []anonmodel.Partition
}

// recurse implements the Mondrian recursion on one partition.
func (m *state) recurse(recs []attr.Record, region attr.Box) {
	// Fast reject: a partition that cannot be divided into two groups of
	// MinSize records each has no allowable cut.
	if len(recs) >= 2*m.opt.Constraint.MinSize() {
		for _, axis := range m.axesByWidth(recs) {
			lhs, rhs, cut, ok := m.cut(recs, axis)
			if !ok {
				continue
			}
			if !m.opt.Constraint.Satisfied(lhs) || !m.opt.Constraint.Satisfied(rhs) {
				continue
			}
			lRegion := region.Clone()
			rRegion := region.Clone()
			lRegion[axis].Hi = cut
			rRegion[axis].Lo = cut
			m.recurse(lhs, lRegion)
			m.recurse(rhs, rRegion)
			return
		}
	}
	// No allowable cut: publish this partition.
	m.out = append(m.out, anonmodel.Partition{Box: region, Records: recs})
}

// axesByWidth orders the axes by descending normalized record spread —
// the Mondrian "choose dimension" heuristic.
func (m *state) axesByWidth(recs []attr.Record) []int {
	dims := m.schema.Dims()
	spread := attr.NewBox(dims)
	for _, r := range recs {
		spread.Include(r.QI)
	}
	axes := make([]int, dims)
	widths := make([]float64, dims)
	for a := 0; a < dims; a++ {
		axes[a] = a
		widths[a] = spread[a].Width()
		if dw := m.domain[a].Width(); dw > 0 {
			widths[a] /= dw
		}
	}
	sort.SliceStable(axes, func(i, j int) bool { return widths[axes[i]] > widths[axes[j]] })
	return axes
}

// cut divides recs at the median of axis. In strict mode records with
// equal values stay together (the cut value separates value classes); in
// relaxed mode the cut is exactly at the median index. It reports
// ok=false when the axis cannot be cut (all values equal). The returned
// cut value is the boundary both published regions share.
func (m *state) cut(recs []attr.Record, axis int) (lhs, rhs []attr.Record, cut float64, ok bool) {
	sort.Slice(recs, func(i, j int) bool { return recs[i].QI[axis] < recs[j].QI[axis] })
	n := len(recs)
	if recs[0].QI[axis] == recs[n-1].QI[axis] {
		return nil, nil, 0, false
	}
	if m.opt.Relaxed {
		mid := n / 2
		return recs[:mid], recs[mid:], recs[mid].QI[axis], true
	}
	mid := n / 2
	v := recs[mid].QI[axis]
	if v == recs[0].QI[axis] {
		for mid < n && recs[mid].QI[axis] == recs[0].QI[axis] {
			mid++
		}
		v = recs[mid].QI[axis]
	} else {
		// Walk back to the first record holding the median value so the
		// value class is not divided.
		for mid > 0 && recs[mid-1].QI[axis] == v {
			mid--
		}
	}
	return recs[:mid], recs[mid:], v, true
}
