// Package mondrian is a clean-room Go implementation of the Mondrian
// multidimensional k-anonymization algorithm of LeFevre, DeWitt and
// Ramakrishnan [19] — the top-down baseline the paper compares its
// index-based bottom-up approach against throughout Section 5.
//
// The algorithm greedily partitions the quasi-identifier space: at each
// step it picks the attribute with the widest normalized range of
// values in the current partition, cuts at the median, and recurses,
// stopping when no cut leaves both halves allowable (at least k records,
// or whatever Constraint is installed). The published generalization of
// a partition is its recursion region — the whole slab of domain it
// occupies — which is precisely what leaves Mondrian "uncompacted":
// Section 4's compaction procedure shrinks those slabs to MBRs.
package mondrian

import (
	"fmt"
	"sort"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/par"
)

// Options configures an anonymization run.
type Options struct {
	// Constraint decides which partitions are allowable. Required.
	Constraint anonmodel.Constraint
	// Relaxed selects the relaxed variant: the median cut may divide
	// records sharing the median value, guaranteeing balanced halves.
	// The strict variant (default) keeps equal values together, as in
	// the paper the authors of [19] provided to the authors.
	Relaxed bool
	// Parallelism bounds the worker goroutines used for the recursion:
	// 0 uses all available cores, 1 (or negative) runs serially. The
	// two halves of a cut own disjoint record subslices and the output
	// is assembled left-half-first at every cut, so the partition list
	// is identical for every setting.
	Parallelism int
}

// parCutMin is the smallest half of a cut worth forking to another
// worker; smaller halves recurse inline.
const parCutMin = 1024

// Anonymize partitions recs under the given options. The input slice is
// reordered in place (callers needing original order should pass a
// copy). Partition boxes are recursion regions clipped to the data
// domain; adjacent partitions share cut boundaries, matching the
// paper's rendering of ranges like [20-30][30-40].
func Anonymize(schema *attr.Schema, recs []attr.Record, opt Options) ([]anonmodel.Partition, error) {
	if err := anonmodel.Validate(opt.Constraint); err != nil {
		return nil, fmt.Errorf("mondrian: %w", err)
	}
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	for i, r := range recs {
		if len(r.QI) != schema.Dims() {
			return nil, fmt.Errorf("mondrian: record %d has %d attributes, schema has %d", i, len(r.QI), schema.Dims())
		}
	}
	if len(recs) == 0 {
		return nil, nil
	}
	if !opt.Constraint.Satisfied(recs) {
		return nil, fmt.Errorf("mondrian: input of %d records cannot satisfy %v", len(recs), opt.Constraint)
	}
	m := &state{schema: schema, opt: opt, domain: attr.DomainOf(schema.Dims(), recs)}
	return m.recurse(recs, m.domain.Clone(), par.NewPool(opt.Parallelism)), nil
}

type state struct {
	schema *attr.Schema
	opt    Options
	domain attr.Box
}

// recurse implements the Mondrian recursion on one partition and
// returns its published partitions in cut order (left half first).
// After a cut the two halves alias disjoint subslices of recs and the
// recursion reads only immutable state (schema, options, domain), so
// large halves fork to the pool; the left-first assembly keeps the
// output independent of the worker count.
func (m *state) recurse(recs []attr.Record, region attr.Box, pool *par.Pool) []anonmodel.Partition {
	// Fast reject: a partition that cannot be divided into two groups of
	// MinSize records each has no allowable cut.
	if len(recs) >= 2*m.opt.Constraint.MinSize() {
		for _, axis := range m.axesByWidth(recs) {
			lhs, rhs, cut, ok := m.cut(recs, axis)
			if !ok {
				continue
			}
			if !m.opt.Constraint.Satisfied(lhs) || !m.opt.Constraint.Satisfied(rhs) {
				continue
			}
			lRegion := region.Clone()
			rRegion := region.Clone()
			lRegion[axis].Hi = cut
			rRegion[axis].Lo = cut
			if len(rhs) >= parCutMin {
				var rOut []anonmodel.Partition
				join := pool.Fork(func() { rOut = m.recurse(rhs, rRegion, pool) })
				lOut := m.recurse(lhs, lRegion, pool)
				join()
				return append(lOut, rOut...)
			}
			lOut := m.recurse(lhs, lRegion, pool)
			return append(lOut, m.recurse(rhs, rRegion, pool)...)
		}
	}
	// No allowable cut: publish this partition.
	return []anonmodel.Partition{{Box: region, Records: recs}}
}

// axesByWidth orders the axes by descending normalized record spread —
// the Mondrian "choose dimension" heuristic.
func (m *state) axesByWidth(recs []attr.Record) []int {
	dims := m.schema.Dims()
	spread := attr.NewBox(dims)
	for _, r := range recs {
		spread.Include(r.QI)
	}
	axes := make([]int, dims)
	widths := make([]float64, dims)
	for a := 0; a < dims; a++ {
		axes[a] = a
		widths[a] = spread[a].Width()
		if dw := m.domain[a].Width(); dw > 0 {
			widths[a] /= dw
		}
	}
	sort.SliceStable(axes, func(i, j int) bool { return widths[axes[i]] > widths[axes[j]] })
	return axes
}

// cut divides recs at the median of axis. In strict mode records with
// equal values stay together (the cut value separates value classes); in
// relaxed mode the cut is exactly at the median index. It reports
// ok=false when the axis cannot be cut (all values equal). The returned
// cut value is the boundary both published regions share.
func (m *state) cut(recs []attr.Record, axis int) (lhs, rhs []attr.Record, cut float64, ok bool) {
	sort.Slice(recs, func(i, j int) bool { return recs[i].QI[axis] < recs[j].QI[axis] })
	n := len(recs)
	if recs[0].QI[axis] == recs[n-1].QI[axis] {
		return nil, nil, 0, false
	}
	if m.opt.Relaxed {
		mid := n / 2
		return recs[:mid], recs[mid:], recs[mid].QI[axis], true
	}
	mid := n / 2
	v := recs[mid].QI[axis]
	if v == recs[0].QI[axis] {
		for mid < n && recs[mid].QI[axis] == recs[0].QI[axis] {
			mid++
		}
		v = recs[mid].QI[axis]
	} else {
		// Walk back to the first record holding the median value so the
		// value class is not divided.
		for mid > 0 && recs[mid-1].QI[axis] == v {
			mid--
		}
	}
	return recs[:mid], recs[mid:], v, true
}
