package quality

import (
	"math"
	"testing"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/compact"
	"spatialanon/internal/dataset"
	"spatialanon/internal/mondrian"
)

func twoPartitions() []anonmodel.Partition {
	return []anonmodel.Partition{
		{
			Box: attr.Box{{Lo: 20, Hi: 30}, {Lo: 0, Hi: 0}},
			Records: []attr.Record{
				{ID: 1, QI: []float64{20, 0}},
				{ID: 2, QI: []float64{30, 0}},
			},
		},
		{
			Box: attr.Box{{Lo: 40, Hi: 60}, {Lo: 0, Hi: 1}},
			Records: []attr.Record{
				{ID: 3, QI: []float64{40, 0}},
				{ID: 4, QI: []float64{50, 1}},
				{ID: 5, QI: []float64{60, 1}},
			},
		},
	}
}

func twoAttrSchema() *attr.Schema {
	return &attr.Schema{Attrs: []attr.Attribute{
		{Name: "age", Kind: attr.Numeric},
		{Name: "sex", Kind: attr.Categorical},
	}}
}

func TestDiscernibilityHandComputed(t *testing.T) {
	ps := twoPartitions()
	if dm := Discernibility(ps); dm != 4+9 {
		t.Fatalf("DM = %v, want 13", dm)
	}
	if Discernibility(nil) != 0 {
		t.Fatal("DM of empty must be 0")
	}
}

func TestCertaintyHandComputed(t *testing.T) {
	ps := twoPartitions()
	s := twoAttrSchema()
	domain := attr.Box{{Lo: 20, Hi: 60}, {Lo: 0, Hi: 1}}
	// P1: age 10/40, sex 0/1 -> ncp 0.25, times 2 tuples = 0.5
	// P2: age 20/40, sex 1/1 -> ncp 1.5, times 3 tuples = 4.5
	want := 0.5 + 4.5
	if cm := Certainty(s, ps, domain); math.Abs(cm-want) > 1e-12 {
		t.Fatalf("CM = %v, want %v", cm, want)
	}
	// Weights double one attribute's contribution.
	s.Attrs[0].Weight = 2
	want = 2*(10.0/40)*2 + (2*(20.0/40)+1)*3
	if cm := Certainty(s, ps, domain); math.Abs(cm-want) > 1e-12 {
		t.Fatalf("weighted CM = %v, want %v", cm, want)
	}
}

func TestCertaintyWithHierarchy(t *testing.T) {
	h := attr.MustBuildHierarchy(attr.Node("*",
		attr.Node("WI", attr.Leaf("53706"), attr.Leaf("53710")),
		attr.Node("IA", attr.Leaf("52100"), attr.Leaf("52108")),
	))
	s := &attr.Schema{Attrs: []attr.Attribute{
		{Name: "zip", Kind: attr.Categorical, Hierarchy: h},
	}}
	domain := attr.Box{{Lo: 0, Hi: 3}}
	// Codes 0..1 generalize to WI: 2 of 4 leaves -> 0.5 per tuple.
	ps := []anonmodel.Partition{{
		Box: attr.Box{{Lo: 0, Hi: 1}},
		Records: []attr.Record{
			{ID: 1, QI: []float64{0}},
			{ID: 2, QI: []float64{1}},
		},
	}}
	if cm := Certainty(s, ps, domain); math.Abs(cm-1.0) > 1e-12 {
		t.Fatalf("hierarchy CM = %v, want 1.0", cm)
	}
	// Single value: zero contribution.
	single := []anonmodel.Partition{{
		Box:     attr.Box{{Lo: 2, Hi: 2}},
		Records: []attr.Record{{ID: 3, QI: []float64{2}}},
	}}
	if cm := Certainty(s, single, domain); cm != 0 {
		t.Fatalf("single-value CM = %v, want 0", cm)
	}
	// Codes spanning both subtrees generalize to the root: 4/4 leaves.
	wide := []anonmodel.Partition{{
		Box: attr.Box{{Lo: 1, Hi: 2}},
		Records: []attr.Record{
			{ID: 4, QI: []float64{1}},
			{ID: 5, QI: []float64{2}},
		},
	}}
	if cm := Certainty(s, wide, domain); math.Abs(cm-2.0) > 1e-12 {
		t.Fatalf("cross-subtree CM = %v, want 2.0", cm)
	}
}

func TestGlobalCertaintyBounds(t *testing.T) {
	s := twoAttrSchema()
	ps := twoPartitions()
	domain := attr.Box{{Lo: 20, Hi: 60}, {Lo: 0, Hi: 1}}
	g := GlobalCertainty(s, ps, domain)
	if g < 0 || g > 1 {
		t.Fatalf("GCP = %v outside [0,1]", g)
	}
	// Exact single-point partitions score 0.
	exact := []anonmodel.Partition{{
		Box:     attr.Box{{Lo: 25, Hi: 25}, {Lo: 0, Hi: 0}},
		Records: []attr.Record{{ID: 1, QI: []float64{25, 0}}},
	}}
	if g := GlobalCertainty(s, exact, domain); g != 0 {
		t.Fatalf("GCP of exact release = %v", g)
	}
	// Full-domain partitions score 1.
	full := []anonmodel.Partition{{
		Box: domain,
		Records: []attr.Record{
			{ID: 1, QI: []float64{20, 0}},
			{ID: 2, QI: []float64{60, 1}},
		},
	}}
	if g := GlobalCertainty(s, full, domain); math.Abs(g-1) > 1e-12 {
		t.Fatalf("GCP of full-domain release = %v", g)
	}
	if GlobalCertainty(s, nil, domain) != 0 {
		t.Fatal("GCP of empty release must be 0")
	}
}

func TestKLDivergenceHandComputed(t *testing.T) {
	// One partition, box of 2 cells, two distinct single tuples:
	// p1 = 1/2 each; p2 = (2/2)*(1/2) = 1/2 each -> KL = 0.
	ps := []anonmodel.Partition{{
		Box: attr.Box{{Lo: 0, Hi: 1}},
		Records: []attr.Record{
			{ID: 1, QI: []float64{0}},
			{ID: 2, QI: []float64{1}},
		},
	}}
	if kl := KLDivergence(ps); math.Abs(kl) > 1e-12 {
		t.Fatalf("uniform KL = %v, want 0", kl)
	}
	// Box of 3 cells, two tuples at the same point: p1(t)=1, p2(t)=1/3,
	// KL = log 3.
	ps2 := []anonmodel.Partition{{
		Box: attr.Box{{Lo: 0, Hi: 2}},
		Records: []attr.Record{
			{ID: 1, QI: []float64{1}},
			{ID: 2, QI: []float64{1}},
		},
	}}
	if kl := KLDivergence(ps2); math.Abs(kl-math.Log(3)) > 1e-12 {
		t.Fatalf("KL = %v, want log 3", kl)
	}
	if KLDivergence(nil) != 0 {
		t.Fatal("KL of empty must be 0")
	}
}

func TestKLNonNegativeAndCompactionHelps(t *testing.T) {
	recs := dataset.GeneratePatients(1000, 50)
	ps, err := mondrian.Anonymize(dataset.PatientsSchema(), recs, mondrian.Options{
		Constraint: anonmodel.KAnonymity{K: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	klRaw := KLDivergence(ps)
	if klRaw < 0 {
		t.Fatalf("KL negative: %v", klRaw)
	}
	cs := compact.Partitions(ps)
	klCompact := KLDivergence(cs)
	if klCompact < 0 {
		t.Fatalf("compacted KL negative: %v", klCompact)
	}
	if klCompact > klRaw+1e-9 {
		t.Fatalf("compaction worsened KL: %v -> %v", klRaw, klCompact)
	}
	// Certainty must also never get worse under compaction (the paper's
	// Figure 10(b) shows it improving sharply).
	s := dataset.PatientsSchema()
	domain := attr.DomainOf(s.Dims(), recs)
	if cmC, cmR := Certainty(s, cs, domain), Certainty(s, ps, domain); cmC > cmR+1e-9 {
		t.Fatalf("compaction worsened CM: %v -> %v", cmR, cmC)
	}
	// ... while DM is exactly unchanged (Figure 10(a)).
	if Discernibility(cs) != Discernibility(ps) {
		t.Fatal("compaction changed DM")
	}
}

func TestMeasure(t *testing.T) {
	s := twoAttrSchema()
	ps := twoPartitions()
	domain := attr.Box{{Lo: 20, Hi: 60}, {Lo: 0, Hi: 1}}
	r := Measure(s, ps, domain)
	if r.Partitions != 2 {
		t.Fatalf("partitions = %d", r.Partitions)
	}
	if r.Discernibility != Discernibility(ps) ||
		r.Certainty != Certainty(s, ps, domain) ||
		r.KLDivergence != KLDivergence(ps) {
		t.Fatal("Measure disagrees with individual metrics")
	}
}

func TestBoxCells(t *testing.T) {
	if c := boxCells(attr.Box{{Lo: 0, Hi: 0}}); c != 1 {
		t.Fatalf("point cells = %v", c)
	}
	if c := boxCells(attr.Box{{Lo: 0, Hi: 2}, {Lo: 5, Hi: 6}}); c != 6 {
		t.Fatalf("cells = %v, want 6", c)
	}
}
