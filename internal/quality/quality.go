// Package quality implements the three anonymization quality measures
// the paper evaluates with (Section 5.3):
//
//   - the discernibility penalty DM(T) = Σ|Pᵢ|² of Bayardo and
//     Agrawal [4] (Definition 3),
//   - the weighted normalized certainty penalty CM(T) = Σ NCP(t) of Xu
//     et al. [33] (Definition 4), and
//   - the KL divergence between the original and anonymized data
//     distributions of Kifer and Gehrke [15] (Definition 5).
//
// The paper's central quality observation reappears here as code: DM
// depends only on partition cardinalities, so compaction cannot change
// it, while CM and KL reward the tight boxes (gaps) that compaction and
// MBR-keeping indexes produce.
package quality

import (
	"math"
	"sort"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/par"
)

// Discernibility returns DM(T) = Σ|Pᵢ|² (Definition 3). Each tuple is
// penalized by the size of its equivalence class, so the metric rewards
// partitions close to the minimum size k.
func Discernibility(ps []anonmodel.Partition) float64 {
	dm := 0.0
	for _, p := range ps {
		n := float64(p.Size())
		dm += n * n
	}
	return dm
}

// Certainty returns CM(T) = Σ_t NCP(t) (Definition 4). domain is the
// extent of the whole table per attribute (|T.A_i|); the per-attribute
// weights come from the schema (default 1). For a categorical attribute
// carrying a generalization hierarchy, |t.A_i| is the number of leaves
// under the lowest common ancestor of the partition's code range and a
// single value contributes zero, following [33]; coded attributes
// without hierarchies are treated numerically, exactly as the paper's
// experimental configuration ("hierarchical constraints were eliminated
// by imposing an intuitive ordering").
func Certainty(s *attr.Schema, ps []anonmodel.Partition, domain attr.Box) float64 {
	cm := 0.0
	for _, p := range ps {
		cm += float64(p.Size()) * ncpBox(s, p.Box, domain)
	}
	return cm
}

// ncpBox is the NCP every tuple generalized to box pays.
func ncpBox(s *attr.Schema, box attr.Box, domain attr.Box) float64 {
	ncp := 0.0
	for i, a := range s.Attrs {
		w := a.EffectiveWeight()
		if a.Hierarchy != nil {
			total := a.Hierarchy.LeafCount()
			if total <= 1 || box[i].IsEmpty() {
				continue
			}
			_, span, err := a.Hierarchy.GeneralizeInterval(box[i])
			if err != nil || span <= 1 {
				continue
			}
			ncp += w * float64(span) / float64(total)
			continue
		}
		dw := domain[i].Width()
		if dw <= 0 {
			continue
		}
		ncp += w * box[i].Width() / dw
	}
	return ncp
}

// GlobalCertainty returns the certainty penalty normalized into [0,1]:
// CM divided by the number of tuples times the total attribute weight.
// 0 means every tuple published exact values; 1 means every tuple was
// generalized to the full domain.
func GlobalCertainty(s *attr.Schema, ps []anonmodel.Partition, domain attr.Box) float64 {
	n := anonmodel.TotalRecords(ps)
	if n == 0 {
		return 0
	}
	wsum := 0.0
	for _, a := range s.Attrs {
		wsum += a.EffectiveWeight()
	}
	if wsum == 0 {
		return 0
	}
	return Certainty(s, ps, domain) / (float64(n) * wsum)
}

// KLDivergence returns KL(p₁‖p₂) (Definition 5) where p₁ is the
// empirical distribution of the original tuples and p₂ spreads each
// partition's mass uniformly over the integer cells of its published
// box, following [15]. Attribute values are assumed integer-coded (as
// all the paper's data sets are); a box side of width w therefore spans
// w+1 cells.
//
// Because p₂ restricted to the original tuples is a sub-probability
// measure, the result is always >= 0, and it is 0 exactly when every
// partition is a single point column of identical tuples.
func KLDivergence(ps []anonmodel.Partition) float64 {
	n := float64(anonmodel.TotalRecords(ps))
	if n == 0 {
		return 0
	}
	kl := 0.0
	for _, p := range ps {
		kl += klPartition(p, n)
	}
	return kl
}

// klPartition is one partition's contribution to KL(p₁‖p₂) in a table
// of n tuples. Tuple groups are accumulated in sorted key order:
// float addition is not associative, so summing in map order would
// let the low bits vary run to run.
func klPartition(p anonmodel.Partition, n float64) float64 {
	if p.Size() == 0 {
		return 0
	}
	cells := boxCells(p.Box)
	mass := float64(p.Size()) / n // partition's share of p2
	// Group identical tuples within the partition: p1(t) = c_t/n.
	counts := make(map[string]int, p.Size())
	for _, r := range p.Records {
		counts[pointKey(r.QI)]++
	}
	keys := make([]string, 0, len(counts))
	for key := range counts {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	kl := 0.0
	for _, key := range keys {
		p1 := float64(counts[key]) / n
		p2 := mass / cells
		kl += p1 * math.Log(p1/p2)
	}
	return kl
}

// boxCells counts the integer lattice cells in a box.
func boxCells(b attr.Box) float64 {
	cells := 1.0
	for _, iv := range b {
		w := math.Round(iv.Hi - iv.Lo)
		if w < 0 {
			w = 0
		}
		cells *= w + 1
	}
	return cells
}

// pointKey canonicalizes a QI vector for exact grouping.
func pointKey(qi []float64) string {
	buf := make([]byte, 0, len(qi)*8)
	for _, v := range qi {
		bits := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(bits>>s))
		}
	}
	return string(buf)
}

// Report bundles the three metrics for one anonymization — one row of
// the Figure 10/11 plots.
type Report struct {
	Partitions     int
	Discernibility float64
	Certainty      float64
	KLDivergence   float64
}

// Measure computes all three metrics.
func Measure(s *attr.Schema, ps []anonmodel.Partition, domain attr.Box) Report {
	return Report{
		Partitions:     len(ps),
		Discernibility: Discernibility(ps),
		Certainty:      Certainty(s, ps, domain),
		KLDivergence:   KLDivergence(ps),
	}
}

// measureChunk is the fixed reduction granule of MeasureP. Partials
// are computed per chunk and combined in chunk order, so the chunk
// boundaries — not the worker schedule — define the floating-point
// summation tree.
const measureChunk = 64

// MeasureP computes all three metrics with up to `workers` goroutines
// (0 = all cores, 1 = serial). Per-partition terms are accumulated
// into fixed 64-partition chunks and the chunk partials are summed in
// chunk order, making the result independent of the worker count; for
// tables of more than one chunk the summation tree differs from
// Measure's flat left-to-right sum, so the two can disagree in the
// last bits. Use one or the other consistently when comparing runs.
func MeasureP(s *attr.Schema, ps []anonmodel.Partition, domain attr.Box, workers int) Report {
	n := len(ps)
	if n == 0 {
		return Report{}
	}
	total := float64(anonmodel.TotalRecords(ps))
	chunks := (n + measureChunk - 1) / measureChunk
	type partial struct{ dm, cm, kl float64 }
	parts := make([]partial, chunks)
	par.Do(workers, chunks, func(c int) {
		lo := c * measureChunk
		hi := lo + measureChunk
		if hi > n {
			hi = n
		}
		var pt partial
		for _, p := range ps[lo:hi] {
			sz := float64(p.Size())
			pt.dm += sz * sz
			pt.cm += sz * ncpBox(s, p.Box, domain)
			pt.kl += klPartition(p, total)
		}
		parts[c] = pt
	})
	r := Report{Partitions: n}
	for _, pt := range parts {
		r.Discernibility += pt.dm
		r.Certainty += pt.cm
		r.KLDivergence += pt.kl
	}
	return r
}
