// Package compact implements the compaction procedure of Section 4: for
// each partition of a k-anonymous data set, regenerate the published
// generalization as the minimum bounding box of the records actually in
// the partition. Numeric attributes shrink to [min, max]; integer-coded
// categorical attributes shrink to the minimal code range (rendering
// through a generalization hierarchy then yields the lowest common
// ancestor, exactly as the paper specifies).
//
// Compaction introduces "gaps" — regions of the domain that provably
// contain no record — which is what makes compacted anonymizations so
// much more precise (Figures 10 and 12). The procedure is deliberately a
// single pass over each partition so that it can be retrofitted onto the
// output of any anonymization algorithm, index-based or not; Figure 9
// shows its cost is a small fraction of anonymization time.
package compact

import (
	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/par"
)

// Partition returns a copy of p whose box is the tight MBR of its
// records. Records are shared, not copied. A partition with no records
// keeps an empty box.
func Partition(p anonmodel.Partition) anonmodel.Partition {
	dims := len(p.Box)
	if dims == 0 && len(p.Records) > 0 {
		dims = len(p.Records[0].QI)
	}
	box := attr.NewBox(dims)
	for _, r := range p.Records {
		box.Include(r.QI)
	}
	return anonmodel.Partition{Box: box, Records: p.Records}
}

// Partitions compacts every partition, returning a new slice. The
// record sets — and therefore the discernibility penalty, which depends
// only on partition cardinalities — are unchanged; only the published
// boxes shrink (Section 5.3 observes exactly this on Figure 10(a)).
func Partitions(ps []anonmodel.Partition) []anonmodel.Partition {
	return PartitionsP(ps, 1)
}

// PartitionsP is Partitions with a parallelism knob (0 = all cores,
// 1 = serial). Each partition compacts independently — the pass reads
// records and writes only its own output slot — so the work fans out
// by index; the result is identical for every worker count.
func PartitionsP(ps []anonmodel.Partition, workers int) []anonmodel.Partition {
	out := make([]anonmodel.Partition, len(ps))
	par.Do(workers, len(ps), func(i int) {
		out[i] = Partition(ps[i])
	})
	return out
}
