// Package compact implements the compaction procedure of Section 4: for
// each partition of a k-anonymous data set, regenerate the published
// generalization as the minimum bounding box of the records actually in
// the partition. Numeric attributes shrink to [min, max]; integer-coded
// categorical attributes shrink to the minimal code range (rendering
// through a generalization hierarchy then yields the lowest common
// ancestor, exactly as the paper specifies).
//
// Compaction introduces "gaps" — regions of the domain that provably
// contain no record — which is what makes compacted anonymizations so
// much more precise (Figures 10 and 12). The procedure is deliberately a
// single pass over each partition so that it can be retrofitted onto the
// output of any anonymization algorithm, index-based or not; Figure 9
// shows its cost is a small fraction of anonymization time.
package compact

import (
	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
)

// Partition returns a copy of p whose box is the tight MBR of its
// records. Records are shared, not copied. A partition with no records
// keeps an empty box.
func Partition(p anonmodel.Partition) anonmodel.Partition {
	dims := len(p.Box)
	if dims == 0 && len(p.Records) > 0 {
		dims = len(p.Records[0].QI)
	}
	box := attr.NewBox(dims)
	for _, r := range p.Records {
		box.Include(r.QI)
	}
	return anonmodel.Partition{Box: box, Records: p.Records}
}

// Partitions compacts every partition, returning a new slice. The
// record sets — and therefore the discernibility penalty, which depends
// only on partition cardinalities — are unchanged; only the published
// boxes shrink (Section 5.3 observes exactly this on Figure 10(a)).
func Partitions(ps []anonmodel.Partition) []anonmodel.Partition {
	out := make([]anonmodel.Partition, len(ps))
	for i, p := range ps {
		out[i] = Partition(p)
	}
	return out
}
