package compact

import (
	"testing"
	"testing/quick"

	"math/rand"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/dataset"
	"spatialanon/internal/mondrian"
)

func TestPartitionShrinksToMBR(t *testing.T) {
	p := anonmodel.Partition{
		Box: attr.Box{{Lo: 0, Hi: 100}, {Lo: 0, Hi: 100}},
		Records: []attr.Record{
			{ID: 1, QI: []float64{20, 30}},
			{ID: 2, QI: []float64{24, 35}},
		},
	}
	c := Partition(p)
	want := attr.Box{{Lo: 20, Hi: 24}, {Lo: 30, Hi: 35}}
	if !c.Box.Equal(want) {
		t.Fatalf("compacted box = %v, want %v", c.Box, want)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(c.Records) != 2 {
		t.Fatal("records lost")
	}
	// Original untouched.
	if p.Box[0].Hi != 100 {
		t.Fatal("input partition mutated")
	}
}

func TestEmptyPartition(t *testing.T) {
	c := Partition(anonmodel.Partition{Box: attr.NewBox(2)})
	if !c.Box.IsEmpty() {
		t.Fatalf("empty partition compacted to %v", c.Box)
	}
	// A partition with records but a zero-dim box infers dims.
	c2 := Partition(anonmodel.Partition{Records: []attr.Record{{QI: []float64{3, 4}}}})
	if !c2.Box.Equal(attr.Box{{Lo: 3, Hi: 3}, {Lo: 4, Hi: 4}}) {
		t.Fatalf("inferred box = %v", c2.Box)
	}
}

// Properties, on real Mondrian output: compaction never enlarges any
// interval, still contains all records, preserves record sets exactly,
// and is idempotent.
func TestCompactionProperties(t *testing.T) {
	recs := dataset.GeneratePatients(800, 40)
	ps, err := mondrian.Anonymize(dataset.PatientsSchema(), recs, mondrian.Options{
		Constraint: anonmodel.KAnonymity{K: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	cs := Partitions(ps)
	if len(cs) != len(ps) {
		t.Fatal("partition count changed")
	}
	for i := range ps {
		if !ps[i].Box.ContainsBox(cs[i].Box) {
			t.Fatalf("partition %d: compacted box %v escapes original %v", i, cs[i].Box, ps[i].Box)
		}
		for d := range cs[i].Box {
			if cs[i].Box[d].Width() > ps[i].Box[d].Width()+1e-12 {
				t.Fatalf("partition %d dim %d grew", i, d)
			}
		}
		if err := cs[i].Validate(); err != nil {
			t.Fatalf("partition %d: %v", i, err)
		}
		if len(cs[i].Records) != len(ps[i].Records) {
			t.Fatalf("partition %d record count changed", i)
		}
	}
	// Idempotence.
	twice := Partitions(cs)
	for i := range cs {
		if !twice[i].Box.Equal(cs[i].Box) {
			t.Fatalf("compaction not idempotent at %d", i)
		}
	}
	// DM is untouched by construction (same cardinalities) — assert the
	// cardinality multiset explicitly.
	for i := range ps {
		if cs[i].Size() != ps[i].Size() {
			t.Fatal("cardinality changed")
		}
	}
}

// quick-check: compaction of random partitions always yields the exact
// MBR (Lo = min, Hi = max per dimension).
func TestQuickCompactExactMBR(t *testing.T) {
	f := func(pts [][2]int8) bool {
		if len(pts) == 0 {
			return true
		}
		recs := make([]attr.Record, len(pts))
		for i, p := range pts {
			recs[i] = attr.Record{ID: int64(i), QI: []float64{float64(p[0]), float64(p[1])}}
		}
		c := Partition(anonmodel.Partition{Box: attr.NewBox(2), Records: recs})
		for d := 0; d < 2; d++ {
			lo, hi := recs[0].QI[d], recs[0].QI[d]
			for _, r := range recs {
				if r.QI[d] < lo {
					lo = r.QI[d]
				}
				if r.QI[d] > hi {
					hi = r.QI[d]
				}
			}
			if c.Box[d].Lo != lo || c.Box[d].Hi != hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(41))}); err != nil {
		t.Fatal(err)
	}
}
