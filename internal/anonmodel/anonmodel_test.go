package anonmodel

import (
	"strings"
	"testing"

	"spatialanon/internal/attr"
)

func recsWithSensitive(vals ...string) []attr.Record {
	out := make([]attr.Record, len(vals))
	for i, v := range vals {
		out[i] = attr.Record{ID: int64(i), QI: []float64{float64(i)}, Sensitive: v}
	}
	return out
}

func TestKAnonymity(t *testing.T) {
	c := KAnonymity{K: 3}
	if c.Satisfied(recsWithSensitive("a", "b")) {
		t.Fatal("2 records satisfied 3-anonymity")
	}
	if !c.Satisfied(recsWithSensitive("a", "a", "a")) {
		t.Fatal("3 records failed 3-anonymity")
	}
	if c.MinSize() != 3 {
		t.Fatalf("MinSize = %d", c.MinSize())
	}
	if !strings.Contains(c.String(), "3-anonymity") {
		t.Fatalf("String = %q", c)
	}
}

func TestLDiversity(t *testing.T) {
	c := LDiversity{K: 2, L: 3}
	if c.Satisfied(recsWithSensitive("flu", "flu", "flu", "flu")) {
		t.Fatal("1 distinct value satisfied 3-diversity")
	}
	if !c.Satisfied(recsWithSensitive("flu", "cancer", "anemia")) {
		t.Fatal("3 distinct values failed 3-diversity")
	}
	if c.Satisfied(recsWithSensitive("flu")) {
		t.Fatal("single record satisfied k=2")
	}
	if c.MinSize() != 3 {
		t.Fatalf("MinSize = %d (max of K and L)", c.MinSize())
	}
	if (LDiversity{K: 5, L: 2}).MinSize() != 5 {
		t.Fatal("MinSize must be max(K,L)")
	}
}

func TestAlphaK(t *testing.T) {
	c := AlphaK{K: 2, Alpha: 0.5}
	if c.Satisfied(recsWithSensitive("flu", "flu", "flu", "cold")) {
		t.Fatal("75% single value satisfied alpha=0.5")
	}
	if !c.Satisfied(recsWithSensitive("flu", "flu", "cold", "cold")) {
		t.Fatal("50/50 failed alpha=0.5")
	}
	if c.Satisfied(recsWithSensitive("flu")) {
		t.Fatal("single record satisfied k=2")
	}
	if c.MinSize() != 2 {
		t.Fatalf("MinSize = %d", c.MinSize())
	}
}

func TestPartitionValidate(t *testing.T) {
	p := Partition{
		Box:     attr.Box{{Lo: 0, Hi: 10}},
		Records: []attr.Record{{ID: 1, QI: []float64{5}}},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Size() != 1 {
		t.Fatalf("Size = %d", p.Size())
	}
	bad := Partition{
		Box:     attr.Box{{Lo: 0, Hi: 10}},
		Records: []attr.Record{{ID: 2, QI: []float64{11}}},
	}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-box record accepted")
	}
}

func TestCheckAnonymity(t *testing.T) {
	good := []Partition{
		{Box: attr.Box{{Lo: 0, Hi: 10}}, Records: recsAtX(1, 2)},
		{Box: attr.Box{{Lo: 10, Hi: 20}}, Records: recsAtX(11, 12, 13)},
	}
	if err := CheckAnonymity(good, KAnonymity{K: 2}); err != nil {
		t.Fatal(err)
	}
	if err := CheckAnonymity(good, KAnonymity{K: 3}); err == nil {
		t.Fatal("undersized partition accepted")
	}
	if TotalRecords(good) != 5 {
		t.Fatalf("TotalRecords = %d", TotalRecords(good))
	}
	broken := []Partition{{Box: attr.Box{{Lo: 0, Hi: 1}}, Records: recsAtX(5, 6)}}
	if err := CheckAnonymity(broken, KAnonymity{K: 1}); err == nil {
		t.Fatal("inconsistent partition accepted")
	}
}

func TestAllConjunction(t *testing.T) {
	c := All{KAnonymity{K: 2}, LDiversity{K: 2, L: 2}, AlphaK{K: 2, Alpha: 0.9}}
	if !c.Satisfied(recsWithSensitive("flu", "cold", "flu")) {
		t.Fatal("satisfying group rejected")
	}
	// Fails l-diversity only.
	if c.Satisfied(recsWithSensitive("flu", "flu", "flu")) {
		t.Fatal("single-value group satisfied l-diversity conjunct")
	}
	// Fails size only.
	if c.Satisfied(recsWithSensitive("flu")) {
		t.Fatal("undersized group accepted")
	}
	if c.MinSize() != 2 {
		t.Fatalf("MinSize = %d", c.MinSize())
	}
	big := All{KAnonymity{K: 3}, LDiversity{K: 2, L: 7}}
	if big.MinSize() != 7 {
		t.Fatalf("MinSize = %d, want max of conjuncts", big.MinSize())
	}
	if (All{}).MinSize() != 1 {
		t.Fatalf("empty conjunction MinSize = %d", (All{}).MinSize())
	}
	if !(All{}).Satisfied(nil) {
		t.Fatal("empty conjunction must be trivially satisfied")
	}
	s := c.String()
	for _, want := range []string{"2-anonymity", "l-diversity", "(0.9,2)-anonymity", "+"} {
		if !strings.Contains(s, want) {
			t.Fatalf("All.String() = %q missing %q", s, want)
		}
	}
}

func TestConstraintStrings(t *testing.T) {
	if s := (LDiversity{K: 3, L: 2}).String(); !strings.Contains(s, "(3,2)") {
		t.Fatalf("LDiversity.String = %q", s)
	}
	if s := (AlphaK{K: 4, Alpha: 0.25}).String(); s != "(0.25,4)-anonymity" {
		t.Fatalf("AlphaK.String = %q", s)
	}
}

func recsAtX(xs ...float64) []attr.Record {
	out := make([]attr.Record, len(xs))
	for i, x := range xs {
		out[i] = attr.Record{ID: int64(i), QI: []float64{x}}
	}
	return out
}
