// Package anonmodel defines the vocabulary every anonymization algorithm
// in this repository shares: the Partition (an equivalence class of
// records published under one generalized box) and the Constraint (the
// pluggable definition of an "allowable partition" — vanilla
// k-anonymity, distinct l-diversity [21], or (α,k)-anonymity [32]).
//
// The paper's position (Section 4) is that the definition of an
// allowable partition is an *input*: "whatever the requirement, [the
// anonymizer] tries to find the smallest bounding box on the k-elements
// that still satisfies the requirements". Keeping Constraint as a small
// interface lets the R⁺-tree split guard, the Mondrian recursion, and
// the leaf-scan grouping all take the same requirement objects.
package anonmodel

import (
	"fmt"
	"strings"

	"spatialanon/internal/attr"
)

// Partition is one equivalence class of an anonymized table: the
// generalized Box every member publishes as its quasi-identifier value,
// plus the member records. For uncompacted anonymizations the Box is
// the partitioning region; after compaction (or for index MBRs) it is
// the tight minimum bounding box.
type Partition struct {
	Box     attr.Box
	Records []attr.Record
}

// Size returns the number of records in the partition.
//
//anonylint:zero-alloc
func (p Partition) Size() int { return len(p.Records) }

// Validate checks the partition's internal consistency: every record's
// point must lie inside the published box.
func (p Partition) Validate() error {
	for _, r := range p.Records {
		if !p.Box.Contains(r.QI) {
			return fmt.Errorf("anonmodel: record %d at %v outside partition box %v", r.ID, r.QI, p.Box)
		}
	}
	return nil
}

// TotalRecords sums partition sizes.
func TotalRecords(ps []Partition) int {
	n := 0
	for _, p := range ps {
		n += p.Size()
	}
	return n
}

// CheckAnonymity verifies that every partition satisfies the constraint
// and is internally consistent — the invariant every anonymized release
// must satisfy. It returns the first violation.
func CheckAnonymity(ps []Partition, c Constraint) error {
	for i, p := range ps {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("partition %d: %w", i, err)
		}
		if !c.Satisfied(p.Records) {
			return fmt.Errorf("anonmodel: partition %d (%d records) violates %v", i, p.Size(), c)
		}
	}
	return nil
}

// Constraint decides whether a group of records may be published as one
// partition. Implementations must be monotone in the sense the paper's
// algorithms rely on: adding records to a satisfying group keeps
// k-anonymity satisfied, and the leaf-scan grouping additionally
// requires that unions of satisfying groups satisfy (true for all three
// constraints here).
type Constraint interface {
	Satisfied(recs []attr.Record) bool
	// MinSize is a lower bound on the size of any satisfying group,
	// used by partitioners to prune unsplittable groups early.
	MinSize() int
	fmt.Stringer
}

// Validate rejects constraints whose parameters cannot provide
// anonymity: every algorithm entry point calls it before touching
// data, so a k below 2 — the identity function wearing a privacy
// label — fails in microseconds with one clear message. Constraint
// implementations outside this package may provide their own
// `Validate() error`; those without one are accepted as-is (the
// Constraint interface predates validation and must stay small).
func Validate(c Constraint) error {
	if c == nil {
		return fmt.Errorf("anonmodel: nil constraint")
	}
	if v, ok := c.(interface{ Validate() error }); ok {
		return v.Validate()
	}
	return nil
}

// KAnonymity is the vanilla requirement: at least K records per
// partition.
type KAnonymity struct{ K int }

// Satisfied implements Constraint.
func (c KAnonymity) Satisfied(recs []attr.Record) bool { return len(recs) >= c.K }

// MinSize implements Constraint.
func (c KAnonymity) MinSize() int { return c.K }

// Validate rejects K < 2: with K = 1 every record is its own
// equivalence class and the "anonymized" release is the original
// table.
func (c KAnonymity) Validate() error {
	if c.K < 2 {
		return fmt.Errorf("anonmodel: k-anonymity needs k >= 2, got %d", c.K)
	}
	return nil
}

func (c KAnonymity) String() string { return fmt.Sprintf("%d-anonymity", c.K) }

// LDiversity is distinct l-diversity layered on k-anonymity [21]: a
// partition needs at least K records and at least L distinct sensitive
// values.
type LDiversity struct {
	K int
	L int
}

// Satisfied implements Constraint.
func (c LDiversity) Satisfied(recs []attr.Record) bool {
	if len(recs) < c.K {
		return false
	}
	distinct := make(map[string]struct{}, c.L)
	for _, r := range recs {
		distinct[r.Sensitive] = struct{}{}
		if len(distinct) >= c.L {
			return true
		}
	}
	return len(distinct) >= c.L
}

// MinSize implements Constraint.
func (c LDiversity) MinSize() int {
	if c.L > c.K {
		return c.L
	}
	return c.K
}

// Validate rejects K < 2 (no anonymity) and L < 2 (distinct
// l-diversity with one allowed sensitive value adds nothing and is
// invariably a mistyped parameter).
func (c LDiversity) Validate() error {
	if c.K < 2 {
		return fmt.Errorf("anonmodel: l-diversity needs k >= 2, got %d", c.K)
	}
	if c.L < 2 {
		return fmt.Errorf("anonmodel: l-diversity needs l >= 2, got %d", c.L)
	}
	return nil
}

func (c LDiversity) String() string { return fmt.Sprintf("(%d,%d)-k-anonymity+l-diversity", c.K, c.L) }

// AlphaK is (α,k)-anonymity [32]: at least K records, and no single
// sensitive value may account for more than fraction Alpha of the
// partition.
type AlphaK struct {
	K     int
	Alpha float64
}

// Satisfied implements Constraint.
func (c AlphaK) Satisfied(recs []attr.Record) bool {
	if len(recs) < c.K {
		return false
	}
	counts := map[string]int{}
	for _, r := range recs {
		counts[r.Sensitive]++
	}
	limit := c.Alpha * float64(len(recs))
	for _, n := range counts {
		if float64(n) > limit {
			return false
		}
	}
	return true
}

// MinSize implements Constraint.
func (c AlphaK) MinSize() int { return c.K }

// Validate rejects K < 2 and Alpha outside (0, 1): alpha >= 1 never
// constrains anything, alpha <= 0 can never be satisfied.
func (c AlphaK) Validate() error {
	if c.K < 2 {
		return fmt.Errorf("anonmodel: (α,k)-anonymity needs k >= 2, got %d", c.K)
	}
	if c.Alpha <= 0 || c.Alpha >= 1 {
		return fmt.Errorf("anonmodel: (α,k)-anonymity needs α in (0,1), got %g", c.Alpha)
	}
	return nil
}

func (c AlphaK) String() string { return fmt.Sprintf("(%g,%d)-anonymity", c.Alpha, c.K) }

// All combines constraints conjunctively: a group is allowable only when
// every constituent constraint accepts it. Used when publishing a
// coarser granularity k₁ on top of a base constraint (the leaf-scan
// algorithm requires both).
type All []Constraint

// Satisfied implements Constraint.
func (cs All) Satisfied(recs []attr.Record) bool {
	for _, c := range cs {
		if !c.Satisfied(recs) {
			return false
		}
	}
	return true
}

// MinSize implements Constraint.
func (cs All) MinSize() int {
	m := 1
	for _, c := range cs {
		if s := c.MinSize(); s > m {
			m = s
		}
	}
	return m
}

// Validate validates every constituent constraint.
func (cs All) Validate() error {
	if len(cs) == 0 {
		return fmt.Errorf("anonmodel: empty constraint conjunction")
	}
	for _, c := range cs {
		if err := Validate(c); err != nil {
			return err
		}
	}
	return nil
}

func (cs All) String() string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.String()
	}
	return strings.Join(parts, "+")
}
