// Package rplustree implements the paper's anonymizing spatial index: a
// dynamic, non-overlapping multidimensional index over point data in the
// style of the R⁺-tree [27] / k-d-B-tree, plus the buffer-tree bulk
// loading algorithm of Section 2.1 and sort-based packing loaders.
//
// Like the R⁺-tree the index never overlaps sibling partitions — the
// paper restricts itself to R-tree variants with this property because
// every k-anonymization algorithm in the literature produces
// non-overlapping partitions. Each node carries two boxes:
//
//   - a routing region: the half-open box of space the node is
//     responsible for. Sibling regions are pairwise disjoint and tile
//     the parent's region, so every point routes to exactly one leaf.
//   - a minimum bounding rectangle (MBR): the tight box around the
//     records actually beneath the node. The gaps between a node's MBR
//     and its routing region are exactly the "gaps in the domain" of
//     Sections 2.3 and 4 — they are what make index-based
//     anonymizations more precise and queries on them more accurate.
//
// Internal nodes remember the binary split history of their children as
// a small trie. Splitting an overflowing internal node at its trie root
// hyperplane therefore never straddles a child, which sidesteps the
// k-d-B-tree's forced downward splits entirely while preserving the
// disjointness invariant.
package rplustree

import (
	"errors"
	"fmt"
	"math"

	"spatialanon/internal/attr"
	"spatialanon/internal/par"
)

// CorruptionError reports that the tree's in-memory structure violated
// an invariant only corruption (or a bug) can explain — for example a
// node being split that its parent does not reference. It is returned
// rather than panicked so callers driving fault-injected storage can
// observe the failure and recover; the offending mutation is not
// applied, so the tree is exactly as it was before the call.
type CorruptionError struct {
	Detail string
}

func (e *CorruptionError) Error() string { return "rplustree: corrupt structure: " + e.Detail }

// Config parameterizes a Tree.
type Config struct {
	// Schema describes the quasi-identifier attributes; its length sets
	// the dimensionality.
	Schema *attr.Schema
	// BaseK is the minimum leaf occupancy the split machinery aims for —
	// the paper's base anonymity parameter k (Section 5.1 uses base
	// k=5 and derives all published granularities by leaf scanning).
	// Must be >= 2: one-record leaves are an identity release.
	BaseK int
	// LeafFactor is the paper's constant c: leaves hold between BaseK
	// and c*BaseK records (Section 3.1). Must be >= 2 so a median split
	// of an overflowing leaf leaves both halves with >= BaseK records.
	// Defaults to 2.
	LeafFactor int
	// NodeCapacity is the maximum number of children of an internal
	// node (the paper's m). Defaults to 8; minimum 2.
	NodeCapacity int
	// Split chooses leaf split hyperplanes. Defaults to
	// MinMarginPolicy, the R-tree-style "minimize the resulting
	// partitions" heuristic the paper contrasts with Mondrian's
	// widest-attribute rule.
	Split SplitPolicy
	// Guard, when non-nil, vetoes leaf splits: a split only happens if
	// Guard approves both halves. This is how the splitting routine
	// "can incorporate, for example, (α,k)-anonymity or l-diversity
	// just as easily as vanilla k-anonymity" (Section 6): install a
	// guard requiring both halves to satisfy the constraint, and leaves
	// grow instead of splitting whenever a split would violate it.
	Guard func(left, right []attr.Record) bool
	// Parallelism caps the worker goroutines used for bulk-load split
	// cascades and batch routing (see parsplit.go). 0 uses every
	// available core, 1 (or negative) runs serially. The tree built is
	// identical — structure, leaf order, even the attached loader's
	// I/O counters — for every setting: workers execute only pure
	// computations over disjoint record ranges while all tree wiring
	// and pager traffic stays on the calling goroutine in serial
	// order. Split and Guard must be safe for concurrent calls when
	// Parallelism != 1 (every policy in this package is: they are
	// stateless).
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.LeafFactor == 0 {
		c.LeafFactor = 2
	}
	if c.NodeCapacity == 0 {
		c.NodeCapacity = 8
	}
	if c.Split == nil {
		c.Split = MinMarginPolicy{}
	}
	return c
}

func (c Config) validate() error {
	if c.Schema == nil {
		return fmt.Errorf("rplustree: nil schema")
	}
	if err := c.Schema.Validate(); err != nil {
		return err
	}
	if c.BaseK < 2 {
		return fmt.Errorf("rplustree: BaseK %d provides no anonymity; need >= 2", c.BaseK)
	}
	if c.LeafFactor < 2 {
		return fmt.Errorf("rplustree: LeafFactor %d < 2 cannot guarantee k-occupancy after splits", c.LeafFactor)
	}
	if c.NodeCapacity < 2 {
		return fmt.Errorf("rplustree: NodeCapacity %d < 2", c.NodeCapacity)
	}
	return nil
}

// leafCapacity is c*k, the paper's maximum leaf occupancy.
func (c Config) leafCapacity() int { return c.LeafFactor * c.BaseK }

// splitTrie records the binary split history of an internal node's
// children. Trie leaves point at children; trie internal nodes carry the
// hyperplane that divided the corresponding region.
type splitTrie struct {
	// Leaf case: child is non-nil.
	child *node
	// Internal case: split at QI[axis] == value; left holds points with
	// coordinate < value, right holds >= value.
	axis        int
	value       float64
	left, right *splitTrie
}

func (st *splitTrie) isLeaf() bool { return st.child != nil }

// node is one tree node. Exactly one of recs (leaf) or children
// (internal) is used.
type node struct {
	parent *node
	region attr.Box // half-open routing region (hi exclusive, see regionContains)
	mbr    attr.Box // tight bound on the records beneath
	count  int      // records beneath

	recs []attr.Record // leaf payload

	// ver counts content mutations of this leaf (appends, deletes) —
	// the copy-on-write snapshot machinery of cow.go uses it to detect
	// leaves unchanged since the last snapshot. Nodes minted by splits
	// start at zero: a fresh node is never mistaken for a previously
	// snapshotted one because its snapGen cannot match the live
	// generation (see SnapshotLeaves).
	ver     uint64
	snapGen uint64 // generation of the last snapshot that visited this leaf
	snapVer uint64 // ver at that snapshot
	snapIdx int    // this leaf's index in that snapshot's output

	children []*node
	trie     *splitTrie

	// buffer is the buffer-tree record buffer (Section 2.1); nil unless
	// a BulkLoader is driving this tree.
	buffer *nodeBuffer
}

func (n *node) isLeaf() bool { return n.children == nil && n.trie == nil }

// Tree is the anonymizing spatial index.
type Tree struct {
	cfg    Config
	root   *node
	height int // number of levels; 1 = root is a leaf

	// loader is the buffer-tree bulk loader currently driving this
	// tree, if any (see bufferload.go).
	loader *BulkLoader

	// snapGen numbers SnapshotLeaves calls (see cow.go).
	snapGen uint64
}

// New creates an empty tree.
func New(cfg Config) (*Tree, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	dims := cfg.Schema.Dims()
	root := &node{
		region: infiniteRegion(dims),
		mbr:    attr.NewBox(dims),
	}
	return &Tree{cfg: cfg, root: root, height: 1}, nil
}

// infiniteRegion is the whole space: the root's routing region.
func infiniteRegion(dims int) attr.Box {
	b := make(attr.Box, dims)
	for i := range b {
		b[i] = attr.Interval{Lo: math.Inf(-1), Hi: math.Inf(1)}
	}
	return b
}

// regionContains implements half-open routing: p belongs to region iff
// lo <= p < hi on every axis (an infinite hi admits everything, so the
// outermost regions behave as closed).
func regionContains(region attr.Box, p []float64) bool {
	for i, iv := range region {
		if p[i] < iv.Lo || p[i] >= iv.Hi {
			return false
		}
	}
	return true
}

// Config returns the tree's configuration (after defaulting).
func (t *Tree) Config() Config { return t.cfg }

// Len returns the number of records in the tree.
func (t *Tree) Len() int { return t.root.count }

// Height returns the number of levels in the tree (1 when the root is a
// leaf).
func (t *Tree) Height() int { return t.height }

// MBR returns the tight bounding box of all records (empty box when the
// tree is empty).
func (t *Tree) MBR() attr.Box { return t.root.mbr.Clone() }

// Insert adds one record, splitting nodes as needed (the tuple-loading
// path; bulk loads should go through a BulkLoader or a packing loader).
// On error the record has still been placed in the tree — errors come
// from the storage cost model of an attached BulkLoader (see
// bufferload.go), which charges I/O after records move — so a fault
// never silently drops data.
func (t *Tree) Insert(rec attr.Record) error {
	if len(rec.QI) != t.cfg.Schema.Dims() {
		return fmt.Errorf("rplustree: record has %d attributes, tree has %d", len(rec.QI), t.cfg.Schema.Dims())
	}
	leaf := t.routeToLeaf(t.root, rec.QI)
	return t.insertIntoLeaf(leaf, rec)
}

// routeToLeaf descends from n to the unique leaf whose region contains p.
func (t *Tree) routeToLeaf(n *node, p []float64) *node {
	for !n.isLeaf() {
		n = routeChild(n, p)
	}
	return n
}

// routeChild picks the unique child of internal node n responsible for p
// by walking n's split trie.
func routeChild(n *node, p []float64) *node {
	st := n.trie
	for !st.isLeaf() {
		if p[st.axis] < st.value {
			st = st.left
		} else {
			st = st.right
		}
	}
	return st.child
}

// insertIntoLeaf places rec in leaf, updates MBRs and counts along the
// root path, and splits on overflow. The record lands before any split
// runs, so a split error never loses it.
func (t *Tree) insertIntoLeaf(leaf *node, rec attr.Record) error {
	leaf.recs = append(leaf.recs, rec)
	leaf.ver++
	for n := leaf; n != nil; n = n.parent {
		n.count++
		n.mbr.Include(rec.QI)
	}
	return t.splitLeafRecursive(leaf)
}

// bulkAppendLeaf places a batch of records in leaf at once: the root
// path's counts and MBRs are updated once for the whole group, and the
// leaf is then split recursively down to capacity. Grouped appends are
// what make buffer emptying cheaper than tuple-at-a-time insertion even
// in memory — one path update and O(log) splits per group instead of
// per record.
func (t *Tree) bulkAppendLeaf(leaf *node, recs []attr.Record) error {
	if len(recs) == 0 {
		return nil
	}
	leaf.recs = append(leaf.recs, recs...)
	leaf.ver++
	box := attr.NewBox(t.cfg.Schema.Dims())
	for _, r := range recs {
		box.Include(r.QI)
	}
	for n := leaf; n != nil; n = n.parent {
		n.count += len(recs)
		n.mbr.IncludeBox(box)
	}
	return t.splitLeafRecursive(leaf)
}

// splitLeafRecursive splits a leaf until every resulting leaf is within
// capacity (bulk appends can leave a leaf many times over). A split
// that reports an I/O error is still structurally complete, so
// restructuring continues through errors — a fault leaves the tree in
// the same shape a fault-free run would produce — and the first error
// is surfaced.
//
// Large cascades are routed through the plan-then-wire path of
// parsplit.go, which computes the exact same splits (possibly on
// worker goroutines) before wiring them in serially; the two paths are
// interchangeable by construction and the determinism suite holds them
// to it.
func (t *Tree) splitLeafRecursive(leaf *node) error {
	if len(leaf.recs) <= t.cfg.leafCapacity() {
		return nil
	}
	if par.Workers(t.cfg.Parallelism) > 1 && len(leaf.recs) >= parSplitMin {
		return t.splitLeafPlanned(leaf)
	}
	left, right, ok, err := t.splitLeaf(leaf)
	if !ok {
		return err
	}
	if e := t.splitLeafRecursive(left); err == nil {
		err = e
	}
	if e := t.splitLeafRecursive(right); err == nil {
		err = e
	}
	return err
}

// splitLeaf divides an overflowing leaf along a policy-chosen
// hyperplane, returning the two halves. ok is false when no axis can
// separate the records (all points identical); the leaf is then left
// oversized — the only correct option for duplicate-only data. A
// non-nil err with ok=true means the split is structurally complete
// but an attached loader's I/O charge failed; with ok=false the tree
// is untouched.
func (t *Tree) splitLeaf(leaf *node) (leftOut, rightOut *node, ok bool, err error) {
	ctx := &SplitContext{Schema: t.cfg.Schema, Domain: t.root.mbr, MBR: leaf.mbr, MinSide: t.cfg.BaseK}
	axis, value, ok := t.cfg.Split.ChooseSplit(leaf.recs, ctx)
	if !ok {
		return nil, nil, false, nil
	}
	leftRegion, rightRegion := splitRegion(leaf.region, axis, value)

	// Partition the record slice in place (Hoare style) instead of
	// copying into fresh slices: bulk loads split leaves holding large
	// fractions of the data set at every level, and per-level copying
	// dominated both allocation and GC time. The halves alias the
	// original backing array; the left half is capacity-clipped so a
	// later append to it cannot stomp the right half.
	recs := leaf.recs
	leftMBR := attr.NewBox(len(leaf.region))
	rightMBR := attr.NewBox(len(leaf.region))
	lo, hi := 0, len(recs)
	for lo < hi {
		if recs[lo].QI[axis] < value {
			leftMBR.Include(recs[lo].QI)
			lo++
		} else {
			hi--
			recs[lo], recs[hi] = recs[hi], recs[lo]
			rightMBR.Include(recs[hi].QI)
		}
	}
	leftRecs := recs[:lo:lo]
	rightRecs := recs[lo:]
	if t.cfg.Guard != nil && !t.cfg.Guard(leftRecs, rightRecs) {
		return nil, nil, false, nil // constraint-violating split: the leaf grows instead
	}
	left := &node{region: leftRegion, mbr: leftMBR, recs: leftRecs, count: len(leftRecs)}
	right := &node{region: rightRegion, mbr: rightMBR, recs: rightRecs, count: len(rightRecs)}
	if err := t.replaceWithPair(leaf, left, right, axis, value); err != nil {
		var ce *CorruptionError
		if errors.As(err, &ce) {
			// The structural substitution was refused before any
			// mutation: leaf still holds every record (the in-place
			// partition only reordered them) and the halves were never
			// wired in.
			return nil, nil, false, err
		}
		return left, right, true, err
	}
	return left, right, true, nil
}

// splitRegion cuts a half-open routing region at value along axis.
func splitRegion(region attr.Box, axis int, value float64) (left, right attr.Box) {
	left = region.Clone()
	right = region.Clone()
	left[axis] = attr.Interval{Lo: region[axis].Lo, Hi: value}
	right[axis] = attr.Interval{Lo: value, Hi: region[axis].Hi}
	return left, right
}

// replaceWithPair substitutes old (a child of its parent, or the root)
// with the two halves produced by splitting it at (axis, value), then
// handles parent overflow. A *CorruptionError is returned before any
// mutation when old is not wired into its parent; any other error
// comes from an attached loader's I/O charges, after the structural
// change is already complete.
func (t *Tree) replaceWithPair(old, left, right *node, axis int, value float64) error {
	parent := old.parent
	if parent == nil {
		// Root split: the tree grows a level.
		newRoot := &node{
			region:   old.region,
			mbr:      old.mbr.Clone(),
			count:    old.count,
			children: []*node{left, right},
			trie: &splitTrie{
				axis: axis, value: value,
				left:  &splitTrie{child: left},
				right: &splitTrie{child: right},
			},
		}
		left.parent = newRoot
		right.parent = newRoot
		t.root = newRoot
		t.height++
		return t.splitBuffer(old, left, right, axis, value)
	}
	// Validate before mutating so a corruption failure leaves the tree
	// exactly as it was (the old node keeps all its records).
	idx := -1
	for i, c := range parent.children {
		if c == old {
			idx = i
			break
		}
	}
	st := findTrieLeaf(parent.trie, old)
	if idx < 0 {
		return &CorruptionError{Detail: "split of node not present in its parent"}
	}
	if st == nil {
		return &CorruptionError{Detail: "split of node not present in parent trie"}
	}
	// Replace old in parent's child list and trie.
	parent.children[idx] = left
	parent.children = append(parent.children, right)
	left.parent = parent
	right.parent = parent

	st.child = nil
	st.axis = axis
	st.value = value
	st.left = &splitTrie{child: left}
	st.right = &splitTrie{child: right}

	err := t.splitBuffer(old, left, right, axis, value)

	if len(parent.children) > t.cfg.NodeCapacity {
		// Restructuring runs to completion even after an I/O error so
		// the tree's shape never depends on fault timing.
		if e := t.splitInternal(parent); err == nil {
			err = e
		}
	}
	return err
}

// findTrieLeaf locates the trie leaf pointing at target.
func findTrieLeaf(st *splitTrie, target *node) *splitTrie {
	if st.isLeaf() {
		if st.child == target {
			return st
		}
		return nil
	}
	if got := findTrieLeaf(st.left, target); got != nil {
		return got
	}
	return findTrieLeaf(st.right, target)
}

// splitInternal divides an overflowing internal node at its trie root
// hyperplane. Because every child was created by recursively splitting
// this node's region, the trie root hyperplane straddles no child.
func (t *Tree) splitInternal(n *node) error {
	rootSplit := n.trie
	if rootSplit.isLeaf() {
		// invariant: an internal node only overflows past NodeCapacity
		// >= 2 children, and every child beyond the first was created
		// by a trie split, so an overflowing node's trie root is never
		// a leaf. No input or injected storage fault can reach this;
		// the panic is a provable programmer error, deliberately kept.
		panic("rplustree: internal node with trivial trie cannot overflow")
	}
	axis, value := rootSplit.axis, rootSplit.value
	leftRegion, rightRegion := splitRegion(n.region, axis, value)

	left := &node{region: leftRegion, mbr: attr.NewBox(len(n.region)), trie: rootSplit.left}
	right := &node{region: rightRegion, mbr: attr.NewBox(len(n.region)), trie: rootSplit.right}
	for _, c := range n.children {
		var side *node
		if c.region[axis].Lo < value {
			side = left
		} else {
			side = right
		}
		side.children = append(side.children, c)
		side.mbr.IncludeBox(c.mbr)
		side.count += c.count
		c.parent = side
	}
	// A trie subtree that is itself a leaf means that half has exactly
	// one child; that is legal (NodeCapacity >= 2 guarantees both halves
	// non-empty because the trie root has children on both sides).
	return t.replaceWithPair(n, left, right, axis, value)
}

// Delete removes the record with the given ID located at point qi.
// It reports whether a record was found and removed. A leaf driven
// below BaseK is repaired immediately — removed from the tree with
// its survivors reinserted through normal routing (see repair.go) —
// so incremental maintenance never accumulates underfull leaves; only
// a root-leaf tree with fewer than BaseK records total may sit below
// k, and publication gates on total size anyway. A non-nil error
// means an attached loader's I/O charge failed during repair
// reinsertion; the records are placed regardless, exactly as for
// Insert.
func (t *Tree) Delete(id int64, qi []float64) (bool, error) {
	if len(qi) != t.cfg.Schema.Dims() {
		return false, nil
	}
	leaf := t.routeToLeaf(t.root, qi)
	idx := -1
	for i, r := range leaf.recs {
		if r.ID == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false, nil
	}
	leaf.recs = append(leaf.recs[:idx], leaf.recs[idx+1:]...)
	leaf.ver++
	// Recompute the leaf MBR, then tighten ancestors from their
	// children's MBRs.
	leaf.mbr = attr.NewBox(len(leaf.region))
	for _, r := range leaf.recs {
		leaf.mbr.Include(r.QI)
	}
	leaf.count = len(leaf.recs)
	for n := leaf.parent; n != nil; n = n.parent {
		n.count--
		m := attr.NewBox(len(n.region))
		for _, c := range n.children {
			m.IncludeBox(c.mbr)
		}
		n.mbr = m
	}
	if leaf.parent == nil || len(leaf.recs) >= t.cfg.BaseK {
		return true, nil
	}
	return true, t.repairUnderflow(leaf)
}

// Update relocates a record: it removes the record with the given ID at
// its old coordinates and reinserts it with new ones. The bool reports
// whether the record was found. A non-nil error means an attached
// loader's I/O charge failed during reinsertion or underflow repair;
// the record has still been reinserted (Insert places it before any
// fallible work).
func (t *Tree) Update(id int64, oldQI []float64, rec attr.Record) (bool, error) {
	found, err := t.Delete(id, oldQI)
	if !found {
		return false, err
	}
	if e := t.Insert(rec); err == nil {
		err = e
	}
	return true, err
}
