package rplustree

import (
	"fmt"
	"math/rand"
	"testing"

	"spatialanon/internal/attr"
)

// fullLeafCopy is the reference SnapshotLeaves must match: Leaves()
// with every box and record slice deep-copied.
func fullLeafCopy(tr *Tree) []LeafView {
	ls := tr.Leaves()
	out := make([]LeafView, len(ls))
	for i, l := range ls {
		recs := make([]attr.Record, len(l.Records))
		copy(recs, l.Records)
		out[i] = LeafView{MBR: l.MBR.Clone(), Records: recs}
	}
	return out
}

func sameLeafViews(a, b []LeafView) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d leaves != %d leaves", len(a), len(b))
	}
	for i := range a {
		if !a[i].MBR.Equal(b[i].MBR) {
			return fmt.Errorf("leaf %d: MBR %v != %v", i, a[i].MBR, b[i].MBR)
		}
		if len(a[i].Records) != len(b[i].Records) {
			return fmt.Errorf("leaf %d: %d records != %d", i, len(a[i].Records), len(b[i].Records))
		}
		for j := range a[i].Records {
			ra, rb := a[i].Records[j], b[i].Records[j]
			if ra.ID != rb.ID || ra.Sensitive != rb.Sensitive {
				return fmt.Errorf("leaf %d record %d: %+v != %+v", i, j, ra, rb)
			}
			for d := range ra.QI {
				if ra.QI[d] != rb.QI[d] {
					return fmt.Errorf("leaf %d record %d: QI %v != %v", i, j, ra.QI, rb.QI)
				}
			}
		}
	}
	return nil
}

// TestSnapshotLeavesCOW drives a churn workload — inserts that force
// splits, deletes that force underflow repairs — and after every
// batch checks that the incremental snapshot is byte-identical to a
// full deep copy, that it actually reuses unchanged leaves, and that
// earlier snapshots stay frozen while the tree keeps mutating. This
// is the test that catches a missed version bump: any mutation site
// not counted by node.ver would serve stale leaf contents here.
func TestSnapshotLeavesCOW(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr, err := New(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	live := map[int64]attr.Record{}
	nextID := int64(0)

	var prev []LeafView
	var frozen []struct {
		snap []LeafView
		ref  []LeafView
	}
	reused := 0

	for batch := 0; batch < 60; batch++ {
		for op := 0; op < 25; op++ {
			if len(live) == 0 || rng.Float64() < 0.6 {
				r := attr.Record{
					ID: nextID,
					QI: []float64{float64(rng.Intn(60)), float64(rng.Intn(2)), float64(52000 + rng.Intn(500))},
				}
				nextID++
				if err := tr.Insert(r); err != nil {
					t.Fatal(err)
				}
				live[r.ID] = r
			} else {
				var victim attr.Record
				for _, r := range live {
					victim = r
					break
				}
				if found, err := tr.Delete(victim.ID, victim.QI); err != nil || !found {
					t.Fatalf("batch %d: delete of live record %d: found=%v err=%v", batch, victim.ID, found, err)
				}
				delete(live, victim.ID)
			}
		}
		snap := tr.SnapshotLeaves(prev)
		ref := fullLeafCopy(tr)
		if err := sameLeafViews(snap, ref); err != nil {
			t.Fatalf("batch %d: incremental snapshot diverges from full copy: %v", batch, err)
		}
		// Count reuse by backing-array identity with the previous
		// snapshot: a reused leaf shares its records array.
		for _, l := range snap {
			for _, p := range prev {
				if len(l.Records) > 0 && len(p.Records) > 0 && &l.Records[0] == &p.Records[0] {
					reused++
					break
				}
			}
		}
		// Keep a few snapshots (with a reference copy taken at the same
		// moment) to check immutability under later churn.
		if batch%17 == 0 {
			refNow := make([]LeafView, len(snap))
			for i, l := range snap {
				recs := make([]attr.Record, len(l.Records))
				copy(recs, l.Records)
				refNow[i] = LeafView{MBR: l.MBR.Clone(), Records: recs}
			}
			frozen = append(frozen, struct {
				snap []LeafView
				ref  []LeafView
			}{snap, refNow})
		}
		prev = snap
	}

	if reused == 0 {
		t.Fatal("no leaf was ever reused across 60 snapshots of 25-op batches — copy-on-write is not engaging")
	}
	for i, f := range frozen {
		if err := sameLeafViews(f.snap, f.ref); err != nil {
			t.Fatalf("frozen snapshot %d changed under later mutation: %v", i, err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotLeavesFirstCallCopies pins the generation guard: the
// first snapshot of a tree must ignore whatever prev it is handed
// (freshly minted nodes carry zero-valued stamps that must never
// alias a foreign slice).
func TestSnapshotLeavesFirstCallCopies(t *testing.T) {
	tr, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := tr.Insert(attr.Record{ID: int64(i), QI: []float64{float64(i), 0, 52000}}); err != nil {
			t.Fatal(err)
		}
	}
	bogus := []LeafView{{MBR: attr.NewBox(3), Records: []attr.Record{{ID: 999}}}}
	snap := tr.SnapshotLeaves(bogus)
	if err := sameLeafViews(snap, fullLeafCopy(tr)); err != nil {
		t.Fatalf("first snapshot trusted a foreign prev: %v", err)
	}
}
