package rplustree

import (
	"encoding/binary"
	"fmt"
	"math"

	"spatialanon/internal/attr"
)

// This file is the tree's checkpoint codec. internal/wal serializes a
// tree into a byte snapshot at checkpoint time and rebuilds it during
// recovery; the encoding follows the repository's binary conventions
// (fixed-width little-endian, see internal/dataset's BinaryCodec).
//
// The snapshot stores only what cannot be re-derived: the recursive
// trie structure and the leaf payloads. Routing regions are NOT
// stored — they are reconstructed from the split-trie hyperplanes
// exactly as splits created them (bit-identical floats), MBRs and
// counts are recomputed bottom-up, and the decoder validates what it
// builds (dimensions, axis bounds, region membership of every record,
// uniform leaf depth) so a damaged snapshot yields an error, never a
// quietly wrong tree. Defense in depth: internal/wal additionally
// checksums the snapshot bytes, and recovery runs the full
// internal/verify audit on the decoded tree.

// snapshotVersion is bumped on any incompatible layout change.
const snapshotVersion = 1

// snapMaxDepth bounds the recursion while decoding: deeper nesting
// than this in a well-formed snapshot would need more nodes than the
// encoding could hold, so it can only mean corruption (and protects
// the decoder's stack from adversarial input).
const snapMaxDepth = 4096

// EncodeSnapshot serializes the tree structure and payloads. A tree
// with records still blocked in bulk-load buffers cannot be
// snapshotted — those records are not yet placed — so callers flush
// first.
func (t *Tree) EncodeSnapshot() ([]byte, error) {
	if pending := t.pendingBuffered(t.root); pending > 0 {
		return nil, fmt.Errorf("rplustree: snapshot with %d records still buffered; flush the loader first", pending)
	}
	e := make([]byte, 0, 1024)
	e = appendU32(e, snapshotVersion)
	e = appendU32(e, uint32(t.cfg.Schema.Dims()))
	e = appendU32(e, uint32(t.height))
	return t.encodeNode(e, t.root), nil
}

// pendingBuffered counts records blocked in bulk-load buffers.
func (t *Tree) pendingBuffered(n *node) int {
	total := 0
	if n.buffer != nil {
		total += len(n.buffer.recs)
	}
	for _, c := range n.children {
		total += t.pendingBuffered(c)
	}
	return total
}

func (t *Tree) encodeNode(e []byte, n *node) []byte {
	if n.isLeaf() {
		e = append(e, 0)
		e = appendU32(e, uint32(len(n.recs)))
		for _, r := range n.recs {
			e = appendU64(e, uint64(r.ID))
			for _, v := range r.QI {
				e = appendU64(e, math.Float64bits(v))
			}
			e = appendU32(e, uint32(len(r.Sensitive)))
			e = append(e, r.Sensitive...)
		}
		return e
	}
	e = append(e, 1)
	return t.encodeTrie(e, n.trie)
}

func (t *Tree) encodeTrie(e []byte, st *splitTrie) []byte {
	if st.isLeaf() {
		e = append(e, 0)
		return t.encodeNode(e, st.child)
	}
	e = append(e, 1)
	e = appendU32(e, uint32(st.axis))
	e = appendU64(e, math.Float64bits(st.value))
	e = t.encodeTrie(e, st.left)
	return t.encodeTrie(e, st.right)
}

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// DecodeSnapshot rebuilds a tree from EncodeSnapshot output under the
// given configuration. Every structural property the rest of the
// package relies on is re-validated during the decode; arbitrary
// input yields an error, never a panic or a malformed tree.
func DecodeSnapshot(cfg Config, data []byte) (*Tree, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := &snapDecoder{data: data, leafDepth: -1}
	version, err := d.u32()
	if err != nil {
		return nil, err
	}
	if version != snapshotVersion {
		return nil, fmt.Errorf("rplustree: snapshot version %d, want %d", version, snapshotVersion)
	}
	dims, err := d.u32()
	if err != nil {
		return nil, err
	}
	if int(dims) != cfg.Schema.Dims() {
		return nil, fmt.Errorf("rplustree: snapshot has %d dimensions, schema has %d", dims, cfg.Schema.Dims())
	}
	height, err := d.u32()
	if err != nil {
		return nil, err
	}
	if height < 1 || height > snapMaxDepth {
		return nil, fmt.Errorf("rplustree: snapshot height %d out of range", height)
	}
	t := &Tree{cfg: cfg, height: int(height)}
	root, err := d.node(cfg, infiniteRegion(int(dims)), 0)
	if err != nil {
		return nil, err
	}
	t.root = root
	if d.off != len(d.data) {
		return nil, fmt.Errorf("rplustree: snapshot has %d trailing bytes", len(d.data)-d.off)
	}
	if d.leafDepth != int(height)-1 {
		return nil, fmt.Errorf("rplustree: snapshot leaves at depth %d, header says height %d", d.leafDepth, height)
	}
	return t, nil
}

// snapDecoder reads the snapshot byte stream with bounds checking.
type snapDecoder struct {
	data      []byte
	off       int
	leafDepth int
}

func (d *snapDecoder) u8() (byte, error) {
	if d.off+1 > len(d.data) {
		return 0, fmt.Errorf("rplustree: snapshot truncated at byte %d", d.off)
	}
	v := d.data[d.off]
	d.off++
	return v, nil
}

func (d *snapDecoder) u32() (uint32, error) {
	if d.off+4 > len(d.data) {
		return 0, fmt.Errorf("rplustree: snapshot truncated at byte %d", d.off)
	}
	v := binary.LittleEndian.Uint32(d.data[d.off:])
	d.off += 4
	return v, nil
}

func (d *snapDecoder) u64() (uint64, error) {
	if d.off+8 > len(d.data) {
		return 0, fmt.Errorf("rplustree: snapshot truncated at byte %d", d.off)
	}
	v := binary.LittleEndian.Uint64(d.data[d.off:])
	d.off += 8
	return v, nil
}

func (d *snapDecoder) bytes(n int) ([]byte, error) {
	if n < 0 || d.off+n > len(d.data) {
		return nil, fmt.Errorf("rplustree: snapshot truncated at byte %d", d.off)
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b, nil
}

// node decodes one node owning the given routing region at the given
// depth, rebuilding MBRs and counts as it goes.
func (d *snapDecoder) node(cfg Config, region attr.Box, depth int) (*node, error) {
	if depth > snapMaxDepth {
		return nil, fmt.Errorf("rplustree: snapshot nests deeper than %d", snapMaxDepth)
	}
	tag, err := d.u8()
	if err != nil {
		return nil, err
	}
	dims := cfg.Schema.Dims()
	switch tag {
	case 0: // leaf
		if d.leafDepth == -1 {
			d.leafDepth = depth
		} else if d.leafDepth != depth {
			return nil, fmt.Errorf("rplustree: snapshot leaf at depth %d, expected %d", depth, d.leafDepth)
		}
		nrecs, err := d.u32()
		if err != nil {
			return nil, err
		}
		// A record occupies at least 8 (ID) + 8*dims (QI) + 4 (sensitive
		// length) bytes; reject counts the remaining bytes cannot hold
		// before allocating.
		minRec := 8 + 8*dims + 4
		if int(nrecs) > (len(d.data)-d.off)/minRec {
			return nil, fmt.Errorf("rplustree: snapshot leaf claims %d records, only %d bytes left", nrecs, len(d.data)-d.off)
		}
		n := &node{region: region, mbr: attr.NewBox(dims)}
		n.recs = make([]attr.Record, 0, nrecs)
		for i := 0; i < int(nrecs); i++ {
			id, err := d.u64()
			if err != nil {
				return nil, err
			}
			qi := make([]float64, dims)
			for j := range qi {
				bits, err := d.u64()
				if err != nil {
					return nil, err
				}
				qi[j] = math.Float64frombits(bits)
				if math.IsNaN(qi[j]) {
					return nil, fmt.Errorf("rplustree: snapshot record %d has NaN coordinate", int64(id))
				}
			}
			slen, err := d.u32()
			if err != nil {
				return nil, err
			}
			sens, err := d.bytes(int(slen))
			if err != nil {
				return nil, err
			}
			if !regionContains(region, qi) {
				return nil, fmt.Errorf("rplustree: snapshot record %d at %v outside its leaf region", int64(id), qi)
			}
			n.recs = append(n.recs, attr.Record{ID: int64(id), QI: qi, Sensitive: string(sens)})
			n.mbr.Include(qi)
		}
		n.count = len(n.recs)
		return n, nil
	case 1: // internal: the trie follows
		n := &node{region: region, mbr: attr.NewBox(dims)}
		trie, err := d.trie(cfg, n, region, depth, 0)
		if err != nil {
			return nil, err
		}
		n.trie = trie
		if len(n.children) == 0 {
			return nil, fmt.Errorf("rplustree: snapshot internal node with no children")
		}
		return n, nil
	default:
		return nil, fmt.Errorf("rplustree: snapshot node tag %d", tag)
	}
}

// trie decodes the split trie of parent, deriving each child's region
// from the hyperplanes and wiring children into parent. depth is the
// parent's tree depth (child nodes sit at depth+1 regardless of how
// deep in the trie their leaf is); guard counts trie nesting only, as
// a corruption backstop.
func (d *snapDecoder) trie(cfg Config, parent *node, region attr.Box, depth, guard int) (*splitTrie, error) {
	if guard > snapMaxDepth {
		return nil, fmt.Errorf("rplustree: snapshot nests deeper than %d", snapMaxDepth)
	}
	tag, err := d.u8()
	if err != nil {
		return nil, err
	}
	switch tag {
	case 0: // trie leaf: a child node
		child, err := d.node(cfg, region, depth+1)
		if err != nil {
			return nil, err
		}
		child.parent = parent
		parent.children = append(parent.children, child)
		parent.count += child.count
		parent.mbr.IncludeBox(child.mbr)
		return &splitTrie{child: child}, nil
	case 1: // trie split
		axis, err := d.u32()
		if err != nil {
			return nil, err
		}
		if int(axis) >= cfg.Schema.Dims() {
			return nil, fmt.Errorf("rplustree: snapshot split axis %d, schema has %d dimensions", axis, cfg.Schema.Dims())
		}
		bits, err := d.u64()
		if err != nil {
			return nil, err
		}
		value := math.Float64frombits(bits)
		iv := region[axis]
		if math.IsNaN(value) || value <= iv.Lo || value >= iv.Hi {
			return nil, fmt.Errorf("rplustree: snapshot split at %v outside region axis %d %v", value, axis, iv)
		}
		leftRegion, rightRegion := splitRegion(region, int(axis), value)
		left, err := d.trie(cfg, parent, leftRegion, depth, guard+1)
		if err != nil {
			return nil, err
		}
		right, err := d.trie(cfg, parent, rightRegion, depth, guard+1)
		if err != nil {
			return nil, err
		}
		return &splitTrie{axis: int(axis), value: value, left: left, right: right}, nil
	default:
		return nil, fmt.Errorf("rplustree: snapshot trie tag %d", tag)
	}
}
