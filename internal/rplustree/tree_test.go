package rplustree

import (
	"math/rand"
	"sort"
	"testing"

	"spatialanon/internal/attr"
	"spatialanon/internal/dataset"
)

func testConfig(k int) Config {
	return Config{Schema: dataset.PatientsSchema(), BaseK: k}
}

func insertAll(t *testing.T, tr *Tree, recs []attr.Record) {
	t.Helper()
	for _, r := range recs {
		if err := tr.Insert(r); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil schema accepted")
	}
	if _, err := New(Config{Schema: dataset.PatientsSchema(), BaseK: 0}); err == nil {
		t.Fatal("BaseK 0 accepted")
	}
	if _, err := New(Config{Schema: dataset.PatientsSchema(), BaseK: 2, LeafFactor: 1}); err == nil {
		t.Fatal("LeafFactor 1 accepted")
	}
	if _, err := New(Config{Schema: dataset.PatientsSchema(), BaseK: 2, NodeCapacity: 1}); err == nil {
		t.Fatal("NodeCapacity 1 accepted")
	}
	tr, err := New(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	cfg := tr.Config()
	if cfg.LeafFactor != 2 || cfg.NodeCapacity != 8 || cfg.Split == nil {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatal("fresh tree not empty")
	}
	if !tr.MBR().IsEmpty() {
		t.Fatal("fresh tree MBR not empty")
	}
}

func TestInsertDimensionMismatch(t *testing.T) {
	tr, _ := New(testConfig(2))
	if err := tr.Insert(attr.Record{QI: []float64{1}}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestInsertAndInvariants(t *testing.T) {
	tr, _ := New(testConfig(3))
	recs := dataset.GeneratePatients(500, 1)
	for i, r := range recs {
		if err := tr.Insert(r); err != nil {
			t.Fatal(err)
		}
		if i%50 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Height() < 2 {
		t.Fatalf("height %d after 500 inserts with leaf cap 6", tr.Height())
	}
}

func TestLeavesPartitionRecords(t *testing.T) {
	tr, _ := New(testConfig(4))
	recs := dataset.GeneratePatients(300, 2)
	insertAll(t, tr, recs)
	leaves := tr.Leaves()
	seen := map[int64]bool{}
	total := 0
	for _, l := range leaves {
		total += len(l.Records)
		for _, r := range l.Records {
			if seen[r.ID] {
				t.Fatalf("record %d in two leaves", r.ID)
			}
			seen[r.ID] = true
			if !l.MBR.Contains(r.QI) {
				t.Fatalf("record %d outside its leaf MBR", r.ID)
			}
		}
	}
	if total != 300 {
		t.Fatalf("leaves hold %d records, want 300", total)
	}
	// Leaf MBRs must be pairwise disjoint is NOT guaranteed (MBRs of
	// disjoint regions are disjoint though) — verify via regions being
	// checked in CheckInvariants; here verify MBR disjointness, which
	// holds because MBR subset of region and regions are disjoint.
	for i := range leaves {
		for j := i + 1; j < len(leaves); j++ {
			if leaves[i].MBR.Intersects(leaves[j].MBR) {
				t.Fatalf("leaf MBRs %d and %d overlap: %v %v", i, j, leaves[i].MBR, leaves[j].MBR)
			}
		}
	}
}

func TestLeafOccupancyBounds(t *testing.T) {
	k := 5
	tr, _ := New(testConfig(k))
	insertAll(t, tr, dataset.GeneratePatients(2000, 3))
	cap := tr.Config().leafCapacity()
	under := 0
	for _, l := range tr.Leaves() {
		if len(l.Records) > cap {
			t.Fatalf("leaf holds %d records, cap %d", len(l.Records), cap)
		}
		if len(l.Records) < k {
			under++
		}
	}
	// Median splits keep both halves >= k except when duplicate-heavy
	// axes force unbalanced splits; patients data is diverse enough that
	// underfull leaves must be rare.
	if under > len(tr.Leaves())/10 {
		t.Fatalf("%d of %d leaves underfull", under, len(tr.Leaves()))
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	tr, _ := New(testConfig(3))
	recs := dataset.GeneratePatients(400, 4)
	insertAll(t, tr, recs)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		q := randQuery(rng, recs)
		got := tr.Search(q)
		var want []int64
		for _, r := range recs {
			if q.Contains(r.QI) {
				want = append(want, r.ID)
			}
		}
		gotIDs := make([]int64, len(got))
		for j, r := range got {
			gotIDs[j] = r.ID
		}
		sort.Slice(gotIDs, func(a, b int) bool { return gotIDs[a] < gotIDs[b] })
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		if len(gotIDs) != len(want) {
			t.Fatalf("query %v: got %d records, want %d", q, len(gotIDs), len(want))
		}
		for j := range want {
			if gotIDs[j] != want[j] {
				t.Fatalf("query %v: result mismatch", q)
			}
		}
	}
}

func randQuery(rng *rand.Rand, recs []attr.Record) attr.Box {
	a := recs[rng.Intn(len(recs))]
	b := recs[rng.Intn(len(recs))]
	q := attr.PointBox(a.QI)
	q.Include(b.QI)
	return q
}

func TestSearchLeavesCandidates(t *testing.T) {
	tr, _ := New(testConfig(3))
	recs := dataset.GeneratePatients(300, 5)
	insertAll(t, tr, recs)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 20; i++ {
		q := randQuery(rng, recs)
		w := tr.SearchLeaves(q)
		// Every leaf in W intersects the query; every matching record is
		// in some leaf of W.
		inW := map[int64]bool{}
		for _, l := range w {
			if !l.MBR.Intersects(q) {
				t.Fatal("candidate leaf does not intersect query")
			}
			for _, r := range l.Records {
				inW[r.ID] = true
			}
		}
		for _, r := range recs {
			if q.Contains(r.QI) && !inW[r.ID] {
				t.Fatalf("matching record %d missing from candidate set", r.ID)
			}
		}
	}
}

func TestDelete(t *testing.T) {
	tr, _ := New(testConfig(3))
	recs := dataset.GeneratePatients(200, 6)
	insertAll(t, tr, recs)
	// Delete half.
	for i := 0; i < 100; i++ {
		if found, err := tr.Delete(recs[i].ID, recs[i].QI); err != nil || !found {
			t.Fatalf("Delete of record %d failed", recs[i].ID)
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("Len after deletes = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Deleted records are gone; remaining are findable.
	for i, r := range recs {
		hits := tr.Search(attr.PointBox(r.QI))
		found := false
		for _, h := range hits {
			if h.ID == r.ID {
				found = true
			}
		}
		if i < 100 && found {
			t.Fatalf("deleted record %d still present", r.ID)
		}
		if i >= 100 && !found {
			t.Fatalf("surviving record %d lost", r.ID)
		}
	}
	// Delete of unknown ID / wrong dims fails cleanly.
	if found, _ := tr.Delete(9999, recs[0].QI); found {
		t.Fatal("Delete of unknown ID succeeded")
	}
	if found, _ := tr.Delete(recs[150].ID, []float64{1}); found {
		t.Fatal("Delete with bad dims succeeded")
	}
}

func TestUpdate(t *testing.T) {
	tr, _ := New(testConfig(3))
	recs := dataset.GeneratePatients(100, 7)
	insertAll(t, tr, recs)
	moved := recs[42].Clone()
	moved.QI[0] = 99 // relocate on age
	found42, err := tr.Update(recs[42].ID, recs[42].QI, moved)
	if err != nil {
		t.Fatal(err)
	}
	if !found42 {
		t.Fatal("Update failed")
	}
	if tr.Len() != 100 {
		t.Fatalf("Len after update = %d", tr.Len())
	}
	hits := tr.Search(attr.PointBox(moved.QI))
	found := false
	for _, h := range hits {
		if h.ID == moved.ID {
			found = true
		}
	}
	if !found {
		t.Fatal("updated record not at new location")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if found, _ := tr.Update(12345, recs[0].QI, moved); found {
		t.Fatal("Update of unknown record succeeded")
	}
}

func TestLevelViews(t *testing.T) {
	tr, _ := New(testConfig(3))
	insertAll(t, tr, dataset.GeneratePatients(600, 8))
	if _, err := tr.Level(-1); err == nil {
		t.Fatal("negative level accepted")
	}
	if _, err := tr.Level(tr.Height()); err == nil {
		t.Fatal("level past root accepted")
	}
	for lvl := 0; lvl < tr.Height(); lvl++ {
		views, err := tr.Level(lvl)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, v := range views {
			total += v.Count
			sum := 0
			for _, l := range v.Leaves {
				sum += len(l.Records)
				if !v.MBR.ContainsBox(l.MBR) {
					t.Fatalf("level %d: leaf MBR escapes node MBR", lvl)
				}
			}
			if sum != v.Count {
				t.Fatalf("level %d: view count %d != leaf sum %d", lvl, v.Count, sum)
			}
		}
		if total != 600 {
			t.Fatalf("level %d holds %d records", lvl, total)
		}
	}
	rootViews, _ := tr.Level(tr.Height() - 1)
	if len(rootViews) != 1 {
		t.Fatalf("root level has %d views", len(rootViews))
	}
	leafViews, _ := tr.Level(0)
	if len(leafViews) != len(tr.Leaves()) {
		t.Fatalf("level 0 (%d) differs from Leaves() (%d)", len(leafViews), len(tr.Leaves()))
	}
}

func TestDuplicatePointsDoNotLoop(t *testing.T) {
	tr, _ := New(testConfig(2))
	// 50 identical points: unsplittable leaf must simply grow.
	for i := 0; i < 50; i++ {
		if err := tr.Insert(attr.Record{ID: int64(i), QI: []float64{30, 1, 53706}}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 50 {
		t.Fatalf("Len = %d", tr.Len())
	}
	leaves := tr.Leaves()
	if len(leaves) != 1 || len(leaves[0].Records) != 50 {
		t.Fatalf("duplicates should stay in one oversized leaf, got %d leaves", len(leaves))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Now add diverse points; splits must resume.
	insertAll(t, tr, dataset.GeneratePatients(100, 9))
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Leaves()) < 2 {
		t.Fatal("tree failed to split after diversity returned")
	}
}

func TestRandomizedInsertDeleteInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	tr, _ := New(testConfig(3))
	live := map[int64]attr.Record{}
	nextID := int64(0)
	for step := 0; step < 3000; step++ {
		if len(live) == 0 || rng.Float64() < 0.65 {
			r := attr.Record{
				ID: nextID,
				QI: []float64{float64(rng.Intn(80)), float64(rng.Intn(2)), float64(52000 + rng.Intn(2000))},
			}
			nextID++
			if err := tr.Insert(r); err != nil {
				t.Fatal(err)
			}
			live[r.ID] = r
		} else {
			var victim attr.Record
			for _, r := range live {
				victim = r
				break
			}
			if found, err := tr.Delete(victim.ID, victim.QI); err != nil || !found {
				t.Fatalf("step %d: delete of live record %d failed", step, victim.ID)
			}
			delete(live, victim.ID)
		}
		if step%250 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if tr.Len() != len(live) {
				t.Fatalf("step %d: Len %d != live %d", step, tr.Len(), len(live))
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMBRTightAfterDeletes(t *testing.T) {
	tr, _ := New(testConfig(2))
	recs := []attr.Record{
		{ID: 1, QI: []float64{0, 0, 0}},
		{ID: 2, QI: []float64{100, 1, 100}},
		{ID: 3, QI: []float64{50, 0, 50}},
		{ID: 4, QI: []float64{60, 1, 60}},
		{ID: 5, QI: []float64{55, 0, 55}},
	}
	insertAll(t, tr, recs)
	if _, err := tr.Delete(2, recs[1].QI); err != nil { // remove the extreme corner
		t.Fatal(err)
	}
	mbr := tr.MBR()
	if mbr[0].Hi == 100 || mbr[2].Hi == 100 {
		t.Fatalf("MBR not tightened after delete: %v", mbr)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
