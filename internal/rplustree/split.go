package rplustree

import (
	"sort"

	"spatialanon/internal/attr"
)

// SplitContext carries the information split policies may consult.
type SplitContext struct {
	Schema *attr.Schema
	// Domain is the MBR of the whole data set seen so far, used to
	// normalize per-attribute extents (as the certainty penalty does).
	Domain attr.Box
	// MBR is the tight bounding box of the records being split, when
	// the caller (the tree) already maintains it; policies use it to
	// rank axes by extent without scanning. Nil means "compute it".
	MBR attr.Box
	// MinSide is the occupancy both sides of a split should reach —
	// the tree's BaseK. Policies must prefer candidates meeting it.
	MinSide int
}

// SplitPolicy chooses the hyperplane for a leaf split. Implementations
// return ok=false when the records cannot be separated on any axis
// (all points identical), in which case the leaf is left oversized.
//
// The paper exercises three families of policies (Sections 2.4 and 5.4):
// the R-tree-style minimize-the-resulting-partitions default, workload-
// biased splitting pinned to a subset of attributes, and weighted
// splitting following the weighted certainty penalty of [33].
type SplitPolicy interface {
	ChooseSplit(recs []attr.Record, ctx *SplitContext) (axis int, value float64, ok bool)
}

// candidate is one feasible (axis, value) with its evaluation.
type candidate struct {
	axis     int
	value    float64
	balanced bool    // both sides >= ctx.MinSide
	score    float64 // lower is better
}

// better orders candidates: balanced first, then lower score, then lower
// axis for determinism.
func (c candidate) better(o candidate) bool {
	if c.balanced != o.balanced {
		return c.balanced
	}
	if c.score != o.score {
		return c.score < o.score
	}
	return c.axis < o.axis
}

// axisCandidate computes the median-based split of recs on one axis:
// value v such that left = {r : r.QI[axis] < v} and right are both
// non-empty, adjusted upward past duplicate runs. ok=false when every
// record has the same value on the axis.
func axisCandidate(recs []attr.Record, axis int) (value float64, leftN int, ok bool) {
	vals := make([]float64, len(recs))
	for i, r := range recs {
		vals[i] = r.QI[axis]
	}
	v, leftN, _, _, ok := medianSplit(vals)
	return v, leftN, ok
}

// medianSplit finds the median-based split of a value multiset in
// expected O(n): the split value v (adjusted upward past a duplicate
// run at the minimum so the left side is never empty), the number of
// values strictly below v, and the gap between v and its predecessor
// value. vals is reordered. ok is false when all values are equal.
//
// Bulk loading splits leaves holding hundreds of thousands of records
// (the whole data set lands in the root leaf on the first flush), where
// the sort-based version's O(n log n) per axis per level dominated load
// time; selection keeps recursive bulk splitting linear per level.
func medianSplit(vals []float64) (v float64, leftN int, gap, width float64, ok bool) {
	n := len(vals)
	if n < 2 {
		return 0, 0, 0, 0, false
	}
	if n <= 48 {
		sort.Float64s(vals)
		if vals[0] == vals[n-1] {
			return 0, 0, 0, 0, false
		}
		mid := n / 2
		v = vals[mid]
		if v == vals[0] {
			for mid < n && vals[mid] == vals[0] {
				mid++
			}
			v = vals[mid]
		}
		leftN = sort.SearchFloat64s(vals, v)
		return v, leftN, v - vals[leftN-1], vals[n-1] - vals[0], true
	}
	v = quickselect(vals, n/2)
	lo, hi := vals[0], vals[0]
	for _, x := range vals {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if lo == hi {
		return 0, 0, 0, 0, false
	}
	if v == lo {
		// Median sits in the duplicate run at the minimum: split at the
		// smallest value above it instead.
		next := hi
		for _, x := range vals {
			if x > lo && x < next {
				next = x
			}
		}
		v = next
	}
	// One pass for the count below v and v's predecessor (the gap).
	pred := lo
	for _, x := range vals {
		if x < v {
			leftN++
			if x > pred {
				pred = x
			}
		}
	}
	return v, leftN, v - pred, hi - lo, true
}

// quickselect returns the k-th smallest value (0-based) of vals,
// reordering vals in place. Median-of-three pivoting with a sort
// fallback for small ranges keeps it robust on presorted and
// duplicate-heavy inputs.
func quickselect(vals []float64, k int) float64 {
	lo, hi := 0, len(vals)-1
	for hi-lo > 32 {
		// Median-of-three pivot.
		mid := lo + (hi-lo)/2
		if vals[mid] < vals[lo] {
			vals[mid], vals[lo] = vals[lo], vals[mid]
		}
		if vals[hi] < vals[lo] {
			vals[hi], vals[lo] = vals[lo], vals[hi]
		}
		if vals[hi] < vals[mid] {
			vals[hi], vals[mid] = vals[mid], vals[hi]
		}
		pivot := vals[mid]
		// Hoare partition.
		i, j := lo, hi
		for i <= j {
			for vals[i] < pivot {
				i++
			}
			for vals[j] > pivot {
				j--
			}
			if i <= j {
				vals[i], vals[j] = vals[j], vals[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return vals[k]
		}
	}
	sub := vals[lo : hi+1]
	sort.Float64s(sub)
	return vals[k]
}

// MinMarginPolicy is the default R-tree-style policy: among all axes'
// median splits, choose the one minimizing the summed weighted
// normalized extent (the NCP, Definition 4) of the two resulting MBRs
// (evaluated to first order, see chooseByScore). This is the "splits by
// trying to minimize the area of the resulting partitions" behaviour
// the paper credits for the R⁺-tree's quality advantage over Mondrian
// (Section 5.3). Margin (perimeter) rather than raw area is the
// underlying quantity because point data routinely produces degenerate
// zero-area boxes.
//
// TopAxes bounds how many axes get the exact median-and-gap scan per
// split: axes are pre-ranked by weighted normalized extent (read off
// the MBR, no scan) and only the leading TopAxes are evaluated. 0
// means 2, which profiles showed costs ~a quarter of exhaustive
// evaluation at indistinguishable anonymization quality; set it to the
// dimensionality to recover the exhaustive policy.
type MinMarginPolicy struct {
	TopAxes int
}

// ChooseSplit implements SplitPolicy.
func (p MinMarginPolicy) ChooseSplit(recs []attr.Record, ctx *SplitContext) (int, float64, bool) {
	top := p.TopAxes
	if top == 0 {
		top = 2
	}
	return chooseByScore(recs, ctx, rankedAxes(recs, ctx, top))
}

// rankedAxes orders axes by descending weighted normalized extent and
// returns the first max of them (all axes when max exceeds the
// dimensionality). The extent comes from ctx.MBR when available.
func rankedAxes(recs []attr.Record, ctx *SplitContext, max int) []int {
	dims := len(recs[0].QI)
	if max >= dims {
		return allAxes(dims)
	}
	mbr := ctx.MBR
	if mbr == nil {
		box := attr.NewBox(dims)
		for _, r := range recs {
			box.Include(r.QI)
		}
		mbr = box
	}
	axes := allAxes(dims)
	widths := make([]float64, dims)
	for a := 0; a < dims; a++ {
		w := mbr[a].Width() * ctx.Schema.Attrs[a].EffectiveWeight()
		if dw := ctx.Domain[a].Width(); dw > 0 {
			w /= dw
		}
		widths[a] = w
	}
	sort.SliceStable(axes, func(i, j int) bool { return widths[axes[i]] > widths[axes[j]] })
	return axes[:max]
}

// allAxes returns 0..dims-1.
func allAxes(dims int) []int {
	out := make([]int, dims)
	for i := range out {
		out[i] = i
	}
	return out
}

// chooseByScore evaluates the median-split candidate of each axis and
// returns the best by (balanced, score). The score is the first-order
// equivalent of comparing the summed weighted normalized margins of the
// two resulting MBRs: splitting axis a at value v leaves every other
// axis's extent unchanged in both halves, so candidate rankings differ
// only in -w_a·(width_a + gap_a)/|domain_a|, where gap is the dead
// space the split exposes at the cut. Minimizing that (the score)
// prefers wide, heavily weighted axes with big gaps — the R-tree
// "minimize the resulting partitions" objective — while touching each
// axis's values exactly once. (The exact version that built both side
// MBRs per axis dominated load-time profiles.)
func chooseByScore(recs []attr.Record, ctx *SplitContext, axes []int) (int, float64, bool) {
	// For very large leaves (bulk loading splits leaves holding big
	// fractions of the data set), axes are scored on a strided sample
	// and only the winning axis gets an exact median pass. The sample
	// decides *which* axis splits — a decision robust to sampling —
	// while the split value itself stays exact.
	const maxSample = 1024
	stride := 1
	if len(recs) > 4*maxSample {
		stride = len(recs) / maxSample
	}
	sampleLen := (len(recs) + stride - 1) / stride

	var best candidate
	found := false
	vals := make([]float64, sampleLen)
	for _, axis := range axes {
		vals = vals[:0]
		for i := 0; i < len(recs); i += stride {
			vals = append(vals, recs[i].QI[axis])
		}
		v, leftN, gap, width, ok := medianSplit(vals)
		if !ok {
			continue
		}
		w := ctx.Schema.Attrs[axis].EffectiveWeight()
		score := 0.0
		if dw := ctx.Domain[axis].Width(); dw > 0 {
			score = -w * (width + gap) / dw
		}
		c := candidate{
			axis:     axis,
			value:    v,
			balanced: leftN*stride >= ctx.MinSide && (len(vals)-leftN)*stride >= ctx.MinSide,
			score:    score,
		}
		if !found || c.better(best) {
			best = c
			found = true
		}
	}
	if !found {
		return 0, 0, false
	}
	if stride > 1 {
		// Exact median on the winning axis over all records: the sample
		// chose the axis; the value must split the real multiset.
		full := make([]float64, len(recs))
		for i, r := range recs {
			full[i] = r.QI[best.axis]
		}
		if v, _, _, _, ok := medianSplit(full); ok {
			best.value = v
		}
	}
	return best.axis, best.value, true
}

// WidestAxisPolicy mimics the Mondrian heuristic inside the index:
// split the attribute whose records span the largest normalized range.
// Provided for ablation against MinMarginPolicy.
type WidestAxisPolicy struct{}

// ChooseSplit implements SplitPolicy.
func (WidestAxisPolicy) ChooseSplit(recs []attr.Record, ctx *SplitContext) (int, float64, bool) {
	dims := len(recs[0].QI)
	spread := attr.NewBox(dims)
	for _, r := range recs {
		spread.Include(r.QI)
	}
	type axisWidth struct {
		axis  int
		width float64
	}
	order := make([]axisWidth, 0, dims)
	for a := 0; a < dims; a++ {
		w := spread[a].Width()
		if dw := ctx.Domain[a].Width(); dw > 0 {
			w /= dw
		}
		order = append(order, axisWidth{a, w})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].width != order[j].width {
			return order[i].width > order[j].width
		}
		return order[i].axis < order[j].axis
	})
	for _, aw := range order {
		if v, _, ok := axisCandidate(recs, aw.axis); ok {
			return aw.axis, v, true
		}
	}
	return 0, 0, false
}

// BiasedPolicy implements the workload-biased splitting of Section 2.4:
// "the biased splitting algorithm selects the Zipcode attribute as the
// splitting attribute for every split". Preference is given to the
// attributes in Axes (in the given priority order); when none of them
// can separate the records, Fallback (default MinMarginPolicy) decides.
type BiasedPolicy struct {
	Axes     []int
	Fallback SplitPolicy
}

// ChooseSplit implements SplitPolicy.
func (p BiasedPolicy) ChooseSplit(recs []attr.Record, ctx *SplitContext) (int, float64, bool) {
	for _, axis := range p.Axes {
		if v, _, ok := axisCandidate(recs, axis); ok {
			return axis, v, true
		}
	}
	fb := p.Fallback
	if fb == nil {
		fb = MinMarginPolicy{}
	}
	return fb.ChooseSplit(recs, ctx)
}

// WeightedPolicy scores splits by the weighted certainty penalty with
// explicit per-attribute weights (Section 2.4's "assigning higher
// weights to the more important quasi-identifier attributes"): axes
// whose weight is higher contribute more to a box's penalty, so the
// policy prefers to shorten them. Weights must match the schema
// dimensionality; they override the schema's own attribute weights.
type WeightedPolicy struct {
	Weights []float64
}

// ChooseSplit implements SplitPolicy.
func (p WeightedPolicy) ChooseSplit(recs []attr.Record, ctx *SplitContext) (int, float64, bool) {
	// Delegate to chooseByScore under a schema whose weights are
	// replaced by p.Weights.
	s := *ctx.Schema
	s.Attrs = make([]attr.Attribute, len(ctx.Schema.Attrs))
	copy(s.Attrs, ctx.Schema.Attrs)
	for i := range s.Attrs {
		if i < len(p.Weights) {
			s.Attrs[i].Weight = p.Weights[i]
		}
	}
	sub := *ctx
	sub.Schema = &s
	return chooseByScore(recs, &sub, rankedAxes(recs, &sub, 2))
}
