package rplustree

import (
	"fmt"
	"math"

	"spatialanon/internal/attr"
)

// LeafView is a read-only view of one leaf: its tight MBR (the
// generalized value its records publish under) and the records
// themselves. The Records slice aliases tree storage; callers must not
// mutate it.
type LeafView struct {
	MBR     attr.Box
	Records []attr.Record
}

// NodeView summarizes one node at some level: its MBR, its record count,
// and the leaves beneath it in order. It backs the hierarchical
// multi-granular algorithm of Section 3.1, where a level-i node becomes
// one partition of a coarser release.
type NodeView struct {
	MBR    attr.Box
	Count  int
	Leaves []LeafView
}

// Leaves returns every non-empty leaf in trie order. Trie order is the
// "sequential ordering of nodes on the same tree level" the leaf-scan
// algorithm of Section 3.2 relies on: adjacent leaves are spatially
// adjacent, so groups of consecutive leaves form compact partitions.
func (t *Tree) Leaves() []LeafView {
	var out []LeafView
	t.walkLeaves(t.root, func(n *node) {
		if len(n.recs) > 0 {
			out = append(out, LeafView{MBR: n.mbr, Records: n.recs})
		}
	})
	return out
}

// walkLeaves visits leaves under n in trie order.
func (t *Tree) walkLeaves(n *node, visit func(*node)) {
	if n.isLeaf() {
		visit(n)
		return
	}
	var walkTrie func(st *splitTrie)
	walkTrie = func(st *splitTrie) {
		if st.isLeaf() {
			t.walkLeaves(st.child, visit)
			return
		}
		walkTrie(st.left)
		walkTrie(st.right)
	}
	walkTrie(n.trie)
}

// Level returns the nodes at the given level in trie order, level 0
// being the leaves and Height()-1 the root. Each view aggregates the
// node's subtree. Views with zero records are omitted.
func (t *Tree) Level(level int) ([]NodeView, error) {
	if level < 0 || level >= t.height {
		return nil, fmt.Errorf("rplustree: level %d outside [0,%d)", level, t.height)
	}
	depth := t.height - 1 - level // root depth 0
	var out []NodeView
	var walk func(n *node, d int)
	walk = func(n *node, d int) {
		if d == depth {
			v := NodeView{MBR: n.mbr, Count: n.count}
			t.walkLeaves(n, func(l *node) {
				if len(l.recs) > 0 {
					v.Leaves = append(v.Leaves, LeafView{MBR: l.mbr, Records: l.recs})
				}
			})
			if v.Count > 0 {
				out = append(out, v)
			}
			return
		}
		var walkTrie func(st *splitTrie)
		walkTrie = func(st *splitTrie) {
			if st.isLeaf() {
				walk(st.child, d+1)
				return
			}
			walkTrie(st.left)
			walkTrie(st.right)
		}
		walkTrie(n.trie)
	}
	walk(t.root, 0)
	return out, nil
}

// Search returns the records whose exact coordinates fall inside the
// query box, pruning by MBR — so the gaps between MBRs and routing
// regions (Section 2.3) let whole subtrees be skipped even when the
// query intersects their routing regions.
func (t *Tree) Search(q attr.Box) []attr.Record {
	var out []attr.Record
	var walk func(n *node)
	walk = func(n *node) {
		if !n.mbr.Intersects(q) {
			return
		}
		if n.isLeaf() {
			for _, r := range n.recs {
				if q.Contains(r.QI) {
					out = append(out, r)
				}
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// SearchLeaves returns the leaves whose MBR intersects the query box —
// the candidate set W of Section 2.3. A COUNT query on the anonymized
// data returns the total occupancy of W.
func (t *Tree) SearchLeaves(q attr.Box) []LeafView {
	var out []LeafView
	var walk func(n *node)
	walk = func(n *node) {
		if !n.mbr.Intersects(q) {
			return
		}
		if n.isLeaf() {
			if len(n.recs) > 0 {
				out = append(out, LeafView{MBR: n.mbr, Records: n.recs})
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// AuditNode is a read-only structural snapshot of one tree node. It
// exists so an external auditor (internal/verify) can re-derive the
// paper's safety properties — sibling disjointness, MBR containment,
// occupancy — from the raw structure without trusting this package's
// own CheckInvariants. Box and Record slices alias tree storage;
// callers must not mutate them.
type AuditNode struct {
	// Region is the node's half-open routing region.
	Region attr.Box
	// MBR is the node's tight bounding box.
	MBR attr.Box
	// Count is the number of records beneath the node.
	Count int
	// Records is the leaf payload; nil for internal nodes.
	Records []attr.Record
	// Children are the node's children; nil for leaves.
	Children []*AuditNode
}

// Leaf reports whether the snapshot node is a leaf.
func (a *AuditNode) Leaf() bool { return a.Children == nil }

// Audit returns a structural snapshot of the whole tree for external
// invariant checking.
func (t *Tree) Audit() *AuditNode {
	var snap func(n *node) *AuditNode
	snap = func(n *node) *AuditNode {
		a := &AuditNode{Region: n.region, MBR: n.mbr, Count: n.count}
		if n.isLeaf() {
			a.Records = n.recs
			return a
		}
		a.Children = make([]*AuditNode, len(n.children))
		for i, c := range n.children {
			a.Children[i] = snap(c)
		}
		return a
	}
	return snap(t.root)
}

// CheckInvariants verifies the structural invariants of the index and
// returns the first violation found. It is exported for tests and for
// the experiment harness's self-checks; it is O(n log n) and not meant
// for hot paths.
//
// Invariants:
//  1. Sibling routing regions are pairwise disjoint (half-open).
//  2. A child's routing region lies inside its parent's.
//  3. A node's MBR is tight: exactly the union of its descendants'
//     records, and contained in its routing region.
//  4. Counts aggregate correctly.
//  5. All leaves are at the same depth.
//  6. Every record's point lies in its leaf's routing region.
//  7. Internal node tries reference exactly the node's children.
func (t *Tree) CheckInvariants() error {
	leafDepth := -1
	var walk func(n *node, depth int, region attr.Box) error
	walk = func(n *node, depth int, region attr.Box) error {
		if !boxWithin(n.region, region) {
			return fmt.Errorf("node region %v escapes parent region %v", n.region, region)
		}
		if !n.mbr.IsEmpty() && !regionContainsBox(n.region, n.mbr) {
			return fmt.Errorf("node MBR %v escapes region %v", n.mbr, n.region)
		}
		if n.isLeaf() {
			if leafDepth == -1 {
				leafDepth = depth
			} else if depth != leafDepth {
				return fmt.Errorf("leaf at depth %d, expected %d", depth, leafDepth)
			}
			if n.count != len(n.recs) {
				return fmt.Errorf("leaf count %d != %d records", n.count, len(n.recs))
			}
			want := attr.NewBox(len(n.region))
			for _, r := range n.recs {
				if !regionContains(n.region, r.QI) {
					return fmt.Errorf("record %d at %v outside leaf region %v", r.ID, r.QI, n.region)
				}
				want.Include(r.QI)
			}
			if !want.Equal(n.mbr) && !(want.IsEmpty() && n.mbr.IsEmpty()) {
				return fmt.Errorf("leaf MBR %v not tight (want %v)", n.mbr, want)
			}
			return nil
		}
		if len(n.children) < 1 {
			return fmt.Errorf("internal node with no children")
		}
		// Trie must enumerate exactly the children.
		fromTrie := map[*node]bool{}
		var collect func(st *splitTrie) error
		collect = func(st *splitTrie) error {
			if st.isLeaf() {
				if fromTrie[st.child] {
					return fmt.Errorf("trie references child twice")
				}
				fromTrie[st.child] = true
				return nil
			}
			if err := collect(st.left); err != nil {
				return err
			}
			return collect(st.right)
		}
		if err := collect(n.trie); err != nil {
			return err
		}
		if len(fromTrie) != len(n.children) {
			return fmt.Errorf("trie has %d leaves, node has %d children", len(fromTrie), len(n.children))
		}
		count := 0
		mbr := attr.NewBox(len(n.region))
		for i, c := range n.children {
			if !fromTrie[c] {
				return fmt.Errorf("child %d missing from trie", i)
			}
			if c.parent != n {
				return fmt.Errorf("child %d has wrong parent pointer", i)
			}
			for j := i + 1; j < len(n.children); j++ {
				if regionsOverlap(c.region, n.children[j].region) {
					return fmt.Errorf("sibling regions overlap: %v and %v", c.region, n.children[j].region)
				}
			}
			count += c.count
			mbr.IncludeBox(c.mbr)
			if err := walk(c, depth+1, n.region); err != nil {
				return err
			}
		}
		if count != n.count {
			return fmt.Errorf("node count %d != children sum %d", n.count, count)
		}
		if !mbr.Equal(n.mbr) && !(mbr.IsEmpty() && n.mbr.IsEmpty()) {
			return fmt.Errorf("node MBR %v not union of children (want %v)", n.mbr, mbr)
		}
		return nil
	}
	return walk(t.root, 0, infiniteRegion(t.cfg.Schema.Dims()))
}

// boxWithin reports half-open region containment: child within parent.
func boxWithin(child, parent attr.Box) bool {
	for i := range child {
		if child[i].Lo < parent[i].Lo || child[i].Hi > parent[i].Hi {
			return false
		}
	}
	return true
}

// regionContainsBox reports whether a (closed) MBR fits in a half-open
// region. The MBR's Hi may equal the region's Hi only when the region
// extends to +inf... not so: a record with coordinate v sits in a region
// with Hi > v, so a tight MBR always has Hi strictly below the region Hi
// unless records touch the boundary from inside, which half-open routing
// forbids. Hence: mbr.Hi < region.Hi, or region.Hi = +inf.
func regionContainsBox(region, mbr attr.Box) bool {
	for i := range region {
		if mbr[i].Lo < region[i].Lo {
			return false
		}
		if mbr[i].Hi >= region[i].Hi && !math.IsInf(region[i].Hi, 1) {
			return false
		}
	}
	return true
}

// regionsOverlap reports whether two half-open regions share a point.
func regionsOverlap(a, b attr.Box) bool {
	for i := range a {
		if a[i].Hi <= b[i].Lo || b[i].Hi <= a[i].Lo {
			return false
		}
	}
	return true
}
