package rplustree

// Parallel split cascades: the plan-then-wire execution of bulk-load
// leaf splitting.
//
// The serial cascade (splitLeafRecursive -> splitLeaf) interleaves two
// very different kinds of work: pure computation (choosing hyperplanes,
// Hoare-partitioning record ranges, accumulating MBRs) and shared-state
// mutation (wiring nodes into the tree, redistributing buffers,
// charging the attached loader's pager). The computation dominates —
// a bulk load splits leaves holding large fractions of the data set at
// every level — and it decomposes perfectly: once a leaf's records are
// partitioned at a hyperplane, the two halves never interact again.
//
// This file therefore splits the cascade into two phases:
//
//  1. planSplits recursively chooses and evaluates every split of an
//     oversized record set WITHOUT touching the tree. Each recursion
//     step owns a disjoint subslice of the leaf's record array, so the
//     two halves of a split can be planned on different goroutines
//     (par.Pool fork-join) with no locks and no false sharing. The
//     split context is frozen once per cascade: ctx.Domain (= the root
//     MBR) provably cannot change while a cascade runs, because record
//     appends update ancestor MBRs before any splitting starts and
//     restructuring never changes them.
//  2. applySplits wires the planned nodes into the tree on the calling
//     goroutine, in exactly the order the serial recursion uses
//     (pre-order, left half first). Structural restructuring, buffer
//     redistribution and pager charges therefore happen in the
//     identical sequence, which keeps not only the tree but also the
//     I/O counters of Figure 8 bit-identical for every worker count.
//
// Why not one pager per subtree worker instead? Sharding the pager
// would hand each worker MemoryBytes/W of pool, making the measured
// I/O depend on the worker count — the Figure 8 reproduction would
// change meaning under -workers — and stitching independently built
// subtrees of different heights back under one root would need
// height-equalizing surgery the paper's algorithm never performs. The
// chosen ownership model is stated in DESIGN.md ("Concurrency model"):
// the pager remains confined to the goroutine driving the load; worker
// goroutines never see it.

import (
	"errors"

	"spatialanon/internal/attr"
	"spatialanon/internal/par"
)

const (
	// parSplitMin is the smallest oversized leaf routed through the
	// plan-then-wire path, and within a plan the smallest half worth
	// forking to another worker. Below it the fork overhead (one
	// goroutine + one channel) outweighs the partition scan.
	parSplitMin = 2048
	// parRouteMin is the smallest batch worth forking during trie
	// routing (bufferload.go): routing is one compare-and-swap sweep
	// per level, much cheaper per record than split planning.
	parRouteMin = 4096
)

// splitPlan is one planned leaf split: the hyperplane, the two halves'
// routing regions, tight MBRs and record ranges (aliasing the original
// leaf's array, already partitioned in place), and the deeper splits of
// each half (nil when the half fits leaf capacity or cannot split).
type splitPlan struct {
	axis  int
	value float64

	lRegion, rRegion attr.Box
	lMBR, rMBR       attr.Box
	lRecs, rRecs     []attr.Record

	lSub, rSub *splitPlan
}

// splitLeafPlanned runs one full cascade over an oversized leaf via
// plan-then-wire. It is called instead of the serial recursion when
// the tree's Parallelism admits more than one worker and the leaf is
// large enough to matter; its observable effect is identical.
func (t *Tree) splitLeafPlanned(leaf *node) error {
	pool := par.NewPool(t.cfg.Parallelism)
	// Freeze the split context's Domain for the cascade. Cloning (not
	// aliasing) makes the worker goroutines' reads independent of the
	// tree even in exotic interleavings, and costs one small box.
	domain := t.root.mbr.Clone()
	plan := t.planSplits(leaf.recs, leaf.region, leaf.mbr, domain, pool)
	return t.applySplits(leaf, plan)
}

// planSplits recursively plans the splits of recs, which tile `region`
// and have tight bound `mbr`. recs is partitioned in place exactly as
// the serial splitLeaf would (Hoare sweep, left = strictly below the
// hyperplane); no tree state is read or written, so halves fork freely.
func (t *Tree) planSplits(recs []attr.Record, region, mbr, domain attr.Box, pool *par.Pool) *splitPlan {
	if len(recs) <= t.cfg.leafCapacity() {
		return nil
	}
	ctx := &SplitContext{Schema: t.cfg.Schema, Domain: domain, MBR: mbr, MinSide: t.cfg.BaseK}
	axis, value, ok := t.cfg.Split.ChooseSplit(recs, ctx)
	if !ok {
		return nil // all points identical: the leaf stays oversized
	}
	lRegion, rRegion := splitRegion(region, axis, value)
	lMBR := attr.NewBox(len(region))
	rMBR := attr.NewBox(len(region))
	lo, hi := 0, len(recs)
	for lo < hi {
		if recs[lo].QI[axis] < value {
			lMBR.Include(recs[lo].QI)
			lo++
		} else {
			hi--
			recs[lo], recs[hi] = recs[hi], recs[lo]
			rMBR.Include(recs[hi].QI)
		}
	}
	lRecs := recs[:lo:lo]
	rRecs := recs[lo:]
	if t.cfg.Guard != nil && !t.cfg.Guard(lRecs, rRecs) {
		return nil // constraint-violating split: the leaf grows instead
	}
	p := &splitPlan{
		axis: axis, value: value,
		lRegion: lRegion, rRegion: rRegion,
		lMBR: lMBR, rMBR: rMBR,
		lRecs: lRecs, rRecs: rRecs,
	}
	if len(rRecs) >= parSplitMin {
		join := pool.Fork(func() { p.rSub = t.planSplits(rRecs, rRegion, rMBR, domain, pool) })
		p.lSub = t.planSplits(lRecs, lRegion, lMBR, domain, pool)
		join()
	} else {
		p.lSub = t.planSplits(lRecs, lRegion, lMBR, domain, pool)
		p.rSub = t.planSplits(rRecs, rRegion, rMBR, domain, pool)
	}
	return p
}

// applySplits wires a planned cascade into the tree. It runs on the
// goroutine driving the load and performs replaceWithPair calls in the
// serial recursion's order (pre-order, left first), so parent
// overflow splits, buffer redistribution and loader I/O charges fire
// in the identical sequence. Error semantics mirror the serial path: a
// *CorruptionError aborts the subtree untouched (the leaf keeps every
// record — planning only reordered them); any other error is an I/O
// charge on an already-complete structural change, so wiring continues
// and the first error is surfaced.
func (t *Tree) applySplits(leaf *node, p *splitPlan) error {
	if p == nil {
		return nil
	}
	left := &node{region: p.lRegion, mbr: p.lMBR, recs: p.lRecs, count: len(p.lRecs)}
	right := &node{region: p.rRegion, mbr: p.rMBR, recs: p.rRecs, count: len(p.rRecs)}
	err := t.replaceWithPair(leaf, left, right, p.axis, p.value)
	if err != nil {
		var ce *CorruptionError
		if errors.As(err, &ce) {
			return err
		}
	}
	if e := t.applySplits(left, p.lSub); err == nil {
		err = e
	}
	if e := t.applySplits(right, p.rSub); err == nil {
		err = e
	}
	return err
}
