package rplustree

import (
	"testing"

	"spatialanon/internal/attr"
	"spatialanon/internal/dataset"
)

// FuzzInsertDeleteInvariants feeds arbitrary byte strings as operation
// tapes (2 bytes per op: coordinates for an insert, or a delete of the
// oldest live record) and checks the full structural invariant set
// afterwards. Runs over the seed corpus as a normal test;
// `go test -fuzz FuzzInsertDeleteInvariants ./internal/rplustree`
// explores further.
func FuzzInsertDeleteInvariants(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0, 0, 0, 0, 0, 0})
	f.Add([]byte{255, 254, 253, 252, 1, 2, 3, 4, 200, 200, 200, 200})
	f.Fuzz(func(t *testing.T, tape []byte) {
		if len(tape) > 4096 {
			tape = tape[:4096]
		}
		tr, err := New(Config{Schema: dataset.PatientsSchema(), BaseK: 2})
		if err != nil {
			t.Fatal(err)
		}
		var live []attr.Record
		nextID := int64(0)
		for i := 0; i+1 < len(tape); i += 2 {
			a, b := tape[i], tape[i+1]
			if a%5 == 4 && len(live) > 0 {
				victim := live[0]
				live = live[1:]
				if found, err := tr.Delete(victim.ID, victim.QI); err != nil || !found {
					t.Fatalf("delete of live record %d failed", victim.ID)
				}
				continue
			}
			r := attr.Record{
				ID: nextID,
				QI: []float64{float64(a), float64(b % 2), float64(52000 + int(b)*8)},
			}
			nextID++
			live = append(live, r)
			if err := tr.Insert(r); err != nil {
				t.Fatal(err)
			}
		}
		if tr.Len() != len(live) {
			t.Fatalf("Len %d != live %d", tr.Len(), len(live))
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		// Every live record findable at its exact point.
		for _, r := range live {
			found := false
			for _, hit := range tr.Search(attr.PointBox(r.QI)) {
				if hit.ID == r.ID {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("live record %d not found", r.ID)
			}
		}
	})
}
