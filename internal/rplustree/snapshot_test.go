package rplustree

import (
	"strings"
	"testing"

	"spatialanon/internal/attr"
	"spatialanon/internal/dataset"
)

// treesEqual compares two trees structurally: same shape, regions,
// MBRs, counts and records in trie order.
func treesEqual(a, b *Tree) bool {
	var eq func(x, y *node) bool
	eq = func(x, y *node) bool {
		if x.isLeaf() != y.isLeaf() || x.count != y.count {
			return false
		}
		if !x.region.Equal(y.region) || !x.mbr.Equal(y.mbr) {
			return false
		}
		if x.isLeaf() {
			if len(x.recs) != len(y.recs) {
				return false
			}
			for i := range x.recs {
				if x.recs[i].ID != y.recs[i].ID || x.recs[i].Sensitive != y.recs[i].Sensitive {
					return false
				}
				for d := range x.recs[i].QI {
					if x.recs[i].QI[d] != y.recs[i].QI[d] {
						return false
					}
				}
			}
			return true
		}
		if len(x.children) != len(y.children) {
			return false
		}
		var eqTrie func(s, u *splitTrie) bool
		eqTrie = func(s, u *splitTrie) bool {
			if s.isLeaf() != u.isLeaf() {
				return false
			}
			if s.isLeaf() {
				return eq(s.child, u.child)
			}
			return s.axis == u.axis && s.value == u.value && eqTrie(s.left, u.left) && eqTrie(s.right, u.right)
		}
		return eqTrie(x.trie, y.trie)
	}
	return a.height == b.height && eq(a.root, b.root)
}

func TestSnapshotRoundTrip(t *testing.T) {
	cfg := Config{Schema: dataset.LandsEndSchema(), BaseK: 4}
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := continuousRecords(cfg.Schema, 400, 3)
	for i := range recs {
		recs[i].Sensitive = strings.Repeat("s", i%5)
	}
	insertAll(t, tr, recs)

	snap, err := tr.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(cfg, snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.CheckInvariants(); err != nil {
		t.Fatalf("decoded tree invalid: %v", err)
	}
	if !treesEqual(tr, got) {
		t.Fatal("decoded tree differs from original")
	}
	// The decoded tree is live: it accepts maintenance.
	if found, err := got.Delete(recs[0].ID, recs[0].QI); err != nil || !found {
		t.Fatalf("delete on decoded tree: found=%v err=%v", found, err)
	}
	if err := got.Insert(attr.Record{ID: 99999, QI: recs[0].QI}); err != nil {
		t.Fatal(err)
	}
	if err := got.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotEmptyTree(t *testing.T) {
	cfg := Config{Schema: dataset.LandsEndSchema(), BaseK: 3}
	tr, _ := New(cfg)
	snap, err := tr.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(cfg, snap)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.Height() != 1 {
		t.Fatalf("decoded empty tree: len=%d height=%d", got.Len(), got.Height())
	}
}

func TestSnapshotRejectsDamage(t *testing.T) {
	cfg := Config{Schema: dataset.LandsEndSchema(), BaseK: 3}
	tr, _ := New(cfg)
	insertAll(t, tr, continuousRecords(cfg.Schema, 100, 5))
	snap, err := tr.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at every prefix length must error, never panic.
	for cut := 0; cut < len(snap); cut += 7 {
		if _, err := DecodeSnapshot(cfg, snap[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	// Trailing garbage is rejected.
	if _, err := DecodeSnapshot(cfg, append(append([]byte(nil), snap...), 0xEE)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	// A wrong-dimension schema is rejected.
	if _, err := DecodeSnapshot(Config{Schema: dataset.PatientsSchema(), BaseK: 3}, snap); err == nil {
		t.Fatal("wrong-dimension schema accepted")
	}
}

func TestSnapshotRefusesBufferedRecords(t *testing.T) {
	cfg := Config{Schema: dataset.LandsEndSchema(), BaseK: 3}
	tr, _ := New(cfg)
	bl, err := NewBulkLoader(tr, BulkLoadConfig{})
	if err != nil {
		t.Fatal(err)
	}
	recs := continuousRecords(cfg.Schema, 50, 9)
	if err := bl.InsertBatch(recs); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.EncodeSnapshot(); err == nil {
		t.Fatal("snapshot with buffered records accepted")
	}
	if err := bl.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.EncodeSnapshot(); err != nil {
		t.Fatal(err)
	}
}
