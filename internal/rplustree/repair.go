package rplustree

import (
	"spatialanon/internal/attr"
)

// This file implements underflow repair for incremental maintenance.
// Deletions can drive a leaf below BaseK, and before this repair
// existed the tree simply kept the underfull leaf. That was tolerable
// for one-shot releases — the leaf-scan grouping coalesces small
// leaves at materialization time — but it is wrong for a long-lived
// incremental index: a churn workload deleting from one region
// degrades that region to singleton leaves, every level view (the
// Section 3.1 hierarchical releases publish raw leaves) exposes them,
// and the structure drifts ever further from the k-bound shape that
// Lemma 1's collusion argument assumes the index maintains.
//
// Repair is remove-and-reinsert, the R-tree family's classic
// underflow treatment adapted to this tree's two extra invariants:
// uniform leaf depth, and routing regions that must remain exactly
// derivable from the split-trie hyperplanes (the durability layer's
// snapshot codec rebuilds regions from the tries alone). Merging two
// sibling leaves in place would need a region union that no single
// trie hyperplane describes; removing the underfull leaf and routing
// its records through the normal insertion path needs neither.
//
// Removing leaf L under parent P:
//
//  1. Splice L's trie leaf out of P's trie: L's trie parent — the
//     trie node carrying the hyperplane (axis, value) that once
//     separated L from its sibling subtree S — is overwritten with S.
//  2. Extend regions across the vacated hyperplane: every node in S
//     whose region boundary on axis sits exactly at value (exact
//     float equality — splitRegion copied these bounds bit-for-bit)
//     is widened to L's outer bound, recursively down the tree, so
//     the siblings again tile P's region and the trie again derives
//     every region.
//  3. Drop L from P's child list, subtract its count along the root
//     path and retighten ancestor MBRs.
//  4. Reinsert L's records through Insert: each routes to the leaf
//     now owning its point. Reinsertion only adds records to
//     surviving leaves (splitting them if they overflow), so repair
//     never creates a new underflow, and every leaf it touches stays
//     at the uniform depth.
//
// A parent left with a single child is legal in this tree (a trie
// subtree that is a lone leaf); but if L is its parent's only child
// the parent itself must go, so the repair climbs such single-child
// chains and removes the topmost node whose departure leaves a
// well-formed sibling set. If the chain reaches the root, the tree
// has no other records: it is reset to an empty single-leaf tree and
// the orphans are reinserted from scratch.

// repairUnderflow removes the underfull leaf from the tree and
// reinserts its records through normal routing. The caller has already
// removed the deleted record and fixed counts and MBRs along the root
// path. Errors come from an attached loader's I/O charges during
// reinsertion; the records are placed regardless.
func (t *Tree) repairUnderflow(leaf *node) error {
	// Climb single-child chains: victim is the topmost node that can be
	// spliced out leaving its parent with at least one child.
	victim := leaf
	removed := []*node{leaf}
	for victim.parent != nil && len(victim.parent.children) == 1 {
		victim = victim.parent
		removed = append(removed, victim)
	}

	// Orphans: the leaf's remaining records, plus anything a bulk
	// loader had blocked in buffers on the removed chain.
	orphans := append([]attr.Record(nil), leaf.recs...)
	if t.loader != nil {
		for _, n := range removed {
			if n.buffer != nil {
				orphans = append(orphans, n.buffer.recs...)
				for _, id := range n.buffer.pages {
					t.loader.pg.Free(id)
				}
				n.buffer = nil
			}
			t.loader.dropNode(n)
		}
	}

	parent := victim.parent
	if parent == nil {
		// The whole tree was one single-child chain over this leaf:
		// start over from an empty root.
		dims := t.cfg.Schema.Dims()
		t.root = &node{region: infiniteRegion(dims), mbr: attr.NewBox(dims)}
		t.height = 1
	} else {
		oldRegion := victim.region
		axis, value, victimLeft, sibling := spliceTrieLeaf(parent.trie, victim)
		if sibling == nil {
			return &CorruptionError{Detail: "underflow repair of node not present in parent trie"}
		}
		idx := -1
		for i, c := range parent.children {
			if c == victim {
				idx = i
				break
			}
		}
		if idx < 0 {
			// The trie splice already ran; restore is impossible without
			// the removed hyperplane's subtree shape, but this state is
			// unreachable unless the structure was already corrupt
			// (CheckInvariants ties tries to child lists).
			return &CorruptionError{Detail: "underflow repair of node not present in its parent"}
		}
		parent.children = append(parent.children[:idx], parent.children[idx+1:]...)

		// Widen the vacated hyperplane's sibling subtree — and only it:
		// an unrelated child elsewhere in the trie can share the same
		// boundary value on this axis without bordering the victim, and
		// widening it would overlap its own siblings.
		var newBound float64
		if victimLeft {
			newBound = oldRegion[axis].Lo
		} else {
			newBound = oldRegion[axis].Hi
		}
		var extendTrie func(st *splitTrie)
		extendTrie = func(st *splitTrie) {
			if st.isLeaf() {
				extendAcross(st.child, axis, value, victimLeft, newBound)
				return
			}
			extendTrie(st.left)
			extendTrie(st.right)
		}
		extendTrie(sibling)

		// Subtract the removed subtree along the root path and retighten
		// MBRs (the victim's records may have defined them).
		for n := parent; n != nil; n = n.parent {
			n.count -= victim.count
			m := attr.NewBox(len(n.region))
			for _, c := range n.children {
				m.IncludeBox(c.mbr)
			}
			n.mbr = m
		}
	}

	var err error
	for _, r := range orphans {
		if e := t.Insert(r); e != nil && err == nil {
			err = e
		}
	}
	return err
}

// spliceTrieLeaf removes the trie leaf pointing at victim from the
// trie rooted at st: the trie node whose hyperplane separated victim
// from its sibling subtree is overwritten with that sibling. It
// returns the vacated hyperplane, which side victim occupied, and the
// sibling subtree that took the vacated position (nil when victim is
// not in the trie — or when st itself is the leaf for victim, which
// callers exclude: a parent whose whole trie is the victim has one
// child, and the repair climbs past it).
func spliceTrieLeaf(st *splitTrie, victim *node) (axis int, value float64, victimLeft bool, sibling *splitTrie) {
	if st.isLeaf() {
		return 0, 0, false, nil
	}
	if st.left.isLeaf() && st.left.child == victim {
		axis, value = st.axis, st.value
		*st = *st.right
		return axis, value, true, st
	}
	if st.right.isLeaf() && st.right.child == victim {
		axis, value = st.axis, st.value
		*st = *st.left
		return axis, value, false, st
	}
	if a, v, l, s := spliceTrieLeaf(st.left, victim); s != nil {
		return a, v, l, s
	}
	return spliceTrieLeaf(st.right, victim)
}

// extendAcross widens n's routing region across a vacated hyperplane:
// if n's region boundary on axis sits exactly at value on the vacated
// side, it is moved to newBound, and the extension recurses into n's
// children (their regions tile n's, so exactly those touching the old
// boundary extend with it). Nodes not touching the hyperplane are
// left alone — the exact float comparison is safe because splitRegion
// propagates split values bit-for-bit into child bounds.
func extendAcross(n *node, axis int, value float64, victimLeft bool, newBound float64) {
	if victimLeft {
		if n.region[axis].Lo != value {
			return
		}
		n.region[axis].Lo = newBound
	} else {
		if n.region[axis].Hi != value {
			return
		}
		n.region[axis].Hi = newBound
	}
	for _, c := range n.children {
		extendAcross(c, axis, value, victimLeft, newBound)
	}
}
