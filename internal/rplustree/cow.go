package rplustree

import (
	"spatialanon/internal/attr"
)

// This file implements copy-on-write leaf snapshots: the mechanism the
// serving layer (internal/serve) uses to publish an immutable view of
// the leaf summary after every group commit without paying an O(n)
// copy per batch.
//
// Leaves() aliases tree storage, so a caller that wants a snapshot
// surviving further mutation must copy every leaf — O(n) per
// snapshot, which dominates a write path that publishes after every
// batch. SnapshotLeaves instead copies only the leaves whose content
// changed since the caller's previous snapshot and reuses the earlier
// copies for the rest, making each snapshot O(leaves + changed
// records): the walk is unavoidable, the copying is proportional to
// the batch, not the tree.
//
// Change detection is a per-leaf version counter (node.ver) bumped at
// every site that mutates a leaf's payload — insertIntoLeaf,
// bulkAppendLeaf and Delete; splits and underflow repair mint new
// nodes or route through those sites, so no mutation escapes the
// counter. Reuse additionally requires that the leaf was visited by
// the immediately preceding snapshot (node.snapGen matches the tree's
// generation counter), which makes a freshly minted node — whose
// zero-valued stamps could otherwise masquerade as "unchanged" —
// always copy.

// SnapshotLeaves returns every non-empty leaf in trie order, like
// Leaves, but with MBRs and record slices OWNED by the caller: they
// never alias tree storage, so the returned slice remains a
// consistent snapshot under any further mutation. prev must be the
// slice returned by this tree's previous SnapshotLeaves call (or nil
// for a full copy); entries for leaves unchanged since then are
// reused from it, so the caller must treat every returned LeafView as
// immutable and shared.
//
// Like all tree reads, SnapshotLeaves is not safe for concurrent use
// with mutation: it is meant to be called from the one goroutine that
// owns the tree (the serving layer's committer), which then hands the
// immutable result to any number of readers.
func (t *Tree) SnapshotLeaves(prev []LeafView) []LeafView {
	// Generation 0 is the zero value of every freshly minted node, so
	// reuse is only trusted from generation 1 on; the first snapshot of
	// a tree (or of a recovered tree, whose nodes are all fresh) copies
	// everything.
	gen := t.snapGen
	t.snapGen++
	cur := t.snapGen
	reusable := func(n *node) bool {
		return gen > 0 && n.snapGen == gen && n.snapVer == n.ver && n.snapIdx < len(prev)
	}
	// First pass: size the snapshot, so the copied leaves land in two
	// flat arenas — one record array and one interval array per
	// snapshot instead of two allocations per changed leaf. Arena
	// slices are published with full three-index expressions and the
	// arenas are sized exactly, so no append below can ever reallocate
	// or let one leaf's slice reach into the next; shared backing is
	// safe because every LeafView is immutable once returned (the same
	// contract prev reuse already relies on).
	leaves, changedLeaves, changedRecs := 0, 0, 0
	t.walkLeaves(t.root, func(n *node) {
		if len(n.recs) == 0 {
			return
		}
		leaves++
		if !reusable(n) {
			changedLeaves++
			changedRecs += len(n.recs)
		}
	})
	dims := t.cfg.Schema.Dims()
	recArena := make([]attr.Record, 0, changedRecs)
	boxArena := make([]attr.Interval, 0, changedLeaves*dims)
	out := make([]LeafView, 0, leaves)
	t.walkLeaves(t.root, func(n *node) {
		if len(n.recs) == 0 {
			return
		}
		if reusable(n) {
			out = append(out, prev[n.snapIdx])
		} else {
			rs := len(recArena)
			recArena = append(recArena, n.recs...)
			re := len(recArena)
			bs := len(boxArena)
			boxArena = append(boxArena, n.mbr...)
			be := len(boxArena)
			out = append(out, LeafView{
				MBR:     attr.Box(boxArena[bs:be:be]),
				Records: recArena[rs:re:re],
			})
		}
		n.snapGen = cur
		n.snapVer = n.ver
		n.snapIdx = len(out) - 1
	})
	return out
}
