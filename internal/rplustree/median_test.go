package rplustree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// refMedianSplit is the obviously-correct sort-based specification of
// medianSplit, used as the oracle for property tests.
func refMedianSplit(vals []float64) (v float64, leftN int, gap, width float64, ok bool) {
	n := len(vals)
	if n < 2 {
		return 0, 0, 0, 0, false
	}
	s := make([]float64, n)
	copy(s, vals)
	sort.Float64s(s)
	if s[0] == s[n-1] {
		return 0, 0, 0, 0, false
	}
	mid := n / 2
	v = s[mid]
	if v == s[0] {
		for mid < n && s[mid] == s[0] {
			mid++
		}
		v = s[mid]
	}
	leftN = sort.SearchFloat64s(s, v)
	return v, leftN, v - s[leftN-1], s[n-1] - s[0], true
}

func TestQuickselectAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(400)
		vals := make([]float64, n)
		for i := range vals {
			// Heavy duplication to stress equal-pivot handling.
			vals[i] = float64(rng.Intn(12))
		}
		k := rng.Intn(n)
		sorted := make([]float64, n)
		copy(sorted, vals)
		sort.Float64s(sorted)
		got := quickselect(vals, k)
		if got != sorted[k] {
			t.Fatalf("quickselect(%d of %d) = %v, want %v", k, n, got, sorted[k])
		}
	}
}

func TestQuickselectExtremes(t *testing.T) {
	vals := []float64{5}
	if quickselect(vals, 0) != 5 {
		t.Fatal("singleton")
	}
	asc := make([]float64, 200)
	for i := range asc {
		asc[i] = float64(i)
	}
	if quickselect(asc, 0) != 0 || quickselect(asc, 199) != 199 {
		t.Fatal("presorted extremes")
	}
	desc := make([]float64, 200)
	for i := range desc {
		desc[i] = float64(199 - i)
	}
	if quickselect(desc, 100) != 100 {
		t.Fatal("reverse-sorted median")
	}
	same := make([]float64, 100)
	if quickselect(same, 50) != 0 {
		t.Fatal("all-equal")
	}
}

func TestMedianSplitMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 800; trial++ {
		// Cover both the small (sorted) and large (selection) paths,
		// with duplicate-heavy and diverse inputs.
		n := 2 + rng.Intn(300)
		vals := make([]float64, n)
		span := 1 + rng.Intn(40)
		for i := range vals {
			vals[i] = float64(rng.Intn(span))
		}
		wantV, wantL, wantG, wantW, wantOK := refMedianSplit(vals)
		gotV, gotL, gotG, gotW, gotOK := medianSplit(vals)
		if gotOK != wantOK {
			t.Fatalf("n=%d span=%d: ok %v want %v", n, span, gotOK, wantOK)
		}
		if !wantOK {
			continue
		}
		if gotV != wantV || gotL != wantL || gotG != wantG || gotW != wantW {
			t.Fatalf("n=%d span=%d: got (v=%v l=%d g=%v w=%v) want (v=%v l=%d g=%v w=%v)",
				n, span, gotV, gotL, gotG, gotW, wantV, wantL, wantG, wantW)
		}
	}
}

// Property (testing/quick): whenever medianSplit reports ok, both sides
// are non-empty and v separates them (everything below v counted by
// leftN, everything else >= v).
func TestQuickMedianSplitSeparates(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, b := range raw {
			vals[i] = float64(b % 16)
		}
		orig := make([]float64, len(vals))
		copy(orig, vals)
		v, leftN, gap, width, ok := medianSplit(vals)
		if !ok {
			// Must mean all values equal.
			for _, x := range orig {
				if x != orig[0] {
					return false
				}
			}
			return true
		}
		below := 0
		for _, x := range orig {
			if x < v {
				below++
			}
		}
		if below != leftN || leftN == 0 || leftN == len(orig) {
			return false
		}
		return gap > 0 && width > 0
	}
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(203))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRankedAxes(t *testing.T) {
	recs := recsAt(
		[]float64{0, 0, 52000},
		[]float64{100, 1, 52100},
	)
	ctx := splitCtx()
	// Without an MBR hint the function scans: age spans its whole
	// domain (100/100), sex whole (1/1), zipcode a sliver (100/2000).
	axes := rankedAxes(recs, ctx, 2)
	if len(axes) != 2 {
		t.Fatalf("axes = %v", axes)
	}
	if axes[0] != 0 && axes[0] != 1 {
		t.Fatalf("widest axis = %d", axes[0])
	}
	for _, a := range axes {
		if a == 2 {
			t.Fatalf("narrow zipcode ranked top-2: %v", axes)
		}
	}
	// Requesting >= dims returns all axes in order.
	all := rankedAxes(recs, ctx, 8)
	if len(all) != 3 || all[0] != 0 || all[2] != 2 {
		t.Fatalf("all axes = %v", all)
	}
}

func TestRankedAxesWeighted(t *testing.T) {
	recs := recsAt(
		[]float64{0, 0, 52000},
		[]float64{100, 1, 52100},
	)
	ctx := splitCtx()
	// Copy the schema and boost zipcode's weight 1000x: it must rank
	// first despite spanning a sliver of its domain.
	cp := *ctx.Schema
	cp.Attrs = append(cp.Attrs[:0:0], ctx.Schema.Attrs...)
	cp.Attrs[2].Weight = 1000
	ctx2 := *ctx
	ctx2.Schema = &cp
	axes := rankedAxes(recs, &ctx2, 1)
	if axes[0] != 2 {
		t.Fatalf("weighted ranking = %v, want zipcode first", axes)
	}
}
