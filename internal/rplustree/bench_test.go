package rplustree

import (
	"fmt"
	"testing"

	"spatialanon/internal/attr"
	"spatialanon/internal/dataset"
)

// Micro-benchmarks for the index's core operations, complementing the
// repository-root figure benchmarks.

func benchTree(b *testing.B, n int) (*Tree, []attr.Record) {
	b.Helper()
	recs := dataset.GenerateLandsEnd(n, 7)
	tr, err := New(Config{Schema: dataset.LandsEndSchema(), BaseK: 5})
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range recs {
		if err := tr.Insert(r); err != nil {
			b.Fatal(err)
		}
	}
	return tr, recs
}

func BenchmarkInsert(b *testing.B) {
	recs := dataset.GenerateLandsEnd(100000, 7)
	tr, err := New(Config{Schema: dataset.LandsEndSchema(), BaseK: 5})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := recs[i%len(recs)]
		r.ID = int64(i)
		if err := tr.Insert(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeleteInsert(b *testing.B) {
	tr, recs := benchTree(b, 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := recs[i%len(recs)]
		if found, err := tr.Delete(r.ID, r.QI); err != nil || !found {
			b.Fatal("delete failed")
		}
		if err := tr.Insert(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearch(b *testing.B) {
	tr, recs := benchTree(b, 50000)
	queries := make([]attr.Box, 64)
	for i := range queries {
		q := attr.PointBox(recs[i*101%len(recs)].QI)
		q.Include(recs[(i*211+7)%len(recs)].QI)
		queries[i] = q
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Search(queries[i%len(queries)])
	}
}

func BenchmarkLeaves(b *testing.B) {
	tr, _ := benchTree(b, 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := tr.Leaves(); len(got) == 0 {
			b.Fatal("no leaves")
		}
	}
}

func BenchmarkBulkLoad(b *testing.B) {
	for _, n := range []int{10000, 50000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			recs := dataset.GenerateLandsEnd(n, 7)
			b.SetBytes(int64(n) * 32)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr, err := New(Config{Schema: dataset.LandsEndSchema(), BaseK: 5})
				if err != nil {
					b.Fatal(err)
				}
				bl, err := NewBulkLoader(tr, BulkLoadConfig{RecordBytes: 32})
				if err != nil {
					b.Fatal(err)
				}
				if err := bl.InsertBatch(recs); err != nil {
					b.Fatal(err)
				}
				if err := bl.Flush(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
