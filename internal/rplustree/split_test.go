package rplustree

import (
	"testing"

	"spatialanon/internal/attr"
	"spatialanon/internal/dataset"
)

func splitCtx() *SplitContext {
	return &SplitContext{
		Schema: dataset.PatientsSchema(),
		Domain: attr.Box{
			{Lo: 0, Hi: 100},
			{Lo: 0, Hi: 1},
			{Lo: 52000, Hi: 54000},
		},
		MinSide: 2,
	}
}

func recsAt(points ...[]float64) []attr.Record {
	out := make([]attr.Record, len(points))
	for i, p := range points {
		out[i] = attr.Record{ID: int64(i), QI: p}
	}
	return out
}

func TestAxisCandidate(t *testing.T) {
	recs := recsAt(
		[]float64{1, 0, 0}, []float64{2, 0, 0}, []float64{3, 0, 0}, []float64{4, 0, 0},
	)
	v, leftN, ok := axisCandidate(recs, 0)
	if !ok || v != 3 || leftN != 2 {
		t.Fatalf("axisCandidate = %v,%d,%v", v, leftN, ok)
	}
	// All values equal: unusable axis.
	if _, _, ok := axisCandidate(recs, 1); ok {
		t.Fatal("constant axis reported usable")
	}
	// Duplicate-heavy: median equals min, candidate must move past it.
	dup := recsAt(
		[]float64{5, 0, 0}, []float64{5, 0, 0}, []float64{5, 0, 0}, []float64{9, 0, 0},
	)
	v, leftN, ok = axisCandidate(dup, 0)
	if !ok || v != 9 || leftN != 3 {
		t.Fatalf("duplicate-run candidate = %v,%d,%v", v, leftN, ok)
	}
}

func TestMinMarginPolicyPrefersTightSplit(t *testing.T) {
	// Two tight clusters along zipcode (axis 2); age (axis 0) spread
	// mildly. Splitting zipcode separates clusters and yields near-zero
	// margins; splitting age leaves both boxes wide on zipcode.
	recs := recsAt(
		[]float64{10, 0, 52000}, []float64{20, 0, 52001}, []float64{30, 0, 52002},
		[]float64{15, 0, 53900}, []float64{25, 0, 53901}, []float64{35, 0, 53902},
	)
	axis, v, ok := (MinMarginPolicy{}).ChooseSplit(recs, splitCtx())
	if !ok {
		t.Fatal("split not found")
	}
	if axis != 2 {
		t.Fatalf("MinMargin chose axis %d, want 2 (zipcode)", axis)
	}
	if v <= 52002 || v > 53900 {
		t.Fatalf("split value %v does not separate clusters", v)
	}
}

func TestMinMarginPolicyUnsplittable(t *testing.T) {
	recs := recsAt([]float64{1, 1, 1}, []float64{1, 1, 1}, []float64{1, 1, 1})
	if _, _, ok := (MinMarginPolicy{}).ChooseSplit(recs, splitCtx()); ok {
		t.Fatal("identical points reported splittable")
	}
}

func TestWidestAxisPolicy(t *testing.T) {
	// zipcode (axis 2) spans nearly its whole normalized domain; age a
	// sliver; sex held constant (a varying binary attribute would span
	// its entire normalized domain and legitimately win).
	recs := recsAt(
		[]float64{10, 0, 52000}, []float64{11, 0, 52500},
		[]float64{12, 0, 53000}, []float64{13, 0, 53999},
	)
	axis, _, ok := (WidestAxisPolicy{}).ChooseSplit(recs, splitCtx())
	if !ok || axis != 2 {
		t.Fatalf("WidestAxis chose %d, want 2", axis)
	}
	// When the widest axis is constant it must fall through to the next.
	recs2 := recsAt(
		[]float64{10, 0, 53000}, []float64{40, 0, 53000},
		[]float64{70, 0, 53000}, []float64{90, 0, 53000},
	)
	axis, _, ok = (WidestAxisPolicy{}).ChooseSplit(recs2, splitCtx())
	if !ok || axis != 0 {
		t.Fatalf("WidestAxis fallback chose %d, want 0", axis)
	}
	if _, _, ok := (WidestAxisPolicy{}).ChooseSplit(recsAt([]float64{1, 1, 1}, []float64{1, 1, 1}), splitCtx()); ok {
		t.Fatal("identical points reported splittable")
	}
}

func TestBiasedPolicy(t *testing.T) {
	recs := recsAt(
		[]float64{10, 0, 52000}, []float64{20, 1, 52900},
		[]float64{30, 0, 53500}, []float64{40, 1, 53999},
	)
	// Bias to zipcode: every split lands on axis 2 regardless of shape.
	p := BiasedPolicy{Axes: []int{2}}
	axis, _, ok := p.ChooseSplit(recs, splitCtx())
	if !ok || axis != 2 {
		t.Fatalf("biased split on %d, want 2", axis)
	}
	// Preferred axis constant -> falls back.
	flat := recsAt(
		[]float64{10, 0, 53000}, []float64{20, 1, 53000},
		[]float64{30, 0, 53000}, []float64{40, 1, 53000},
	)
	axis, _, ok = p.ChooseSplit(flat, splitCtx())
	if !ok || axis == 2 {
		t.Fatalf("fallback split on %d, want != 2", axis)
	}
	// Priority order respected among preferred axes.
	p2 := BiasedPolicy{Axes: []int{1, 2}}
	axis, _, ok = p2.ChooseSplit(recs, splitCtx())
	if !ok || axis != 1 {
		t.Fatalf("priority split on %d, want 1", axis)
	}
}

func TestWeightedPolicy(t *testing.T) {
	// Square-ish data: unweighted margin ties are broken by axis
	// preference, but a heavy weight on zipcode (axis 2) must force the
	// policy to shorten zipcode, i.e. split it.
	recs := recsAt(
		[]float64{0, 0, 52000}, []float64{100, 0, 52000},
		[]float64{0, 0, 54000}, []float64{100, 0, 54000},
		[]float64{50, 0, 53000}, []float64{50, 0, 53001},
	)
	heavy := WeightedPolicy{Weights: []float64{1, 1, 100}}
	axis, _, ok := heavy.ChooseSplit(recs, splitCtx())
	if !ok || axis != 2 {
		t.Fatalf("weighted split on %d, want 2", axis)
	}
	light := WeightedPolicy{Weights: []float64{100, 1, 1}}
	axis, _, ok = light.ChooseSplit(recs, splitCtx())
	if !ok || axis != 0 {
		t.Fatalf("weighted split on %d, want 0", axis)
	}
}

func TestTreeWithBiasedPolicySplitsOnlyPreferredAxis(t *testing.T) {
	schema := dataset.LandsEndSchema()
	zip := schema.AttrIndex("zipcode")
	tr, err := New(Config{Schema: schema, BaseK: 5, Split: BiasedPolicy{Axes: []int{zip}}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range dataset.GenerateLandsEnd(1000, 12) {
		if err := tr.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every leaf should be narrow on zipcode relative to the domain —
	// the signature of zipcode-biased splitting (Figure 4(b)).
	dom := tr.MBR()
	domW := dom[zip].Width()
	leaves := tr.Leaves()
	narrow := 0
	for _, l := range leaves {
		if l.MBR[zip].Width() < domW/8 {
			narrow++
		}
	}
	if narrow < len(leaves)*9/10 {
		t.Fatalf("only %d of %d leaves narrow on zipcode", narrow, len(leaves))
	}
}

func TestCandidateOrdering(t *testing.T) {
	a := candidate{axis: 1, balanced: true, score: 5}
	b := candidate{axis: 0, balanced: false, score: 1}
	if !a.better(b) {
		t.Fatal("balanced candidate must beat unbalanced")
	}
	c := candidate{axis: 0, balanced: true, score: 4}
	if !c.better(a) {
		t.Fatal("lower score must win")
	}
	d := candidate{axis: 2, balanced: true, score: 4}
	if !c.better(d) || d.better(c) {
		t.Fatal("axis index must break ties deterministically")
	}
}
