package rplustree

import (
	"sort"
	"testing"

	"spatialanon/internal/attr"
	"spatialanon/internal/dataset"
)

func newLoader(t *testing.T, k int, cfg BulkLoadConfig) (*Tree, *BulkLoader) {
	t.Helper()
	tr, err := New(testConfig(k))
	if err != nil {
		t.Fatal(err)
	}
	bl, err := NewBulkLoader(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr, bl
}

// smallMem is a tight but workable memory budget for tests: 64 pages of
// 256 bytes.
var smallMem = BulkLoadConfig{PageSize: 256, MemoryBytes: 64 * 256, BufferPages: 2, RecordBytes: 16}

func TestBulkLoadMatchesTupleLoad(t *testing.T) {
	recs := dataset.GeneratePatients(2000, 20)

	tuple, _ := New(testConfig(5))
	for _, r := range recs {
		if err := tuple.Insert(r); err != nil {
			t.Fatal(err)
		}
	}

	bulk, bl := newLoader(t, 5, smallMem)
	if err := bl.InsertBatch(recs); err != nil {
		t.Fatal(err)
	}
	if err := bl.Flush(); err != nil {
		t.Fatal(err)
	}

	if bulk.Len() != tuple.Len() {
		t.Fatalf("bulk %d records vs tuple %d", bulk.Len(), tuple.Len())
	}
	if err := bulk.CheckInvariants(); err != nil {
		t.Fatalf("bulk tree invariants: %v", err)
	}
	// Same record multiset.
	collect := func(tr *Tree) []int64 {
		var ids []int64
		for _, l := range tr.Leaves() {
			for _, r := range l.Records {
				ids = append(ids, r.ID)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		return ids
	}
	bids, tids := collect(bulk), collect(tuple)
	for i := range bids {
		if bids[i] != tids[i] {
			t.Fatalf("record sets differ at %d: %d vs %d", i, bids[i], tids[i])
		}
	}
}

func TestBulkLoadFlushIdempotent(t *testing.T) {
	_, bl := newLoader(t, 3, smallMem)
	if err := bl.InsertBatch(dataset.GeneratePatients(500, 21)); err != nil {
		t.Fatal(err)
	}
	if err := bl.Flush(); err != nil {
		t.Fatal(err)
	}
	n := bl.tree.Len()
	if err := bl.Flush(); err != nil {
		t.Fatal(err)
	}
	if bl.tree.Len() != n {
		t.Fatal("second flush changed the tree")
	}
}

func TestBulkLoadIncrementalBatches(t *testing.T) {
	tr, bl := newLoader(t, 5, smallMem)
	s := dataset.PatientsStream(3000, 22)
	total := 0
	for {
		batch := s.NextBatch(500)
		if len(batch) == 0 {
			break
		}
		if err := bl.InsertBatch(batch); err != nil {
			t.Fatal(err)
		}
		if err := bl.Flush(); err != nil {
			t.Fatal(err)
		}
		total += len(batch)
		if tr.Len() != total {
			t.Fatalf("after batch: Len %d, want %d", tr.Len(), total)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBulkLoadChargesIO(t *testing.T) {
	// A memory budget far below the data size must force buffer spills
	// and hence nonzero I/O; a generous budget must do less I/O.
	run := func(memBytes int) int64 {
		tr, err := New(testConfig(5))
		if err != nil {
			t.Fatal(err)
		}
		bl, err := NewBulkLoader(tr, BulkLoadConfig{
			PageSize: 256, MemoryBytes: memBytes, BufferPages: 2, RecordBytes: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := bl.InsertBatch(dataset.GeneratePatients(4000, 23)); err != nil {
			t.Fatal(err)
		}
		if err := bl.Flush(); err != nil {
			t.Fatal(err)
		}
		return bl.Stats().IO()
	}
	tight := run(16 * 256)   // 16 pages
	roomy := run(4096 * 256) // 4096 pages
	if tight == 0 {
		t.Fatal("tight memory budget produced zero I/O")
	}
	if roomy >= tight {
		t.Fatalf("roomy budget did %d I/Os, tight did %d — want roomy < tight", roomy, tight)
	}
}

func TestBulkLoaderValidation(t *testing.T) {
	tr, _ := New(testConfig(3))
	if _, err := NewBulkLoader(tr, BulkLoadConfig{PageSize: 8, RecordBytes: 16, MemoryBytes: 1024}); err == nil {
		t.Fatal("page smaller than record accepted")
	}
	if _, err := NewBulkLoader(tr, BulkLoadConfig{PageSize: 256, MemoryBytes: 512}); err == nil {
		t.Fatal("sub-4-page pool accepted")
	}
	bl, err := NewBulkLoader(tr, smallMem)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBulkLoader(tr, smallMem); err == nil {
		t.Fatal("second loader on same tree accepted")
	}
	if err := bl.Insert(attr.Record{QI: []float64{1}}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if err := bl.Close(); err != nil {
		t.Fatal(err)
	}
	// After Close a new loader may attach.
	if _, err := NewBulkLoader(tr, smallMem); err != nil {
		t.Fatalf("reattach after Close: %v", err)
	}
}

func TestBulkThenTupleInserts(t *testing.T) {
	tr, bl := newLoader(t, 4, smallMem)
	if err := bl.InsertBatch(dataset.GeneratePatients(1000, 24)); err != nil {
		t.Fatal(err)
	}
	if err := bl.Close(); err != nil {
		t.Fatal(err)
	}
	// Tuple-at-a-time updates after the bulk phase (the incremental
	// maintenance scenario of Section 2.2).
	extra := dataset.GeneratePatients(200, 25)
	for i := range extra {
		extra[i].ID += 10000
		if err := tr.Insert(extra[i]); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 1200 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBufferSplitSafetyNet(t *testing.T) {
	// Force the safety-net path: block records in the root buffer, then
	// split the root directly via tuple inserts. The blocked records
	// must survive into the halves' buffers and flush correctly.
	tr, bl := newLoader(t, 2, smallMem)
	blocked := dataset.GeneratePatients(3, 26)
	for i := range blocked {
		blocked[i].ID += 500
	}
	if err := bl.InsertBatch(blocked); err != nil {
		t.Fatal(err)
	}
	// Direct inserts bypass the buffers and split the root leaf.
	for _, r := range dataset.GeneratePatients(50, 27) {
		if err := tr.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := bl.Flush(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 53 {
		t.Fatalf("Len = %d, want 53", tr.Len())
	}
	found := 0
	for _, l := range tr.Leaves() {
		for _, r := range l.Records {
			if r.ID >= 500 && r.ID < 600 {
				found++
			}
		}
	}
	if found != 3 {
		t.Fatalf("blocked records surviving: %d of 3", found)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLoaderStatsReset(t *testing.T) {
	_, bl := newLoader(t, 3, smallMem)
	if err := bl.InsertBatch(dataset.GeneratePatients(2000, 28)); err != nil {
		t.Fatal(err)
	}
	if err := bl.Flush(); err != nil {
		t.Fatal(err)
	}
	bl.ResetStats()
	if bl.Stats().IO() != 0 {
		t.Fatal("stats not reset")
	}
}
