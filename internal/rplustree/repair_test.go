package rplustree

import (
	"math"
	"math/rand"
	"testing"

	"spatialanon/internal/attr"
	"spatialanon/internal/dataset"
)

// continuousRecords generates records with continuous (duplicate-free
// with probability 1) coordinates, so the split policies can always
// keep both halves at k and every under-k leaf is a maintenance bug,
// not a duplicate pile-up.
func continuousRecords(schema *attr.Schema, n int, seed int64) []attr.Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]attr.Record, n)
	for i := range recs {
		qi := make([]float64, schema.Dims())
		for d := range qi {
			qi[d] = rng.Float64() * 100
		}
		recs[i] = attr.Record{ID: int64(i + 1), QI: qi}
	}
	return recs
}

// pointBox is the degenerate box containing exactly one point.
func pointBox(qi []float64) attr.Box {
	b := make(attr.Box, len(qi))
	for d, v := range qi {
		b[d] = attr.Interval{Lo: v, Hi: v}
	}
	return b
}

// minLeafCount returns the smallest leaf record count in the snapshot.
func minLeafCount(a *AuditNode) int {
	if a.Leaf() {
		return a.Count
	}
	min := math.MaxInt
	for _, c := range a.Children {
		if m := minLeafCount(c); m < min {
			min = m
		}
	}
	return min
}

// assertKBound fails if any leaf of a multi-level tree holds fewer
// than k records (a root-leaf tree is exempt: with fewer than k
// records total there is nothing to publish and nowhere to rehome).
func assertKBound(t *testing.T, tr *Tree, k int, when string) {
	t.Helper()
	if tr.Height() == 1 {
		return
	}
	if m := minLeafCount(tr.Audit()); m < k {
		t.Fatalf("%s: leaf with %d < %d records", when, m, k)
	}
}

// TestDeleteRepairsUnderflow is the regression test for underflow
// repair: before repair existed, deleting records concentrated in one
// leaf left that leaf below BaseK indefinitely (the old Delete kept
// underfull leaves and deferred k-enforcement to materialization).
func TestDeleteRepairsUnderflow(t *testing.T) {
	const k = 4
	cfg := Config{Schema: dataset.LandsEndSchema(), BaseK: k}
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := continuousRecords(cfg.Schema, 300, 7)
	insertAll(t, tr, recs)
	if tr.Height() < 2 {
		t.Fatal("test needs a multi-level tree")
	}
	assertKBound(t, tr, k, "after load")

	// Drain one leaf: deleting its records one by one must never leave
	// it (or any other leaf) below k — the moment it would dip, it must
	// be dissolved and its survivors rehomed.
	victimLeaf := tr.Leaves()[0]
	victims := append([]attr.Record(nil), victimLeaf.Records...)
	for i, r := range victims {
		found, err := tr.Delete(r.ID, r.QI)
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			// The leaf was dissolved by an earlier delete and this record
			// rehomed — it must still be somewhere in the tree.
			if len(tr.Search(pointBox(r.QI))) == 0 {
				t.Fatalf("record %d lost after repair", r.ID)
			}
			continue
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after delete %d: %v", i, err)
		}
		assertKBound(t, tr, k, "after targeted delete")
	}
}

// TestDeleteChurnStaysKBoundAndConsistent drives sustained random
// churn and holds the tree to its invariants and the k-bound after
// every operation.
func TestDeleteChurnStaysKBoundAndConsistent(t *testing.T) {
	const k = 3
	cfg := Config{Schema: dataset.LandsEndSchema(), BaseK: k}
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := continuousRecords(cfg.Schema, 200, 11)
	insertAll(t, tr, recs)
	live := append([]attr.Record(nil), recs...)
	rng := rand.New(rand.NewSource(13))
	nextID := int64(10_000)

	for op := 0; op < 400; op++ {
		if rng.Intn(3) == 0 || len(live) == 0 {
			qi := make([]float64, cfg.Schema.Dims())
			for d := range qi {
				qi[d] = rng.Float64() * 100
			}
			r := attr.Record{ID: nextID, QI: qi}
			nextID++
			if err := tr.Insert(r); err != nil {
				t.Fatal(err)
			}
			live = append(live, r)
		} else {
			i := rng.Intn(len(live))
			r := live[i]
			live = append(live[:i], live[i+1:]...)
			found, err := tr.Delete(r.ID, r.QI)
			if err != nil {
				t.Fatal(err)
			}
			if !found {
				t.Fatalf("op %d: live record %d not found", op, r.ID)
			}
		}
		if tr.Len() != len(live) {
			t.Fatalf("op %d: Len = %d, live = %d", op, tr.Len(), len(live))
		}
		assertKBound(t, tr, k, "during churn")
		if op%25 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every live record is still findable at its exact point.
	for _, r := range live {
		ok := false
		for _, hit := range tr.Search(pointBox(r.QI)) {
			ok = ok || hit.ID == r.ID
		}
		if !ok {
			t.Fatalf("record %d vanished during churn", r.ID)
		}
	}
}

// TestDeleteToEmptyResetsTree deletes every record: the repair's
// climb-to-root path must collapse the tree back to a clean empty
// root that accepts fresh inserts.
func TestDeleteToEmptyResetsTree(t *testing.T) {
	const k = 3
	cfg := Config{Schema: dataset.LandsEndSchema(), BaseK: k}
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := continuousRecords(cfg.Schema, 120, 19)
	insertAll(t, tr, recs)

	// Records may be rehomed by repairs mid-loop, so a delete may miss;
	// sweep until the tree is empty.
	for tr.Len() > 0 {
		deleted := false
		for _, l := range tr.Leaves() {
			for _, r := range l.Records {
				found, err := tr.Delete(r.ID, r.QI)
				if err != nil {
					t.Fatal(err)
				}
				deleted = deleted || found
				break
			}
			break
		}
		if !deleted {
			t.Fatal("no record deletable while tree non-empty")
		}
		assertKBound(t, tr, k, "while emptying")
	}
	if tr.Height() != 1 {
		t.Fatalf("empty tree has height %d", tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	insertAll(t, tr, continuousRecords(cfg.Schema, 50, 23))
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 50 {
		t.Fatalf("reloaded Len = %d", tr.Len())
	}
}

// TestUpdateRepairsUnderflow relocates records out of one region; the
// vacated leaves must dissolve rather than linger under k.
func TestUpdateRepairsUnderflow(t *testing.T) {
	const k = 4
	cfg := Config{Schema: dataset.LandsEndSchema(), BaseK: k}
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := continuousRecords(cfg.Schema, 200, 29)
	insertAll(t, tr, recs)
	rng := rand.New(rand.NewSource(31))
	moved := 0
	for _, r := range recs {
		if r.QI[0] >= 30 {
			continue
		}
		dst := make([]float64, len(r.QI))
		for d := range dst {
			dst[d] = 70 + rng.Float64()*30
		}
		found, err := tr.Update(r.ID, r.QI, attr.Record{ID: r.ID, QI: dst})
		if err != nil {
			t.Fatal(err)
		}
		if found {
			moved++
		}
		assertKBound(t, tr, k, "after update")
	}
	if moved == 0 {
		t.Fatal("test moved nothing")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(recs) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(recs))
	}
}
