package rplustree

import (
	"fmt"

	"spatialanon/internal/attr"
	"spatialanon/internal/pager"
)

// This file implements the buffer-tree bulk loading algorithm of
// Section 2.1 (after Arge [2] and van den Bercken et al. [6]): every
// internal node owns a record buffer; insertions are blocked in the root
// buffer, and when a buffer exceeds its threshold all of its records are
// "re-activated" and pushed one level down, either into child buffers or
// — at the last internal level — into the leaves themselves, where
// ordinary splits restructure the tree bottom-up. The paper's Figures 2
// and 3 illustrate exactly this flow.
//
// I/O accounting. The experiments in Figure 8 measure explicit I/O
// operations under a fixed memory budget. The loader stores its cost
// model in an internal/pager pool: buffered records spill to pager pages
// (one page per recordsPerPage records), each leaf owns a proxy page,
// and each structural node owns a proxy page. Reads and writes charged
// by the pager under LRU eviction are the reproduced quantity. Record
// payloads themselves stay in the Go heap — the pages carry cost, not
// truth — which keeps the simulation honest about I/O counts without
// double-storing multi-gigabyte data sets.

// BulkLoadConfig parameterizes a BulkLoader.
type BulkLoadConfig struct {
	// PageSize in bytes. Default 4096.
	PageSize int
	// MemoryBytes is the memory allotted to the load — the paper's
	// 256 MB budget in Section 5.1/5.2. Default 256 MiB.
	MemoryBytes int
	// BufferPages is the per-node buffer threshold in pages; a node's
	// buffer is emptied once it exceeds this many pages of records. The
	// paper's running example uses two pages. Default 2.
	BufferPages int
	// RecordBytes is the on-disk record size (32 for the Lands End
	// layout, 36 for the synthetic one). Default 4 x dims.
	RecordBytes int
}

func (c BulkLoadConfig) withDefaults(dims int) BulkLoadConfig {
	if c.PageSize == 0 {
		c.PageSize = 4096
	}
	if c.MemoryBytes == 0 {
		c.MemoryBytes = 256 << 20
	}
	if c.BufferPages == 0 {
		c.BufferPages = 2
	}
	if c.RecordBytes == 0 {
		c.RecordBytes = 4 * dims
	}
	return c
}

// nodeBuffer holds a node's blocked records plus the pager pages that
// carry their I/O cost.
type nodeBuffer struct {
	recs  []attr.Record
	pages []pager.PageID
}

// BulkLoader drives buffer-tree insertion into a Tree.
type BulkLoader struct {
	tree        *Tree
	pg          *pager.Pager
	cfg         BulkLoadConfig
	recsPerPage int
	bufferCap   int // records per buffer before it empties

	nodePages map[*node]pager.PageID // structural + leaf proxy pages
}

// NewBulkLoader attaches a buffer-tree loader to an (typically empty)
// tree. Only one loader may drive a tree at a time.
func NewBulkLoader(t *Tree, cfg BulkLoadConfig) (*BulkLoader, error) {
	if t.loader != nil {
		return nil, fmt.Errorf("rplustree: tree already has a bulk loader")
	}
	cfg = cfg.withDefaults(t.cfg.Schema.Dims())
	if cfg.PageSize < cfg.RecordBytes {
		return nil, fmt.Errorf("rplustree: page size %d smaller than record size %d", cfg.PageSize, cfg.RecordBytes)
	}
	poolPages := cfg.MemoryBytes / cfg.PageSize
	if poolPages < 4 {
		return nil, fmt.Errorf("rplustree: memory budget %dB yields a pool of %d pages; need at least 4", cfg.MemoryBytes, poolPages)
	}
	// The pager's pages are cost proxies: record payloads stay in the
	// tree, so the pages carry no bytes worth storing. Registering them
	// with a tiny internal size keeps the counting semantics (pool
	// capacity = MemoryBytes/PageSize pages, one transfer per page
	// moved) while avoiding zeroing megabytes of real 4 KiB buffers.
	bl := &BulkLoader{
		tree:        t,
		pg:          pager.New(8, poolPages),
		cfg:         cfg,
		recsPerPage: cfg.PageSize / cfg.RecordBytes,
		nodePages:   make(map[*node]pager.PageID),
	}
	bl.bufferCap = cfg.BufferPages * bl.recsPerPage
	t.loader = bl
	return bl, nil
}

// Stats returns the pager's I/O counters — the quantity plotted in
// Figure 8(b).
func (bl *BulkLoader) Stats() pager.Stats { return bl.pg.Stats() }

// ResetStats zeroes the I/O counters.
func (bl *BulkLoader) ResetStats() { bl.pg.ResetStats() }

// Close detaches the loader from the tree after flushing. The tree
// remains fully usable (and further tuple inserts are ordinary inserts).
func (bl *BulkLoader) Close() error {
	if err := bl.Flush(); err != nil {
		return err
	}
	bl.tree.loader = nil
	return nil
}

// Insert blocks one record in the root buffer, emptying it downward when
// it exceeds the threshold.
func (bl *BulkLoader) Insert(rec attr.Record) error {
	if len(rec.QI) != bl.tree.cfg.Schema.Dims() {
		return fmt.Errorf("rplustree: record has %d attributes, tree has %d", len(rec.QI), bl.tree.cfg.Schema.Dims())
	}
	root := bl.tree.root
	bl.appendBuffer(root, rec)
	if len(root.buffer.recs) > bl.rootBufferCap() {
		bl.emptyBuffer(root)
	}
	return nil
}

// InsertBatch blocks a batch of records.
func (bl *BulkLoader) InsertBatch(recs []attr.Record) error {
	for _, r := range recs {
		if err := bl.Insert(r); err != nil {
			return err
		}
	}
	return nil
}

// Flush pushes every blocked record all the way into the leaves. Must be
// called before reading anonymizations off the tree.
func (bl *BulkLoader) Flush() error {
	// Empty top-down: a node's buffer is emptied before its children's,
	// so one pass drains every record to the leaf frontier. Child lists
	// are snapshotted because restructuring replaces nodes mid-walk;
	// revisiting a replaced node is harmless (its buffer is empty).
	var drain func(n *node)
	drain = func(n *node) {
		if n.buffer != nil && len(n.buffer.recs) > 0 {
			bl.emptyBuffer(n)
		}
		children := make([]*node, len(n.children))
		copy(children, n.children)
		for _, c := range children {
			drain(c)
		}
	}
	// Restructuring during a drain can, in rare shapes, move a
	// still-buffered node above an already-visited position; loop until
	// a clean sweep (the second pass is almost always a no-op walk).
	for {
		drain(bl.tree.root)
		if !bl.anyPending(bl.tree.root) {
			// Make the flushed state durable: dirty pages still in the
			// pool are written back (and charged) now, so the I/O
			// counters reflect a complete, persistent load.
			bl.pg.Flush()
			return nil
		}
	}
}

// anyPending reports whether any buffer still holds records.
func (bl *BulkLoader) anyPending(n *node) bool {
	if n.buffer != nil && len(n.buffer.recs) > 0 {
		return true
	}
	for _, c := range n.children {
		if bl.anyPending(c) {
			return true
		}
	}
	return false
}

// rootBufferCap lets the root block more records than interior nodes
// (64 buffer units) so bulk loads amortize full-tree drains. It is
// deliberately independent of the memory budget: with the page access
// trace fixed, LRU's inclusion property makes measured I/O monotone in
// pool size, which is what lets Figure 8(b) isolate the effect of
// memory on I/O.
func (bl *BulkLoader) rootBufferCap() int {
	return 64 * bl.bufferCap
}

// appendBuffer blocks a record in n's buffer, spilling a cost page per
// recsPerPage records.
func (bl *BulkLoader) appendBuffer(n *node, rec attr.Record) {
	if n.buffer == nil {
		n.buffer = &nodeBuffer{}
	}
	n.buffer.recs = append(n.buffer.recs, rec)
	bl.spillPages(n.buffer)
}

// appendBufferBatch blocks a batch in n's buffer in one append.
func (bl *BulkLoader) appendBufferBatch(n *node, recs []attr.Record) {
	if len(recs) == 0 {
		return
	}
	if n.buffer == nil {
		n.buffer = &nodeBuffer{}
	}
	n.buffer.recs = append(n.buffer.recs, recs...)
	bl.spillPages(n.buffer)
}

// spillPages allocates cost pages for every full page's worth of
// buffered records not yet backed by one. The writes are charged when
// the LRU evicts them (or at Flush).
func (bl *BulkLoader) spillPages(buf *nodeBuffer) {
	for len(buf.pages) < len(buf.recs)/bl.recsPerPage {
		id, _, err := bl.pg.Alloc()
		if err != nil {
			return
		}
		bl.pg.Unpin(id)
		buf.pages = append(buf.pages, id)
	}
}

// takeBuffer drains n's buffer, charging reads for its spilled pages.
func (bl *BulkLoader) takeBuffer(n *node) []attr.Record {
	if n.buffer == nil {
		return nil
	}
	recs := n.buffer.recs
	for _, id := range n.buffer.pages {
		if _, err := bl.pg.Read(id); err == nil {
			bl.pg.Unpin(id)
		}
		bl.pg.Free(id)
	}
	n.buffer = nil
	return recs
}

// touchNode charges a read (and optional write) of the node's proxy
// page, allocating it on first touch.
func (bl *BulkLoader) touchNode(n *node, dirty bool) {
	id, ok := bl.nodePages[n]
	if !ok {
		nid, _, err := bl.pg.Alloc()
		if err != nil {
			return
		}
		bl.pg.Unpin(nid)
		bl.nodePages[n] = nid
		return // freshly allocated page is already dirty
	}
	if _, err := bl.pg.Read(id); err != nil {
		return
	}
	if dirty {
		bl.pg.MarkDirty(id)
	}
	bl.pg.Unpin(id)
}

// dropNode releases a discarded node's proxy page.
func (bl *BulkLoader) dropNode(n *node) {
	if id, ok := bl.nodePages[n]; ok {
		bl.pg.Free(id)
		delete(bl.nodePages, n)
	}
}

// emptyBuffer implements one buffer-emptying step: push n's blocked
// records one level down. At the leaf frontier records terminate in
// leaves and splits restructure bottom-up, exactly as in Figure 3.
//
// Distribution partitions the batch in place along each trie
// hyperplane rather than routing record by record — one sequential
// sweep per trie level instead of a root-to-leaf pointer chase per
// record, which is what makes buffer emptying cheaper than
// tuple-at-a-time insertion even for memory-resident data.
func (bl *BulkLoader) emptyBuffer(n *node) {
	recs := bl.takeBuffer(n)
	if len(recs) == 0 {
		return
	}
	bl.touchNode(n, false)

	if n.isLeaf() {
		bl.terminate(n, recs)
		return
	}
	if bl.childrenAreLeaves(n) {
		// Leaf frontier: partition the batch down the trie; each leaf's
		// share lands in one bulk append (one path update, one
		// read+write charge, O(log) splits). Restructuring triggered by
		// an earlier share never disturbs trie subtrees not yet
		// visited, so the walk stays valid.
		bl.routeTrie(n.trie, recs, bl.terminate)
		return
	}

	// Interior: re-activate records into child buffers.
	bl.routeTrie(n.trie, recs, bl.appendBufferBatch)
	// Empty any child buffer that overflowed. No structural changes can
	// have occurred above, so the child list is stable here; the
	// recursion itself may restructure lower levels.
	children := make([]*node, len(n.children))
	copy(children, n.children)
	for _, c := range children {
		if c.buffer != nil && len(c.buffer.recs) > bl.bufferCap {
			bl.emptyBuffer(c)
		}
	}
}

// terminate lands a batch in a leaf and lets splits restructure upward.
// The I/O charge goes to the leaf's parent: with the default geometry a
// last-level internal node's ~NodeCapacity leaves of c·k records fit
// one physical page, so the parent is the page-granular unit a real
// layout would read and write (charging per tiny leaf would bill one
// 4 KiB transfer per ~10 records, which no packed leaf file pays).
func (bl *BulkLoader) terminate(leaf *node, recs []attr.Record) {
	if len(recs) == 0 {
		return
	}
	bl.touchNode(unitOf(leaf), true)
	bl.tree.bulkAppendLeaf(leaf, recs)
}

// unitOf maps a node to its page-granular I/O unit: leaves are billed
// to their parent (a last-level internal node's leaves fill about one
// physical page); internal nodes are their own unit.
func unitOf(n *node) *node {
	if n.isLeaf() && n.parent != nil {
		return n.parent
	}
	return n
}

// routeTrie partitions recs in place along the trie's hyperplanes and
// hands each trie leaf's share to deliver. Trie nodes are only ever
// re-parented by restructuring, never destroyed, so holding references
// across deliver calls is safe.
func (bl *BulkLoader) routeTrie(st *splitTrie, recs []attr.Record, deliver func(*node, []attr.Record)) {
	if len(recs) == 0 {
		return
	}
	if st.isLeaf() {
		deliver(st.child, recs)
		return
	}
	lo, hi := 0, len(recs)
	for lo < hi {
		if recs[lo].QI[st.axis] < st.value {
			lo++
		} else {
			hi--
			recs[lo], recs[hi] = recs[hi], recs[lo]
		}
	}
	bl.routeTrie(st.left, recs[:lo:lo], deliver)
	bl.routeTrie(st.right, recs[lo:], deliver)
}

// childrenAreLeaves reports whether n's children are leaves (n is at the
// last internal level).
func (bl *BulkLoader) childrenAreLeaves(n *node) bool {
	return len(n.children) > 0 && n.children[0].isLeaf()
}

// splitBuffer is the Tree's hook into the loader when a node splits: the
// blocked records must follow their halves, and proxy pages move with
// the structure. Without a loader it is a no-op. A node being split
// during buffer emptying always has an empty buffer (buffers empty
// top-down before restructuring runs bottom-up), so the redistribution
// loop below is a safety net for direct splits between flushes.
func (t *Tree) splitBuffer(old, left, right *node, axis int, value float64) {
	bl := t.loader
	if bl == nil {
		return
	}
	if old.buffer != nil {
		for _, r := range old.buffer.recs {
			if r.QI[axis] < value {
				bl.appendBuffer(left, r)
			} else {
				bl.appendBuffer(right, r)
			}
		}
		for _, id := range old.buffer.pages {
			bl.pg.Free(id)
		}
		old.buffer = nil
	}
	bl.dropNode(old)
	// New structure: charge the write of the page unit(s) the fresh
	// halves live in (for leaf splits both halves share their parent's
	// unit, so this is typically one page).
	lu, ru := unitOf(left), unitOf(right)
	bl.touchNode(lu, true)
	if ru != lu {
		bl.touchNode(ru, true)
	}
}

// loader field lives on Tree (declared here to keep tree.go free of
// bulk-loading concerns).
