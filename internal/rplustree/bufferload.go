package rplustree

import (
	"fmt"

	"spatialanon/internal/attr"
	"spatialanon/internal/pager"
	"spatialanon/internal/par"
	"spatialanon/internal/retry"
)

// This file implements the buffer-tree bulk loading algorithm of
// Section 2.1 (after Arge [2] and van den Bercken et al. [6]): every
// internal node owns a record buffer; insertions are blocked in the root
// buffer, and when a buffer exceeds its threshold all of its records are
// "re-activated" and pushed one level down, either into child buffers or
// — at the last internal level — into the leaves themselves, where
// ordinary splits restructure the tree bottom-up. The paper's Figures 2
// and 3 illustrate exactly this flow.
//
// I/O accounting. The experiments in Figure 8 measure explicit I/O
// operations under a fixed memory budget. The loader stores its cost
// model in an internal/pager pool: buffered records spill to pager pages
// (one page per recordsPerPage records), each leaf owns a proxy page,
// and each structural node owns a proxy page. Reads and writes charged
// by the pager under LRU eviction are the reproduced quantity. Record
// payloads themselves stay in the Go heap — the pages carry cost, not
// truth — which keeps the simulation honest about I/O counts without
// double-storing multi-gigabyte data sets.
//
// Failure semantics. Every pager access can fail (the pager carries an
// injectable FaultPolicy; see internal/fault). The loader retries
// transient faults a bounded number of times and then propagates the
// error, under one consistent-state guarantee: no record is ever
// silently dropped. Concretely:
//
//   - Buffer consumption charges its reads before the buffer is taken,
//     so a failed emptying leaves the buffer intact and retryable.
//   - Once a batch is taken, it is always delivered: records land in
//     child buffers or leaves before (or regardless of) the I/O
//     charges for the move, and routing delivers every share of a
//     batch even after one share's charge fails.
//   - Structural restructuring (splits) runs to completion through
//     errors, so the tree's shape never depends on fault timing; the
//     first error is surfaced to the caller.
//
// On a permanent fault the affected records therefore remain either in
// the tree or in a node buffer, Flush keeps returning the error, and
// the load can resume after the storage is repaired (see
// pager.Scrub) — the property the chaos suite in internal/verify
// asserts schedule by schedule.

// transientRetries bounds how many total tries the loader gives a
// pager operation that fails with transient faults before giving up
// and propagating the error.
const transientRetries = 4

// BulkLoadConfig parameterizes a BulkLoader.
type BulkLoadConfig struct {
	// PageSize in bytes. Default 4096.
	PageSize int
	// MemoryBytes is the memory allotted to the load — the paper's
	// 256 MB budget in Section 5.1/5.2. Default 256 MiB.
	MemoryBytes int
	// BufferPages is the per-node buffer threshold in pages; a node's
	// buffer is emptied once it exceeds this many pages of records. The
	// paper's running example uses two pages. Default 2.
	BufferPages int
	// RecordBytes is the on-disk record size (32 for the Lands End
	// layout, 36 for the synthetic one). Default 4 x dims.
	RecordBytes int
	// Fault, when non-nil, is installed as the pager's fault policy —
	// the hook the chaos suite uses to inject storage failures into a
	// load. Production loads leave it nil.
	Fault pager.FaultPolicy
}

func (c BulkLoadConfig) withDefaults(dims int) BulkLoadConfig {
	if c.PageSize == 0 {
		c.PageSize = 4096
	}
	if c.MemoryBytes == 0 {
		c.MemoryBytes = 256 << 20
	}
	if c.BufferPages == 0 {
		c.BufferPages = 2
	}
	if c.RecordBytes == 0 {
		c.RecordBytes = 4 * dims
	}
	return c
}

// nodeBuffer holds a node's blocked records plus the pager pages that
// carry their I/O cost.
type nodeBuffer struct {
	recs  []attr.Record
	pages []pager.PageID
}

// BulkLoader drives buffer-tree insertion into a Tree.
type BulkLoader struct {
	tree        *Tree
	pg          *pager.Pager
	cfg         BulkLoadConfig
	recsPerPage int
	bufferCap   int // records per buffer before it empties

	nodePages map[*node]pager.PageID // structural + leaf proxy pages
}

// NewBulkLoader attaches a buffer-tree loader to an (typically empty)
// tree. Only one loader may drive a tree at a time.
func NewBulkLoader(t *Tree, cfg BulkLoadConfig) (*BulkLoader, error) {
	if t.loader != nil {
		return nil, fmt.Errorf("rplustree: tree already has a bulk loader")
	}
	cfg = cfg.withDefaults(t.cfg.Schema.Dims())
	if cfg.PageSize < cfg.RecordBytes {
		return nil, fmt.Errorf("rplustree: page size %d smaller than record size %d", cfg.PageSize, cfg.RecordBytes)
	}
	poolPages := cfg.MemoryBytes / cfg.PageSize
	if poolPages < 4 {
		return nil, fmt.Errorf("rplustree: memory budget %dB yields a pool of %d pages; need at least 4", cfg.MemoryBytes, poolPages)
	}
	// The pager's pages are cost proxies: record payloads stay in the
	// tree, so the pages carry no bytes worth storing. Registering them
	// with a tiny internal size keeps the counting semantics (pool
	// capacity = MemoryBytes/PageSize pages, one transfer per page
	// moved) while avoiding zeroing megabytes of real 4 KiB buffers.
	pg, err := pager.New(8, poolPages)
	if err != nil {
		return nil, err
	}
	pg.SetFaultPolicy(cfg.Fault)
	bl := &BulkLoader{
		tree:        t,
		pg:          pg,
		cfg:         cfg,
		recsPerPage: cfg.PageSize / cfg.RecordBytes,
		nodePages:   make(map[*node]pager.PageID),
	}
	bl.bufferCap = cfg.BufferPages * bl.recsPerPage
	t.loader = bl
	return bl, nil
}

// Stats returns the pager's I/O counters — the quantity plotted in
// Figure 8(b).
func (bl *BulkLoader) Stats() pager.Stats { return bl.pg.Stats() }

// ResetStats zeroes the I/O counters.
func (bl *BulkLoader) ResetStats() { bl.pg.ResetStats() }

// Pager exposes the loader's pager so tests and recovery tooling can
// control fault schedules (SetFaultPolicy) and repair corruption
// (Scrub); production loads should not need it.
func (bl *BulkLoader) Pager() *pager.Pager { return bl.pg }

// Close detaches the loader from the tree after flushing. On a flush
// error the loader stays attached so the flush can be retried once the
// storage recovers.
func (bl *BulkLoader) Close() error {
	if err := bl.Flush(); err != nil {
		return err
	}
	bl.tree.loader = nil
	return nil
}

// retry runs op under the repository-wide bounded-retry policy
// (internal/retry): transient storage faults are retried up to
// transientRetries total tries, anything else returns immediately.
// The loader works against simulated storage, so no backoff delay is
// configured — a transient fault clears on the next call by
// construction.
func (bl *BulkLoader) retry(op func() error) error {
	return retry.Policy{Attempts: transientRetries}.Do(op)
}

// Insert blocks one record in the root buffer, emptying it downward when
// it exceeds the threshold. On error the record is still blocked in the
// tree's buffers (or already in a leaf) — only I/O charges failed — so
// no record is ever silently dropped.
func (bl *BulkLoader) Insert(rec attr.Record) error {
	if len(rec.QI) != bl.tree.cfg.Schema.Dims() {
		return fmt.Errorf("rplustree: record has %d attributes, tree has %d", len(rec.QI), bl.tree.cfg.Schema.Dims())
	}
	root := bl.tree.root
	err := bl.appendBuffer(root, rec)
	if root.buffer != nil && len(root.buffer.recs) > bl.rootBufferCap() {
		if e := bl.emptyBuffer(root); err == nil {
			err = e
		}
	}
	return err
}

// InsertBatch blocks a batch of records. A failure mid-batch does not
// silently drop the tail: every record is still inserted and the first
// error is returned.
func (bl *BulkLoader) InsertBatch(recs []attr.Record) error {
	var err error
	for _, r := range recs {
		if e := bl.Insert(r); e != nil && err == nil {
			err = e
		}
	}
	return err
}

// Flush pushes every blocked record all the way into the leaves. Must be
// called before reading anonymizations off the tree. On error the
// not-yet-drained buffers keep their records; Flush can be called again
// once the storage recovers.
func (bl *BulkLoader) Flush() error {
	// Empty top-down: a node's buffer is emptied before its children's,
	// so one pass drains every record to the leaf frontier. Child lists
	// are snapshotted because restructuring replaces nodes mid-walk;
	// revisiting a replaced node is harmless (its buffer is empty).
	var drain func(n *node) error
	drain = func(n *node) error {
		if n.buffer != nil && len(n.buffer.recs) > 0 {
			if err := bl.emptyBuffer(n); err != nil {
				return err
			}
		}
		children := make([]*node, len(n.children))
		copy(children, n.children)
		for _, c := range children {
			if err := drain(c); err != nil {
				return err
			}
		}
		return nil
	}
	// Restructuring during a drain can, in rare shapes, move a
	// still-buffered node above an already-visited position; loop until
	// a clean sweep (the second pass is almost always a no-op walk).
	for {
		if err := drain(bl.tree.root); err != nil {
			return err
		}
		if !bl.anyPending(bl.tree.root) {
			// Make the flushed state durable: dirty pages still in the
			// pool are written back (and charged) now, so the I/O
			// counters reflect a complete, persistent load.
			return bl.retry(bl.pg.Flush)
		}
	}
}

// anyPending reports whether any buffer still holds records.
func (bl *BulkLoader) anyPending(n *node) bool {
	if n.buffer != nil && len(n.buffer.recs) > 0 {
		return true
	}
	for _, c := range n.children {
		if bl.anyPending(c) {
			return true
		}
	}
	return false
}

// rootBufferCap lets the root block more records than interior nodes
// (64 buffer units) so bulk loads amortize full-tree drains. It is
// deliberately independent of the memory budget: with the page access
// trace fixed, LRU's inclusion property makes measured I/O monotone in
// pool size, which is what lets Figure 8(b) isolate the effect of
// memory on I/O.
func (bl *BulkLoader) rootBufferCap() int {
	return 64 * bl.bufferCap
}

// appendBuffer blocks a record in n's buffer, spilling a cost page per
// recsPerPage records. The record is appended before any fallible
// spill, so an error never loses it.
func (bl *BulkLoader) appendBuffer(n *node, rec attr.Record) error {
	if n.buffer == nil {
		n.buffer = &nodeBuffer{}
	}
	n.buffer.recs = append(n.buffer.recs, rec)
	return bl.spillPages(n.buffer)
}

// appendBufferBatch blocks a batch in n's buffer in one append (the
// batch lands before the fallible spill).
func (bl *BulkLoader) appendBufferBatch(n *node, recs []attr.Record) error {
	if len(recs) == 0 {
		return nil
	}
	if n.buffer == nil {
		n.buffer = &nodeBuffer{}
	}
	n.buffer.recs = append(n.buffer.recs, recs...)
	return bl.spillPages(n.buffer)
}

// spillPages allocates cost pages for every full page's worth of
// buffered records not yet backed by one. The writes are charged when
// the LRU evicts them (or at Flush). On error the records stay
// buffered and unbacked; a later spill of the same buffer resumes
// where this one stopped.
func (bl *BulkLoader) spillPages(buf *nodeBuffer) error {
	for len(buf.pages) < len(buf.recs)/bl.recsPerPage {
		var id pager.PageID
		err := bl.retry(func() error {
			nid, _, err := bl.pg.Alloc()
			if err == nil {
				id = nid
			}
			return err
		})
		if err != nil {
			return err
		}
		bl.pg.Unpin(id)
		buf.pages = append(buf.pages, id)
	}
	return nil
}

// takeBuffer drains n's buffer, charging reads for its spilled pages.
// Every read is charged (and can fault) before the buffer is consumed,
// so on error the buffer is intact and the emptying can be retried
// without record loss.
func (bl *BulkLoader) takeBuffer(n *node) ([]attr.Record, error) {
	if n.buffer == nil {
		return nil, nil
	}
	for _, id := range n.buffer.pages {
		err := bl.retry(func() error {
			if _, err := bl.pg.Read(id); err != nil {
				return err
			}
			return bl.pg.Unpin(id)
		})
		if err != nil {
			return nil, err
		}
	}
	recs := n.buffer.recs
	for _, id := range n.buffer.pages {
		bl.pg.Free(id)
	}
	n.buffer = nil
	return recs, nil
}

// touchNode charges a read (and optional write) of the node's proxy
// page, allocating it on first touch.
func (bl *BulkLoader) touchNode(n *node, dirty bool) error {
	id, ok := bl.nodePages[n]
	if !ok {
		var nid pager.PageID
		err := bl.retry(func() error {
			i, _, err := bl.pg.Alloc()
			if err == nil {
				nid = i
			}
			return err
		})
		if err != nil {
			return err
		}
		bl.pg.Unpin(nid)
		bl.nodePages[n] = nid
		return nil // freshly allocated page is already dirty
	}
	return bl.retry(func() error {
		if _, err := bl.pg.Read(id); err != nil {
			return err
		}
		if dirty {
			bl.pg.MarkDirty(id)
		}
		return bl.pg.Unpin(id)
	})
}

// dropNode releases a discarded node's proxy page.
func (bl *BulkLoader) dropNode(n *node) {
	if id, ok := bl.nodePages[n]; ok {
		bl.pg.Free(id)
		delete(bl.nodePages, n)
	}
}

// emptyBuffer implements one buffer-emptying step: push n's blocked
// records one level down. At the leaf frontier records terminate in
// leaves and splits restructure bottom-up, exactly as in Figure 3.
//
// Distribution partitions the batch in place along each trie
// hyperplane rather than routing record by record — one sequential
// sweep per trie level instead of a root-to-leaf pointer chase per
// record, which is what makes buffer emptying cheaper than
// tuple-at-a-time insertion even for memory-resident data.
//
// Error handling follows the file-level guarantee: takeBuffer is the
// only early-out (the buffer is then intact and retryable); once the
// batch is taken, it is pushed down in full and the first I/O-charge
// error is collected and returned.
func (bl *BulkLoader) emptyBuffer(n *node) error {
	recs, err := bl.takeBuffer(n)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return nil
	}
	err = bl.touchNode(n, false)

	if n.isLeaf() {
		if e := bl.terminate(n, recs); err == nil {
			err = e
		}
		return err
	}
	if bl.childrenAreLeaves(n) {
		// Leaf frontier: partition the batch down the trie; each leaf's
		// share lands in one bulk append (one path update, one
		// read+write charge, O(log) splits). Restructuring triggered by
		// an earlier share never disturbs trie subtrees not yet
		// visited, so the walk stays valid.
		if e := bl.routeTrie(n.trie, recs, bl.terminate); err == nil {
			err = e
		}
		return err
	}

	// Interior: re-activate records into child buffers.
	if e := bl.routeTrie(n.trie, recs, bl.appendBufferBatch); err == nil {
		err = e
	}
	// Empty any child buffer that overflowed. No structural changes can
	// have occurred above, so the child list is stable here; the
	// recursion itself may restructure lower levels.
	children := make([]*node, len(n.children))
	copy(children, n.children)
	for _, c := range children {
		if c.buffer != nil && len(c.buffer.recs) > bl.bufferCap {
			if e := bl.emptyBuffer(c); e != nil && err == nil {
				err = e
			}
		}
	}
	return err
}

// terminate lands a batch in a leaf and lets splits restructure upward.
// The I/O charge goes to the leaf's parent: with the default geometry a
// last-level internal node's ~NodeCapacity leaves of c·k records fit
// one physical page, so the parent is the page-granular unit a real
// layout would read and write (charging per tiny leaf would bill one
// 4 KiB transfer per ~10 records, which no packed leaf file pays).
// The charge is computed and attempted before the append (the append
// re-parents the leaf), but its failure does not stop the records from
// landing.
func (bl *BulkLoader) terminate(leaf *node, recs []attr.Record) error {
	if len(recs) == 0 {
		return nil
	}
	err := bl.touchNode(unitOf(leaf), true)
	if e := bl.tree.bulkAppendLeaf(leaf, recs); err == nil {
		err = e
	}
	return err
}

// unitOf maps a node to its page-granular I/O unit: leaves are billed
// to their parent (a last-level internal node's leaves fill about one
// physical page); internal nodes are their own unit.
func unitOf(n *node) *node {
	if n.isLeaf() && n.parent != nil {
		return n.parent
	}
	return n
}

// routeTrie partitions recs in place along the trie's hyperplanes and
// hands each trie leaf's share to deliver, in trie order. Every share
// is delivered even after an earlier share's delivery errors — an
// undelivered share would be silent record loss — and the first error
// is returned.
//
// Routing is two-phase: partitionTrie does the pure in-place
// partitioning first (forking disjoint halves to worker goroutines for
// large batches), then the shares are delivered serially on this
// goroutine. Deliveries mutate child buffers, the pager and — at the
// leaf frontier — the tree itself, so they stay on the loading
// goroutine in trie order, exactly the serial sequence. Restructuring
// triggered by an earlier share's delivery never disturbs the node
// pointers of later shares (splits re-parent nodes, never destroy
// them), so capturing the shares up front is safe.
func (bl *BulkLoader) routeTrie(st *splitTrie, recs []attr.Record, deliver func(*node, []attr.Record) error) error {
	if len(recs) == 0 {
		return nil
	}
	var pool *par.Pool
	if par.Workers(bl.tree.cfg.Parallelism) > 1 && len(recs) >= parRouteMin {
		pool = par.NewPool(bl.tree.cfg.Parallelism)
	}
	shares := partitionTrie(st, recs, pool)
	var err error
	for _, s := range shares {
		if e := deliver(s.child, s.recs); e != nil && err == nil {
			err = e
		}
	}
	return err
}

// trieShare is one trie leaf's share of a routed batch.
type trieShare struct {
	child *node
	recs  []attr.Record
}

// partitionTrie splits recs in place along the trie's hyperplanes
// without delivering anything, returning the non-empty shares in trie
// order. It touches only the batch slice — never the tree, buffers or
// pager — so the two sides of a hyperplane, which own disjoint
// subslices after the Hoare sweep, can be partitioned concurrently.
func partitionTrie(st *splitTrie, recs []attr.Record, pool *par.Pool) []trieShare {
	if len(recs) == 0 {
		return nil
	}
	if st.isLeaf() {
		return []trieShare{{child: st.child, recs: recs}}
	}
	lo, hi := 0, len(recs)
	for lo < hi {
		if recs[lo].QI[st.axis] < st.value {
			lo++
		} else {
			hi--
			recs[lo], recs[hi] = recs[hi], recs[lo]
		}
	}
	lRecs, rRecs := recs[:lo:lo], recs[lo:]
	if len(rRecs) >= parRouteMin {
		var rShares []trieShare
		join := pool.Fork(func() { rShares = partitionTrie(st.right, rRecs, pool) })
		lShares := partitionTrie(st.left, lRecs, pool)
		join()
		return append(lShares, rShares...)
	}
	lShares := partitionTrie(st.left, lRecs, pool)
	return append(lShares, partitionTrie(st.right, rRecs, pool)...)
}

// childrenAreLeaves reports whether n's children are leaves (n is at the
// last internal level).
func (bl *BulkLoader) childrenAreLeaves(n *node) bool {
	return len(n.children) > 0 && n.children[0].isLeaf()
}

// splitBuffer is the Tree's hook into the loader when a node splits: the
// blocked records must follow their halves, and proxy pages move with
// the structure. Without a loader it is a no-op. A node being split
// during buffer emptying always has an empty buffer (buffers empty
// top-down before restructuring runs bottom-up), so the redistribution
// loop below is a safety net for direct splits between flushes. Every
// blocked record is redistributed even when a spill charge fails
// mid-loop; the first error is returned.
func (t *Tree) splitBuffer(old, left, right *node, axis int, value float64) error {
	bl := t.loader
	if bl == nil {
		return nil
	}
	var err error
	if old.buffer != nil {
		for _, r := range old.buffer.recs {
			var e error
			if r.QI[axis] < value {
				e = bl.appendBuffer(left, r)
			} else {
				e = bl.appendBuffer(right, r)
			}
			if e != nil && err == nil {
				err = e
			}
		}
		for _, id := range old.buffer.pages {
			bl.pg.Free(id)
		}
		old.buffer = nil
	}
	bl.dropNode(old)
	// New structure: charge the write of the page unit(s) the fresh
	// halves live in (for leaf splits both halves share their parent's
	// unit, so this is typically one page).
	lu, ru := unitOf(left), unitOf(right)
	if e := bl.touchNode(lu, true); e != nil && err == nil {
		err = e
	}
	if ru != lu {
		if e := bl.touchNode(ru, true); e != nil && err == nil {
			err = e
		}
	}
	return err
}

// loader field lives on Tree (declared here to keep tree.go free of
// bulk-loading concerns).
