// Package par provides the repository's worker-pool primitives: a
// normalized parallelism knob, bounded index fan-out, and a bounded
// fork-join pool for divide-and-conquer recursion.
//
// Every parallel path in this repository is built on one rule, stated
// here because the primitives enforce the cheap half of it and code
// review must enforce the rest: workers run pure computations over
// disjoint data, and all shared-state mutation (tree wiring, pager
// charges, buffer moves) stays on the coordinating goroutine in the
// same order the serial algorithm uses. Under that rule the output of
// every pipeline stage is identical — bit for bit — for every worker
// count, which is what lets the `-workers` knob default to all cores
// while `-workers=1` remains the reference execution.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a parallelism knob: n > 0 is used as given, 0
// selects runtime.GOMAXPROCS(0) (all available cores), and negative
// values clamp to 1 (serial).
func Workers(n int) int {
	switch {
	case n > 0:
		return n
	case n == 0:
		return runtime.GOMAXPROCS(0)
	default:
		return 1
	}
}

// Do runs fn(i) for every i in [0, n) on up to `workers` goroutines
// (normalized by Workers) and returns when all calls have completed.
// Indices are claimed atomically, so fn must be safe to call
// concurrently for distinct i; writes fn makes are visible to the
// caller after Do returns. workers <= 1 (after normalization) runs
// everything inline, in index order, with no goroutines.
func Do(workers, n int, fn func(i int)) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// FirstErr runs fn(i) for every i in [0, n) on up to `workers`
// goroutines and returns the error of the lowest failing index — the
// same error a serial loop that kept only its first error would
// return, so error reporting stays deterministic under parallel
// execution. Every index runs regardless of earlier failures (the
// serial loops being replaced never short-circuit either).
func FirstErr(workers, n int, fn func(i int) error) error {
	var (
		mu      sync.Mutex
		bestIdx = n
		bestErr error
	)
	Do(workers, n, func(i int) {
		if err := fn(i); err != nil {
			mu.Lock()
			if i < bestIdx {
				bestIdx, bestErr = i, err
			}
			mu.Unlock()
		}
	})
	return bestErr
}

// Pool is a bounded fork-join pool for divide-and-conquer recursion
// (parallel split cascades, Mondrian halves, trie routing). It caps
// in-flight forked tasks at workers-1: the calling goroutine is the
// final worker, and when every slot is busy Fork degrades to an inline
// call, so recursion depth never deadlocks on pool capacity.
//
// A nil *Pool is valid and always runs inline — callers gate pool
// construction on their parallelism knob and pass the nil through.
type Pool struct {
	slots chan struct{}
}

// NewPool returns a pool for the given worker count (normalized by
// Workers). A count of 1 returns nil: the always-inline pool.
func NewPool(workers int) *Pool {
	workers = Workers(workers)
	if workers <= 1 {
		return nil
	}
	return &Pool{slots: make(chan struct{}, workers-1)}
}

// Fork runs fn, on another goroutine when a slot is free and inline
// otherwise, and returns a join function that blocks until fn has
// completed. Writes made by fn are visible after join returns. A panic
// inside a forked fn is captured and re-raised from join on the
// caller's goroutine, matching inline behavior.
//
// The intended shape is strict fork-join:
//
//	join := pool.Fork(func() { right = build(rhs) })
//	left = build(lhs)
//	join()
func (p *Pool) Fork(fn func()) (join func()) {
	if p == nil {
		fn()
		return func() {}
	}
	select {
	case p.slots <- struct{}{}:
	default:
		fn()
		return func() {}
	}
	done := make(chan struct{})
	var panicked any
	go func() {
		defer close(done)
		defer func() { <-p.slots }()
		defer func() { panicked = recover() }()
		fn()
	}()
	return func() {
		<-done
		if panicked != nil {
			// invariant: re-raising a worker's panic on the joining
			// goroutine — swallowing it would turn a crash into silent
			// data loss.
			panic(panicked)
		}
	}
}
