package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Fatalf("Workers(4) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != 1 {
		t.Fatalf("Workers(-3) = %d, want 1", got)
	}
}

func TestDoCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 1000
		var hits [n]atomic.Int32
		Do(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, got)
			}
		}
	}
}

func TestDoZeroAndSerialOrder(t *testing.T) {
	Do(4, 0, func(int) { t.Fatal("fn called for n=0") })
	var order []int
	Do(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("serial Do out of order: %v", order)
		}
	}
}

func TestFirstErrLowestIndexWins(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		err := FirstErr(workers, 100, func(i int) error {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return fmt.Errorf("fail at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail at 3" {
			t.Fatalf("workers=%d: got %v, want fail at 3", workers, err)
		}
	}
	if err := FirstErr(8, 50, func(int) error { return nil }); err != nil {
		t.Fatalf("unexpected error %v", err)
	}
}

func TestFirstErrRunsEveryIndex(t *testing.T) {
	var ran atomic.Int32
	boom := errors.New("boom")
	err := FirstErr(4, 64, func(i int) error {
		ran.Add(1)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
	if ran.Load() != 64 {
		t.Fatalf("ran %d of 64 indices", ran.Load())
	}
}

func TestPoolForkJoin(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := NewPool(workers)
		// Recursive sum via fork-join must equal the serial sum for
		// every pool size, including the nil (workers=1) pool.
		var sum func(lo, hi int) int
		sum = func(lo, hi int) int {
			if hi-lo <= 4 {
				s := 0
				for i := lo; i < hi; i++ {
					s += i
				}
				return s
			}
			mid := (lo + hi) / 2
			var right int
			join := p.Fork(func() { right = sum(mid, hi) })
			left := sum(lo, mid)
			join()
			return left + right
		}
		const n = 1 << 12
		if got, want := sum(0, n), n*(n-1)/2; got != want {
			t.Fatalf("workers=%d: sum=%d want %d", workers, got, want)
		}
	}
}

func TestPoolNilAlwaysInline(t *testing.T) {
	var p *Pool
	ran := false
	join := p.Fork(func() { ran = true })
	if !ran {
		t.Fatal("nil pool must run inline before Fork returns")
	}
	join()
}

func TestPoolForkRepanics(t *testing.T) {
	p := NewPool(4)
	// Occupy no slots; fork should go to a goroutine and the panic
	// must resurface at join, not crash the process.
	join := p.Fork(func() { panic("kaboom") })
	defer func() {
		if r := recover(); r != "kaboom" {
			t.Fatalf("recovered %v, want kaboom", r)
		}
	}()
	join()
}
