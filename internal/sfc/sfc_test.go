package sfc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/dataset"
)

func TestZOrderKey2D(t *testing.T) {
	// Classic 2x2 Morton order: (0,0)=0 (0,1)=1 (1,0)=2 (1,1)=3 with
	// dimension 0 most significant.
	cases := []struct {
		cell []uint32
		want uint64
	}{
		{[]uint32{0, 0}, 0},
		{[]uint32{0, 1}, 1},
		{[]uint32{1, 0}, 2},
		{[]uint32{1, 1}, 3},
	}
	for _, c := range cases {
		if got := ZOrderKey(c.cell, 1); got != c.want {
			t.Fatalf("ZOrderKey(%v) = %d, want %d", c.cell, got, c.want)
		}
	}
	// Two bits: (2,3) -> binary x=10, y=11 -> interleave 1101 = 13.
	if got := ZOrderKey([]uint32{2, 3}, 2); got != 13 {
		t.Fatalf("ZOrderKey(2,3) = %d, want 13", got)
	}
}

func TestHilbertOrder1Is2DGrayTour(t *testing.T) {
	// The order-1 Hilbert curve in 2D visits (0,0),(0,1),(1,1),(1,0).
	want := [][]uint32{{0, 0}, {0, 1}, {1, 1}, {1, 0}}
	for key, cell := range want {
		if got := HilbertKey(cell, 1); got != uint64(key) {
			t.Fatalf("HilbertKey(%v) = %d, want %d", cell, got, key)
		}
	}
}

func TestHilbertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for _, dims := range []int{2, 3, 4, 8} {
		bits := 16 / dims * 2 // keep keys in range
		if bits < 2 {
			bits = 2
		}
		for i := 0; i < 300; i++ {
			cell := make([]uint32, dims)
			for d := range cell {
				cell[d] = uint32(rng.Intn(1 << bits))
			}
			key := HilbertKey(cell, bits)
			back := HilbertCell(key, dims, bits)
			for d := range cell {
				if back[d] != cell[d] {
					t.Fatalf("dims=%d bits=%d: cell %v -> key %d -> %v", dims, bits, cell, key, back)
				}
			}
		}
	}
}

func TestHilbertIsBijectiveAndAdjacent2D(t *testing.T) {
	// Over the full 8x8 grid: keys form a permutation of 0..63, and
	// consecutive keys are Manhattan-adjacent cells — the locality
	// property Z-order lacks.
	const bits = 3
	seen := map[uint64][]uint32{}
	for x := uint32(0); x < 8; x++ {
		for y := uint32(0); y < 8; y++ {
			key := HilbertKey([]uint32{x, y}, bits)
			if key >= 64 {
				t.Fatalf("key %d out of range", key)
			}
			if _, dup := seen[key]; dup {
				t.Fatalf("key %d assigned twice", key)
			}
			seen[key] = []uint32{x, y}
		}
	}
	if len(seen) != 64 {
		t.Fatalf("only %d keys", len(seen))
	}
	for k := uint64(0); k < 63; k++ {
		a, b := seen[k], seen[k+1]
		dist := absDiff(a[0], b[0]) + absDiff(a[1], b[1])
		if dist != 1 {
			t.Fatalf("cells for keys %d,%d not adjacent: %v %v", k, k+1, a, b)
		}
	}
}

func absDiff(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestQuickZOrderDistinct(t *testing.T) {
	// Distinct cells yield distinct keys (bijectivity of interleaving).
	f := func(a, b [2]uint16) bool {
		ca := []uint32{uint32(a[0]), uint32(a[1])}
		cb := []uint32{uint32(b[0]), uint32(b[1])}
		if a == b {
			return ZOrderKey(ca, 16) == ZOrderKey(cb, 16)
		}
		return ZOrderKey(ca, 16) != ZOrderKey(cb, 16)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(61))}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizer(t *testing.T) {
	domain := attr.Box{{Lo: 0, Hi: 100}, {Lo: 50, Hi: 50}} // second dim degenerate
	q, err := NewQuantizer(domain, 8)
	if err != nil {
		t.Fatal(err)
	}
	if q.Bits() != 8 {
		t.Fatalf("Bits = %d", q.Bits())
	}
	c := q.Cell([]float64{0, 50})
	if c[0] != 0 || c[1] != 0 {
		t.Fatalf("cell at origin = %v", c)
	}
	c = q.Cell([]float64{100, 50})
	if c[0] != 255 {
		t.Fatalf("cell at max = %v", c)
	}
	// Out-of-domain points clamp.
	c = q.Cell([]float64{-10, 50})
	if c[0] != 0 {
		t.Fatalf("clamped cell = %v", c)
	}
	c = q.Cell([]float64{1e9, 50})
	if c[0] != 255 {
		t.Fatalf("clamped cell = %v", c)
	}
}

func TestQuantizerValidation(t *testing.T) {
	if _, err := NewQuantizer(attr.Box{}, 8); err == nil {
		t.Fatal("empty domain accepted")
	}
	domain := attr.NewBox(9)
	if _, err := NewQuantizer(domain, 8); err == nil {
		t.Fatal("9 dims x 8 bits = 72 bits accepted")
	}
	q, err := NewQuantizer(domain, 0)
	if err != nil {
		t.Fatal(err)
	}
	if q.Bits()*9 > 64 {
		t.Fatalf("auto bits %d too wide", q.Bits())
	}
}

func TestAnonymizeBothCurves(t *testing.T) {
	for _, curve := range []Curve{ZOrder, Hilbert} {
		recs := dataset.GeneratePatients(500, 62)
		cons := anonmodel.KAnonymity{K: 10}
		ps, err := Anonymize(recs, curve, cons)
		if err != nil {
			t.Fatalf("%v: %v", curve, err)
		}
		if err := anonmodel.CheckAnonymity(ps, cons); err != nil {
			t.Fatalf("%v: %v", curve, err)
		}
		if anonmodel.TotalRecords(ps) != 500 {
			t.Fatalf("%v: lost records", curve)
		}
		// Greedy groups stay below 2k except the merged tail.
		for i, p := range ps {
			if i < len(ps)-1 && p.Size() >= 2*10 {
				t.Fatalf("%v: interior group of %d", curve, p.Size())
			}
		}
	}
}

func TestAnonymizeTailMerge(t *testing.T) {
	// 25 records, k=10: greedy would leave a 5-record tail; it must be
	// merged into the previous group (sizes 10, 15).
	recs := dataset.GeneratePatients(25, 63)
	ps, err := Anonymize(recs, Hilbert, anonmodel.KAnonymity{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("got %d partitions", len(ps))
	}
	if ps[0].Size() != 10 || ps[1].Size() != 15 {
		t.Fatalf("sizes %d,%d want 10,15", ps[0].Size(), ps[1].Size())
	}
}

func TestAnonymizeErrors(t *testing.T) {
	recs := dataset.GeneratePatients(5, 64)
	if _, err := Anonymize(recs, Hilbert, nil); err == nil {
		t.Fatal("nil constraint accepted")
	}
	if _, err := Anonymize(recs, Hilbert, anonmodel.KAnonymity{K: 10}); err == nil {
		t.Fatal("infeasible input accepted")
	}
	ps, err := Anonymize(nil, Hilbert, anonmodel.KAnonymity{K: 2})
	if err != nil || ps != nil {
		t.Fatalf("empty input: %v %v", ps, err)
	}
}

func TestHilbertBeatsZOrderLocality(t *testing.T) {
	// The Hilbert anonymization should produce partitions whose total
	// normalized perimeter is no worse than ~ the Z-order one on
	// clustered 2D-ish data. (This is the reason Hilbert packing is
	// preferred in the literature [14].)
	schema := &attr.Schema{Attrs: []attr.Attribute{
		{Name: "x", Kind: attr.Numeric},
		{Name: "y", Kind: attr.Numeric},
	}}
	_ = schema
	rng := rand.New(rand.NewSource(65))
	recs := make([]attr.Record, 2000)
	for i := range recs {
		recs[i] = attr.Record{ID: int64(i), QI: []float64{rng.Float64() * 1000, rng.Float64() * 1000}}
	}
	perim := func(c Curve) float64 {
		cp := make([]attr.Record, len(recs))
		copy(cp, recs)
		ps, err := Anonymize(cp, c, anonmodel.KAnonymity{K: 20})
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for _, p := range ps {
			total += p.Box.Margin()
		}
		return total
	}
	h, z := perim(Hilbert), perim(ZOrder)
	if h > z*1.25 {
		t.Fatalf("hilbert perimeter %v much worse than z-order %v", h, z)
	}
}

func TestCurveString(t *testing.T) {
	if ZOrder.String() != "z-order" || Hilbert.String() != "hilbert" {
		t.Fatal("curve names wrong")
	}
	if Curve(9).String() != "Curve(9)" {
		t.Fatal("unknown curve name wrong")
	}
}

func TestAppendCellMatchesCell(t *testing.T) {
	domain := attr.Box{{Lo: -5, Hi: 5}, {Lo: 0, Hi: 1}, {Lo: 100, Hi: 200}}
	q, err := NewQuantizer(domain, 6)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(62))
	buf := make([]uint32, 0, 3)
	for i := 0; i < 200; i++ {
		p := []float64{rng.Float64()*20 - 10, rng.Float64() * 2, rng.Float64() * 300}
		want := q.Cell(p)
		buf = q.AppendCell(buf[:0], p)
		for d := range want {
			if buf[d] != want[d] {
				t.Fatalf("AppendCell(%v) = %v, Cell = %v", p, buf, want)
			}
		}
	}
}

func TestKeyIntoMatchesKey(t *testing.T) {
	recs := dataset.GenerateLandsEnd(500, 63)
	domain := attr.DomainOf(len(recs[0].QI), recs)
	q, err := NewQuantizer(domain, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []Curve{ZOrder, Hilbert} {
		var buf []uint32
		for _, r := range recs {
			want := q.Key(c, r.QI)
			var got uint64
			got, buf = q.KeyInto(c, r.QI, buf)
			if got != want {
				t.Fatalf("curve=%v KeyInto(%v) = %d, Key = %d", c, r.QI, got, want)
			}
		}
	}
}

func TestKeyPathsZeroAlloc(t *testing.T) {
	recs := dataset.GenerateLandsEnd(64, 64)
	q, err := NewQuantizer(attr.DomainOf(len(recs[0].QI), recs), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []Curve{ZOrder, Hilbert} {
		i := 0
		if a := testing.AllocsPerRun(100, func() { q.Key(c, recs[i%len(recs)].QI); i++ }); a != 0 {
			t.Errorf("curve=%v Key: %v allocs/op, want 0", c, a)
		}
		buf := make([]uint32, 0, len(recs[0].QI))
		if a := testing.AllocsPerRun(100, func() { _, buf = q.KeyInto(c, recs[i%len(recs)].QI, buf); i++ }); a != 0 {
			t.Errorf("curve=%v KeyInto: %v allocs/op, want 0", c, a)
		}
	}
}
