// Package sfc implements space-filling-curve machinery: Z-order (bit
// interleaving) and Hilbert curve encodings of multidimensional points,
// plus the sort-based bulk anonymization they induce.
//
// Section 2.1 of the paper notes that several spatial-index bulk-loading
// techniques sort the input on a space-filling curve [12, 13, 14] and
// that the authors "experimented with such approaches" before finding
// buffer-tree loading better in high dimensions. This package provides
// those comparators: records are sorted by curve position and cut into
// consecutive groups of k..2k records, each published under its MBR.
// The experiment harness uses it as an ablation baseline against the
// buffer-tree R⁺-tree.
package sfc

import (
	"fmt"
	"sort"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
)

// Curve selects a space-filling curve.
type Curve int

const (
	// ZOrder interleaves coordinate bits (Morton order) [12].
	ZOrder Curve = iota
	// Hilbert follows the d-dimensional Hilbert curve [14], which has
	// better locality than Z-order (no long diagonal jumps).
	Hilbert
)

// String names the curve.
func (c Curve) String() string {
	switch c {
	case ZOrder:
		return "z-order"
	case Hilbert:
		return "hilbert"
	default:
		return fmt.Sprintf("Curve(%d)", int(c))
	}
}

// Quantizer maps float coordinates onto a uniform 2^bits grid per
// dimension so curve keys can be computed. Total key width is
// dims*bits, which must fit 64 bits.
type Quantizer struct {
	domain attr.Box
	bits   int
}

// NewQuantizer builds a quantizer over the given domain. bits <= 0
// selects the widest grid that still fits a 64-bit key.
func NewQuantizer(domain attr.Box, bits int) (*Quantizer, error) {
	dims := len(domain)
	if dims == 0 {
		return nil, fmt.Errorf("sfc: empty domain")
	}
	if bits <= 0 {
		bits = 64 / dims
		if bits == 0 {
			bits = 1
		}
		if bits > 16 {
			bits = 16
		}
	}
	if bits*dims > 64 {
		return nil, fmt.Errorf("sfc: %d dims x %d bits exceeds 64-bit keys", dims, bits)
	}
	return &Quantizer{domain: domain.Clone(), bits: bits}, nil
}

// Bits returns the per-dimension grid resolution.
func (q *Quantizer) Bits() int { return q.bits }

// Dims returns the dimensionality of the quantizer's domain.
func (q *Quantizer) Dims() int { return len(q.domain) }

// KeyBits returns the total key width in bits (dims × bits), at most
// 64 by construction.
func (q *Quantizer) KeyBits() int { return q.bits * len(q.domain) }

// MaxKey returns the largest curve key this quantizer can produce:
// every key lies in [0, MaxKey]. Shard range tables tile exactly this
// interval.
func (q *Quantizer) MaxKey() uint64 {
	kb := q.KeyBits()
	if kb >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << kb) - 1
}

// Cell maps a point to grid coordinates, clamping to the domain.
func (q *Quantizer) Cell(p []float64) []uint32 {
	return q.AppendCell(make([]uint32, 0, len(q.domain)), p)
}

// AppendCell maps a point to grid coordinates, clamping to the domain,
// and appends them to dst — the no-alloc variant of Cell for hot read
// paths: with a reused dst of sufficient capacity it allocates
// nothing.
//
//anonylint:zero-alloc
func (q *Quantizer) AppendCell(dst []uint32, p []float64) []uint32 {
	max := float64(uint64(1)<<q.bits) - 1
	for i, iv := range q.domain {
		w := iv.Width()
		if w <= 0 {
			dst = append(dst, 0)
			continue
		}
		f := (p[i] - iv.Lo) / w
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		dst = append(dst, uint32(f*max))
	}
	return dst
}

// Key returns the curve position of a point.
//
//anonylint:zero-alloc
func (q *Quantizer) Key(c Curve, p []float64) uint64 {
	// dims*bits <= 64 with bits >= 1 bounds dims at 64, so one stack
	// cell buffer covers every legal quantizer and Key allocates
	// nothing.
	var buf [64]uint32
	key, _ := q.KeyInto(c, p, buf[:0])
	return key
}

// KeyInto is Key with caller-owned scratch: the cell is quantized into
// buf (reusing its capacity; contents are overwritten) and the curve
// position is returned along with the scratch for the next call. Once
// buf has capacity for one cell per dimension, KeyInto allocates
// nothing — the contract the per-query read path is pinned to.
//
//anonylint:zero-alloc
func (q *Quantizer) KeyInto(c Curve, p []float64, buf []uint32) (uint64, []uint32) {
	buf = q.AppendCell(buf[:0], p)
	if c == Hilbert {
		axesToTranspose(buf, q.bits)
	}
	return ZOrderKey(buf, q.bits), buf
}

// ZOrderKey interleaves the low `bits` bits of each coordinate, highest
// bit first, dimension 0 most significant within each round.
//
//anonylint:zero-alloc
func ZOrderKey(cell []uint32, bits int) uint64 {
	var key uint64
	for b := bits - 1; b >= 0; b-- {
		for _, c := range cell {
			key = key<<1 | uint64((c>>b)&1)
		}
	}
	return key
}

// HilbertKey returns the position of a grid cell along the d-dimensional
// Hilbert curve of order `bits`, using Skilling's transpose algorithm
// (AIP Conf. Proc. 707, 2004): the axes are converted in place to the
// "transposed" Hilbert representation and then bit-interleaved.
func HilbertKey(cell []uint32, bits int) uint64 {
	x := make([]uint32, len(cell))
	copy(x, cell)
	axesToTranspose(x, bits)
	return ZOrderKey(x, bits)
}

// HilbertCell inverts HilbertKey: it returns the grid cell at the given
// curve position. Exported for tests and for workload tooling.
func HilbertCell(key uint64, dims, bits int) []uint32 {
	x := deinterleave(key, dims, bits)
	transposeToAxes(x, bits)
	return x
}

// deinterleave splits a Z-order key back into coordinates.
func deinterleave(key uint64, dims, bits int) []uint32 {
	x := make([]uint32, dims)
	for b := 0; b < bits; b++ {
		for d := dims - 1; d >= 0; d-- {
			x[d] |= uint32(key&1) << b
			key >>= 1
		}
	}
	return x
}

// axesToTranspose converts coordinates to the transposed Hilbert form in
// place (Skilling 2004, public domain).
func axesToTranspose(x []uint32, bits int) {
	n := len(x)
	if n == 0 || bits <= 0 {
		return
	}
	m := uint32(1) << (bits - 1)
	// Inverse undo.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	var t uint32
	for q := m; q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}
}

// transposeToAxes inverts axesToTranspose in place.
func transposeToAxes(x []uint32, bits int) {
	n := len(x)
	if n == 0 || bits <= 0 {
		return
	}
	m := uint32(2) << (bits - 1)
	// Gray decode.
	t := x[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint32(2); q != m; q <<= 1 {
		p := q - 1
		for i := n - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				tt := (x[0] ^ x[i]) & p
				x[0] ^= tt
				x[i] ^= tt
			}
		}
	}
}

// Anonymize sorts records along the curve and cuts the order into
// consecutive groups of at least constraint.MinSize() records (at most
// 2·MinSize-1, except possibly the last group which absorbs the
// remainder), publishing each group under its MBR. This is the
// sort-based bulk anonymization the paper compares the buffer tree
// against. The input slice is reordered in place.
func Anonymize(recs []attr.Record, c Curve, constraint anonmodel.Constraint) ([]anonmodel.Partition, error) {
	if err := anonmodel.Validate(constraint); err != nil {
		return nil, fmt.Errorf("sfc: %w", err)
	}
	if len(recs) == 0 {
		return nil, nil
	}
	if !constraint.Satisfied(recs) {
		return nil, fmt.Errorf("sfc: input of %d records cannot satisfy %v", len(recs), constraint)
	}
	dims := len(recs[0].QI)
	domain := attr.DomainOf(dims, recs)
	q, err := NewQuantizer(domain, 0)
	if err != nil {
		return nil, err
	}
	keys := make([]uint64, len(recs))
	idx := make([]int, len(recs))
	var cell []uint32
	for i, r := range recs {
		keys[i], cell = q.KeyInto(c, r.QI, cell)
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })

	var out []anonmodel.Partition
	start := 0
	for start < len(recs) {
		end := start
		var group []attr.Record
		for end < len(recs) && !constraint.Satisfied(group) {
			group = append(group, recs[idx[end]])
			end++
		}
		out = append(out, anonmodel.Partition{Records: group})
		start = end
	}
	// Only the last group can be unsatisfying (it ran out of records);
	// merge it into its predecessor, mirroring step LS4 of the paper's
	// leaf-scan algorithm.
	if n := len(out); n > 1 && !constraint.Satisfied(out[n-1].Records) {
		out[n-2].Records = append(out[n-2].Records, out[n-1].Records...)
		out = out[:n-1]
	}
	for i := range out {
		box := attr.NewBox(dims)
		for _, r := range out[i].Records {
			box.Include(r.QI)
		}
		out[i].Box = box
	}
	return out, nil
}
