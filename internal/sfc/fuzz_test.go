package sfc

import (
	"testing"
)

// FuzzHilbertRoundTrip checks that HilbertCell inverts HilbertKey for
// arbitrary cells at several dimensionalities — the property every
// sort-based load depends on. Runs as a normal test over the seed
// corpus; `go test -fuzz FuzzHilbertRoundTrip ./internal/sfc` explores
// further.
func FuzzHilbertRoundTrip(f *testing.F) {
	f.Add(uint16(0), uint16(0), uint16(0), uint8(2))
	f.Add(uint16(1), uint16(2), uint16(3), uint8(3))
	f.Add(uint16(65535), uint16(0), uint16(32768), uint8(4))
	f.Add(uint16(12345), uint16(54321), uint16(999), uint8(2))
	f.Fuzz(func(t *testing.T, a, b, c uint16, dimsRaw uint8) {
		dims := int(dimsRaw%3) + 2 // 2..4 dims
		bits := 16 / dims * 2
		if bits < 2 {
			bits = 2
		}
		mask := uint32(1)<<bits - 1
		cell := []uint32{uint32(a) & mask, uint32(b) & mask, uint32(c) & mask, uint32(a^b) & mask}[:dims]
		key := HilbertKey(cell, bits)
		back := HilbertCell(key, dims, bits)
		for d := range cell {
			if back[d] != cell[d] {
				t.Fatalf("dims=%d bits=%d: %v -> %d -> %v", dims, bits, cell, key, back)
			}
		}
	})
}
