package sfc

import (
	"testing"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/dataset"
)

// BenchmarkQuantizerKey is the regression benchmark for the zero-alloc
// key path: run with -benchmem, both curves must report 0 allocs/op.
func BenchmarkQuantizerKey(b *testing.B) {
	recs := dataset.GenerateLandsEnd(1024, 99)
	q, err := NewQuantizer(attr.DomainOf(len(recs[0].QI), recs), 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range []Curve{ZOrder, Hilbert} {
		b.Run(c.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q.Key(c, recs[i%len(recs)].QI)
			}
		})
	}
}

// BenchmarkAnonymize tracks the bulk path that KeyInto feeds.
func BenchmarkAnonymize(b *testing.B) {
	recs := dataset.GenerateLandsEnd(4096, 99)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Anonymize(recs, Hilbert, anonmodel.KAnonymity{K: 10}); err != nil {
			b.Fatal(err)
		}
	}
}
