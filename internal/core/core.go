// Package core is the paper's primary contribution assembled as a
// library: k-anonymization performed by building a spatial index.
//
// It exposes:
//
//   - RTreeAnonymizer — the index-based anonymizer. Bulk loads through
//     the buffer tree (Section 2.1), accepts incremental inserts,
//     deletes and updates (Section 2.2), publishes compacted partitions
//     straight from leaf MBRs, and derives any granularity k₁ ≥ k via
//     the leaf-scan algorithm (Section 3.2) or tree levels via the
//     hierarchical algorithm (Section 3.1).
//   - MondrianAnonymizer, SFCAnonymizer, GridAnonymizer — the baselines,
//     behind the same Anonymizer interface, so the experiment harness
//     and the CLI treat every algorithm uniformly.
//   - LeafScan — the Figure 5 algorithm as a standalone function.
//   - VerifyCollusionSafety — the Definition 2 / Lemma 1 k-bound check
//     over a set of multi-granular releases.
//   - Render / WriteCSV — materialization of an anonymized table, with
//     hierarchy-aware categorical generalization ("*" at the root).
package core

import (
	"fmt"
	"sort"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/bptree"
	"spatialanon/internal/compact"
	"spatialanon/internal/gridfile"
	"spatialanon/internal/mondrian"
	"spatialanon/internal/par"
	"spatialanon/internal/quadtree"
	"spatialanon/internal/rplustree"
	"spatialanon/internal/sfc"
)

// Anonymizer is the uniform face of every algorithm in the repository:
// one-shot anonymization of a record set under the algorithm's
// configured constraint.
type Anonymizer interface {
	// Anonymize partitions recs. Implementations may reorder the input
	// slice.
	Anonymize(recs []attr.Record) ([]anonmodel.Partition, error)
	// Name identifies the algorithm in reports.
	Name() string
}

// LeafScan is the multi-granular leaf-scan algorithm of Figure 5: scan
// base partitions in index order, accumulating whole partitions until
// the constraint is satisfied, then recompute the group's generalized
// box as the union of its members' boxes. A final group that cannot
// satisfy the constraint is absorbed into its predecessor (step LS4).
//
// Because output groups are unions of whole base partitions, every
// record stays bound (Definition 2) to the ≥k records of its base
// partition, which is what makes releases at several granularities
// jointly safe (Lemma 1).
func LeafScan(base []anonmodel.Partition, constraint anonmodel.Constraint) ([]anonmodel.Partition, error) {
	return LeafScanP(base, constraint, 1)
}

// LeafScanP is LeafScan with a parallelism knob (0 = all cores, 1 =
// serial). The scan itself is a sequential dependence chain — each
// group boundary depends on the previous one — but for constraints
// that are functions of group size alone (k-anonymity, conjunctions of
// k-anonymities) the boundaries can be planned from partition sizes in
// one cheap serial pass, after which the groups' record slices and
// boxes are materialized concurrently. Output is identical to the
// serial scan for every worker count; constraints that inspect record
// contents (l-diversity, (α,k)) fall back to the serial scan.
func LeafScanP(base []anonmodel.Partition, constraint anonmodel.Constraint, workers int) ([]anonmodel.Partition, error) {
	if constraint == nil {
		return nil, fmt.Errorf("core: nil constraint")
	}
	if len(base) == 0 {
		return nil, nil
	}
	w := par.Workers(workers)
	min, sizeOnly := sizeOnlyMin(constraint)
	if w <= 1 || !sizeOnly {
		return leafScanSerial(base, constraint)
	}
	// Plan the group boundaries from sizes alone: group g is
	// base[bounds[g]:bounds[g+1]). run mirrors len(cur.Records) of the
	// serial scan, so "run >= min" is exactly its Satisfied check.
	bounds := []int{0}
	run := 0
	for i, p := range base {
		run += len(p.Records)
		if run >= min {
			bounds = append(bounds, i+1)
			run = 0
		}
	}
	if run > 0 {
		if len(bounds) == 1 {
			return nil, fmt.Errorf("core: %d records cannot satisfy %v", run, constraint)
		}
		// Step LS4: absorb the unsatisfiable tail into the last group.
		bounds[len(bounds)-1] = len(base)
	}
	// A tail of empty partitions with no records is dropped, as the
	// serial scan drops an empty trailing accumulator.
	dims := len(base[0].Box)
	out := make([]anonmodel.Partition, len(bounds)-1)
	par.Do(w, len(out), func(g int) {
		group := base[bounds[g]:bounds[g+1]]
		n := 0
		for _, p := range group {
			n += len(p.Records)
		}
		box := attr.NewBox(dims)
		recs := make([]attr.Record, 0, n)
		for _, p := range group {
			recs = append(recs, p.Records...)
			box.IncludeBox(p.Box)
		}
		out[g] = anonmodel.Partition{Box: box, Records: recs}
	})
	return out, nil
}

// sizeOnlyMin reports whether constraint is a pure function of group
// size and, if so, the smallest satisfying size: Satisfied(recs) ⇔
// len(recs) >= min. True for KAnonymity and for All built solely from
// size-only constraints.
func sizeOnlyMin(c anonmodel.Constraint) (min int, ok bool) {
	switch v := c.(type) {
	case anonmodel.KAnonymity:
		return v.K, true
	case anonmodel.All:
		for _, sub := range v {
			m, subOK := sizeOnlyMin(sub)
			if !subOK {
				return 0, false
			}
			if m > min {
				min = m
			}
		}
		return min, true
	}
	return 0, false
}

// leafScanSerial is the reference Figure 5 scan: one pass, one
// accumulator. LeafScanP must match it exactly.
func leafScanSerial(base []anonmodel.Partition, constraint anonmodel.Constraint) ([]anonmodel.Partition, error) {
	dims := len(base[0].Box)
	var out []anonmodel.Partition
	cur := anonmodel.Partition{Box: attr.NewBox(dims)}
	for _, p := range base {
		cur.Records = append(cur.Records, p.Records...)
		cur.Box.IncludeBox(p.Box)
		if constraint.Satisfied(cur.Records) {
			out = append(out, cur)
			cur = anonmodel.Partition{Box: attr.NewBox(dims)}
		}
	}
	if len(cur.Records) > 0 {
		if len(out) == 0 {
			if !constraint.Satisfied(cur.Records) {
				return nil, fmt.Errorf("core: %d records cannot satisfy %v", len(cur.Records), constraint)
			}
			out = append(out, cur)
		} else {
			last := &out[len(out)-1]
			last.Records = append(last.Records, cur.Records...)
			last.Box.IncludeBox(cur.Box)
		}
	}
	return out, nil
}

// VerifyCollusionSafety checks that a set of releases of the SAME table
// jointly preserves k-anonymity: an adversary holding every release can
// narrow a record's candidates only to the intersection of its
// partitions across releases, so every such intersection cell must hold
// at least k records. This is the operational form of Definition 2 /
// Lemma 1: releases generated hierarchically or by leaf scan over one
// index pass (each cell then contains a whole base partition), while
// independently re-anonymized releases generally fail.
func VerifyCollusionSafety(releases [][]anonmodel.Partition, k int) error {
	if len(releases) == 0 {
		return nil
	}
	// cell key: the tuple of partition indices a record occupies.
	type cellKey string
	assign := make(map[int64][]int) // record ID -> partition index per release
	for ri, rel := range releases {
		for pi, p := range rel {
			for _, r := range p.Records {
				ids, ok := assign[r.ID]
				if !ok {
					ids = make([]int, len(releases))
					for i := range ids {
						ids[i] = -1
					}
					assign[r.ID] = ids
				}
				if ids[ri] != -1 {
					return fmt.Errorf("core: record %d appears in two partitions of release %d", r.ID, ri)
				}
				ids[ri] = pi
			}
		}
	}
	// Walk records in ID order so the error witness — which record or
	// cell is reported first — is deterministic rather than whatever
	// the map iteration happened to visit.
	recIDs := make([]int64, 0, len(assign))
	for id := range assign {
		recIDs = append(recIDs, id)
	}
	sort.Slice(recIDs, func(a, b int) bool { return recIDs[a] < recIDs[b] })
	cells := make(map[cellKey]int)
	cellOrder := make([]cellKey, 0)
	for _, id := range recIDs {
		ids := assign[id]
		for ri, pi := range ids {
			if pi == -1 {
				return fmt.Errorf("core: record %d missing from release %d", id, ri)
			}
		}
		key := cellKey(fmt.Sprint(ids))
		if _, seen := cells[key]; !seen {
			cellOrder = append(cellOrder, key)
		}
		cells[key]++
	}
	for _, key := range cellOrder {
		if n := cells[key]; n < k {
			return fmt.Errorf("core: intersection cell %s holds %d records < k=%d — collusion breaks k-anonymity", key, n, k)
		}
	}
	return nil
}

// Release is one anonymized table of a multi-granular set.
type Release struct {
	// Granularity is the anonymity parameter this release was derived
	// at (the leaf-scan k₁, or the effective minimum occupancy of a
	// hierarchical level).
	Granularity int
	Partitions  []anonmodel.Partition
}

// MondrianAnonymizer adapts the top-down baseline to the Anonymizer
// interface, optionally compacting its output (Section 4 retrofit).
type MondrianAnonymizer struct {
	Schema     *attr.Schema
	Constraint anonmodel.Constraint
	Relaxed    bool
	Compact    bool
	// Parallelism bounds worker goroutines for the recursion and the
	// compaction pass (0 = all cores, 1 = serial; output identical
	// either way).
	Parallelism int
}

// Anonymize implements Anonymizer.
func (m *MondrianAnonymizer) Anonymize(recs []attr.Record) ([]anonmodel.Partition, error) {
	ps, err := mondrian.Anonymize(m.Schema, recs, mondrian.Options{
		Constraint:  m.Constraint,
		Relaxed:     m.Relaxed,
		Parallelism: m.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	if m.Compact {
		ps = compact.PartitionsP(ps, m.Parallelism)
	}
	return ps, nil
}

// Name implements Anonymizer.
func (m *MondrianAnonymizer) Name() string {
	name := "mondrian"
	if m.Relaxed {
		name += "-relaxed"
	}
	if m.Compact {
		name += "+compact"
	}
	return name
}

// SFCAnonymizer adapts sort-based space-filling-curve anonymization to
// the Anonymizer interface.
type SFCAnonymizer struct {
	Curve      sfc.Curve
	Constraint anonmodel.Constraint
}

// Anonymize implements Anonymizer.
func (a *SFCAnonymizer) Anonymize(recs []attr.Record) ([]anonmodel.Partition, error) {
	return sfc.Anonymize(recs, a.Curve, a.Constraint)
}

// Name implements Anonymizer.
func (a *SFCAnonymizer) Name() string { return "sfc-" + a.Curve.String() }

// GridAnonymizer adapts the grid-file baseline to the Anonymizer
// interface, optionally compacting (the Section 4 retrofit that package
// gridfile exists to demonstrate).
type GridAnonymizer struct {
	Schema      *attr.Schema
	Constraint  anonmodel.Constraint
	CellsPerDim int
	Compact     bool
	// Parallelism bounds worker goroutines for the compaction pass.
	Parallelism int
}

// Anonymize implements Anonymizer.
func (g *GridAnonymizer) Anonymize(recs []attr.Record) ([]anonmodel.Partition, error) {
	ps, err := gridfile.Anonymize(g.Schema, recs, gridfile.Options{
		Constraint:  g.Constraint,
		CellsPerDim: g.CellsPerDim,
	})
	if err != nil {
		return nil, err
	}
	if g.Compact {
		ps = compact.PartitionsP(ps, g.Parallelism)
	}
	return ps, nil
}

// Name implements Anonymizer.
func (g *GridAnonymizer) Name() string {
	if g.Compact {
		return "gridfile+compact"
	}
	return "gridfile"
}

// BPTreeAnonymizer anonymizes with a one-dimensional B⁺-tree — the
// paper's introductory observation (Section 1, Figure 1(c)) made
// executable. The index clusters records on a single key attribute;
// leaves become groups; each group publishes its MBR over all
// attributes (the implicit compaction of Section 4). It is the extreme
// point of the workload-bias spectrum: ideal when every query ranges
// over the key, poor for everything else, and the ablation benchmarks
// quantify both sides.
type BPTreeAnonymizer struct {
	Schema     *attr.Schema
	Constraint anonmodel.Constraint
	// Key is the attribute to index on.
	Key int

	tree *bptree.Tree
}

// Anonymize implements Anonymizer.
func (b *BPTreeAnonymizer) Anonymize(recs []attr.Record) ([]anonmodel.Partition, error) {
	if b.Constraint == nil {
		return nil, fmt.Errorf("core: nil constraint")
	}
	if len(recs) == 0 {
		return nil, nil
	}
	tr, err := bptree.New(bptree.Config{
		Schema: b.Schema,
		Key:    b.Key,
		BaseK:  b.Constraint.MinSize(),
	})
	if err != nil {
		return nil, err
	}
	for _, r := range recs {
		if err := tr.Insert(r); err != nil {
			return nil, err
		}
	}
	b.tree = tr
	dims := b.Schema.Dims()
	leaves := tr.Leaves()
	base := make([]anonmodel.Partition, len(leaves))
	for i, group := range leaves {
		box := attr.NewBox(dims)
		for _, r := range group {
			box.Include(r.QI)
		}
		base[i] = anonmodel.Partition{Box: box, Records: group}
	}
	return LeafScan(base, b.Constraint)
}

// Name implements Anonymizer.
func (b *BPTreeAnonymizer) Name() string { return fmt.Sprintf("bptree[%d]", b.Key) }

// Tree exposes the index built by the last Anonymize call.
func (b *BPTreeAnonymizer) Tree() *bptree.Tree { return b.tree }

// QuadAnonymizer anonymizes with a PR-quadtree index (Section 6's
// alternative index family, after [16]): the tree subdivides at cell
// midpoints, leaves publish tight MBRs, and constraint satisfaction
// comes from leaf-scanning the quadrant-ordered leaves.
type QuadAnonymizer struct {
	Schema     *attr.Schema
	Constraint anonmodel.Constraint
	// SplitAxes optionally pins the subdividing attributes (max 4);
	// empty picks the widest domain axes.
	SplitAxes []int

	tree *quadtree.Tree
}

// Anonymize implements Anonymizer.
func (q *QuadAnonymizer) Anonymize(recs []attr.Record) ([]anonmodel.Partition, error) {
	if q.Constraint == nil {
		return nil, fmt.Errorf("core: nil constraint")
	}
	if len(recs) == 0 {
		return nil, nil
	}
	qt, err := quadtree.New(quadtree.Config{
		Schema:    q.Schema,
		BaseK:     q.Constraint.MinSize(),
		SplitAxes: q.SplitAxes,
	}, recs)
	if err != nil {
		return nil, err
	}
	q.tree = qt
	leaves := qt.Leaves()
	base := make([]anonmodel.Partition, len(leaves))
	for i, l := range leaves {
		base[i] = anonmodel.Partition{Box: l.MBR.Clone(), Records: l.Records}
	}
	return LeafScan(base, q.Constraint)
}

// Name implements Anonymizer.
func (q *QuadAnonymizer) Name() string { return "quadtree" }

// Tree exposes the underlying index from the last Anonymize call (nil
// before the first).
func (q *QuadAnonymizer) Tree() *quadtree.Tree { return q.tree }

// partitionsFromLeaves converts index leaves into base partitions. Leaf
// MBRs are tight, so these partitions are born compacted — the index
// "maintains MBRs" (Section 2.3) and never needs the explicit
// compaction pass.
func partitionsFromLeaves(leaves []rplustree.LeafView) []anonmodel.Partition {
	out := make([]anonmodel.Partition, len(leaves))
	for i, l := range leaves {
		out[i] = anonmodel.Partition{Box: l.MBR.Clone(), Records: l.Records}
	}
	return out
}
