package core

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
)

// Render materializes an anonymized table: one row per record, each
// quasi-identifier replaced by its partition's generalized value on that
// attribute. Numeric (and coded categorical) attributes render as the
// paper's interval notation ("[20 - 30]", or the bare value when the
// interval is a point); categorical attributes carrying a hierarchy
// render as the lowest-common-ancestor label (the root of a flat
// hierarchy being "*", exactly as Figure 1(b) prints fully generalized
// Sex values). The sensitive value, if the schema declares one, is
// appended verbatim. Rows are ordered by record ID for reproducibility.
func Render(s *attr.Schema, ps []anonmodel.Partition) (header []string, rows [][]string, err error) {
	header = s.Names()
	if s.Sensitive != "" {
		header = append(header, s.Sensitive)
	}
	type keyed struct {
		id  int64
		row []string
	}
	var all []keyed
	for _, p := range ps {
		cells := make([]string, s.Dims())
		for i, a := range s.Attrs {
			if a.Hierarchy != nil {
				label, _, gerr := a.Hierarchy.GeneralizeInterval(p.Box[i])
				if gerr != nil {
					return nil, nil, fmt.Errorf("core: render attribute %q: %w", a.Name, gerr)
				}
				cells[i] = label
				continue
			}
			cells[i] = p.Box[i].String()
		}
		for _, r := range p.Records {
			row := make([]string, 0, len(header))
			row = append(row, cells...)
			if s.Sensitive != "" {
				row = append(row, r.Sensitive)
			}
			all = append(all, keyed{id: r.ID, row: row})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].id < all[j].id })
	rows = make([][]string, len(all))
	for i, k := range all {
		rows[i] = k.row
	}
	return header, rows, nil
}

// WriteCSV writes the rendered anonymized table as CSV.
func WriteCSV(w io.Writer, s *attr.Schema, ps []anonmodel.Partition) error {
	header, rows, err := Render(s, ps)
	if err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
