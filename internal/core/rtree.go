package core

import (
	"fmt"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/rplustree"
)

// RTreeConfig parameterizes the index-based anonymizer.
type RTreeConfig struct {
	// Schema of the quasi-identifier attributes. Required.
	Schema *attr.Schema
	// Constraint is the definition of an allowable partition. Defaults
	// to KAnonymity{K: BaseK}; if it is richer than plain k-anonymity a
	// split guard is installed so leaves never split into violating
	// halves (Section 6).
	Constraint anonmodel.Constraint
	// BaseK is the index's base anonymity parameter (leaf minimum
	// occupancy). Zero derives it from Constraint.MinSize(); Section
	// 5.1 builds with base k=5 and leaf-scans to every published k.
	BaseK int
	// LeafFactor, NodeCapacity and Split pass through to the index.
	LeafFactor   int
	NodeCapacity int
	Split        rplustree.SplitPolicy
	// BulkLoad, when non-nil, makes Load use buffer-tree bulk loading
	// with this configuration; nil loads tuple-at-a-time.
	BulkLoad *rplustree.BulkLoadConfig
	// Parallelism bounds the worker goroutines used by bulk loading,
	// split cascades and leaf-scan materialization: 0 uses all
	// available cores, 1 (or negative) runs serially. Every setting
	// produces the identical index, partitions and I/O counters; 1 is
	// the reference execution.
	Parallelism int
}

// RTreeAnonymizer is the paper's system: a spatial index whose leaves
// are the anonymization. It supports bulk loading, incremental
// maintenance, granularity derivation and multi-granular release.
type RTreeAnonymizer struct {
	cfg        RTreeConfig
	constraint anonmodel.Constraint
	tree       *rplustree.Tree
	loader     *rplustree.BulkLoader
}

// Validate checks the configuration without building anything: the
// schema must be present and the effective constraint must pass
// anonmodel.Validate (in particular, any k below 2 is rejected — k=1
// "anonymity" is the identity release).
func (cfg RTreeConfig) Validate() error {
	_, _, err := cfg.resolve()
	return err
}

// resolve applies the Constraint/BaseK defaulting rules and validates
// the result, returning the effective constraint and base k.
func (cfg RTreeConfig) resolve() (anonmodel.Constraint, int, error) {
	if cfg.Schema == nil {
		return nil, 0, fmt.Errorf("core: nil schema")
	}
	constraint := cfg.Constraint
	baseK := cfg.BaseK
	switch {
	case constraint == nil && baseK == 0:
		return nil, 0, fmt.Errorf("core: need a Constraint or a BaseK")
	case constraint == nil:
		constraint = anonmodel.KAnonymity{K: baseK}
	case baseK == 0:
		baseK = constraint.MinSize()
	}
	if err := anonmodel.Validate(constraint); err != nil {
		return nil, 0, err
	}
	if baseK < 2 {
		return nil, 0, fmt.Errorf("core: BaseK %d provides no anonymity; need >= 2", baseK)
	}
	if baseK < constraint.MinSize() {
		return nil, 0, fmt.Errorf("core: BaseK %d below constraint minimum %d", baseK, constraint.MinSize())
	}
	return constraint, baseK, nil
}

// NewRTreeAnonymizer builds an empty anonymizing index.
func NewRTreeAnonymizer(cfg RTreeConfig) (*RTreeAnonymizer, error) {
	constraint, baseK, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	tcfg := rplustree.Config{
		Schema:       cfg.Schema,
		BaseK:        baseK,
		LeafFactor:   cfg.LeafFactor,
		NodeCapacity: cfg.NodeCapacity,
		Split:        cfg.Split,
		Parallelism:  cfg.Parallelism,
	}
	if _, plainK := constraint.(anonmodel.KAnonymity); !plainK {
		c := constraint
		tcfg.Guard = func(left, right []attr.Record) bool {
			return c.Satisfied(left) && c.Satisfied(right)
		}
	}
	tree, err := rplustree.New(tcfg)
	if err != nil {
		return nil, err
	}
	a := &RTreeAnonymizer{cfg: cfg, constraint: constraint, tree: tree}
	if cfg.BulkLoad != nil {
		loader, err := rplustree.NewBulkLoader(tree, *cfg.BulkLoad)
		if err != nil {
			return nil, err
		}
		a.loader = loader
	}
	return a, nil
}

// Name implements Anonymizer.
func (a *RTreeAnonymizer) Name() string {
	if a.cfg.BulkLoad != nil {
		return "rtree-buffer"
	}
	return "rtree"
}

// Tree exposes the underlying index (read-mostly: for queries, level
// inspection and invariant checks).
func (a *RTreeAnonymizer) Tree() *rplustree.Tree { return a.tree }

// Constraint returns the installed allowable-partition definition.
func (a *RTreeAnonymizer) Constraint() anonmodel.Constraint { return a.constraint }

// Len returns the number of records currently indexed.
func (a *RTreeAnonymizer) Len() int { return a.tree.Len() }

// Load inserts a batch of records through the configured load path
// (buffer tree or tuple-at-a-time) and leaves the index query-ready.
// It may be called repeatedly — each call is one incremental batch of
// the Section 2.2 / Figure 7(b) regime.
func (a *RTreeAnonymizer) Load(recs []attr.Record) error {
	if a.loader != nil {
		if err := a.loader.InsertBatch(recs); err != nil {
			return err
		}
		return a.loader.Flush()
	}
	for _, r := range recs {
		if err := a.tree.Insert(r); err != nil {
			return err
		}
	}
	return nil
}

// LoadBuffered inserts a batch through the buffer tree without forcing
// the buffers down to the leaves. Use it to stream a large data set in
// pieces — the whole point of buffer-tree loading is that records
// descend lazily, a level at a time, as buffers fill — then call Sync
// once before publishing. Without a bulk loader it behaves like Load.
func (a *RTreeAnonymizer) LoadBuffered(recs []attr.Record) error {
	if a.loader == nil {
		return a.Load(recs)
	}
	return a.loader.InsertBatch(recs)
}

// Sync forces every buffered record into the leaves, making the index
// consistent for Partitions, queries and level views.
func (a *RTreeAnonymizer) Sync() error {
	if a.loader == nil {
		return nil
	}
	return a.loader.Flush()
}

// Insert adds one record (tuple-at-a-time maintenance).
func (a *RTreeAnonymizer) Insert(rec attr.Record) error {
	if a.loader != nil {
		if err := a.loader.Insert(rec); err != nil {
			return err
		}
		return a.loader.Flush()
	}
	return a.tree.Insert(rec)
}

// Delete removes the record with the given ID at qi. The bool reports
// whether the record was found; the error surfaces storage-charge
// failures from an attached loader during underflow repair (the
// removal itself has still happened).
func (a *RTreeAnonymizer) Delete(id int64, qi []float64) (bool, error) {
	return a.tree.Delete(id, qi)
}

// Update relocates a record. The bool reports whether the record was
// found; the error surfaces storage-charge failures from an attached
// loader (the record is reinserted either way).
func (a *RTreeAnonymizer) Update(id int64, oldQI []float64, rec attr.Record) (bool, error) {
	return a.tree.Update(id, oldQI, rec)
}

// Anonymize implements Anonymizer: load everything, publish at the base
// constraint.
func (a *RTreeAnonymizer) Anonymize(recs []attr.Record) ([]anonmodel.Partition, error) {
	if err := a.Load(recs); err != nil {
		return nil, err
	}
	return a.Partitions(0)
}

// Partitions materializes the anonymized table at granularity k1 via
// the leaf-scan algorithm. k1 == 0 publishes at the base constraint.
// The published boxes are leaf MBR unions — compacted by construction.
// Execution time is one scan of the leaves regardless of k1, which is
// why Figure 7(a) shows flat R⁺-tree times across k.
//
// Derivation is two-stage: leaves are first grouped into the base
// release (every group satisfies the constraint — this also absorbs any
// underfull leaf that an unbalanced, duplicate-forced split produced),
// and coarser granularities group whole base partitions. Every record
// is therefore k-bound (Definition 2) to its base partition in every
// granularity published from this index state, which is what makes the
// release set jointly collusion-safe (Lemma 1) even when individual
// leaves dip below k.
func (a *RTreeAnonymizer) Partitions(k1 int) ([]anonmodel.Partition, error) {
	base, err := LeafScanP(partitionsFromLeaves(a.tree.Leaves()), a.constraint, a.cfg.Parallelism)
	if err != nil {
		return nil, err
	}
	if k1 == 0 {
		return base, nil
	}
	if k1 < a.tree.Config().BaseK {
		return nil, fmt.Errorf("core: granularity %d below base k %d", k1, a.tree.Config().BaseK)
	}
	return LeafScanP(base, anonmodel.All{a.constraint, anonmodel.KAnonymity{K: k1}}, a.cfg.Parallelism)
}

// HierarchicalRelease materializes the anonymized table from tree level
// `level` (0 = leaves) per the Section 3.1 hierarchical algorithm: each
// level-i node becomes one partition holding all records beneath it.
func (a *RTreeAnonymizer) HierarchicalRelease(level int) ([]anonmodel.Partition, error) {
	views, err := a.tree.Level(level)
	if err != nil {
		return nil, err
	}
	out := make([]anonmodel.Partition, 0, len(views))
	for _, v := range views {
		p := anonmodel.Partition{Box: v.MBR.Clone()}
		for _, l := range v.Leaves {
			p.Records = append(p.Records, l.Records...)
		}
		out = append(out, p)
	}
	return out, nil
}

// MultiGranular derives one release per requested granularity via leaf
// scan over the same index. The releases are jointly collusion-safe
// (Lemma 1) because every partition of every release is a union of
// whole leaves; VerifyCollusionSafety confirms it.
func (a *RTreeAnonymizer) MultiGranular(ks []int) ([]Release, error) {
	out := make([]Release, 0, len(ks))
	for _, k := range ks {
		ps, err := a.Partitions(k)
		if err != nil {
			return nil, fmt.Errorf("core: granularity %d: %w", k, err)
		}
		out = append(out, Release{Granularity: k, Partitions: ps})
	}
	return out, nil
}

// HierarchicalReleases derives one release per tree level — the
// automatic k, lk, l²k, ... sequence of Section 3.1. Level 0 (leaves)
// comes first. The root level (a single all-records partition) is
// included last; callers wanting non-trivial releases can drop it.
func (a *RTreeAnonymizer) HierarchicalReleases() ([]Release, error) {
	out := make([]Release, 0, a.tree.Height())
	for lvl := 0; lvl < a.tree.Height(); lvl++ {
		ps, err := a.HierarchicalRelease(lvl)
		if err != nil {
			return nil, err
		}
		min := 0
		for i, p := range ps {
			if i == 0 || p.Size() < min {
				min = p.Size()
			}
		}
		out = append(out, Release{Granularity: min, Partitions: ps})
	}
	return out, nil
}

// IOStats returns the bulk loader's I/O counters, or zeros when loading
// tuple-at-a-time.
func (a *RTreeAnonymizer) IOStats() (reads, writes int64) {
	if a.loader == nil {
		return 0, 0
	}
	s := a.loader.Stats()
	return s.Reads, s.Writes
}
