package core

import (
	"testing"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/dataset"
	"spatialanon/internal/quality"
	"spatialanon/internal/rplustree"
)

func newPatientRT(t *testing.T, k int, bulk bool) *RTreeAnonymizer {
	t.Helper()
	cfg := RTreeConfig{Schema: dataset.PatientsSchema(), BaseK: k}
	if bulk {
		cfg.BulkLoad = &rplustree.BulkLoadConfig{PageSize: 256, MemoryBytes: 256 * 256, RecordBytes: 12}
	}
	a, err := NewRTreeAnonymizer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewRTreeAnonymizerValidation(t *testing.T) {
	if _, err := NewRTreeAnonymizer(RTreeConfig{}); err == nil {
		t.Fatal("nil schema accepted")
	}
	s := dataset.PatientsSchema()
	if _, err := NewRTreeAnonymizer(RTreeConfig{Schema: s}); err == nil {
		t.Fatal("no constraint and no BaseK accepted")
	}
	if _, err := NewRTreeAnonymizer(RTreeConfig{Schema: s, BaseK: 3, Constraint: anonmodel.KAnonymity{K: 10}}); err == nil {
		t.Fatal("BaseK below constraint minimum accepted")
	}
	a, err := NewRTreeAnonymizer(RTreeConfig{Schema: s, BaseK: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Constraint().MinSize() != 5 {
		t.Fatalf("derived constraint %v", a.Constraint())
	}
	b, err := NewRTreeAnonymizer(RTreeConfig{Schema: s, Constraint: anonmodel.KAnonymity{K: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if b.Tree().Config().BaseK != 7 {
		t.Fatalf("derived BaseK %d", b.Tree().Config().BaseK)
	}
}

func TestRTreePartitionsSatisfyGranularities(t *testing.T) {
	for _, bulk := range []bool{false, true} {
		a := newPatientRT(t, 5, bulk)
		if err := a.Load(dataset.GeneratePatients(2000, 91)); err != nil {
			t.Fatal(err)
		}
		if a.Len() != 2000 {
			t.Fatalf("Len = %d", a.Len())
		}
		// Granularities derived by leaf scan from the same base-5 index —
		// the exact regime of Figure 7(a).
		for _, k := range []int{5, 10, 25, 50, 100} {
			ps, err := a.Partitions(k)
			if err != nil {
				t.Fatalf("bulk=%v k=%d: %v", bulk, k, err)
			}
			if err := anonmodel.CheckAnonymity(ps, anonmodel.KAnonymity{K: k}); err != nil {
				t.Fatalf("bulk=%v k=%d: %v", bulk, k, err)
			}
			if anonmodel.TotalRecords(ps) != 2000 {
				t.Fatalf("bulk=%v k=%d: lost records", bulk, k)
			}
		}
		if _, err := a.Partitions(3); err == nil {
			t.Fatal("granularity below base k accepted")
		}
	}
}

func TestRTreeMultiGranularCollusionSafe(t *testing.T) {
	a := newPatientRT(t, 5, false)
	if err := a.Load(dataset.GeneratePatients(1500, 92)); err != nil {
		t.Fatal(err)
	}
	// The hospital scenario of Section 3: granularity 5 to local
	// researchers, 10 to outside researchers, 25 to the Internet.
	rels, err := a.MultiGranular([]int{5, 10, 25})
	if err != nil {
		t.Fatal(err)
	}
	sets := make([][]anonmodel.Partition, len(rels))
	for i, r := range rels {
		sets[i] = r.Partitions
		if err := anonmodel.CheckAnonymity(r.Partitions, anonmodel.KAnonymity{K: r.Granularity}); err != nil {
			t.Fatalf("granularity %d: %v", r.Granularity, err)
		}
	}
	if err := VerifyCollusionSafety(sets, 5); err != nil {
		t.Fatalf("multi-granular releases not collusion-safe: %v", err)
	}
}

func TestRTreeHierarchicalReleases(t *testing.T) {
	a := newPatientRT(t, 4, false)
	if err := a.Load(dataset.GeneratePatients(1000, 93)); err != nil {
		t.Fatal(err)
	}
	rels, err := a.HierarchicalReleases()
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != a.Tree().Height() {
		t.Fatalf("releases %d, height %d", len(rels), a.Tree().Height())
	}
	sets := make([][]anonmodel.Partition, 0, len(rels))
	for lvl, r := range rels {
		if anonmodel.TotalRecords(r.Partitions) != 1000 {
			t.Fatalf("level %d lost records", lvl)
		}
		sets = append(sets, r.Partitions)
	}
	// The root release is one all-records partition.
	top := rels[len(rels)-1]
	if len(top.Partitions) != 1 || top.Partitions[0].Size() != 1000 {
		t.Fatalf("root release: %d partitions", len(top.Partitions))
	}
	// Releases across levels must be jointly safe at the base k... the
	// guarantee only extends to records in leaves holding >= k records,
	// which median splits deliver; verify at k=4.
	if err := VerifyCollusionSafety(sets, 4); err != nil {
		t.Fatalf("hierarchical releases not collusion-safe: %v", err)
	}
	if _, err := a.HierarchicalRelease(99); err == nil {
		t.Fatal("bad level accepted")
	}
}

func TestRTreeIncrementalQualityClose(t *testing.T) {
	// Section 5.3 / Figure 11: incrementally-built index quality is
	// comparable to bulk-built quality. We assert within 40% on CM.
	s := dataset.PatientsSchema()
	recs := dataset.GeneratePatients(3000, 94)

	bulk := newPatientRT(t, 10, false)
	if err := bulk.Load(recs); err != nil {
		t.Fatal(err)
	}
	inc := newPatientRT(t, 10, false)
	for i := 0; i < len(recs); i += 500 {
		if err := inc.Load(recs[i : i+500]); err != nil {
			t.Fatal(err)
		}
	}
	domain := attr.DomainOf(s.Dims(), recs)
	pb, err := bulk.Partitions(0)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := inc.Partitions(0)
	if err != nil {
		t.Fatal(err)
	}
	cmB := quality.Certainty(s, pb, domain)
	cmI := quality.Certainty(s, pi, domain)
	if cmI > cmB*1.4 {
		t.Fatalf("incremental CM %v much worse than bulk %v", cmI, cmB)
	}
	if err := inc.Tree().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRTreeDeleteUpdateMaintainsAnonymity(t *testing.T) {
	a := newPatientRT(t, 5, false)
	recs := dataset.GeneratePatients(800, 95)
	if err := a.Load(recs); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if found, err := a.Delete(recs[i].ID, recs[i].QI); err != nil || !found {
			t.Fatalf("delete %d failed", recs[i].ID)
		}
	}
	moved := recs[300].Clone()
	moved.QI[0] += 5
	updated, err := a.Update(recs[300].ID, recs[300].QI, moved)
	if err != nil {
		t.Fatal(err)
	}
	if !updated {
		t.Fatal("update failed")
	}
	ps, err := a.Partitions(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := anonmodel.CheckAnonymity(ps, anonmodel.KAnonymity{K: 5}); err != nil {
		t.Fatal(err)
	}
	if anonmodel.TotalRecords(ps) != 600 {
		t.Fatalf("published %d records", anonmodel.TotalRecords(ps))
	}
}

func TestRTreeWithLDiversityGuard(t *testing.T) {
	cons := anonmodel.LDiversity{K: 5, L: 3}
	a, err := NewRTreeAnonymizer(RTreeConfig{Schema: dataset.PatientsSchema(), Constraint: cons})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Load(dataset.GeneratePatients(1000, 96)); err != nil {
		t.Fatal(err)
	}
	ps, err := a.Partitions(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := anonmodel.CheckAnonymity(ps, cons); err != nil {
		t.Fatal(err)
	}
	if err := a.Tree().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRTreeBufferedLoadAndSync(t *testing.T) {
	a := newPatientRT(t, 5, true)
	recs := dataset.GeneratePatients(1200, 99)
	// Stream in three pieces without flushing.
	for i := 0; i < 3; i++ {
		if err := a.LoadBuffered(recs[i*400 : (i+1)*400]); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 1200 {
		t.Fatalf("Len = %d", a.Len())
	}
	ps, err := a.Partitions(0)
	if err != nil {
		t.Fatal(err)
	}
	if anonmodel.TotalRecords(ps) != 1200 {
		t.Fatal("records lost in buffered load")
	}
	if err := a.Tree().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Without a loader, LoadBuffered degrades to Load and Sync is a
	// no-op.
	b := newPatientRT(t, 5, false)
	if err := b.LoadBuffered(recs[:100]); err != nil {
		t.Fatal(err)
	}
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 100 {
		t.Fatalf("tuple-path Len = %d", b.Len())
	}
}

func TestRTreeInsertSingle(t *testing.T) {
	for _, bulk := range []bool{false, true} {
		a := newPatientRT(t, 3, bulk)
		if err := a.Load(dataset.GeneratePatients(100, 98)); err != nil {
			t.Fatal(err)
		}
		extra := dataset.GeneratePatients(1, 97)[0]
		extra.ID = 5000
		if err := a.Insert(extra); err != nil {
			t.Fatalf("bulk=%v: %v", bulk, err)
		}
		if a.Len() != 101 {
			t.Fatalf("bulk=%v: Len = %d", bulk, a.Len())
		}
		// Dimension mismatch surfaces on both paths.
		if err := a.Insert(attr.Record{QI: []float64{1}}); err == nil {
			t.Fatalf("bulk=%v: dimension mismatch accepted", bulk)
		}
	}
}

func TestRTreeNames(t *testing.T) {
	if newPatientRT(t, 3, false).Name() != "rtree" {
		t.Fatal("tuple name")
	}
	if newPatientRT(t, 3, true).Name() != "rtree-buffer" {
		t.Fatal("buffer name")
	}
}

func TestRTreeAnonymizeInterface(t *testing.T) {
	a := newPatientRT(t, 5, false)
	ps, err := a.Anonymize(dataset.GeneratePatients(300, 96))
	if err != nil {
		t.Fatal(err)
	}
	if err := anonmodel.CheckAnonymity(ps, anonmodel.KAnonymity{K: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestRTreeIOStats(t *testing.T) {
	a := newPatientRT(t, 5, true)
	if err := a.Load(dataset.GeneratePatients(3000, 97)); err != nil {
		t.Fatal(err)
	}
	r, w := a.IOStats()
	if r+w == 0 {
		t.Fatal("bulk load under tiny memory did no I/O")
	}
	b := newPatientRT(t, 5, false)
	if err := b.Load(dataset.GeneratePatients(100, 98)); err != nil {
		t.Fatal(err)
	}
	if r, w := b.IOStats(); r != 0 || w != 0 {
		t.Fatal("tuple load reported I/O")
	}
}
