package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/dataset"
)

func TestLeafScanBasics(t *testing.T) {
	// Base partitions of sizes 3,3,3,3 at k1=5: groups of 6,6 — whole
	// bases only.
	var base []anonmodel.Partition
	for i := 0; i < 4; i++ {
		var recs []attr.Record
		for j := 0; j < 3; j++ {
			recs = append(recs, attr.Record{ID: int64(i*3 + j), QI: []float64{float64(i*10 + j)}})
		}
		base = append(base, anonmodel.Partition{
			Box:     attr.Box{{Lo: float64(i * 10), Hi: float64(i*10 + 2)}},
			Records: recs,
		})
	}
	out, err := LeafScan(base, anonmodel.KAnonymity{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Size() != 6 || out[1].Size() != 6 {
		t.Fatalf("leaf scan groups: %d partitions", len(out))
	}
	// Boxes are unions of member base boxes.
	if !out[0].Box.Equal(attr.Box{{Lo: 0, Hi: 12}}) {
		t.Fatalf("group box %v", out[0].Box)
	}
}

func TestLeafScanTailAbsorption(t *testing.T) {
	// Sizes 3,3,3: k1=5 -> group {3,3}=6, tail {3} unsatisfying -> LS4
	// merges it into the last group: {6+3}=9.
	var base []anonmodel.Partition
	for i := 0; i < 3; i++ {
		var recs []attr.Record
		for j := 0; j < 3; j++ {
			recs = append(recs, attr.Record{ID: int64(i*3 + j), QI: []float64{float64(i)}})
		}
		base = append(base, anonmodel.Partition{Box: attr.PointBox([]float64{float64(i)}), Records: recs})
	}
	out, err := LeafScan(base, anonmodel.KAnonymity{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Size() != 9 {
		t.Fatalf("LS4 absorption failed: %d partitions, first %d", len(out), out[0].Size())
	}
}

func TestLeafScanErrors(t *testing.T) {
	if _, err := LeafScan(nil, nil); err == nil {
		t.Fatal("nil constraint accepted")
	}
	out, err := LeafScan(nil, anonmodel.KAnonymity{K: 2})
	if err != nil || out != nil {
		t.Fatalf("empty base: %v %v", out, err)
	}
	// A base too small for the constraint errors rather than lies.
	tiny := []anonmodel.Partition{{
		Box:     attr.PointBox([]float64{1}),
		Records: []attr.Record{{ID: 1, QI: []float64{1}}},
	}}
	if _, err := LeafScan(tiny, anonmodel.KAnonymity{K: 5}); err == nil {
		t.Fatal("infeasible base accepted")
	}
}

func TestVerifyCollusionSafety(t *testing.T) {
	mk := func(groups ...[]int64) []anonmodel.Partition {
		var ps []anonmodel.Partition
		for _, g := range groups {
			var recs []attr.Record
			for _, id := range g {
				recs = append(recs, attr.Record{ID: id, QI: []float64{float64(id)}})
			}
			ps = append(ps, anonmodel.Partition{Box: attr.Box{{Lo: 0, Hi: 100}}, Records: recs})
		}
		return ps
	}
	// Safe: coarse release groups whole fine partitions.
	fine := mk([]int64{1, 2}, []int64{3, 4}, []int64{5, 6}, []int64{7, 8})
	coarse := mk([]int64{1, 2, 3, 4}, []int64{5, 6, 7, 8})
	if err := VerifyCollusionSafety([][]anonmodel.Partition{fine, coarse}, 2); err != nil {
		t.Fatalf("safe releases rejected: %v", err)
	}
	// Unsafe: the second release cuts across the first's groups, so the
	// intersection isolates single records.
	crossed := mk([]int64{2, 3}, []int64{4, 5}, []int64{6, 7}, []int64{8, 1})
	if err := VerifyCollusionSafety([][]anonmodel.Partition{fine, crossed}, 2); err == nil {
		t.Fatal("crossing releases accepted")
	}
	// Degenerate inputs.
	if err := VerifyCollusionSafety(nil, 5); err != nil {
		t.Fatal("no releases must be trivially safe")
	}
	// A record missing from one release is an inconsistency.
	short := mk([]int64{1, 2, 3, 4}, []int64{5, 6, 7})
	if err := VerifyCollusionSafety([][]anonmodel.Partition{fine, short}, 2); err == nil {
		t.Fatal("release missing a record accepted")
	}
	// A record duplicated within one release is an inconsistency.
	dup := mk([]int64{1, 2, 3, 4}, []int64{4, 5, 6, 7, 8})
	if err := VerifyCollusionSafety([][]anonmodel.Partition{dup}, 2); err == nil {
		t.Fatal("duplicated record accepted")
	}
}

func TestAnonymizerInterfaces(t *testing.T) {
	recs := dataset.GeneratePatients(400, 90)
	s := dataset.PatientsSchema()
	cons := anonmodel.KAnonymity{K: 8}

	rt, err := NewRTreeAnonymizer(RTreeConfig{Schema: s, Constraint: cons})
	if err != nil {
		t.Fatal(err)
	}
	anonymizers := []Anonymizer{
		rt,
		&MondrianAnonymizer{Schema: s, Constraint: cons},
		&MondrianAnonymizer{Schema: s, Constraint: cons, Relaxed: true, Compact: true},
		&SFCAnonymizer{Constraint: cons},
		&GridAnonymizer{Schema: s, Constraint: cons},
		&GridAnonymizer{Schema: s, Constraint: cons, Compact: true},
		&QuadAnonymizer{Schema: s, Constraint: cons},
	}
	names := map[string]bool{}
	for _, a := range anonymizers {
		cp := make([]attr.Record, len(recs))
		copy(cp, recs)
		ps, err := a.Anonymize(cp)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if err := anonmodel.CheckAnonymity(ps, cons); err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if anonmodel.TotalRecords(ps) != 400 {
			t.Fatalf("%s: lost records", a.Name())
		}
		if names[a.Name()] {
			t.Fatalf("duplicate anonymizer name %q", a.Name())
		}
		names[a.Name()] = true
	}
	if !names["rtree"] || !names["mondrian"] || !names["mondrian-relaxed+compact"] ||
		!names["sfc-z-order"] || !names["gridfile"] || !names["gridfile+compact"] ||
		!names["quadtree"] {
		t.Fatalf("unexpected names: %v", names)
	}
}

func TestQuadAnonymizer(t *testing.T) {
	s := dataset.PatientsSchema()
	cons := anonmodel.LDiversity{K: 6, L: 3}
	q := &QuadAnonymizer{Schema: s, Constraint: cons, SplitAxes: []int{0, 2}}
	recs := dataset.GeneratePatients(1200, 77)
	ps, err := q.Anonymize(recs)
	if err != nil {
		t.Fatal(err)
	}
	if err := anonmodel.CheckAnonymity(ps, cons); err != nil {
		t.Fatal(err)
	}
	if anonmodel.TotalRecords(ps) != 1200 {
		t.Fatal("lost records")
	}
	if q.Tree() == nil || q.Tree().Len() != 1200 {
		t.Fatal("tree not exposed")
	}
	if err := q.Tree().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Degenerate inputs.
	if _, err := (&QuadAnonymizer{Schema: s}).Anonymize(recs); err == nil {
		t.Fatal("nil constraint accepted")
	}
	ps, err = (&QuadAnonymizer{Schema: s, Constraint: cons}).Anonymize(nil)
	if err != nil || ps != nil {
		t.Fatalf("empty input: %v %v", ps, err)
	}
}

// TestBPTreeAnonymizerFigure1 replays the paper's introduction: a
// B⁺-tree on Age over the Figure 1(a) patient table yields a valid
// 2-anonymous table whose Age ranges are compact intervals.
func TestBPTreeAnonymizerFigure1(t *testing.T) {
	s := dataset.PatientsSchema()
	// Figure 1(a): R1..R6.
	recs := []attr.Record{
		{ID: 1, QI: []float64{21, 0, 53706}, Sensitive: "anemia"},
		{ID: 2, QI: []float64{26, 0, 53706}, Sensitive: "flu"},
		{ID: 3, QI: []float64{32, 1, 53710}, Sensitive: "cancer"},
		{ID: 4, QI: []float64{36, 1, 53715}, Sensitive: "torn acl"},
		{ID: 5, QI: []float64{48, 0, 52108}, Sensitive: "flu"},
		{ID: 6, QI: []float64{56, 1, 52100}, Sensitive: "whiplash"},
	}
	cons := anonmodel.KAnonymity{K: 2}
	bp := &BPTreeAnonymizer{Schema: s, Constraint: cons, Key: 0}
	ps, err := bp.Anonymize(recs)
	if err != nil {
		t.Fatal(err)
	}
	if err := anonmodel.CheckAnonymity(ps, cons); err != nil {
		t.Fatal(err)
	}
	if anonmodel.TotalRecords(ps) != 6 {
		t.Fatal("lost records")
	}
	if bp.Name() != "bptree[0]" {
		t.Fatalf("Name = %q", bp.Name())
	}
	if bp.Tree() == nil || bp.Tree().Len() != 6 {
		t.Fatal("tree not exposed")
	}
	// Age groups must be contiguous runs of the sorted ages — the
	// defining property of the B+-tree grouping in Figure 1(c).
	for i := 1; i < len(ps); i++ {
		if ps[i].Box[0].Lo < ps[i-1].Box[0].Hi {
			t.Fatalf("age groups overlap: %v then %v", ps[i-1].Box[0], ps[i].Box[0])
		}
	}
	// R1 and R2 (ages 21, 26) must share a partition: with k=2 no valid
	// contiguous grouping separates them without isolating one.
	for _, p := range ps {
		has1, has2 := false, false
		for _, r := range p.Records {
			if r.ID == 1 {
				has1 = true
			}
			if r.ID == 2 {
				has2 = true
			}
		}
		if has1 != has2 {
			t.Fatal("R1 and R2 separated")
		}
	}
	// Degenerate inputs.
	if _, err := (&BPTreeAnonymizer{Schema: s}).Anonymize(recs); err == nil {
		t.Fatal("nil constraint accepted")
	}
	out, err := (&BPTreeAnonymizer{Schema: s, Constraint: cons}).Anonymize(nil)
	if err != nil || out != nil {
		t.Fatalf("empty input: %v %v", out, err)
	}
	if _, err := (&BPTreeAnonymizer{Schema: s, Constraint: cons, Key: 9}).Anonymize(recs); err == nil {
		t.Fatal("bad key accepted")
	}
}

// Property (testing/quick): for random base partition size sequences
// and random k1, leaf scan emits groups that (a) are unions of whole
// base partitions in order, (b) all satisfy k1, and (c) preserve every
// record exactly once.
func TestQuickLeafScanProperties(t *testing.T) {
	f := func(sizes []uint8, kRaw uint8) bool {
		k1 := int(kRaw%20) + 1
		var base []anonmodel.Partition
		id := int64(0)
		total := 0
		for i, s := range sizes {
			n := int(s%7) + 1 // partitions of 1..7 records
			var recs []attr.Record
			for j := 0; j < n; j++ {
				recs = append(recs, attr.Record{ID: id, QI: []float64{float64(i), float64(j)}})
				id++
			}
			total += n
			box := attr.NewBox(2)
			for _, r := range recs {
				box.Include(r.QI)
			}
			base = append(base, anonmodel.Partition{Box: box, Records: recs})
		}
		out, err := LeafScan(base, anonmodel.KAnonymity{K: k1})
		if total < k1 {
			// Infeasible input must error (or be empty input).
			return err != nil || (total == 0 && out == nil)
		}
		if err != nil {
			return false
		}
		// All groups satisfy k1 and records are preserved in order.
		seen := int64(0)
		for _, p := range out {
			if p.Size() < k1 {
				return false
			}
			for _, r := range p.Records {
				if r.ID != seen { // whole partitions, in order
					return false
				}
				seen++
			}
		}
		return seen == id
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(404))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
