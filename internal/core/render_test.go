package core

import (
	"bytes"
	"strings"
	"testing"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/dataset"
)

// figure1Partitions reproduces the paper's Figure 1(b): three partitions
// of the patient table.
func figure1Partitions() []anonmodel.Partition {
	return []anonmodel.Partition{
		{
			Box: attr.Box{{Lo: 20, Hi: 30}, {Lo: 0, Hi: 0}, {Lo: 53706, Hi: 53706}},
			Records: []attr.Record{
				{ID: 1, QI: []float64{21, 0, 53706}, Sensitive: "anemia"},
				{ID: 2, QI: []float64{26, 0, 53706}, Sensitive: "flu"},
			},
		},
		{
			Box: attr.Box{{Lo: 30, Hi: 40}, {Lo: 1, Hi: 1}, {Lo: 53710, Hi: 53715}},
			Records: []attr.Record{
				{ID: 3, QI: []float64{32, 1, 53710}, Sensitive: "cancer"},
				{ID: 4, QI: []float64{36, 1, 53715}, Sensitive: "torn acl"},
			},
		},
		{
			Box: attr.Box{{Lo: 45, Hi: 60}, {Lo: 0, Hi: 1}, {Lo: 52100, Hi: 52108}},
			Records: []attr.Record{
				{ID: 5, QI: []float64{48, 0, 52108}, Sensitive: "flu"},
				{ID: 6, QI: []float64{56, 1, 52100}, Sensitive: "whiplash"},
			},
		},
	}
}

func TestRenderFigure1(t *testing.T) {
	s := dataset.PatientsSchema() // sex carries the flat M/F hierarchy
	header, rows, err := Render(s, figure1Partitions())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(header, ",") != "age,sex,zipcode,ailment" {
		t.Fatalf("header %v", header)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	// Row for R1: [20 - 30], M, 53706, anemia.
	if got := strings.Join(rows[0], "|"); got != "[20 - 30]|M|53706|anemia" {
		t.Fatalf("row 1 = %q", got)
	}
	// Row for R5: sex generalized across M and F renders the hierarchy
	// root "*", exactly as Figure 1(b).
	if got := strings.Join(rows[4], "|"); got != "[45 - 60]|*|[52100 - 52108]|flu" {
		t.Fatalf("row 5 = %q", got)
	}
	// Rows are ordered by record ID.
	if rows[2][3] != "cancer" || rows[5][3] != "whiplash" {
		t.Fatalf("row order wrong: %v", rows)
	}
}

func TestWriteCSV(t *testing.T) {
	s := dataset.PatientsSchema()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, s, figure1Partitions()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 7 {
		t.Fatalf("%d CSV lines", len(lines))
	}
	if lines[0] != "age,sex,zipcode,ailment" {
		t.Fatalf("CSV header %q", lines[0])
	}
	if !strings.Contains(lines[1], "[20 - 30]") {
		t.Fatalf("CSV row %q", lines[1])
	}
}

func TestRenderNoSensitive(t *testing.T) {
	s := dataset.LandsEndSchema()
	recs := dataset.GenerateLandsEnd(20, 99)
	ps := []anonmodel.Partition{{Box: attr.DomainOf(8, recs), Records: recs}}
	header, rows, err := Render(s, ps)
	if err != nil {
		t.Fatal(err)
	}
	if len(header) != 8 {
		t.Fatalf("header %v", header)
	}
	if len(rows) != 20 || len(rows[0]) != 8 {
		t.Fatalf("rows %dx%d", len(rows), len(rows[0]))
	}
}

func TestRenderEndToEnd(t *testing.T) {
	// Full pipeline: anonymize patients with the index, render, check
	// that every original value is covered by its rendered range.
	a := newPatientRT(t, 5, false)
	recs := dataset.GeneratePatients(200, 100)
	if err := a.Load(recs); err != nil {
		t.Fatal(err)
	}
	ps, err := a.Partitions(0)
	if err != nil {
		t.Fatal(err)
	}
	_, rows, err := Render(dataset.PatientsSchema(), ps)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 200 {
		t.Fatalf("%d rows", len(rows))
	}
	// Rows are ID-ordered, so row i belongs to record with the i-th
	// smallest ID == recs[i] (IDs are 0..199 here).
	for i, r := range recs {
		sexCell := rows[i][1]
		switch sexCell {
		case "M":
			if r.QI[1] != 0 {
				t.Fatalf("row %d rendered M for sex=%v", i, r.QI[1])
			}
		case "F":
			if r.QI[1] != 1 {
				t.Fatalf("row %d rendered F for sex=%v", i, r.QI[1])
			}
		case "*":
			// any value allowed
		default:
			t.Fatalf("row %d: unexpected sex cell %q", i, sexCell)
		}
	}
}
