package core_test

import (
	"fmt"
	"os"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/core"
	"spatialanon/internal/dataset"
)

// The paper's Figure 1(a) patient table.
func figure1Records() []attr.Record {
	return []attr.Record{
		{ID: 1, QI: []float64{21, 0, 53706}, Sensitive: "anemia"},
		{ID: 2, QI: []float64{26, 0, 53706}, Sensitive: "flu"},
		{ID: 3, QI: []float64{32, 1, 53710}, Sensitive: "cancer"},
		{ID: 4, QI: []float64{36, 1, 53715}, Sensitive: "torn acl"},
		{ID: 5, QI: []float64{48, 0, 52108}, Sensitive: "flu"},
		{ID: 6, QI: []float64{56, 1, 52100}, Sensitive: "whiplash"},
	}
}

// Anonymizing is building an index: load records, then materialize a
// k-anonymous view at any granularity with one leaf scan.
func ExampleRTreeAnonymizer() {
	rt, err := core.NewRTreeAnonymizer(core.RTreeConfig{
		Schema: dataset.PatientsSchema(),
		BaseK:  2,
	})
	if err != nil {
		panic(err)
	}
	if err := rt.Load(figure1Records()); err != nil {
		panic(err)
	}
	view, err := rt.Partitions(2)
	if err != nil {
		panic(err)
	}
	fmt.Println("records:", rt.Len())
	fmt.Println("2-anonymous:", anonmodel.CheckAnonymity(view, anonmodel.KAnonymity{K: 2}) == nil)
	// Output:
	// records: 6
	// 2-anonymous: true
}

// The leaf-scan algorithm (Figure 5) groups whole base partitions until
// each group satisfies the requested granularity.
func ExampleLeafScan() {
	base := []anonmodel.Partition{
		{Box: attr.Box{{Lo: 20, Hi: 26}}, Records: make([]attr.Record, 2)},
		{Box: attr.Box{{Lo: 32, Hi: 36}}, Records: make([]attr.Record, 2)},
		{Box: attr.Box{{Lo: 48, Hi: 56}}, Records: make([]attr.Record, 2)},
	}
	groups, err := core.LeafScan(base, anonmodel.KAnonymity{K: 4})
	if err != nil {
		panic(err)
	}
	for _, g := range groups {
		fmt.Printf("%d records in %v\n", g.Size(), g.Box)
	}
	// Output:
	// 6 records in ([20 - 56])
}

// Releases derived from one index are jointly collusion-safe: the
// verifier checks that correlating them never isolates fewer than k
// records.
func ExampleVerifyCollusionSafety() {
	rt, _ := core.NewRTreeAnonymizer(core.RTreeConfig{
		Schema: dataset.PatientsSchema(),
		BaseK:  5,
	})
	if err := rt.Load(dataset.GeneratePatients(500, 1)); err != nil {
		panic(err)
	}
	releases, err := rt.MultiGranular([]int{5, 25})
	if err != nil {
		panic(err)
	}
	err = core.VerifyCollusionSafety(
		[][]anonmodel.Partition{releases[0].Partitions, releases[1].Partitions}, 5)
	fmt.Println("safe:", err == nil)
	// Output:
	// safe: true
}

// WriteCSV renders generalized values the way the paper's Figure 1(b)
// prints them: ranges for numeric attributes, hierarchy labels (with
// "*" at the root) for categorical ones.
func ExampleWriteCSV() {
	ps := []anonmodel.Partition{{
		Box: attr.Box{{Lo: 20, Hi: 30}, {Lo: 0, Hi: 0}, {Lo: 53706, Hi: 53706}},
		Records: []attr.Record{
			{ID: 1, QI: []float64{21, 0, 53706}, Sensitive: "anemia"},
			{ID: 2, QI: []float64{26, 0, 53706}, Sensitive: "flu"},
		},
	}}
	if err := core.WriteCSV(os.Stdout, dataset.PatientsSchema(), ps); err != nil {
		panic(err)
	}
	// Output:
	// age,sex,zipcode,ailment
	// [20 - 30],M,53706,anemia
	// [20 - 30],M,53706,flu
}
