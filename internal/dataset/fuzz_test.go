package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"spatialanon/internal/attr"
)

// fuzzSchemas are the three shapes the repo ships; fuzz inputs are run
// against each so column-count and sensitive-column handling both get
// exercised (only PatientsSchema declares a sensitive attribute).
func fuzzSchemas() []*attr.Schema {
	return []*attr.Schema{PatientsSchema(), LandsEndSchema(), AgrawalSchema()}
}

// FuzzReadCSV asserts the parser's contract on arbitrary bytes: it
// either returns an error or returns records that are well-formed for
// the schema — never a panic, never a non-finite coordinate.
func FuzzReadCSV(f *testing.F) {
	f.Add("age,sex,zip,ailment\n30,1,53000,flu\n")
	f.Add("age,sex,zip,ailment\nNaN,0,53000,flu\n")
	f.Add("age,sex,zip,ailment\n+Inf,0,53000,flu\n")
	f.Add("")
	f.Add("age,sex\n1")
	f.Add("\"unterminated")
	f.Add("age,sex,zip,ailment\n1,2\n")
	f.Fuzz(func(t *testing.T, data string) {
		for _, s := range fuzzSchemas() {
			recs, err := ReadCSV(strings.NewReader(data), s)
			if err != nil {
				continue
			}
			for _, r := range recs {
				if len(r.QI) != s.Dims() {
					t.Fatalf("record with %d attributes under %d-dim schema", len(r.QI), s.Dims())
				}
				for _, v := range r.QI {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Fatalf("non-finite coordinate %v accepted", v)
					}
				}
			}
		}
	})
}

// FuzzReadBinary asserts the fixed-width decoder never panics and
// never silently drops a suffix: on success the byte length must be an
// exact multiple of the record size.
func FuzzReadBinary(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(bytes.Repeat([]byte{0xff}, 36))
	f.Add(bytes.Repeat([]byte{7}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, dims := range []int{1, 3, 8, 9} {
			c := NewBinaryCodec(dims)
			recs, err := c.ReadBinary(bytes.NewReader(data))
			if err != nil {
				continue
			}
			if len(data)%c.RecordSize() != 0 {
				t.Fatalf("decoded %d bytes as %d records of %d bytes without error",
					len(data), len(recs), c.RecordSize())
			}
			if len(recs) != len(data)/c.RecordSize() {
				t.Fatalf("decoded %d records from %d bytes (record size %d)",
					len(recs), len(data), c.RecordSize())
			}
		}
	})
}
