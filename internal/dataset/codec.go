package dataset

import (
	"bufio"
	"encoding/binary"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"

	"spatialanon/internal/attr"
)

// BinaryCodec encodes records in the fixed-width binary layout the paper
// reports: one unsigned 32-bit little-endian integer per quasi-identifier
// attribute, so Lands End records occupy 32 bytes and Agrawal records 36
// bytes. The sensitive value is not part of the binary layout (the
// paper's two large data sets treat every attribute as quasi-identifier).
type BinaryCodec struct {
	dims int
}

// NewBinaryCodec returns a codec for records with the given number of
// quasi-identifier attributes.
func NewBinaryCodec(dims int) *BinaryCodec { return &BinaryCodec{dims: dims} }

// RecordSize returns the encoded size of one record in bytes.
func (c *BinaryCodec) RecordSize() int { return 4 * c.dims }

// Encode writes the record's QI values into buf, which must be at least
// RecordSize() bytes. Values are truncated to uint32.
func (c *BinaryCodec) Encode(r attr.Record, buf []byte) error {
	if len(r.QI) != c.dims {
		return fmt.Errorf("dataset: record has %d attributes, codec expects %d", len(r.QI), c.dims)
	}
	if len(buf) < c.RecordSize() {
		return fmt.Errorf("dataset: buffer of %d bytes, need %d", len(buf), c.RecordSize())
	}
	for i, v := range r.QI {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(int64(v)))
	}
	return nil
}

// Decode reads one record from buf. The record ID must be assigned by the
// caller (binary files carry no IDs; position is identity).
func (c *BinaryCodec) Decode(buf []byte) (attr.Record, error) {
	if len(buf) < c.RecordSize() {
		return attr.Record{}, fmt.Errorf("dataset: buffer of %d bytes, need %d", len(buf), c.RecordSize())
	}
	qi := make([]float64, c.dims)
	for i := range qi {
		qi[i] = float64(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return attr.Record{QI: qi}, nil
}

// WriteBinary streams all records from s to w in the fixed-width layout.
// It returns the number of records written.
func (c *BinaryCodec) WriteBinary(w io.Writer, s *Stream) (int, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	buf := make([]byte, c.RecordSize())
	n := 0
	for {
		r, ok := s.Next()
		if !ok {
			break
		}
		if err := c.Encode(r, buf); err != nil {
			return n, err
		}
		if _, err := bw.Write(buf); err != nil {
			return n, err
		}
		n++
	}
	return n, bw.Flush()
}

// ReadBinary reads every record from r, assigning sequential IDs from 0.
func (c *BinaryCodec) ReadBinary(r io.Reader) ([]attr.Record, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	buf := make([]byte, c.RecordSize())
	var out []attr.Record
	for id := int64(0); ; id++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			if err == io.EOF {
				return out, nil
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return nil, fmt.Errorf("dataset: truncated record at id %d", id)
			}
			return nil, err
		}
		rec, err := c.Decode(buf)
		if err != nil {
			return nil, err
		}
		rec.ID = id
		out = append(out, rec)
	}
}

// WriteCSV writes records as CSV with a header row of attribute names
// (plus the sensitive attribute name when the schema declares one).
func WriteCSV(w io.Writer, s *attr.Schema, recs []attr.Record) error {
	cw := csv.NewWriter(w)
	header := s.Names()
	if s.Sensitive != "" {
		header = append(header, s.Sensitive)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, 0, len(header))
	for _, r := range recs {
		if len(r.QI) != s.Dims() {
			return fmt.Errorf("dataset: record %d has %d attributes, schema has %d", r.ID, len(r.QI), s.Dims())
		}
		row = row[:0]
		for _, v := range r.QI {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if s.Sensitive != "" {
			row = append(row, r.Sensitive)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads records written by WriteCSV (or any CSV whose first
// columns are the schema's attributes, with an optional trailing
// sensitive column). IDs are assigned sequentially from 0.
func ReadCSV(r io.Reader, s *attr.Schema) ([]attr.Record, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: empty CSV")
	}
	header := rows[0]
	wantCols := s.Dims()
	if s.Sensitive != "" {
		wantCols++
	}
	if len(header) < wantCols {
		return nil, fmt.Errorf("dataset: CSV has %d columns, schema needs %d", len(header), wantCols)
	}
	for i, a := range s.Attrs {
		if header[i] != a.Name {
			return nil, fmt.Errorf("dataset: CSV column %d is %q, schema expects %q", i, header[i], a.Name)
		}
	}
	out := make([]attr.Record, 0, len(rows)-1)
	for ri, row := range rows[1:] {
		if len(row) < wantCols {
			return nil, fmt.Errorf("dataset: row %d has %d fields, need %d", ri+1, len(row), wantCols)
		}
		qi := make([]float64, s.Dims())
		for i := range qi {
			v, err := strconv.ParseFloat(row[i], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d column %q: %w", ri+1, s.Attrs[i].Name, err)
			}
			// ParseFloat accepts "NaN" and "Inf"; neither has a place in a
			// half-open spatial domain (NaN breaks every comparison, Inf
			// collides with the index's unbounded routing regions).
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("dataset: row %d column %q: non-finite value %q", ri+1, s.Attrs[i].Name, row[i])
			}
			qi[i] = v
		}
		rec := attr.Record{ID: int64(ri), QI: qi}
		if s.Sensitive != "" {
			rec.Sensitive = row[s.Dims()]
		}
		out = append(out, rec)
	}
	return out, nil
}
