package dataset

import (
	"spatialanon/internal/attr"
	"spatialanon/internal/detrng"
)

// Lands End-like data set: eight attributes matching the paper's
// description of the real data set ("zipcode, order date, gender, style,
// price, quantity, cost and shipment"), each coded as a 4-byte integer
// for the 32-byte binary record format.
//
// Shape choices (documented substitutions for the proprietary source):
//
//   - zipcode: customer zipcodes cluster around population centers. We
//     draw one of 500 cluster centers with Zipf skew, then a local
//     offset, giving the multimodal, heavily skewed distribution real
//     customer files show.
//   - order date: days since the epoch of the file, 0..2190 (six years),
//     with a seasonal surge in the last quarter of each year.
//   - gender: categorical {M, F}, coded 0/1, slightly F-skewed (catalog
//     retail).
//   - style: 400 catalog styles with Zipf-skewed popularity.
//   - price: base price depends on style (so style and price correlate),
//     plus noise; dollars 5..500.
//   - quantity: small counts 1..10, geometric-ish.
//   - cost: 55%..80% of price (correlated attribute pair).
//   - shipment: six ship modes, skewed toward ground.
const (
	landsEndZipClusters = 500
	landsEndDays        = 2190
	landsEndStyles      = 400
	landsEndShipModes   = 6
)

// LandsEndSchema returns the 8-attribute quasi-identifier schema of the
// Lands End-like data set. As in the paper, every attribute is part of
// the quasi-identifier and categorical attributes are integer-coded, so
// there is no sensitive attribute.
func LandsEndSchema() *attr.Schema {
	return &attr.Schema{
		Attrs: []attr.Attribute{
			{Name: "zipcode", Kind: attr.Numeric},
			{Name: "order_date", Kind: attr.Numeric},
			{Name: "gender", Kind: attr.Categorical},
			{Name: "style", Kind: attr.Categorical},
			{Name: "price", Kind: attr.Numeric},
			{Name: "quantity", Kind: attr.Numeric},
			{Name: "cost", Kind: attr.Numeric},
			{Name: "shipment", Kind: attr.Categorical},
		},
	}
}

// landsEndRecord generates record id deterministically under seed.
func landsEndRecord(seed, id int64) attr.Record {
	rng := recRand(seed, id)

	cluster := zipfIndex(rng, landsEndZipClusters, 0.6)
	zipBase := 10000 + cluster*180 // spread clusters over [10000, 99999]
	zip := zipBase + rng.Intn(120)

	day := rng.Intn(landsEndDays)
	if rng.Float64() < 0.35 { // seasonal surge: re-draw into Q4 of a year
		year := rng.Intn(landsEndDays / 365)
		day = year*365 + 273 + rng.Intn(92)
	}

	gender := 0
	if rng.Float64() < 0.58 {
		gender = 1
	}

	style := zipfIndex(rng, landsEndStyles, 0.7)
	basePrice := 5 + (style*37)%480 // style-determined base price
	price := basePrice + rng.Intn(21) - 10
	if price < 5 {
		price = 5
	}

	quantity := 1
	for quantity < 10 && rng.Float64() < 0.35 {
		quantity++
	}

	cost := int(float64(price) * (0.55 + 0.25*rng.Float64()))
	if cost < 1 {
		cost = 1
	}

	ship := 0
	switch v := rng.Float64(); {
	case v < 0.55:
		ship = 0
	case v < 0.75:
		ship = 1
	case v < 0.86:
		ship = 2
	case v < 0.93:
		ship = 3
	case v < 0.98:
		ship = 4
	default:
		ship = 5
	}

	return attr.Record{
		ID: id,
		QI: []float64{
			float64(zip),
			float64(day),
			float64(gender),
			float64(style),
			float64(price),
			float64(quantity),
			float64(cost),
			float64(ship),
		},
	}
}

// LandsEndStream returns a stream of n Lands End-like records.
func LandsEndStream(n int, seed int64) *Stream {
	return newStream(n, func(id int64) attr.Record { return landsEndRecord(seed, id) })
}

// GenerateLandsEnd materializes n Lands End-like records.
func GenerateLandsEnd(n int, seed int64) []attr.Record {
	return Collect(LandsEndStream(n, seed))
}

// Agrawal et al. synthetic generator [1] — the paper's second data set.
// Nine attributes, 36-byte records. Distributions follow the published
// generator: salary uniform [20k,150k]; commission 0 if salary >= 75k
// else uniform [10k,75k]; age uniform [20,80]; elevel uniform {0..4};
// car uniform {1..20}; zipcode uniform {0..8}; hvalue uniform
// [0.5,1.5] x k x 100k where k depends on zipcode; hyears uniform
// [1,30]; loan uniform [0,500k].

// AgrawalSchema returns the 9-attribute schema of the Agrawal et al.
// synthetic data set.
func AgrawalSchema() *attr.Schema {
	return &attr.Schema{
		Attrs: []attr.Attribute{
			{Name: "salary", Kind: attr.Numeric},
			{Name: "commission", Kind: attr.Numeric},
			{Name: "age", Kind: attr.Numeric},
			{Name: "elevel", Kind: attr.Categorical},
			{Name: "car", Kind: attr.Categorical},
			{Name: "zipcode", Kind: attr.Categorical},
			{Name: "hvalue", Kind: attr.Numeric},
			{Name: "hyears", Kind: attr.Numeric},
			{Name: "loan", Kind: attr.Numeric},
		},
	}
}

func agrawalRecord(seed, id int64) attr.Record {
	rng := recRand(seed, id)

	salary := 20000 + rng.Intn(130001)
	commission := 0
	if salary < 75000 {
		commission = 10000 + rng.Intn(65001)
	}
	age := 20 + rng.Intn(61)
	elevel := rng.Intn(5)
	car := 1 + rng.Intn(20)
	zipcode := rng.Intn(9)
	k := zipcode + 1
	hvalue := int(float64(k) * 100000 * (0.5 + rng.Float64()))
	hyears := 1 + rng.Intn(30)
	loan := rng.Intn(500001)

	return attr.Record{
		ID: id,
		QI: []float64{
			float64(salary),
			float64(commission),
			float64(age),
			float64(elevel),
			float64(car),
			float64(zipcode),
			float64(hvalue),
			float64(hyears),
			float64(loan),
		},
	}
}

// AgrawalStream returns a stream of n Agrawal et al. records.
func AgrawalStream(n int, seed int64) *Stream {
	return newStream(n, func(id int64) attr.Record { return agrawalRecord(seed, id) })
}

// GenerateAgrawal materializes n Agrawal et al. records.
func GenerateAgrawal(n int, seed int64) []attr.Record {
	return Collect(AgrawalStream(n, seed))
}

// Patients toy data set mirroring Figure 1 of the paper: quasi-identifier
// (Age, Sex, Zipcode) plus the sensitive attribute Ailment. Used by
// examples and by diversity-constraint tests, which need a genuine
// sensitive attribute.

var patientAilments = []string{
	"anemia", "flu", "cancer", "torn acl", "whiplash",
	"asthma", "diabetes", "migraine", "fracture", "allergy",
}

// PatientsSchema returns the Figure 1 schema: Age, Sex, Zipcode with
// sensitive attribute Ailment. Sex carries a flat generalization
// hierarchy so that fully generalized values render as the paper's "*".
func PatientsSchema() *attr.Schema {
	return &attr.Schema{
		Attrs: []attr.Attribute{
			{Name: "age", Kind: attr.Numeric},
			{Name: "sex", Kind: attr.Categorical, Hierarchy: attr.MustFlatHierarchy("*", "M", "F")},
			{Name: "zipcode", Kind: attr.Numeric},
		},
		Sensitive: "ailment",
	}
}

func patientRecord(seed, id int64) attr.Record {
	rng := recRand(seed, id)
	age := 18 + rng.Intn(73)
	sex := rng.Intn(2)
	zip := 52100 + rng.Intn(1700)
	ailment := patientAilments[rng.Intn(len(patientAilments))]
	return attr.Record{
		ID:        id,
		QI:        []float64{float64(age), float64(sex), float64(zip)},
		Sensitive: ailment,
	}
}

// PatientsStream returns a stream of n patient records.
func PatientsStream(n int, seed int64) *Stream {
	return newStream(n, func(id int64) attr.Record { return patientRecord(seed, id) })
}

// GeneratePatients materializes n patient records.
func GeneratePatients(n int, seed int64) []attr.Record {
	return Collect(PatientsStream(n, seed))
}

// Shuffle permutes records in place, deterministically under seed. The
// incremental experiments shuffle once so that batch order is not
// correlated with generation order.
func Shuffle(recs []attr.Record, seed int64) {
	rng := detrng.New(seed)
	rng.Shuffle(len(recs), func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })
}

// Sample reservoir-samples m records from a stream, deterministically
// under seed. Used to pick query endpoints from data sets too large to
// materialize.
func Sample(s *Stream, m int, seed int64) []attr.Record {
	rng := detrng.New(seed)
	out := make([]attr.Record, 0, m)
	seen := 0
	for {
		r, ok := s.Next()
		if !ok {
			return out
		}
		seen++
		if len(out) < m {
			out = append(out, r)
			continue
		}
		if j := rng.Intn(seen); j < m {
			out[j] = r
		}
	}
}
