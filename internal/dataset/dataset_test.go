package dataset

import (
	"bytes"
	"math"
	"testing"

	"spatialanon/internal/attr"
)

func TestStreamMatchesMaterialized(t *testing.T) {
	for _, gen := range []struct {
		name string
		mk   func(n int, seed int64) []attr.Record
		st   func(n int, seed int64) *Stream
	}{
		{"landsend", GenerateLandsEnd, LandsEndStream},
		{"agrawal", GenerateAgrawal, AgrawalStream},
		{"patients", GeneratePatients, PatientsStream},
	} {
		t.Run(gen.name, func(t *testing.T) {
			recs := gen.mk(200, 42)
			s := gen.st(200, 42)
			for i, want := range recs {
				got, ok := s.Next()
				if !ok {
					t.Fatalf("stream exhausted at %d", i)
				}
				if got.ID != want.ID || got.Sensitive != want.Sensitive {
					t.Fatalf("record %d differs: %+v vs %+v", i, got, want)
				}
				for d := range want.QI {
					if got.QI[d] != want.QI[d] {
						t.Fatalf("record %d attr %d: %v vs %v", i, d, got.QI[d], want.QI[d])
					}
				}
			}
			if _, ok := s.Next(); ok {
				t.Fatal("stream produced extra record")
			}
		})
	}
}

func TestStreamDeterminism(t *testing.T) {
	a := GenerateLandsEnd(100, 7)
	b := GenerateLandsEnd(100, 7)
	for i := range a {
		for d := range a[i].QI {
			if a[i].QI[d] != b[i].QI[d] {
				t.Fatalf("nondeterministic generation at record %d", i)
			}
		}
	}
	c := GenerateLandsEnd(100, 8)
	same := true
	for i := range a {
		for d := range a[i].QI {
			if a[i].QI[d] != c[i].QI[d] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestPrefixStability(t *testing.T) {
	// The incremental experiments rely on: generating n records yields
	// the same records as the first n of a longer generation.
	long := GenerateLandsEnd(300, 5)
	short := GenerateLandsEnd(100, 5)
	for i := range short {
		for d := range short[i].QI {
			if short[i].QI[d] != long[i].QI[d] {
				t.Fatalf("prefix instability at record %d", i)
			}
		}
	}
}

func TestNextBatch(t *testing.T) {
	s := AgrawalStream(25, 1)
	b1 := s.NextBatch(10)
	b2 := s.NextBatch(10)
	b3 := s.NextBatch(10)
	b4 := s.NextBatch(10)
	if len(b1) != 10 || len(b2) != 10 || len(b3) != 5 || len(b4) != 0 {
		t.Fatalf("batch sizes: %d %d %d %d", len(b1), len(b2), len(b3), len(b4))
	}
	if b3[4].ID != 24 {
		t.Fatalf("last record ID = %d, want 24", b3[4].ID)
	}
	if s.Remaining() != 0 {
		t.Fatalf("Remaining = %d", s.Remaining())
	}
}

func TestLandsEndShape(t *testing.T) {
	schema := LandsEndSchema()
	if err := schema.Validate(); err != nil {
		t.Fatal(err)
	}
	if schema.Dims() != 8 {
		t.Fatalf("Lands End dims = %d, want 8", schema.Dims())
	}
	recs := GenerateLandsEnd(5000, 11)
	dom := attr.DomainOf(8, recs)
	zi := schema.AttrIndex("zipcode")
	if dom[zi].Lo < 10000 || dom[zi].Hi > 99999 {
		t.Fatalf("zipcode range %v out of bounds", dom[zi])
	}
	gi := schema.AttrIndex("gender")
	if dom[gi].Lo != 0 || dom[gi].Hi != 1 {
		t.Fatalf("gender range %v, want [0,1]", dom[gi])
	}
	// price/cost correlation: cost must always be below price.
	pi, ci := schema.AttrIndex("price"), schema.AttrIndex("cost")
	for _, r := range recs {
		if r.QI[ci] > r.QI[pi] {
			t.Fatalf("cost %v exceeds price %v", r.QI[ci], r.QI[pi])
		}
	}
	qi := schema.AttrIndex("quantity")
	for _, r := range recs {
		if r.QI[qi] < 1 || r.QI[qi] > 10 {
			t.Fatalf("quantity %v out of [1,10]", r.QI[qi])
		}
	}
	// zipcode must be skewed: top decile of clusters should hold well
	// over a tenth of the mass.
	counts := map[int]int{}
	for _, r := range recs {
		counts[int(r.QI[zi])/1800]++ // coarse buckets
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max) < 1.5*float64(len(recs))/float64(len(counts)) {
		t.Fatalf("zipcode distribution looks uniform: max bucket %d of %d buckets over %d recs", max, len(counts), len(recs))
	}
}

func TestAgrawalShape(t *testing.T) {
	schema := AgrawalSchema()
	if err := schema.Validate(); err != nil {
		t.Fatal(err)
	}
	if schema.Dims() != 9 {
		t.Fatalf("dims = %d, want 9", schema.Dims())
	}
	recs := GenerateAgrawal(5000, 3)
	si := schema.AttrIndex("salary")
	ci := schema.AttrIndex("commission")
	zi := schema.AttrIndex("zipcode")
	hi := schema.AttrIndex("hvalue")
	for _, r := range recs {
		sal, com := r.QI[si], r.QI[ci]
		if sal < 20000 || sal > 150000 {
			t.Fatalf("salary %v out of range", sal)
		}
		// The generator's rule: commission is zero iff salary >= 75k.
		if sal >= 75000 && com != 0 {
			t.Fatalf("salary %v should force commission 0, got %v", sal, com)
		}
		if sal < 75000 && (com < 10000 || com > 75000) {
			t.Fatalf("commission %v out of [10k,75k] for salary %v", com, sal)
		}
		z, hv := r.QI[zi], r.QI[hi]
		if z < 0 || z > 8 {
			t.Fatalf("zipcode %v out of {0..8}", z)
		}
		k := z + 1
		if hv < 0.5*k*100000 || hv > 1.5*k*100000 {
			t.Fatalf("hvalue %v outside zipcode-%v band", hv, z)
		}
	}
}

func TestPatientsShape(t *testing.T) {
	schema := PatientsSchema()
	if err := schema.Validate(); err != nil {
		t.Fatal(err)
	}
	recs := GeneratePatients(500, 9)
	seen := map[string]bool{}
	for _, r := range recs {
		if r.Sensitive == "" {
			t.Fatal("patient record lost its ailment")
		}
		seen[r.Sensitive] = true
		if r.QI[0] < 18 || r.QI[0] > 90 {
			t.Fatalf("age %v out of range", r.QI[0])
		}
	}
	if len(seen) < 5 {
		t.Fatalf("only %d distinct ailments in 500 records", len(seen))
	}
	h := schema.Attrs[1].Hierarchy
	if h == nil || h.LeafCount() != 2 {
		t.Fatal("sex hierarchy missing or wrong")
	}
}

func TestShuffleDeterministic(t *testing.T) {
	a := GenerateLandsEnd(50, 1)
	b := GenerateLandsEnd(50, 1)
	Shuffle(a, 99)
	Shuffle(b, 99)
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("Shuffle not deterministic")
		}
	}
	c := GenerateLandsEnd(50, 1)
	Shuffle(c, 100)
	diff := false
	for i := range a {
		if a[i].ID != c[i].ID {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different shuffle seeds gave identical order")
	}
}

func TestSample(t *testing.T) {
	got := Sample(AgrawalStream(1000, 2), 50, 7)
	if len(got) != 50 {
		t.Fatalf("sample size = %d", len(got))
	}
	ids := map[int64]bool{}
	for _, r := range got {
		if ids[r.ID] {
			t.Fatalf("duplicate id %d in sample", r.ID)
		}
		ids[r.ID] = true
	}
	// Sampling more than available returns everything.
	all := Sample(AgrawalStream(10, 2), 50, 7)
	if len(all) != 10 {
		t.Fatalf("over-sample size = %d", len(all))
	}
}

func TestBinaryCodecRoundTrip(t *testing.T) {
	c := NewBinaryCodec(8)
	if c.RecordSize() != 32 {
		t.Fatalf("Lands End record size = %d, want 32 (paper)", c.RecordSize())
	}
	if NewBinaryCodec(9).RecordSize() != 36 {
		t.Fatal("Agrawal record size must be 36 (paper)")
	}
	recs := GenerateLandsEnd(100, 4)
	var buf bytes.Buffer
	n, err := c.WriteBinary(&buf, LandsEndStream(100, 4))
	if err != nil || n != 100 {
		t.Fatalf("WriteBinary = %d, %v", n, err)
	}
	if buf.Len() != 3200 {
		t.Fatalf("file size = %d, want 3200", buf.Len())
	}
	back, err := c.ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 100 {
		t.Fatalf("read %d records", len(back))
	}
	for i := range recs {
		if back[i].ID != int64(i) {
			t.Fatalf("record %d got id %d", i, back[i].ID)
		}
		for d := range recs[i].QI {
			if back[i].QI[d] != recs[i].QI[d] {
				t.Fatalf("record %d attr %d: %v vs %v", i, d, back[i].QI[d], recs[i].QI[d])
			}
		}
	}
}

func TestBinaryCodecErrors(t *testing.T) {
	c := NewBinaryCodec(3)
	if err := c.Encode(attr.Record{QI: []float64{1}}, make([]byte, 12)); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if err := c.Encode(attr.Record{QI: []float64{1, 2, 3}}, make([]byte, 4)); err == nil {
		t.Fatal("short buffer accepted")
	}
	if _, err := c.Decode(make([]byte, 4)); err == nil {
		t.Fatal("short decode accepted")
	}
	if _, err := c.ReadBinary(bytes.NewReader(make([]byte, 13))); err == nil {
		t.Fatal("truncated file accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	schema := PatientsSchema()
	recs := GeneratePatients(40, 6)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, schema, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(bytes.NewReader(buf.Bytes()), schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 40 {
		t.Fatalf("read %d rows", len(back))
	}
	for i := range recs {
		if back[i].Sensitive != recs[i].Sensitive {
			t.Fatalf("row %d sensitive %q vs %q", i, back[i].Sensitive, recs[i].Sensitive)
		}
		for d := range recs[i].QI {
			if math.Abs(back[i].QI[d]-recs[i].QI[d]) > 1e-9 {
				t.Fatalf("row %d attr %d: %v vs %v", i, d, back[i].QI[d], recs[i].QI[d])
			}
		}
	}
}

func TestCSVErrors(t *testing.T) {
	schema := PatientsSchema()
	if _, err := ReadCSV(bytes.NewReader(nil), schema); err == nil {
		t.Fatal("empty CSV accepted")
	}
	if _, err := ReadCSV(bytes.NewReader([]byte("bad,header,row,x\n")), schema); err == nil {
		t.Fatal("mismatched header accepted")
	}
	if _, err := ReadCSV(bytes.NewReader([]byte("age,sex,zipcode,ailment\nnotanumber,0,53706,flu\n")), schema); err == nil {
		t.Fatal("non-numeric value accepted")
	}
	if _, err := ReadCSV(bytes.NewReader([]byte("age,sex,zipcode,ailment\n1,0\n")), schema); err == nil {
		t.Fatal("short row accepted")
	}
	bad := []attr.Record{{QI: []float64{1}}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, schema, bad); err == nil {
		t.Fatal("dimension mismatch accepted on write")
	}
}

func TestZipfIndexBounds(t *testing.T) {
	rng := recRand(1, 1)
	for i := 0; i < 10000; i++ {
		v := zipfIndex(rng, 10, 0.7)
		if v < 0 || v >= 10 {
			t.Fatalf("zipfIndex out of range: %d", v)
		}
	}
	if zipfIndex(rng, 1, 0.7) != 0 || zipfIndex(rng, 0, 0.7) != 0 {
		t.Fatal("degenerate n must return 0")
	}
}
