// Package dataset provides the data sources used by the paper's
// evaluation (Section 5), rebuilt synthetically:
//
//   - A Lands End-like customer-sale generator. The real Lands End data
//     set (4,591,581 records, 8 attributes, 32-byte records) is
//     proprietary; this generator reproduces its schema, mixed
//     numeric/categorical shape, value skew and attribute correlations.
//     Categorical attributes are integer-coded under an "intuitive
//     ordering", exactly as the paper's experimental configuration.
//   - A faithful port of the classic Agrawal et al. synthetic generator
//     [1] with its nine attributes (36-byte records), which the paper
//     used for the 100-million-record scaling experiments.
//   - A tiny "patients" generator mirroring Figure 1 of the paper, with
//     a genuine sensitive attribute (Ailment), used by examples and by
//     the l-diversity tests.
//
// All generators are deterministic given a seed, support both
// materialized ([]attr.Record) and streaming generation (for
// larger-than-memory loads), and agree record-for-record between the two
// modes.
package dataset

import (
	"math"
	"math/rand"

	"spatialanon/internal/attr"
	"spatialanon/internal/detrng"
)

// Stream produces records one at a time so that larger-than-memory data
// sets never need to be materialized. Generators return Streams whose
// output matches their materializing counterparts record for record.
type Stream struct {
	remaining int
	gen       func(id int64) attr.Record
	next      int64
}

// Next returns the next record, or ok=false when the stream is
// exhausted.
func (s *Stream) Next() (attr.Record, bool) {
	if s.remaining <= 0 {
		return attr.Record{}, false
	}
	s.remaining--
	r := s.gen(s.next)
	s.next++
	return r, true
}

// Remaining returns how many records the stream will still produce.
func (s *Stream) Remaining() int { return s.remaining }

// NextBatch returns up to max records, reusing none of its internal
// state; it returns a short (possibly empty) batch at end of stream.
func (s *Stream) NextBatch(max int) []attr.Record {
	if max > s.remaining {
		max = s.remaining
	}
	out := make([]attr.Record, 0, max)
	for i := 0; i < max; i++ {
		r, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out
}

// Collect drains a stream into a slice.
func Collect(s *Stream) []attr.Record {
	out := make([]attr.Record, 0, s.Remaining())
	for {
		r, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// newStream builds a Stream over a per-record deterministic generator.
// Each record's randomness is derived from (seed, id) so that streaming
// order, batching, and materialization all agree.
func newStream(n int, gen func(id int64) attr.Record) *Stream {
	return &Stream{remaining: n, gen: gen}
}

// recRand returns a deterministic RNG for record id under seed. Deriving
// per-record RNGs (rather than sharing one sequential RNG) keeps
// generation order-independent, which the incremental experiments rely on
// when they re-generate a prefix of a data set. detrng's SplitMix64
// streams seed in O(1), unlike math/rand's default source, which makes
// generating multi-million-record data sets cheap.
func recRand(seed, id int64) *rand.Rand {
	return detrng.New(detrng.Derive(seed, id))
}

// zipfIndex draws an index in [0,n) with a Zipf-like skew: rank r has
// probability proportional to 1/(r+1)^s. Implemented by inverse-CDF on a
// precomputed table would be faster, but generators are not on the
// measured path of any experiment, so clarity wins.
func zipfIndex(rng *rand.Rand, n int, s float64) int {
	// Rejection-free approximate inverse transform: u^(1/(1-s)) maps a
	// uniform variate to a power-law rank for s<1; clamp for safety.
	if n <= 1 {
		return 0
	}
	u := rng.Float64()
	r := int(math.Pow(u, 1/(1-s)) * float64(n))
	if r >= n {
		r = n - 1
	}
	return r
}
