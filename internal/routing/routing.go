// Package routing implements the per-epoch block-range accelerator
// for the serving read path: an SFC-ordered summary of one published
// release that routes a point or range query to the handful of blocks
// that can possibly answer it, instead of the linear partition walk
// query.CountAnonymized performs.
//
// The paper's thesis is that the anonymization tree IS a spatial
// index; this package applies the same idea to the *published* side.
// In the spirit of SLBRIN's block-range index over curve-reduced keys
// and GP-Tree's grid+prefix hybrid, Build sorts the release's
// partitions by the space-filling-curve key of their box min-corner
// (Z-order or Hilbert via sfc.Quantizer), copies their bounds into
// struct-of-arrays summaries (flat per-axis lo/hi float64 arrays, so
// a block scan walks contiguous memory), and groups consecutive curve
// positions into fixed-size blocks carrying a summary MBR and a
// disjoint curve-key range.
//
// A lookup then (1) binary-searches the block key ranges — Z-order
// keys are monotone under coordinate-wise dominance, so a partition
// containing point p (or intersecting a query whose upper corner is
// h) must have min-corner key <= key(p) (resp. key(h)), which prunes
// the tail of the block list in O(log B); (2) tests each surviving
// block's summary MBR against the query; and (3) scans only the
// partitions of overlapping blocks. Hilbert keys are not
// dominance-monotone, so under Hilbert step (1) is skipped and
// pruning rests on the MBR summaries alone — answers are identical
// either way, the curve only changes how much is pruned.
//
// Answers are bit-identical to the linear reference scans
// (query.CountAnonymized, query.EstimateUniform and the point
// variant): counts are integer sums, and the estimator re-orders its
// float64 contributions back into original partition order before
// accumulating, so the rounding sequence matches the linear scan
// exactly. All lookups are zero-allocation once a Scratch is warm.
package routing

import (
	"fmt"
	"math"
	"sort"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/sfc"
)

// DefaultBlockSize is the block width Build uses when Options leaves
// it zero: big enough that block summaries prune in useful chunks,
// small enough that a matched block's scan stays in cache.
const DefaultBlockSize = 64

// Options parameterizes Build.
type Options struct {
	// Curve orders the partitions. Z-order (the default) additionally
	// enables the key-range binary-search prune; Hilbert gives better
	// locality per block but prunes by MBR summaries only.
	Curve sfc.Curve
	// BlockSize is the target number of partitions per block
	// (<= 0 selects DefaultBlockSize). Blocks are extended past the
	// target so partitions with equal curve keys never straddle a
	// boundary, keeping block key ranges disjoint.
	BlockSize int
}

// Index is the immutable accelerator over one published release. It
// shares the release's partition slice (read-only, like every release
// product) and is safe for any number of concurrent readers, each
// with its own Scratch.
//
//anonylint:published — handed to concurrent readers via the view's accel cache; immutable after Build returns
type Index struct {
	parts     []anonmodel.Partition
	curve     sfc.Curve
	quant     *sfc.Quantizer
	dims      int
	blockSize int

	// Partition summary, indexed by curve position (rank along the
	// curve): original partition index, min-corner curve key
	// (ascending; ties broken by original index), record count, and
	// the cell volume feeding the uniform estimator.
	orig  []int32
	keys  []uint64
	sizes []int32
	vols  []float64
	// Axis-major flat bounds: partition at position pos spans
	// [lo[a*n+pos], hi[a*n+pos]] on axis a.
	lo, hi []float64

	// Block summary: block b covers positions [start[b], start[b+1]),
	// curve keys [bKeyLo[b], bKeyHi[b]] (pairwise disjoint, sorted),
	// and the axis-major MBR [bLo[a*nb+b], bHi[a*nb+b]].
	start    []int32
	bKeyLo   []uint64
	bKeyHi   []uint64
	bLo, bHi []float64
}

// Scratch is the reusable per-session state of the lookup methods:
// cell and corner buffers for quantizing query coordinates, and the
// candidate/contribution accumulators of the estimator. The zero
// value is ready to use; after the first lookup of each shape the
// methods allocate nothing.
type Scratch struct {
	cell    []uint32
	corner  []float64
	cand    []int32
	contrib []float64
}

// Build constructs the accelerator for one release. The partition
// slice is retained (not copied) and must not be mutated afterwards —
// the standard read-only contract of published releases. Partitions
// must share one dimensionality and carry non-empty boxes; a release
// that has passed verify.Release always does.
func Build(ps []anonmodel.Partition, opt Options) (*Index, error) {
	bs := opt.BlockSize
	if bs <= 0 {
		bs = DefaultBlockSize
	}
	ix := &Index{parts: ps, curve: opt.Curve, blockSize: bs}
	if len(ps) == 0 {
		return ix, nil
	}
	dims := len(ps[0].Box)
	if dims == 0 {
		return nil, fmt.Errorf("routing: partition 0 has a zero-dimensional box")
	}
	domain := attr.NewBox(dims)
	for i, p := range ps {
		if len(p.Box) != dims {
			return nil, fmt.Errorf("routing: partition %d has %d dimensions, partition 0 has %d", i, len(p.Box), dims)
		}
		if p.Box.IsEmpty() {
			return nil, fmt.Errorf("routing: partition %d has an empty box", i)
		}
		domain.IncludeBox(p.Box)
	}
	quant, err := sfc.NewQuantizer(domain, 0)
	if err != nil {
		return nil, fmt.Errorf("routing: %w", err)
	}
	ix.quant, ix.dims = quant, dims

	n := len(ps)
	rawKeys := make([]uint64, n)
	corner := make([]float64, dims)
	var cell []uint32
	for i, p := range ps {
		for a := 0; a < dims; a++ {
			corner[a] = p.Box[a].Lo
		}
		rawKeys[i], cell = quant.KeyInto(opt.Curve, corner, cell)
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	// Ties sort by original index, so the layout is a deterministic
	// function of the release alone.
	sort.Slice(order, func(a, b int) bool {
		ka, kb := rawKeys[order[a]], rawKeys[order[b]]
		if ka != kb {
			return ka < kb
		}
		return order[a] < order[b]
	})

	ix.orig = order
	ix.keys = make([]uint64, n)
	ix.sizes = make([]int32, n)
	ix.vols = make([]float64, n)
	ix.lo = make([]float64, dims*n)
	ix.hi = make([]float64, dims*n)
	for pos, oi := range order {
		p := ps[oi]
		ix.keys[pos] = rawKeys[oi]
		ix.sizes[pos] = int32(len(p.Records))
		ix.vols[pos] = cellsOf(p.Box)
		for a := 0; a < dims; a++ {
			ix.lo[a*n+pos] = p.Box[a].Lo
			ix.hi[a*n+pos] = p.Box[a].Hi
		}
	}

	// Cut blocks every bs positions, extending each cut to the end of
	// its run of equal keys: block key ranges end up sorted and
	// pairwise disjoint, so a key binary-search lands in at most one
	// block.
	ix.start = []int32{0}
	for s := 0; s < n; {
		e := s + bs
		if e > n {
			e = n
		}
		for e < n && ix.keys[e] == ix.keys[e-1] {
			e++
		}
		ix.start = append(ix.start, int32(e))
		s = e
	}
	nb := len(ix.start) - 1
	ix.bKeyLo = make([]uint64, nb)
	ix.bKeyHi = make([]uint64, nb)
	ix.bLo = make([]float64, dims*nb)
	ix.bHi = make([]float64, dims*nb)
	for b := 0; b < nb; b++ {
		s, e := int(ix.start[b]), int(ix.start[b+1])
		ix.bKeyLo[b] = ix.keys[s]
		ix.bKeyHi[b] = ix.keys[e-1]
		for a := 0; a < dims; a++ {
			blo, bhi := math.Inf(1), math.Inf(-1)
			for pos := s; pos < e; pos++ {
				if v := ix.lo[a*n+pos]; v < blo {
					blo = v
				}
				if v := ix.hi[a*n+pos]; v > bhi {
					bhi = v
				}
			}
			ix.bLo[a*nb+b] = blo
			ix.bHi[a*nb+b] = bhi
		}
	}
	return ix, nil
}

// cellsOf mirrors the integer-lattice cell count of the uniform
// estimator (query.EstimateUniform): per axis, round(width)+1 cells.
func cellsOf(b attr.Box) float64 {
	c := 1.0
	for _, iv := range b {
		w := math.Round(iv.Hi - iv.Lo)
		if w < 0 {
			w = 0
		}
		c *= w + 1
	}
	return c
}

// searchBlocks returns the number of leading blocks whose key range
// can start at or below key — the binary-search prune. Only valid
// under Z-order, whose keys are monotone under coordinate dominance.
func (ix *Index) searchBlocks(key uint64) int {
	lo, hi := 0, len(ix.bKeyLo)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if ix.bKeyLo[m] <= key {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

// blockLimit computes how many leading blocks a query with upper
// corner hi can touch, quantizing the corner through the scratch cell
// buffer. Under Hilbert every block survives.
func (ix *Index) blockLimit(hiCorner []float64, s *Scratch) int {
	if ix.curve != sfc.ZOrder {
		return len(ix.bKeyLo)
	}
	var key uint64
	key, s.cell = ix.quant.KeyInto(sfc.ZOrder, hiCorner, s.cell)
	return ix.searchBlocks(key)
}

// PointCount returns the number of records whose partition box
// contains p — bit-identical to summing Partition.Size over the
// linear Box.Contains scan. Zero allocations on a warm Scratch.
//
//anonylint:zero-alloc
func (ix *Index) PointCount(p []float64, s *Scratch) int {
	n := len(ix.keys)
	if n == 0 || len(p) != ix.dims {
		return 0
	}
	nb := len(ix.bKeyLo)
	limit := ix.blockLimit(p, s)
	total := 0
	for b := 0; b < limit; b++ {
		if !ix.blockContains(b, nb, p) {
			continue
		}
		e := int(ix.start[b+1])
		for pos := int(ix.start[b]); pos < e; pos++ {
			if ix.partContains(pos, n, p) {
				total += int(ix.sizes[pos])
			}
		}
	}
	return total
}

// RangeCount returns the COUNT answer under the paper's Section 5.4
// semantics — every record of every partition whose box intersects q
// — bit-identical to query.CountAnonymized. Zero allocations on a
// warm Scratch.
//
//anonylint:zero-alloc
func (ix *Index) RangeCount(q attr.Box, s *Scratch) int {
	n := len(ix.keys)
	if n == 0 || len(q) != ix.dims || q.IsEmpty() {
		return 0
	}
	nb := len(ix.bKeyLo)
	limit := ix.rangeLimit(q, s)
	total := 0
	for b := 0; b < limit; b++ {
		if !ix.blockIntersects(b, nb, q) {
			continue
		}
		e := int(ix.start[b+1])
		for pos := int(ix.start[b]); pos < e; pos++ {
			if ix.partIntersects(pos, n, q) {
				total += int(ix.sizes[pos])
			}
		}
	}
	return total
}

// Estimate returns the Section 2.3 uniform-assumption estimate,
// bit-identical to query.EstimateUniform: contributions are computed
// with the same per-axis arithmetic and summed in original partition
// order, so the float rounding sequence matches the linear scan. Zero
// allocations on a warm Scratch.
//
//anonylint:zero-alloc
func (ix *Index) Estimate(q attr.Box, s *Scratch) float64 {
	n := len(ix.keys)
	if n == 0 || len(q) != ix.dims || q.IsEmpty() {
		return 0
	}
	nb := len(ix.bKeyLo)
	limit := ix.rangeLimit(q, s)
	s.cand = s.cand[:0]
	s.contrib = s.contrib[:0]
	for b := 0; b < limit; b++ {
		if !ix.blockIntersects(b, nb, q) {
			continue
		}
		e := int(ix.start[b+1])
		for pos := int(ix.start[b]); pos < e; pos++ {
			// Inline Box.Intersect + cells: per axis the canonical
			// intersection bounds, then the lattice cell product in
			// axis order — the exact arithmetic of the linear
			// estimator.
			cells := 1.0
			empty := false
			for a := 0; a < ix.dims; a++ {
				ilo := math.Max(ix.lo[a*n+pos], q[a].Lo)
				ihi := math.Min(ix.hi[a*n+pos], q[a].Hi)
				if ilo > ihi {
					empty = true
					break
				}
				w := math.Round(ihi - ilo)
				if w < 0 {
					w = 0
				}
				cells *= w + 1
			}
			if empty {
				continue
			}
			s.cand = append(s.cand, ix.orig[pos])
			s.contrib = append(s.contrib, float64(ix.sizes[pos])*cells/ix.vols[pos])
		}
	}
	sortByCand(s.cand, s.contrib)
	est := 0.0
	for _, c := range s.contrib {
		est += c
	}
	return est
}

// rangeLimit is blockLimit for a range query: the prune key is the
// query's upper corner.
func (ix *Index) rangeLimit(q attr.Box, s *Scratch) int {
	if ix.curve != sfc.ZOrder {
		return len(ix.bKeyLo)
	}
	if cap(s.corner) < ix.dims {
		s.corner = make([]float64, ix.dims) // anonylint:alloc-ok — one-time scratch warm-up; never reached on a warm Scratch
	}
	s.corner = s.corner[:ix.dims]
	for a := 0; a < ix.dims; a++ {
		s.corner[a] = q[a].Hi
	}
	return ix.blockLimit(s.corner, s)
}

func (ix *Index) blockContains(b, nb int, p []float64) bool {
	for a := 0; a < ix.dims; a++ {
		if p[a] < ix.bLo[a*nb+b] || p[a] > ix.bHi[a*nb+b] {
			return false
		}
	}
	return true
}

func (ix *Index) partContains(pos, n int, p []float64) bool {
	for a := 0; a < ix.dims; a++ {
		if p[a] < ix.lo[a*n+pos] || p[a] > ix.hi[a*n+pos] {
			return false
		}
	}
	return true
}

func (ix *Index) blockIntersects(b, nb int, q attr.Box) bool {
	for a := 0; a < ix.dims; a++ {
		if q[a].Hi < ix.bLo[a*nb+b] || ix.bHi[a*nb+b] < q[a].Lo {
			return false
		}
	}
	return true
}

func (ix *Index) partIntersects(pos, n int, q attr.Box) bool {
	for a := 0; a < ix.dims; a++ {
		if q[a].Hi < ix.lo[a*n+pos] || ix.hi[a*n+pos] < q[a].Lo {
			return false
		}
	}
	return true
}

// sortByCand sorts the parallel (cand, contrib) pairs by ascending
// cand in place, allocation-free: insertion sort for short runs,
// median-of-three quicksort above that. cand holds distinct original
// partition indices, so the order is total.
func sortByCand(cand []int32, contrib []float64) {
	for len(cand) > 12 {
		// Median-of-three pivot to first position.
		m := len(cand) / 2
		l := len(cand) - 1
		if cand[m] < cand[0] {
			swapPair(cand, contrib, m, 0)
		}
		if cand[l] < cand[0] {
			swapPair(cand, contrib, l, 0)
		}
		if cand[l] < cand[m] {
			swapPair(cand, contrib, l, m)
		}
		pivot := cand[m]
		i, j := 0, l
		for i <= j {
			for cand[i] < pivot {
				i++
			}
			for cand[j] > pivot {
				j--
			}
			if i <= j {
				swapPair(cand, contrib, i, j)
				i++
				j--
			}
		}
		// Recurse into the smaller side, loop on the larger, bounding
		// stack depth at O(log n).
		if j < len(cand)-i {
			sortByCand(cand[:j+1], contrib[:j+1])
			cand, contrib = cand[i:], contrib[i:]
		} else {
			sortByCand(cand[i:], contrib[i:])
			cand, contrib = cand[:j+1], contrib[:j+1]
		}
	}
	for i := 1; i < len(cand); i++ {
		for j := i; j > 0 && cand[j] < cand[j-1]; j-- {
			swapPair(cand, contrib, j, j-1)
		}
	}
}

func swapPair(cand []int32, contrib []float64, i, j int) {
	cand[i], cand[j] = cand[j], cand[i]
	contrib[i], contrib[j] = contrib[j], contrib[i]
}

// Partitions returns the indexed release (shared, read-only).
func (ix *Index) Partitions() []anonmodel.Partition { return ix.parts }

// Len returns the number of indexed partitions.
func (ix *Index) Len() int { return len(ix.keys) }

// Curve returns the ordering curve.
func (ix *Index) Curve() sfc.Curve { return ix.curve }

// BlockSize returns the configured target block width.
func (ix *Index) BlockSize() int { return ix.blockSize }

// NumBlocks returns the number of blocks.
func (ix *Index) NumBlocks() int { return len(ix.bKeyLo) }

// Quantizer returns the quantizer the keys were computed with (nil
// for an empty index) — the auditor recomputes keys through it.
func (ix *Index) Quantizer() *sfc.Quantizer { return ix.quant }

// Block returns block b's position range [start, end) and inclusive
// curve-key range.
func (ix *Index) Block(b int) (start, end int, keyLo, keyHi uint64) {
	return int(ix.start[b]), int(ix.start[b+1]), ix.bKeyLo[b], ix.bKeyHi[b]
}

// PosOrig returns the original partition index at curve position pos.
func (ix *Index) PosOrig(pos int) int { return int(ix.orig[pos]) }

// PosKey returns the curve key at position pos.
func (ix *Index) PosKey(pos int) uint64 { return ix.keys[pos] }

// PosSize returns the record count stored for position pos.
func (ix *Index) PosSize(pos int) int { return int(ix.sizes[pos]) }

// PosVol returns the estimator cell volume stored for position pos.
func (ix *Index) PosVol(pos int) float64 { return ix.vols[pos] }

// PosBox returns a copy of the bounds stored for position pos.
func (ix *Index) PosBox(pos int) attr.Box {
	n := len(ix.keys)
	out := attr.NewBox(ix.dims)
	for a := 0; a < ix.dims; a++ {
		out[a] = attr.Interval{Lo: ix.lo[a*n+pos], Hi: ix.hi[a*n+pos]}
	}
	return out
}

// BlockBox returns a copy of block b's summary MBR.
func (ix *Index) BlockBox(b int) attr.Box {
	nb := len(ix.bKeyLo)
	out := attr.NewBox(ix.dims)
	for a := 0; a < ix.dims; a++ {
		out[a] = attr.Interval{Lo: ix.bLo[a*nb+b], Hi: ix.bHi[a*nb+b]}
	}
	return out
}
