package routing_test

import (
	"math"
	"testing"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/dataset"
	"spatialanon/internal/query"
	"spatialanon/internal/routing"
	"spatialanon/internal/sfc"
)

// release builds a real anonymized release to index: the sort-based
// bulk anonymization over a generated table.
func release(t testing.TB, n int, seed int64, k int) ([]anonmodel.Partition, []attr.Record) {
	t.Helper()
	recs := dataset.GenerateLandsEnd(n, seed)
	ps, err := sfc.Anonymize(recs, sfc.Hilbert, anonmodel.KAnonymity{K: k})
	if err != nil {
		t.Fatal(err)
	}
	return ps, recs
}

var buildMatrix = []struct {
	curve sfc.Curve
	block int
}{
	{sfc.ZOrder, 1}, {sfc.ZOrder, 16}, {sfc.ZOrder, 256},
	{sfc.Hilbert, 1}, {sfc.Hilbert, 16}, {sfc.Hilbert, 256},
}

// TestLookupsMatchLinear pins accelerated point, range and estimate
// answers to the linear reference scans for every curve and block
// size, bit-for-bit.
func TestLookupsMatchLinear(t *testing.T) {
	ps, recs := release(t, 4000, 7, 10)
	points := query.PointWorkload(recs, 300, 11)
	ranges := query.FullRangeWorkload(recs, 300, 12)
	// Add misses: points outside the domain and a disjoint range.
	far := []float64{1e9, 1e9, 1e9, 1e9, 1e9, 1e9, 1e9, 1e9}[:len(recs[0].QI)]
	points = append(points, far)
	for _, m := range buildMatrix {
		ix, err := routing.Build(ps, routing.Options{Curve: m.curve, BlockSize: m.block})
		if err != nil {
			t.Fatal(err)
		}
		var s routing.Scratch
		for i, p := range points {
			if got, want := ix.PointCount(p, &s), query.CountAnonymizedPoint(ps, p); got != want {
				t.Fatalf("curve=%v block=%d point %d: got %d, want %d", m.curve, m.block, i, got, want)
			}
		}
		for i, q := range ranges {
			if got, want := ix.RangeCount(q, &s), query.CountAnonymized(ps, q); got != want {
				t.Fatalf("curve=%v block=%d range %d: got %d, want %d", m.curve, m.block, i, got, want)
			}
			got, want := ix.Estimate(q, &s), query.EstimateUniform(ps, q)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("curve=%v block=%d estimate %d: got %v, want %v (bits %x vs %x)",
					m.curve, m.block, i, got, want, math.Float64bits(got), math.Float64bits(want))
			}
		}
	}
}

// TestDegenerateInputs covers the edges the hot path must not trip
// on: empty index, dimension mismatches, empty query boxes.
func TestDegenerateInputs(t *testing.T) {
	ix, err := routing.Build(nil, routing.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var s routing.Scratch
	if ix.PointCount([]float64{1}, &s) != 0 || ix.RangeCount(attr.Box{{Lo: 0, Hi: 1}}, &s) != 0 || ix.Estimate(attr.Box{{Lo: 0, Hi: 1}}, &s) != 0 {
		t.Fatal("empty index must answer zero")
	}

	ps, _ := release(t, 200, 3, 5)
	ix, err = routing.Build(ps, routing.Options{BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ix.PointCount([]float64{1, 2}, &s) != 0 {
		t.Fatal("dimension-mismatched point must answer zero")
	}
	if ix.RangeCount(attr.Box{{Lo: 0, Hi: 1}}, &s) != 0 {
		t.Fatal("dimension-mismatched range must answer zero")
	}
	dims := len(ps[0].Box)
	empty := attr.NewBox(dims) // every axis empty
	if ix.RangeCount(empty, &s) != 0 || ix.Estimate(empty, &s) != 0 {
		t.Fatal("empty query box must answer zero")
	}
}

// TestBuildRejectsMalformed: mixed dimensionality and empty boxes are
// build-time errors, not silent wrong answers.
func TestBuildRejectsMalformed(t *testing.T) {
	good := anonmodel.Partition{
		Box:     attr.Box{{Lo: 0, Hi: 1}, {Lo: 0, Hi: 1}},
		Records: []attr.Record{{ID: 1, QI: []float64{0, 0}}},
	}
	if _, err := routing.Build([]anonmodel.Partition{good, {Box: attr.Box{{Lo: 0, Hi: 1}}}}, routing.Options{}); err == nil {
		t.Fatal("mixed dimensionality must be rejected")
	}
	if _, err := routing.Build([]anonmodel.Partition{good, {Box: attr.NewBox(2)}}, routing.Options{}); err == nil {
		t.Fatal("empty box must be rejected")
	}
}

// TestEqualKeysStayTogether: duplicate min-corners never straddle a
// block boundary, so block key ranges stay disjoint even when every
// partition shares one key.
func TestEqualKeysStayTogether(t *testing.T) {
	var ps []anonmodel.Partition
	for i := 0; i < 37; i++ {
		ps = append(ps, anonmodel.Partition{
			Box:     attr.Box{{Lo: 5, Hi: 6}, {Lo: 5, Hi: 6}},
			Records: []attr.Record{{ID: int64(i), QI: []float64{5, 5}}},
		})
	}
	ix, err := routing.Build(ps, routing.Options{BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumBlocks() != 1 {
		t.Fatalf("37 equal keys split into %d blocks, want 1", ix.NumBlocks())
	}
	var s routing.Scratch
	if got := ix.PointCount([]float64{5.5, 5.5}, &s); got != 37 {
		t.Fatalf("point count %d, want 37", got)
	}
}

// TestZeroAllocLookups pins the zero-alloc contract of every lookup on
// a warm scratch.
func TestZeroAllocLookups(t *testing.T) {
	ps, recs := release(t, 4000, 9, 10)
	ranges := query.FullRangeWorkload(recs, 64, 13)
	points := query.PointWorkload(recs, 64, 14)
	for _, curve := range []sfc.Curve{sfc.ZOrder, sfc.Hilbert} {
		ix, err := routing.Build(ps, routing.Options{Curve: curve})
		if err != nil {
			t.Fatal(err)
		}
		var s routing.Scratch
		// Warm the scratch buffers once.
		ix.PointCount(points[0], &s)
		ix.RangeCount(ranges[0], &s)
		ix.Estimate(ranges[0], &s)
		i := 0
		if a := testing.AllocsPerRun(100, func() { ix.PointCount(points[i%len(points)], &s); i++ }); a != 0 {
			t.Errorf("curve=%v PointCount: %v allocs/op, want 0", curve, a)
		}
		if a := testing.AllocsPerRun(100, func() { ix.RangeCount(ranges[i%len(ranges)], &s); i++ }); a != 0 {
			t.Errorf("curve=%v RangeCount: %v allocs/op, want 0", curve, a)
		}
		if a := testing.AllocsPerRun(100, func() { ix.Estimate(ranges[i%len(ranges)], &s); i++ }); a != 0 {
			t.Errorf("curve=%v Estimate: %v allocs/op, want 0", curve, a)
		}
	}
}
