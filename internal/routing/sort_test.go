package routing

import "testing"

// TestSortByCand exercises the allocation-free pair sort directly.
func TestSortByCand(t *testing.T) {
	cand := []int32{9, 3, 7, 1, 8, 2, 6, 0, 5, 4, 13, 11, 12, 10, 15, 14}
	contrib := make([]float64, len(cand))
	for i, c := range cand {
		contrib[i] = float64(c) * 1.5
	}
	sortByCand(cand, contrib)
	for i := range cand {
		if int(cand[i]) != i {
			t.Fatalf("cand[%d] = %d", i, cand[i])
		}
		if contrib[i] != float64(i)*1.5 {
			t.Fatalf("contrib[%d] = %v, want %v (pairs must move together)", i, contrib[i], float64(i)*1.5)
		}
	}
}
