package routing_test

import (
	"math"
	"testing"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/query"
	"spatialanon/internal/routing"
	"spatialanon/internal/sfc"
)

// FuzzLookupVsLinear decodes the fuzz input into a small record set,
// anonymizes it with both curves, builds the accelerator at a
// byte-chosen block size and checks every point and range answer
// against the linear reference scans, estimates bit-for-bit.
func FuzzLookupVsLinear(f *testing.F) {
	f.Add([]byte{3, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{7, 255, 128, 64, 32, 16, 8, 4, 2, 1, 9, 9, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 5 {
			return
		}
		dims := int(data[0])%3 + 1
		blockSize := int(data[1])%9 + 1 // 1..9 on tiny inputs exercises many blocks
		data = data[2:]
		n := len(data) / dims
		if n < 2 {
			return
		}
		if n > 64 {
			n = 64
		}
		recs := make([]attr.Record, n)
		for i := range recs {
			qi := make([]float64, dims)
			for d := range qi {
				qi[d] = float64(data[i*dims+d]) / 4
			}
			recs[i] = attr.Record{ID: int64(i + 1), QI: qi}
		}
		for _, curve := range []sfc.Curve{sfc.ZOrder, sfc.Hilbert} {
			ps, err := sfc.Anonymize(recs, curve, anonmodel.KAnonymity{K: 2})
			if err != nil {
				t.Fatal(err)
			}
			ix, err := routing.Build(ps, routing.Options{Curve: curve, BlockSize: blockSize})
			if err != nil {
				t.Fatal(err)
			}
			var s routing.Scratch
			for _, r := range recs {
				if got, want := ix.PointCount(r.QI, &s), query.CountAnonymizedPoint(ps, r.QI); got != want {
					t.Fatalf("curve=%v point %v: got %d, want %d", curve, r.QI, got, want)
				}
			}
			// Ranges anchored on record pairs, including inverted (empty)
			// and degenerate (point) boxes.
			for i := 0; i+1 < len(recs); i += 2 {
				q := make(attr.Box, dims)
				for d := range q {
					q[d] = attr.Interval{Lo: recs[i].QI[d], Hi: recs[i+1].QI[d]}
				}
				if got, want := ix.RangeCount(q, &s), query.CountAnonymized(ps, q); got != want {
					t.Fatalf("curve=%v range %v: got %d, want %d", curve, q, got, want)
				}
				got, want := ix.Estimate(q, &s), query.EstimateUniform(ps, q)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("curve=%v estimate %v: got %v, want %v", curve, q, got, want)
				}
			}
		}
	})
}
