package fault

import (
	"errors"
	"fmt"

	"spatialanon/internal/pager"
)

// CrashError is the typed error a Crash point returns once it fires.
// It models process death at a precise point in the durable-operation
// sequence: unlike the taxonomy in Error, a crash is neither retryable
// nor page-scoped — every durable operation after the crash point fails
// too, because the process is "dead". The WAL recovery path detects it
// structurally via the Crashed() method so the two packages need not
// import each other.
type CrashError struct {
	// Op counts durable operations at the moment of death, so a failure
	// report can name the exact crash point that produced it.
	Op int
}

// Error implements error.
func (e *CrashError) Error() string {
	return fmt.Sprintf("fault: simulated crash at durable op %d", e.Op)
}

// Transient implements the structural retry convention: a crash is
// never retryable.
func (e *CrashError) Transient() bool { return false }

// Crashed marks the error as a process-death simulation; the WAL layer
// matches on this method.
func (e *CrashError) Crashed() bool { return true }

// IsCrash reports whether err is (or wraps) a simulated crash.
func IsCrash(err error) bool {
	var c interface{ Crashed() bool }
	return errors.As(err, &c) && c.Crashed()
}

// Crash is a deterministic crash-point injector. It counts durable
// operations — WAL frame appends and pager page write-backs share one
// counter — and kills the process simulation at the Nth one. Once
// fired, it stays fired: every later durable operation fails with the
// same CrashError, which is what distinguishes a crash from the
// recoverable faults in Injector.
//
// A crash can also be *torn*: the fatal WAL append persists only a
// prefix of its frame, modelling a power cut mid-write. The chaos
// harness uses this to assert that recovery treats a torn tail as
// "not committed" rather than as corruption.
//
// Crash implements pager.FaultPolicy for the write-back side; the WAL
// writer consumes it through the structural CrashPolicy interface
// (BeforeAppend). It is not safe for concurrent use.
type Crash struct {
	// At is the 1-based ordinal of the durable operation that dies.
	// Zero disables the crash point entirely (useful for counting a
	// workload's total durable operations).
	At int
	// Torn, in [0,1], applies only when the fatal operation is a WAL
	// append: the fraction of the final frame that still reaches disk.
	// 0 means the frame vanishes entirely.
	Torn float64

	ops  int
	dead *CrashError
}

// BeforeAppend is consumed structurally by the WAL writer before each
// frame append. It returns how many bytes of the frame may persist and
// whether the process dies at this operation. A non-crashing append
// persists the whole frame.
func (c *Crash) BeforeAppend(frameLen int) (persist int, crashed bool) {
	if c.dead != nil {
		return 0, true
	}
	c.ops++
	if c.At > 0 && c.ops >= c.At {
		c.dead = &CrashError{Op: c.ops}
		persist = int(c.Torn * float64(frameLen))
		if persist > frameLen {
			persist = frameLen
		}
		return persist, true
	}
	return frameLen, false
}

// BeforeRead implements pager.FaultPolicy. Reads are not durable
// operations — they do not advance the crash clock — but a dead
// process cannot read either.
func (c *Crash) BeforeRead(id pager.PageID) error {
	if c.dead != nil {
		return c.dead
	}
	return nil
}

// BeforeWrite implements pager.FaultPolicy: each page write-back is one
// durable operation on the shared crash clock.
func (c *Crash) BeforeWrite(id pager.PageID) error {
	if c.dead != nil {
		return c.dead
	}
	c.ops++
	if c.At > 0 && c.ops >= c.At {
		c.dead = &CrashError{Op: c.ops}
		return c.dead
	}
	return nil
}

// CorruptWrite implements pager.FaultPolicy; the crash injector never
// corrupts pages that do get written.
func (c *Crash) CorruptWrite(id pager.PageID, data []byte) bool { return false }

// Err returns the CrashError if the crash point has fired, else nil.
func (c *Crash) Err() error {
	if c.dead != nil {
		return c.dead
	}
	return nil
}

// Ops returns the number of durable operations observed so far. Running
// a workload with At == 0 and reading Ops afterwards yields the size of
// the crash-point matrix for that workload.
func (c *Crash) Ops() int { return c.ops }
