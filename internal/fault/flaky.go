package fault

import (
	"fmt"
	"math/rand"
)

// LogError is a typed injected failure of a log append or fsync — the
// frame-stream analogue of the page-scoped Error. The WAL writer and
// the retry helper match it structurally through `Transient() bool`,
// so the injector package stays import-free of both.
type LogError struct {
	Op   string // "append" or "sync"
	Kind Kind
}

// Error implements error.
func (e *LogError) Error() string {
	return fmt.Sprintf("fault: %s log %s error", e.Kind, e.Op)
}

// Transient reports whether retrying the failed attempt can succeed.
func (e *LogError) Transient() bool { return e.Kind == Transient }

// FlakyConfig sets the per-attempt fault probabilities of a Flaky
// injector. A zero config injects nothing.
type FlakyConfig struct {
	// TransientWriteRate is the probability one physical frame write
	// attempt fails retryably. A transient write fault tears a random
	// prefix of the frame into the log — exactly the partial write a
	// power-cut-free device error leaves behind — so the writer's
	// truncate-before-retry discipline is exercised on every schedule.
	TransientWriteRate float64
	// TransientSyncRate is the probability one fsync attempt fails
	// retryably.
	TransientSyncRate float64
	// PermanentWriteRate is the probability one frame write attempt
	// fails permanently: the device rejected the command for good, so
	// retrying is futile and the store must escalate (poison itself)
	// rather than spin.
	PermanentWriteRate float64
	// After arms the injector only after this many intercepted
	// attempts, so schedules can target mid-workload states.
	After int
	// MaxFaults caps the number of injected faults; 0 means unlimited.
	// A bounded schedule is how resurrection tests model "the device
	// glitched and came back": once the budget is spent the log is
	// clean again and recovery can succeed.
	MaxFaults int
}

// Flaky is a deterministic fault injector for the WAL append path: it
// intercepts physical write and fsync attempts (the wal.AppendFault
// contract, satisfied structurally) and fails them on a schedule that
// is a pure function of (seed, sequence of intercepted attempts). It
// is not safe for concurrent use — neither is the WAL writer.
type Flaky struct {
	cfg    FlakyConfig
	seed   int64
	rng    *rand.Rand
	ops    int
	counts map[Kind]int
}

// NewFlaky returns an injector whose fault schedule is a pure function
// of seed and the sequence of intercepted attempts.
func NewFlaky(seed int64, cfg FlakyConfig) *Flaky {
	return &Flaky{cfg: cfg, seed: seed, rng: rand.New(rand.NewSource(seed)), counts: make(map[Kind]int)}
}

// Seed returns the seed the injector was created with.
func (f *Flaky) Seed() int64 { return f.seed }

// Derive returns a fresh Flaky with the same config whose seed is a
// deterministic function of this injector's seed and the shard index —
// the append-path analogue of Injector.Derive. Sharded serving runs
// one WAL writer per shard on its own goroutine, and injectors are not
// safe for concurrent use, so each shard must own a derived injector;
// any shard's schedule replays in isolation from (parent seed, shard).
func (f *Flaky) Derive(shard int) *Flaky {
	return NewFlaky(DeriveSeed(f.seed, shard), f.cfg)
}

// WriteAttempt is consulted before one physical frame write of
// frameLen bytes. On a fault it reports how many bytes of the frame
// land anyway (a torn prefix; zero means nothing reached the log) and
// the typed error; on a clean attempt it returns (0, nil) and the
// writer performs the full write itself.
func (f *Flaky) WriteAttempt(frameLen int) (tear int, err error) {
	f.ops++
	if !f.flakyArmed() {
		return 0, nil
	}
	r := f.rng.Float64()
	switch {
	case r < f.cfg.PermanentWriteRate:
		f.counts[Permanent]++
		return f.tearBytes(frameLen), &LogError{Op: "append", Kind: Permanent}
	case r < f.cfg.PermanentWriteRate+f.cfg.TransientWriteRate:
		f.counts[Transient]++
		return f.tearBytes(frameLen), &LogError{Op: "append", Kind: Transient}
	}
	return 0, nil
}

// SyncAttempt is consulted before one fsync of the log.
func (f *Flaky) SyncAttempt() error {
	f.ops++
	if !f.flakyArmed() {
		return nil
	}
	if f.rng.Float64() < f.cfg.TransientSyncRate {
		f.counts[Transient]++
		return &LogError{Op: "sync", Kind: Transient}
	}
	return nil
}

// tearBytes draws how much of a failed frame write still lands.
func (f *Flaky) tearBytes(frameLen int) int {
	if frameLen <= 0 {
		return 0
	}
	return f.rng.Intn(frameLen + 1)
}

// flakyArmed reports whether the injector is past its After threshold
// and under its fault budget.
func (f *Flaky) flakyArmed() bool {
	if f.ops <= f.cfg.After {
		return false
	}
	return f.cfg.MaxFaults == 0 || f.Injected() < f.cfg.MaxFaults
}

// Injected returns the number of faults injected so far.
func (f *Flaky) Injected() int {
	n := 0
	for _, c := range f.counts {
		n += c
	}
	return n
}

// Counts returns a copy of the per-kind injection counters.
func (f *Flaky) Counts() map[Kind]int {
	out := make(map[Kind]int, len(f.counts))
	for k, v := range f.counts {
		out[k] = v
	}
	return out
}

// Ops returns the number of attempts intercepted so far.
func (f *Flaky) Ops() int { return f.ops }
