// Package fault is a deterministic, seed-driven storage fault injector
// with a typed error taxonomy. It exists because the paper's central
// claim — an anonymization *is* a spatial index — cuts both ways: every
// index-corruption failure mode (torn page, lost write, bit rot) is
// silently also a privacy failure mode. The chaos suite in
// internal/verify drives seeded schedules of these faults through the
// pager and the bulk loader and asserts that every injected fault ends
// in a returned error or a verified-consistent tree, never silent
// corruption.
//
// Taxonomy:
//
//   - Transient — the operation failed but a retry may succeed (a busy
//     device, a dropped request). Callers are expected to retry a
//     bounded number of times; see rplustree's loader.
//   - Permanent — the page's device region is gone. Once a permanent
//     fault fires for a page, every later access to that page fails
//     too, so retrying is futile and the error must propagate.
//   - TornWrite — only part of the page's new contents reached disk.
//     Undetectable at write time; the pager's per-page checksum
//     surfaces it as a pager.CorruptError on the next read.
//   - BitRot — bits flipped at rest, likewise surfaced by checksum on
//     the next read.
//
// The Injector consumes a private PRNG seeded by the caller, so a
// schedule is a pure function of (seed, sequence of intercepted
// operations) — the property the chaos harness needs to shrink and
// replay failures.
package fault

import (
	"errors"
	"fmt"
	"math/rand"

	"spatialanon/internal/pager"
)

// Kind classifies an injected fault.
type Kind int

const (
	// Transient faults may succeed if the operation is retried.
	Transient Kind = iota
	// Permanent faults persist: every later access to the page fails.
	Permanent
	// TornWrite corrupts the tail of a page during write-back.
	TornWrite
	// BitRot flips bits of a page during write-back.
	BitRot
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Transient:
		return "transient"
	case Permanent:
		return "permanent"
	case TornWrite:
		return "torn-write"
	case BitRot:
		return "bit-rot"
	}
	return fmt.Sprintf("fault.Kind(%d)", int(k))
}

// Error is a typed injected I/O error.
type Error struct {
	Op   string // "read" or "write"
	Page pager.PageID
	Kind Kind
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("fault: %s %s error on page %d", e.Kind, e.Op, e.Page)
}

// Transient reports whether retrying the failed operation can succeed.
func (e *Error) Transient() bool { return e.Kind == Transient }

// IsTransient reports whether err is a retryable storage fault. Any
// error in the chain exposing `Transient() bool` participates, so other
// packages can mark their own errors retryable without importing this
// one; checksum mismatches (pager.CorruptError) and permanent faults
// are not transient.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// Config sets the per-operation fault probabilities of an Injector. A
// zero Config injects nothing.
type Config struct {
	// TransientReadRate / TransientWriteRate are the probabilities that
	// one disk read / write-back fails with a retryable error.
	TransientReadRate  float64
	TransientWriteRate float64
	// PermanentReadRate / PermanentWriteRate are the probabilities that
	// one disk read / write-back fails permanently. The faulted page is
	// remembered: all its later accesses fail too.
	PermanentReadRate  float64
	PermanentWriteRate float64
	// TornWriteRate is the probability a write-back persists only a
	// prefix of the page (the tail keeps stale garbage).
	TornWriteRate float64
	// BitRotRate is the probability a write-back lands with flipped
	// bits.
	BitRotRate float64
	// After arms the injector only after this many intercepted
	// operations, so schedules can target mid-load states.
	After int
	// MaxFaults caps the number of injected faults; 0 means unlimited.
	// Repeated failures of an already-permanently-failed page do not
	// count against the cap.
	MaxFaults int
}

// Injector is a deterministic fault injector implementing
// pager.FaultPolicy. It is not safe for concurrent use (neither is the
// pager).
type Injector struct {
	cfg       Config
	seed      int64
	rng       *rand.Rand
	ops       int
	counts    map[Kind]int
	permanent map[pager.PageID]bool
}

// NewInjector returns an injector whose fault schedule is a pure
// function of seed and the sequence of intercepted operations.
func NewInjector(seed int64, cfg Config) *Injector {
	return &Injector{
		cfg:       cfg,
		seed:      seed,
		rng:       rand.New(rand.NewSource(seed)),
		counts:    make(map[Kind]int),
		permanent: make(map[pager.PageID]bool),
	}
}

// Seed returns the seed the injector was created with.
func (in *Injector) Seed() int64 { return in.seed }

// Derive returns a fresh injector with the same Config whose seed is a
// deterministic function of this injector's seed and the shard index.
// When a workload is sharded across goroutines, each shard gets its own
// injector — injectors are not safe for concurrent use — and any
// shard's schedule can be replayed in isolation from (parent seed,
// shard) alone. The derivation is a splitmix64 mix, so neighboring
// shard indices produce statistically independent streams (seed+1,
// seed+2, ... would correlate under some PRNGs).
func (in *Injector) Derive(shard int) *Injector {
	return NewInjector(DeriveSeed(in.seed, shard), in.cfg)
}

// DeriveSeed is the seed derivation used by Derive, exported so
// harnesses can name a shard's seed in failure reports.
func DeriveSeed(parent int64, shard int) int64 {
	z := uint64(parent) + uint64(shard+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// BeforeRead implements pager.FaultPolicy.
func (in *Injector) BeforeRead(id pager.PageID) error {
	return in.before("read", id, in.cfg.TransientReadRate, in.cfg.PermanentReadRate)
}

// BeforeWrite implements pager.FaultPolicy.
func (in *Injector) BeforeWrite(id pager.PageID) error {
	return in.before("write", id, in.cfg.TransientWriteRate, in.cfg.PermanentWriteRate)
}

func (in *Injector) before(op string, id pager.PageID, transientRate, permanentRate float64) error {
	in.ops++
	if in.permanent[id] {
		return &Error{Op: op, Page: id, Kind: Permanent}
	}
	if !in.armed() {
		return nil
	}
	// One draw per intercepted operation keeps the schedule stable even
	// when rates change between runs of the same seed.
	r := in.rng.Float64()
	switch {
	case r < permanentRate:
		in.permanent[id] = true
		in.counts[Permanent]++
		return &Error{Op: op, Page: id, Kind: Permanent}
	case r < permanentRate+transientRate:
		in.counts[Transient]++
		return &Error{Op: op, Page: id, Kind: Transient}
	}
	return nil
}

// CorruptWrite implements pager.FaultPolicy: it may mutate the bytes
// about to reach disk (after the pager sealed the page checksum, so the
// damage is detectable on the next read). It reports whether the page
// was corrupted.
func (in *Injector) CorruptWrite(id pager.PageID, data []byte) bool {
	in.ops++
	if !in.armed() || len(data) == 0 {
		return false
	}
	r := in.rng.Float64()
	switch {
	case r < in.cfg.TornWriteRate:
		// Torn write: a prefix lands, the tail keeps whatever garbage
		// the sector held before.
		cut := in.rng.Intn(len(data))
		for i := cut; i < len(data); i++ {
			data[i] = byte(in.rng.Intn(256))
		}
		in.counts[TornWrite]++
		return true
	case r < in.cfg.TornWriteRate+in.cfg.BitRotRate:
		// Bit rot: flip 1-3 bits. XOR with a non-zero mask guarantees
		// the byte actually changes.
		flips := 1 + in.rng.Intn(3)
		for i := 0; i < flips; i++ {
			data[in.rng.Intn(len(data))] ^= byte(1 << in.rng.Intn(8))
		}
		in.counts[BitRot]++
		return true
	}
	return false
}

// armed reports whether the injector is past its After threshold and
// under its fault budget.
func (in *Injector) armed() bool {
	if in.ops <= in.cfg.After {
		return false
	}
	return in.cfg.MaxFaults == 0 || in.Injected() < in.cfg.MaxFaults
}

// Injected returns the number of faults injected so far (repeat
// failures of an already-permanent page are not counted again).
func (in *Injector) Injected() int {
	n := 0
	for _, c := range in.counts {
		n += c
	}
	return n
}

// Counts returns a copy of the per-kind injection counters.
func (in *Injector) Counts() map[Kind]int {
	out := make(map[Kind]int, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// Ops returns the number of operations intercepted so far.
func (in *Injector) Ops() int { return in.ops }
