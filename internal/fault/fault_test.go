package fault

import (
	"errors"
	"fmt"
	"testing"

	"spatialanon/internal/pager"
)

// schedule replays n read/write interceptions against an injector and
// records which ordinals faulted with what kind.
func schedule(in *Injector, n int) []string {
	var out []string
	for i := 0; i < n; i++ {
		id := pager.PageID(i % 7)
		var err error
		if i%2 == 0 {
			err = in.BeforeRead(id)
		} else {
			err = in.BeforeWrite(id)
		}
		if err != nil {
			var fe *Error
			if !errors.As(err, &fe) {
				out = append(out, fmt.Sprintf("%d:untyped", i))
				continue
			}
			out = append(out, fmt.Sprintf("%d:%s:%s:%d", i, fe.Kind, fe.Op, fe.Page))
		}
	}
	return out
}

func TestDeterminism(t *testing.T) {
	cfg := Config{
		TransientReadRate: 0.05, TransientWriteRate: 0.05,
		PermanentReadRate: 0.01, PermanentWriteRate: 0.01,
	}
	a := schedule(NewInjector(42, cfg), 500)
	b := schedule(NewInjector(42, cfg), 500)
	if len(a) == 0 {
		t.Fatal("schedule injected no faults; rates too low for the test")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", a, b)
	}
	c := schedule(NewInjector(43, cfg), 500)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestZeroConfigInjectsNothing(t *testing.T) {
	in := NewInjector(1, Config{})
	if faults := schedule(in, 1000); len(faults) != 0 {
		t.Fatalf("zero config injected %v", faults)
	}
	if in.Injected() != 0 || in.Ops() != 1000 {
		t.Fatalf("injected=%d ops=%d", in.Injected(), in.Ops())
	}
}

func TestTransientClassification(t *testing.T) {
	in := NewInjector(7, Config{TransientReadRate: 1})
	err := in.BeforeRead(3)
	if err == nil {
		t.Fatal("rate-1 transient did not fire")
	}
	if !IsTransient(err) {
		t.Fatalf("transient error not classified as transient: %v", err)
	}
	if IsTransient(errors.New("plain")) {
		t.Fatal("plain error classified transient")
	}
	if IsTransient(nil) {
		t.Fatal("nil classified transient")
	}
	// Wrapped transient errors still classify.
	if !IsTransient(fmt.Errorf("flush: %w", err)) {
		t.Fatal("wrapped transient error not classified")
	}
}

func TestPermanentPageStaysFailed(t *testing.T) {
	in := NewInjector(7, Config{PermanentWriteRate: 1, MaxFaults: 1})
	err := in.BeforeWrite(5)
	if err == nil {
		t.Fatal("rate-1 permanent did not fire")
	}
	if IsTransient(err) {
		t.Fatal("permanent error classified transient")
	}
	// Budget is exhausted, but the failed page keeps failing — on reads
	// too, not just writes.
	if err := in.BeforeWrite(5); err == nil {
		t.Fatal("permanent page succeeded on retry")
	}
	if err := in.BeforeRead(5); err == nil {
		t.Fatal("permanent page succeeded on read")
	}
	// Other pages are unaffected (budget spent).
	if err := in.BeforeWrite(6); err != nil {
		t.Fatalf("healthy page failed: %v", err)
	}
	if in.Injected() != 1 {
		t.Fatalf("repeat failures counted: %d", in.Injected())
	}
}

func TestAfterDelaysArming(t *testing.T) {
	in := NewInjector(3, Config{TransientReadRate: 1, After: 10})
	for i := 0; i < 10; i++ {
		if err := in.BeforeRead(pager.PageID(i)); err != nil {
			t.Fatalf("op %d faulted before After threshold", i)
		}
	}
	if err := in.BeforeRead(99); err == nil {
		t.Fatal("armed injector did not fault")
	}
}

func TestMaxFaultsCapsInjection(t *testing.T) {
	in := NewInjector(3, Config{TransientReadRate: 1, MaxFaults: 3})
	faults := 0
	for i := 0; i < 100; i++ {
		if in.BeforeRead(pager.PageID(i)) != nil {
			faults++
		}
	}
	if faults != 3 {
		t.Fatalf("injected %d faults, cap was 3", faults)
	}
}

func TestCorruptWriteKinds(t *testing.T) {
	pageSize := 64
	for name, cfg := range map[string]Config{
		"torn":   {TornWriteRate: 1},
		"bitrot": {BitRotRate: 1},
	} {
		in := NewInjector(11, cfg)
		clean := make([]byte, pageSize)
		for i := range clean {
			clean[i] = byte(i)
		}
		changed := 0
		for trial := 0; trial < 20; trial++ {
			data := append([]byte(nil), clean...)
			if !in.CorruptWrite(pager.PageID(trial), data) {
				t.Fatalf("%s: rate-1 corruption did not fire", name)
			}
			if fmt.Sprint(data) != fmt.Sprint(clean) {
				changed++
			}
		}
		// A torn write may cut at the very end and by chance reproduce
		// the original bytes; bit rot always changes them. Either way
		// the overwhelming majority of trials must differ.
		if changed < 18 {
			t.Fatalf("%s: only %d/20 corruptions changed the page", name, changed)
		}
		if in.Injected() != 20 {
			t.Fatalf("%s: injected=%d", name, in.Injected())
		}
	}
}

func TestCountsAndString(t *testing.T) {
	in := NewInjector(5, Config{TransientReadRate: 1})
	in.BeforeRead(1)
	counts := in.Counts()
	if counts[Transient] != 1 {
		t.Fatalf("counts %v", counts)
	}
	counts[Transient] = 99 // mutation of the copy must not leak back
	if in.Counts()[Transient] != 1 {
		t.Fatal("Counts returned a live reference")
	}
	for k, want := range map[Kind]string{
		Transient: "transient", Permanent: "permanent",
		TornWrite: "torn-write", BitRot: "bit-rot", Kind(9): "fault.Kind(9)",
	} {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q", int(k), k.String())
		}
	}
}
