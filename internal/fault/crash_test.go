package fault

import (
	"errors"
	"fmt"
	"testing"
)

func TestCrashFiresAtExactOp(t *testing.T) {
	c := &Crash{At: 3}
	// Ops 1 and 2 survive; op 3 dies.
	if n, crashed := c.BeforeAppend(100); crashed || n != 100 {
		t.Fatalf("op 1: persist=%d crashed=%v", n, crashed)
	}
	if err := c.BeforeWrite(7); err != nil {
		t.Fatalf("op 2: %v", err)
	}
	if _, crashed := c.BeforeAppend(100); !crashed {
		t.Fatal("op 3 did not crash")
	}
	if c.Err() == nil {
		t.Fatal("Err() nil after crash")
	}
	// Everything after a crash fails, without advancing the clock.
	if err := c.BeforeWrite(8); err == nil {
		t.Fatal("write after death succeeded")
	}
	if err := c.BeforeRead(8); err == nil {
		t.Fatal("read after death succeeded")
	}
	if _, crashed := c.BeforeAppend(10); !crashed {
		t.Fatal("append after death succeeded")
	}
	if c.Ops() != 3 {
		t.Fatalf("ops = %d, want 3", c.Ops())
	}
}

func TestCrashTornPersistsPrefix(t *testing.T) {
	cases := []struct {
		torn float64
		want int
	}{
		{0, 0},
		{0.5, 40},
		{1, 80},
	}
	for _, tc := range cases {
		c := &Crash{At: 1, Torn: tc.torn}
		n, crashed := c.BeforeAppend(80)
		if !crashed {
			t.Fatalf("torn=%v: did not crash", tc.torn)
		}
		if n != tc.want {
			t.Errorf("torn=%v: persist=%d, want %d", tc.torn, n, tc.want)
		}
	}
}

func TestCrashDisabledCountsOps(t *testing.T) {
	c := &Crash{}
	for i := 0; i < 5; i++ {
		if _, crashed := c.BeforeAppend(10); crashed {
			t.Fatal("disabled crash point fired")
		}
		if err := c.BeforeWrite(1); err != nil {
			t.Fatal(err)
		}
	}
	if c.Ops() != 10 {
		t.Fatalf("ops = %d, want 10", c.Ops())
	}
	if c.Err() != nil {
		t.Fatalf("Err() = %v on disabled point", c.Err())
	}
}

func TestCrashErrorClassification(t *testing.T) {
	err := fmt.Errorf("append: %w", &CrashError{Op: 4})
	if !IsCrash(err) {
		t.Error("wrapped CrashError not detected by IsCrash")
	}
	if IsTransient(err) {
		t.Error("crash must not be retryable")
	}
	if IsCrash(errors.New("plain")) {
		t.Error("plain error detected as crash")
	}
	if IsCrash(nil) {
		t.Error("nil detected as crash")
	}
}
