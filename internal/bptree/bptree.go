// Package bptree implements the paper's introductory observation
// (Section 1, Figure 1(c)): a classical B⁺-tree index on one
// quasi-identifier attribute already *is* a k-anonymizer. Every leaf
// holds between N_min and N_max records, every root-to-leaf path
// constrains the key to a range, so replacing each record's key by its
// leaf's key range — and, with the Section 4 compaction step, every
// other attribute by the leaf group's extent — produces a table where
// k = N_min.
//
// The tree here is a textbook memory-resident B⁺-tree over float64
// keys: sorted leaf records, separator-keyed internal nodes, ordered
// leaf iteration, range search, and tuple insertion with splits. It
// exists (a) to make the paper's one-dimensional story executable and
// testable, and (b) as the extreme point of the workload-bias spectrum:
// an index clustered entirely on one attribute (the repository's
// ablations compare it against the multidimensional R⁺-tree).
package bptree

import (
	"fmt"
	"sort"

	"spatialanon/internal/attr"
)

// Config parameterizes a Tree.
type Config struct {
	// Schema of the records. Required.
	Schema *attr.Schema
	// Key is the attribute index the tree is built on.
	Key int
	// BaseK is N_min, the minimum leaf occupancy (the anonymity
	// parameter the leaves deliver). Required, >= 2: a leaf of one
	// record is an identity release, not anonymity.
	BaseK int
	// LeafFactor c sets N_max = c*BaseK. Must be >= 2 (a median split
	// of an overflowing leaf then leaves both halves >= BaseK).
	// Defaults to 2.
	LeafFactor int
	// Fanout is the maximum number of children of an internal node.
	// Defaults to 16; minimum 3.
	Fanout int
}

type node struct {
	parent *node

	// Leaf fields: records sorted by key; prev/next leaf links.
	recs []attr.Record
	next *node

	// Internal fields: children and len(children)-1 separator keys;
	// child i holds keys < seps[i], child i+1 holds keys >= seps[i].
	children []*node
	seps     []float64
}

func (n *node) isLeaf() bool { return n.children == nil }

// Tree is the anonymizing B⁺-tree.
type Tree struct {
	cfg   Config
	root  *node
	first *node // leftmost leaf
	size  int
}

// New creates an empty tree.
func New(cfg Config) (*Tree, error) {
	if cfg.Schema == nil {
		return nil, fmt.Errorf("bptree: nil schema")
	}
	if err := cfg.Schema.Validate(); err != nil {
		return nil, err
	}
	if cfg.Key < 0 || cfg.Key >= cfg.Schema.Dims() {
		return nil, fmt.Errorf("bptree: key attribute %d outside schema", cfg.Key)
	}
	if cfg.BaseK < 2 {
		return nil, fmt.Errorf("bptree: BaseK %d provides no anonymity; need >= 2", cfg.BaseK)
	}
	if cfg.LeafFactor == 0 {
		cfg.LeafFactor = 2
	}
	if cfg.LeafFactor < 2 {
		return nil, fmt.Errorf("bptree: LeafFactor %d < 2", cfg.LeafFactor)
	}
	if cfg.Fanout == 0 {
		cfg.Fanout = 16
	}
	if cfg.Fanout < 3 {
		return nil, fmt.Errorf("bptree: fanout %d < 3", cfg.Fanout)
	}
	leaf := &node{}
	return &Tree{cfg: cfg, root: leaf, first: leaf}, nil
}

func (t *Tree) leafCap() int { return t.cfg.LeafFactor * t.cfg.BaseK }

// Len returns the number of records.
func (t *Tree) Len() int { return t.size }

// Key returns the attribute the tree is built on.
func (t *Tree) Key() int { return t.cfg.Key }

// Insert adds one record.
func (t *Tree) Insert(rec attr.Record) error {
	if len(rec.QI) != t.cfg.Schema.Dims() {
		return fmt.Errorf("bptree: record has %d attributes, tree has %d", len(rec.QI), t.cfg.Schema.Dims())
	}
	key := rec.QI[t.cfg.Key]
	leaf := t.findLeaf(key)
	// Insert in key order.
	pos := sort.Search(len(leaf.recs), func(i int) bool { return leaf.recs[i].QI[t.cfg.Key] > key })
	leaf.recs = append(leaf.recs, attr.Record{})
	copy(leaf.recs[pos+1:], leaf.recs[pos:])
	leaf.recs[pos] = rec
	t.size++
	if len(leaf.recs) > t.leafCap() {
		t.splitLeaf(leaf)
	}
	return nil
}

// findLeaf descends to the leaf responsible for key.
func (t *Tree) findLeaf(key float64) *node {
	n := t.root
	for !n.isLeaf() {
		i := sort.SearchFloat64s(n.seps, key)
		// seps[i-1] <= key < seps[i] routes to child i; equality with
		// a separator routes right.
		for i < len(n.seps) && key >= n.seps[i] {
			i++
		}
		n = n.children[i]
	}
	return n
}

// splitLeaf divides an overflowing leaf at its median key, keeping
// equal keys together when possible (median adjusted like the paper's
// multidimensional splits).
func (t *Tree) splitLeaf(leaf *node) {
	recs := leaf.recs
	mid := len(recs) / 2
	key := t.cfg.Key
	v := recs[mid].QI[key]
	if v == recs[0].QI[key] {
		for mid < len(recs) && recs[mid].QI[key] == recs[0].QI[key] {
			mid++
		}
		if mid == len(recs) {
			return // all keys equal: the leaf grows
		}
		v = recs[mid].QI[key]
	} else {
		for mid > 0 && recs[mid-1].QI[key] == v {
			mid--
		}
	}
	right := &node{recs: append([]attr.Record(nil), recs[mid:]...), next: leaf.next}
	leaf.recs = recs[:mid:mid]
	leaf.next = right
	t.insertIntoParent(leaf, v, right)
}

// insertIntoParent links a new right sibling under old's parent with
// separator sep, splitting internal nodes (and growing the root) as
// needed.
func (t *Tree) insertIntoParent(old *node, sep float64, right *node) {
	parent := old.parent
	if parent == nil {
		newRoot := &node{children: []*node{old, right}, seps: []float64{sep}}
		old.parent = newRoot
		right.parent = newRoot
		t.root = newRoot
		return
	}
	// Position of old among parent's children.
	pos := 0
	for pos < len(parent.children) && parent.children[pos] != old {
		pos++
	}
	parent.children = append(parent.children, nil)
	copy(parent.children[pos+2:], parent.children[pos+1:])
	parent.children[pos+1] = right
	parent.seps = append(parent.seps, 0)
	copy(parent.seps[pos+1:], parent.seps[pos:])
	parent.seps[pos] = sep
	right.parent = parent

	if len(parent.children) > t.cfg.Fanout {
		t.splitInternal(parent)
	}
}

// splitInternal divides an overflowing internal node; the middle
// separator moves up.
func (t *Tree) splitInternal(n *node) {
	mid := len(n.seps) / 2
	sep := n.seps[mid]
	right := &node{
		children: append([]*node(nil), n.children[mid+1:]...),
		seps:     append([]float64(nil), n.seps[mid+1:]...),
	}
	for _, c := range right.children {
		c.parent = right
	}
	n.children = n.children[: mid+1 : mid+1]
	n.seps = n.seps[:mid:mid]
	t.insertIntoParent(n, sep, right)
}

// Leaves returns every non-empty leaf's records in key order.
func (t *Tree) Leaves() [][]attr.Record {
	var out [][]attr.Record
	for leaf := t.first; leaf != nil; leaf = leaf.next {
		if len(leaf.recs) > 0 {
			out = append(out, leaf.recs)
		}
	}
	return out
}

// Range returns the records whose key lies in [lo, hi].
func (t *Tree) Range(lo, hi float64) []attr.Record {
	var out []attr.Record
	for leaf := t.findLeaf(lo); leaf != nil; leaf = leaf.next {
		for _, r := range leaf.recs {
			k := r.QI[t.cfg.Key]
			if k > hi {
				return out
			}
			if k >= lo {
				out = append(out, r)
			}
		}
	}
	return out
}

// CheckInvariants verifies B⁺-tree structure: sorted keys within and
// across leaves, separator consistency, uniform leaf depth, parent
// links, and the leaf chain covering every record exactly once.
func (t *Tree) CheckInvariants() error {
	key := t.cfg.Key
	leafDepth := -1
	var walk func(n *node, depth int, lo, hi float64, hasLo, hasHi bool) error
	walk = func(n *node, depth int, lo, hi float64, hasLo, hasHi bool) error {
		if n.isLeaf() {
			if leafDepth == -1 {
				leafDepth = depth
			} else if depth != leafDepth {
				return fmt.Errorf("bptree: leaf at depth %d, expected %d", depth, leafDepth)
			}
			for i, r := range n.recs {
				k := r.QI[key]
				if i > 0 && k < n.recs[i-1].QI[key] {
					return fmt.Errorf("bptree: leaf records out of order")
				}
				if hasLo && k < lo {
					return fmt.Errorf("bptree: key %v below bound %v", k, lo)
				}
				if hasHi && k >= hi {
					return fmt.Errorf("bptree: key %v at/above bound %v", k, hi)
				}
			}
			return nil
		}
		if len(n.children) != len(n.seps)+1 {
			return fmt.Errorf("bptree: %d children with %d separators", len(n.children), len(n.seps))
		}
		for i := 1; i < len(n.seps); i++ {
			if n.seps[i-1] >= n.seps[i] {
				return fmt.Errorf("bptree: separators out of order")
			}
		}
		for i, c := range n.children {
			if c.parent != n {
				return fmt.Errorf("bptree: child %d has wrong parent", i)
			}
			clo, chasLo := lo, hasLo
			chi, chasHi := hi, hasHi
			if i > 0 {
				clo, chasLo = n.seps[i-1], true
			}
			if i < len(n.seps) {
				chi, chasHi = n.seps[i], true
			}
			if err := walk(c, depth+1, clo, chi, chasLo, chasHi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0, 0, 0, false, false); err != nil {
		return err
	}
	// Leaf chain: key-ordered, covers size records.
	total := 0
	prev := 0.0
	havePrev := false
	for leaf := t.first; leaf != nil; leaf = leaf.next {
		for _, r := range leaf.recs {
			k := r.QI[key]
			if havePrev && k < prev {
				return fmt.Errorf("bptree: leaf chain out of order")
			}
			prev, havePrev = k, true
			total++
		}
	}
	if total != t.size {
		return fmt.Errorf("bptree: chain holds %d records, size %d", total, t.size)
	}
	return nil
}
