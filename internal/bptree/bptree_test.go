package bptree

import (
	"math/rand"
	"sort"
	"testing"

	"spatialanon/internal/attr"
	"spatialanon/internal/dataset"
)

func newAgeTree(t *testing.T, k int) *Tree {
	t.Helper()
	tr, err := New(Config{Schema: dataset.PatientsSchema(), Key: 0, BaseK: k})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	s := dataset.PatientsSchema()
	cases := []Config{
		{},
		{Schema: s, Key: -1, BaseK: 2},
		{Schema: s, Key: 3, BaseK: 2},
		{Schema: s, BaseK: 0},
		{Schema: s, BaseK: 2, LeafFactor: 1},
		{Schema: s, BaseK: 2, Fanout: 2},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
	tr := newAgeTree(t, 2)
	if tr.Key() != 0 || tr.Len() != 0 {
		t.Fatal("fresh tree wrong")
	}
}

func TestInsertOrderAndInvariants(t *testing.T) {
	tr := newAgeTree(t, 3)
	recs := dataset.GeneratePatients(1000, 30)
	for i, r := range recs {
		if err := tr.Insert(r); err != nil {
			t.Fatal(err)
		}
		if i%100 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(attr.Record{QI: []float64{1}}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}

	// Leaves cover all records in key order with bounded occupancy.
	leaves := tr.Leaves()
	total := 0
	prev := -1.0
	for _, leaf := range leaves {
		if len(leaf) > tr.leafCap() {
			// Only legal for a run of identical keys, which no B+-tree
			// can separate.
			for _, r := range leaf {
				if r.QI[0] != leaf[0].QI[0] {
					t.Fatalf("splittable leaf of %d records, cap %d", len(leaf), tr.leafCap())
				}
			}
		}
		for _, r := range leaf {
			if r.QI[0] < prev {
				t.Fatal("leaves out of key order")
			}
			prev = r.QI[0]
			total++
		}
	}
	if total != 1000 {
		t.Fatalf("leaves hold %d records", total)
	}
	// Figure 1(c)'s property: most leaves hold >= k records, so leaf
	// groups are (nearly) a k-anonymization of the key column already.
	under := 0
	for _, leaf := range leaves {
		if len(leaf) < 3 {
			under++
		}
	}
	if under > len(leaves)/10 {
		t.Fatalf("%d of %d leaves underfull", under, len(leaves))
	}
}

func TestRangeMatchesBruteForce(t *testing.T) {
	tr := newAgeTree(t, 4)
	recs := dataset.GeneratePatients(600, 31)
	for _, r := range recs {
		if err := tr.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(32))
	for q := 0; q < 60; q++ {
		lo := float64(18 + rng.Intn(70))
		hi := lo + float64(rng.Intn(20))
		got := tr.Range(lo, hi)
		var want []int64
		for _, r := range recs {
			if r.QI[0] >= lo && r.QI[0] <= hi {
				want = append(want, r.ID)
			}
		}
		gotIDs := make([]int64, len(got))
		for i, r := range got {
			gotIDs[i] = r.ID
		}
		sort.Slice(gotIDs, func(a, b int) bool { return gotIDs[a] < gotIDs[b] })
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		if len(gotIDs) != len(want) {
			t.Fatalf("[%v,%v]: got %d want %d", lo, hi, len(gotIDs), len(want))
		}
		for i := range want {
			if gotIDs[i] != want[i] {
				t.Fatalf("[%v,%v]: mismatch", lo, hi)
			}
		}
	}
}

func TestDuplicateKeysGrowLeaf(t *testing.T) {
	tr := newAgeTree(t, 2)
	for i := 0; i < 40; i++ {
		if err := tr.Insert(attr.Record{ID: int64(i), QI: []float64{30, 0, 53706}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	leaves := tr.Leaves()
	if len(leaves) != 1 || len(leaves[0]) != 40 {
		t.Fatalf("duplicate keys should stay in one oversized leaf, got %d leaves", len(leaves))
	}
	// Diversity resumes splitting.
	for i := 40; i < 100; i++ {
		if err := tr.Insert(attr.Record{ID: int64(i), QI: []float64{float64(18 + i%70), 0, 53000}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Leaves()) < 2 {
		t.Fatal("tree failed to split after diversity returned")
	}
}

func TestSortedAndReverseInsertion(t *testing.T) {
	for name, step := range map[string]int{"ascending": 1, "descending": -1} {
		tr := newAgeTree(t, 3)
		for i := 0; i < 500; i++ {
			v := i
			if step < 0 {
				v = 500 - i
			}
			if err := tr.Insert(attr.Record{ID: int64(i), QI: []float64{float64(v), 0, 53000}}); err != nil {
				t.Fatal(err)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tr.Len() != 500 {
			t.Fatalf("%s: Len = %d", name, tr.Len())
		}
	}
}
