package retry

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// transientErr and permanentErr exercise the structural Transient()
// convention without importing internal/fault.
type transientErr struct{}

func (transientErr) Error() string   { return "transient" }
func (transientErr) Transient() bool { return true }

type permanentErr struct{}

func (permanentErr) Error() string   { return "permanent" }
func (permanentErr) Transient() bool { return false }

func TestDo(t *testing.T) {
	cases := []struct {
		name      string
		policy    Policy
		failures  int   // leading failures before success
		err       error // the error those failures return
		wantCalls int
		wantErr   bool
	}{
		{"first try succeeds", Policy{Attempts: 4}, 0, nil, 1, false},
		{"transient absorbed", Policy{Attempts: 4}, 2, transientErr{}, 3, false},
		{"transient exhausts budget", Policy{Attempts: 3}, 5, transientErr{}, 3, true},
		{"permanent returns immediately", Policy{Attempts: 4}, 5, permanentErr{}, 1, true},
		{"untyped error returns immediately", Policy{Attempts: 4}, 5, errors.New("boom"), 1, true},
		{"zero attempts behaves as one", Policy{}, 1, transientErr{}, 1, true},
		{"negative attempts behaves as one", Policy{Attempts: -3}, 1, transientErr{}, 1, true},
		{"wrapped transient absorbed", Policy{Attempts: 2}, 1, fmt.Errorf("op: %w", transientErr{}), 2, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			calls := 0
			err := tc.policy.Do(func() error {
				calls++
				if calls <= tc.failures {
					return tc.err
				}
				return nil
			})
			if calls != tc.wantCalls {
				t.Errorf("calls = %d, want %d", calls, tc.wantCalls)
			}
			if (err != nil) != tc.wantErr {
				t.Errorf("err = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

func TestBackoffDeterministic(t *testing.T) {
	run := func() []time.Duration {
		var delays []time.Duration
		p := Policy{
			Attempts:  5,
			BaseDelay: 10 * time.Millisecond,
			MaxDelay:  40 * time.Millisecond,
			Seed:      42,
			Sleep:     func(d time.Duration) { delays = append(delays, d) },
		}
		p.Do(func() error { return transientErr{} })
		return delays
	}
	a, b := run(), run()
	if len(a) != 4 {
		t.Fatalf("expected 4 backoffs for 5 attempts, got %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("backoff %d differs across identical runs: %v vs %v", i, a[i], b[i])
		}
	}
	// Exponential-with-cap shape: each delay in [half, full] of the
	// doubling schedule 10ms, 20ms, 40ms, 40ms (capped).
	sched := []time.Duration{10, 20, 40, 40}
	for i, d := range a {
		base := sched[i] * time.Millisecond
		if d < base/2 || d > base {
			t.Errorf("backoff %d = %v outside [%v, %v]", i, d, base/2, base)
		}
	}
}

func TestBackoffSeedsDiverge(t *testing.T) {
	delays := func(seed int64) []time.Duration {
		var out []time.Duration
		p := Policy{Attempts: 6, BaseDelay: time.Second, Seed: seed,
			Sleep: func(d time.Duration) { out = append(out, d) }}
		p.Do(func() error { return transientErr{} })
		return out
	}
	a, b := delays(1), delays(2)
	same := true
	for i := range a {
		same = same && a[i] == b[i]
	}
	if same {
		t.Fatal("distinct seeds produced identical jitter streams")
	}
}

func TestNilSleepComputesNoDelay(t *testing.T) {
	// With no Sleep hook the policy must not stall; just assert it
	// terminates and retries the full budget.
	calls := 0
	p := Policy{Attempts: 3, BaseDelay: time.Hour}
	err := p.Do(func() error { calls++; return transientErr{} })
	if calls != 3 || err == nil {
		t.Fatalf("calls=%d err=%v", calls, err)
	}
}

func TestIsTransient(t *testing.T) {
	if IsTransient(nil) {
		t.Error("nil is not transient")
	}
	if IsTransient(errors.New("x")) {
		t.Error("untyped error is not transient")
	}
	if IsTransient(permanentErr{}) {
		t.Error("Transient()=false is not transient")
	}
	if !IsTransient(fmt.Errorf("wrap: %w", transientErr{})) {
		t.Error("wrapped transient not recognized")
	}
}
