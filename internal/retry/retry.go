// Package retry is the repository's single bounded-retry helper for
// transient storage faults. The loader in internal/rplustree, the WAL
// appender and the checkpoint write-back path all face the same
// question — "this operation failed; is trying again useful, and how
// many times?" — and answering it three different ways would mean
// three subtly different durability stories. One policy type answers
// it once.
//
// Retrying is only correct for faults that self-identify as transient:
// any error in the chain exposing `Transient() bool` participates (the
// convention established by internal/fault, duplicated structurally
// here so this package stays dependency-free). Permanent faults,
// checksum mismatches and crash errors are returned immediately.
//
// Backoff is deterministic: the delay for attempt i is a pure function
// of (Seed, i), drawn from an internal/detrng stream, so a replayed
// fault schedule produces byte-identical retry behaviour. The policy
// never reads a clock — delays are handed to an injectable Sleep hook,
// which defaults to nil (no waiting at all). That default is right for
// this repository's simulated storage, where a transient fault clears
// on the next call by construction; a deployment against real devices
// installs time.Sleep.
package retry

import (
	"errors"
	"time"

	"spatialanon/internal/detrng"
)

// Policy bounds and paces retries of one fallible operation.
type Policy struct {
	// Attempts is the total number of tries, including the first.
	// Values below 1 behave as 1 (a single try, no retry).
	Attempts int
	// BaseDelay is the backoff before the first retry; each further
	// retry doubles it. Zero means no delay is ever requested.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth. Zero means uncapped.
	MaxDelay time.Duration
	// Seed selects the deterministic jitter stream. Jitter scales each
	// delay by a factor in [0.5, 1.0) so synchronized retriers spread
	// out; with BaseDelay zero the seed is unused.
	Seed int64
	// Sleep receives each backoff delay. Nil means delays are computed
	// but not waited for — correct for simulated storage and tests.
	Sleep func(time.Duration)
}

// Do runs op, retrying while it fails with a transient fault, up to
// p.Attempts total tries. The last error is returned; nil on success.
func (p Policy) Do(op func() error) error {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var rng interface{ Float64() float64 }
	for attempt := 0; ; attempt++ {
		err := op()
		if err == nil {
			return nil
		}
		if attempt+1 >= attempts || !IsTransient(err) {
			return err
		}
		if d := p.delay(attempt, &rng); d > 0 && p.Sleep != nil {
			p.Sleep(d)
		}
	}
}

// delay computes the backoff after the given zero-based failed attempt.
// The rng is created lazily on first use so fault-free runs never touch
// the stream.
func (p Policy) delay(attempt int, rng *interface{ Float64() float64 }) time.Duration {
	if p.BaseDelay <= 0 {
		return 0
	}
	d := p.BaseDelay << uint(attempt)
	if d <= 0 || (p.MaxDelay > 0 && d > p.MaxDelay) {
		d = p.MaxDelay
		if d <= 0 {
			d = p.BaseDelay
		}
	}
	if *rng == nil {
		*rng = detrng.New(p.Seed)
	}
	return time.Duration((0.5 + 0.5*(*rng).Float64()) * float64(d))
}

// Derive returns a copy of the policy whose jitter stream is a
// deterministic function of (p.Seed, shard) — the retry-side analogue
// of fault.DeriveSeed. When one policy fans out across shards, every
// shard must draw from its own stream: sharing one would make shard
// i's delays depend on how often shard j retried, and the whole point
// of jitter is that synchronized retriers decorrelate. The mix is
// splitmix64, duplicated structurally from internal/fault so this
// package stays dependency-free.
func (p Policy) Derive(shard int) Policy {
	z := uint64(p.Seed) + uint64(shard+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	p.Seed = int64(z ^ (z >> 31))
	return p
}

// IsTransient reports whether err identifies itself as retryable: any
// error in the chain exposing `Transient() bool` returning true. This
// mirrors fault.IsTransient without importing the injector package.
func IsTransient(err error) bool {
	var tr interface{ Transient() bool }
	return errors.As(err, &tr) && tr.Transient()
}
