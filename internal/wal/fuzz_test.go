package wal

import (
	"testing"

	"spatialanon/internal/attr"
	"spatialanon/internal/pager"
)

// FuzzDecode holds the record decoder to its contract: arbitrary bytes
// yield either an error or a record that re-encodes to the identical
// payload — never a panic, never an unbounded allocation.
func FuzzDecode(f *testing.F) {
	seedRecords := []Record{
		{Type: TypeInsert, Seq: 1, Rec: attr.Record{ID: 7, QI: []float64{1, 2}, Sensitive: "s"}},
		{Type: TypeDelete, Seq: 2, ID: 7, OldQI: []float64{1, 2}},
		{Type: TypeUpdate, Seq: 3, ID: 7, OldQI: []float64{1, 2}, Rec: attr.Record{ID: 7, QI: []float64{3, 4}}},
		{Type: TypeCheckpointBegin, Seq: 4},
		{Type: TypeCheckpointEnd, Seq: 5, Manifest: &Manifest{Seq: 5, SnapLen: 64, SnapCRC: 1, Pages: []pager.PageID{1, 2}}},
	}
	for _, r := range seedRecords {
		payload, err := Encode(r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
	}
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{5, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := Decode(data)
		if err != nil {
			return
		}
		// A successfully decoded record must re-encode byte-identically:
		// Decode accepts exactly the canonical encoding, nothing looser.
		out, err := Encode(rec)
		if err != nil {
			t.Fatalf("decoded record does not re-encode: %v", err)
		}
		if string(out) != string(data) {
			t.Fatalf("re-encode differs:\n in  %x\n out %x", data, out)
		}
	})
}
