package wal

import (
	"fmt"
	"math"
	"os"
	"path/filepath"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/core"
	"spatialanon/internal/pager"
	"spatialanon/internal/retry"
	"spatialanon/internal/rplustree"
	"spatialanon/internal/verify"
)

// File names inside a store directory.
const (
	logName   = "wal.log"
	tmpName   = "wal.tmp"
	pagesName = "pages.db"
)

// Options parameterizes a durable Store.
type Options struct {
	// Dir is the store directory; it holds wal.log and pages.db.
	Dir string
	// Tree configures the underlying index.
	Tree rplustree.Config
	// CheckpointEvery checkpoints automatically after this many logged
	// operations since the last checkpoint; 0 means checkpoints happen
	// only when Checkpoint is called.
	CheckpointEvery int
	// PageSize is the pager page size for checkpoint snapshots.
	// Default 4096.
	PageSize int
	// PoolPages is the pager pool capacity. Default 64.
	PoolPages int
	// NoSync skips fsync on log appends and checkpoints. The crash
	// matrix uses it: simulated crashes cut the byte stream exactly
	// where the injector says, so real fsyncs only cost time there.
	NoSync bool
	// Crash, when non-nil, is the crash-point injector for WAL appends
	// (*fault.Crash implements it).
	Crash CrashPolicy
	// PagerFault, when non-nil, is installed as the snapshot pager's
	// fault policy; a *fault.Crash here shares its durable-operation
	// clock between page write-backs and WAL appends.
	PagerFault pager.FaultPolicy
	// Retry bounds transient-fault retries of log writes. Zero value
	// means a single try.
	Retry retry.Policy
	// AppendFault, when non-nil, injects per-attempt write/fsync faults
	// into the log appender (*fault.Flaky implements it).
	AppendFault AppendFault
}

func (o Options) withDefaults() Options {
	if o.PageSize == 0 {
		o.PageSize = 4096
	}
	if o.PoolPages == 0 {
		o.PoolPages = 64
	}
	return o
}

// RecoveryStats describes what it took to reopen a store.
type RecoveryStats struct {
	// CheckpointSeq is the sequence number folded into the snapshot the
	// recovery started from.
	CheckpointSeq uint64
	// Replayed is the number of committed log-tail operations applied
	// on top of the snapshot.
	Replayed int
	// TornBytes is the length of the discarded uncommitted tail.
	TornBytes int
	// SnapshotPages and SnapshotBytes size the checkpoint image read.
	SnapshotPages int
	SnapshotBytes int
	// LogBytes is the size of the log image scanned.
	LogBytes int
	// PagesFreed counts disk pages leaked by an interrupted checkpoint
	// and reclaimed during recovery.
	PagesFreed int
	// PagerReads/PagerWrites are the pager I/O counters accumulated
	// during recovery.
	PagerReads  int64
	PagerWrites int64
}

// Store is a crash-consistent anonymizing index: an rplustree whose
// maintenance operations are write-ahead logged and whose state is
// periodically checkpointed, with audited recovery. Not safe for
// concurrent use; internal/serve wraps a Store in a group-commit
// front end that serializes all access through one committer
// goroutine and serves readers from immutable snapshots.
type Store struct {
	opts      Options
	tree      *rplustree.Tree
	w         *Writer
	pg        *pager.Pager
	seq       uint64
	sinceCkpt int
	snapPages []pager.PageID
	recovery  RecoveryStats
	audited   bool
	dead      error
	// divergent records that the live tree no longer matches the
	// committed log (an applyLive failure). Recover must then rebuild
	// from disk; the in-memory tree has forfeited its authority.
	divergent bool
}

// Create initializes a new store in opts.Dir (created if absent). The
// directory must not already contain a store. The empty tree is
// checkpointed immediately, so a crash at any later point — including
// before the first operation — recovers cleanly.
func Create(opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	logPath := filepath.Join(opts.Dir, logName)
	if _, err := os.Stat(logPath); err == nil {
		return nil, fmt.Errorf("wal: %s already holds a store; use Open", opts.Dir)
	}
	tree, err := rplustree.New(opts.Tree)
	if err != nil {
		return nil, err
	}
	d, err := pager.CreateDiskFile(filepath.Join(opts.Dir, pagesName), opts.PageSize)
	if err != nil {
		return nil, err
	}
	pg, err := pager.NewWithDisk(opts.PageSize, opts.PoolPages, d)
	if err != nil {
		d.Close()
		return nil, err
	}
	pg.SetFaultPolicy(opts.PagerFault)
	s := &Store{opts: opts, tree: tree, pg: pg}
	if err := s.writeCheckpoint(); err != nil {
		pg.Close()
		return nil, err
	}
	if err := s.audit(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// Open recovers a store from opts.Dir: load the last complete
// checkpoint, replay the committed log tail, discard any torn tail,
// reclaim pages leaked by an interrupted checkpoint — and then audit
// the result with internal/verify before the store will publish
// anything. RecoveryStats reports what the reopen cost.
func Open(opts Options) (*Store, error) {
	opts = opts.withDefaults()
	logPath := filepath.Join(opts.Dir, logName)
	img, err := os.ReadFile(logPath)
	if err != nil {
		return nil, fmt.Errorf("wal: no store in %s: %w", opts.Dir, err)
	}
	// A wal.tmp is the residue of a checkpoint that died before its
	// atomic rename; the checkpoint never happened.
	os.Remove(filepath.Join(opts.Dir, tmpName))

	d, err := pager.OpenDiskFile(filepath.Join(opts.Dir, pagesName), opts.PageSize)
	if err != nil {
		return nil, err
	}
	pg, err := pager.NewWithDisk(opts.PageSize, opts.PoolPages, d)
	if err != nil {
		d.Close()
		return nil, err
	}
	pg.SetFaultPolicy(opts.PagerFault)
	s := &Store{opts: opts, pg: pg}
	s.recovery.LogBytes = len(img)

	if err := s.recover(img); err != nil {
		pg.Close()
		return nil, err
	}
	// Truncate the uncommitted tail so new appends extend the
	// committed prefix instead of hiding behind a torn frame.
	committed := len(img) - s.recovery.TornBytes
	if s.recovery.TornBytes > 0 {
		if err := os.Truncate(logPath, int64(committed)); err != nil {
			pg.Close()
			return nil, err
		}
	}
	w, err := openWriter(logPath, opts.Crash, opts.NoSync, opts.Retry, opts.AppendFault)
	if err != nil {
		pg.Close()
		return nil, err
	}
	s.w = w
	if err := s.audit(); err != nil {
		s.Close()
		return nil, err
	}
	st := pg.Stats()
	s.recovery.PagerReads, s.recovery.PagerWrites = st.Reads, st.Writes
	return s, nil
}

// recover rebuilds the tree from the log image: manifest first, then
// the committed tail.
func (s *Store) recover(img []byte) error {
	sc := NewScanner(img)
	first, ok := sc.Next()
	if !ok {
		return fmt.Errorf("wal: log has no committed checkpoint manifest")
	}
	rec, err := Decode(first)
	if err != nil {
		return fmt.Errorf("wal: manifest: %w", err)
	}
	if rec.Type != TypeCheckpointEnd || rec.Manifest == nil {
		return fmt.Errorf("wal: log starts with %v, want checkpoint-end", rec.Type)
	}
	m := rec.Manifest

	// Load the snapshot from its checksummed pages. Each read runs
	// under the store's retry policy: a transient device fault during
	// resurrection must not condemn an otherwise intact image.
	snap := make([]byte, 0, int(m.SnapLen))
	for _, id := range m.Pages {
		var data []byte
		err := s.opts.Retry.Do(func() error {
			var rerr error
			data, rerr = s.pg.Read(id)
			return rerr
		})
		if err != nil {
			return fmt.Errorf("wal: checkpoint page %d: %w", id, err)
		}
		snap = append(snap, data...)
		if err := s.pg.Unpin(id); err != nil {
			return err
		}
	}
	if int(m.SnapLen) > len(snap) {
		return fmt.Errorf("wal: manifest claims %d snapshot bytes, pages hold %d", m.SnapLen, len(snap))
	}
	snap = snap[:m.SnapLen]
	if got := Checksum(snap); got != m.SnapCRC {
		return fmt.Errorf("wal: snapshot checksum %08x, manifest says %08x", got, m.SnapCRC)
	}
	tree, err := rplustree.DecodeSnapshot(s.opts.Tree, snap)
	if err != nil {
		return err
	}
	s.tree = tree
	s.seq = m.Seq
	s.snapPages = append([]pager.PageID(nil), m.Pages...)
	s.recovery.CheckpointSeq = m.Seq
	s.recovery.SnapshotPages = len(m.Pages)
	s.recovery.SnapshotBytes = int(m.SnapLen)

	// Replay the committed tail.
	for {
		payload, ok := sc.Next()
		if !ok {
			break
		}
		rec, err := Decode(payload)
		if err != nil {
			return fmt.Errorf("wal: replaying op %d: %w", s.seq+1, err)
		}
		if rec.Type == TypeCheckpointBegin {
			continue // intent marker; carries no state
		}
		if rec.Type == TypeCheckpointEnd {
			return fmt.Errorf("wal: checkpoint manifest in log tail")
		}
		if rec.Seq != s.seq+1 {
			return fmt.Errorf("wal: replay sequence %d, want %d", rec.Seq, s.seq+1)
		}
		if err := s.apply(rec); err != nil {
			return err
		}
		// A batch frame commits len(Batch) consecutive operations in
		// one durable unit; the scanner already guaranteed it is whole.
		nops := 1
		if rec.Type == TypeBatch {
			nops = len(rec.Batch)
		}
		s.seq = rec.Seq + uint64(nops) - 1
		s.recovery.Replayed += nops
		s.sinceCkpt += nops
	}
	s.recovery.TornBytes = sc.TornBytes()

	// Reclaim pages a dying checkpoint wrote but never published.
	live := make(map[pager.PageID]bool, len(m.Pages))
	for _, id := range m.Pages {
		live[id] = true
	}
	onDisk, err := s.pg.DiskPages()
	if err != nil {
		return err
	}
	for _, id := range onDisk {
		if !live[id] {
			if err := s.pg.Free(id); err != nil {
				return err
			}
			s.recovery.PagesFreed++
		}
	}
	return nil
}

// apply performs one logged operation on the tree.
func (s *Store) apply(r Record) error {
	switch r.Type {
	case TypeInsert:
		return s.tree.Insert(r.Rec)
	case TypeDelete:
		_, err := s.tree.Delete(r.ID, r.OldQI)
		return err
	case TypeUpdate:
		_, err := s.tree.Update(r.ID, r.OldQI, r.Rec)
		return err
	case TypeBatch:
		for _, op := range r.Batch {
			if _, err := s.applyOp(op); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("wal: apply of %v record", r.Type)
}

// applyOp performs one batched operation on the tree, reporting
// whether the targeted record existed (inserts always report true).
func (s *Store) applyOp(op Op) (bool, error) {
	switch op.Type {
	case TypeInsert:
		return true, s.tree.Insert(op.Rec)
	case TypeDelete:
		return s.tree.Delete(op.ID, op.OldQI)
	case TypeUpdate:
		return s.tree.Update(op.ID, op.OldQI, op.Rec)
	}
	return false, fmt.Errorf("wal: apply of %v batch op", op.Type)
}

// audit is the recovery gate: the independent auditor must re-prove
// the tree's structural safety, and — once the store holds at least
// BaseK records, the threshold below which no release exists — the
// k-anonymity and Lemma-1 k-boundness of the base release. Only then
// may the store publish.
func (s *Store) audit() error {
	if err := verify.Tree(s.tree, verify.TreeOptions{}); err != nil {
		return fmt.Errorf("wal: recovered tree failed audit: %w", err)
	}
	k := s.tree.Config().BaseK
	if s.tree.Len() >= k {
		base, err := core.LeafScan(partitionsFromLeaves(s.tree.Leaves()), anonmodel.KAnonymity{K: k})
		if err != nil {
			return fmt.Errorf("wal: recovered tree failed audit: %w", err)
		}
		if err := verify.Release(base, anonmodel.KAnonymity{K: k}); err != nil {
			return fmt.Errorf("wal: recovered release failed audit: %w", err)
		}
		if err := verify.Releases([][]anonmodel.Partition{base}, k); err != nil {
			return fmt.Errorf("wal: recovered release failed k-boundness audit: %w", err)
		}
	}
	s.audited = true
	return nil
}

// partitionsFromLeaves mirrors core's leaf-to-partition conversion:
// one born-compacted partition per leaf MBR.
func partitionsFromLeaves(leaves []rplustree.LeafView) []anonmodel.Partition {
	out := make([]anonmodel.Partition, len(leaves))
	for i, l := range leaves {
		out[i] = anonmodel.Partition{Box: l.MBR.Clone(), Records: l.Records}
	}
	return out
}

// die poisons the store after a crash or unrecoverable append error.
// The poisoning error wraps ErrPoisoned and the cause, so errors.Is
// matches the sentinel while IsCrash / retry.IsTransient still see
// the original fault through the chain.
func (s *Store) die(err error) {
	if s.dead == nil {
		s.dead = fmt.Errorf("%w: %w", ErrPoisoned, err)
	}
}

// validateQI rejects at ingress anything the recovery path would
// refuse later: wrong dimensionality (tree ops error on it during
// replay) and non-finite coordinates (DecodeSnapshot refuses NaN, so
// one such record folded into a checkpoint would make every subsequent
// Open fail with no self-healing). Write-ahead logging means a record
// is durable before it is applied — so nothing may reach the WAL that
// apply, checkpoint, or recovery could reject.
func (s *Store) validateQI(qi []float64) error {
	return ValidateQI(s.tree.Config().Schema.Dims(), qi)
}

// ValidateQI is the store's ingress rule as a stateless function, so
// concurrent front ends can validate on the submitting goroutine
// before an operation is enqueued into a shared batch (a bad op must
// fail its own caller, not everyone sharing its commit frame).
func ValidateQI(dims int, qi []float64) error {
	if len(qi) != dims {
		return fmt.Errorf("wal: record has %d attributes, store schema has %d", len(qi), dims)
	}
	for i, v := range qi {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("wal: record coordinate %d is not finite (%v)", i, v)
		}
	}
	return nil
}

// ValidateOp applies the ingress rules to one batch operation.
func ValidateOp(dims int, op Op) error {
	switch op.Type {
	case TypeInsert:
		return ValidateQI(dims, op.Rec.QI)
	case TypeDelete:
		return ValidateQI(dims, op.OldQI)
	case TypeUpdate:
		if err := ValidateQI(dims, op.OldQI); err != nil {
			return err
		}
		return ValidateQI(dims, op.Rec.QI)
	}
	return fmt.Errorf("wal: batch op of type %v", op.Type)
}

// applyLive performs a committed operation on the live tree. The log
// already says the operation happened, so a failure here is
// log/tree divergence: later checkpoints and reads would be built on
// state the durable log contradicts. That cannot be repaired in
// place, so the store is poisoned. Ingress validation makes this
// unreachable for well-formed stores; it is the backstop.
func (s *Store) applyLive(op func() error) error {
	if err := op(); err != nil {
		s.divergent = true
		s.die(fmt.Errorf("wal: tree diverged from committed log: %w", err))
		return s.dead
	}
	return nil
}

// log appends one framed record durably; the operation is committed
// iff this returns nil. A transient append failure whose rollback
// succeeded leaves the log clean and the store's seq/tree untouched —
// the store SURVIVES it, and the caller may retry the whole operation
// later. Only a dead writer (crash, failed rollback) or a
// non-transient fault poisons the store.
func (s *Store) log(r Record) error {
	payload, err := Encode(r)
	if err != nil {
		return err
	}
	if err := s.w.Append(payload); err != nil {
		if s.w.Err() != nil || !retry.IsTransient(err) {
			s.die(err)
			return s.dead
		}
		return err
	}
	return nil
}

// Insert logs and applies one insertion. WAL-before-apply: the record
// is in the tree only if its log frame is durable.
func (s *Store) Insert(rec attr.Record) error {
	if s.dead != nil {
		return s.dead
	}
	if err := s.validateQI(rec.QI); err != nil {
		return err
	}
	if err := s.log(Record{Type: TypeInsert, Seq: s.seq + 1, Rec: rec}); err != nil {
		return err
	}
	s.seq++
	s.sinceCkpt++
	if err := s.applyLive(func() error { return s.tree.Insert(rec) }); err != nil {
		return err
	}
	return s.maybeCheckpoint()
}

// Delete logs and applies one deletion, reporting whether the record
// existed. A delete of an absent record still logs (write-ahead means
// logging before knowing); replay tolerates the no-op.
func (s *Store) Delete(id int64, qi []float64) (bool, error) {
	if s.dead != nil {
		return false, s.dead
	}
	if err := s.validateQI(qi); err != nil {
		return false, err
	}
	if err := s.log(Record{Type: TypeDelete, Seq: s.seq + 1, ID: id, OldQI: qi}); err != nil {
		return false, err
	}
	s.seq++
	s.sinceCkpt++
	var found bool
	if err := s.applyLive(func() error {
		var err error
		found, err = s.tree.Delete(id, qi)
		return err
	}); err != nil {
		return found, err
	}
	return found, s.maybeCheckpoint()
}

// Update logs and applies one relocation, reporting whether the
// record existed.
func (s *Store) Update(id int64, oldQI []float64, rec attr.Record) (bool, error) {
	if s.dead != nil {
		return false, s.dead
	}
	if err := s.validateQI(oldQI); err != nil {
		return false, err
	}
	if err := s.validateQI(rec.QI); err != nil {
		return false, err
	}
	if err := s.log(Record{Type: TypeUpdate, Seq: s.seq + 1, ID: id, OldQI: oldQI, Rec: rec}); err != nil {
		return false, err
	}
	s.seq++
	s.sinceCkpt++
	var found bool
	if err := s.applyLive(func() error {
		var err error
		found, err = s.tree.Update(id, oldQI, rec)
		return err
	}); err != nil {
		return found, err
	}
	return found, s.maybeCheckpoint()
}

// ApplyBatch logs and applies a group of operations as ONE durable
// log frame — one write, one fsync — turning N per-operation syncs
// into one. The batch is all-or-nothing at the frame boundary: a
// crash mid-append tears the whole frame, and recovery's scanner
// drops a torn frame entirely, so no prefix of a batch is ever
// replayed. The returned slice reports, per operation, whether its
// target existed (inserts always true). Callers submitting on behalf
// of independent clients should pre-validate each op with ValidateOp:
// ApplyBatch rejects the whole batch on the first invalid op.
func (s *Store) ApplyBatch(ops []Op) ([]bool, error) {
	if s.dead != nil {
		return nil, s.dead
	}
	if len(ops) == 0 {
		return nil, nil
	}
	dims := s.tree.Config().Schema.Dims()
	for i, op := range ops {
		if err := ValidateOp(dims, op); err != nil {
			return nil, fmt.Errorf("wal: batch op %d: %w", i, err)
		}
	}
	if err := s.log(Record{Type: TypeBatch, Seq: s.seq + 1, Batch: ops}); err != nil {
		return nil, err
	}
	s.seq += uint64(len(ops))
	s.sinceCkpt += len(ops)
	found := make([]bool, len(ops))
	for i := range ops {
		op := ops[i]
		var ferr error
		if err := s.applyLive(func() error {
			found[i], ferr = s.applyOp(op)
			return ferr
		}); err != nil {
			return found, err
		}
	}
	return found, s.maybeCheckpoint()
}

// maybeCheckpoint runs an automatic checkpoint when the configured
// operation budget since the last one is spent. A transiently aborted
// checkpoint is swallowed: the operation that triggered it has
// already committed, sinceCkpt keeps growing, so the very next
// operation triggers the checkpoint again. Swallowing it here is what
// lets callers treat any transient error from Insert/ApplyBatch as
// "the operation did not happen" and retry the whole operation —
// which would double-commit if a committed-but-unpointed batch could
// surface a transient error.
func (s *Store) maybeCheckpoint() error {
	if s.opts.CheckpointEvery <= 0 || s.sinceCkpt < s.opts.CheckpointEvery {
		return nil
	}
	if err := s.Checkpoint(); err != nil {
		if s.dead == nil && retry.IsTransient(err) {
			return nil
		}
		return err
	}
	return nil
}

// Checkpoint serializes the tree into pager pages and truncates the
// log: the new log file holds only the manifest, atomically renamed
// into place. A transient fault with a clean rollback aborts the
// checkpoint but leaves the store serviceable: the old log and writer
// are intact until the final rename, the tree is untouched, and pages
// the aborted attempt allocated are swept as unreferenced by the next
// recovery. Any other error — including an injected crash — poisons
// the store, and recovery falls back to the previous checkpoint plus
// the old log.
func (s *Store) Checkpoint() error {
	if s.dead != nil {
		return s.dead
	}
	if err := s.writeCheckpoint(); err != nil {
		if s.dead == nil && retry.IsTransient(err) && (s.w == nil || s.w.Err() == nil) {
			return err
		}
		s.die(err)
		return s.dead
	}
	return nil
}

// writeCheckpoint is the checkpoint protocol. It is also the store
// bootstrap: with no writer yet (Create), steps touching the old log
// are skipped.
func (s *Store) writeCheckpoint() error {
	// Announce intent in the old log. Replay ignores the marker; its
	// append exercises the durability path so crash schedules can land
	// mid-checkpoint.
	if s.w != nil {
		if err := s.log(Record{Type: TypeCheckpointBegin, Seq: s.seq}); err != nil {
			return err
		}
	}
	snap, err := s.tree.EncodeSnapshot()
	if err != nil {
		return err
	}

	// Chop the snapshot into sealed pager pages.
	pageSize := s.opts.PageSize
	var pages []pager.PageID
	for off := 0; off < len(snap) || (off == 0 && len(snap) == 0); off += pageSize {
		id, data, err := s.pg.Alloc()
		if err != nil {
			return err
		}
		end := off + pageSize
		if end > len(snap) {
			end = len(snap)
		}
		if off <= end {
			copy(data, snap[off:end])
		}
		if err := s.pg.Unpin(id); err != nil {
			return err
		}
		pages = append(pages, id)
		if len(snap) == 0 {
			break
		}
	}
	if err := s.pg.Flush(); err != nil {
		return err
	}
	if !s.opts.NoSync {
		if err := s.pg.Sync(); err != nil {
			return err
		}
	}

	// Publish: manifest-only log written aside, then atomically renamed
	// over the live log.
	m := &Manifest{Seq: s.seq, SnapLen: uint32(len(snap)), SnapCRC: Checksum(snap), Pages: pages}
	payload, err := Encode(Record{Type: TypeCheckpointEnd, Seq: s.seq, Manifest: m})
	if err != nil {
		return err
	}
	tmpPath := filepath.Join(s.opts.Dir, tmpName)
	logPath := filepath.Join(s.opts.Dir, logName)
	os.Remove(tmpPath)
	w2, err := openWriter(tmpPath, s.opts.Crash, s.opts.NoSync, s.opts.Retry, s.opts.AppendFault)
	if err != nil {
		return err
	}
	if err := w2.Append(payload); err != nil {
		w2.Close()
		return err
	}
	if err := os.Rename(tmpPath, logPath); err != nil {
		w2.Close()
		return err
	}
	if !s.opts.NoSync {
		if err := syncDir(s.opts.Dir); err != nil {
			w2.Close()
			return err
		}
	}
	if s.w != nil {
		s.w.Close()
	}
	s.w = w2

	// The old snapshot's pages are garbage now; reclaim them. A crash
	// here leaks them at worst — the next Open sweeps unreferenced
	// pages.
	for _, id := range s.snapPages {
		if err := s.pg.Free(id); err != nil {
			return err
		}
	}
	s.snapPages = pages
	s.sinceCkpt = 0
	return nil
}

// syncDir fsyncs a directory so a rename inside it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Release materializes the anonymized view at granularity k1 (0 =
// base k) via the leaf scan — but only from an audited state: a store
// whose recovery audit did not pass never gets here, and a poisoned
// (crashed) store refuses too.
func (s *Store) Release(k1 int) ([]anonmodel.Partition, error) {
	if s.dead != nil {
		return nil, s.dead
	}
	if !s.audited {
		return nil, fmt.Errorf("wal: release from unaudited store")
	}
	k := s.tree.Config().BaseK
	base, err := core.LeafScan(partitionsFromLeaves(s.tree.Leaves()), anonmodel.KAnonymity{K: k})
	if err != nil {
		return nil, err
	}
	if k1 == 0 || k1 == k {
		return base, nil
	}
	if k1 < k {
		return nil, fmt.Errorf("wal: granularity %d below base k %d", k1, k)
	}
	return core.LeafScan(base, anonmodel.KAnonymity{K: k1})
}

// ScrubReport summarizes one scrub pass over the store's pages.
type ScrubReport struct {
	// Scanned counts on-disk pages checked against their seals.
	Scanned int
	// Corrupt lists the pages whose seal no longer matched their bytes.
	Corrupt []pager.PageID
	// Freed counts rotten pages outside the live checkpoint that were
	// quarantined (freed); they were garbage a crash or an aborted
	// checkpoint left behind, so nothing is lost.
	Freed int
	// Rewritten reports that rot had reached the live checkpoint and the
	// checkpoint was rewritten from the live tree.
	Rewritten bool
}

// Scrub checks every on-disk page against its sealed checksum and
// repairs what it finds: a rotten page outside the live checkpoint is
// quarantined (freed — it is residue, not state), and rot inside the
// live checkpoint triggers a fresh checkpoint from the live tree,
// which by WAL-before-apply equals the rotted snapshot plus the
// committed log tail — the repair the rotted page would have needed.
// Detecting rot at rest here, on a schedule, is what keeps a
// bit-flipped checkpoint page from lying dormant until the reopen
// that needs it.
func (s *Store) Scrub() (ScrubReport, error) {
	var rep ScrubReport
	if s.dead != nil {
		return rep, s.dead
	}
	scanned, corrupt, err := s.pg.VerifyPages()
	rep.Scanned = scanned
	rep.Corrupt = corrupt
	if err != nil {
		return rep, err
	}
	if len(corrupt) == 0 {
		return rep, nil
	}
	live := make(map[pager.PageID]bool, len(s.snapPages))
	for _, id := range s.snapPages {
		live[id] = true
	}
	liveRot := false
	for _, id := range corrupt {
		if live[id] {
			liveRot = true
			continue
		}
		if err := s.pg.Free(id); err != nil {
			return rep, err
		}
		rep.Freed++
	}
	if !liveRot {
		return rep, nil
	}
	if !s.audited || s.divergent {
		// Backstop: with neither a clean durable image nor an
		// authoritative tree there is nothing to rebuild from.
		s.die(fmt.Errorf("wal: scrub found rot in the live checkpoint of an unauditable store"))
		return rep, s.dead
	}
	// The live tree is authoritative; rewriting the checkpoint from it
	// also frees the rotted pages (they belong to the old snapshot).
	if err := s.Checkpoint(); err != nil {
		return rep, err
	}
	rep.Rewritten = true
	return rep, nil
}

// Recover rebuilds a poisoned store in place, without a process
// restart: close the dead handles, re-run the full committed-prefix
// recovery against the durable image (exactly what a reopening
// process would do, audit included), and adopt the fresh state. If
// the durable image itself is unrecoverable — bit rot in a checkpoint
// page, say — but the live tree is still authoritative (audited at
// the last recovery and never diverged from the committed log, so by
// WAL-before-apply it equals the last checkpoint plus the committed
// tail), the store reseeds the durable image from the live tree and
// recovers from that. Returns nil iff the store is serviceable again;
// on failure the store stays poisoned. Callers owning concurrency
// (internal/serve) must route this through the same goroutine that
// owns all other store access.
func (s *Store) Recover() error {
	authoritative := s.audited && !s.divergent && s.tree != nil
	s.closeHandles()
	fresh, err := Open(s.opts)
	if err != nil && authoritative {
		if rerr := s.reseed(); rerr != nil {
			err = fmt.Errorf("%w; reseed from live tree also failed: %w", err, rerr)
		} else {
			fresh, err = Open(s.opts)
		}
	}
	if err != nil {
		s.die(err) // a first poisoning, if the store was healthy on entry
		return fmt.Errorf("wal: resurrection failed: %w", err)
	}
	s.adopt(fresh)
	return nil
}

// closeHandles releases the writer and pager without flushing pooled
// pages: a poisoned store's pool must not decide what reaches disk,
// and a healthy store has no dirty pages outside the checkpoint
// protocol anyway.
func (s *Store) closeHandles() {
	if s.w != nil {
		s.w.Close()
		s.w = nil
	}
	if s.pg != nil {
		s.pg.CloseNoFlush()
		s.pg = nil
	}
}

// reseed rebuilds the durable image — pages.db and a manifest-only
// wal.log — from the live tree. Only called when the tree is
// authoritative; the rebuilt image is then handed to Open for the
// real audited recovery. CreateDiskFile truncates, so whatever rot
// the old image held is gone.
func (s *Store) reseed() error {
	d, err := pager.CreateDiskFile(filepath.Join(s.opts.Dir, pagesName), s.opts.PageSize)
	if err != nil {
		return err
	}
	pg, err := pager.NewWithDisk(s.opts.PageSize, s.opts.PoolPages, d)
	if err != nil {
		d.Close()
		return err
	}
	pg.SetFaultPolicy(s.opts.PagerFault)
	s.pg = pg
	s.snapPages = nil // the old IDs belong to the discarded image
	if err := s.writeCheckpoint(); err != nil {
		s.closeHandles()
		return err
	}
	s.closeHandles()
	return nil
}

// adopt transplants a freshly recovered store's state into this one.
// The old handles are already closed; the donor object is abandoned.
func (s *Store) adopt(f *Store) {
	s.tree = f.tree
	s.w = f.w
	s.pg = f.pg
	s.seq = f.seq
	s.sinceCkpt = f.sinceCkpt
	s.snapPages = f.snapPages
	s.recovery = f.recovery
	s.audited = f.audited
	s.dead = nil
	s.divergent = false
}

// SnapshotPages returns the page IDs of the live checkpoint snapshot,
// for fault drills that need to aim at (or away from) live state.
func (s *Store) SnapshotPages() []pager.PageID {
	return append([]pager.PageID(nil), s.snapPages...)
}

// FlipBit flips one bit of an on-disk page without re-sealing its
// checksum — the bit-rot drill hook, delegated to the pager.
func (s *Store) FlipBit(id pager.PageID, bit int) error {
	return s.pg.FlipBit(id, bit)
}

// Tree exposes the underlying index (read-mostly).
func (s *Store) Tree() *rplustree.Tree { return s.tree }

// Options returns the store's options with defaults applied.
func (s *Store) Options() Options { return s.opts }

// Len returns the number of live records.
func (s *Store) Len() int { return s.tree.Len() }

// Seq returns the committed operation count (checkpoint-folded plus
// replayed plus logged since).
func (s *Store) Seq() uint64 { return s.seq }

// RecoveryStats returns what the last Open cost; zero value after
// Create.
func (s *Store) RecoveryStats() RecoveryStats { return s.recovery }

// Err returns the poisoning error if the store has died, else nil.
func (s *Store) Err() error { return s.dead }

// Close releases the log writer and pager. A dead store closes too —
// that is the "process exit" after a simulated crash.
func (s *Store) Close() error {
	var werr, perr error
	if s.w != nil {
		werr = s.w.Close()
		s.w = nil
	}
	if s.pg != nil {
		// A crashed store must not flush its pool on the way out: the
		// crash already decided what reached disk.
		if s.dead != nil {
			perr = s.pg.CloseNoFlush()
		} else {
			perr = s.pg.Close()
		}
		s.pg = nil
	}
	if werr != nil {
		return werr
	}
	return perr
}
