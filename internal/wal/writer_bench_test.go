package wal

import (
	"os"
	"path/filepath"
	"testing"

	"spatialanon/internal/retry"
)

// BenchmarkWriterAppend measures the framing cost of one append with
// fsync disabled, so the number under test is the buffer work, not the
// disk. The PR that introduced the scratch buffer reports the
// allocs/op delta against the fresh-buffer-per-record baseline.
func BenchmarkWriterAppend(b *testing.B) {
	for _, size := range []int{64, 1024} {
		b.Run(byteSize(size), func(b *testing.B) {
			path := filepath.Join(b.TempDir(), "bench.log")
			w, err := openWriter(path, nil, true, retry.Policy{}, nil)
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			payload := make([]byte, size)
			for i := range payload {
				payload[i] = byte(i)
			}
			b.ReportAllocs()
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Append(payload); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			os.Remove(path)
		})
	}
}

func byteSize(n int) string {
	if n >= 1024 {
		return "1KiB"
	}
	return "64B"
}
