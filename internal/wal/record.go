// Package wal gives the anonymizing index crash-consistent
// durability: a write-ahead log of maintenance operations, periodic
// checkpoints that serialize the R⁺-tree into checksummed pager
// pages, and recovery that replays the committed log tail onto the
// last complete checkpoint — then refuses to publish anything until
// the independent auditor (internal/verify) has re-proved the
// recovered tree's safety invariants. The paper's central identity —
// the anonymization *is* the index — makes that gate the whole point:
// a torn page or half-applied operation is not just an availability
// bug, it is silently a privacy bug, so no release is ever emitted
// from an unaudited recovery.
//
// Log format. The log is a sequence of frames:
//
//	[length uint32 LE][payload][crc uint32 LE]
//
// where crc is CRC32-C (Castagnoli) over the payload, matching the
// pager's page seals. A frame is committed iff it is entirely on disk
// with a matching checksum; the first frame that fails either test
// ends the committed prefix (a torn tail is "not yet committed",
// never corruption). The payload is a type byte followed by a
// fixed-width little-endian body, per the repository's binary codec
// conventions (internal/dataset).
//
// Every log file begins with a CheckpointEnd record: the manifest of
// the checkpoint it extends — which pager pages hold the tree
// snapshot, its length and checksum, and the operation count folded
// into it. Checkpointing writes the new manifest to a temporary file
// and atomically renames it over the log, so the log is truncated and
// the checkpoint published in one indivisible step.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"spatialanon/internal/attr"
	"spatialanon/internal/pager"
)

// Type identifies a log record.
type Type byte

const (
	// TypeInsert logs one record insertion.
	TypeInsert Type = 1
	// TypeDelete logs one record deletion (by ID at a point).
	TypeDelete Type = 2
	// TypeUpdate logs one record relocation.
	TypeUpdate Type = 3
	// TypeCheckpointBegin marks checkpoint intent in the old log; it
	// carries no state and replay ignores it, but its frame exercises
	// the same durability path as every other append, so crash points
	// can land mid-checkpoint.
	TypeCheckpointBegin Type = 4
	// TypeCheckpointEnd is a checkpoint manifest — always and only the
	// first record of a log file.
	TypeCheckpointEnd Type = 5
	// TypeBatch logs a group commit: several maintenance operations in
	// ONE frame, so the frame checksum makes the whole batch
	// all-or-nothing. A torn batch is indistinguishable from a torn
	// single-record frame — the scanner drops it entirely — which is
	// what guarantees recovery never applies a batch prefix.
	TypeBatch Type = 6
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeInsert:
		return "insert"
	case TypeDelete:
		return "delete"
	case TypeUpdate:
		return "update"
	case TypeCheckpointBegin:
		return "checkpoint-begin"
	case TypeCheckpointEnd:
		return "checkpoint-end"
	case TypeBatch:
		return "batch"
	}
	return fmt.Sprintf("wal.Type(%d)", byte(t))
}

// Manifest is the body of a CheckpointEnd record: where the tree
// snapshot lives and how much history it folds in.
type Manifest struct {
	// Seq is the sequence number of the last operation folded into the
	// snapshot; replayed tail records continue from Seq+1.
	Seq uint64
	// SnapLen is the byte length of the encoded snapshot.
	SnapLen uint32
	// SnapCRC is the CRC32-C of the encoded snapshot — a whole-snapshot
	// seal on top of the pager's per-page checksums.
	SnapCRC uint32
	// Pages are the pager pages holding the snapshot, in order.
	Pages []pager.PageID
}

// Op is one maintenance operation inside a group commit: the subset
// of Record that insert, delete and update carry. Op.Type must be
// TypeInsert, TypeDelete or TypeUpdate; batches do not nest.
type Op struct {
	Type Type
	// Rec is the inserted (or relocated-to) record.
	Rec attr.Record
	// ID and OldQI identify the record a delete or update targets.
	ID    int64
	OldQI []float64
}

// Record is one decoded log record. Which fields are meaningful
// depends on Type: Rec for inserts and updates, ID and OldQI for
// deletes and updates, Manifest for checkpoint ends, Batch for group
// commits.
type Record struct {
	Type Type
	// Seq is the record's sequence number; appends number consecutively
	// and recovery verifies the numbering.
	Seq uint64
	// Rec is the inserted (or relocated-to) record.
	Rec attr.Record
	// ID and OldQI identify the record a delete or update targets.
	ID    int64
	OldQI []float64
	// Manifest is the checkpoint manifest (TypeCheckpointEnd only).
	Manifest *Manifest
	// Batch is the operation list of a group commit (TypeBatch only).
	// Seq numbers the batch's FIRST operation; the rest follow
	// consecutively, so the batch occupies sequence numbers
	// [Seq, Seq+len(Batch)).
	Batch []Op
}

// castagnoli is the CRC32-C table, shared with the pager's page seals.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum is the CRC32-C over payload bytes used in frame trailers
// and snapshot seals.
func Checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// maxVec bounds decoded vector lengths (QI dimensions, sensitive
// strings, manifest page lists): a record claiming more elements than
// its payload could physically hold is corrupt, and the bound keeps
// the decoder from allocating attacker-chosen amounts.
const maxVec = 1 << 20

// Encode serializes the record to a frame payload (type byte + body).
func Encode(r Record) ([]byte, error) {
	b := []byte{byte(r.Type)}
	b = binary.LittleEndian.AppendUint64(b, r.Seq)
	switch r.Type {
	case TypeInsert:
		return appendRecord(b, r.Rec), nil
	case TypeDelete:
		b = binary.LittleEndian.AppendUint64(b, uint64(r.ID))
		return appendVec(b, r.OldQI), nil
	case TypeUpdate:
		b = binary.LittleEndian.AppendUint64(b, uint64(r.ID))
		b = appendVec(b, r.OldQI)
		return appendRecord(b, r.Rec), nil
	case TypeCheckpointBegin:
		return b, nil
	case TypeBatch:
		if len(r.Batch) == 0 {
			return nil, fmt.Errorf("wal: empty batch record")
		}
		b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Batch)))
		for _, op := range r.Batch {
			switch op.Type {
			case TypeInsert:
				b = append(b, byte(TypeInsert))
				b = appendRecord(b, op.Rec)
			case TypeDelete:
				b = append(b, byte(TypeDelete))
				b = binary.LittleEndian.AppendUint64(b, uint64(op.ID))
				b = appendVec(b, op.OldQI)
			case TypeUpdate:
				b = append(b, byte(TypeUpdate))
				b = binary.LittleEndian.AppendUint64(b, uint64(op.ID))
				b = appendVec(b, op.OldQI)
				b = appendRecord(b, op.Rec)
			default:
				return nil, fmt.Errorf("wal: batch op of type %v", op.Type)
			}
		}
		return b, nil
	case TypeCheckpointEnd:
		if r.Manifest == nil {
			return nil, fmt.Errorf("wal: checkpoint-end without manifest")
		}
		m := r.Manifest
		b = binary.LittleEndian.AppendUint64(b, m.Seq)
		b = binary.LittleEndian.AppendUint32(b, m.SnapLen)
		b = binary.LittleEndian.AppendUint32(b, m.SnapCRC)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Pages)))
		for _, id := range m.Pages {
			b = binary.LittleEndian.AppendUint64(b, uint64(id))
		}
		return b, nil
	default:
		return nil, fmt.Errorf("wal: encode of unknown record type %d", byte(r.Type))
	}
}

func appendVec(b []byte, v []float64) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(v)))
	for _, x := range v {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(x))
	}
	return b
}

func appendRecord(b []byte, r attr.Record) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(r.ID))
	b = appendVec(b, r.QI)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Sensitive)))
	return append(b, r.Sensitive...)
}

// Decode parses a frame payload. Arbitrary input yields an error,
// never a panic — the fuzz target in this package holds it to that.
func Decode(payload []byte) (Record, error) {
	d := recDecoder{data: payload}
	tag, err := d.u8()
	if err != nil {
		return Record{}, err
	}
	r := Record{Type: Type(tag)}
	if r.Seq, err = d.u64(); err != nil {
		return Record{}, err
	}
	switch r.Type {
	case TypeInsert:
		if r.Rec, err = d.record(); err != nil {
			return Record{}, err
		}
	case TypeDelete:
		id, err := d.u64()
		if err != nil {
			return Record{}, err
		}
		r.ID = int64(id)
		if r.OldQI, err = d.vec(); err != nil {
			return Record{}, err
		}
	case TypeUpdate:
		id, err := d.u64()
		if err != nil {
			return Record{}, err
		}
		r.ID = int64(id)
		if r.OldQI, err = d.vec(); err != nil {
			return Record{}, err
		}
		if r.Rec, err = d.record(); err != nil {
			return Record{}, err
		}
	case TypeCheckpointBegin:
		// No body.
	case TypeBatch:
		n, err := d.u32()
		if err != nil {
			return Record{}, err
		}
		// Each op costs at least one tag byte, bounding the count by the
		// remaining payload like every other decoded vector.
		if n == 0 || int(n) > maxVec || int(n) > d.remaining() {
			return Record{}, fmt.Errorf("wal: batch claims %d ops, %d bytes left", n, d.remaining())
		}
		r.Batch = make([]Op, n)
		for i := range r.Batch {
			tag, err := d.u8()
			if err != nil {
				return Record{}, err
			}
			op := Op{Type: Type(tag)}
			switch op.Type {
			case TypeInsert:
				if op.Rec, err = d.record(); err != nil {
					return Record{}, err
				}
			case TypeDelete:
				id, err := d.u64()
				if err != nil {
					return Record{}, err
				}
				op.ID = int64(id)
				if op.OldQI, err = d.vec(); err != nil {
					return Record{}, err
				}
			case TypeUpdate:
				id, err := d.u64()
				if err != nil {
					return Record{}, err
				}
				op.ID = int64(id)
				if op.OldQI, err = d.vec(); err != nil {
					return Record{}, err
				}
				if op.Rec, err = d.record(); err != nil {
					return Record{}, err
				}
			default:
				return Record{}, fmt.Errorf("wal: batch op %d has type %d", i, tag)
			}
			r.Batch[i] = op
		}
	case TypeCheckpointEnd:
		m := &Manifest{}
		if m.Seq, err = d.u64(); err != nil {
			return Record{}, err
		}
		if m.SnapLen, err = d.u32(); err != nil {
			return Record{}, err
		}
		if m.SnapCRC, err = d.u32(); err != nil {
			return Record{}, err
		}
		n, err := d.u32()
		if err != nil {
			return Record{}, err
		}
		if int(n) > maxVec || int(n)*8 > d.remaining() {
			return Record{}, fmt.Errorf("wal: manifest claims %d pages, %d bytes left", n, d.remaining())
		}
		m.Pages = make([]pager.PageID, n)
		for i := range m.Pages {
			id, err := d.u64()
			if err != nil {
				return Record{}, err
			}
			m.Pages[i] = pager.PageID(id)
		}
		r.Manifest = m
	default:
		return Record{}, fmt.Errorf("wal: unknown record type %d", tag)
	}
	if d.off != len(d.data) {
		return Record{}, fmt.Errorf("wal: record has %d trailing bytes", len(d.data)-d.off)
	}
	return r, nil
}

// recDecoder reads a record payload with bounds checks.
type recDecoder struct {
	data []byte
	off  int
}

func (d *recDecoder) remaining() int { return len(d.data) - d.off }

func (d *recDecoder) u8() (byte, error) {
	if d.off+1 > len(d.data) {
		return 0, fmt.Errorf("wal: record truncated at byte %d", d.off)
	}
	v := d.data[d.off]
	d.off++
	return v, nil
}

func (d *recDecoder) u32() (uint32, error) {
	if d.off+4 > len(d.data) {
		return 0, fmt.Errorf("wal: record truncated at byte %d", d.off)
	}
	v := binary.LittleEndian.Uint32(d.data[d.off:])
	d.off += 4
	return v, nil
}

func (d *recDecoder) u64() (uint64, error) {
	if d.off+8 > len(d.data) {
		return 0, fmt.Errorf("wal: record truncated at byte %d", d.off)
	}
	v := binary.LittleEndian.Uint64(d.data[d.off:])
	d.off += 8
	return v, nil
}

func (d *recDecoder) vec() ([]float64, error) {
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	if int(n) > maxVec || int(n)*8 > d.remaining() {
		return nil, fmt.Errorf("wal: vector claims %d values, %d bytes left", n, d.remaining())
	}
	v := make([]float64, n)
	for i := range v {
		bits, err := d.u64()
		if err != nil {
			return nil, err
		}
		v[i] = math.Float64frombits(bits)
	}
	return v, nil
}

func (d *recDecoder) record() (attr.Record, error) {
	id, err := d.u64()
	if err != nil {
		return attr.Record{}, err
	}
	qi, err := d.vec()
	if err != nil {
		return attr.Record{}, err
	}
	slen, err := d.u32()
	if err != nil {
		return attr.Record{}, err
	}
	if int(slen) > maxVec || int(slen) > d.remaining() {
		return attr.Record{}, fmt.Errorf("wal: sensitive value claims %d bytes, %d left", slen, d.remaining())
	}
	sens := d.data[d.off : d.off+int(slen)]
	d.off += int(slen)
	return attr.Record{ID: int64(id), QI: qi, Sensitive: string(sens)}, nil
}
