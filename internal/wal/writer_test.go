package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"spatialanon/internal/fault"
	"spatialanon/internal/retry"
)

func readLog(t *testing.T, path string) []byte {
	t.Helper()
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestWriterScannerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := openWriter(path, nil, true, retry.Policy{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{{1}, {2, 3}, {}, {4, 5, 6, 7}}
	for _, p := range payloads {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	sc := NewScanner(readLog(t, path))
	for i, want := range payloads {
		got, ok := sc.Next()
		if !ok {
			t.Fatalf("frame %d missing", i)
		}
		if string(got) != string(want) {
			t.Fatalf("frame %d: got %x want %x", i, got, want)
		}
	}
	if _, ok := sc.Next(); ok || sc.Torn() {
		t.Fatalf("clean end expected: torn=%v", sc.Torn())
	}
}

// TestScannerStopsAtTornTail truncates a log at every byte boundary:
// the scanner must always return exactly the frames that are entirely
// present with valid checksums, flag the tail as torn, and never panic.
func TestScannerStopsAtTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := openWriter(path, nil, true, retry.Policy{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var frameEnds []int
	off := 0
	for i := 0; i < 5; i++ {
		payload := make([]byte, 3*i+1)
		for j := range payload {
			payload[j] = byte(i)
		}
		if err := w.Append(payload); err != nil {
			t.Fatal(err)
		}
		off += len(payload) + frameOverhead
		frameEnds = append(frameEnds, off)
	}
	w.Close()
	img := readLog(t, path)

	completeUpTo := func(n int) int {
		k := 0
		for _, end := range frameEnds {
			if end <= n {
				k++
			}
		}
		return k
	}
	for cut := 0; cut <= len(img); cut++ {
		sc := NewScanner(img[:cut])
		got := 0
		for {
			if _, ok := sc.Next(); !ok {
				break
			}
			got++
		}
		want := completeUpTo(cut)
		if got != want {
			t.Fatalf("cut %d: scanned %d frames, want %d", cut, got, want)
		}
		wantTorn := cut != 0 && !atFrameEnd(frameEnds, cut)
		if sc.Torn() != wantTorn {
			t.Fatalf("cut %d: torn=%v want %v", cut, sc.Torn(), wantTorn)
		}
		if wantTorn && sc.TornBytes() == 0 {
			t.Fatalf("cut %d: torn tail reported empty", cut)
		}
	}
}

func atFrameEnd(ends []int, n int) bool {
	for _, e := range ends {
		if e == n {
			return true
		}
	}
	return false
}

// TestScannerRejectsBitFlip flips each byte of a committed frame: the
// checksum must end the committed prefix there.
func TestScannerRejectsBitFlip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := openWriter(path, nil, true, retry.Policy{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("ghij")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	img := readLog(t, path)
	firstEnd := 6 + frameOverhead
	for i := 0; i < firstEnd; i++ {
		dam := append([]byte(nil), img...)
		dam[i] ^= 0x40
		sc := NewScanner(dam)
		n := 0
		for {
			if _, ok := sc.Next(); !ok {
				break
			}
			n++
		}
		// Damage to frame 1 must stop the scan before it: zero frames
		// survive (a corrupted length prefix may also halt it).
		if n != 0 {
			t.Fatalf("byte %d flipped: %d frames accepted", i, n)
		}
		if !sc.Torn() {
			t.Fatalf("byte %d flipped: tail not flagged torn", i)
		}
	}
}

// TestWriterCrashTearsFrame drives the writer through a fault.Crash:
// the fatal append persists only the torn prefix, and the writer is
// dead afterwards, like the process it models.
func TestWriterCrashTearsFrame(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	crash := &fault.Crash{At: 3, Torn: 0.5}
	w, err := openWriter(path, crash, true, retry.Policy{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789")
	for i := 0; i < 2; i++ {
		if err := w.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	err = w.Append(payload)
	if !IsCrash(err) {
		t.Fatalf("fatal append: %v", err)
	}
	if err := w.Append(payload); !IsCrash(err) {
		t.Fatalf("append after death: %v", err)
	}
	w.Close()

	img := readLog(t, path)
	frame := len(payload) + frameOverhead
	wantLen := 2*frame + frame/2
	if len(img) != wantLen {
		t.Fatalf("log is %d bytes, want %d (two frames + torn half)", len(img), wantLen)
	}
	sc := NewScanner(img)
	n := 0
	for {
		if _, ok := sc.Next(); !ok {
			break
		}
		n++
	}
	if n != 2 || !sc.Torn() || sc.TornBytes() != frame/2 {
		t.Fatalf("scan: frames=%d torn=%v tornBytes=%d", n, sc.Torn(), sc.TornBytes())
	}
}

// flakyLog is a logFile whose next failAttempts writes fail
// transiently after persisting only half their bytes — the torn
// partial write an O_APPEND retry must not land after.
type flakyLog struct {
	buf          []byte
	failAttempts int
}

func (f *flakyLog) Write(p []byte) (int, error) {
	if f.failAttempts > 0 {
		f.failAttempts--
		n := len(p) / 2
		f.buf = append(f.buf, p[:n]...)
		return n, &fault.Error{Op: "write", Kind: fault.Transient}
	}
	f.buf = append(f.buf, p...)
	return len(p), nil
}

func (f *flakyLog) Truncate(size int64) error {
	if size < 0 || size > int64(len(f.buf)) {
		return fmt.Errorf("truncate to %d, have %d", size, len(f.buf))
	}
	f.buf = f.buf[:size]
	return nil
}

func (f *flakyLog) Sync() error  { return nil }
func (f *flakyLog) Close() error { return nil }

// TestAppendRetryRewindsTornPartialWrite: a transient write failure
// leaves half a frame in the log; the retry must truncate that garbage
// away before writing again, or the committed frame (and everything
// after it) hides behind bytes the scanner refuses and recovery
// silently drops acknowledged writes.
func TestAppendRetryRewindsTornPartialWrite(t *testing.T) {
	fl := &flakyLog{failAttempts: 1}
	w := &Writer{f: fl, noSync: true, retry: retry.Policy{Attempts: 3}}
	if err := w.Append([]byte("first")); err != nil {
		t.Fatalf("append with retries: %v", err)
	}
	fl.failAttempts = 1
	if err := w.Append([]byte("second-longer-payload")); err != nil {
		t.Fatalf("second append with retries: %v", err)
	}
	sc := NewScanner(fl.buf)
	var got []string
	for {
		p, ok := sc.Next()
		if !ok {
			break
		}
		got = append(got, string(p))
	}
	if sc.Torn() {
		t.Fatalf("log torn after successful appends: % x", fl.buf)
	}
	if len(got) != 2 || got[0] != "first" || got[1] != "second-longer-payload" {
		t.Fatalf("scanned %q, want both committed frames", got)
	}
}

// TestScannerHugeLengthPrefix: a corrupt length prefix above MaxInt32
// must end the scan as a torn tail, not overflow int on 32-bit
// platforms and panic the slice expression.
func TestScannerHugeLengthPrefix(t *testing.T) {
	img := []byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4, 5, 6, 7, 8}
	sc := NewScanner(img)
	if _, ok := sc.Next(); ok {
		t.Fatal("frame accepted under a huge length prefix")
	}
	if !sc.Torn() {
		t.Fatal("huge length prefix not flagged torn")
	}
}

func TestAppendRejectsOversizedFrame(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := openWriter(path, nil, true, retry.Policy{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(make([]byte, maxFrame+1)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}
