package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"

	"spatialanon/internal/retry"
)

// frameOverhead is the fixed cost of one frame: length prefix plus
// checksum trailer.
const frameOverhead = 8

// maxFrame bounds a frame's payload. Manifests of enormous trees stay
// far below this; anything above it in a log being scanned is treated
// as a torn length prefix.
const maxFrame = 64 << 20

// CrashPolicy lets a fault injector kill the process simulation at a
// WAL append. It is satisfied by *fault.Crash; the interface is
// duplicated structurally so the injector package does not import
// this one. BeforeAppend sees the full frame length and returns how
// many bytes of it may still reach disk and whether the process dies
// at this operation.
type CrashPolicy interface {
	BeforeAppend(frameLen int) (persist int, crashed bool)
}

// crashedError mirrors fault.CrashError structurally: recovery-side
// code matches any error exposing Crashed() bool.
type crashedError struct{ op string }

func (e *crashedError) Error() string {
	return fmt.Sprintf("wal: simulated crash during %s", e.op)
}
func (e *crashedError) Crashed() bool { return true }

// IsCrash reports whether err is (or wraps) a simulated process
// death, from this package or from internal/fault: any error in the
// chain exposing Crashed() bool participates.
func IsCrash(err error) bool {
	var c interface{ Crashed() bool }
	return errors.As(err, &c) && c.Crashed()
}

// logFile is the slice of *os.File the writer uses; tests substitute a
// fault-injecting implementation to exercise the retry path.
type logFile interface {
	Write(p []byte) (int, error)
	Truncate(size int64) error
	Sync() error
	Close() error
}

// Writer appends framed records to a log file. It is not safe for
// concurrent use.
type Writer struct {
	f      logFile
	size   int64 // bytes of committed frames; a retry truncates back here
	crash  CrashPolicy
	noSync bool
	retry  retry.Policy
	dead   error
	// buf is the frame scratch buffer, reused across appends so the
	// steady-state framing cost is zero allocations (the CRC table is
	// likewise built once, at package init). Safe because the writer
	// is single-goroutine and the frame is fully written before Append
	// returns.
	buf []byte
}

// openWriter opens path for appending. The file's existing contents
// are assumed valid (callers scan before appending).
func openWriter(path string, crash CrashPolicy, noSync bool, rp retry.Policy) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &Writer{f: f, size: st.Size(), crash: crash, noSync: noSync, retry: rp}, nil
}

// Append frames the payload and appends it durably: length prefix,
// payload, CRC32-C trailer, then fsync (unless NoSync). Transient
// faults surfaced by the crash policy do not exist — a crash is
// permanent — but real-device deployments see transient write errors,
// so the write itself runs under the package retry policy. After a
// crash the writer is dead: every later append fails with the same
// error, exactly like a dead process.
func (w *Writer) Append(payload []byte) error {
	if w.dead != nil {
		return w.dead
	}
	if len(payload) > maxFrame {
		return fmt.Errorf("wal: frame payload of %d bytes exceeds limit %d", len(payload), maxFrame)
	}
	frame := w.buf[:0]
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, Checksum(payload))
	w.buf = frame

	persist := len(frame)
	crashed := false
	if w.crash != nil {
		persist, crashed = w.crash.BeforeAppend(len(frame))
		if persist > len(frame) {
			persist = len(frame)
		}
	}
	if persist > 0 {
		attempt := 0
		err := w.retry.Do(func() error {
			attempt++
			if attempt > 1 {
				// A failed attempt may have torn bytes into the
				// O_APPEND log; appending the retry after them would
				// bury this frame — and every later one — behind
				// garbage the scanner stops at, losing acknowledged
				// writes on recovery. Rewind to the committed size so
				// the retry overwrites the torn prefix instead.
				if terr := w.f.Truncate(w.size); terr != nil {
					return terr
				}
			}
			_, werr := w.f.Write(frame[:persist])
			return werr
		})
		if err != nil {
			return fmt.Errorf("wal: append: %w", err)
		}
	}
	if crashed {
		// The torn prefix (if any) is already in the file, exactly as a
		// power cut would leave it.
		w.dead = &crashedError{op: "append"}
		return w.dead
	}
	w.size += int64(persist)
	return w.sync()
}

// sync flushes the file unless the writer runs unsynced.
func (w *Writer) sync() error {
	if w.noSync {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// Close closes the log file.
func (w *Writer) Close() error { return w.f.Close() }

// Scanner walks the committed prefix of a log image. The first frame
// that is incomplete or fails its checksum ends the scan; Torn
// reports whether such a tail was present (torn tails are normal
// after a crash — they are "not committed", not corruption).
type Scanner struct {
	data []byte
	off  int
	torn bool
}

// NewScanner scans a fully-read log image.
func NewScanner(data []byte) *Scanner { return &Scanner{data: data} }

// Next returns the next committed frame payload, or false at the end
// of the committed prefix. The returned slice aliases the log image.
func (s *Scanner) Next() ([]byte, bool) {
	if s.torn || s.off >= len(s.data) {
		return nil, false
	}
	if s.off+4 > len(s.data) {
		s.torn = true
		return nil, false
	}
	// Compare the length prefix in uint64 before converting: on 32-bit
	// platforms a corrupt prefix above MaxInt32 would wrap negative as
	// int, slip past the bound checks, and panic the slice expression.
	n64 := uint64(binary.LittleEndian.Uint32(s.data[s.off:]))
	if n64 > maxFrame {
		s.torn = true
		return nil, false
	}
	n := int(n64)
	if n > len(s.data)-s.off-frameOverhead {
		s.torn = true
		return nil, false
	}
	payload := s.data[s.off+4 : s.off+4+n]
	sum := binary.LittleEndian.Uint32(s.data[s.off+4+n:])
	if Checksum(payload) != sum {
		s.torn = true
		return nil, false
	}
	s.off += 4 + n + 4
	return payload, true
}

// Torn reports whether the scan ended at an incomplete or
// checksum-failing frame rather than at a clean end of file.
func (s *Scanner) Torn() bool { return s.torn }

// TornBytes returns how many bytes of uncommitted tail follow the
// committed prefix.
func (s *Scanner) TornBytes() int {
	if !s.torn {
		return 0
	}
	return len(s.data) - s.off
}
