package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"

	"spatialanon/internal/retry"
)

// frameOverhead is the fixed cost of one frame: length prefix plus
// checksum trailer.
const frameOverhead = 8

// maxFrame bounds a frame's payload. Manifests of enormous trees stay
// far below this; anything above it in a log being scanned is treated
// as a torn length prefix.
const maxFrame = 64 << 20

// CrashPolicy lets a fault injector kill the process simulation at a
// WAL append. It is satisfied by *fault.Crash; the interface is
// duplicated structurally so the injector package does not import
// this one. BeforeAppend sees the full frame length and returns how
// many bytes of it may still reach disk and whether the process dies
// at this operation.
type CrashPolicy interface {
	BeforeAppend(frameLen int) (persist int, crashed bool)
}

// AppendFault injects typed failures into the log appender, attempt
// by attempt. It is satisfied structurally by *fault.Flaky so the
// injector package does not import this one. WriteAttempt is consulted
// before each physical frame write: on a fault it reports how many
// bytes of the frame land anyway (a torn prefix the writer persists
// before returning the error, so the truncate-before-retry path is
// exercised) and the error itself; errors exposing `Transient() bool`
// are retried under the writer's retry policy, anything else
// escalates. SyncAttempt is consulted before each fsync, including
// when NoSync elides the real one, so fault schedules are identical
// in synced and unsynced runs.
type AppendFault interface {
	WriteAttempt(frameLen int) (tear int, err error)
	SyncAttempt() error
}

// crashedError mirrors fault.CrashError structurally: recovery-side
// code matches any error exposing Crashed() bool.
type crashedError struct{ op string }

func (e *crashedError) Error() string {
	return fmt.Sprintf("wal: simulated crash during %s", e.op)
}
func (e *crashedError) Crashed() bool { return true }

// IsCrash reports whether err is (or wraps) a simulated process
// death, from this package or from internal/fault: any error in the
// chain exposing Crashed() bool participates.
func IsCrash(err error) bool {
	var c interface{ Crashed() bool }
	return errors.As(err, &c) && c.Crashed()
}

// logFile is the slice of *os.File the writer uses; tests substitute a
// fault-injecting implementation to exercise the retry path.
type logFile interface {
	Write(p []byte) (int, error)
	Truncate(size int64) error
	Sync() error
	Close() error
}

// Writer appends framed records to a log file. It is not safe for
// concurrent use.
type Writer struct {
	f      logFile
	size   int64 // bytes of committed frames; a retry truncates back here
	crash  CrashPolicy
	afault AppendFault
	noSync bool
	retry  retry.Policy
	dead   error
	// buf is the frame scratch buffer, reused across appends so the
	// steady-state framing cost is zero allocations (the CRC table is
	// likewise built once, at package init). Safe because the writer
	// is single-goroutine and the frame is fully written before Append
	// returns.
	buf []byte
}

// openWriter opens path for appending. The file's existing contents
// are assumed valid (callers scan before appending).
func openWriter(path string, crash CrashPolicy, noSync bool, rp retry.Policy, af AppendFault) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &Writer{f: f, size: st.Size(), crash: crash, noSync: noSync, retry: rp, afault: af}, nil
}

// Append frames the payload and appends it durably: length prefix,
// payload, CRC32-C trailer, then fsync (unless NoSync). Transient
// faults surfaced by the crash policy do not exist — a crash is
// permanent — but real-device deployments see transient write and
// fsync errors, so both run under the package retry policy, with the
// injectable AppendFault standing in for the device. A failed append
// is CLEAN: the log is rolled back to its committed size, so the
// frame the caller was told is not committed leaves no bytes behind
// and the caller may simply try the append again later. Only when
// that rollback itself fails — the log is in an unknown state that a
// reopen's committed-prefix scan must repair — or after a simulated
// crash is the writer dead: every later append fails with the same
// error, exactly like a dead process.
func (w *Writer) Append(payload []byte) error {
	if w.dead != nil {
		return w.dead
	}
	if len(payload) > maxFrame {
		return fmt.Errorf("wal: frame payload of %d bytes exceeds limit %d", len(payload), maxFrame)
	}
	frame := w.buf[:0]
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, Checksum(payload))
	w.buf = frame

	persist := len(frame)
	crashed := false
	if w.crash != nil {
		persist, crashed = w.crash.BeforeAppend(len(frame))
		if persist > len(frame) {
			persist = len(frame)
		}
	}
	if persist > 0 {
		attempt := 0
		err := w.retry.Do(func() error {
			attempt++
			if attempt > 1 {
				// A failed attempt may have torn bytes into the
				// O_APPEND log; appending the retry after them would
				// bury this frame — and every later one — behind
				// garbage the scanner stops at, losing acknowledged
				// writes on recovery. Rewind to the committed size so
				// the retry overwrites the torn prefix instead.
				if terr := w.f.Truncate(w.size); terr != nil {
					return terr
				}
			}
			if w.afault != nil {
				if tear, ferr := w.afault.WriteAttempt(persist); ferr != nil {
					if tear > persist {
						tear = persist
					}
					if tear > 0 {
						// Best effort: the injected failure tore a
						// prefix into the log, like a real device error
						// mid-write.
						w.f.Write(frame[:tear])
					}
					return ferr
				}
			}
			_, werr := w.f.Write(frame[:persist])
			return werr
		})
		if err != nil {
			return w.fail("append", err)
		}
	}
	if crashed {
		// The torn prefix (if any) is already in the file, exactly as a
		// power cut would leave it.
		w.dead = &crashedError{op: "append"}
		return w.dead
	}
	if err := w.sync(); err != nil {
		// The frame's bytes are in the file but were never made
		// durable; without the rollback a recovery scan would replay
		// them as a phantom commit of an operation the caller was told
		// failed.
		return w.fail("sync", err)
	}
	w.size += int64(persist)
	return nil
}

// fail rolls the log back to its committed size after a failed append
// or sync, then returns the failure with the original error (and its
// Transient marker) intact. If the rollback itself fails the log's
// tail is unknowable from inside this process and the writer is dead:
// only a reopen — committed-prefix scan plus truncate — can repair it.
func (w *Writer) fail(op string, err error) error {
	if terr := w.f.Truncate(w.size); terr != nil {
		w.dead = fmt.Errorf("wal: %s failed (%w) and the rollback truncate failed too: %w", op, err, terr)
		return w.dead
	}
	return fmt.Errorf("wal: %s: %w", op, err)
}

// sync flushes the file, retrying transient fsync faults under the
// writer's retry policy. The AppendFault hook is consulted even when
// NoSync elides the real fsync, so a fault schedule replays
// identically in synced and unsynced runs.
func (w *Writer) sync() error {
	return w.retry.Do(func() error {
		if w.afault != nil {
			if err := w.afault.SyncAttempt(); err != nil {
				return err
			}
		}
		if w.noSync {
			return nil
		}
		return w.f.Sync()
	})
}

// Err returns the error that killed the writer — a simulated crash or
// a failed rollback — or nil while the writer can still append.
func (w *Writer) Err() error { return w.dead }

// Close closes the log file.
func (w *Writer) Close() error { return w.f.Close() }

// Scanner walks the committed prefix of a log image. The first frame
// that is incomplete or fails its checksum ends the scan; Torn
// reports whether such a tail was present (torn tails are normal
// after a crash — they are "not committed", not corruption).
type Scanner struct {
	data []byte
	off  int
	torn bool
}

// NewScanner scans a fully-read log image.
func NewScanner(data []byte) *Scanner { return &Scanner{data: data} }

// Next returns the next committed frame payload, or false at the end
// of the committed prefix. The returned slice aliases the log image.
func (s *Scanner) Next() ([]byte, bool) {
	if s.torn || s.off >= len(s.data) {
		return nil, false
	}
	if s.off+4 > len(s.data) {
		s.torn = true
		return nil, false
	}
	// Compare the length prefix in uint64 before converting: on 32-bit
	// platforms a corrupt prefix above MaxInt32 would wrap negative as
	// int, slip past the bound checks, and panic the slice expression.
	n64 := uint64(binary.LittleEndian.Uint32(s.data[s.off:]))
	if n64 > maxFrame {
		s.torn = true
		return nil, false
	}
	n := int(n64)
	if n > len(s.data)-s.off-frameOverhead {
		s.torn = true
		return nil, false
	}
	payload := s.data[s.off+4 : s.off+4+n]
	sum := binary.LittleEndian.Uint32(s.data[s.off+4+n:])
	if Checksum(payload) != sum {
		s.torn = true
		return nil, false
	}
	s.off += 4 + n + 4
	return payload, true
}

// Torn reports whether the scan ended at an incomplete or
// checksum-failing frame rather than at a clean end of file.
func (s *Scanner) Torn() bool { return s.torn }

// TornBytes returns how many bytes of uncommitted tail follow the
// committed prefix.
func (s *Scanner) TornBytes() int {
	if !s.torn {
		return 0
	}
	return len(s.data) - s.off
}
