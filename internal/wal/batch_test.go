package wal

import (
	"os"
	"path/filepath"
	"testing"

	"spatialanon/internal/attr"
)

// opsFromChurn converts scripted churn operations into batch ops.
func opsFromChurn(ops []churnOp) []Op {
	out := make([]Op, len(ops))
	for i, o := range ops {
		switch o.kind {
		case TypeInsert:
			out[i] = Op{Type: TypeInsert, Rec: o.rec}
		case TypeDelete:
			out[i] = Op{Type: TypeDelete, ID: o.rec.ID, OldQI: o.oldQI}
		case TypeUpdate:
			out[i] = Op{Type: TypeUpdate, ID: o.rec.ID, OldQI: o.oldQI, Rec: o.rec}
		}
	}
	return out
}

// TestBatchCodecRoundTrip pins the TypeBatch frame format: a batch of
// all three op kinds survives Encode/Decode exactly.
func TestBatchCodecRoundTrip(t *testing.T) {
	batch := []Op{
		{Type: TypeInsert, Rec: attr.Record{ID: 7, QI: []float64{1, 2}, Sensitive: "a"}},
		{Type: TypeDelete, ID: 3, OldQI: []float64{4, 5}},
		{Type: TypeUpdate, ID: 9, OldQI: []float64{6, 7}, Rec: attr.Record{ID: 9, QI: []float64{8, 9}, Sensitive: "b"}},
	}
	payload, err := Encode(Record{Type: TypeBatch, Seq: 42, Batch: batch})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypeBatch || got.Seq != 42 || len(got.Batch) != len(batch) {
		t.Fatalf("decoded %v seq=%d len=%d", got.Type, got.Seq, len(got.Batch))
	}
	for i, op := range got.Batch {
		want := batch[i]
		if op.Type != want.Type || op.ID != want.ID || op.Rec.ID != want.Rec.ID ||
			op.Rec.Sensitive != want.Rec.Sensitive {
			t.Fatalf("op %d decoded as %+v, want %+v", i, op, want)
		}
		for d := range want.OldQI {
			if op.OldQI[d] != want.OldQI[d] {
				t.Fatalf("op %d OldQI[%d] = %v, want %v", i, d, op.OldQI[d], want.OldQI[d])
			}
		}
		for d := range want.Rec.QI {
			if op.Rec.QI[d] != want.Rec.QI[d] {
				t.Fatalf("op %d QI[%d] = %v, want %v", i, d, op.Rec.QI[d], want.Rec.QI[d])
			}
		}
	}
	// Degenerate frames must error, not decode.
	if _, err := Encode(Record{Type: TypeBatch, Seq: 1}); err == nil {
		t.Fatal("encoded an empty batch")
	}
	if _, err := Encode(Record{Type: TypeBatch, Seq: 1, Batch: []Op{{Type: TypeBatch}}}); err == nil {
		t.Fatal("encoded a nested batch")
	}
}

// TestApplyBatchRoundTrip drives a churn workload through ApplyBatch
// in several chunkings and asserts the recovered state matches the
// per-op reference for each.
func TestApplyBatchRoundTrip(t *testing.T) {
	const nOps = 120
	for _, chunk := range []int{1, 7, 16, nOps} {
		opts := testOpts(t, 3)
		ops := churnWorkload(opts.Tree.Schema, 11, nOps)
		s, err := Create(opts)
		if err != nil {
			t.Fatal(err)
		}
		batchOps := opsFromChurn(ops)
		for off := 0; off < len(batchOps); off += chunk {
			end := off + chunk
			if end > len(batchOps) {
				end = len(batchOps)
			}
			found, err := s.ApplyBatch(batchOps[off:end])
			if err != nil {
				t.Fatalf("chunk=%d off=%d: %v", chunk, off, err)
			}
			if len(found) != end-off {
				t.Fatalf("chunk=%d: %d found flags for %d ops", chunk, len(found), end-off)
			}
		}
		if got, want := int(s.Seq()), nOps; got != want {
			t.Fatalf("chunk=%d: seq %d, want %d", chunk, got, want)
		}
		if err := sameRecords(shadowAfter(ops, nOps), storeRecords(s)); err != nil {
			t.Fatalf("chunk=%d before reopen: %v", chunk, err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}

		r, err := Open(opts)
		if err != nil {
			t.Fatalf("chunk=%d: reopen: %v", chunk, err)
		}
		if got := int(r.Seq()); got != nOps {
			t.Fatalf("chunk=%d: recovered seq %d, want %d", chunk, got, nOps)
		}
		if err := sameRecords(shadowAfter(ops, nOps), storeRecords(r)); err != nil {
			t.Fatalf("chunk=%d after reopen: %v", chunk, err)
		}
		r.Close()
	}
}

// TestApplyBatchFoundFlags pins the per-op found semantics: inserts
// report true, deletes and updates report whether the target existed.
func TestApplyBatchFoundFlags(t *testing.T) {
	opts := testOpts(t, 2)
	s, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	qi := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	found, err := s.ApplyBatch([]Op{
		{Type: TypeInsert, Rec: attr.Record{ID: 1, QI: qi}},
		{Type: TypeDelete, ID: 1, OldQI: qi},
		{Type: TypeDelete, ID: 1, OldQI: qi},                                    // already gone
		{Type: TypeUpdate, ID: 99, OldQI: qi, Rec: attr.Record{ID: 99, QI: qi}}, // never existed
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, true, false, false}
	for i := range want {
		if found[i] != want[i] {
			t.Fatalf("found = %v, want %v", found, want)
		}
	}
}

// TestApplyBatchValidation: one malformed op rejects the whole batch
// BEFORE anything reaches the log, so the store stays clean and
// usable.
func TestApplyBatchValidation(t *testing.T) {
	opts := testOpts(t, 2)
	s, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	good := attr.Record{ID: 1, QI: []float64{1, 2, 3, 4, 5, 6, 7, 8}}
	if _, err := s.ApplyBatch([]Op{
		{Type: TypeInsert, Rec: good},
		{Type: TypeInsert, Rec: attr.Record{ID: 2, QI: []float64{1}}}, // wrong dims
	}); err == nil {
		t.Fatal("batch with invalid op accepted")
	}
	if got := s.Seq(); got != 0 {
		t.Fatalf("failed batch advanced seq to %d", got)
	}
	if s.Err() != nil {
		t.Fatalf("failed validation poisoned the store: %v", s.Err())
	}
	if _, err := s.ApplyBatch([]Op{{Type: TypeInsert, Rec: good}}); err != nil {
		t.Fatalf("store unusable after rejected batch: %v", err)
	}
	if got := s.Seq(); got != 1 {
		t.Fatalf("seq %d after one committed op", got)
	}
}

// TestTornBatchIsAllOrNothing cuts a committed batch frame at every
// byte boundary inside it and asserts recovery NEVER applies a prefix
// of the batch: the store either has all of the batch's ops or none.
func TestTornBatchIsAllOrNothing(t *testing.T) {
	opts := testOpts(t, 2)
	ops := churnWorkload(opts.Tree.Schema, 5, 24)
	s, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	batchOps := opsFromChurn(ops)
	// First batch committed; second batch is the one we tear.
	if _, err := s.ApplyBatch(batchOps[:8]); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(opts.Dir, logName)
	st, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	committed := st.Size()
	if _, err := s.ApplyBatch(batchOps[8:]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	for cut := committed; cut <= int64(len(full)); cut += 7 {
		dir := t.TempDir()
		o2 := opts
		o2.Dir = dir
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, logName), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		src, err := os.ReadFile(filepath.Join(opts.Dir, pagesName))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, pagesName), src, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(o2)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		seq := int(r.Seq())
		if seq != 8 && seq != 24 {
			t.Fatalf("cut=%d: recovered seq %d — a torn batch was partially applied", cut, seq)
		}
		if err := sameRecords(shadowAfter(ops, seq), storeRecords(r)); err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		r.Close()
	}
}
