package wal

import (
	"reflect"
	"testing"

	"spatialanon/internal/attr"
	"spatialanon/internal/pager"
)

func roundTrip(t *testing.T, r Record) Record {
	t.Helper()
	payload, err := Encode(r)
	if err != nil {
		t.Fatalf("encode %v: %v", r.Type, err)
	}
	got, err := Decode(payload)
	if err != nil {
		t.Fatalf("decode %v: %v", r.Type, err)
	}
	return got
}

func TestRecordRoundTrip(t *testing.T) {
	rec := attr.Record{ID: 42, QI: []float64{1.5, -2.25, 0}, Sensitive: "flu"}
	cases := []Record{
		{Type: TypeInsert, Seq: 7, Rec: rec},
		{Type: TypeDelete, Seq: 8, ID: 42, OldQI: []float64{1.5, -2.25, 0}},
		{Type: TypeUpdate, Seq: 9, ID: 42, OldQI: []float64{1, 2, 3}, Rec: rec},
		{Type: TypeCheckpointBegin, Seq: 10},
		{Type: TypeCheckpointEnd, Seq: 11, Manifest: &Manifest{
			Seq: 11, SnapLen: 4096, SnapCRC: 0xDEADBEEF,
			Pages: []pager.PageID{3, 1, 9},
		}},
	}
	for _, want := range cases {
		got := roundTrip(t, want)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v: round trip\n got %+v\nwant %+v", want.Type, got, want)
		}
	}
}

func TestRecordRoundTripEmptyFields(t *testing.T) {
	got := roundTrip(t, Record{Type: TypeInsert, Seq: 1, Rec: attr.Record{ID: 1}})
	if got.Rec.ID != 1 || len(got.Rec.QI) != 0 || got.Rec.Sensitive != "" {
		t.Fatalf("empty-field record mangled: %+v", got.Rec)
	}
	got = roundTrip(t, Record{Type: TypeCheckpointEnd, Seq: 0, Manifest: &Manifest{}})
	if got.Manifest == nil || len(got.Manifest.Pages) != 0 {
		t.Fatalf("empty manifest mangled: %+v", got.Manifest)
	}
}

func TestEncodeRejectsBadRecords(t *testing.T) {
	if _, err := Encode(Record{Type: TypeCheckpointEnd}); err == nil {
		t.Error("checkpoint-end without manifest accepted")
	}
	if _, err := Encode(Record{Type: Type(99)}); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	payload, err := Encode(Record{Type: TypeUpdate, Seq: 3, ID: 5,
		OldQI: []float64{1, 2}, Rec: attr.Record{ID: 5, QI: []float64{3, 4}, Sensitive: "x"}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(payload); cut++ {
		if _, err := Decode(payload[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	if _, err := Decode(append(append([]byte(nil), payload...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	if _, err := Decode([]byte{99, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("unknown type byte accepted")
	}
	// A vector length no payload could hold is rejected before
	// allocation.
	huge, _ := Encode(Record{Type: TypeDelete, Seq: 1, ID: 1})
	huge[len(huge)-4] = 0xFF
	huge[len(huge)-3] = 0xFF
	if _, err := Decode(huge); err == nil {
		t.Error("oversized vector length accepted")
	}
}

func TestTypeString(t *testing.T) {
	for _, ty := range []Type{TypeInsert, TypeDelete, TypeUpdate, TypeCheckpointBegin, TypeCheckpointEnd} {
		if s := ty.String(); s == "" || s[:4] == "wal." {
			t.Errorf("type %d has no name", byte(ty))
		}
	}
	if Type(200).String() != "wal.Type(200)" {
		t.Errorf("unknown type string: %q", Type(200).String())
	}
}
