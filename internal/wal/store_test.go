package wal

import (
	"fmt"
	"math"
	"testing"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/dataset"
	"spatialanon/internal/detrng"
	"spatialanon/internal/fault"
	"spatialanon/internal/rplustree"
	"spatialanon/internal/verify"
)

func testOpts(t *testing.T, k int) Options {
	t.Helper()
	return Options{
		Dir:    t.TempDir(),
		Tree:   rplustree.Config{Schema: dataset.LandsEndSchema(), BaseK: k},
		NoSync: true,
	}
}

func makeRecords(schema *attr.Schema, n int, seed int64) []attr.Record {
	rng := detrng.New(seed)
	dims := schema.Dims()
	recs := make([]attr.Record, n)
	for i := range recs {
		qi := make([]float64, dims)
		for d := range qi {
			qi[d] = rng.Float64() * 100
		}
		recs[i] = attr.Record{ID: int64(i + 1), QI: qi, Sensitive: fmt.Sprintf("s%d", i)}
	}
	return recs
}

func storeRecords(s *Store) map[int64]attr.Record {
	out := make(map[int64]attr.Record)
	for _, l := range s.Tree().Leaves() {
		for _, r := range l.Records {
			out[r.ID] = r
		}
	}
	return out
}

func sameRecords(a, b map[int64]attr.Record) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d records vs %d", len(a), len(b))
	}
	for id, ra := range a {
		rb, ok := b[id]
		if !ok {
			return fmt.Errorf("record %d missing", id)
		}
		if ra.Sensitive != rb.Sensitive || len(ra.QI) != len(rb.QI) {
			return fmt.Errorf("record %d differs", id)
		}
		for d := range ra.QI {
			if ra.QI[d] != rb.QI[d] {
				return fmt.Errorf("record %d QI[%d] differs", id, d)
			}
		}
	}
	return nil
}

func TestStoreCreateReopen(t *testing.T) {
	opts := testOpts(t, 4)
	s, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	recs := makeRecords(opts.Tree.Schema, 120, 1)
	for _, r := range recs {
		if err := s.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if found, err := s.Delete(recs[5].ID, recs[5].QI); err != nil || !found {
		t.Fatalf("delete: found=%v err=%v", found, err)
	}
	moved := recs[6]
	moved.QI = append([]float64(nil), recs[6].QI...)
	moved.QI[0] += 17
	if found, err := s.Update(recs[6].ID, recs[6].QI, moved); err != nil || !found {
		t.Fatalf("update: found=%v err=%v", found, err)
	}
	rel, err := s.Release(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Release(rel, anonmodel.KAnonymity{K: 4}); err != nil {
		t.Fatal(err)
	}
	before := storeRecords(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.RecoveryStats()
	if st.Replayed != 122 {
		t.Errorf("replayed %d ops, want 122", st.Replayed)
	}
	if s2.Seq() != 122 {
		t.Errorf("seq %d, want 122", s2.Seq())
	}
	if err := sameRecords(before, storeRecords(s2)); err != nil {
		t.Fatalf("reopened store differs: %v", err)
	}
	// The reopened store is live.
	if err := s2.Insert(attr.Record{ID: 9001, QI: recs[0].QI, Sensitive: "x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Release(0); err != nil {
		t.Fatal(err)
	}
}

func TestStoreCheckpointTruncatesLog(t *testing.T) {
	opts := testOpts(t, 3)
	opts.CheckpointEvery = 25
	s, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	recs := makeRecords(opts.Tree.Schema, 103, 2)
	for _, r := range recs {
		if err := s.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	before := storeRecords(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.RecoveryStats()
	// 103 inserts with a checkpoint every 25: the log tail holds only
	// the 3 operations after the last checkpoint.
	if st.Replayed != 3 {
		t.Errorf("replayed %d ops, want 3", st.Replayed)
	}
	if st.CheckpointSeq != 100 {
		t.Errorf("checkpoint folds %d ops, want 100", st.CheckpointSeq)
	}
	if st.SnapshotPages == 0 || st.SnapshotBytes == 0 || st.PagerReads == 0 {
		t.Errorf("recovery read no snapshot: %+v", st)
	}
	if s2.Seq() != 103 {
		t.Errorf("seq %d, want 103", s2.Seq())
	}
	if err := sameRecords(before, storeRecords(s2)); err != nil {
		t.Fatal(err)
	}
}

func TestStoreExplicitCheckpointAndPageReuse(t *testing.T) {
	opts := testOpts(t, 3)
	s, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	recs := makeRecords(opts.Tree.Schema, 40, 3)
	for _, r := range recs {
		if err := s.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	// Old snapshot pages are freed at each checkpoint, so the disk
	// holds only the live snapshot.
	onDisk, err := s.pg.DiskPages()
	if err != nil {
		t.Fatal(err)
	}
	if len(onDisk) != len(s.snapPages) {
		t.Errorf("disk holds %d pages, live snapshot uses %d", len(onDisk), len(s.snapPages))
	}
}

func TestStoreDeleteAbsent(t *testing.T) {
	opts := testOpts(t, 3)
	s, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	recs := makeRecords(opts.Tree.Schema, 20, 4)
	for _, r := range recs {
		if err := s.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if found, err := s.Delete(777, recs[0].QI); err != nil || found {
		t.Fatalf("absent delete: found=%v err=%v", found, err)
	}
	if found, err := s.Update(888, recs[0].QI, recs[0]); err != nil || found {
		t.Fatalf("absent update: found=%v err=%v", found, err)
	}
	before := storeRecords(s)
	s.Close()
	// The no-op operations are logged (write-ahead logs before it
	// knows); replay tolerates them.
	s2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Seq() != 22 {
		t.Errorf("seq %d, want 22", s2.Seq())
	}
	if err := sameRecords(before, storeRecords(s2)); err != nil {
		t.Fatal(err)
	}
}

func TestStoreReleaseGranularity(t *testing.T) {
	opts := testOpts(t, 3)
	s, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, r := range makeRecords(opts.Tree.Schema, 90, 5) {
		if err := s.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Release(2); err == nil {
		t.Error("granularity below base k accepted")
	}
	coarse, err := s.Release(9)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Release(coarse, anonmodel.KAnonymity{K: 9}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreCreateRefusesExisting(t *testing.T) {
	opts := testOpts(t, 3)
	s, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := Create(opts); err == nil {
		t.Fatal("second Create on the same directory accepted")
	}
}

func TestOpenMissingStore(t *testing.T) {
	opts := testOpts(t, 3)
	if _, err := Open(opts); err == nil {
		t.Fatal("Open of empty directory accepted")
	}
}

func TestOpenRejectsDamagedSnapshot(t *testing.T) {
	opts := testOpts(t, 3)
	s, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range makeRecords(opts.Tree.Schema, 40, 6) {
		if err := s.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Bit rot inside the checkpoint image: the page checksum catches
	// it and recovery refuses to build a tree from it.
	if err := s.pg.FlipBit(s.snapPages[0], 137); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := Open(opts); err == nil {
		t.Fatal("recovery from damaged snapshot accepted")
	}
}

func TestStoreDiesOnCrashAndRefusesService(t *testing.T) {
	opts := testOpts(t, 3)
	crash := &fault.Crash{At: 20}
	opts.Crash = crash
	opts.PagerFault = crash
	s, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	recs := makeRecords(opts.Tree.Schema, 60, 7)
	var crashed bool
	for _, r := range recs {
		if err := s.Insert(r); err != nil {
			if !IsCrash(err) {
				t.Fatalf("non-crash failure: %v", err)
			}
			crashed = true
			break
		}
	}
	if !crashed {
		t.Fatal("crash point never fired")
	}
	// The store is poisoned: no further operations, no releases.
	if err := s.Insert(recs[0]); !IsCrash(err) {
		t.Fatalf("insert after crash: %v", err)
	}
	if _, err := s.Release(0); !IsCrash(err) {
		t.Fatalf("release after crash: %v", err)
	}
	if s.Err() == nil {
		t.Fatal("Err reports healthy after crash")
	}
	s.Close()

	// Recovery without the crash policy converges to an audited state.
	opts.Crash = nil
	opts.PagerFault = nil
	s2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Release(0); err != nil {
		t.Fatal(err)
	}
}

// TestStoreIngressValidation: nothing the recovery path refuses may
// ever be committed to the WAL. A wrong-dimensionality record would
// fail tree ops on replay; a NaN coordinate would be folded into the
// next checkpoint, which DecodeSnapshot rejects — making every later
// Open fail permanently. Both must be rejected before the log append,
// leaving the store alive and the log replayable.
func TestStoreIngressValidation(t *testing.T) {
	opts := testOpts(t, 3)
	opts.CheckpointEvery = 4
	s, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	recs := makeRecords(opts.Tree.Schema, 12, 11)
	for _, r := range recs {
		if err := s.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	seq := s.Seq()

	dims := opts.Tree.Schema.Dims()
	badQI := func(mut func(qi []float64)) []float64 {
		qi := append([]float64(nil), recs[0].QI...)
		mut(qi)
		return qi
	}
	rejected := []struct {
		name string
		op   func() error
	}{
		{"insert short", func() error {
			return s.Insert(attr.Record{ID: 900, QI: make([]float64, dims-1)})
		}},
		{"insert long", func() error {
			return s.Insert(attr.Record{ID: 901, QI: make([]float64, dims+1)})
		}},
		{"insert NaN", func() error {
			return s.Insert(attr.Record{ID: 902, QI: badQI(func(qi []float64) { qi[0] = math.NaN() })})
		}},
		{"insert Inf", func() error {
			return s.Insert(attr.Record{ID: 903, QI: badQI(func(qi []float64) { qi[dims-1] = math.Inf(1) })})
		}},
		{"delete short", func() error {
			_, err := s.Delete(recs[1].ID, make([]float64, dims-1))
			return err
		}},
		{"delete NaN", func() error {
			_, err := s.Delete(recs[1].ID, badQI(func(qi []float64) { qi[0] = math.NaN() }))
			return err
		}},
		{"update bad old", func() error {
			_, err := s.Update(recs[2].ID, make([]float64, dims+1), recs[2])
			return err
		}},
		{"update NaN new", func() error {
			bad := recs[2].Clone()
			bad.QI[0] = math.NaN()
			_, err := s.Update(recs[2].ID, recs[2].QI, bad)
			return err
		}},
	}
	for _, tc := range rejected {
		if err := tc.op(); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
	if s.Err() != nil {
		t.Fatalf("store poisoned by rejected input: %v", s.Err())
	}
	if s.Seq() != seq {
		t.Fatalf("rejected operations reached the log: seq %d, want %d", s.Seq(), seq)
	}

	// The store still serves, checkpoints, and — crucially — reopens:
	// no unrecoverable record ever hit the WAL or a checkpoint.
	if err := s.Insert(attr.Record{ID: 904, QI: recs[0].Clone().QI, Sensitive: "ok"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := storeRecords(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(opts)
	if err != nil {
		t.Fatalf("reopen after rejected inputs: %v", err)
	}
	defer s2.Close()
	if err := sameRecords(want, storeRecords(s2)); err != nil {
		t.Fatal(err)
	}
	if err := verify.Tree(s2.Tree(), verify.TreeOptions{}); err != nil {
		t.Fatal(err)
	}
}
