package wal

import (
	"fmt"
	"testing"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/dataset"
	"spatialanon/internal/detrng"
	"spatialanon/internal/fault"
	"spatialanon/internal/rplustree"
	"spatialanon/internal/verify"
)

// The crash matrix is the package's central claim, made executable:
// for a matrix of workload seeds, crash the store at EVERY durable
// operation of a churn workload — each WAL append and each checkpoint
// page write-back, with the fatal append torn by a varying fraction —
// and assert that recovery always converges to an audited, k-safe
// state whose record multiset equals a shadow replay of the committed
// log prefix.

// churnOp is one scripted maintenance operation.
type churnOp struct {
	kind  Type
	rec   attr.Record
	oldQI []float64
}

// churnWorkload scripts a deterministic insert/delete/update mix. The
// generator tracks its own live set so deletes and updates target
// records that exist; determinism is what lets the same workload run
// once per crash point.
func churnWorkload(schema *attr.Schema, seed int64, n int) []churnOp {
	rng := detrng.New(seed)
	dims := schema.Dims()
	live := make(map[int64][]float64)
	var ids []int64
	nextID := int64(1)
	randQI := func() []float64 {
		qi := make([]float64, dims)
		for d := range qi {
			qi[d] = rng.Float64() * 100
		}
		return qi
	}
	ops := make([]churnOp, 0, n)
	for len(ops) < n {
		r := rng.Float64()
		switch {
		case r < 0.55 || len(ids) == 0:
			qi := randQI()
			rec := attr.Record{ID: nextID, QI: qi, Sensitive: fmt.Sprintf("s%d", nextID)}
			nextID++
			live[rec.ID] = qi
			ids = append(ids, rec.ID)
			ops = append(ops, churnOp{kind: TypeInsert, rec: rec})
		case r < 0.80:
			i := rng.Intn(len(ids))
			id := ids[i]
			ops = append(ops, churnOp{kind: TypeDelete, rec: attr.Record{ID: id}, oldQI: live[id]})
			delete(live, id)
			ids = append(ids[:i], ids[i+1:]...)
		default:
			i := rng.Intn(len(ids))
			id := ids[i]
			qi := randQI()
			ops = append(ops, churnOp{kind: TypeUpdate,
				rec:   attr.Record{ID: id, QI: qi, Sensitive: fmt.Sprintf("u%d", id)},
				oldQI: live[id]})
			live[id] = qi
		}
	}
	return ops
}

// shadowAfter replays the first n operations on a plain map — the
// reference semantics a recovered store must match.
func shadowAfter(ops []churnOp, n int) map[int64]attr.Record {
	m := make(map[int64]attr.Record)
	for _, o := range ops[:n] {
		switch o.kind {
		case TypeInsert:
			m[o.rec.ID] = o.rec
		case TypeDelete:
			delete(m, o.rec.ID)
		case TypeUpdate:
			if _, ok := m[o.rec.ID]; ok {
				m[o.rec.ID] = o.rec
			}
		}
	}
	return m
}

// applyOp drives one scripted operation through the store.
func applyOp(s *Store, o churnOp) error {
	switch o.kind {
	case TypeInsert:
		return s.Insert(o.rec)
	case TypeDelete:
		_, err := s.Delete(o.rec.ID, o.oldQI)
		return err
	case TypeUpdate:
		_, err := s.Update(o.rec.ID, o.oldQI, o.rec)
		return err
	}
	return fmt.Errorf("bad op")
}

// runUntilCrash creates a store in dir and runs the workload until the
// injected crash fires (or the workload completes). It returns how
// many operations were acknowledged and whether Create itself
// survived.
func runUntilCrash(t *testing.T, opts Options, ops []churnOp) (acked int, createOK bool) {
	t.Helper()
	s, err := Create(opts)
	if err != nil {
		if !IsCrash(err) {
			t.Fatalf("create failed without crash: %v", err)
		}
		return 0, false
	}
	defer s.Close()
	for i, o := range ops {
		if err := applyOp(s, o); err != nil {
			if !IsCrash(err) {
				t.Fatalf("op %d failed without crash: %v", i, err)
			}
			return i, true
		}
	}
	return len(ops), true
}

func TestCrashMatrixRecoversEverywhere(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 4
	}
	const (
		nOps  = 40
		baseK = 3
	)
	schema := dataset.LandsEndSchema()

	// Aggregate coverage flags: the matrix must actually exercise torn
	// tails and interrupted checkpoints, not just clean cut points.
	tornSeen := make([]bool, seeds)
	freedSeen := make([]bool, seeds)

	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			ops := churnWorkload(schema, int64(seed)+1, nOps)
			mkOpts := func(dir string, crash *fault.Crash) Options {
				o := Options{
					Dir:             dir,
					Tree:            rplustree.Config{Schema: schema, BaseK: baseK},
					CheckpointEvery: 9,
					NoSync:          true,
				}
				if crash != nil {
					o.Crash = crash
					o.PagerFault = crash
				}
				return o
			}

			// Dry run: count the workload's durable operations. That count
			// is the size of this seed's crash-point matrix.
			counter := &fault.Crash{}
			if acked, ok := runUntilCrash(t, mkOpts(t.TempDir(), counter), ops); !ok || acked != nOps {
				t.Fatalf("dry run died: acked=%d ok=%v", acked, ok)
			}
			total := counter.Ops()
			if total < nOps {
				t.Fatalf("workload performed %d durable ops, fewer than its %d operations", total, nOps)
			}

			for at := 1; at <= total; at++ {
				torn := []float64{0, 0.5, 1}[at%3]
				crash := &fault.Crash{At: at, Torn: torn}
				dir := t.TempDir()
				acked, createOK := runUntilCrash(t, mkOpts(dir, crash), ops)
				if crash.Err() == nil {
					t.Fatalf("at=%d: crash point never fired", at)
				}
				if !createOK {
					// The store died before its first checkpoint was
					// published: there is nothing to recover, and Open must
					// say so rather than fabricate a store.
					if _, err := Open(mkOpts(dir, nil)); err == nil {
						t.Fatalf("at=%d: Open invented a store out of a dead Create", at)
					}
					continue
				}

				s, err := Open(mkOpts(dir, nil))
				if err != nil {
					t.Fatalf("at=%d torn=%.1f acked=%d: recovery failed: %v", at, torn, acked, err)
				}
				st := s.RecoveryStats()
				if st.TornBytes > 0 {
					tornSeen[seed] = true
				}
				if st.PagesFreed > 0 {
					freedSeen[seed] = true
				}

				// Committed-prefix contract: the recovered operation count is
				// every acknowledged op, plus at most the one in flight when
				// the crash hit (its frame may have become durable before the
				// ack was lost).
				seq := int(s.Seq())
				if seq != acked && seq != acked+1 {
					t.Fatalf("at=%d: recovered %d ops, acknowledged %d", at, seq, acked)
				}
				if err := sameRecords(shadowAfter(ops, seq), storeRecords(s)); err != nil {
					t.Fatalf("at=%d: recovered state diverges from committed prefix: %v", at, err)
				}

				// K-safety: no leaf below k once the tree has split, and the
				// release (when one exists) passes the independent auditor.
				if s.Tree().Height() > 1 {
					if err := verify.Tree(s.Tree(), verify.TreeOptions{MinLeafOccupancy: baseK}); err != nil {
						t.Fatalf("at=%d: recovered tree breaks k-bound: %v", at, err)
					}
				}
				if s.Len() >= baseK {
					rel, err := s.Release(0)
					if err != nil {
						t.Fatalf("at=%d: release after recovery: %v", at, err)
					}
					if err := verify.Release(rel, anonmodel.KAnonymity{K: baseK}); err != nil {
						t.Fatalf("at=%d: recovered release unsafe: %v", at, err)
					}
				}

				// The recovered store must accept new writes and survive a
				// checkpoint (the log it recovered from gets truncated).
				if err := s.Insert(attr.Record{ID: 1 << 40, QI: ops[0].rec.QI, Sensitive: "post"}); err != nil {
					t.Fatalf("at=%d: insert after recovery: %v", at, err)
				}
				if err := s.Checkpoint(); err != nil {
					t.Fatalf("at=%d: checkpoint after recovery: %v", at, err)
				}
				if err := s.Close(); err != nil {
					t.Fatalf("at=%d: close after recovery: %v", at, err)
				}
			}

			if !tornSeen[seed] {
				t.Error("matrix never produced a torn tail")
			}
			if !freedSeen[seed] {
				t.Error("matrix never freed pages from an interrupted checkpoint")
			}
		})
	}
}
