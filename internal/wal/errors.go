package wal

import "errors"

// ErrPoisoned marks a store that has died: a simulated crash, a
// permanent device fault, or log/tree divergence left it unable to
// guarantee that its in-memory state and its durable log agree, so it
// refuses all further service. Every poisoning error wraps this
// sentinel (errors.Is matches) together with the original cause, so
// callers can both branch on "the store is dead" and inspect why —
// IsCrash still sees a wrapped simulated crash, retry.IsTransient
// still sees a fault's kind. A poisoned store is not necessarily
// lost: Store.Recover rebuilds one in place from its durable image.
var ErrPoisoned = errors.New("wal: store poisoned")
