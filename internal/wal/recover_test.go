package wal

import (
	"errors"
	"testing"

	"spatialanon/internal/fault"
	"spatialanon/internal/retry"
	"spatialanon/internal/verify"
)

// TestWriterAbsorbsFlakyFaults: injected transient write and fsync
// faults — including torn partial writes — must be absorbed by the
// writer's retry loop, leaving a clean, fully committed log.
func TestWriterAbsorbsFlakyFaults(t *testing.T) {
	opts := testOpts(t, 3)
	opts.Retry = retry.Policy{Attempts: 8}
	opts.AppendFault = fault.NewFlaky(7, fault.FlakyConfig{
		TransientWriteRate: 0.3,
		TransientSyncRate:  0.2,
	})
	st, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	recs := makeRecords(opts.Tree.Schema, 60, 7)
	for _, r := range recs {
		if err := st.Insert(r); err != nil {
			t.Fatalf("insert under flaky device: %v", err)
		}
	}
	if err := st.Err(); err != nil {
		t.Fatalf("store poisoned by transient faults: %v", err)
	}
	before := storeRecords(st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	opts.AppendFault = nil
	st2, err := Open(opts)
	if err != nil {
		t.Fatalf("reopen after flaky run: %v", err)
	}
	defer st2.Close()
	if err := sameRecords(before, storeRecords(st2)); err != nil {
		t.Fatal(err)
	}
}

// TestStoreSurvivesTransientExhaustion: when even the retry budget is
// exhausted by transient faults, the failed operation must leave the
// store serviceable — log rolled back, seq unadvanced — so the SAME
// operation can simply be resubmitted once the device recovers.
func TestStoreSurvivesTransientExhaustion(t *testing.T) {
	opts := testOpts(t, 3)
	// One attempt, and the first armed write attempt fails: the insert
	// fails without any retry absorbing it. After skips Create's own
	// manifest append (one write, one sync).
	fl := fault.NewFlaky(11, fault.FlakyConfig{TransientWriteRate: 1, After: 2, MaxFaults: 1})
	opts.AppendFault = fl
	st, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	recs := makeRecords(opts.Tree.Schema, 2, 11)
	seq := st.Seq()
	err = st.Insert(recs[0])
	if err == nil {
		t.Fatal("insert succeeded through an unretried transient fault")
	}
	if !retry.IsTransient(err) {
		t.Fatalf("error lost its transient marker: %v", err)
	}
	if st.Err() != nil {
		t.Fatalf("transient fault poisoned the store: %v", st.Err())
	}
	if st.Seq() != seq {
		t.Fatalf("failed insert advanced seq %d -> %d", seq, st.Seq())
	}
	// The fault budget is spent; the resubmission must land.
	if err := st.Insert(recs[0]); err != nil {
		t.Fatalf("resubmit after transient fault: %v", err)
	}
	if st.Seq() != seq+1 {
		t.Fatalf("seq %d after one committed insert, want %d", st.Seq(), seq+1)
	}
}

// TestStorePoisonWrapsSentinel: a permanent device fault must poison
// the store with an error chain that matches ErrPoisoned, is not
// transient, and still names the underlying fault.
func TestStorePoisonWrapsSentinel(t *testing.T) {
	opts := testOpts(t, 3)
	opts.AppendFault = fault.NewFlaky(13, fault.FlakyConfig{PermanentWriteRate: 1, After: 2, MaxFaults: 1})
	st, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	recs := makeRecords(opts.Tree.Schema, 2, 13)
	err = st.Insert(recs[0])
	if err == nil {
		t.Fatal("insert succeeded through a permanent fault")
	}
	if !errors.Is(err, ErrPoisoned) {
		t.Fatalf("poisoning error does not match ErrPoisoned: %v", err)
	}
	if !errors.Is(st.Err(), ErrPoisoned) {
		t.Fatalf("Err() does not match ErrPoisoned: %v", st.Err())
	}
	if retry.IsTransient(st.Err()) {
		t.Fatalf("permanent poison reads as transient: %v", st.Err())
	}
	var le *fault.LogError
	if !errors.As(st.Err(), &le) || le.Kind != fault.Permanent {
		t.Fatalf("underlying fault lost from the chain: %v", st.Err())
	}
	// Poisoned stores refuse everything with the same chain.
	if _, err := st.Release(0); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("release from poisoned store: %v", err)
	}
}

// TestStoreRecoverFromPoison: a store poisoned by a permanent append
// fault resurrects in place — committed-prefix recovery, full audit —
// and serves writes again, having lost only the unacknowledged
// operation that hit the fault.
func TestStoreRecoverFromPoison(t *testing.T) {
	opts := testOpts(t, 3)
	// The fault arms late enough that some inserts commit first, and
	// its budget is one: after the poison, the device is healthy.
	opts.AppendFault = fault.NewFlaky(17, fault.FlakyConfig{PermanentWriteRate: 1, After: 10, MaxFaults: 1})
	st, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	recs := makeRecords(opts.Tree.Schema, 40, 17)
	var acked []int64
	var poisoned bool
	for _, r := range recs {
		if err := st.Insert(r); err != nil {
			if !errors.Is(err, ErrPoisoned) {
				t.Fatalf("unexpected insert failure: %v", err)
			}
			poisoned = true
			break
		}
		acked = append(acked, r.ID)
	}
	if !poisoned {
		t.Fatal("fault schedule never fired")
	}
	if err := st.Recover(); err != nil {
		t.Fatalf("resurrection: %v", err)
	}
	if st.Err() != nil {
		t.Fatalf("store still poisoned after Recover: %v", st.Err())
	}
	got := storeRecords(st)
	for _, id := range acked {
		if _, ok := got[id]; !ok {
			t.Fatalf("acknowledged record %d lost across resurrection", id)
		}
	}
	if len(got) != len(acked) {
		t.Fatalf("store holds %d records, %d were acknowledged", len(got), len(acked))
	}
	// Writes work again, and the result still audits.
	if err := st.Insert(recs[len(recs)-1]); err != nil {
		t.Fatalf("insert after resurrection: %v", err)
	}
	if err := verify.Tree(st.Tree(), verify.TreeOptions{}); err != nil {
		t.Fatal(err)
	}
}

// TestStoreRecoverSalvagesRottenCheckpoint: when bit rot lands in a
// live checkpoint page, the durable image alone is unrecoverable —
// but the live audited tree equals checkpoint+log by construction, so
// Recover reseeds the image from it and comes back clean.
func TestStoreRecoverSalvagesRottenCheckpoint(t *testing.T) {
	opts := testOpts(t, 3)
	st, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	recs := makeRecords(opts.Tree.Schema, 30, 19)
	for _, r := range recs {
		if err := st.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	before := storeRecords(st)
	pages := st.SnapshotPages()
	if len(pages) == 0 {
		t.Fatal("no live checkpoint pages")
	}
	if err := st.FlipBit(pages[0], 12); err != nil {
		t.Fatal(err)
	}
	// A plain reopen of this image would fail on the rotted page; the
	// in-place Recover must fall back to reseeding from the live tree.
	if err := st.Recover(); err != nil {
		t.Fatalf("salvage resurrection: %v", err)
	}
	if err := sameRecords(before, storeRecords(st)); err != nil {
		t.Fatal(err)
	}
	// The reseeded image must now survive a real process restart.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(opts)
	if err != nil {
		t.Fatalf("reopen of reseeded image: %v", err)
	}
	defer st2.Close()
	if err := sameRecords(before, storeRecords(st2)); err != nil {
		t.Fatal(err)
	}
}

// TestStoreScrubRepairsLiveRot: the scrubber must detect a
// bit-flipped live checkpoint page at rest and repair it by rewriting
// the checkpoint from the audited tree — before any reopen needs the
// rotted page.
func TestStoreScrubRepairsLiveRot(t *testing.T) {
	opts := testOpts(t, 3)
	st, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	recs := makeRecords(opts.Tree.Schema, 30, 23)
	for _, r := range recs {
		if err := st.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	rep, err := st.Scrub()
	if err != nil || len(rep.Corrupt) != 0 {
		t.Fatalf("clean store scrub: %+v, %v", rep, err)
	}
	pages := st.SnapshotPages()
	if err := st.FlipBit(pages[0], 5); err != nil {
		t.Fatal(err)
	}
	rep, err = st.Scrub()
	if err != nil {
		t.Fatalf("scrub of rotted store: %v", err)
	}
	if len(rep.Corrupt) != 1 || rep.Corrupt[0] != pages[0] || !rep.Rewritten {
		t.Fatalf("scrub report %+v, want page %d detected and rewritten", rep, pages[0])
	}
	rep, err = st.Scrub()
	if err != nil || len(rep.Corrupt) != 0 {
		t.Fatalf("scrub after repair still dirty: %+v, %v", rep, err)
	}
	// The repaired image reopens cleanly.
	before := storeRecords(st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(opts)
	if err != nil {
		t.Fatalf("reopen after scrub repair: %v", err)
	}
	defer st2.Close()
	if err := sameRecords(before, storeRecords(st2)); err != nil {
		t.Fatal(err)
	}
}

// TestStoreScrubQuarantinesGarbage: a rotten page OUTSIDE the live
// checkpoint is residue (an aborted checkpoint, a crash); the
// scrubber frees it instead of rewriting anything.
func TestStoreScrubQuarantinesGarbage(t *testing.T) {
	opts := testOpts(t, 3)
	st, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	recs := makeRecords(opts.Tree.Schema, 12, 29)
	for _, r := range recs {
		if err := st.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	// Fabricate checkpoint residue: an allocated, flushed page no
	// manifest references, then rot it.
	id, _, err := st.pg.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.pg.Unpin(id); err != nil {
		t.Fatal(err)
	}
	if err := st.pg.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := st.FlipBit(id, 3); err != nil {
		t.Fatal(err)
	}
	rep, err := st.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Corrupt) != 1 || rep.Corrupt[0] != id || rep.Freed != 1 || rep.Rewritten {
		t.Fatalf("scrub report %+v, want page %d quarantined without a rewrite", rep, id)
	}
}
