package wal

import (
	"fmt"
	"math/rand"
	"testing"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/dataset"
	"spatialanon/internal/detrng"
	"spatialanon/internal/fault"
	"spatialanon/internal/rplustree"
	"spatialanon/internal/verify"
)

// The group-commit crash matrix extends the per-op matrix to batched
// commits: the same churn workload is chunked into group-commit
// batches of varying size, the store is killed at EVERY durable
// operation (batch frame appends, checkpoint appends and page
// write-backs, with torn final frames), and recovery must equal the
// committed BATCH prefix — a batch is all-or-nothing, so the
// recovered operation count always lands exactly on a batch boundary,
// never inside one.

// chunkBatches splits ops into batch sizes drawn from rng in [1,max].
func chunkBatches(n int, max int, rng *rand.Rand) [][2]int {
	var bounds [][2]int
	off := 0
	for off < n {
		sz := 1 + rng.Intn(max)
		if off+sz > n {
			sz = n - off
		}
		bounds = append(bounds, [2]int{off, off + sz})
		off += sz
	}
	return bounds
}

// runBatchesUntilCrash drives the chunked workload through ApplyBatch
// until the crash fires, returning how many operations were
// acknowledged (whole batches only) and whether Create survived.
func runBatchesUntilCrash(t *testing.T, opts Options, ops []Op, bounds [][2]int) (acked int, createOK bool) {
	t.Helper()
	s, err := Create(opts)
	if err != nil {
		if !IsCrash(err) {
			t.Fatalf("create failed without crash: %v", err)
		}
		return 0, false
	}
	defer s.Close()
	for _, b := range bounds {
		if _, err := s.ApplyBatch(ops[b[0]:b[1]]); err != nil {
			if !IsCrash(err) {
				t.Fatalf("batch %v failed without crash: %v", b, err)
			}
			return b[0], true
		}
	}
	return len(ops), true
}

func TestCrashMatrixGroupCommit(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 3
	}
	const (
		nOps     = 48
		maxBatch = 7
		baseK    = 3
	)
	schema := dataset.LandsEndSchema()

	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			churn := churnWorkload(schema, int64(seed)+101, nOps)
			ops := opsFromChurn(churn)
			bounds := chunkBatches(nOps, maxBatch, detrng.New(int64(seed)+7))

			// Batch boundaries are the only legal recovery points.
			boundary := map[int]bool{0: true}
			for _, b := range bounds {
				boundary[b[1]] = true
			}

			mkOpts := func(dir string, crash *fault.Crash) Options {
				o := Options{
					Dir:             dir,
					Tree:            rplustree.Config{Schema: schema, BaseK: baseK},
					CheckpointEvery: 11,
					NoSync:          true,
				}
				if crash != nil {
					o.Crash = crash
					o.PagerFault = crash
				}
				return o
			}

			counter := &fault.Crash{}
			if acked, ok := runBatchesUntilCrash(t, mkOpts(t.TempDir(), counter), ops, bounds); !ok || acked != nOps {
				t.Fatalf("dry run died: acked=%d ok=%v", acked, ok)
			}
			total := counter.Ops()
			// Group commit's whole point: far fewer durable ops than
			// operations. The workload spends one frame per batch plus
			// checkpoint traffic, so the ceiling is batches+checkpoints,
			// not nOps.
			if total >= nOps {
				t.Fatalf("batched workload performed %d durable ops for %d operations — batching is not amortizing", total, nOps)
			}

			for at := 1; at <= total; at++ {
				torn := []float64{0, 0.3, 0.7, 1}[at%4]
				crash := &fault.Crash{At: at, Torn: torn}
				dir := t.TempDir()
				acked, createOK := runBatchesUntilCrash(t, mkOpts(dir, crash), ops, bounds)
				if crash.Err() == nil {
					t.Fatalf("at=%d: crash point never fired", at)
				}
				if !createOK {
					if _, err := Open(mkOpts(dir, nil)); err == nil {
						t.Fatalf("at=%d: Open invented a store out of a dead Create", at)
					}
					continue
				}

				s, err := Open(mkOpts(dir, nil))
				if err != nil {
					t.Fatalf("at=%d torn=%.1f acked=%d: recovery failed: %v", at, torn, acked, err)
				}

				// All-or-nothing at the frame boundary: the recovered
				// count is every acknowledged op plus either the whole
				// in-flight batch (its frame became durable before the
				// ack was lost) or none of it — and in every case a
				// batch boundary. A partially-applied batch is the bug
				// this matrix exists to catch.
				seq := int(s.Seq())
				if !boundary[seq] {
					t.Fatalf("at=%d torn=%.1f: recovered %d ops — inside a batch (boundaries %v)", at, torn, seq, bounds)
				}
				if seq < acked {
					t.Fatalf("at=%d: recovered %d ops, lost acknowledged writes (acked %d)", at, seq, acked)
				}
				var inflight int
				for _, b := range bounds {
					if b[0] == acked {
						inflight = b[1] - b[0]
					}
				}
				if seq != acked && seq != acked+inflight {
					t.Fatalf("at=%d: recovered %d ops, want %d or %d", at, seq, acked, acked+inflight)
				}
				if err := sameRecords(shadowAfter(churn, seq), storeRecords(s)); err != nil {
					t.Fatalf("at=%d: recovered state diverges from committed batch prefix: %v", at, err)
				}

				// The recovered state must still be k-safe and auditable.
				if s.Len() >= baseK {
					rel, err := s.Release(0)
					if err != nil {
						t.Fatalf("at=%d: release after recovery: %v", at, err)
					}
					if err := verify.Release(rel, anonmodel.KAnonymity{K: baseK}); err != nil {
						t.Fatalf("at=%d: recovered release unsafe: %v", at, err)
					}
				}
				// And it must keep serving batches.
				if _, err := s.ApplyBatch(opsFromChurn(churnWorkload(schema, int64(seed)+999, 5))); err != nil {
					t.Fatalf("at=%d: batch after recovery: %v", at, err)
				}
				if err := s.Close(); err != nil {
					t.Fatalf("at=%d: close after recovery: %v", at, err)
				}
			}
		})
	}
}
