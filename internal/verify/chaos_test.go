package verify

import (
	"fmt"
	"sort"
	"testing"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/core"
	"spatialanon/internal/dataset"
	"spatialanon/internal/fault"
	"spatialanon/internal/pager"
	"spatialanon/internal/rplustree"
)

// The chaos harness: seeded fault schedules against bulk loads and
// incremental insert streams, asserting the contract of the whole
// robustness layer — every injected fault ends in a returned error or
// a tree this package certifies, never silent corruption, and after
// storage recovery (disarm + Scrub) the load completes with every
// record accounted for.

const chaosBaseK = 5

// chaosProfile derives a fault mix from the seed so the suite covers
// transient-only, permanent, corrupting, and mixed schedules.
func chaosProfile(seed int64) fault.Config {
	switch seed % 4 {
	case 0: // retryable noise, mostly absorbed by the loader's retries
		return fault.Config{TransientReadRate: 0.05, TransientWriteRate: 0.05}
	case 1: // a few pages die mid-load
		return fault.Config{PermanentReadRate: 0.01, PermanentWriteRate: 0.01, MaxFaults: 3}
	case 2: // silent data damage, surfaced later by checksums
		return fault.Config{TornWriteRate: 0.05, BitRotRate: 0.05}
	default: // everything at once, armed mid-load
		return fault.Config{
			TransientReadRate: 0.03, TransientWriteRate: 0.03,
			PermanentWriteRate: 0.005,
			TornWriteRate:      0.02, BitRotRate: 0.02,
			After: 50, MaxFaults: 10,
		}
	}
}

// runSchedule executes one seeded schedule and returns the number of
// faults the injector fired. Any panic fails the test; any invariant
// violation after recovery fails the test.
func runSchedule(t *testing.T, seed int64, incremental bool) int {
	t.Helper()
	n := 600
	if incremental {
		n = 300
	}
	recs := dataset.GeneratePatients(n, seed)

	tr, err := rplustree.New(rplustree.Config{Schema: dataset.PatientsSchema(), BaseK: chaosBaseK})
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(seed, chaosProfile(seed))
	bl, err := rplustree.NewBulkLoader(tr, rplustree.BulkLoadConfig{
		PageSize: 128, MemoryBytes: 128 * 16, BufferPages: 2, RecordBytes: 16,
		Fault: inj,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Faulted phase: errors are expected and collected; panics or lost
	// records are the failures under test.
	var faultedErrs []error
	observe := func(err error) {
		if err != nil {
			faultedErrs = append(faultedErrs, err)
		}
	}
	if incremental {
		for i, r := range recs {
			observe(bl.Insert(r))
			if i%61 == 60 {
				observe(bl.Flush())
			}
		}
	} else {
		observe(bl.InsertBatch(recs))
	}
	observe(bl.Flush())

	// Recovery: disarm the injector, restore corrupted pages from the
	// (modeled) replica, and finish the load. This must now succeed.
	bl.Pager().SetFaultPolicy(nil)
	bl.Pager().Scrub()
	if err := bl.Flush(); err != nil {
		t.Fatalf("seed %d: flush after recovery: %v", seed, err)
	}

	// A faulted run must end exactly where a fault-free run would:
	// certified structure and the same record set. No occupancy floor
	// here — even fault-free loads legitimately leave an occasional
	// leaf under k (duplicate-heavy splits); k is re-established by
	// the leaf scan and audited on the releases below.
	if err := Tree(tr, TreeOptions{}); err != nil {
		t.Fatalf("seed %d (%d faults, %d errors): %v", seed, inj.Injected(), len(faultedErrs), err)
	}
	var got []int64
	base := make([]anonmodel.Partition, 0, 64)
	minLeaf := len(recs)
	for _, l := range tr.Leaves() {
		base = append(base, anonmodel.Partition{Box: l.MBR, Records: l.Records})
		if len(l.Records) < minLeaf {
			minLeaf = len(l.Records)
		}
		for _, r := range l.Records {
			got = append(got, r.ID)
		}
	}
	want := make([]int64, 0, len(recs))
	for _, r := range recs {
		want = append(want, r.ID)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("seed %d: %d records survived of %d (injected %d faults)", seed, len(got), len(want), inj.Injected())
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("seed %d: record set diverges at %d: %d vs %d", seed, i, got[i], want[i])
		}
	}

	// The recovered tree must publish safely at every granularity, and
	// the family must be jointly k-bound (Lemma 1).
	var sets [][]anonmodel.Partition
	for _, k := range []int{chaosBaseK, 2 * chaosBaseK, 4 * chaosBaseK} {
		cons := anonmodel.KAnonymity{K: k}
		ps, err := core.LeafScan(base, cons)
		if err != nil {
			t.Fatalf("seed %d: leaf scan k=%d: %v", seed, k, err)
		}
		if err := Release(ps, cons); err != nil {
			t.Fatalf("seed %d: release k=%d: %v", seed, k, err)
		}
		sets = append(sets, ps)
	}
	// Intersection cells are unions of whole leaves (leaf-scan cuts
	// fall only between leaves), so the provable joint bound is the
	// smallest leaf — chaosBaseK except when a duplicate-heavy split
	// left one leaf just under k.
	kBound := chaosBaseK
	if minLeaf < kBound {
		kBound = minLeaf
	}
	if err := Releases(sets, kBound); err != nil {
		t.Fatalf("seed %d: k-boundness: %v", seed, err)
	}
	return inj.Injected()
}

func TestChaosBulkLoad(t *testing.T) {
	injected := 0
	for seed := int64(0); seed < 120; seed++ {
		seed := seed
		t.Run(fmt.Sprint("seed=", seed), func(t *testing.T) {
			injected += runSchedule(t, seed, false)
		})
	}
	if injected == 0 {
		t.Fatal("no faults injected across the bulk-load schedules; rates too low to exercise anything")
	}
}

func TestChaosIncrementalInserts(t *testing.T) {
	injected := 0
	for seed := int64(1000); seed < 1100; seed++ {
		seed := seed
		t.Run(fmt.Sprint("seed=", seed), func(t *testing.T) {
			injected += runSchedule(t, seed, true)
		})
	}
	if injected == 0 {
		t.Fatal("no faults injected across the incremental schedules; rates too low to exercise anything")
	}
}

// A targeted drill for the recovery path: corrupt a known page behind
// the loader's back, watch the checksum surface it as a typed error,
// scrub, and finish.
func TestChaosScrubRecoversBitRot(t *testing.T) {
	tr, err := rplustree.New(rplustree.Config{Schema: dataset.PatientsSchema(), BaseK: chaosBaseK})
	if err != nil {
		t.Fatal(err)
	}
	bl, err := rplustree.NewBulkLoader(tr, rplustree.BulkLoadConfig{
		PageSize: 128, MemoryBytes: 128 * 16, BufferPages: 2, RecordBytes: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := bl.InsertBatch(dataset.GeneratePatients(600, 77)); err != nil {
		t.Fatal(err)
	}
	if err := bl.Flush(); err != nil {
		t.Fatal(err)
	}
	// Rot one bit of the lowest-numbered page still on disk (early IDs
	// are often buffer pages that were freed when consumed). The page
	// may or may not be read again by later work, so instead of
	// asserting the error here we assert the stronger property: after
	// Scrub everything proceeds and verifies.
	rotted := false
	for id := pager.PageID(1); id < 10000 && !rotted; id++ {
		rotted = bl.Pager().FlipBit(id, 3) == nil
	}
	if !rotted {
		t.Fatal("no on-disk page found to corrupt")
	}
	if repaired, err := bl.Pager().Scrub(); err != nil || len(repaired) != 1 {
		t.Fatalf("scrub repaired %v pages (err %v), want exactly the rotted one", repaired, err)
	}
	more := dataset.GeneratePatients(200, 78)
	for i := range more {
		more[i].ID += 100000
	}
	if err := bl.InsertBatch(more); err != nil {
		t.Fatal(err)
	}
	if err := bl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := Tree(tr, TreeOptions{}); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 800 {
		t.Fatalf("Len = %d", tr.Len())
	}
}
