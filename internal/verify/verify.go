// Package verify is an independent auditor for the paper's safety
// properties. The central claim — an anonymization *is* a spatial
// index — means an index-corruption bug is silently also a privacy
// bug: a leaf below k occupancy or two overlapping sibling regions
// leak more than the published guarantee. This package re-derives the
// guarantees from raw structure (rplustree.AuditNode snapshots and
// published partition sets) without trusting the index's own
// bookkeeping or CheckInvariants, so the chaos harness can assert
// "clean error or verified-consistent tree, never silent corruption"
// after every fault schedule.
//
// Three entry points:
//
//   - Tree audits an index: sibling routing regions pairwise disjoint,
//     every MBR tight and inside its routing region, counts
//     consistent, every record inside its leaf's region, and
//     (opt-in) minimum leaf occupancy.
//   - Release audits one published partition set against its
//     constraint: records inside their boxes, the constraint satisfied
//     by every partition, and no record published twice.
//   - Releases audits a multi-granular family for k-boundness
//     (Lemma 1): the intersection cells an adversary can form by
//     colluding across releases each hold zero or at least k records.
package verify

import (
	"fmt"
	"math"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/routing"
	"spatialanon/internal/rplustree"
)

// TreeOptions tunes the Tree audit.
type TreeOptions struct {
	// MinLeafOccupancy, when positive, requires every non-empty leaf to
	// hold at least this many records. It is opt-in because leaves
	// legitimately dip below the base k — deletes shrink them and the
	// published guarantee is re-established at materialization time by
	// the leaf scan (Section 3.2) — but an insert-only load with more
	// than one leaf must keep every leaf at or above BaseK, and the
	// chaos harness asserts exactly that.
	MinLeafOccupancy int
}

// Tree audits the structural safety invariants of an index and returns
// the first violation found.
func Tree(t *rplustree.Tree, opt TreeOptions) error {
	root := t.Audit()
	return auditNode(root, nil, opt)
}

// auditNode recursively audits n, whose routing region must lie inside
// parentRegion (nil for the root).
func auditNode(n *rplustree.AuditNode, parentRegion attr.Box, opt TreeOptions) error {
	if parentRegion != nil && !regionWithin(n.Region, parentRegion) {
		return fmt.Errorf("verify: node region %v escapes parent region %v", n.Region, parentRegion)
	}
	if !n.MBR.IsEmpty() && !regionContainsBox(n.Region, n.MBR) {
		return fmt.Errorf("verify: node MBR %v escapes routing region %v", n.MBR, n.Region)
	}
	if n.Leaf() {
		return auditLeaf(n, opt)
	}
	if len(n.Children) == 0 {
		return fmt.Errorf("verify: internal node with no children")
	}
	count := 0
	union := attr.NewBox(len(n.Region))
	for i, c := range n.Children {
		for j := i + 1; j < len(n.Children); j++ {
			if regionsOverlap(c.Region, n.Children[j].Region) {
				return fmt.Errorf("verify: sibling regions overlap: %v and %v", c.Region, n.Children[j].Region)
			}
		}
		count += c.Count
		union.IncludeBox(c.MBR)
		if err := auditNode(c, n.Region, opt); err != nil {
			return err
		}
	}
	if count != n.Count {
		return fmt.Errorf("verify: node count %d != children sum %d", n.Count, count)
	}
	if !union.Equal(n.MBR) && !(union.IsEmpty() && n.MBR.IsEmpty()) {
		return fmt.Errorf("verify: node MBR %v not the union of its children's (want %v)", n.MBR, union)
	}
	return nil
}

// auditLeaf checks one leaf's records against its region, MBR, count,
// and optional occupancy floor.
func auditLeaf(n *rplustree.AuditNode, opt TreeOptions) error {
	if n.Count != len(n.Records) {
		return fmt.Errorf("verify: leaf count %d != %d records", n.Count, len(n.Records))
	}
	if opt.MinLeafOccupancy > 0 && len(n.Records) > 0 && len(n.Records) < opt.MinLeafOccupancy {
		return fmt.Errorf("verify: leaf holds %d records, below occupancy floor %d", len(n.Records), opt.MinLeafOccupancy)
	}
	tight := attr.NewBox(len(n.Region))
	for _, r := range n.Records {
		if !pointInRegion(n.Region, r.QI) {
			return fmt.Errorf("verify: record %d at %v outside leaf region %v", r.ID, r.QI, n.Region)
		}
		tight.Include(r.QI)
	}
	if !tight.Equal(n.MBR) && !(tight.IsEmpty() && n.MBR.IsEmpty()) {
		return fmt.Errorf("verify: leaf MBR %v not tight (want %v)", n.MBR, tight)
	}
	return nil
}

// Release audits one published partition set: every record inside its
// partition's box, every partition satisfying the constraint, and no
// record published in two partitions.
func Release(ps []anonmodel.Partition, c anonmodel.Constraint) error {
	if c == nil {
		return fmt.Errorf("verify: nil constraint")
	}
	seen := make(map[int64]int)
	for i, p := range ps {
		if len(p.Records) == 0 {
			return fmt.Errorf("verify: partition %d is empty", i)
		}
		if !c.Satisfied(p.Records) {
			return fmt.Errorf("verify: partition %d (%d records) violates %v", i, len(p.Records), c)
		}
		for _, r := range p.Records {
			if !p.Box.Contains(r.QI) {
				return fmt.Errorf("verify: record %d at %v outside partition %d box %v", r.ID, r.QI, i, p.Box)
			}
			if prev, dup := seen[r.ID]; dup {
				return fmt.Errorf("verify: record %d published in partitions %d and %d", r.ID, prev, i)
			}
			seen[r.ID] = i
		}
	}
	return nil
}

// Releases audits a multi-granular family for k-boundness (Lemma 1):
// every record must appear in exactly one partition of every release,
// and the intersection cells formed by colluding across releases — the
// sets of records sharing one partition in each release — must each
// hold at least k records. This is what makes handing granularity k to
// one consumer and 5k to another safe: their combined view is still a
// k-anonymization.
func Releases(sets [][]anonmodel.Partition, k int) error {
	if len(sets) == 0 {
		return nil
	}
	// Record ID -> partition index per release.
	assign := make(map[int64][]int)
	for ri, rel := range sets {
		for pi, p := range rel {
			for _, r := range p.Records {
				cell, ok := assign[r.ID]
				if !ok {
					cell = make([]int, len(sets))
					for i := range cell {
						cell[i] = -1
					}
					assign[r.ID] = cell
				}
				if cell[ri] != -1 {
					return fmt.Errorf("verify: record %d in two partitions of release %d", r.ID, ri)
				}
				cell[ri] = pi
			}
		}
	}
	cells := make(map[string]int)
	for id, cell := range assign {
		for ri, pi := range cell {
			if pi == -1 {
				return fmt.Errorf("verify: record %d missing from release %d", id, ri)
			}
		}
		cells[fmt.Sprint(cell)]++
	}
	for key, n := range cells {
		if n < k {
			return fmt.Errorf("verify: intersection cell %s holds %d records, below k=%d", key, n, k)
		}
	}
	return nil
}

// Routing audits a block-range accelerator against the release it
// claims to cover. A wrong accelerator is a silently wrong COUNT on
// the hottest path, so — like Tree and Release — the audit re-derives
// everything from the release itself instead of trusting the index's
// bookkeeping: every partition covered by exactly one block position,
// stored bounds/sizes/volumes bit-identical to the release, curve
// keys recomputed through the index's own quantizer and strictly
// ordered (ties by original index), block key ranges sorted and
// pairwise disjoint, and every block MBR exactly the union of its
// members' boxes.
func Routing(ix *routing.Index, ps []anonmodel.Partition) error {
	if ix == nil {
		return fmt.Errorf("verify: nil routing index")
	}
	n := ix.Len()
	if n != len(ps) {
		return fmt.Errorf("verify: routing index covers %d partitions, release has %d", n, len(ps))
	}
	if n == 0 {
		if ix.NumBlocks() != 0 {
			return fmt.Errorf("verify: empty routing index has %d blocks", ix.NumBlocks())
		}
		return nil
	}
	quant := ix.Quantizer()
	if quant == nil {
		return fmt.Errorf("verify: routing index has no quantizer")
	}
	dims := len(ps[0].Box)
	seen := make([]bool, n)
	corner := make([]float64, dims)
	var cell []uint32
	for pos := 0; pos < n; pos++ {
		oi := ix.PosOrig(pos)
		if oi < 0 || oi >= n {
			return fmt.Errorf("verify: routing position %d maps to partition %d, out of range", pos, oi)
		}
		if seen[oi] {
			return fmt.Errorf("verify: partition %d covered by two routing positions", oi)
		}
		seen[oi] = true
		p := ps[oi]
		if !ix.PosBox(pos).Equal(p.Box) {
			return fmt.Errorf("verify: routing position %d stores box %v, partition %d has %v", pos, ix.PosBox(pos), oi, p.Box)
		}
		if ix.PosSize(pos) != len(p.Records) {
			return fmt.Errorf("verify: routing position %d stores size %d, partition %d holds %d records", pos, ix.PosSize(pos), oi, len(p.Records))
		}
		if got, want := ix.PosVol(pos), lattice(p.Box); got != want {
			return fmt.Errorf("verify: routing position %d stores cell volume %v, want %v", pos, got, want)
		}
		for a := 0; a < dims; a++ {
			corner[a] = p.Box[a].Lo
		}
		var key uint64
		key, cell = quant.KeyInto(ix.Curve(), corner, cell)
		if key != ix.PosKey(pos) {
			return fmt.Errorf("verify: routing position %d stores key %d, recomputed %d", pos, ix.PosKey(pos), key)
		}
		if pos > 0 {
			prevKey, prevOrig := ix.PosKey(pos-1), ix.PosOrig(pos-1)
			if prevKey > key || (prevKey == key && prevOrig >= oi) {
				return fmt.Errorf("verify: routing positions %d and %d out of curve order", pos-1, pos)
			}
		}
	}
	// Blocks: contiguous, covering, key ranges consistent with the
	// positions they span and disjoint from their neighbors, MBRs the
	// exact union of their members.
	nb := ix.NumBlocks()
	wantStart := 0
	for b := 0; b < nb; b++ {
		start, end, keyLo, keyHi := ix.Block(b)
		if start != wantStart || end <= start || end > n {
			return fmt.Errorf("verify: routing block %d spans [%d,%d), want start %d within %d positions", b, start, end, wantStart, n)
		}
		wantStart = end
		if keyLo != ix.PosKey(start) || keyHi != ix.PosKey(end-1) {
			return fmt.Errorf("verify: routing block %d key range [%d,%d] disagrees with member keys [%d,%d]", b, keyLo, keyHi, ix.PosKey(start), ix.PosKey(end-1))
		}
		if b > 0 {
			_, _, _, prevHi := ix.Block(b - 1)
			if prevHi >= keyLo {
				return fmt.Errorf("verify: routing blocks %d and %d have overlapping key ranges", b-1, b)
			}
		}
		union := attr.NewBox(dims)
		for pos := start; pos < end; pos++ {
			union.IncludeBox(ps[ix.PosOrig(pos)].Box)
		}
		if !ix.BlockBox(b).Equal(union) {
			return fmt.Errorf("verify: routing block %d MBR %v not tight (want %v)", b, ix.BlockBox(b), union)
		}
	}
	if wantStart != n {
		return fmt.Errorf("verify: routing blocks cover %d positions, index has %d", wantStart, n)
	}
	return nil
}

// lattice independently recomputes the integer-lattice cell count the
// uniform estimator divides by (query's cells function).
func lattice(b attr.Box) float64 {
	c := 1.0
	for _, iv := range b {
		w := math.Round(iv.Hi - iv.Lo)
		if w < 0 {
			w = 0
		}
		c *= w + 1
	}
	return c
}

// regionWithin reports half-open region containment: child inside
// parent on every axis.
func regionWithin(child, parent attr.Box) bool {
	for i := range child {
		if child[i].Lo < parent[i].Lo || child[i].Hi > parent[i].Hi {
			return false
		}
	}
	return true
}

// regionContainsBox reports whether a closed MBR fits in a half-open
// routing region: records route by lo <= p < hi, so a tight MBR's Hi
// stays strictly below the region's Hi unless the region extends to
// +inf.
func regionContainsBox(region, mbr attr.Box) bool {
	for i := range region {
		if mbr[i].Lo < region[i].Lo {
			return false
		}
		if mbr[i].Hi >= region[i].Hi && !math.IsInf(region[i].Hi, 1) {
			return false
		}
	}
	return true
}

// regionsOverlap reports whether two half-open regions share a point.
func regionsOverlap(a, b attr.Box) bool {
	for i := range a {
		if a[i].Hi <= b[i].Lo || b[i].Hi <= a[i].Lo {
			return false
		}
	}
	return true
}

// pointInRegion reports half-open membership: lo <= p < hi per axis
// (an infinite hi admits everything).
func pointInRegion(region attr.Box, p []float64) bool {
	for i, iv := range region {
		if p[i] < iv.Lo || p[i] >= iv.Hi {
			return false
		}
	}
	return true
}
