package verify

import (
	"fmt"
	"sync"
	"testing"

	"spatialanon/internal/dataset"
	"spatialanon/internal/fault"
	"spatialanon/internal/rplustree"
)

// Chaos under parallelism. The parallel execution layer keeps the
// pager — and therefore the fault injector, which intercepts pager
// operations — on the coordinating goroutine, so a faulted load must
// hit the identical fault schedule at every worker count: same
// operation count, same injected faults, same recovered tree. These
// tests pin that, plus the sharded regime: concurrent independent
// loaders with per-shard injectors derived from one parent seed, each
// shard replayable in isolation.

// chaosParallelRecords is large enough that the trie-routing and
// split-cascade fork thresholds are crossed, so the schedule equality
// below is exercised with worker goroutines genuinely in play.
const chaosParallelRecords = 12000

// chaosParallelRun bulk loads with faults at the given parallelism,
// recovers, verifies, and returns the injector plus the recovered
// record IDs in leaf order.
func chaosParallelRun(t *testing.T, seed int64, parallelism int) (*fault.Injector, []int64) {
	t.Helper()
	recs := dataset.GenerateLandsEnd(chaosParallelRecords, seed)
	tr, err := rplustree.New(rplustree.Config{
		Schema: dataset.LandsEndSchema(), BaseK: chaosBaseK, Parallelism: parallelism,
	})
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(seed, chaosProfile(seed))
	bl, err := rplustree.NewBulkLoader(tr, rplustree.BulkLoadConfig{RecordBytes: 32, Fault: inj})
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	if err := bl.InsertBatch(recs); err != nil {
		errs++
	}
	if err := bl.Flush(); err != nil {
		errs++
	}
	bl.Pager().SetFaultPolicy(nil)
	bl.Pager().Scrub()
	if err := bl.Flush(); err != nil {
		t.Fatalf("seed %d workers %d: flush after recovery: %v", seed, parallelism, err)
	}
	if err := Tree(tr, TreeOptions{}); err != nil {
		t.Fatalf("seed %d workers %d (%d faults, %d load errors): %v",
			seed, parallelism, inj.Injected(), errs, err)
	}
	var ids []int64
	for _, l := range tr.Leaves() {
		for _, r := range l.Records {
			ids = append(ids, r.ID)
		}
	}
	return inj, ids
}

// TestChaosParallelLoadMatchesSerial: for the same seed, the serial
// and parallel loads must intercept the same operation sequence and
// therefore fire the same faults and converge on the same tree. A
// divergence would mean a worker goroutine reached the pager.
func TestChaosParallelLoadMatchesSerial(t *testing.T) {
	injectedTotal := 0
	for _, seed := range []int64{2, 3, 5, 42, 1001} {
		refInj, refIDs := chaosParallelRun(t, seed, 1)
		injectedTotal += refInj.Injected()
		for _, w := range []int{2, 4} {
			inj, ids := chaosParallelRun(t, seed, w)
			if inj.Ops() != refInj.Ops() {
				t.Fatalf("seed %d workers %d: %d pager ops, want %d — parallelism changed the storage schedule",
					seed, w, inj.Ops(), refInj.Ops())
			}
			if got, want := fmt.Sprint(inj.Counts()), fmt.Sprint(refInj.Counts()); got != want {
				t.Fatalf("seed %d workers %d: fault counts %s, want %s", seed, w, got, want)
			}
			if len(ids) != len(refIDs) {
				t.Fatalf("seed %d workers %d: %d records, want %d", seed, w, len(ids), len(refIDs))
			}
			for i := range refIDs {
				if ids[i] != refIDs[i] {
					t.Fatalf("seed %d workers %d: leaf-order record %d is %d, want %d",
						seed, w, i, ids[i], refIDs[i])
				}
			}
		}
	}
	if injectedTotal == 0 {
		t.Fatal("no faults injected across the schedules; nothing was exercised")
	}
}

// shardOutcome is what one sharded load reports for replay comparison.
type shardOutcome struct {
	counts  map[fault.Kind]int
	ops     int
	records int
}

// TestChaosShardedLoadersReplay: a sharded ingest gives every shard
// its own injector via Derive(shard). Shards run concurrently — legal
// because nothing is shared: tree, loader, pager and injector are all
// per-shard — and afterwards any single shard's schedule replays
// bit-for-bit from (parent seed, shard index) alone, which is what
// makes a failure in a 4-way concurrent run debuggable serially.
func TestChaosShardedLoadersReplay(t *testing.T) {
	const parentSeed = int64(7)
	const shards = 4
	parent := fault.NewInjector(parentSeed, chaosProfile(parentSeed))

	load := func(shard int, inj *fault.Injector) shardOutcome {
		recs := dataset.GenerateLandsEnd(800, parentSeed+int64(shard)*1000)
		tr, err := rplustree.New(rplustree.Config{Schema: dataset.LandsEndSchema(), BaseK: chaosBaseK})
		if err != nil {
			t.Error(err)
			return shardOutcome{}
		}
		bl, err := rplustree.NewBulkLoader(tr, rplustree.BulkLoadConfig{
			PageSize: 128, MemoryBytes: 128 * 16, BufferPages: 2, RecordBytes: 16,
			Fault: inj,
		})
		if err != nil {
			t.Error(err)
			return shardOutcome{}
		}
		_ = bl.InsertBatch(recs)
		_ = bl.Flush()
		bl.Pager().SetFaultPolicy(nil)
		bl.Pager().Scrub()
		if err := bl.Flush(); err != nil {
			t.Errorf("shard %d: flush after recovery: %v", shard, err)
			return shardOutcome{}
		}
		if err := Tree(tr, TreeOptions{}); err != nil {
			t.Errorf("shard %d: %v", shard, err)
			return shardOutcome{}
		}
		return shardOutcome{counts: inj.Counts(), ops: inj.Ops(), records: tr.Len()}
	}

	// Concurrent run: one goroutine per shard, injectors derived up
	// front on the coordinating goroutine.
	injs := make([]*fault.Injector, shards)
	for i := range injs {
		injs[i] = parent.Derive(i)
	}
	concurrent := make([]shardOutcome, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			concurrent[i] = load(i, injs[i])
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Replay: each shard rebuilt serially from the derived seed alone
	// must reproduce the concurrent run exactly.
	injected := 0
	for i := 0; i < shards; i++ {
		replay := load(i, fault.NewInjector(fault.DeriveSeed(parentSeed, i), chaosProfile(parentSeed)))
		if replay.ops != concurrent[i].ops || replay.records != concurrent[i].records ||
			fmt.Sprint(replay.counts) != fmt.Sprint(concurrent[i].counts) {
			t.Fatalf("shard %d: replay %+v diverges from concurrent run %+v", i, replay, concurrent[i])
		}
		injected += replay.ops
	}
	if injected == 0 {
		t.Fatal("shards intercepted no operations")
	}
	// Derived seeds must be distinct from each other and the parent.
	seen := map[int64]bool{parentSeed: true}
	for i := 0; i < shards; i++ {
		s := fault.DeriveSeed(parentSeed, i)
		if seen[s] {
			t.Fatalf("derived seed for shard %d collides", i)
		}
		seen[s] = true
	}
}
