package verify

import (
	"strings"
	"testing"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/dataset"
	"spatialanon/internal/routing"
	"spatialanon/internal/rplustree"
	"spatialanon/internal/sfc"
)

func patientTree(t *testing.T, k, n int, seed int64) *rplustree.Tree {
	t.Helper()
	tr, err := rplustree.New(rplustree.Config{Schema: dataset.PatientsSchema(), BaseK: k})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range dataset.GeneratePatients(n, seed) {
		if err := tr.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestTreeAuditPasses(t *testing.T) {
	tr := patientTree(t, 5, 800, 31)
	if err := Tree(tr, TreeOptions{}); err != nil {
		t.Fatalf("audit of healthy tree: %v", err)
	}
	// Insert-only loads with more than one leaf keep every leaf at or
	// above BaseK, so the occupancy floor must hold too.
	if err := Tree(tr, TreeOptions{MinLeafOccupancy: 5}); err != nil {
		t.Fatalf("occupancy audit of healthy tree: %v", err)
	}
}

func TestTreeOccupancyFloorCatchesUnderfullLeaf(t *testing.T) {
	// Deleting records used to be the way to drain a leaf below k, but
	// the tree now repairs underflow on Delete (rplustree's
	// remove-and-reinsert), so an underfull leaf has to be
	// manufactured directly: build at k=2 and audit against a stricter
	// floor. The structural audit is satisfied either way; only the
	// opt-in floor must object.
	tr := patientTree(t, 2, 800, 32)
	if err := Tree(tr, TreeOptions{}); err != nil {
		t.Fatalf("default audit: %v", err)
	}
	err := Tree(tr, TreeOptions{MinLeafOccupancy: 5})
	if err == nil {
		t.Fatal("occupancy floor missed an underfull leaf")
	}
	if !strings.Contains(err.Error(), "occupancy floor") {
		t.Fatalf("unexpected violation: %v", err)
	}
}

func part(box attr.Box, ids ...int64) anonmodel.Partition {
	p := anonmodel.Partition{Box: box}
	for _, id := range ids {
		p.Records = append(p.Records, attr.Record{ID: id, QI: []float64{float64(id)}})
	}
	return p
}

func box(lo, hi float64) attr.Box { return attr.Box{{Lo: lo, Hi: hi}} }

func TestReleaseAudit(t *testing.T) {
	k2 := anonmodel.KAnonymity{K: 2}
	good := []anonmodel.Partition{part(box(0, 3), 1, 2, 3), part(box(4, 6), 4, 5)}
	if err := Release(good, k2); err != nil {
		t.Fatalf("valid release rejected: %v", err)
	}
	cases := map[string][]anonmodel.Partition{
		"undersized partition":  {part(box(0, 3), 1, 2, 3), part(box(4, 6), 4)},
		"record outside box":    {part(box(0, 3), 1, 2, 3), part(box(40, 60), 4, 5)},
		"duplicate publication": {part(box(0, 3), 1, 2, 3), part(box(0, 6), 3, 4)},
		"empty partition":       {part(box(0, 3), 1, 2, 3), {Box: box(4, 6)}},
	}
	for name, ps := range cases {
		if err := Release(ps, k2); err == nil {
			t.Errorf("%s not flagged", name)
		}
	}
	if err := Release(good, nil); err == nil {
		t.Error("nil constraint accepted")
	}
}

func TestReleasesKBoundness(t *testing.T) {
	rel := func(ps ...anonmodel.Partition) []anonmodel.Partition { return ps }
	b := box(0, 10)
	fine := rel(part(b, 1, 2, 3), part(b, 4, 5, 6))
	coarse := rel(part(b, 1, 2, 3, 4, 5, 6))
	if err := Releases([][]anonmodel.Partition{fine, coarse}, 3); err != nil {
		t.Fatalf("nested releases rejected: %v", err)
	}
	if err := Releases(nil, 3); err != nil {
		t.Fatalf("empty family rejected: %v", err)
	}

	// Misaligned boundaries isolate record 4 in the intersection of
	// fine's second partition and skewed's first — a Lemma 1 violation.
	skewed := rel(part(b, 1, 2, 3, 4), part(b, 5, 6))
	if err := Releases([][]anonmodel.Partition{fine, skewed}, 3); err == nil {
		t.Fatal("intersection cell of 1 record not flagged")
	}
	// Record 6 missing from the second release.
	missing := rel(part(b, 1, 2, 3, 4, 5))
	if err := Releases([][]anonmodel.Partition{fine, missing}, 3); err == nil {
		t.Fatal("missing record not flagged")
	}
	// Record 1 twice within one release.
	dup := rel(part(b, 1, 2, 3), part(b, 1, 4, 5, 6))
	if err := Releases([][]anonmodel.Partition{fine, dup}, 3); err == nil {
		t.Fatal("duplicate within release not flagged")
	}
}

func TestRoutingAudit(t *testing.T) {
	recs := dataset.GeneratePatients(600, 33)
	ps, err := sfc.Anonymize(recs, sfc.Hilbert, anonmodel.KAnonymity{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range []routing.Options{
		{},
		{Curve: sfc.Hilbert, BlockSize: 7},
		{Curve: sfc.ZOrder, BlockSize: 1},
	} {
		ix, err := routing.Build(ps, opt)
		if err != nil {
			t.Fatal(err)
		}
		if err := Routing(ix, ps); err != nil {
			t.Fatalf("audit of valid accelerator (%+v): %v", opt, err)
		}
	}

	// The audit is against the release, not the index's own copy: an
	// index built over a tampered release must be caught when checked
	// against the real one.
	ix, err := routing.Build(ps, routing.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Routing(nil, ps); err == nil {
		t.Error("nil index accepted")
	}
	if err := Routing(ix, ps[:len(ps)-1]); err == nil {
		t.Error("partition count mismatch accepted")
	}
	grown := append([]anonmodel.Partition(nil), ps...)
	grown[3].Records = append(append([]attr.Record(nil), grown[3].Records...), attr.Record{ID: -1, QI: grown[3].Records[0].QI})
	if err := Routing(ix, grown); err == nil {
		t.Error("stale partition size accepted")
	}
	moved := append([]anonmodel.Partition(nil), ps...)
	movedBox := append(attr.Box(nil), moved[5].Box...)
	movedBox[0].Lo -= 10
	moved[5].Box = movedBox
	if err := Routing(ix, moved); err == nil {
		t.Error("stale partition box accepted")
	}

	// Empty release: a valid, empty index.
	empty, err := routing.Build(nil, routing.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Routing(empty, nil); err != nil {
		t.Errorf("audit of empty accelerator: %v", err)
	}
}
