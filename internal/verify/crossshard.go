// Cross-shard Lemma-1 seam audit. Sharding the serving layer by SFC
// key ranges introduces a failure mode none of the single-store
// auditors can see: each shard's release can be individually k-bound
// while the *joint* release — the concatenation a consumer actually
// receives — leaks, because a shard published records that belong to a
// sibling's range (mis-routed writes make shard attribution
// informative), because one record surfaced from two shards at once,
// or because a degraded shard quietly served a stale epoch so the
// joint view mixes generations. CrossShard re-derives the joint
// guarantee from raw structure, trusting neither the coordinator's
// routing nor any shard's own bookkeeping.
package verify

import (
	"errors"
	"fmt"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/sfc"
)

// ErrShardDegraded marks a joint release rejected because one of its
// constituent shard views came from a degraded shard. The coordinator
// must withhold or re-cut such a release, never publish it.
var ErrShardDegraded = errors.New("verify: shard view is degraded")

// ErrShardStale marks a joint release rejected because one shard's
// view lags the writes that shard has acknowledged: colluding a stale
// view with its siblings' fresh views mixes epochs, and Lemma 1 only
// composes across views of one consistent cut.
var ErrShardStale = errors.New("verify: shard view is stale")

// KeyRange is one shard's contiguous, inclusive SFC key interval
// [Lo, Hi]. Inclusive bounds are deliberate: the full key domain tops
// out at ^uint64(0), which a half-open upper bound cannot express.
type KeyRange struct {
	Lo, Hi uint64
}

// String renders the range in hex, the form operators see in logs.
func (r KeyRange) String() string { return fmt.Sprintf("[%#x, %#x]", r.Lo, r.Hi) }

// Contains reports whether key falls inside the range.
func (r KeyRange) Contains(key uint64) bool { return key >= r.Lo && key <= r.Hi }

// ShardView is one shard's contribution to a joint release, paired
// with the metadata the seam audit needs to distrust it.
type ShardView struct {
	// Range is the SFC key interval this shard claims to own.
	Range KeyRange
	// Parts is the shard's released partition set.
	Parts []anonmodel.Partition
	// Seq is the store sequence number the view was cut at.
	Seq int64
	// WantSeq is the highest sequence the shard has acknowledged to
	// writers; Seq < WantSeq means the view predates acked writes.
	WantSeq int64
	// Degraded reports the shard's circuit breaker was open (degraded
	// or recovering) when the view was collected.
	Degraded bool
}

// CrossShard audits a joint release assembled from per-shard views
// against the full range table it was routed by (Lemma 1 across
// shards). It fails unless:
//
//   - table is non-empty and exactly tiles [0, quant.MaxKey()]:
//     contiguous, no gaps, no overlaps;
//   - the views cover every table range exactly once, so the joint
//     release is total — a missing or doubled range is a partial
//     result wearing a joint release's clothes;
//   - no view is degraded (ErrShardDegraded) or stale
//     (ErrShardStale);
//   - every view's partition set independently passes the Release
//     audit under k-anonymity, so each seam-adjacent boundary group
//     holds at least k records;
//   - no record ID appears in two shards' views;
//   - every record's curve key, recomputed through quant and curve,
//     lands inside its publishing shard's range — the seam rule that
//     makes shard attribution harmless: knowing which shard released
//     a record then reveals nothing beyond the record's own QI.
//
// The k parameter is rejected below 2 by the anonmodel.Validate call
// before any partition is inspected; anonylint:k-validated.
func CrossShard(views []ShardView, table []KeyRange, quant *sfc.Quantizer, curve sfc.Curve, k int) error {
	if quant == nil {
		return fmt.Errorf("verify: nil quantizer")
	}
	if err := auditRangeTable(table, quant.MaxKey()); err != nil {
		return err
	}
	// Views must cover the table exactly once each.
	covered := make(map[KeyRange]int, len(table))
	for vi, v := range views {
		pos := -1
		for ti, r := range table {
			if r == v.Range {
				pos = ti
				break
			}
		}
		if pos < 0 {
			return fmt.Errorf("verify: shard view %d claims range %v, not in the table", vi, v.Range)
		}
		if prev, dup := covered[v.Range]; dup {
			return fmt.Errorf("verify: shard views %d and %d both cover range %v", prev, vi, v.Range)
		}
		covered[v.Range] = vi
	}
	if len(covered) != len(table) {
		for _, r := range table {
			if _, ok := covered[r]; !ok {
				return fmt.Errorf("verify: no shard view covers range %v; joint release is partial", r)
			}
		}
	}
	// Health and freshness before structure: a degraded or stale view
	// poisons the joint release no matter how well-formed it looks.
	for vi, v := range views {
		if v.Degraded {
			return fmt.Errorf("%w: shard view %d (range %v)", ErrShardDegraded, vi, v.Range)
		}
		if v.Seq < v.WantSeq {
			return fmt.Errorf("%w: shard view %d (range %v) at seq %d, acked %d", ErrShardStale, vi, v.Range, v.Seq, v.WantSeq)
		}
	}
	constraint := anonmodel.KAnonymity{K: k}
	if err := anonmodel.Validate(constraint); err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	seen := make(map[int64]int)
	var cell []uint32
	for vi, v := range views {
		if err := Release(v.Parts, constraint); err != nil {
			return fmt.Errorf("verify: shard view %d (range %v): %w", vi, v.Range, err)
		}
		for pi, p := range v.Parts {
			for _, r := range p.Records {
				if prev, dup := seen[r.ID]; dup {
					return fmt.Errorf("verify: record %d published by shard views %d and %d", r.ID, prev, vi)
				}
				seen[r.ID] = vi
				var key uint64
				key, cell = quant.KeyInto(curve, r.QI, cell)
				if !v.Range.Contains(key) {
					return fmt.Errorf("verify: record %d (key %#x) in partition %d of shard view %d escapes range %v", r.ID, key, pi, vi, v.Range)
				}
			}
		}
	}
	return nil
}

// auditRangeTable checks that table exactly tiles [0, maxKey]:
// ascending, contiguous, first Lo zero, last Hi maxKey.
func auditRangeTable(table []KeyRange, maxKey uint64) error {
	if len(table) == 0 {
		return fmt.Errorf("verify: empty shard range table")
	}
	if table[0].Lo != 0 {
		return fmt.Errorf("verify: range table starts at %#x, want 0", table[0].Lo)
	}
	for i, r := range table {
		if r.Hi < r.Lo {
			return fmt.Errorf("verify: range table entry %d inverted: %v", i, r)
		}
		if i > 0 && r.Lo != table[i-1].Hi+1 {
			return fmt.Errorf("verify: range table gap or overlap between %v and %v", table[i-1], r)
		}
	}
	if last := table[len(table)-1]; last.Hi != maxKey {
		return fmt.Errorf("verify: range table ends at %#x, key domain ends at %#x", last.Hi, maxKey)
	}
	return nil
}
