package detrng

import "testing"

// TestKnownAnswer pins the generator to the published SplitMix64
// sequence for seed 0, so the streams every experiment replays from
// its seed can never drift silently.
func TestKnownAnswer(t *testing.T) {
	want := []uint64{0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f}
	s := NewSource(0)
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("output %d: got %#x, want %#x", i, got, w)
		}
	}
}

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d diverged: %#x vs %#x", i, x, y)
		}
	}
	if New(42).Uint64() == New(43).Uint64() {
		t.Fatal("distinct seeds produced the same first draw")
	}
}

func TestDeriveSpreadsStreams(t *testing.T) {
	seen := make(map[int64]bool)
	for id := int64(0); id < 1000; id++ {
		child := Derive(7, id)
		if seen[child] {
			t.Fatalf("Derive(7, %d) collides with an earlier id", id)
		}
		seen[child] = true
	}
	if Derive(1, 5) == Derive(2, 5) {
		t.Fatal("distinct parents derived the same child seed")
	}
}

func TestSeedResets(t *testing.T) {
	s := NewSource(9)
	first := s.Uint64()
	s.Uint64()
	s.Seed(9)
	if got := s.Uint64(); got != first {
		t.Fatalf("Seed did not reset the stream: got %#x, want %#x", got, first)
	}
}
