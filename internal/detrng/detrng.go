// Package detrng is the repository's single source of seeded
// deterministic randomness. Everything that draws random numbers —
// data generators, shuffles, reservoir sampling, query workloads —
// takes an explicit seed and obtains its stream here, so that every
// experiment is replayable from its seed alone and no package ever
// reaches for the global math/rand functions (whose state is shared,
// mutable and reseeded by unrelated code).
//
// The generator is SplitMix64 (Steele, Lea & Flood 2014): seeding is
// O(1) — unlike math/rand's default source, whose Seed walks a 607-word
// feedback register — which makes deriving an independent stream per
// record cheap enough that generators can be order-independent: record
// id under seed s always draws from Derive(s, id) no matter which
// records were generated before it.
package detrng

import "math/rand"

// golden is the SplitMix64 gamma 0x9e3779b97f4a7c15 as an int64, used
// by Derive to spread consecutive stream ids across the seed space.
const golden = int64(-7046029254386353131)

// Source implements rand.Source64 over the SplitMix64 generator. Each
// Uint64 advances the state by the golden gamma and mixes it through
// the finalizer.
type Source struct {
	state uint64
}

// NewSource returns a SplitMix64 source seeded with seed.
func NewSource(seed int64) *Source { return &Source{state: uint64(seed)} }

// Uint64 implements rand.Source64.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed implements rand.Source.
func (s *Source) Seed(seed int64) { s.state = uint64(seed) }

// New returns a *rand.Rand over a fresh SplitMix64 stream for seed.
func New(seed int64) *rand.Rand { return rand.New(NewSource(seed)) }

// Derive mixes a parent seed and a stream index into the seed of an
// independent child stream. Children of distinct indices (and of
// distinct parents) start far apart in the SplitMix64 state space, so
// per-record streams do not correlate.
func Derive(parent, id int64) int64 { return parent ^ (id+1)*golden }
