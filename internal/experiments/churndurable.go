package experiments

import (
	"io"
	"os"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/dataset"
	"spatialanon/internal/rplustree"
	"spatialanon/internal/wal"
)

// ExtChurnDurable is the durable variant of ExtChurn: the same
// delete+insert churn, but run through the write-ahead-logged store
// (internal/wal) instead of a bare in-memory tree. After every round
// the store is closed and recovered — as if the process had exited at
// that point — and the row records what the recovery cost: how many
// log-tail operations were replayed on top of the last checkpoint, and
// how many bytes of snapshot and log were read. The knob under test is
// the checkpoint interval: frequent checkpoints keep the replayed tail
// (and so recovery time) short at the price of more checkpoint I/O
// during normal operation.

// ExtChurnDurableRow is one churn round's recovery measurement.
type ExtChurnDurableRow struct {
	Round int
	Live  int
	// Replayed is the committed log-tail length recovery applied on top
	// of the checkpoint snapshot.
	Replayed int
	// SnapshotBytes and LogBytes are the recovery read volume.
	SnapshotBytes int
	LogBytes      int
	// PagerReads counts checkpoint-page reads during recovery.
	PagerReads int64
	// Partitions is the size of the (audited) post-recovery release.
	Partitions int
}

// ExtChurnDurableResult is the whole experiment. Its K echoes the
// already validated Config parameter for rendering;
// anonylint:k-validated (Config.Validate rejects k < 2).
type ExtChurnDurableResult struct {
	K               int
	CheckpointEvery int
	Rows            []ExtChurnDurableRow
}

// ExtChurnDurable churns a durable store for `rounds` rounds of
// `batch` deletes + `batch` inserts, recovering from disk after each
// round. checkpointEvery is the store's automatic checkpoint interval
// in logged operations.
func ExtChurnDurable(cfg Config, rounds, batch, checkpointEvery int) (*ExtChurnDurableResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	const k = 10
	schema := dataset.LandsEndSchema()

	dir, err := os.MkdirTemp("", "spatialanon-churn-durable-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	opts := wal.Options{
		Dir:             dir,
		Tree:            rplustree.Config{Schema: schema, BaseK: cfg.BaseK},
		CheckpointEvery: checkpointEvery,
		// The experiment measures recovery I/O volume, not device sync
		// latency; the byte streams are identical either way.
		NoSync: true,
	}
	st, err := wal.Create(opts)
	if err != nil {
		return nil, err
	}
	defer func() {
		if st != nil {
			st.Close()
		}
	}()

	initial := dataset.GenerateLandsEnd(cfg.Records, cfg.Seed)
	for _, r := range initial {
		if err := st.Insert(r); err != nil {
			return nil, err
		}
	}
	live := append([]attr.Record(nil), initial...)
	fresh := dataset.LandsEndStream(rounds*batch, cfg.Seed+1)
	nextID := int64(10_000_000)

	res := &ExtChurnDurableResult{K: k, CheckpointEvery: checkpointEvery}
	for round := 1; round <= rounds; round++ {
		if batch > len(live) {
			batch = len(live)
		}
		for _, r := range live[:batch] {
			found, err := st.Delete(r.ID, r.QI)
			if err != nil {
				return nil, err
			}
			if !found {
				return nil, errDeleteFailed(r.ID)
			}
		}
		live = live[batch:]
		incoming := fresh.NextBatch(batch)
		for i := range incoming {
			incoming[i].ID = nextID
			nextID++
			if err := st.Insert(incoming[i]); err != nil {
				return nil, err
			}
		}
		live = append(live, incoming...)

		// Simulate a process exit here and recover from disk.
		if err := st.Close(); err != nil {
			return nil, err
		}
		st, err = wal.Open(opts)
		if err != nil {
			return nil, err
		}
		rs := st.RecoveryStats()

		view, err := st.Release(k)
		if err != nil {
			return nil, err
		}
		if err := anonmodel.CheckAnonymity(view, anonmodel.KAnonymity{K: k}); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, ExtChurnDurableRow{
			Round:         round,
			Live:          st.Len(),
			Replayed:      rs.Replayed,
			SnapshotBytes: rs.SnapshotBytes,
			LogBytes:      rs.LogBytes,
			PagerReads:    rs.PagerReads,
			Partitions:    len(view),
		})
	}
	return res, nil
}

// Print renders the experiment as a table.
func (r *ExtChurnDurableResult) Print(w io.Writer) {
	fprintf(w, "Extension: recovery cost under durable churn (k=%d, checkpoint every %d ops)\n",
		r.K, r.CheckpointEvery)
	fprintf(w, "%7s %8s %10s %10s %10s %8s %8s\n",
		"round", "live", "replayed", "snap KiB", "log KiB", "reads", "parts")
	for _, row := range r.Rows {
		fprintf(w, "%7d %8d %10d %10.1f %10.1f %8d %8d\n",
			row.Round, row.Live, row.Replayed,
			float64(row.SnapshotBytes)/1024, float64(row.LogBytes)/1024,
			row.PagerReads, row.Partitions)
	}
}
