package experiments

import (
	"io"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/compact"
	"spatialanon/internal/dataset"
	"spatialanon/internal/quality"
)

// ---------------------------------------------------------------------------
// Figure 10: anonymization quality across k for four systems.

// Fig10Row is one (k, system) quality measurement. Its K echoes the
// already validated Config parameter for rendering;
// anonylint:k-validated (Config.Validate rejects k < 2).
type Fig10Row struct {
	K      int
	System string
	quality.Report
}

// Fig10Result is the whole figure — (a) discernibility, (b) certainty,
// (c) KL divergence are columns of the same rows.
type Fig10Result struct {
	Records int
	Rows    []Fig10Row
}

// Fig10 reproduces Figures 10(a)-(c): quality of the R⁺-tree
// anonymization vs the top-down approach, uncompacted and compacted, at
// every k. The paper's headline shapes: the R⁺-tree wins on all three
// metrics; compaction leaves the top-down DM exactly unchanged while
// closing most of the CM/KL gap.
func Fig10(cfg Config) (*Fig10Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	recs := cfg.landsEnd()
	schema := dataset.LandsEndSchema()
	domain := attr.DomainOf(schema.Dims(), recs)

	rt, err := cfg.newRTree(true)
	if err != nil {
		return nil, err
	}
	if err := rt.Load(recs); err != nil {
		return nil, err
	}

	res := &Fig10Result{Records: len(recs)}
	for _, k := range cfg.Ks {
		rtPs, err := rt.Partitions(k)
		if err != nil {
			return nil, err
		}
		cp := make([]attr.Record, len(recs))
		copy(cp, recs)
		mdPs, err := cfg.mondrian(k).Anonymize(cp)
		if err != nil {
			return nil, err
		}
		mdC := compact.PartitionsP(mdPs, cfg.Workers)
		for _, sys := range []struct {
			name string
			ps   []anonmodel.Partition
		}{
			{"rtree", rtPs},
			{"mondrian", mdPs},
			{"mondrian+compact", mdC},
		} {
			res.Rows = append(res.Rows, Fig10Row{
				K:      k,
				System: sys.name,
				Report: quality.MeasureP(schema, sys.ps, domain, cfg.Workers),
			})
		}
	}
	return res, nil
}

// Print renders the figure as a table.
func (r *Fig10Result) Print(w io.Writer) {
	fprintf(w, "Figure 10: anonymization quality, %d Lands End-like records\n", r.Records)
	fprintf(w, "%6s %-18s %16s %12s %10s %8s\n", "k", "system", "DM", "CM", "KL", "parts")
	for _, row := range r.Rows {
		fprintf(w, "%6d %-18s %16.0f %12.1f %10.4f %8d\n",
			row.K, row.System, row.Discernibility, row.Certainty, row.KLDivergence, row.Partitions)
	}
}

// ---------------------------------------------------------------------------
// Figure 11: incremental vs re-anonymized quality across batches (k=10).

// Fig11Row is one batch's quality comparison.
type Fig11Row struct {
	Batch        int
	TotalRecords int
	Incremental  quality.Report // R⁺-tree maintained incrementally
	Reanonymized quality.Report // Mondrian re-run on the whole prefix
}

// Fig11Result is the whole figure. Its K echoes the already validated
// Config parameter for rendering; anonylint:k-validated
// (Config.Validate rejects k < 2).
type Fig11Result struct {
	K    int
	Rows []Fig11Row
}

// Fig11 reproduces Figure 11: after each incremental batch insert the
// R⁺-tree's published quality is compared to re-anonymizing the prefix
// with the top-down algorithm. The paper's claim: "anonymized data
// quality does not suffer from incremental anonymization".
func Fig11(cfg Config) (*Fig11Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	const k = 10
	schema := dataset.LandsEndSchema()
	recs := dataset.GenerateLandsEnd(cfg.BatchSize*cfg.Batches, cfg.Seed)

	rt, err := cfg.newRTree(true)
	if err != nil {
		return nil, err
	}
	res := &Fig11Result{K: k}
	for b := 0; b < cfg.Batches; b++ {
		if err := rt.Load(recs[b*cfg.BatchSize : (b+1)*cfg.BatchSize]); err != nil {
			return nil, err
		}
		n := (b + 1) * cfg.BatchSize
		prefix := recs[:n]
		domain := attr.DomainOf(schema.Dims(), prefix)

		rtPs, err := rt.Partitions(k)
		if err != nil {
			return nil, err
		}
		cp := make([]attr.Record, n)
		copy(cp, prefix)
		mdPs, err := cfg.mondrian(k).Anonymize(cp)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig11Row{
			Batch:        b + 1,
			TotalRecords: n,
			Incremental:  quality.MeasureP(schema, rtPs, domain, cfg.Workers),
			Reanonymized: quality.MeasureP(schema, mdPs, domain, cfg.Workers),
		})
	}
	return res, nil
}

// Print renders the figure as a table.
func (r *Fig11Result) Print(w io.Writer) {
	fprintf(w, "Figure 11: incremental (R+-tree) vs re-anonymized (top-down) quality, k=%d\n", r.K)
	fprintf(w, "%6s %9s | %14s %10s %8s | %14s %10s %8s\n",
		"batch", "records", "inc DM", "inc CM", "inc KL", "re DM", "re CM", "re KL")
	for _, row := range r.Rows {
		fprintf(w, "%6d %9d | %14.0f %10.1f %8.4f | %14.0f %10.1f %8.4f\n",
			row.Batch, row.TotalRecords,
			row.Incremental.Discernibility, row.Incremental.Certainty, row.Incremental.KLDivergence,
			row.Reanonymized.Discernibility, row.Reanonymized.Certainty, row.Reanonymized.KLDivergence)
	}
}
