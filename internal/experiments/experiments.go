// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 5). Each FigNN function sets up the corresponding
// workload, runs the systems under comparison, and returns structured
// rows; each result type knows how to print itself in the shape of the
// paper's plot. cmd/experiments exposes them on the command line and
// the repository-root benchmarks time their heavy parts.
//
// Scale note: the paper ran the Lands End data set (4.59M records) and
// a 100M-record synthetic set on 2007 hardware. Defaults here are
// scaled down so the full suite runs in CI minutes; every experiment
// accepts the paper's full sizes through Config. What is reproduced is
// the *shape* of each result — who wins, by what factor, where the
// curves bend — as DESIGN.md specifies.
package experiments

import (
	"fmt"
	"io"
	"time"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/core"
	"spatialanon/internal/dataset"
	"spatialanon/internal/rplustree"
)

// Config parameterizes the experiment suite.
type Config struct {
	// Records is the Lands End-like data set size (the paper: 4591581).
	Records int
	// Ks are the anonymity levels of Figures 7(a), 10 and 12(a)
	// (the paper: 5, 10, 25, 50, 100, 250, 500, 1000).
	Ks []int
	// BaseK is the R⁺-tree build granularity (the paper: 5).
	BaseK int
	// BatchSize is the incremental batch size of Figures 7(b) and 11
	// (the paper: 500000).
	BatchSize int
	// Batches bounds how many incremental batches run.
	Batches int
	// Queries is the workload size of Figure 12 (the paper: 1000).
	Queries int
	// Seed makes everything reproducible.
	Seed int64
	// Workers bounds the worker goroutines every anonymizer and
	// evaluator in the suite may use: 0 uses all available cores, 1
	// runs serially. Results are identical for every setting — only
	// wall-clock time changes — so timing comparisons across Workers
	// values measure the parallel execution layer itself.
	Workers int
}

// Defaults returns a configuration that finishes the whole suite in CI
// minutes while preserving every shape. The paper's exact values are in
// the comments on each field of Config.
func Defaults() Config {
	return Config{
		Records:   30000,
		Ks:        []int{5, 10, 25, 50, 100, 250, 500, 1000},
		BaseK:     5,
		BatchSize: 3000,
		Batches:   8,
		Queries:   400,
		Seed:      1,
	}
}

// Validate rejects anonymity parameters that provide no anonymity:
// after defaulting, BaseK and every published granularity in Ks must
// be >= 2, and derived granularities cannot fall below the build
// granularity. Every figure runner calls it before generating data.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.BaseK < 2 {
		return fmt.Errorf("experiments: BaseK %d provides no anonymity; need >= 2", c.BaseK)
	}
	for _, k := range c.Ks {
		if k < 2 {
			return fmt.Errorf("experiments: granularity k=%d provides no anonymity; need >= 2", k)
		}
		if k < c.BaseK {
			return fmt.Errorf("experiments: granularity k=%d below build BaseK %d", k, c.BaseK)
		}
	}
	return nil
}

func (c Config) withDefaults() Config {
	d := Defaults()
	if c.Records == 0 {
		c.Records = d.Records
	}
	if len(c.Ks) == 0 {
		c.Ks = d.Ks
	}
	if c.BaseK == 0 {
		c.BaseK = d.BaseK
	}
	if c.BatchSize == 0 {
		c.BatchSize = d.BatchSize
	}
	if c.Batches == 0 {
		c.Batches = d.Batches
	}
	if c.Queries == 0 {
		c.Queries = d.Queries
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	return c
}

// landsEnd materializes the experiment's Lands End-like table.
func (c Config) landsEnd() []attr.Record {
	return dataset.GenerateLandsEnd(c.Records, c.Seed)
}

// newRTree builds the standard R⁺-tree anonymizer for the experiments:
// base-k index, default (min-margin) splits, tuple loading unless bulk
// is requested.
func (c Config) newRTree(bulk bool) (*core.RTreeAnonymizer, error) {
	cfg := core.RTreeConfig{
		Schema:      dataset.LandsEndSchema(),
		BaseK:       c.BaseK,
		Parallelism: c.Workers,
	}
	if bulk {
		cfg.BulkLoad = &rplustree.BulkLoadConfig{RecordBytes: 32}
	}
	return core.NewRTreeAnonymizer(cfg)
}

// mondrian builds the top-down baseline at anonymity k. Callers pass
// granularities from a validated Config; anonylint:k-validated
// (Config.Validate rejects k < 2, and mondrian.Anonymize re-validates
// the constraint).
func (c Config) mondrian(k int) *core.MondrianAnonymizer {
	return &core.MondrianAnonymizer{
		Schema:      dataset.LandsEndSchema(),
		Constraint:  anonmodel.KAnonymity{K: k},
		Parallelism: c.Workers,
	}
}

// timeIt measures one function call.
func timeIt(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), err
}

// fprintf is fmt.Fprintf with the error ignored — the printers write to
// in-memory or stdout writers where errors are not actionable.
func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}
