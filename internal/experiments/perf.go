package experiments

import (
	"fmt"
	"io"
	"time"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/compact"
	"spatialanon/internal/core"
	"spatialanon/internal/dataset"
	"spatialanon/internal/mondrian"
	"spatialanon/internal/rplustree"
)

// ---------------------------------------------------------------------------
// Figure 7(a): bulk anonymization times, R⁺-tree vs top-down, across k.

// Fig7aRow is one k's measurement. Its K echoes the already validated
// Config parameter for rendering; anonylint:k-validated
// (Config.Validate rejects k < 2).
type Fig7aRow struct {
	K        int
	RTree    time.Duration // base-k build (amortized) + leaf scan at k
	TopDown  time.Duration // full Mondrian run at k
	Speedup  float64
	RTreeCnt int // partitions produced
	TopCnt   int
}

// Fig7aResult is the whole figure.
type Fig7aResult struct {
	Records   int
	BuildTime time.Duration // one-time base-k index build
	Rows      []Fig7aRow
}

// Fig7a reproduces Figure 7(a): the R⁺-tree is built once at base k and
// every granularity is derived by a leaf scan, so its cost is flat in
// k; Mondrian re-runs per k and gets cheaper as k grows.
func Fig7a(cfg Config) (*Fig7aResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	recs := cfg.landsEnd()

	rt, err := cfg.newRTree(true)
	if err != nil {
		return nil, err
	}
	build, err := timeIt(func() error { return rt.Load(recs) })
	if err != nil {
		return nil, err
	}

	res := &Fig7aResult{Records: len(recs), BuildTime: build}
	for _, k := range cfg.Ks {
		var ps []anonmodel.Partition
		scan, err := timeIt(func() error {
			var e error
			ps, e = rt.Partitions(k)
			return e
		})
		if err != nil {
			return nil, err
		}
		rtreeCnt := len(ps)

		cp := make([]attr.Record, len(recs))
		copy(cp, recs)
		var mp []anonmodel.Partition
		td, err := timeIt(func() error {
			var e error
			mp, e = cfg.mondrian(k).Anonymize(cp)
			return e
		})
		if err != nil {
			return nil, err
		}
		row := Fig7aRow{
			K:        k,
			RTree:    build + scan,
			TopDown:  td,
			RTreeCnt: rtreeCnt,
			TopCnt:   len(mp),
		}
		if row.RTree > 0 {
			row.Speedup = float64(row.TopDown) / float64(row.RTree)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Print renders the figure as a table.
func (r *Fig7aResult) Print(w io.Writer) {
	fprintf(w, "Figure 7(a): bulk anonymization time, %d Lands End-like records\n", r.Records)
	fprintf(w, "(R+-tree = one base-k buffer-tree build %v + per-k leaf scan)\n", r.BuildTime.Round(time.Millisecond))
	fprintf(w, "%8s %14s %14s %9s\n", "k", "R+-tree", "top-down", "speedup")
	for _, row := range r.Rows {
		fprintf(w, "%8d %14v %14v %8.1fx\n",
			row.K, row.RTree.Round(time.Millisecond), row.TopDown.Round(time.Millisecond), row.Speedup)
	}
}

// ---------------------------------------------------------------------------
// Figure 7(b): incremental anonymization time per batch (k = 10).

// Fig7bRow is one batch's measurement.
type Fig7bRow struct {
	Batch        int
	TotalRecords int
	Incremental  time.Duration // insert batch into the live index + rescan
	Reanonymize  time.Duration // what a non-incremental algorithm must do:
	// re-anonymize the whole prefix with Mondrian
}

// Fig7bResult is the whole figure. Its K echoes the already validated
// Config parameter for rendering; anonylint:k-validated
// (Config.Validate rejects k < 2).
type Fig7bResult struct {
	K    int
	Rows []Fig7bRow
}

// Fig7b reproduces Figure 7(b): batches of records are inserted into the
// live index; the comparison column re-anonymizes the entire prefix with
// the top-down algorithm, which is its only option ("since a top-down
// approach is not incremental, it would have to re-anonymize the entire
// data set on each batch insert").
func Fig7b(cfg Config) (*Fig7bResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	const k = 10
	recs := dataset.GenerateLandsEnd(cfg.BatchSize*cfg.Batches, cfg.Seed)

	rt, err := cfg.newRTree(true)
	if err != nil {
		return nil, err
	}
	res := &Fig7bResult{K: k}
	for b := 0; b < cfg.Batches; b++ {
		batch := recs[b*cfg.BatchSize : (b+1)*cfg.BatchSize]
		inc, err := timeIt(func() error {
			if e := rt.Load(batch); e != nil {
				return e
			}
			_, e := rt.Partitions(k)
			return e
		})
		if err != nil {
			return nil, err
		}
		prefix := make([]attr.Record, (b+1)*cfg.BatchSize)
		copy(prefix, recs[:len(prefix)])
		re, err := timeIt(func() error {
			_, e := cfg.mondrian(k).Anonymize(prefix)
			return e
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig7bRow{
			Batch:        b + 1,
			TotalRecords: (b + 1) * cfg.BatchSize,
			Incremental:  inc,
			Reanonymize:  re,
		})
	}
	return res, nil
}

// Print renders the figure as a table.
func (r *Fig7bResult) Print(w io.Writer) {
	fprintf(w, "Figure 7(b): incremental anonymization time per batch (k=%d)\n", r.K)
	fprintf(w, "%7s %10s %14s %18s\n", "batch", "records", "incremental", "re-anonymize all")
	for _, row := range r.Rows {
		fprintf(w, "%7d %10d %14v %18v\n",
			row.Batch, row.TotalRecords, row.Incremental.Round(time.Millisecond), row.Reanonymize.Round(time.Millisecond))
	}
}

// ---------------------------------------------------------------------------
// Figure 8(a): elapsed time vs data set size; 8(b): I/O vs memory.

// Fig8aRow is one data set size's measurement.
type Fig8aRow struct {
	Records int
	Elapsed time.Duration
	IOs     int64
}

// Fig8aResult is the whole figure.
type Fig8aResult struct {
	MemoryBytes int
	Rows        []Fig8aRow
}

// Fig8a reproduces Figure 8(a): buffer-tree bulk anonymization of the
// synthetic (Agrawal) data set at increasing sizes under a fixed memory
// budget. Sizes are multiples of cfg.Records; the paper swept 1M→100M
// under 256 MB.
func Fig8a(cfg Config, sizes []int, memoryBytes int) (*Fig8aResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if memoryBytes == 0 {
		memoryBytes = 4 << 20
	}
	res := &Fig8aResult{MemoryBytes: memoryBytes}
	for _, n := range sizes {
		rt, err := core.NewRTreeAnonymizer(core.RTreeConfig{
			Schema: dataset.AgrawalSchema(),
			BaseK:  cfg.BaseK,
			BulkLoad: &rplustree.BulkLoadConfig{
				RecordBytes: 36,
				MemoryBytes: memoryBytes,
			},
		})
		if err != nil {
			return nil, err
		}
		s := dataset.AgrawalStream(n, cfg.Seed)
		elapsed, err := timeIt(func() error {
			for {
				batch := s.NextBatch(10000)
				if len(batch) == 0 {
					return rt.Sync()
				}
				if e := rt.LoadBuffered(batch); e != nil {
					return e
				}
			}
		})
		if err != nil {
			return nil, err
		}
		if _, err := rt.Partitions(0); err != nil {
			return nil, err
		}
		reads, writes := rt.IOStats()
		res.Rows = append(res.Rows, Fig8aRow{Records: n, Elapsed: elapsed, IOs: reads + writes})
	}
	return res, nil
}

// Print renders the figure as a table.
func (r *Fig8aResult) Print(w io.Writer) {
	fprintf(w, "Figure 8(a): buffer-tree anonymization scaling (memory %d MB)\n", r.MemoryBytes>>20)
	fprintf(w, "%12s %14s %12s\n", "records", "elapsed", "I/Os")
	for _, row := range r.Rows {
		fprintf(w, "%12d %14v %12d\n", row.Records, row.Elapsed.Round(time.Millisecond), row.IOs)
	}
}

// Fig8bRow is one memory budget's measurement.
type Fig8bRow struct {
	MemoryBytes int
	IOs         int64
}

// Fig8bResult is the whole figure.
type Fig8bResult struct {
	Records int
	Rows    []Fig8bRow
}

// Fig8b reproduces Figure 8(b): the number of explicit I/O operations
// performed while bulk anonymizing a fixed synthetic data set, as the
// memory allotted to the process shrinks. The paper's headline: halving
// memory increases I/O by less than 2x.
func Fig8b(cfg Config, records int, memories []int) (*Fig8bResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &Fig8bResult{Records: records}
	for _, mem := range memories {
		rt, err := core.NewRTreeAnonymizer(core.RTreeConfig{
			Schema: dataset.AgrawalSchema(),
			BaseK:  cfg.BaseK,
			BulkLoad: &rplustree.BulkLoadConfig{
				RecordBytes: 36,
				MemoryBytes: mem,
			},
		})
		if err != nil {
			return nil, err
		}
		s := dataset.AgrawalStream(records, cfg.Seed)
		for {
			batch := s.NextBatch(10000)
			if len(batch) == 0 {
				break
			}
			if err := rt.LoadBuffered(batch); err != nil {
				return nil, err
			}
		}
		if err := rt.Sync(); err != nil {
			return nil, err
		}
		reads, writes := rt.IOStats()
		res.Rows = append(res.Rows, Fig8bRow{MemoryBytes: mem, IOs: reads + writes})
	}
	return res, nil
}

// Print renders the figure as a table.
func (r *Fig8bResult) Print(w io.Writer) {
	fprintf(w, "Figure 8(b): explicit I/O vs memory budget (%d records)\n", r.Records)
	fprintf(w, "%14s %12s %18s\n", "memory", "I/Os", "vs next larger")
	for i, row := range r.Rows {
		ratio := ""
		if i > 0 && r.Rows[i-1].IOs > 0 {
			ratio = fmt.Sprintf("%.2fx", float64(row.IOs)/float64(r.Rows[i-1].IOs))
		}
		fprintf(w, "%12dKB %12d %18s\n", row.MemoryBytes>>10, row.IOs, ratio)
	}
}

// ---------------------------------------------------------------------------
// Figure 9: compaction cost relative to anonymization cost.

// Fig9Row is one sample size's measurement.
type Fig9Row struct {
	Records    int
	Anonymize  time.Duration
	Compaction time.Duration
	Percent    float64
}

// Fig9Result is the whole figure. Its K echoes the already validated
// Config parameter for rendering; anonylint:k-validated
// (Config.Validate rejects k < 2).
type Fig9Result struct {
	K    int
	Rows []Fig9Row
}

// Fig9 reproduces Figure 9: run the top-down algorithm on samples of
// increasing size, then compact its output as a post-processing step and
// report compaction time as a percentage of total anonymization time.
func Fig9(cfg Config, sizes []int) (*Fig9Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	const k = 10
	res := &Fig9Result{K: k}
	for _, n := range sizes {
		recs := dataset.GenerateLandsEnd(n, cfg.Seed)
		var ps []anonmodel.Partition
		anon, err := timeIt(func() error {
			var e error
			ps, e = mondrian.Anonymize(dataset.LandsEndSchema(), recs, mondrian.Options{
				Constraint: anonmodel.KAnonymity{K: k},
			})
			return e
		})
		if err != nil {
			return nil, err
		}
		comp, err := timeIt(func() error {
			compact.PartitionsP(ps, cfg.Workers)
			return nil
		})
		if err != nil {
			return nil, err
		}
		row := Fig9Row{Records: n, Anonymize: anon, Compaction: comp}
		if total := anon + comp; total > 0 {
			row.Percent = 100 * float64(comp) / float64(total)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Print renders the figure as a table.
func (r *Fig9Result) Print(w io.Writer) {
	fprintf(w, "Figure 9: compaction cost as %% of total anonymization time (k=%d)\n", r.K)
	fprintf(w, "%10s %14s %14s %10s\n", "records", "anonymize", "compaction", "percent")
	for _, row := range r.Rows {
		fprintf(w, "%10d %14v %14v %9.2f%%\n",
			row.Records, row.Anonymize.Round(time.Millisecond), row.Compaction.Round(time.Millisecond), row.Percent)
	}
}
