package experiments

import (
	"io"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/dataset"
	"spatialanon/internal/quality"
)

// ExtChurn is an extension experiment beyond the paper's evaluation:
// Section 2.2 argues the index supports "insertions, deletions and
// updates", but Figures 7(b)/11 only exercise insert-only growth. This
// experiment subjects the live index to sustained churn — every round
// deletes a batch of old records and inserts a batch of new ones — and
// tracks the published view's quality and validity. The question it
// answers: does the anonymization *degrade* under turnover (MBRs only
// ever grew under inserts; deletions must tighten them), or does
// quality stay at bulk-build levels?

// ExtChurnRow is one churn round's measurement.
type ExtChurnRow struct {
	Round      int
	Live       int
	Partitions int
	Certainty  float64
	// RebuildCertainty is the certainty of a fresh bulk build over the
	// same live set — the "no-churn" reference.
	RebuildCertainty float64
}

// ExtChurnResult is the whole experiment. Its K echoes the already
// validated Config parameter for rendering; anonylint:k-validated
// (Config.Validate rejects k < 2).
type ExtChurnResult struct {
	K    int
	Rows []ExtChurnRow
}

// ExtChurn runs `rounds` churn rounds of `batch` deletes + `batch`
// inserts over an initial population of cfg.Records.
func ExtChurn(cfg Config, rounds, batch int) (*ExtChurnResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	const k = 10
	schema := dataset.LandsEndSchema()

	rt, err := cfg.newRTree(false)
	if err != nil {
		return nil, err
	}
	initial := dataset.GenerateLandsEnd(cfg.Records, cfg.Seed)
	if err := rt.Load(initial); err != nil {
		return nil, err
	}
	live := append([]attr.Record(nil), initial...)
	fresh := dataset.LandsEndStream(rounds*batch, cfg.Seed+1)
	nextID := int64(10_000_000)

	res := &ExtChurnResult{K: k}
	for round := 1; round <= rounds; round++ {
		// Delete the oldest batch...
		if batch > len(live) {
			batch = len(live)
		}
		for _, r := range live[:batch] {
			found, err := rt.Delete(r.ID, r.QI)
			if err != nil {
				return nil, err
			}
			if !found {
				return nil, errDeleteFailed(r.ID)
			}
		}
		live = live[batch:]
		// ...and insert a fresh one.
		incoming := fresh.NextBatch(batch)
		for i := range incoming {
			incoming[i].ID = nextID
			nextID++
			if err := rt.Insert(incoming[i]); err != nil {
				return nil, err
			}
		}
		live = append(live, incoming...)

		view, err := rt.Partitions(k)
		if err != nil {
			return nil, err
		}
		if err := anonmodel.CheckAnonymity(view, anonmodel.KAnonymity{K: k}); err != nil {
			return nil, err
		}
		domain := attr.DomainOf(schema.Dims(), live)

		// No-churn reference: bulk-build the same live set.
		ref, err := cfg.newRTree(false)
		if err != nil {
			return nil, err
		}
		cp := make([]attr.Record, len(live))
		copy(cp, live)
		if err := ref.Load(cp); err != nil {
			return nil, err
		}
		refView, err := ref.Partitions(k)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, ExtChurnRow{
			Round:            round,
			Live:             len(live),
			Partitions:       len(view),
			Certainty:        quality.Certainty(schema, view, domain),
			RebuildCertainty: quality.Certainty(schema, refView, domain),
		})
	}
	return res, nil
}

type errDeleteFailed int64

func (e errDeleteFailed) Error() string { return "experiments: delete of live record failed" }

// Print renders the experiment as a table.
func (r *ExtChurnResult) Print(w io.Writer) {
	fprintf(w, "Extension: quality under churn (delete+insert rounds, k=%d)\n", r.K)
	fprintf(w, "%7s %8s %10s %12s %14s %8s\n", "round", "live", "parts", "churned CM", "rebuilt CM", "ratio")
	for _, row := range r.Rows {
		ratio := 0.0
		if row.RebuildCertainty > 0 {
			ratio = row.Certainty / row.RebuildCertainty
		}
		fprintf(w, "%7d %8d %10d %12.1f %14.1f %7.2fx\n",
			row.Round, row.Live, row.Partitions, row.Certainty, row.RebuildCertainty, ratio)
	}
}
