package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// testCfg is small enough for unit tests while keeping every shape.
func testCfg() Config {
	return Config{
		Records:   4000,
		Ks:        []int{5, 10, 25, 50},
		BaseK:     5,
		BatchSize: 800,
		Batches:   4,
		Queries:   120,
		Seed:      7,
	}
}

func TestFig7aShape(t *testing.T) {
	res, err := Fig7a(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for i, row := range res.Rows {
		if row.RTree <= 0 || row.TopDown <= 0 {
			t.Fatalf("row %d has non-positive times: %+v", i, row)
		}
		if row.RTreeCnt == 0 || row.TopCnt == 0 {
			t.Fatalf("row %d produced no partitions", i)
		}
		// Larger k -> fewer partitions for both systems.
		if i > 0 && row.RTreeCnt > res.Rows[i-1].RTreeCnt {
			t.Fatalf("rtree partitions grew with k: %+v", res.Rows)
		}
	}
	// The R+-tree cost is one build + cheap scans: the spread across k
	// must be small relative to the build (flat curve in Figure 7(a)).
	min, max := res.Rows[0].RTree, res.Rows[0].RTree
	for _, row := range res.Rows {
		if row.RTree < min {
			min = row.RTree
		}
		if row.RTree > max {
			max = row.RTree
		}
	}
	if float64(max) > 3*float64(min) {
		t.Fatalf("R+-tree time not flat in k: min %v max %v", min, max)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 7(a)") {
		t.Fatal("printer output wrong")
	}
}

func TestFig7bShape(t *testing.T) {
	res, err := Fig7b(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	last := res.Rows[len(res.Rows)-1]
	if last.TotalRecords != 3200 {
		t.Fatalf("final total %d", last.TotalRecords)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 7(b)") {
		t.Fatal("printer output wrong")
	}
}

func TestFig8aShape(t *testing.T) {
	res, err := Fig8a(testCfg(), []int{2000, 4000, 8000}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Records <= res.Rows[i-1].Records {
			t.Fatal("rows out of order")
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 8(a)") {
		t.Fatal("printer output wrong")
	}
}

func TestFig8bShape(t *testing.T) {
	// Memory sweep from roomy to tight: I/O must not decrease as memory
	// shrinks, and halving memory must less-than-double I/O (the
	// paper's headline observation).
	memories := []int{1 << 22, 1 << 21, 1 << 20, 1 << 19}
	res, err := Fig8b(testCfg(), 20000, memories)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Rows); i++ {
		prev, cur := res.Rows[i-1].IOs, res.Rows[i].IOs
		if cur < prev {
			t.Fatalf("I/O fell when memory shrank: %d -> %d", prev, cur)
		}
		if prev > 0 && float64(cur) > 2.5*float64(prev) {
			t.Fatalf("halving memory more than ~doubled I/O: %d -> %d", prev, cur)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 8(b)") {
		t.Fatal("printer output wrong")
	}
}

func TestFig9Shape(t *testing.T) {
	res, err := Fig9(testCfg(), []int{2000, 4000})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Percent < 0 || row.Percent > 50 {
			t.Fatalf("compaction %% out of expected band: %+v", row)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 9") {
		t.Fatal("printer output wrong")
	}
}

func TestFig10Shapes(t *testing.T) {
	res, err := Fig10(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	byK := map[int]map[string]Fig10Row{}
	for _, row := range res.Rows {
		if byK[row.K] == nil {
			byK[row.K] = map[string]Fig10Row{}
		}
		byK[row.K][row.System] = row
	}
	for k, systems := range byK {
		rt, md, mc := systems["rtree"], systems["mondrian"], systems["mondrian+compact"]
		// Figure 10(a): compaction leaves DM exactly unchanged.
		if md.Discernibility != mc.Discernibility {
			t.Fatalf("k=%d: compaction changed DM", k)
		}
		// Figure 10(b): R+-tree certainty beats uncompacted Mondrian;
		// compaction closes most of the gap.
		if rt.Certainty >= md.Certainty {
			t.Fatalf("k=%d: rtree CM %v not better than mondrian %v", k, rt.Certainty, md.Certainty)
		}
		if mc.Certainty > md.Certainty {
			t.Fatalf("k=%d: compaction worsened CM", k)
		}
		// Figure 10(c): same ordering for KL.
		if mc.KLDivergence > md.KLDivergence+1e-9 {
			t.Fatalf("k=%d: compaction worsened KL", k)
		}
		if rt.KLDivergence > md.KLDivergence+1e-9 {
			t.Fatalf("k=%d: rtree KL %v worse than mondrian %v", k, rt.KLDivergence, md.KLDivergence)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 10") {
		t.Fatal("printer output wrong")
	}
}

func TestFig11Shape(t *testing.T) {
	res, err := Fig11(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		// The paper: incremental quality comparable to re-anonymized —
		// in fact better on their data. Allow a generous band.
		if row.Incremental.Certainty > 1.5*row.Reanonymized.Certainty {
			t.Fatalf("batch %d: incremental CM %v far worse than re-anonymized %v",
				row.Batch, row.Incremental.Certainty, row.Reanonymized.Certainty)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 11") {
		t.Fatal("printer output wrong")
	}
}

func TestFig12aShape(t *testing.T) {
	// Leaf-scan unions get ragged when k approaches n/(leaves per
	// partition x dims); use a larger data set than the other shape
	// tests so the high-k rows behave as they do at paper scale.
	cfg := testCfg()
	cfg.Records = 10000
	res, err := Fig12a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byK := map[int]map[string]float64{}
	for _, row := range res.Rows {
		if byK[row.K] == nil {
			byK[row.K] = map[string]float64{}
		}
		byK[row.K][row.System] = row.Mean
	}
	for k, m := range byK {
		// Figure 12(a) ordering: compaction never hurts, and the R+-tree
		// tracks or beats uncompacted Mondrian. At this test's tiny scale
		// (4k records in 8 dimensions) high-k leaf-scan unions can be
		// slightly ragged, so the cross-system comparison gets 15% slack;
		// at the base k the R+-tree partitions are raw leaf MBRs and must
		// win outright.
		if m["mondrian+compact"] > m["mondrian"]+1e-9 {
			t.Fatalf("k=%d: compaction increased error", k)
		}
		if m["rtree"] > 1.3*m["mondrian"] {
			t.Fatalf("k=%d: rtree error %v far worse than mondrian %v", k, m["rtree"], m["mondrian"])
		}
	}
	if byK[5]["rtree"] >= byK[5]["mondrian"] {
		t.Fatalf("base k: rtree error %v not better than mondrian %v", byK[5]["rtree"], byK[5]["mondrian"])
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 12(a)") {
		t.Fatal("printer output wrong")
	}
}

func TestFig12bShape(t *testing.T) {
	res, err := Fig12b(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Per system: the lowest-selectivity non-empty bucket has mean error
	// >= the highest-selectivity non-empty one (Figure 12(b)).
	bySystem := map[string][]Fig12bRow{}
	for _, row := range res.Rows {
		bySystem[row.System] = append(bySystem[row.System], row)
	}
	for sys, rows := range bySystem {
		var first, last *Fig12bRow
		for i := range rows {
			if rows[i].Queries == 0 {
				continue
			}
			if first == nil {
				first = &rows[i]
			}
			last = &rows[i]
		}
		if first == nil || first == last {
			continue
		}
		if last.Bucket.Mean > first.Bucket.Mean {
			t.Fatalf("%s: error grew with selectivity: %+v", sys, rows)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 12(b)") {
		t.Fatal("printer output wrong")
	}
}

func TestFig12cShape(t *testing.T) {
	res, err := Fig12c(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		// The biased tree must win on its own workload (Figure 12(c)).
		if row.Biased > row.Unbiased+1e-9 {
			t.Fatalf("k=%d: biased error %v worse than unbiased %v", row.K, row.Biased, row.Unbiased)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 12(c)") {
		t.Fatal("printer output wrong")
	}
}

func TestFig12dShape(t *testing.T) {
	res, err := Fig12d(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(selectivityBounds)+1 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 12(d)") {
		t.Fatal("printer output wrong")
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c = c.withDefaults()
	d := Defaults()
	if c.Records != d.Records || c.BaseK != d.BaseK || len(c.Ks) != len(d.Ks) {
		t.Fatalf("defaults not applied: %+v", c)
	}
	// Partial configs keep their explicit values.
	c2 := Config{Records: 999}.withDefaults()
	if c2.Records != 999 || c2.BaseK != d.BaseK {
		t.Fatalf("partial defaults wrong: %+v", c2)
	}
}

func TestExtChurnShape(t *testing.T) {
	cfg := testCfg()
	cfg.Records = 3000
	res, err := ExtChurn(cfg, 5, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Live != 3000 {
			t.Fatalf("round %d live = %d", row.Round, row.Live)
		}
		// The churned index may be somewhat looser than a fresh build,
		// but it must not degrade unboundedly.
		if row.RebuildCertainty > 0 && row.Certainty > 2*row.RebuildCertainty {
			t.Fatalf("round %d: churned CM %v vs rebuilt %v", row.Round, row.Certainty, row.RebuildCertainty)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "churn") {
		t.Fatal("printer output wrong")
	}
}
