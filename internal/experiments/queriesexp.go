package experiments

import (
	"io"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/compact"
	"spatialanon/internal/core"
	"spatialanon/internal/dataset"
	"spatialanon/internal/query"
	"spatialanon/internal/rplustree"
)

// selectivityBounds are the bucket edges shared by Figures 12(b)/(d).
var selectivityBounds = []float64{0.001, 0.01, 0.05, 0.25}

// ---------------------------------------------------------------------------
// Figure 12(a): mean query error vs k; 12(b): vs selectivity.

// Fig12aRow is one (k, system) error measurement. Its K echoes the
// already validated Config parameter for rendering;
// anonylint:k-validated (Config.Validate rejects k < 2).
type Fig12aRow struct {
	K      int
	System string
	Mean   float64
}

// Fig12aResult is the whole figure.
type Fig12aResult struct {
	Records int
	Queries int
	Rows    []Fig12aRow
}

// Fig12a reproduces Figure 12(a): 1000 random 8-dimensional COUNT range
// queries (bounds drawn from two random records each) evaluated on
// R⁺-tree-anonymized, Mondrian-uncompacted and Mondrian-compacted data.
func Fig12a(cfg Config) (*Fig12aResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	recs := cfg.landsEnd()
	queries := query.FullRangeWorkload(recs, cfg.Queries, cfg.Seed+100)

	rt, err := cfg.newRTree(true)
	if err != nil {
		return nil, err
	}
	if err := rt.Load(recs); err != nil {
		return nil, err
	}

	res := &Fig12aResult{Records: len(recs), Queries: len(queries)}
	for _, k := range cfg.Ks {
		systems, err := cfg.threeSystems(rt, recs, k)
		if err != nil {
			return nil, err
		}
		for _, sys := range systems {
			results, err := query.EvaluateP(sys.ps, recs, queries, cfg.Workers)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, Fig12aRow{K: k, System: sys.name, Mean: query.MeanError(results)})
		}
	}
	return res, nil
}

// threeSystems materializes the three Figure 12(a) systems at k.
func (c Config) threeSystems(rt *core.RTreeAnonymizer, recs []attr.Record, k int) ([]namedPartitions, error) {
	rtPs, err := rt.Partitions(k)
	if err != nil {
		return nil, err
	}
	cp := make([]attr.Record, len(recs))
	copy(cp, recs)
	mdPs, err := c.mondrian(k).Anonymize(cp)
	if err != nil {
		return nil, err
	}
	return []namedPartitions{
		{"rtree", rtPs},
		{"mondrian", mdPs},
		{"mondrian+compact", compact.PartitionsP(mdPs, c.Workers)},
	}, nil
}

type namedPartitions struct {
	name string
	ps   []anonmodel.Partition
}

// Print renders the figure as a table.
func (r *Fig12aResult) Print(w io.Writer) {
	fprintf(w, "Figure 12(a): mean normalized COUNT error, %d queries on %d records\n", r.Queries, r.Records)
	fprintf(w, "%6s %-18s %12s\n", "k", "system", "mean error")
	for _, row := range r.Rows {
		fprintf(w, "%6d %-18s %12.4f\n", row.K, row.System, row.Mean)
	}
}

// Fig12bRow is one (system, selectivity bucket) error measurement.
type Fig12bRow struct {
	System  string
	Bucket  query.SelectivityBucket
	Queries int
}

// Fig12bResult is the whole figure. Its K echoes the already validated
// Config parameter for rendering; anonylint:k-validated
// (Config.Validate rejects k < 2).
type Fig12bResult struct {
	K    int
	Rows []Fig12bRow
}

// Fig12b reproduces Figure 12(b): the same workload bucketed by query
// selectivity (original result cardinality / table size) at a fixed k.
// The paper's shape: errors — and the benefit of compaction — shrink as
// selectivity grows.
func Fig12b(cfg Config) (*Fig12bResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	const k = 10
	recs := cfg.landsEnd()
	queries := query.FullRangeWorkload(recs, cfg.Queries, cfg.Seed+200)

	rt, err := cfg.newRTree(true)
	if err != nil {
		return nil, err
	}
	if err := rt.Load(recs); err != nil {
		return nil, err
	}
	systems, err := cfg.threeSystems(rt, recs, k)
	if err != nil {
		return nil, err
	}
	res := &Fig12bResult{K: k}
	for _, sys := range systems {
		results, err := query.EvaluateP(sys.ps, recs, queries, cfg.Workers)
		if err != nil {
			return nil, err
		}
		for _, b := range query.BySelectivity(results, len(recs), selectivityBounds) {
			res.Rows = append(res.Rows, Fig12bRow{System: sys.name, Bucket: b, Queries: b.Queries})
		}
	}
	return res, nil
}

// Print renders the figure as a table.
func (r *Fig12bResult) Print(w io.Writer) {
	fprintf(w, "Figure 12(b): mean error vs query selectivity (k=%d)\n", r.K)
	fprintf(w, "%-18s %12s %8s %12s\n", "system", "selectivity", "queries", "mean error")
	for _, row := range r.Rows {
		fprintf(w, "%-18s [%4.3f,%4.3f) %8d %12.4f\n",
			row.System, row.Bucket.Lo, row.Bucket.Hi, row.Queries, row.Bucket.Mean)
	}
}

// ---------------------------------------------------------------------------
// Figure 12(c)/(d): workload-biased splitting on the Zipcode attribute.

// Fig12cRow is one (k, system) error measurement under the Zipcode
// workload. Its K echoes the already validated Config parameter for
// rendering; anonylint:k-validated (Config.Validate rejects k < 2).
type Fig12cRow struct {
	K        int
	Biased   float64
	Unbiased float64
	Gain     float64 // unbiased/biased
}

// Fig12cResult is the whole figure.
type Fig12cResult struct {
	Queries int
	Rows    []Fig12cRow
}

// Fig12c reproduces Figure 12(c): a workload of single-attribute range
// queries on Zipcode evaluated against an R⁺-tree whose splitting is
// biased to Zipcode ("selects the Zipcode attribute as the splitting
// attribute for every split") vs the unbiased R⁺-tree.
func Fig12c(cfg Config) (*Fig12cResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	recs := cfg.landsEnd()
	schema := dataset.LandsEndSchema()
	zip := schema.AttrIndex("zipcode")
	domain := attr.DomainOf(schema.Dims(), recs)
	queries := query.SingleAttrWorkload(recs, zip, cfg.Queries, cfg.Seed+300, domain)

	unbiased, err := cfg.newRTree(true)
	if err != nil {
		return nil, err
	}
	if err := unbiased.Load(recs); err != nil {
		return nil, err
	}
	biased, err := core.NewRTreeAnonymizer(core.RTreeConfig{
		Schema: schema,
		BaseK:  cfg.BaseK,
		Split:  rplustree.BiasedPolicy{Axes: []int{zip}},
	})
	if err != nil {
		return nil, err
	}
	if err := biased.Load(recs); err != nil {
		return nil, err
	}

	res := &Fig12cResult{Queries: len(queries)}
	for _, k := range cfg.Ks {
		bPs, err := biased.Partitions(k)
		if err != nil {
			return nil, err
		}
		uPs, err := unbiased.Partitions(k)
		if err != nil {
			return nil, err
		}
		bRes, err := query.EvaluateP(bPs, recs, queries, cfg.Workers)
		if err != nil {
			return nil, err
		}
		uRes, err := query.EvaluateP(uPs, recs, queries, cfg.Workers)
		if err != nil {
			return nil, err
		}
		row := Fig12cRow{K: k, Biased: query.MeanError(bRes), Unbiased: query.MeanError(uRes)}
		if row.Biased > 0 {
			row.Gain = row.Unbiased / row.Biased
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Print renders the figure as a table.
func (r *Fig12cResult) Print(w io.Writer) {
	fprintf(w, "Figure 12(c): Zipcode workload error, biased vs unbiased R+-tree (%d queries)\n", r.Queries)
	fprintf(w, "%6s %12s %12s %8s\n", "k", "biased", "unbiased", "gain")
	for _, row := range r.Rows {
		fprintf(w, "%6d %12.4f %12.4f %7.1fx\n", row.K, row.Biased, row.Unbiased, row.Gain)
	}
}

// Fig12dRow is one selectivity bucket's biased/unbiased comparison.
type Fig12dRow struct {
	Bucket   query.SelectivityBucket
	Biased   float64
	Unbiased float64
}

// Fig12dResult is the whole figure. Its K echoes the already validated
// Config parameter for rendering; anonylint:k-validated
// (Config.Validate rejects k < 2).
type Fig12dResult struct {
	K    int
	Rows []Fig12dRow
}

// Fig12d reproduces Figure 12(d): the Zipcode workload bucketed by
// selectivity at fixed k; the biased tree's advantage diminishes as
// selectivity grows.
func Fig12d(cfg Config) (*Fig12dResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	const k = 10
	recs := cfg.landsEnd()
	schema := dataset.LandsEndSchema()
	zip := schema.AttrIndex("zipcode")
	domain := attr.DomainOf(schema.Dims(), recs)
	queries := query.SingleAttrWorkload(recs, zip, cfg.Queries, cfg.Seed+400, domain)

	mk := func(split rplustree.SplitPolicy) ([]anonmodel.Partition, error) {
		rt, err := core.NewRTreeAnonymizer(core.RTreeConfig{
			Schema: schema, BaseK: cfg.BaseK, Split: split,
		})
		if err != nil {
			return nil, err
		}
		if err := rt.Load(recs); err != nil {
			return nil, err
		}
		return rt.Partitions(k)
	}
	bPs, err := mk(rplustree.BiasedPolicy{Axes: []int{zip}})
	if err != nil {
		return nil, err
	}
	uPs, err := mk(nil)
	if err != nil {
		return nil, err
	}
	bRes, err := query.EvaluateP(bPs, recs, queries, cfg.Workers)
	if err != nil {
		return nil, err
	}
	uRes, err := query.EvaluateP(uPs, recs, queries, cfg.Workers)
	if err != nil {
		return nil, err
	}
	bBuckets := query.BySelectivity(bRes, len(recs), selectivityBounds)
	uBuckets := query.BySelectivity(uRes, len(recs), selectivityBounds)
	res := &Fig12dResult{K: k}
	for i := range bBuckets {
		res.Rows = append(res.Rows, Fig12dRow{
			Bucket:   bBuckets[i],
			Biased:   bBuckets[i].Mean,
			Unbiased: uBuckets[i].Mean,
		})
	}
	return res, nil
}

// Print renders the figure as a table.
func (r *Fig12dResult) Print(w io.Writer) {
	fprintf(w, "Figure 12(d): Zipcode workload error vs selectivity (k=%d)\n", r.K)
	fprintf(w, "%12s %12s %12s\n", "selectivity", "biased", "unbiased")
	for _, row := range r.Rows {
		fprintf(w, "[%4.3f,%4.3f) %12.4f %12.4f\n", row.Bucket.Lo, row.Bucket.Hi, row.Biased, row.Unbiased)
	}
}
