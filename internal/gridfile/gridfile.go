// Package gridfile is a grid-file-style anonymizer in the spirit of
// Nievergelt et al. [23]: the domain is divided into a uniform
// multidimensional grid, records are bucketed by cell, and whole cells
// are coalesced along the Z-order walk until each group satisfies the
// anonymity constraint. Groups publish the bounding box of their
// *cells*, not of their records.
//
// Section 4 singles the grid file out as an index that "does not
// maintain MBRs for its records": its partitions cover empty space, so
// it is the canonical target for the compaction procedure. The
// experiment harness uses it as the uncompacted extreme of the
// compaction ablation.
package gridfile

import (
	"fmt"
	"math"
	"sort"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/sfc"
)

// Options configures the grid anonymizer.
type Options struct {
	// Constraint decides allowable groups. Required.
	Constraint anonmodel.Constraint
	// CellsPerDim is the grid resolution g (g^dims cells). Zero picks
	// g ≈ (n / (2·MinSize))^(1/dims), clamped to [2, 64], so the
	// expected cell occupancy is a small multiple of the group size.
	CellsPerDim int
}

// Anonymize buckets recs into grid cells and coalesces cells in Z-order
// into constraint-satisfying partitions.
func Anonymize(schema *attr.Schema, recs []attr.Record, opt Options) ([]anonmodel.Partition, error) {
	if err := anonmodel.Validate(opt.Constraint); err != nil {
		return nil, fmt.Errorf("gridfile: %w", err)
	}
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, nil
	}
	if !opt.Constraint.Satisfied(recs) {
		return nil, fmt.Errorf("gridfile: input of %d records cannot satisfy %v", len(recs), opt.Constraint)
	}
	dims := schema.Dims()
	for i, r := range recs {
		if len(r.QI) != dims {
			return nil, fmt.Errorf("gridfile: record %d has %d attributes, schema has %d", i, len(r.QI), dims)
		}
	}
	g := opt.CellsPerDim
	if g == 0 {
		g = int(math.Ceil(math.Pow(float64(len(recs))/float64(2*opt.Constraint.MinSize()), 1/float64(dims))))
	}
	if g < 2 {
		g = 2
	}
	if g > 64 {
		g = 64
	}
	bits := 1
	for 1<<bits < g {
		bits++
	}
	if bits*dims > 64 {
		return nil, fmt.Errorf("gridfile: %d dims at %d cells/dim exceeds 64-bit cell keys", dims, g)
	}

	domain := attr.DomainOf(dims, recs)

	// Bucket records by cell index vector.
	type bucket struct {
		key   uint64
		cell  []int
		group []attr.Record
	}
	byKey := make(map[uint64]*bucket)
	cellOf := func(r attr.Record) ([]int, uint64) {
		cell := make([]int, dims)
		u32 := make([]uint32, dims)
		for d := 0; d < dims; d++ {
			w := domain[d].Width()
			c := 0
			if w > 0 {
				c = int(float64(g) * (r.QI[d] - domain[d].Lo) / w)
				if c >= g {
					c = g - 1
				}
			}
			cell[d] = c
			u32[d] = uint32(c)
		}
		return cell, sfc.ZOrderKey(u32, bits)
	}
	for _, r := range recs {
		cell, key := cellOf(r)
		b, ok := byKey[key]
		if !ok {
			b = &bucket{key: key, cell: cell}
			byKey[key] = b
		}
		b.group = append(b.group, r)
	}
	buckets := make([]*bucket, 0, len(byKey))
	for _, b := range byKey {
		buckets = append(buckets, b)
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].key < buckets[j].key })

	// cellBox returns the domain slab a cell covers.
	cellBox := func(cell []int) attr.Box {
		box := make(attr.Box, dims)
		for d := 0; d < dims; d++ {
			w := domain[d].Width()
			lo := domain[d].Lo + w*float64(cell[d])/float64(g)
			hi := domain[d].Lo + w*float64(cell[d]+1)/float64(g)
			box[d] = attr.Interval{Lo: lo, Hi: hi}
		}
		return box
	}

	// Coalesce whole cells greedily along the Z-order walk.
	var out []anonmodel.Partition
	var cur anonmodel.Partition
	cur.Box = attr.NewBox(dims)
	for _, b := range buckets {
		cur.Records = append(cur.Records, b.group...)
		cur.Box.IncludeBox(cellBox(b.cell))
		if opt.Constraint.Satisfied(cur.Records) {
			out = append(out, cur)
			cur = anonmodel.Partition{Box: attr.NewBox(dims)}
		}
	}
	if len(cur.Records) > 0 {
		// Unsatisfying tail: merge into the previous partition.
		if len(out) == 0 {
			out = append(out, cur)
		} else {
			last := &out[len(out)-1]
			last.Records = append(last.Records, cur.Records...)
			last.Box.IncludeBox(cur.Box)
		}
	}
	return out, nil
}
