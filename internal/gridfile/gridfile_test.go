package gridfile

import (
	"testing"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/compact"
	"spatialanon/internal/dataset"
	"spatialanon/internal/quality"
)

func TestAnonymizeBasics(t *testing.T) {
	recs := dataset.GeneratePatients(1000, 70)
	cons := anonmodel.KAnonymity{K: 10}
	ps, err := Anonymize(dataset.PatientsSchema(), recs, Options{Constraint: cons})
	if err != nil {
		t.Fatal(err)
	}
	if err := anonmodel.CheckAnonymity(ps, cons); err != nil {
		t.Fatal(err)
	}
	if anonmodel.TotalRecords(ps) != 1000 {
		t.Fatalf("lost records: %d", anonmodel.TotalRecords(ps))
	}
	seen := map[int64]bool{}
	for _, p := range ps {
		for _, r := range p.Records {
			if seen[r.ID] {
				t.Fatalf("record %d duplicated", r.ID)
			}
			seen[r.ID] = true
		}
	}
	if len(ps) < 10 {
		t.Fatalf("suspiciously few partitions: %d", len(ps))
	}
}

func TestCompactionHelpsGridFile(t *testing.T) {
	// The whole point of the grid file baseline: cell-union boxes cover
	// empty space, so compaction must cut the certainty penalty.
	recs := dataset.GeneratePatients(2000, 71)
	s := dataset.PatientsSchema()
	ps, err := Anonymize(s, recs, Options{Constraint: anonmodel.KAnonymity{K: 10}})
	if err != nil {
		t.Fatal(err)
	}
	domain := attr.DomainOf(s.Dims(), recs)
	raw := quality.Certainty(s, ps, domain)
	cmp := quality.Certainty(s, compact.Partitions(ps), domain)
	if cmp >= raw {
		t.Fatalf("compaction did not improve grid certainty: %v -> %v", raw, cmp)
	}
	if quality.Discernibility(ps) != quality.Discernibility(compact.Partitions(ps)) {
		t.Fatal("compaction changed DM")
	}
}

func TestExplicitResolution(t *testing.T) {
	recs := dataset.GeneratePatients(500, 72)
	ps, err := Anonymize(dataset.PatientsSchema(), recs, Options{
		Constraint:  anonmodel.KAnonymity{K: 5},
		CellsPerDim: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := anonmodel.CheckAnonymity(ps, anonmodel.KAnonymity{K: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	recs := dataset.GeneratePatients(10, 73)
	if _, err := Anonymize(dataset.PatientsSchema(), recs, Options{}); err == nil {
		t.Fatal("nil constraint accepted")
	}
	if _, err := Anonymize(dataset.PatientsSchema(), recs, Options{Constraint: anonmodel.KAnonymity{K: 50}}); err == nil {
		t.Fatal("infeasible input accepted")
	}
	if _, err := Anonymize(dataset.PatientsSchema(), recs, Options{Constraint: anonmodel.KAnonymity{K: 1}}); err == nil {
		t.Fatal("k=1 accepted")
	}
	bad := []attr.Record{{QI: []float64{1}}, {QI: []float64{2}}}
	if _, err := Anonymize(dataset.PatientsSchema(), bad, Options{Constraint: anonmodel.KAnonymity{K: 2}}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	ps, err := Anonymize(dataset.PatientsSchema(), nil, Options{Constraint: anonmodel.KAnonymity{K: 2}})
	if err != nil || ps != nil {
		t.Fatalf("empty input: %v %v", ps, err)
	}
}

func TestSmallInputSinglePartition(t *testing.T) {
	recs := dataset.GeneratePatients(7, 74)
	ps, err := Anonymize(dataset.PatientsSchema(), recs, Options{Constraint: anonmodel.KAnonymity{K: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 1 || ps[0].Size() != 7 {
		t.Fatalf("got %d partitions", len(ps))
	}
}

func TestLDiversityConstraint(t *testing.T) {
	recs := dataset.GeneratePatients(800, 75)
	cons := anonmodel.LDiversity{K: 8, L: 3}
	ps, err := Anonymize(dataset.PatientsSchema(), recs, Options{Constraint: cons})
	if err != nil {
		t.Fatal(err)
	}
	if err := anonmodel.CheckAnonymity(ps, cons); err != nil {
		t.Fatal(err)
	}
}
