// Package quadtree implements a point-region (PR) quadtree anonymizer —
// the alternative index family the paper's Section 6 points at via Kim
// and Patel's "making the case for the often ignored quadtree" [16]:
// "The choice of one type of index over another for indexing a data set
// may likely be reason enough for using the same index for
// k-anonymizing the data set."
//
// Unlike the R⁺-tree, a quadtree splits space at fixed midpoints
// (space-driven, not data-driven) into 2^d equal quadrants over a
// chosen subset of split axes. Quadrant occupancy is therefore
// unbounded below; k-anonymity is enforced at publication by leaf-scan
// grouping (quadrant order gives the scan its spatial locality), and
// precision comes from the same tight per-leaf MBRs the R⁺-tree keeps.
// The repository's ablation benchmarks compare the two index choices
// head to head.
package quadtree

import (
	"fmt"
	"sort"

	"spatialanon/internal/attr"
)

// maxSplitAxes caps the fan-out at 2^4 = 16 children per split.
const maxSplitAxes = 4

// maxDepth bounds subdivision so duplicate-heavy data cannot recurse
// forever; a leaf at maxDepth simply grows.
const maxDepth = 48

// Config parameterizes a Tree.
type Config struct {
	// Schema of the quasi-identifier attributes. Required.
	Schema *attr.Schema
	// BaseK is the minimum occupancy published partitions must reach
	// (enforced by the caller's leaf scan; the tree itself records it
	// for sizing). Required, >= 2: one-record partitions are an
	// identity release, not anonymity.
	BaseK int
	// LeafFactor c: leaves split once they exceed c*BaseK records.
	// Defaults to 2.
	LeafFactor int
	// SplitAxes selects the attributes whose midpoints drive
	// subdivision (at most 4; each split makes 2^len(SplitAxes)
	// children). Empty selects the widest axes of the bootstrap
	// sample's domain, up to 3.
	SplitAxes []int
}

// Leaf is one non-empty quadtree leaf: tight MBR plus records.
type Leaf struct {
	MBR     attr.Box
	Records []attr.Record
}

type node struct {
	// cell is the quadrant bounds over the split axes only, indexed by
	// position in cfg.axes. Leaves and internals both carry it.
	cell []attr.Interval
	// mbr is the tight bound over all attributes of the records
	// beneath.
	mbr   attr.Box
	count int
	depth int

	recs     []attr.Record // leaf payload
	children []*node       // 2^d children, nil for leaves (may hold nils until populated)
}

func (n *node) isLeaf() bool { return n.children == nil }

// Tree is the quadtree index.
type Tree struct {
	cfg  Config
	axes []int
	root *node
}

// New builds an empty quadtree. Because a PR-quadtree needs cell bounds
// before the first subdivision, bootstrap records must be supplied —
// they establish the root cell (and the default split axes) and are
// inserted. More records can be added incrementally afterwards; points
// outside the root cell grow it by doubling.
func New(cfg Config, bootstrap []attr.Record) (*Tree, error) {
	if cfg.Schema == nil {
		return nil, fmt.Errorf("quadtree: nil schema")
	}
	if err := cfg.Schema.Validate(); err != nil {
		return nil, err
	}
	if cfg.BaseK < 2 {
		return nil, fmt.Errorf("quadtree: BaseK %d provides no anonymity; need >= 2", cfg.BaseK)
	}
	if cfg.LeafFactor == 0 {
		cfg.LeafFactor = 2
	}
	if cfg.LeafFactor < 2 {
		return nil, fmt.Errorf("quadtree: LeafFactor %d < 2", cfg.LeafFactor)
	}
	if len(bootstrap) == 0 {
		return nil, fmt.Errorf("quadtree: need bootstrap records to establish the root cell")
	}
	dims := cfg.Schema.Dims()
	for i, r := range bootstrap {
		if len(r.QI) != dims {
			return nil, fmt.Errorf("quadtree: bootstrap record %d has %d attributes, schema has %d", i, len(r.QI), dims)
		}
	}
	domain := attr.DomainOf(dims, bootstrap)

	axes := cfg.SplitAxes
	if len(axes) == 0 {
		axes = defaultAxes(domain)
	}
	if len(axes) > maxSplitAxes {
		return nil, fmt.Errorf("quadtree: %d split axes; maximum %d (fan-out 2^d)", len(axes), maxSplitAxes)
	}
	seen := map[int]bool{}
	for _, a := range axes {
		if a < 0 || a >= dims {
			return nil, fmt.Errorf("quadtree: split axis %d outside schema", a)
		}
		if seen[a] {
			return nil, fmt.Errorf("quadtree: duplicate split axis %d", a)
		}
		seen[a] = true
	}

	cell := make([]attr.Interval, len(axes))
	for i, a := range axes {
		iv := domain[a]
		if iv.Width() == 0 { // degenerate: give the cell some width
			iv = attr.Interval{Lo: iv.Lo, Hi: iv.Lo + 1}
		}
		cell[i] = iv
	}
	t := &Tree{
		cfg:  cfg,
		axes: axes,
		root: &node{cell: cell, mbr: attr.NewBox(dims)},
	}
	for _, r := range bootstrap {
		if err := t.Insert(r); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// defaultAxes picks up to three widest domain axes.
func defaultAxes(domain attr.Box) []int {
	type aw struct {
		axis  int
		width float64
	}
	order := make([]aw, len(domain))
	for a := range domain {
		order[a] = aw{a, domain[a].Width()}
	}
	sort.SliceStable(order, func(i, j int) bool { return order[i].width > order[j].width })
	n := 3
	if len(order) < n {
		n = len(order)
	}
	axes := make([]int, 0, n)
	for _, o := range order[:n] {
		if o.width > 0 {
			axes = append(axes, o.axis)
		}
	}
	if len(axes) == 0 {
		axes = []int{0}
	}
	return axes
}

// Len returns the number of records in the tree.
func (t *Tree) Len() int { return t.root.count }

// SplitAxes returns the axes driving subdivision.
func (t *Tree) SplitAxes() []int { return append([]int(nil), t.axes...) }

// Height returns the deepest leaf's depth + 1.
func (t *Tree) Height() int {
	h := 0
	var walk func(n *node)
	walk = func(n *node) {
		if n.depth+1 > h {
			h = n.depth + 1
		}
		for _, c := range n.children {
			if c != nil {
				walk(c)
			}
		}
	}
	walk(t.root)
	return h
}

// Insert adds one record, growing the root cell if the point lies
// outside it and subdividing overflowing leaves.
func (t *Tree) Insert(rec attr.Record) error {
	if len(rec.QI) != t.cfg.Schema.Dims() {
		return fmt.Errorf("quadtree: record has %d attributes, tree has %d", len(rec.QI), t.cfg.Schema.Dims())
	}
	for !t.rootContains(rec.QI) {
		t.growRoot(rec.QI)
	}
	t.insert(t.root, rec)
	return nil
}

// rootContains reports whether the point lies in the root cell
// (half-open on the high side, like the R⁺-tree's routing).
func (t *Tree) rootContains(p []float64) bool {
	for i, a := range t.axes {
		v := p[a]
		if v < t.root.cell[i].Lo || v >= t.root.cell[i].Hi {
			return false
		}
	}
	return true
}

// growRoot doubles the root cell toward the point: a new root is
// created whose cell is twice as large, with the old root as the
// appropriate quadrant child.
func (t *Tree) growRoot(p []float64) {
	old := t.root
	cell := make([]attr.Interval, len(old.cell))
	idx := 0 // which quadrant the old root becomes
	for i, a := range t.axes {
		iv := old.cell[i]
		w := iv.Hi - iv.Lo
		if p[a] < iv.Lo {
			// Extend downward; the old root is the high half.
			cell[i] = attr.Interval{Lo: iv.Lo - w, Hi: iv.Hi}
			idx |= 1 << i
		} else {
			// Extend upward; the old root is the low half.
			cell[i] = attr.Interval{Lo: iv.Lo, Hi: iv.Hi + w}
		}
	}
	newRoot := &node{
		cell:     cell,
		mbr:      old.mbr.Clone(),
		count:    old.count,
		children: make([]*node, 1<<len(t.axes)),
	}
	bumpDepth(old)
	newRoot.children[idx] = old
	t.root = newRoot
}

func bumpDepth(n *node) {
	n.depth++
	for _, c := range n.children {
		if c != nil {
			bumpDepth(c)
		}
	}
}

// insert descends to the leaf quadrant and places the record.
func (t *Tree) insert(n *node, rec attr.Record) {
	for {
		n.count++
		n.mbr.Include(rec.QI)
		if n.isLeaf() {
			n.recs = append(n.recs, rec)
			t.maybeSplit(n)
			return
		}
		n = t.childFor(n, rec.QI)
	}
}

// childFor returns (creating on demand) the quadrant child holding p.
func (t *Tree) childFor(n *node, p []float64) *node {
	idx := 0
	for i := range t.axes {
		if p[t.axes[i]] >= mid(n.cell[i]) {
			idx |= 1 << i
		}
	}
	c := n.children[idx]
	if c == nil {
		cell := make([]attr.Interval, len(n.cell))
		for i := range n.cell {
			m := mid(n.cell[i])
			if idx&(1<<i) != 0 {
				cell[i] = attr.Interval{Lo: m, Hi: n.cell[i].Hi}
			} else {
				cell[i] = attr.Interval{Lo: n.cell[i].Lo, Hi: m}
			}
		}
		c = &node{cell: cell, mbr: attr.NewBox(t.cfg.Schema.Dims()), depth: n.depth + 1}
		n.children[idx] = c
	}
	return c
}

func mid(iv attr.Interval) float64 { return (iv.Lo + iv.Hi) / 2 }

// maybeSplit subdivides an overflowing leaf into its quadrants.
func (t *Tree) maybeSplit(leaf *node) {
	if len(leaf.recs) <= t.cfg.LeafFactor*t.cfg.BaseK || leaf.depth >= maxDepth {
		return
	}
	recs := leaf.recs
	leaf.recs = nil
	leaf.children = make([]*node, 1<<len(t.axes))
	for _, r := range recs {
		c := t.childFor(leaf, r.QI)
		c.count++
		c.mbr.Include(r.QI)
		c.recs = append(c.recs, r)
	}
	for _, c := range leaf.children {
		if c != nil {
			t.maybeSplit(c)
		}
	}
}

// Leaves returns every non-empty leaf in quadrant (Z-curve) order,
// which gives the leaf scan its spatial locality.
func (t *Tree) Leaves() []Leaf {
	var out []Leaf
	var walk func(n *node)
	walk = func(n *node) {
		if n.isLeaf() {
			if len(n.recs) > 0 {
				out = append(out, Leaf{MBR: n.mbr, Records: n.recs})
			}
			return
		}
		for _, c := range n.children {
			if c != nil {
				walk(c)
			}
		}
	}
	walk(t.root)
	return out
}

// CheckInvariants verifies structural consistency: counts aggregate,
// MBRs are tight and inside parent MBRs, child cells are the exact
// quadrants of their parent cell, and every record lies in its leaf's
// cell (over the split axes) and MBR.
func (t *Tree) CheckInvariants() error {
	var walk func(n *node) error
	walk = func(n *node) error {
		if n.isLeaf() {
			if n.count != len(n.recs) {
				return fmt.Errorf("quadtree: leaf count %d != %d records", n.count, len(n.recs))
			}
			want := attr.NewBox(t.cfg.Schema.Dims())
			for _, r := range n.recs {
				for i, a := range t.axes {
					v := r.QI[a]
					if v < n.cell[i].Lo || v >= n.cell[i].Hi {
						return fmt.Errorf("quadtree: record %d outside leaf cell", r.ID)
					}
				}
				want.Include(r.QI)
			}
			if !want.Equal(n.mbr) && !(want.IsEmpty() && n.mbr.IsEmpty()) {
				return fmt.Errorf("quadtree: leaf MBR %v not tight (want %v)", n.mbr, want)
			}
			return nil
		}
		count := 0
		mbr := attr.NewBox(t.cfg.Schema.Dims())
		for idx, c := range n.children {
			if c == nil {
				continue
			}
			for i := range t.axes {
				m := mid(n.cell[i])
				want := attr.Interval{Lo: n.cell[i].Lo, Hi: m}
				if idx&(1<<i) != 0 {
					want = attr.Interval{Lo: m, Hi: n.cell[i].Hi}
				}
				if c.cell[i] != want {
					return fmt.Errorf("quadtree: child %d cell %v not quadrant %v", idx, c.cell[i], want)
				}
			}
			if c.depth != n.depth+1 {
				return fmt.Errorf("quadtree: child depth %d under parent depth %d", c.depth, n.depth)
			}
			count += c.count
			mbr.IncludeBox(c.mbr)
			if err := walk(c); err != nil {
				return err
			}
		}
		if count != n.count {
			return fmt.Errorf("quadtree: node count %d != children sum %d", n.count, count)
		}
		if !mbr.Equal(n.mbr) && !(mbr.IsEmpty() && n.mbr.IsEmpty()) {
			return fmt.Errorf("quadtree: node MBR %v not union of children (want %v)", n.mbr, mbr)
		}
		return nil
	}
	return walk(t.root)
}
