package quadtree

import (
	"math/rand"
	"testing"

	"spatialanon/internal/attr"
	"spatialanon/internal/dataset"
)

func newPatientQT(t *testing.T, n int, seed int64) *Tree {
	t.Helper()
	qt, err := New(Config{Schema: dataset.PatientsSchema(), BaseK: 5}, dataset.GeneratePatients(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	return qt
}

func TestNewValidation(t *testing.T) {
	boot := dataset.GeneratePatients(10, 1)
	cases := []Config{
		{},                                 // nil schema
		{Schema: dataset.PatientsSchema()}, // BaseK 0
		{Schema: dataset.PatientsSchema(), BaseK: 5, LeafFactor: 1},       // bad c
		{Schema: dataset.PatientsSchema(), BaseK: 5, SplitAxes: []int{9}}, // bad axis
		{Schema: dataset.PatientsSchema(), BaseK: 5, SplitAxes: []int{0, 0}},
		{Schema: dataset.PatientsSchema(), BaseK: 5, SplitAxes: []int{0, 1, 2, 0, 1}},
	}
	for i, cfg := range cases {
		if _, err := New(cfg, boot); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
	if _, err := New(Config{Schema: dataset.PatientsSchema(), BaseK: 5}, nil); err == nil {
		t.Fatal("empty bootstrap accepted")
	}
	bad := []attr.Record{{QI: []float64{1}}}
	if _, err := New(Config{Schema: dataset.PatientsSchema(), BaseK: 5}, bad); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestBuildAndInvariants(t *testing.T) {
	qt := newPatientQT(t, 1500, 2)
	if qt.Len() != 1500 {
		t.Fatalf("Len = %d", qt.Len())
	}
	if err := qt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if qt.Height() < 2 {
		t.Fatalf("height %d after 1500 inserts", qt.Height())
	}
	leaves := qt.Leaves()
	total := 0
	seen := map[int64]bool{}
	for _, l := range leaves {
		total += len(l.Records)
		for _, r := range l.Records {
			if seen[r.ID] {
				t.Fatalf("record %d in two leaves", r.ID)
			}
			seen[r.ID] = true
			if !l.MBR.Contains(r.QI) {
				t.Fatalf("record %d outside its leaf MBR", r.ID)
			}
		}
	}
	if total != 1500 {
		t.Fatalf("leaves hold %d records", total)
	}
	// Leaf MBRs are pairwise disjoint (cells are disjoint and MBRs are
	// inside cells on the split axes)... only over split axes; verify
	// no duplicate record instead (done above).
}

func TestLeafCapacity(t *testing.T) {
	qt := newPatientQT(t, 2000, 3)
	cap := qt.cfg.LeafFactor * qt.cfg.BaseK
	for _, l := range qt.Leaves() {
		if len(l.Records) > cap {
			// Only legal at the depth cap (duplicate pile-ups).
			t.Fatalf("leaf holds %d records, cap %d", len(l.Records), cap)
		}
	}
}

func TestIncrementalInsertAndGrowth(t *testing.T) {
	qt := newPatientQT(t, 200, 4)
	// Insert points far outside the bootstrap domain: the root must
	// grow, and invariants must survive.
	out := []attr.Record{
		{ID: 9001, QI: []float64{500, 0, 99999}},
		{ID: 9002, QI: []float64{-100, 1, 10}},
		{ID: 9003, QI: []float64{1e6, 0, -5}},
	}
	for _, r := range out {
		if err := qt.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if qt.Len() != 203 {
		t.Fatalf("Len = %d", qt.Len())
	}
	if err := qt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, l := range qt.Leaves() {
		for _, r := range l.Records {
			if r.ID >= 9001 {
				found++
			}
		}
	}
	if found != 3 {
		t.Fatalf("outliers found: %d", found)
	}
	if err := qt.Insert(attr.Record{QI: []float64{1}}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestDuplicatePointsBounded(t *testing.T) {
	boot := make([]attr.Record, 300)
	for i := range boot {
		boot[i] = attr.Record{ID: int64(i), QI: []float64{30, 1, 53706}}
	}
	// Mix in a couple of distinct points so the domain is non-degenerate.
	boot = append(boot,
		attr.Record{ID: 900, QI: []float64{20, 0, 52000}},
		attr.Record{ID: 901, QI: []float64{80, 1, 54000}},
	)
	qt, err := New(Config{Schema: dataset.PatientsSchema(), BaseK: 3}, boot)
	if err != nil {
		t.Fatal(err)
	}
	if qt.Height() > maxDepth+1 {
		t.Fatalf("height %d exceeds depth cap", qt.Height())
	}
	if err := qt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if qt.Len() != 302 {
		t.Fatalf("Len = %d", qt.Len())
	}
}

func TestExplicitSplitAxes(t *testing.T) {
	qt, err := New(Config{
		Schema:    dataset.PatientsSchema(),
		BaseK:     4,
		SplitAxes: []int{0, 2}, // age and zipcode
	}, dataset.GeneratePatients(800, 5))
	if err != nil {
		t.Fatal(err)
	}
	axes := qt.SplitAxes()
	if len(axes) != 2 || axes[0] != 0 || axes[1] != 2 {
		t.Fatalf("SplitAxes = %v", axes)
	}
	if err := qt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultAxesSkipDegenerate(t *testing.T) {
	// All zipcodes equal: the default axis choice must not pick the
	// zero-width attribute.
	recs := make([]attr.Record, 100)
	rng := rand.New(rand.NewSource(6))
	for i := range recs {
		recs[i] = attr.Record{ID: int64(i), QI: []float64{float64(rng.Intn(80)), float64(rng.Intn(2)), 53706}}
	}
	qt, err := New(Config{Schema: dataset.PatientsSchema(), BaseK: 3}, recs)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range qt.SplitAxes() {
		if a == 2 {
			t.Fatalf("degenerate axis selected: %v", qt.SplitAxes())
		}
	}
	if err := qt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLeavesAreZOrdered(t *testing.T) {
	// Quadrant order means consecutive leaves are spatially close;
	// cheap proxy: the summed distance between consecutive leaf MBR
	// centers must be far below the random-order expectation.
	qt := newPatientQT(t, 2000, 7)
	leaves := qt.Leaves()
	if len(leaves) < 20 {
		t.Skip("too few leaves")
	}
	dist := func(order []int) float64 {
		sum := 0.0
		for i := 1; i < len(order); i++ {
			a := leaves[order[i-1]].MBR.Center()
			b := leaves[order[i]].MBR.Center()
			for d := range a {
				if a[d] > b[d] {
					sum += a[d] - b[d]
				} else {
					sum += b[d] - a[d]
				}
			}
		}
		return sum
	}
	natural := make([]int, len(leaves))
	shuffled := make([]int, len(leaves))
	for i := range natural {
		natural[i] = i
		shuffled[i] = i
	}
	rand.New(rand.NewSource(8)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	if dist(natural) > dist(shuffled) {
		t.Fatalf("quadrant order (%v) no better than random (%v)", dist(natural), dist(shuffled))
	}
}
